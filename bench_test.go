// Benchmark harness regenerating the experiments of DESIGN.md §3
// (B1–B8). The CIDR 2011 paper is a vision paper with no measured
// tables; each bench quantifies a mechanism or trade-off the paper
// asserts qualitatively. EXPERIMENTS.md records the claims next to the
// numbers these benches produce. Custom metrics are attached via
// b.ReportMetric, so `go test -bench=. -benchmem` prints the full rows.
package provpriv

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"provpriv/internal/datapriv"
	"provpriv/internal/dp"
	"provpriv/internal/exec"
	"provpriv/internal/graph"
	"provpriv/internal/index"
	"provpriv/internal/modpriv"
	"provpriv/internal/privacy"
	"provpriv/internal/query"
	"provpriv/internal/rank"
	"provpriv/internal/repo"
	"provpriv/internal/sim"
	"provpriv/internal/structpriv"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// ---------------------------------------------------------------------------
// B1 — Module privacy: secure-view cost vs Γ; exact vs greedy solver.
// Paper claim (Sec. 3): choosing which data to hide is "an interesting
// optimization problem"; more privacy (larger Γ) must cost more utility.

func benchRelation(b *testing.B, nIn, nOut, k int, seed int64) *modpriv.Relation {
	b.Helper()
	var ins, outs []string
	for i := 0; i < nIn; i++ {
		ins = append(ins, fmt.Sprintf("i%d", i))
	}
	for i := 0; i < nOut; i++ {
		outs = append(outs, fmt.Sprintf("o%d", i))
	}
	dom := workload.KDomain(k, append(append([]string{}, ins...), outs...)...)
	fn := workload.RandomTableFunc(seed, outs, dom)
	rel, err := modpriv.Enumerate("m", fn, ins, outs, dom)
	if err != nil {
		b.Fatalf("enumerate: %v", err)
	}
	return rel
}

func BenchmarkModulePrivacy(b *testing.B) {
	for _, cfg := range []struct {
		nIn, nOut, k int
	}{
		{2, 2, 3}, // 4 attrs, 9 rows
		{3, 3, 3}, // 6 attrs, 27 rows
		{4, 4, 2}, // 8 attrs, 16 rows
	} {
		rel := benchRelation(b, cfg.nIn, cfg.nOut, cfg.k, 7)
		for _, gamma := range []int{2, 4, 8} {
			if rel.MaxLevel() < gamma {
				continue
			}
			name := fmt.Sprintf("attrs=%d/gamma=%d", cfg.nIn+cfg.nOut, gamma)
			b.Run(name+"/exact", func(b *testing.B) {
				var cost float64
				for i := 0; i < b.N; i++ {
					sv, err := modpriv.ExhaustiveSecureView(rel, gamma, nil)
					if err != nil {
						b.Fatal(err)
					}
					cost = sv.Cost
				}
				b.ReportMetric(cost, "hidden-cost")
			})
			b.Run(name+"/greedy", func(b *testing.B) {
				var cost float64
				for i := 0; i < b.N; i++ {
					sv, err := modpriv.GreedySecureView(rel, gamma, nil)
					if err != nil {
						b.Fatal(err)
					}
					cost = sv.Cost
				}
				ex, _ := modpriv.ExhaustiveSecureView(rel, gamma, nil)
				b.ReportMetric(cost, "hidden-cost")
				if ex != nil && ex.Cost > 0 {
					b.ReportMetric(cost/ex.Cost, "vs-optimal")
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// B2 — Structural privacy: cut vs cluster on growing DAGs.
// Paper claim (Sec. 3): cutting hides extra true provenance; clustering
// risks unsound views; both are "challenging optimization problems".

func BenchmarkStructural(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := workload.LayeredDAG(rng, n/10, 10, 3)
		// A hidden pair guaranteed connected: pick via closure.
		cl, err := graph.NewClosure(g)
		if err != nil {
			b.Fatal(err)
		}
		var pair structpriv.Pair
		found := false
		for u := 0; u < g.N() && !found; u++ {
			for v := g.N() - 1; v > u+10; v-- {
				if cl.Reach(graph.NodeID(u), graph.NodeID(v)) && !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
					pair = structpriv.Pair{From: g.Name(graph.NodeID(u)), To: g.Name(graph.NodeID(v))}
					found = true
					break
				}
			}
		}
		if !found {
			b.Fatalf("n=%d: no connected pair", n)
		}
		b.Run(fmt.Sprintf("n=%d/cut", n), func(b *testing.B) {
			var lost int
			for i := 0; i < b.N; i++ {
				res, err := structpriv.HidePairs(g, []structpriv.Pair{pair}, structpriv.CutEdges, nil)
				if err != nil {
					b.Fatal(err)
				}
				lost = res.Metrics.LostPairs
			}
			b.ReportMetric(float64(lost), "lost-pairs")
			b.ReportMetric(0, "extraneous")
		})
		b.Run(fmt.Sprintf("n=%d/cluster", n), func(b *testing.B) {
			var extraneous, lost int
			for i := 0; i < b.N; i++ {
				res, err := structpriv.HidePairs(g, []structpriv.Pair{pair}, structpriv.Cluster, nil)
				if err != nil {
					b.Fatal(err)
				}
				extraneous = res.Metrics.ExtraneousPairs
				lost = res.Metrics.LostPairs
			}
			b.ReportMetric(float64(lost), "lost-pairs")
			b.ReportMetric(float64(extraneous), "extraneous")
		})
	}
}

// ---------------------------------------------------------------------------
// B3 — Privacy-aware query evaluation overhead vs oblivious evaluation.
// Paper claim (Sec. 4): "the information must be hidden on-the-fly,
// which usually leads to processing overhead."

func diseaseFixture(b *testing.B) (*workflow.Spec, *exec.Execution, *privacy.Policy) {
	b.Helper()
	spec := workflow.DiseaseSusceptibility()
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		b.Fatal(err)
	}
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.ViewGrants[privacy.Registered] = []string{"W2", "W3", "W4"}
	return spec, e, pol
}

func BenchmarkQueryPrivacyOverhead(b *testing.B) {
	spec, e, pol := diseaseFixture(b)
	ev := query.NewEvaluator(spec)
	q, err := query.Parse(`MATCH a = "expand snp", b = "query omim" WHERE a ~> b RETURN provenance(b)`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("oblivious", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.Evaluate(q, e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("privacy-aware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.EvaluateWithPrivacy(q, e, pol, privacy.Registered); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// B4 — Privacy-classified index vs per-query policy filtering.
// Paper claim (Sec. 4): indexes must serve "different user views";
// one classified index should beat re-checking policies per query.

func synthRepoFixture(b *testing.B, nSpecs int) ([]*workflow.Spec, map[string]*privacy.Policy) {
	b.Helper()
	var specs []*workflow.Spec
	pols := make(map[string]*privacy.Policy)
	for i := 0; i < nSpecs; i++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: int64(i), ID: fmt.Sprintf("s%d", i), Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
		pol := privacy.NewPolicy(s.ID)
		// Mark every third module Analyst-only.
		k := 0
		for _, wid := range s.WorkflowIDs() {
			for _, m := range s.Workflows[wid].Modules {
				if m.Kind == workflow.Atomic && k%3 == 0 {
					pol.ModuleLevels[m.ID] = privacy.Analyst
				}
				k++
			}
		}
		specs = append(specs, s)
		pols[s.ID] = pol
	}
	return specs, pols
}

func BenchmarkIndexVsFilter(b *testing.B) {
	specs, pols := synthRepoFixture(b, 30)
	ix := index.BuildInverted(specs, pols)
	terms := []string{"query", "database", "snp", "filter", "merge"}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range terms {
				ix.Lookup(t, privacy.Registered)
			}
		}
	})
	b.Run("naive-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, t := range terms {
				index.NaiveLookup(specs, pols, t, privacy.Registered)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// B5 — Zoom-out cost: building coarser execution views level by level.
// Paper claim (Sec. 4): "each zoom-out may involve a disk access" —
// i.e. repeated view construction is the cost driver; we measure the
// in-memory collapse cost per hierarchy depth.

func BenchmarkZoomOut(b *testing.B) {
	for _, depth := range []int{2, 3, 4} {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: 5, ID: fmt.Sprintf("zo-%d", depth), Depth: depth, Fanout: 2, Chain: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		e, err := exec.NewRunner(s, nil).Run("E", workload.RandomInputs(s, 1))
		if err != nil {
			b.Fatal(err)
		}
		h, err := workflow.NewHierarchy(s)
		if err != nil {
			b.Fatal(err)
		}
		// Zoom-out sequence: full prefix shrinking to {root}.
		var prefixes []workflow.Prefix
		cur := workflow.FullPrefix(h)
		prefixes = append(prefixes, cur)
		all := h.All()
		for i := len(all) - 1; i > 0; i-- {
			next := make(workflow.Prefix)
			for k := range cur {
				next[k] = true
			}
			delete(next, all[i])
			// Keep it a valid prefix (children first in reverse-BFS).
			if next.Validate(h) == nil {
				prefixes = append(prefixes, next)
				cur = next
			}
		}
		b.Run(fmt.Sprintf("depth=%d/levels=%d", depth, len(prefixes)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range prefixes {
					if _, err := exec.Collapse(e, s, p); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(e.Nodes)), "exec-nodes")
		})
	}
}

// ---------------------------------------------------------------------------
// B6 — Ranking leakage: exact scores invert to hidden term counts;
// bucketing trades leakage for rank quality.
// Paper claim (Sec. 4): "a user might be able to infer the range of
// value occurrences in a result" from rankings.

func BenchmarkRankingLeakage(b *testing.B) {
	full := rank.NewCorpus()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		var terms []string
		for j := 0; j < 1+rng.Intn(20); j++ {
			terms = append(terms, "database")
		}
		terms = append(terms, fmt.Sprintf("filler%d", i))
		full.Add(fmt.Sprintf("doc%02d", i), terms)
	}
	queryTerms := []string{"database"}
	for _, buckets := range []int{0, 8, 3} {
		name := "exact"
		if buckets > 0 {
			name = fmt.Sprintf("buckets=%d", buckets)
		}
		b.Run(name, func(b *testing.B) {
			var published []rank.Ranked
			for i := 0; i < b.N; i++ {
				published = full.Rank(queryTerms)
				if buckets > 0 {
					published = rank.Bucketize(published, buckets)
				}
			}
			rep := rank.FrequencyAttack(full, published, "database")
			exactRank := full.Rank(queryTerms)
			b.ReportMetric(float64(rep.ExactHits)/float64(rep.Docs), "attack-recovery")
			b.ReportMetric(rank.KendallTau(exactRank, published), "kendall-tau")
		})
	}
}

// ---------------------------------------------------------------------------
// B7 — Differential privacy destroys provenance reproducibility.
// Paper claim (Sec. 5): "adding random noise to provenance information
// may render it useless" for reproducibility.

func BenchmarkDPProvenance(b *testing.B) {
	_, e, _ := diseaseFixture(b)
	var disorders string
	for id, it := range e.Items {
		if it.Attr == "disorders" {
			disorders = id
		}
	}
	q := dp.ProvenanceSize(disorders)
	for _, eps := range []float64{0.1, 1, 10} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			var rep dp.ReproReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = dp.MeasureReproducibility(q, e, eps, 100, 42)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.WrongFrac, "wrong-frac")
			b.ReportMetric(rep.MeanAbsErr, "mean-abs-err")
		})
	}
}

// ---------------------------------------------------------------------------
// B8 — Access views: on-the-fly view construction cost by prefix size
// (the alternative to materializing one repository per level), plus the
// reachability-index ablation (closure vs interval index).

func BenchmarkViewConstruction(b *testing.B) {
	s := workflow.DiseaseSusceptibility()
	h, _ := workflow.NewHierarchy(s)
	for _, p := range workflow.Prefixes(h) {
		name := fmt.Sprintf("prefix=%d", len(p))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workflow.Expand(s, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReachabilityAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := workload.LayeredDAG(rng, 20, 10, 3)
	queries := make([][2]graph.NodeID, 200)
	for i := range queries {
		queries[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(g.N())), graph.NodeID(rng.Intn(g.N()))}
	}
	b.Run("closure-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.NewClosure(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interval-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.NewIntervalIndex(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	cl, _ := graph.NewClosure(g)
	ix, _ := graph.NewIntervalIndex(g)
	b.Run("closure-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			cl.Reach(q[0], q[1])
		}
	})
	b.Run("interval-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			ix.Reach(q[0], q[1])
		}
	})
	b.Run("dfs-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			g.Reachable(q[0], q[1])
		}
	})
}

// ---------------------------------------------------------------------------
// End-to-end repository search bench (supports B3/B4 at system level).

func BenchmarkRepositorySearch(b *testing.B) {
	r := repo.New()
	specs, pols := synthRepoFixture(b, 10)
	for _, s := range specs {
		if err := r.AddSpec(s, pols[s.ID]); err != nil {
			b.Fatal(err)
		}
	}
	r.AddUser(privacy.User{Name: "u", Level: privacy.Registered, Group: "g"})
	rng := rand.New(rand.NewSource(1))
	queries := workload.RandomQueries(rng, nil, 20)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = r.Search("u", queries[i%len(queries)], repo.SearchOptions{BypassCache: true})
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = r.Search("u", queries[i%len(queries)], repo.SearchOptions{})
		}
	})
}

// ---------------------------------------------------------------------------
// B11 — Concurrent sharded serving: multi-client search throughput on
// the sharded engine vs the serial path. The paper's premise is a
// shared repository "searched and queried by many users"; this bench
// quantifies what per-spec sharding, the lock-light cache and the
// singleflight corpus buy under parallel load. "serial" pins the
// engine's fan-out pool to one worker and drives one client; the
// parallel variants use all cores. On a 4+ core machine
// parallel-clients should show ≥2x the serial throughput (ns/op ≤ 1/2).

func parallelSearchFixture(b *testing.B, nSpecs int) (*repo.Repository, []string) {
	b.Helper()
	r := repo.New()
	specs, pols := synthRepoFixture(b, nSpecs)
	for _, s := range specs {
		if err := r.AddSpec(s, pols[s.ID]); err != nil {
			b.Fatal(err)
		}
	}
	r.AddUser(privacy.User{Name: "u", Level: privacy.Registered, Group: "g"})
	rng := rand.New(rand.NewSource(1))
	return r, workload.RandomQueries(rng, nil, 64)
}

func BenchmarkSearchParallel(b *testing.B) {
	r, queries := parallelSearchFixture(b, 12)
	b.Run("serial", func(b *testing.B) {
		r.SetWorkers(1)
		for i := 0; i < b.N; i++ {
			if _, err := r.Search("u", queries[i%len(queries)], repo.SearchOptions{BypassCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-clients", func(b *testing.B) {
		r.SetWorkers(runtime.GOMAXPROCS(0))
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			j := int(next.Add(1)) * 17
			for pb.Next() {
				if _, err := r.Search("u", queries[j%len(queries)], repo.SearchOptions{BypassCache: true}); err != nil {
					b.Fatal(err)
				}
				j++
			}
		})
	})
	b.Run("parallel-clients-cached", func(b *testing.B) {
		r.SetWorkers(runtime.GOMAXPROCS(0))
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			j := int(next.Add(1)) * 17
			for pb.Next() {
				if _, err := r.Search("u", queries[j%len(queries)], repo.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
				j++
			}
		})
	})
}

// BenchmarkQueryAllParallel measures the engine-internal fan-out: one
// client, QueryAll over many executions of one spec, pool of 1 vs all
// cores.
func BenchmarkQueryAllParallel(b *testing.B) {
	r := repo.New()
	specs, pols := synthRepoFixture(b, 1)
	s := specs[0]
	if err := r.AddSpec(s, pols[s.ID]); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		e, err := exec.NewRunner(s, nil).Run(fmt.Sprintf("E%02d", i), workload.RandomInputs(s, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := r.AddExecution(e); err != nil {
			b.Fatal(err)
		}
	}
	r.AddUser(privacy.User{Name: "u", Level: privacy.Analyst, Group: "g"})
	q := `MATCH a = "query"`
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r.SetWorkers(workers)
			for i := 0; i < b.N; i++ {
				if _, err := r.QueryAll("u", s.ID, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// B9 — Materialized privacy views vs on-the-fly collapse (Sec. 4's
// "materialized views" direction vs its "hidden on-the-fly" default).

func BenchmarkMaterializedViews(b *testing.B) {
	build := func(materialize bool) (*repo.Repository, string) {
		r := repo.New()
		spec := workflow.DiseaseSusceptibility()
		pol := privacy.NewPolicy(spec.ID)
		pol.DataLevels["snps"] = privacy.Owner
		pol.ViewGrants[privacy.Registered] = []string{"W2"}
		if err := r.AddSpec(spec, pol); err != nil {
			b.Fatal(err)
		}
		if materialize {
			if err := r.EnableMaterialization([]privacy.Level{privacy.Public, privacy.Registered}); err != nil {
				b.Fatal(err)
			}
		}
		e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
			"snps": "rs1", "ethnicity": "e", "lifestyle": "l",
			"family_history": "f", "symptoms": "s",
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.AddExecution(e); err != nil {
			b.Fatal(err)
		}
		r.AddUser(privacy.User{Name: "u", Level: privacy.Registered, Group: "g"})
		var progID string
		for id, it := range e.Items {
			if it.Attr == "prognosis" {
				progID = id
			}
		}
		return r, progID
	}
	r1, item1 := build(false)
	b.Run("on-the-fly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r1.Provenance("u", "disease-susceptibility", "E1", item1); err != nil {
				b.Fatal(err)
			}
		}
	})
	r2, item2 := build(true)
	b.Run("materialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r2.Provenance("u", "disease-susceptibility", "E1", item2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// B6 ablation extension: Laplace-perturbed scores vs bucketing — same
// leakage question, but perturbation sacrifices reproducibility.
func BenchmarkRankingPerturbed(b *testing.B) {
	full := rank.NewCorpus()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		var terms []string
		for j := 0; j < 1+rng.Intn(20); j++ {
			terms = append(terms, "database")
		}
		full.Add(fmt.Sprintf("doc%02d", i), terms)
	}
	exact := full.Rank([]string{"database"})
	for _, scale := range []float64{0.5, 2} {
		b.Run(fmt.Sprintf("laplace=%g", scale), func(b *testing.B) {
			var published []rank.Ranked
			for i := 0; i < b.N; i++ {
				published = rank.Perturb(exact, scale, int64(i))
			}
			rep := rank.FrequencyAttack(full, published, "database")
			b.ReportMetric(float64(rep.ExactHits)/float64(rep.Docs), "attack-recovery")
			b.ReportMetric(rank.KendallTau(exact, published), "kendall-tau")
		})
	}
}

// ---------------------------------------------------------------------------
// B10 — The repeated-execution threat (Sec. 3's motivation for module
// privacy): how much of a module's function leaks as executions
// accumulate, with and without a secure view.

func BenchmarkReconstructionAttack(b *testing.B) {
	rel := benchRelation(b, 2, 2, 4, 11) // 16-row domain
	sv, err := modpriv.GreedySecureView(rel, 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var pool []map[string]exec.Value
	for _, r := range rel.Rows {
		pool = append(pool, r.In)
	}
	for _, nExec := range []int{4, 16, 64} {
		obs := make([]map[string]exec.Value, nExec)
		for i := range obs {
			obs[i] = pool[rng.Intn(len(pool))]
		}
		b.Run(fmt.Sprintf("execs=%d/no-hiding", nExec), func(b *testing.B) {
			var st modpriv.AttackStats
			for i := 0; i < b.N; i++ {
				st = modpriv.ReconstructionAttack(rel, obs, modpriv.NewHidden())
			}
			b.ReportMetric(st.Coverage(), "recovered-frac")
		})
		b.Run(fmt.Sprintf("execs=%d/secure-view", nExec), func(b *testing.B) {
			var st modpriv.AttackStats
			for i := 0; i < b.N; i++ {
				st = modpriv.ReconstructionAttack(rel, obs, sv.Hidden)
			}
			b.ReportMetric(st.Coverage(), "recovered-frac")
		})
	}
}

// ---------------------------------------------------------------------------
// Structural-privacy optimizer: cost of trying all strategies (the
// paper's "challenging optimization problem") vs a single fixed one.

func BenchmarkStructuralOptimize(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	g := workload.LayeredDAG(rng, 10, 8, 3)
	cl, err := graph.NewClosure(g)
	if err != nil {
		b.Fatal(err)
	}
	var pair structpriv.Pair
	for u := 0; u < g.N(); u++ {
		for v := g.N() - 1; v > u+8; v-- {
			if cl.Reach(graph.NodeID(u), graph.NodeID(v)) && !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				pair = structpriv.Pair{From: g.Name(graph.NodeID(u)), To: g.Name(graph.NodeID(v))}
				u = g.N()
				break
			}
		}
	}
	b.Run("single-cut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := structpriv.HidePairs(g, []structpriv.Pair{pair}, structpriv.CutEdges, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimize-all", func(b *testing.B) {
		var score float64
		for i := 0; i < b.N; i++ {
			best, _, err := structpriv.Optimize(g, []structpriv.Pair{pair}, structpriv.OptimizeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			score = best.Metrics.UtilityScore()
		}
		b.ReportMetric(score, "best-utility")
	})
	b.Run("optimize-sound", func(b *testing.B) {
		var score float64
		for i := 0; i < b.N; i++ {
			best, _, err := structpriv.Optimize(g, []structpriv.Pair{pair}, structpriv.OptimizeOptions{RequireSound: true})
			if err != nil {
				b.Skip("no sound solution on this instance")
			}
			score = best.Metrics.UtilityScore()
		}
		b.ReportMetric(score, "best-utility")
	})
}

// ---------------------------------------------------------------------------
// Chain-aware module privacy: the cost of defending against the
// downstream-oracle adversary vs standalone analysis.

func BenchmarkChainSecureView(b *testing.B) {
	dom := workload.KDomain(3, "a", "b", "y", "z", "w")
	relFn := workload.RandomTableFunc(3, []string{"y", "z"}, dom)
	rel, err := modpriv.Enumerate("m", relFn, []string{"a", "b"}, []string{"y", "z"}, dom)
	if err != nil {
		b.Fatal(err)
	}
	downFn := workload.RandomTableFunc(4, []string{"w"}, dom)
	down, err := modpriv.Enumerate("d", downFn, []string{"y", "z"}, []string{"w"}, dom)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("standalone-greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := modpriv.GreedySecureView(rel, 3, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chain-greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := modpriv.GreedyChainSecureView(rel, []*modpriv.Relation{down}, 3, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chain-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := modpriv.ExhaustiveChainSecureView(rel, []*modpriv.Relation{down}, 3, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// System-level simulation: mixed workload throughput with the built-in
// leak checker active (internal/sim).

func BenchmarkSimulation(b *testing.B) {
	r := repo.New()
	specs, pols := synthRepoFixture(b, 5)
	for _, s := range specs {
		if err := r.AddSpec(s, pols[s.ID]); err != nil {
			b.Fatal(err)
		}
		e, err := exec.NewRunner(s, nil).Run(s.ID+"-E0", workload.RandomInputs(s, 1))
		if err != nil {
			b.Fatal(err)
		}
		if err := r.AddExecution(e); err != nil {
			b.Fatal(err)
		}
	}
	users := []privacy.User{
		{Name: "b0", Level: privacy.Public, Group: "g0"},
		{Name: "b1", Level: privacy.Registered, Group: "g1"},
		{Name: "b2", Level: privacy.Owner, Group: "g2"},
	}
	for _, u := range users {
		r.AddUser(u)
	}
	b.ResetTimer()
	var leaks int
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(r, sim.Config{Seed: int64(i), Ops: 100, Users: users})
		if err != nil {
			b.Fatal(err)
		}
		leaks += res.LeakIncidents
	}
	b.ReportMetric(float64(leaks), "leaks")
	b.ReportMetric(100, "ops/iter")
}

// ---------------------------------------------------------------------------
// B12 — Index churn: cost of one spec mutation as the repository grows.
// The segmented index rebuilds only the term lists the mutated spec
// touches and publishes a copy-on-write snapshot; the rebuild baseline
// re-indexes the whole repository. The gap (and its growth with
// repository size) is what incremental maintenance buys; repo-mutation
// additionally exercises the corpus delta path on a warm repository.

func BenchmarkIndexChurn(b *testing.B) {
	churn, err := workload.RandomSpec(workload.SpecConfig{
		Seed: 9999, ID: "churn", Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.2,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{10, 50, 200} {
		specs, pols := synthRepoFixture(b, n)
		b.Run(fmt.Sprintf("specs=%d/incremental", n), func(b *testing.B) {
			ix := index.BuildInverted(specs, pols)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.AddSpec(churn, nil)
				ix.RemoveSpec("churn")
			}
		})
		b.Run(fmt.Sprintf("specs=%d/rebuild", n), func(b *testing.B) {
			all := append(append([]*workflow.Spec{}, specs...), churn)
			for i := 0; i < b.N; i++ {
				index.BuildInverted(all, pols)   // add by rebuilding
				index.BuildInverted(specs, pols) // remove by rebuilding
			}
		})
		b.Run(fmt.Sprintf("specs=%d/repo-mutation", n), func(b *testing.B) {
			r := repo.New()
			for _, s := range specs {
				if err := r.AddSpec(s, pols[s.ID]); err != nil {
					b.Fatal(err)
				}
			}
			r.AddUser(privacy.User{Name: "u", Level: privacy.Registered, Group: "g"})
			// Warm the per-level corpus so mutations below go through
			// the delta path, as they would on a serving repository.
			if _, err := r.Search("u", "query", repo.SearchOptions{BypassCache: true}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.AddSpec(churn, nil); err != nil {
					b.Fatal(err)
				}
				if err := r.RemoveSpec("churn"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := r.Stats()
			b.ReportMetric(float64(st.CorpusDeltas), "corpus-deltas")
			b.ReportMetric(float64(st.CorpusRebuilds), "corpus-rebuilds")
		})
	}
}

// BenchmarkSearchMutateParallel measures the tentpole claim end to end:
// read throughput under a continuous writer. With the lock-free index
// snapshot and incremental corpus deltas, parallel search throughput
// with a churning writer should stay close to the read-only figure
// instead of collapsing behind a writer-held lock.
func BenchmarkSearchMutateParallel(b *testing.B) {
	run := func(b *testing.B, withWriter bool) {
		r, queries := parallelSearchFixture(b, 12)
		r.SetWorkers(runtime.GOMAXPROCS(0))
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if withWriter {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					sid := fmt.Sprintf("churn%d", i%4)
					s, err := workload.RandomSpec(workload.SpecConfig{
						Seed: int64(7000 + i%4), ID: sid, Depth: 2, Fanout: 2, Chain: 3,
					})
					if err != nil {
						b.Error(err)
						return
					}
					if err := r.AddSpec(s, nil); err != nil {
						b.Error(err)
						return
					}
					if err := r.RemoveSpec(sid); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			j := int(next.Add(1)) * 17
			for pb.Next() {
				if _, err := r.Search("u", queries[j%len(queries)], repo.SearchOptions{BypassCache: true}); err != nil {
					b.Fatal(err)
				}
				j++
			}
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
		if withWriter {
			b.ReportMetric(float64(r.Stats().IndexSwaps), "index-swaps")
		}
	}
	b.Run("read-only", func(b *testing.B) { run(b, false) })
	b.Run("with-writer", func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------------
// B13 — Taint-aware masking overhead: the cost of converting the paper's
// per-attribute guarantee into an end-to-end one (internal/taint).
// Scales execution size; compares attribute-local masking (taint=off,
// the pre-PR 3 behavior), full analyze+apply (taint=on), and apply with
// a cached taint set (taint=cached, the repository's serving path).

// firstInputAttr picks the lexicographically first input attribute —
// deterministic, unlike map iteration, so consecutive CI bench runs
// protect the same attribute and measure the same work.
func firstInputAttr(inputs map[string]exec.Value) string {
	attrs := make([]string, 0, len(inputs))
	for a := range inputs {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	return attrs[0]
}

func BenchmarkTaintMask(b *testing.B) {
	for _, sz := range []struct {
		name string
		cfg  workload.SpecConfig
	}{
		{"small", workload.SpecConfig{Seed: 13, ID: "taint-s", Depth: 2, Fanout: 2, Chain: 4}},
		{"medium", workload.SpecConfig{Seed: 13, ID: "taint-m", Depth: 3, Fanout: 2, Chain: 5}},
		{"large", workload.SpecConfig{Seed: 13, ID: "taint-l", Depth: 3, Fanout: 3, Chain: 6}},
	} {
		s, err := workload.RandomSpec(sz.cfg)
		if err != nil {
			b.Fatal(err)
		}
		pol, err := workload.RandomPolicy(s, 13)
		if err != nil {
			b.Fatal(err)
		}
		inputs := workload.RandomInputs(s, 13)
		pol.DataLevels[firstInputAttr(inputs)] = privacy.Owner // guarantee taint flows
		e, err := exec.NewRunner(s, nil).Run("E", inputs)
		if err != nil {
			b.Fatal(err)
		}
		en := datapriv.NewMasker(pol, nil).Engine()
		set := en.Analyze(e)
		items := float64(len(e.Items))
		for _, mode := range []struct {
			name string
			run  func()
		}{
			{"taint=off", func() { en.Apply(e, privacy.Public, nil) }},
			{"taint=on", func() { en.Sanitize(e, privacy.Public) }},
			{"taint=cached", func() { en.Apply(e, privacy.Public, set) }},
		} {
			b.Run(fmt.Sprintf("%s/items=%d/%s", sz.name, len(e.Items), mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mode.run()
				}
				b.ReportMetric(items*float64(b.N)/b.Elapsed().Seconds(), "items/s")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// B14 — Masked-snapshot cache: privacy-enforced reads served from the
// per-shard masked-execution cache vs re-masking per request (the PR 3
// read path: construct a masker and deep-copy-rewrite the view on every
// query, even with the collapse and taint analysis already cached).
// Acceptance: the warm cached path is ≥5x fewer allocs/op and
// measurably faster.

func benchMaskedWorkload(b *testing.B, cfg workload.SpecConfig) (*workflow.Spec, *privacy.Policy, *exec.Execution) {
	b.Helper()
	s, err := workload.RandomSpec(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pol, err := workload.RandomPolicy(s, 13)
	if err != nil {
		b.Fatal(err)
	}
	inputs := workload.RandomInputs(s, 13)
	pol.DataLevels[firstInputAttr(inputs)] = privacy.Owner // guarantee taint flows
	e, err := exec.NewRunner(s, nil).Run("E", inputs)
	if err != nil {
		b.Fatal(err)
	}
	return s, pol, e
}

func BenchmarkQueryMaskedCached(b *testing.B) {
	for _, sz := range []struct {
		name string
		cfg  workload.SpecConfig
	}{
		{"medium", workload.SpecConfig{Seed: 13, ID: "mask-m", Depth: 3, Fanout: 2, Chain: 5}},
		{"large", workload.SpecConfig{Seed: 13, ID: "mask-l", Depth: 3, Fanout: 3, Chain: 6}},
	} {
		s, pol, e := benchMaskedWorkload(b, sz.cfg)
		r := repo.New()
		if err := r.AddSpec(s, pol); err != nil {
			b.Fatal(err)
		}
		if err := r.AddExecution(e); err != nil {
			b.Fatal(err)
		}
		r.AddUser(privacy.User{Name: "ana", Level: privacy.Analyst, Group: "g"})
		queryText := `MATCH a = "id:` + s.Workflows[s.Root].Modules[0].ID + `" RETURN bindings`
		// Warm every cache layer once.
		if _, err := r.Query("ana", s.ID, "E", queryText); err != nil {
			b.Fatal(err)
		}

		// uncached: the per-request enforcement work the snapshot cache
		// deletes — collapsed view and taint set already cached (as in
		// PR 3), but each request constructs the masker chain and
		// deep-copy-rewrites the view before evaluating.
		en := datapriv.NewMasker(pol, nil).Engine()
		set := en.Analyze(e)
		h, err := workflow.NewHierarchy(s)
		if err != nil {
			b.Fatal(err)
		}
		view, err := exec.Collapse(e, s, pol.AccessView(h, privacy.Analyst))
		if err != nil {
			b.Fatal(err)
		}
		q, err := query.Parse(queryText)
		if err != nil {
			b.Fatal(err)
		}
		ev := query.NewEvaluator(s)
		b.Run(sz.name+"/uncached", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				masked, _ := datapriv.NewMasker(pol, nil).Engine().Apply(view, privacy.Analyst, set)
				if _, err := ev.EvaluatePrepared(q, masked, pol, privacy.Analyst, false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sz.name+"/cached", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.Query("ana", s.ID, "E", queryText); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// B15 — Provenance under parallel load, served from shared immutable
// masked snapshots: every worker reads the same cached snapshot and
// extracts its own induced sub-execution.
func BenchmarkProvenanceParallel(b *testing.B) {
	s, pol, e := benchMaskedWorkload(b, workload.SpecConfig{
		Seed: 13, ID: "prov-par", Depth: 3, Fanout: 2, Chain: 5,
	})
	r := repo.New()
	if err := r.AddSpec(s, pol); err != nil {
		b.Fatal(err)
	}
	if err := r.AddExecution(e); err != nil {
		b.Fatal(err)
	}
	r.AddUser(privacy.User{Name: "ana", Level: privacy.Analyst, Group: "g"})
	// Pick a publicly visible item deterministically.
	var itemID string
	for _, id := range e.ItemIDs() {
		if _, err := r.Provenance("ana", s.ID, "E", id); err == nil {
			itemID = id
			break
		}
	}
	if itemID == "" {
		b.Fatal("no publicly visible item")
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := r.Provenance("ana", s.ID, "E", itemID); err != nil {
				b.Fatal(err)
			}
		}
	})
}
