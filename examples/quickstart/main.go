// Quickstart: build a small workflow with the fluent builder, execute
// it, and query provenance at two different access levels — the
// "integrate privacy into the engine, not into copies of the
// repository" workflow from the README.
package main

import (
	"fmt"
	"log"

	"provpriv"
)

func main() {
	log.SetFlags(0)
	// A two-stage pipeline with a composite second stage.
	spec, err := provpriv.NewBuilder("pipeline", "Demo Pipeline", "R").
		Workflow("R", "Root").
		Source("I", "raw").
		Atomic("clean", "Clean Data", []string{"raw"}, []string{"cleaned"}).
		Composite("analyze", "Analyze Cohort", "S", []string{"cleaned"}, []string{"report"}).
		Sink("O", "report").
		Edge("I", "clean", "raw").
		Edge("clean", "analyze", "cleaned").
		Edge("analyze", "O", "report").
		Workflow("S", "Analysis").
		Atomic("stats", "Compute Statistics", []string{"cleaned"}, []string{"stats"}).
		Atomic("render", "Render Report", []string{"stats"}, []string{"report"}).
		Edge("stats", "render", "stats").
		Build()
	if err != nil {
		log.Fatalf("build spec: %v", err)
	}

	// Policy: raw data is owner-only; the analysis internals are visible
	// only from level Registered upward.
	pol := provpriv.NewPolicy(spec.ID)
	pol.DataLevels["raw"] = provpriv.Owner
	pol.ViewGrants[provpriv.Registered] = []string{"S"}

	r := provpriv.NewRepository()
	if err := r.AddSpec(spec, pol); err != nil {
		log.Fatalf("add spec: %v", err)
	}
	e, err := provpriv.NewRunner(spec, nil).Run("run-1", map[string]provpriv.Value{"raw": "patient records"})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		log.Fatalf("add execution: %v", err)
	}
	r.AddUser(provpriv.User{Name: "owner", Level: provpriv.Owner, Group: "owners"})
	r.AddUser(provpriv.User{Name: "guest", Level: provpriv.Public, Group: "guests"})

	// Find the final report item.
	var reportID string
	for _, id := range e.ItemIDs() {
		if e.Items[id].Attr == "report" {
			reportID = id
		}
	}

	fmt.Println("== owner's provenance of the report ==")
	provOwner, err := r.Provenance("owner", spec.ID, "run-1", reportID)
	if err != nil {
		log.Fatalf("owner provenance: %v", err)
	}
	fmt.Print(provOwner.ASCII())
	fmt.Println("raw value visible to owner:", itemValue(provOwner, "raw"))

	fmt.Println("\n== guest's provenance of the report ==")
	provGuest, err := r.Provenance("guest", spec.ID, "run-1", reportID)
	if err != nil {
		log.Fatalf("guest provenance: %v", err)
	}
	fmt.Print(provGuest.ASCII())
	fmt.Println("raw value visible to guest:", itemValue(provGuest, "raw"))
	fmt.Println("(the analysis internals are collapsed and raw data masked)")
}

func itemValue(e *provpriv.Execution, attr string) string {
	for _, id := range e.ItemIDs() {
		it := e.Items[id]
		if it.Attr == attr {
			if it.Redacted {
				return "<redacted>"
			}
			return string(it.Value)
		}
	}
	return "<not visible>"
}
