// Structural privacy (Section 3): hide the fact that reformatted
// PubMed-Central data (M13) contributes to the private-dataset update
// (M11) in subworkflow W3 — the paper's own example. Compares the two
// mechanisms the paper sketches: edge cutting (sound, but hides extra
// true paths) and clustering (lossless for visible pairs, but unsound —
// it fabricates M10→M14), then repairs the unsound cluster by growing.
package main

import (
	"fmt"
	"log"

	"provpriv"
	"provpriv/internal/structpriv"
)

func main() {
	log.SetFlags(0)
	spec := provpriv.DiseaseSusceptibility()
	h, _ := provpriv.NewHierarchy(spec)
	view, err := provpriv.Expand(spec, provpriv.FullPrefix(h))
	if err != nil {
		log.Fatalf("expand: %v", err)
	}
	g := view.Graph()
	pair := []structpriv.Pair{{From: "M13", To: "M11"}}

	fmt.Println("goal: hide that M13 (Reformat) contributes to M11 (Update Private Datasets)")

	fmt.Println("\n== strategy 1: minimum edge cut ==")
	cut, err := structpriv.HidePairs(g, pair, structpriv.CutEdges, nil)
	if err != nil {
		log.Fatalf("cut: %v", err)
	}
	fmt.Printf("removed edges: %v\n", cut.RemovedEdges)
	m := cut.Metrics
	fmt.Printf("hidden=%v  lost true pairs (collateral)=%d  extraneous=%d  utility=%.3f\n",
		m.HiddenOK, m.LostPairs, m.ExtraneousPairs, m.UtilityScore())
	fmt.Println("note: M12 no longer appears to reach M11 — true provenance lost")

	fmt.Println("\n== strategy 2: cluster {M11, M13} ==")
	cl, err := structpriv.HidePairs(g, pair, structpriv.Cluster, nil)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	m = cl.Metrics
	fmt.Printf("cluster: %v\n", cl.Cluster)
	fmt.Printf("hidden=%v  lost=%d  extraneous (unsound inferences)=%d  utility=%.3f\n",
		m.HiddenOK, m.LostPairs, m.ExtraneousPairs, m.UtilityScore())
	for _, p := range structpriv.ExtraneousPairs(g, cl) {
		fmt.Printf("  fabricated: %s (the paper's example is M10->M14)\n", p)
	}

	fmt.Println("\n== repair: grow the cluster until sound ==")
	grown, err := structpriv.GrowToSound(g, pair, []string{"M11", "M13"}, 5)
	if err != nil {
		log.Fatalf("grow: %v", err)
	}
	m = grown.Metrics
	fmt.Printf("cluster: %v\n", grown.Cluster)
	fmt.Printf("hidden=%v  extraneous=%d  modules visible=%d  utility=%.3f\n",
		m.HiddenOK, m.ExtraneousPairs, m.ModulesVisible, m.UtilityScore())

	fmt.Println("\n== alternative repair: split (Sun et al. [9]) ==")
	_, private, err := structpriv.SplitToSound(g, pair, []string{"M11", "M13"})
	if err != nil {
		log.Fatalf("split: %v", err)
	}
	fmt.Printf("splitting keeps soundness but privacy preserved = %v\n", private)
	fmt.Println("(the trade-off the paper poses: soundness, privacy, utility — pick two)")
}
