// The paper's running example end-to-end: the disease-susceptibility
// workflow of Fig. 1, executed (Fig. 4), viewed through an access view
// (Fig. 2), keyword-searched (Fig. 5), and structurally queried with
// the paper's Section 4 example query.
package main

import (
	"fmt"
	"log"

	"provpriv"
)

func main() {
	log.SetFlags(0)
	spec := provpriv.DiseaseSusceptibility()

	// Privacy policy motivated by Section 3: genetic inputs and the
	// inferred disorders are sensitive data; the OMIM consultation
	// detail (W4) is visible only to analysts and above.
	pol := provpriv.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = provpriv.Owner
	pol.DataLevels["family_history"] = provpriv.Owner
	pol.DataLevels["disorders"] = provpriv.Analyst
	pol.ViewGrants[provpriv.Registered] = []string{"W2", "W3"}
	pol.ViewGrants[provpriv.Analyst] = []string{"W4"}

	r := provpriv.NewRepository()
	if err := r.AddSpec(spec, pol); err != nil {
		log.Fatalf("add spec: %v", err)
	}
	e, err := provpriv.NewRunner(spec, nil).Run("E1", map[string]provpriv.Value{
		"snps": "rs123,rs456", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "cardiac", "symptoms": "fatigue",
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		log.Fatalf("add execution: %v", err)
	}
	r.AddUser(provpriv.User{Name: "patient", Level: provpriv.Owner, Group: "owners"})
	r.AddUser(provpriv.User{Name: "student", Level: provpriv.Registered, Group: "students"})
	r.AddUser(provpriv.User{Name: "visitor", Level: provpriv.Public, Group: "public"})

	fmt.Println("== execution (Fig. 4) ==")
	fmt.Print(e.ASCII())

	fmt.Println("\n== the patient's view vs the student's view of the same run ==")
	h, _ := provpriv.NewHierarchy(spec)
	full, _ := provpriv.CollapseExecution(e, spec, provpriv.FullPrefix(h))
	student, _ := provpriv.CollapseExecution(e, spec, pol.AccessView(h, provpriv.Registered))
	fmt.Printf("patient sees %d nodes; student sees %d (W4 collapsed into S3:M4)\n",
		len(full.Nodes), len(student.Nodes))

	fmt.Println("\n== keyword search (Fig. 5) ==")
	for _, user := range []string{"patient", "student"} {
		hits, err := r.Search(user, "database, disorder risks", provpriv.SearchOptions{})
		if err != nil {
			log.Fatalf("search as %s: %v", user, err)
		}
		for _, hit := range hits {
			fmt.Printf("%s: view {%v} zoomedOut=%v\n", user, hit.Result.Prefix.IDs(), hit.Result.ZoomedOut)
		}
	}

	fmt.Println("\n== structural query (Section 4's example) ==")
	q := `MATCH a = "expand snp", b = "query omim" WHERE a ~> b RETURN provenance(b)`
	ans, err := r.Query("patient", spec.ID, "E1", q)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Print(ans.Render())
	if len(ans.Provenance) > 0 {
		fmt.Println("provenance of Query OMIM's output:")
		fmt.Print(ans.Provenance[0].ASCII())
	}

	// The same query as the student: M6 runs inside W4, which the
	// student's access view collapses — the engine zooms out.
	ansStudent, err := r.Query("student", spec.ID, "E1", q)
	if err != nil {
		log.Fatalf("student query: %v", err)
	}
	fmt.Printf("student's answer: %d bindings (zoomedOut=%v) — W4 detail is hidden\n",
		len(ansStudent.Bindings), ansStudent.ZoomedOut)

	fmt.Println("\n== taint-aware masking (internal/taint) ==")
	// Item values are symbolic computation traces that embed module
	// inputs verbatim, so the owner-only snps value used to survive
	// inside the public provenance of prognosis. Taint propagation
	// rewrites each embedded protected ancestor value to a mask token
	// (or its generalized form) before the trace is served.
	var prognosis string
	for _, id := range e.ItemIDs() {
		if e.Items[id].Attr == "prognosis" {
			prognosis = id
		}
	}
	prov, err := r.Provenance("visitor", spec.ID, "E1", prognosis)
	if err != nil {
		log.Fatalf("visitor provenance: %v", err)
	}
	fmt.Printf("raw prognosis trace (patient):\n  %s\n", e.Items[prognosis].Value)
	fmt.Printf("taint-masked trace (visitor):\n  %s\n", prov.Items[prognosis].Value)

	fmt.Println("\n== downstream impact ('what might be affected?') ==")
	var snpSet string
	for _, id := range e.ItemIDs() {
		if e.Items[id].Attr == "snp_set" {
			snpSet = id
		}
	}
	down, err := provpriv.Downstream(e, snpSet)
	if err != nil {
		log.Fatalf("downstream: %v", err)
	}
	fmt.Printf("items affected by the expanded SNP set %s: %v\n", snpSet, down)
}
