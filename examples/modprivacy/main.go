// Module privacy (Section 3 / [4]): a proprietary genetic-susceptibility
// module must not have its input→output mapping learnable from repeated
// provenance. We enumerate its relation over finite domains, compute
// minimum-cost secure views for several Γ with both solvers, and show
// the redacted execution an unprivileged user would see.
package main

import (
	"fmt"
	"log"

	"provpriv"
)

func main() {
	log.SetFlags(0)
	// A toy "Determine Genetic Susceptibility": two ternary inputs
	// (snp profile class, ethnicity class) to two ternary outputs
	// (disorder class, confidence).
	fn := func(in map[string]provpriv.Value) map[string]provpriv.Value {
		s := int(in["snp_class"][1] - '0')
		e := int(in["eth_class"][1] - '0')
		return map[string]provpriv.Value{
			"disorder_class": provpriv.Value(fmt.Sprintf("v%d", (s+e)%3)),
			"confidence":     provpriv.Value(fmt.Sprintf("v%d", (s*e)%3)),
		}
	}
	dom := provpriv.Domain{}
	for _, a := range []string{"snp_class", "eth_class", "disorder_class", "confidence"} {
		dom[a] = []provpriv.Value{"v0", "v1", "v2"}
	}
	rel, err := provpriv.EnumerateRelation("M1", fn,
		[]string{"snp_class", "eth_class"}, []string{"disorder_class", "confidence"}, dom)
	if err != nil {
		log.Fatalf("enumerate: %v", err)
	}

	// Utility weights: the disorder class is what users came for —
	// hiding it is expensive; confidence is cheap.
	w := provpriv.Weights{"snp_class": 2, "eth_class": 2, "disorder_class": 5, "confidence": 1}

	fmt.Println("Γ  exact-cost  exact-hidden            greedy-cost  greedy-hidden")
	for _, gamma := range []int{2, 3, 6, 9} {
		ex, err := provpriv.ExhaustiveSecureView(rel, gamma, w)
		if err != nil {
			fmt.Printf("%d  unachievable: %v\n", gamma, err)
			continue
		}
		gr, err := provpriv.GreedySecureView(rel, gamma, w)
		if err != nil {
			log.Fatalf("greedy Γ=%d: %v", gamma, err)
		}
		fmt.Printf("%d  %-10.1f  %-22s  %-11.1f  %s\n",
			gamma, ex.Cost, ex.Hidden.String(), gr.Cost, gr.Hidden.String())
	}

	// Apply the Γ=6 secure view to a real execution of the paper's
	// workflow: hide the chosen attributes in every run.
	sv, _ := provpriv.GreedySecureView(rel, 6, w)
	fmt.Printf("\napplying Γ=6 secure view %s to an execution:\n", sv.Hidden)
	spec := provpriv.DiseaseSusceptibility()
	e, err := provpriv.NewRunner(spec, nil).Run("E1", map[string]provpriv.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh", "symptoms": "none",
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	// Map the toy attribute names onto the real ones for the demo.
	hidden := provpriv.Hidden{}
	if sv.Hidden["snp_class"] {
		hidden["snps"] = true
	}
	if sv.Hidden["eth_class"] {
		hidden["ethnicity"] = true
	}
	if sv.Hidden["disorder_class"] {
		hidden["disorders"] = true
	}
	red := provpriv.RedactExecution(e, hidden)
	for _, id := range red.ItemIDs() {
		it := red.Items[id]
		mark := " "
		if it.Redacted {
			mark = "█"
		}
		fmt.Printf("  %s %-4s %-15s %q\n", mark, id, it.Attr, it.Value)
	}
	fmt.Println("\n(█ = hidden in ALL executions; the module's relation stays Γ-diverse)")
}
