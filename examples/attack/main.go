// The repeated-execution attack of Section 3: "if information about all
// intermediate data is repeatedly given for multiple executions of a
// workflow on different initial inputs, then partial or complete
// functionality of modules may be revealed." We play the competitor who
// harvests provenance graphs to simulate a proprietary module, first
// against an unprotected repository, then against one that publishes a
// Γ-private secure view.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"provpriv"
	"provpriv/internal/modpriv"
)

func main() {
	log.SetFlags(0)
	// The proprietary module: maps (snp_class, eth_class) to a disorder
	// class — the paper's M1, shrunk to a 4x4 domain.
	fn := func(in map[string]provpriv.Value) map[string]provpriv.Value {
		s := int(in["snp_class"][1] - '0')
		e := int(in["eth_class"][1] - '0')
		return map[string]provpriv.Value{
			"disorder_class": provpriv.Value(fmt.Sprintf("v%d", (3*s+e)%4)),
		}
	}
	dom := provpriv.Domain{}
	for _, a := range []string{"snp_class", "eth_class", "disorder_class"} {
		dom[a] = []provpriv.Value{"v0", "v1", "v2", "v3"}
	}
	rel, err := provpriv.EnumerateRelation("M1", fn,
		[]string{"snp_class", "eth_class"}, []string{"disorder_class"}, dom)
	if err != nil {
		log.Fatalf("enumerate: %v", err)
	}

	// The repository accumulates executions on random patient inputs.
	rng := rand.New(rand.NewSource(4))
	randomInput := func() map[string]provpriv.Value {
		return map[string]provpriv.Value{
			"snp_class": provpriv.Value(fmt.Sprintf("v%d", rng.Intn(4))),
			"eth_class": provpriv.Value(fmt.Sprintf("v%d", rng.Intn(4))),
		}
	}

	sv, err := provpriv.GreedySecureView(rel, 4, provpriv.Weights{
		"snp_class": 1, "eth_class": 1, "disorder_class": 3,
	})
	if err != nil {
		log.Fatalf("secure view: %v", err)
	}
	fmt.Printf("module domain: 16 inputs; secure view hides %s (certified Γ=%d)\n\n", sv.Hidden, sv.Level)

	fmt.Println("executions  recovered (no hiding)  recovered (secure view)")
	for _, n := range []int{2, 8, 32, 128} {
		var obs []map[string]provpriv.Value
		for i := 0; i < n; i++ {
			obs = append(obs, randomInput())
		}
		open := modpriv.ReconstructionAttack(rel, obs, modpriv.NewHidden())
		protected := modpriv.ReconstructionAttack(rel, obs, sv.Hidden)
		fmt.Printf("%10d  %9d/16 (%.0f%%)      %9d/16 (%.0f%%)\n",
			n, open.Recovered, 100*open.Coverage(), protected.Recovered, 100*protected.Coverage())
	}
	fmt.Println("\nwith enough provenance the competitor simulates the module exactly;")
	fmt.Println("the Γ-private view leaves every input with ≥4 possible outputs forever.")
}
