package provpriv

// End-to-end taint regression tests: the repository's read paths must
// never serve a raw protected ancestor value embedded inside a derived
// item's trace string. TestRegressionPublicProvenanceEmbedsSNPs is the
// named reproduction of the leak that motivated internal/taint (public
// provenance of prognosis embedded snps=rs123); it fails on the
// pre-taint engine and runs under -race in CI with the rest of the
// suite.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/graph"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// diseaseLeakRepo reproduces examples/disease exactly: the Fig. 1
// workflow, the Section 3 policy and the example's inputs (snps
// rs123,rs456), plus one user per access level.
func diseaseLeakRepo(t *testing.T) (*repo.Repository, *workflow.Spec, *exec.Execution) {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.DataLevels["family_history"] = privacy.Owner
	pol.DataLevels["disorders"] = privacy.Analyst
	pol.ViewGrants[privacy.Registered] = []string{"W2", "W3"}
	pol.ViewGrants[privacy.Analyst] = []string{"W4"}
	r := repo.New()
	if err := r.AddSpec(spec, pol); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs123,rs456", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "cardiac", "symptoms": "fatigue",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		t.Fatalf("AddExecution: %v", err)
	}
	addLevelUsers(r)
	return r, spec, e
}

func addLevelUsers(r *repo.Repository) {
	for _, u := range []privacy.User{
		{Name: "pub", Level: privacy.Public, Group: "g0"},
		{Name: "reg", Level: privacy.Registered, Group: "g1"},
		{Name: "ana", Level: privacy.Analyst, Group: "g2"},
		{Name: "own", Level: privacy.Owner, Group: "g3"},
	} {
		r.AddUser(u)
	}
}

func itemByAttr(t *testing.T, e *exec.Execution, attr string) string {
	t.Helper()
	for _, id := range e.ItemIDs() {
		if e.Items[id].Attr == attr {
			return id
		}
	}
	t.Fatalf("no item with attr %q", attr)
	return ""
}

// TestRegressionPublicProvenanceEmbedsSNPs is the named reproduction:
// before taint propagation, the public provenance of prognosis embedded
// the owner-only snps value rs123 verbatim inside the trace string.
func TestRegressionPublicProvenanceEmbedsSNPs(t *testing.T) {
	r, spec, e := diseaseLeakRepo(t)
	prognosis := itemByAttr(t, e, "prognosis")
	prov, err := r.Provenance("pub", spec.ID, "E1", prognosis)
	if err != nil {
		t.Fatalf("public provenance of prognosis: %v", err)
	}
	for id, it := range prov.Items {
		for _, raw := range []string{"rs123", "rs456", "cardiac"} {
			if strings.Contains(string(it.Value), raw) {
				t.Errorf("public provenance item %s (%s) embeds %q: %q", id, it.Attr, raw, it.Value)
			}
		}
	}
	// The prognosis trace must survive rewritten, not redacted — the
	// whole point of rewriting over wholesale redaction.
	if it := prov.Items[prognosis]; it == nil || it.Redacted {
		t.Fatalf("prognosis missing or redacted in its own provenance: %+v", it)
	}

	// The taint=off escape hatch reopens exactly the documented hole,
	// proving the regression test bites.
	leaky, err := r.ProvenanceWith("pub", spec.ID, "E1", prognosis, repo.ProvenanceOptions{DisableTaint: true})
	if err != nil {
		t.Fatalf("untainted provenance: %v", err)
	}
	var reproduced bool
	for _, it := range leaky.Items {
		if strings.Contains(string(it.Value), "rs123") {
			reproduced = true
		}
	}
	if !reproduced {
		t.Fatal("DisableTaint no longer reproduces the rs123 leak; the regression fixture is stale")
	}
}

// TestRegressionAnalystQueryEmbedsSNPs covers the structural-query read
// path: the Section 4 example query as an analyst binds real modules
// (the analyst sees W2–W4) and returns provenance subgraphs, whose item
// values must not embed the owner-only snps value.
func TestRegressionAnalystQueryEmbedsSNPs(t *testing.T) {
	r, spec, _ := diseaseLeakRepo(t)
	q := `MATCH a = "expand snp", b = "query omim" WHERE a ~> b RETURN provenance(b)`
	ans, err := r.Query("ana", spec.ID, "E1", q)
	if err != nil {
		t.Fatalf("query as ana: %v", err)
	}
	if len(ans.Bindings) == 0 {
		t.Fatal("analyst query bound nothing; the fixture no longer exercises provenance")
	}
	for _, prov := range ans.Provenance {
		for id, it := range prov.Items {
			for _, raw := range []string{"rs123", "rs456", "cardiac"} {
				if strings.Contains(string(it.Value), raw) {
					t.Errorf("analyst query provenance item %s embeds %q: %q", id, raw, it.Value)
				}
			}
		}
	}
}

// leakOracle asserts, for one served execution view, that no visible
// item embeds the raw value of a protected ancestor above the viewer's
// level. It recomputes reachability from the raw execution, independent
// of the engine's own taint set.
func leakOracle(t *testing.T, full, served *exec.Execution, pol *privacy.Policy, level privacy.Level, ctx string) {
	t.Helper()
	g := full.Graph()
	cl, err := graph.NewClosure(g)
	if err != nil {
		t.Fatalf("%s: closure: %v", ctx, err)
	}
	for _, srcID := range full.ItemIDs() {
		src := full.Items[srcID]
		if pol.DataLevels[src.Attr] <= level || src.Value == "" {
			continue
		}
		from := g.Lookup(src.Producer)
		if from < 0 {
			t.Fatalf("%s: producer %s missing from graph", ctx, src.Producer)
		}
		reach := cl.From(from)
		for id, it := range served.Items {
			fullItem := full.Items[id]
			if fullItem == nil {
				continue
			}
			prod := g.Lookup(fullItem.Producer)
			if prod < 0 || !reach.Has(int(prod)) {
				continue
			}
			if strings.Contains(string(it.Value), string(src.Value)) {
				t.Errorf("%s: item %s (%s) embeds protected ancestor %s=%q at level %s",
					ctx, id, it.Attr, src.Attr, src.Value, level)
			}
		}
	}
}

// TestLeakFreeProvenanceAllLevels sweeps the example workflow and
// synthetic random specs: for every execution, every item and every
// access level, served provenance must pass the ancestor oracle.
func TestLeakFreeProvenanceAllLevels(t *testing.T) {
	r, spec, e := diseaseLeakRepo(t)
	execs := map[string]map[string]*exec.Execution{spec.ID: {"E1": e}}
	pols := map[string]*privacy.Policy{spec.ID: r.Policy(spec.ID)}

	for i := 0; i < 3; i++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: int64(300 + i), ID: fmt.Sprintf("leak-synth-%d", i),
			Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.25,
		})
		if err != nil {
			t.Fatalf("synth %d: %v", i, err)
		}
		pol, err := workload.RandomPolicy(s, int64(300+i))
		if err != nil {
			t.Fatalf("policy %d: %v", i, err)
		}
		inputs := workload.RandomInputs(s, int64(i))
		attrs := make([]string, 0, len(inputs))
		for a := range inputs {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		pol.DataLevels[attrs[0]] = privacy.Owner // deterministic taint source
		if err := r.AddSpec(s, pol); err != nil {
			t.Fatalf("AddSpec synth %d: %v", i, err)
		}
		se, err := exec.NewRunner(s, nil).Run("E1", inputs)
		if err != nil {
			t.Fatalf("run synth %d: %v", i, err)
		}
		if err := r.AddExecution(se); err != nil {
			t.Fatalf("add exec %d: %v", i, err)
		}
		execs[s.ID] = map[string]*exec.Execution{"E1": se}
		pols[s.ID] = pol
	}

	users := []struct {
		name  string
		level privacy.Level
	}{
		{"pub", privacy.Public}, {"reg", privacy.Registered},
		{"ana", privacy.Analyst}, {"own", privacy.Owner},
	}
	for specID, byExec := range execs {
		for execID, full := range byExec {
			for _, u := range users {
				for _, itemID := range full.ItemIDs() {
					prov, err := r.Provenance(u.name, specID, execID, itemID)
					if err != nil {
						continue // hidden at this level: fine
					}
					ctx := fmt.Sprintf("%s/%s/%s as %s", specID, execID, itemID, u.name)
					leakOracle(t, full, prov, pols[specID], u.level, ctx)
				}
			}
		}
	}
}

// TestTaintCountersOnMaterializedFastPath: provenance served from the
// materialized-view fast path must stay leak-free AND keep the taint
// counters moving (the view store records its masking report).
func TestTaintCountersOnMaterializedFastPath(t *testing.T) {
	r, spec, e := diseaseLeakRepo(t)
	if err := r.EnableMaterialization([]privacy.Level{privacy.Public}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	prognosis := itemByAttr(t, e, "prognosis")
	before := r.Stats().TaintRewritten
	prov, err := r.Provenance("pub", spec.ID, "E1", prognosis)
	if err != nil {
		t.Fatalf("fast-path provenance: %v", err)
	}
	for id, it := range prov.Items {
		if strings.Contains(string(it.Value), "rs123") {
			t.Errorf("materialized provenance item %s embeds rs123: %q", id, it.Value)
		}
	}
	if after := r.Stats().TaintRewritten; after <= before {
		t.Fatalf("fast path did not feed taint counters: %d -> %d", before, after)
	}
}
