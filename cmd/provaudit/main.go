// Command provaudit audits a privacy policy against a workflow
// specification: it reports what each access level can see, solves the
// structural-privacy optimization for every hidden pair (choosing the
// best of cut/cluster per utility), and flags potential downstream
// leaks where a protected attribute flows into a module whose outputs
// are public — the workflow-privacy pitfall of module privacy.
//
//	provaudit -example
//	provaudit -spec spec.json -policy policy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"provpriv/internal/audit"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("provaudit: ")
	specPath := flag.String("spec", "", "workflow specification JSON")
	polPath := flag.String("policy", "", "policy JSON")
	example := flag.Bool("example", false, "audit the built-in paper example")
	flag.Parse()

	var spec *workflow.Spec
	var pol *privacy.Policy
	switch {
	case *example:
		spec = workflow.DiseaseSusceptibility()
		pol = privacy.NewPolicy(spec.ID)
		pol.DataLevels["snps"] = privacy.Owner
		pol.DataLevels["disorders"] = privacy.Analyst
		pol.ModuleLevels["M6"] = privacy.Owner
		pol.ModuleGamma["M1"] = 4
		pol.Structural = []privacy.HiddenPair{{From: "M13", To: "M11", Level: privacy.Owner}}
		pol.ViewGrants[privacy.Registered] = []string{"W2"}
		pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	case *specPath != "" && *polPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatalf("read spec: %v", err)
		}
		spec, err = workflow.UnmarshalSpec(data)
		if err != nil {
			log.Fatalf("parse spec: %v", err)
		}
		pdata, err := os.ReadFile(*polPath)
		if err != nil {
			log.Fatalf("read policy: %v", err)
		}
		pol = &privacy.Policy{}
		if err := json.Unmarshal(pdata, pol); err != nil {
			log.Fatalf("parse policy: %v", err)
		}
	default:
		log.Fatal("need -example or both -spec and -policy")
	}

	rep, err := audit.Run(spec, pol)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Print(rep.Render())
}
