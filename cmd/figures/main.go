// Command figures regenerates the figures of the CIDR 2011 paper
// "Enabling Privacy in Provenance-Aware Workflow Systems" from the
// library's implementation of its running example:
//
//	figures -fig 1   workflow specification (Fig. 1)
//	figures -fig 2   provenance-graph view under prefix {W1} (Fig. 2)
//	figures -fig 3   expansion hierarchy (Fig. 3)
//	figures -fig 4   full execution (Fig. 4)
//	figures -fig 5   result of keyword query "database, disorder risks" (Fig. 5)
//	figures -fig 0   all of the above
//
// Pass -dot for Graphviz output instead of ASCII.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"provpriv/internal/exec"
	"provpriv/internal/graph"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.Int("fig", 0, "figure number (1-5); 0 = all")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of ASCII")
	flag.Parse()

	spec := workflow.DiseaseSusceptibility()
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs123", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		log.Fatalf("execute: %v", err)
	}

	show := func(n int) {
		switch n {
		case 1:
			header(1, "Disease Susceptibility Workflow Specification")
			if *dot {
				h, _ := workflow.NewHierarchy(spec)
				v, err := workflow.Expand(spec, fullSpecView(h))
				if err != nil {
					log.Fatalf("fig 1: %v", err)
				}
				fmt.Println(v.DOT())
				break
			}
			// The paper draws each workflow separately with τ edges for
			// the composite expansions.
			h, _ := workflow.NewHierarchy(spec)
			for _, wid := range h.All() {
				w := spec.Workflows[wid]
				fmt.Printf("%s (%s):\n", w.ID, w.Name)
				for _, m := range w.Modules {
					tag := ""
					if m.Kind == workflow.Composite {
						tag = fmt.Sprintf("  --τ--> %s", m.Sub)
					}
					fmt.Printf("  %-4s %-28s%s\n", m.ID, m.Name, tag)
				}
				for _, e := range w.Edges {
					fmt.Printf("    %s -> %s  [%s]\n", e.From, e.To, strings.Join(e.Data, ","))
				}
			}
			if st, err := workflow.ComputeStats(spec); err == nil {
				fmt.Println(st)
			}
		case 2:
			view, err := exec.Collapse(e, spec, workflow.NewPrefix("W1"))
			if err != nil {
				log.Fatalf("fig 2: %v", err)
			}
			header(2, "View of Provenance Graph (prefix {W1})")
			if *dot {
				fmt.Println(view.DOT())
			} else {
				fmt.Print(view.ASCII())
			}
		case 3:
			h, err := workflow.NewHierarchy(spec)
			if err != nil {
				log.Fatalf("fig 3: %v", err)
			}
			header(3, "Expansion Hierarchy")
			if *dot {
				fmt.Println(h.Graph().DOT(graph.DotOptions{Name: "hierarchy", Rankdir: "TB"}))
			} else {
				fmt.Print(h.ASCII())
			}
		case 4:
			header(4, "Disease Susceptibility Workflow Execution")
			if *dot {
				fmt.Println(e.DOT())
			} else {
				fmt.Print(e.ASCII())
			}
		case 5:
			res, err := search.Search(spec, search.ParseQuery("Database, Disorder Risks"))
			if err != nil {
				log.Fatalf("fig 5: %v", err)
			}
			header(5, `Result of Query "Database, Disorder Risks"`)
			if *dot {
				fmt.Println(res.View.DOT())
			} else {
				fmt.Print(res.View.ASCII())
				fmt.Println("matches:")
				for _, m := range res.Matches {
					fmt.Printf("  %q -> %s (in %s)\n", m.Phrase, m.ModuleID, m.Workflow)
				}
			}
		default:
			log.Fatalf("unknown figure %d (want 1-5)", n)
		}
	}

	if *fig == 0 {
		for n := 1; n <= 5; n++ {
			show(n)
			fmt.Println()
		}
		return
	}
	show(*fig)
}

func header(n int, title string) {
	fmt.Printf("== Figure %d: %s ==\n", n, title)
}

func fullSpecView(h *workflow.Hierarchy) workflow.Prefix {
	return workflow.FullPrefix(h)
}
