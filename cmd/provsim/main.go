// Command provsim load-tests a repository with a simulated user
// population and verifies, on every response, that no answer exceeded
// the issuing user's rights — a privacy regression driver.
//
//	provsim -data ./provdata -ops 2000 -users 8
//	provsim -example -ops 500
package main

import (
	"flag"
	"fmt"
	"log"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/sim"
	"provpriv/internal/workflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("provsim: ")
	data := flag.String("data", "", "repository directory (provgen/Save format)")
	example := flag.Bool("example", false, "use the built-in paper example")
	ops := flag.Int("ops", 1000, "operations to simulate")
	nUsers := flag.Int("users", 4, "simulated users (levels assigned round-robin)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var r *repo.Repository
	switch {
	case *example:
		r = exampleRepo()
	case *data != "":
		var err error
		r, err = repo.Load(*data)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
	default:
		log.Fatal("need -data DIR or -example")
	}

	levels := []privacy.Level{privacy.Public, privacy.Registered, privacy.Analyst, privacy.Owner}
	var users []privacy.User
	for i := 0; i < *nUsers; i++ {
		u := privacy.User{
			Name:  fmt.Sprintf("sim-user-%d", i),
			Level: levels[i%len(levels)],
			Group: fmt.Sprintf("group-%d", i%len(levels)),
		}
		r.AddUser(u)
		users = append(users, u)
	}

	res, err := sim.Run(r, sim.Config{Seed: *seed, Ops: *ops, Users: users})
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	fmt.Print(r.Describe())
	fmt.Print(res.Render())
	if res.LeakIncidents > 0 {
		log.Fatalf("PRIVACY VIOLATIONS: %d leak incidents", res.LeakIncidents)
	}
	fmt.Println("no privacy violations detected")
}

func exampleRepo() *repo.Repository {
	r := repo.New()
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.DataLevels["disorders"] = privacy.Analyst
	pol.ModuleLevels["M6"] = privacy.Owner
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	if err := r.AddSpec(spec, pol); err != nil {
		log.Fatalf("example: %v", err)
	}
	for i := 0; i < 3; i++ {
		e, err := exec.NewRunner(spec, nil).Run(fmt.Sprintf("E%d", i), map[string]exec.Value{
			"snps": exec.Value(fmt.Sprintf("rs%d", i)), "ethnicity": "eth1",
			"lifestyle": "active", "family_history": "fh", "symptoms": "none",
		})
		if err != nil {
			log.Fatalf("example run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			log.Fatalf("example add: %v", err)
		}
	}
	return r
}
