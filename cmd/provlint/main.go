// Command provlint runs the repository's invariant analyzers (see
// internal/analysis) over a package pattern, vet-style:
//
//	provlint ./...
//
// Findings print one per line as file:line:col: message (check) and
// the exit status is 1 if any survive //provlint:ignore suppression,
// so CI can gate on it exactly like go vet. -bench writes analyzer
// wall times as JSON for the perf-trajectory artifact; -list prints
// the suite with each check's contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"provpriv/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and their invariants, then exit")
	bench := flag.String("bench", "", "write analyzer wall-time JSON to this path")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: provlint [-list] [-bench out.json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.RunTree(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "provlint:", err)
		os.Exit(2)
	}

	if *bench != "" {
		report := map[string]any{
			"packages":     res.Packages,
			"load_wall_ms": float64(res.LoadWall.Nanoseconds()) / 1e6,
			"checks":       res.Timings,
			"findings":     len(res.Findings),
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "provlint:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*bench, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "provlint:", err)
			os.Exit(2)
		}
	}

	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "provlint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}
