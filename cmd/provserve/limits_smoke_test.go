package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"provpriv/internal/auth"
	"provpriv/internal/workflow"
)

// provserveProc is one booted provserve binary under test.
type provserveProc struct {
	cmd  *exec.Cmd
	logs *strings.Builder
	base string
}

// startProvserve boots the prebuilt binary with the given extra flags
// and waits for liveness.
func startProvserve(t *testing.T, bin, addr string, extra ...string) *provserveProc {
	t.Helper()
	args := append([]string{"-addr", addr, "-log-format", "json"}, extra...)
	cmd := exec.Command(bin, args...)
	var logs strings.Builder
	cmd.Stderr = &logs
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	p := &provserveProc{cmd: cmd, logs: &logs, base: "http://" + addr}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy\nserver logs:\n%s", logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stop SIGTERMs the process and waits for a clean exit.
func (p *provserveProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit: %v\nserver logs:\n%s", err, p.logs.String())
		}
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("server did not exit after SIGTERM\nserver logs:\n%s", p.logs.String())
	}
}

// bearer performs one request with a bearer secret and returns the
// status code and the Retry-After header.
func bearer(t *testing.T, method, url, secret string, body []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+secret)
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// TestProvserveLimitsAndReload drives the admission controller and the
// token lifecycle against the live binary: a reader bursts into 429s
// with Retry-After and recovers after backing off; rewriting the token
// file and sending SIGHUP rotates a credential without a restart
// (polling is disabled, so SIGHUP alone must do it); a mutation leaves
// a durable audit record that is still queryable after a full restart.
func TestProvserveLimitsAndReload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary smoke test")
	}
	bin := filepath.Join(t.TempDir(), "provserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	tokens := filepath.Join(t.TempDir(), "tokens")
	writeTokens := func(oldSecret bool) {
		rotating := "sec-new"
		if oldSecret {
			rotating = "sec-old"
		}
		lines := []string{
			"t-admin:admin:owner:" + auth.HashSecret("sec-admin"),
			"t-reader:reader:public:" + auth.HashSecret("sec-reader"),
			"t-rotate:reader:public:" + auth.HashSecret(rotating),
		}
		if err := os.WriteFile(tokens, []byte(strings.Join(lines, "\n")+"\n"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	writeTokens(true)

	dataDir, auditDir := t.TempDir(), t.TempDir()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	flags := []string{
		"-data", dataDir,
		"-token-file", tokens,
		"-token-reload", "0", // SIGHUP is the only reload trigger
		"-rate-reader", "5",
		"-rate-burst", "3",
		"-audit-log", auditDir,
	}
	p := startProvserve(t, bin, addr, flags...)
	search := p.base + "/api/v1/search?q=database"

	// Burst: a reader gets its burst of 3, then 429s with a positive
	// Retry-After.
	var ok200, ok429 int
	for i := 0; i < 10; i++ {
		code, ra := bearer(t, "GET", search, "sec-reader", nil)
		switch code {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			ok429++
			if ra == "" {
				t.Fatalf("429 without Retry-After on burst request %d", i)
			}
		default:
			t.Fatalf("burst request %d = %d", i, code)
		}
	}
	if ok200 == 0 || ok429 == 0 {
		t.Fatalf("burst saw %d 200s and %d 429s; want both", ok200, ok429)
	}
	// Admin traffic rides a different (unlimited) budget the whole time.
	if code, _ := bearer(t, "GET", search, "sec-admin", nil); code != http.StatusOK {
		t.Fatalf("admin during reader burst = %d", code)
	}
	// Recovery: at 5 tokens/s a one-second backoff refills the bucket.
	time.Sleep(1200 * time.Millisecond)
	if code, _ := bearer(t, "GET", search, "sec-reader", nil); code != http.StatusOK {
		t.Fatal("reader still limited after backing off")
	}

	// Rotate t-rotate's secret on disk and SIGHUP. The new secret must
	// start working and the old one failing, without a restart; the
	// unchanged admin token must keep working.
	writeTokens(false)
	if err := p.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatalf("SIGHUP: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// 429 also proves the credential authenticated (limits run after
		// auth), so only 401 means "rotation not live yet".
		code, _ := bearer(t, "GET", search, "sec-new", nil)
		if code == http.StatusOK || code == http.StatusTooManyRequests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rotated secret still rejected (%d) after SIGHUP\nserver logs:\n%s", code, p.logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if code, _ := bearer(t, "GET", search, "sec-old", nil); code != http.StatusUnauthorized {
		t.Fatal("revoked secret still authenticates after SIGHUP reload")
	}
	if code, _ := bearer(t, "GET", search, "sec-admin", nil); code != http.StatusOK {
		t.Fatal("unchanged token broken by SIGHUP reload")
	}
	if !strings.Contains(p.logs.String(), "token file reloaded") {
		t.Fatalf("no reload record in server logs:\n%s", p.logs.String())
	}

	// A mutation through the live binary leaves one audit record.
	spec, err := workflow.NewBuilder("smoke", "Smoke Spec", "R").
		Workflow("R", "Root").
		Source("I", "x").
		Atomic("A1", "Smoke Step", []string{"x"}, []string{"y"}).
		Sink("O", "y").
		Edge("I", "A1", "x").
		Edge("A1", "O", "y").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	specJSON, _ := json.Marshal(spec)
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	if code, _ := bearer(t, "POST", p.base+"/api/v1/specs", "sec-admin", body); code != http.StatusCreated {
		t.Fatalf("add spec = %d", code)
	}

	auditOf := func(base string) []map[string]any {
		req, _ := http.NewRequest(http.MethodGet, base+"/api/v1/audit?action=spec.add", nil)
		req.Header.Set("Authorization", "Bearer sec-admin")
		resp, err := (&http.Client{Timeout: 5 * time.Second}).Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Enabled bool             `json:"enabled"`
			Records []map[string]any `json:"records"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("audit response: %v", err)
		}
		if resp.StatusCode != http.StatusOK || !out.Enabled {
			t.Fatalf("audit = %d enabled=%v", resp.StatusCode, out.Enabled)
		}
		return out.Records
	}
	recs := auditOf(p.base)
	if len(recs) != 1 || recs[0]["target"] != "smoke" || recs[0]["outcome"] != "ok" {
		t.Fatalf("audit after mutation = %+v", recs)
	}

	// Restart: the audit record survives — it was durably committed, not
	// process state.
	p.stop(t)
	addr2 := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	p2 := startProvserve(t, bin, addr2, flags...)
	recs = auditOf(p2.base)
	if len(recs) != 1 || recs[0]["target"] != "smoke" {
		t.Fatalf("audit after restart = %+v", recs)
	}
	p2.stop(t)
	_ = os.Remove(bin)
}
