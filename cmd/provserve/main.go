// Command provserve serves a provenance repository over HTTP: the
// multi-tenant front door to the sharded query engine. It loads a
// repository directory produced by provgen (or the built-in paper
// example), registers one user per access level, and exposes the JSON
// API of internal/server.
//
// Serve the built-in example:
//
//	provserve -example -addr :8080
//
// Serve a generated corpus with extra registered users:
//
//	provserve -data ./provdata -addr :8080 -user analyst1=2 -user owner1=3
//
// Query it (the X-Prov-User header names the principal; ?user= works
// for curl convenience):
//
//	curl -H 'X-Prov-User: owner' 'localhost:8080/api/v1/search?q=database'
//	curl 'localhost:8080/api/v1/provenance?user=public&spec=disease-susceptibility&exec=E1&item=d18'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/server"
	"provpriv/internal/workflow"
)

// userFlags collects repeated -user NAME=LEVEL flags.
type userFlags []privacy.User

func (u *userFlags) String() string { return fmt.Sprint(*u) }

func (u *userFlags) Set(v string) error {
	name, lvl, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=LEVEL, got %q", v)
	}
	n, err := strconv.Atoi(lvl)
	if err != nil || n < 0 {
		return fmt.Errorf("bad level in %q", v)
	}
	*u = append(*u, privacy.User{Name: name, Level: privacy.Level(n), Group: "level" + lvl})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("provserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "repository directory from provgen or repo.Save")
	example := flag.Bool("example", false, "serve the built-in paper example instead of -data")
	workers := flag.Int("workers", 0, "fan-out pool size (0 = GOMAXPROCS)")
	allowTaintOff := flag.Bool("allow-taint-off", false,
		"honor the provenance taint=off debug parameter (reopens the embedded-trace-value leak; never enable on a shared deployment)")
	var users userFlags
	flag.Var(&users, "user", "register a user as NAME=LEVEL (repeatable)")
	flag.Parse()

	var r *repo.Repository
	switch {
	case *example:
		r = repo.New()
		loadExample(r)
	case *data != "":
		var err error
		if r, err = repo.Load(*data); err != nil {
			log.Fatalf("load %s: %v", *data, err)
		}
	default:
		log.Fatal("need -data DIR or -example")
	}
	if *workers > 0 {
		r.SetWorkers(*workers)
	}
	// Default principals: one per common level, so the API is usable
	// out of the box. Explicit -user flags add or override.
	for _, u := range []privacy.User{
		{Name: "public", Level: privacy.Public, Group: "public"},
		{Name: "registered", Level: privacy.Registered, Group: "registered"},
		{Name: "analyst", Level: privacy.Analyst, Group: "analysts"},
		{Name: "owner", Level: privacy.Owner, Group: "owners"},
	} {
		r.AddUser(u)
	}
	for _, u := range users {
		r.AddUser(u)
	}

	srv := server.New(r)
	srv.Logger = log.Default()
	srv.AllowDisableTaint = *allowTaintOff
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	log.Printf("serving on %s", *addr)
	fmt.Print(r.Describe())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		log.Print("bye")
	}
}

// loadExample seeds the paper's disease-susceptibility workflow with
// the canonical policy (snps owner-only, disorders analyst-only,
// per-level view grants) and one execution — the same fixture the CLI
// tools and tests use.
func loadExample(r *repo.Repository) {
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.DataLevels["disorders"] = privacy.Analyst
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	if err := r.AddSpec(spec, pol); err != nil {
		log.Fatalf("example spec: %v", err)
	}
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs123", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		log.Fatalf("example execution: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		log.Fatalf("example execution: %v", err)
	}
}
