// Command provserve serves a provenance repository over HTTP: the
// multi-tenant front door to the sharded query engine. It loads a
// repository directory produced by provgen (or the built-in paper
// example, or starts empty), registers one user per access level, and
// exposes the JSON API of internal/server — reads and, with a token
// file, the authenticated mutation surface.
//
// Serve the built-in example:
//
//	provserve -example -addr :8080
//
// Serve a generated corpus with extra registered users:
//
//	provserve -data ./provdata -addr :8080 -user analyst1=2 -user owner1=3
//
// Query it (the X-Prov-User header names the principal; ?user= works
// for curl convenience). Without a token file, header principals are
// fully trusted — dev mode only:
//
//	curl -H 'X-Prov-User: owner' 'localhost:8080/api/v1/search?q=database'
//	curl 'localhost:8080/api/v1/provenance?user=public&spec=disease-susceptibility&exec=E1&item=d18'
//
// Production: generate a token file (see internal/auth for the format;
// `provserve -hash-secret` turns a secret into the stored digest) and
// start with -token-file. Header auth is then rejected — clients send
// `Authorization: Bearer <secret>` — and mutations flow:
//
//	printf %s "$SECRET" | provserve -hash-secret
//	provserve -data ./provdata -token-file ./tokens
//	curl -X POST -H "Authorization: Bearer $SECRET" -d @spec.json \
//	  'localhost:8080/api/v1/specs'
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"provpriv/internal/auditlog"
	"provpriv/internal/auth"
	"provpriv/internal/exec"
	"provpriv/internal/limit"
	"provpriv/internal/obs"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/server"
	"provpriv/internal/storage"
	"provpriv/internal/tasks"
	"provpriv/internal/workflow"
)

// userFlags collects repeated -user NAME=LEVEL flags.
type userFlags []privacy.User

func (u *userFlags) String() string { return fmt.Sprint(*u) }

func (u *userFlags) Set(v string) error {
	name, lvl, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=LEVEL, got %q", v)
	}
	n, err := strconv.Atoi(lvl)
	if err != nil || n < 0 {
		return fmt.Errorf("bad level in %q", v)
	}
	*u = append(*u, privacy.User{Name: name, Level: privacy.Level(n), Group: "level" + lvl})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("provserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "repository directory from provgen or repo.Save (missing manifest starts empty)")
	backendName := flag.String("backend", "flat",
		"storage backend for a new -data directory: flat (per-shard log files) or kv (embedded key-value store); existing directories keep the backend they were written with")
	example := flag.Bool("example", false, "serve the built-in paper example instead of -data")
	workers := flag.Int("workers", 0, "fan-out pool size (0 = GOMAXPROCS)")
	taskWorkers := flag.Int("task-workers", 2, "background task workers (bulk ingest, compaction, prewarming; 0 disables the async surface)")
	taskQueue := flag.Int("task-queue", 64, "background task queue capacity (full queue = 429 on async endpoints)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"shutdown budget for draining in-flight requests and background tasks before stragglers are canceled")
	compactInterval := flag.Duration("compact-interval", 0,
		"periodically fold oversized shard logs in the background (0 disables; compaction also runs after each save)")
	allowTaintOff := flag.Bool("allow-taint-off", false,
		"honor the provenance taint=off debug parameter (reopens the embedded-trace-value leak; never enable on a shared deployment)")
	tokenFile := flag.String("token-file", "",
		"bearer-token file (name:role:user:sha256hex per line); configuring it disables the trusted X-Prov-User header")
	allowHeaderAuth := flag.Bool("allow-header-auth", false,
		"with -token-file, keep accepting X-Prov-User header principals as read-only (migration bridge)")
	tokenReload := flag.Duration("token-reload", 5*time.Second,
		"poll the token file for changes at this interval and hot-swap the token set (0 disables polling; SIGHUP always forces a reload)")
	rateReader := flag.Float64("rate-reader", 0,
		"per-principal sustained request rate for reader-role principals, req/s (0 = unlimited)")
	rateWriter := flag.Float64("rate-writer", 0,
		"per-principal sustained request rate for writer-role principals, req/s (0 = unlimited)")
	rateAdmin := flag.Float64("rate-admin", 0,
		"per-principal sustained request rate for admin-role principals, req/s (0 = unlimited)")
	rateBurst := flag.Float64("rate-burst", 10,
		"token-bucket depth for the -rate-* limits: how many requests a principal may burst above the sustained rate")
	maxInflight := flag.Int("max-inflight", 0,
		"global cap on concurrently served requests; excess is shed with 503 (0 = unlimited)")
	maxInflightPrincipal := flag.Int("max-inflight-principal", 0,
		"per-principal cap on concurrent requests; excess is 429 + Retry-After (0 = unlimited)")
	auditDir := flag.String("audit-log", "",
		"directory for the append-only mutation audit log (who/what/when/outcome, queryable at GET /api/v1/audit; empty disables auditing)")
	saveDir := flag.String("save-dir", "",
		"directory POST /api/v1/save persists to (default: the -data directory; empty disables the endpoint)")
	hashSecret := flag.Bool("hash-secret", false,
		"read a secret from stdin, print its token-file digest, and exit")
	newToken := flag.String("new-token", "",
		"generate a random secret for NAME:ROLE:USER, print the secret and the token-file line, and exit")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	traceSample := flag.Int("trace-sample", 8,
		"trace one request in N (1 traces everything, 0 disables tracing)")
	traceRing := flag.Int("trace-ring", 256, "completed traces kept for GET /api/v1/debug/traces")
	slowThreshold := flag.Duration("slow-threshold", 500*time.Millisecond,
		"requests slower than this are logged and flagged in traces")
	enablePprof := flag.Bool("pprof", false, "expose /debug/pprof/ (admin role required)")
	var users userFlags
	flag.Var(&users, "user", "register a user as NAME=LEVEL (repeatable)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		log.Fatal(err)
	}
	// Route any stray std-log output (and the pre-structured fatal
	// paths) through the structured handler too.
	slog.SetDefault(logger)

	if *hashSecret {
		sc := bufio.NewScanner(os.Stdin)
		if !sc.Scan() {
			log.Fatal("hash-secret: no input on stdin")
		}
		fmt.Println(auth.HashSecret(strings.TrimSpace(sc.Text())))
		return
	}
	if *newToken != "" {
		// The secure path made easy: a fresh 256-bit secret plus the
		// ready-to-append token-file line. The secret is printed once,
		// to stdout, and never stored.
		parts := strings.Split(*newToken, ":")
		if len(parts) != 3 {
			log.Fatalf("new-token: want NAME:ROLE:USER, got %q", *newToken)
		}
		if _, err := auth.ParseRole(parts[1]); err != nil {
			log.Fatalf("new-token: %v", err)
		}
		secret, err := auth.NewSecret()
		if err != nil {
			log.Fatalf("new-token: %v", err)
		}
		fmt.Printf("secret: %s\ntoken-file line: %s:%s:%s:%s\n",
			secret, parts[0], parts[1], parts[2], auth.HashSecret(secret))
		return
	}

	if *backendName != "flat" && *backendName != "kv" {
		log.Fatalf("bad -backend %q (want flat or kv)", *backendName)
	}
	var r *repo.Repository
	var store *storage.Measure
	switch {
	case *example:
		r = repo.New()
		loadExample(r)
	case *data != "":
		if r, store, err = openDataDir(logger, *data, *backendName); err != nil {
			log.Fatalf("load %s: %v", *data, err)
		}
	default:
		log.Fatal("need -data DIR or -example")
	}
	if *workers > 0 {
		r.SetWorkers(*workers)
	}
	// Default principals: one per common level, so the API is usable
	// out of the box. Explicit -user flags add or override.
	for _, u := range []privacy.User{
		{Name: "public", Level: privacy.Public, Group: "public"},
		{Name: "registered", Level: privacy.Registered, Group: "registered"},
		{Name: "analyst", Level: privacy.Analyst, Group: "analysts"},
		{Name: "owner", Level: privacy.Owner, Group: "owners"},
	} {
		r.AddUser(u)
	}
	for _, u := range users {
		r.AddUser(u)
	}

	srv := server.New(r)
	srv.Logger = logger
	srv.Store = store
	srv.AllowDisableTaint = *allowTaintOff
	srv.EnablePprof = *enablePprof
	srv.RequireStorage = store != nil

	// The observability layer: request ids + per-route histograms on
	// every request, sampled tracing through the engine, panic recovery.
	metrics := obs.NewMetrics()
	tracer := obs.NewTracer(*traceRing, *traceSample, *slowThreshold)
	srv.Obs = obs.NewObserver(metrics, logger, tracer)

	authMode := "trusted-headers (dev)"
	var authStore *auth.Store
	if *tokenFile != "" {
		authStore, err = auth.NewFileStore(*tokenFile)
		if err != nil {
			log.Fatalf("token file: %v", err)
		}
		srv.Auth = authStore
		srv.AllowHeaderAuth = *allowHeaderAuth
		authMode = "bearer-tokens"
		if *allowHeaderAuth {
			authMode = "bearer-tokens+read-only-headers"
		}
	} else {
		logger.Warn("trusted X-Prov-User headers accepted (dev mode; use -token-file in production)")
	}

	// Admission control: only built when the operator configured at
	// least one limit, so an unconfigured server keeps the zero-cost
	// fast path.
	if *rateReader > 0 || *rateWriter > 0 || *rateAdmin > 0 ||
		*maxInflight > 0 || *maxInflightPrincipal > 0 {
		srv.Limiter = limit.New(limit.Config{
			MaxInFlight:             *maxInflight,
			MaxInFlightPerPrincipal: *maxInflightPrincipal,
		})
		srv.Rates = server.RoleRates{
			Reader: limit.Rate{PerSec: *rateReader, Burst: *rateBurst},
			Writer: limit.Rate{PerSec: *rateWriter, Burst: *rateBurst},
			Admin:  limit.Rate{PerSec: *rateAdmin, Burst: *rateBurst},
		}
	}

	// Mutation audit log: its own storage directory (never mixed into
	// the repository's shards) so the repo loader and the audit replay
	// each see only their own record types.
	var alog *auditlog.Log
	if *auditDir != "" {
		ab, err := storage.OpenFlat(*auditDir)
		if err != nil {
			log.Fatalf("audit log: %v", err)
		}
		if alog, err = auditlog.Open(ab); err != nil {
			log.Fatalf("audit log: %v", err)
		}
		srv.Audit = alog
	}
	switch {
	case *saveDir != "":
		srv.SaveDir = *saveDir
	case *data != "":
		srv.SaveDir = *data
	}
	var rt *tasks.Runtime
	if *taskWorkers > 0 {
		rt = tasks.New(*taskWorkers, *taskQueue)
		// Terminal tasks feed the queue-wait/run histograms; sampled
		// attempts get their own root traces in the debug ring.
		rt.SetObserve(metrics.ObserveTask)
		rt.SetTraceHook(tracer.StartRoot)
		srv.Tasks = rt
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// One structured record with the effective configuration, so any
	// aggregated log stream identifies how this process was running.
	logger.Info("serving",
		"addr", *addr,
		"data_dir", *data,
		"backend", *backendName,
		"example", *example,
		"fanout_workers", *workers,
		"task_workers", *taskWorkers,
		"task_queue", *taskQueue,
		"drain_timeout", *drainTimeout,
		"compact_interval", *compactInterval,
		"auth_mode", authMode,
		"token_reload", *tokenReload,
		"rate_reader", *rateReader,
		"rate_writer", *rateWriter,
		"rate_admin", *rateAdmin,
		"rate_burst", *rateBurst,
		"max_inflight", *maxInflight,
		"max_inflight_principal", *maxInflightPrincipal,
		"audit_log", *auditDir,
		"save_dir", srv.SaveDir,
		"log_format", *logFormat,
		"log_level", *logLevel,
		"trace_sample", *traceSample,
		"trace_ring", *traceRing,
		"slow_threshold", *slowThreshold,
		"pprof", *enablePprof,
	)
	fmt.Print(r.Describe())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Hot token rotation: SIGHUP forces a reload, and (by default) an
	// mtime/size poll picks up edits without any signal. A reload swaps
	// the token set atomically — unchanged tokens are carried over by
	// pointer, so in-flight requests never flap — and a malformed edit
	// is logged and ignored, keeping the last good set.
	if authStore != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			var tick <-chan time.Time
			if *tokenReload > 0 {
				t := time.NewTicker(*tokenReload)
				defer t.Stop()
				tick = t.C
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					if err := authStore.Reload(); err != nil {
						logger.Error("token reload failed; keeping previous token set",
							"trigger", "sighup", "error", err)
					} else {
						logger.Info("token file reloaded",
							"trigger", "sighup", "tokens", len(authStore.Stats()))
					}
				case <-tick:
					reloaded, err := authStore.MaybeReload()
					if err != nil {
						logger.Error("token reload failed; keeping previous token set",
							"trigger", "poll", "error", err)
					} else if reloaded {
						logger.Info("token file reloaded",
							"trigger", "poll", "tokens", len(authStore.Stats()))
					}
				}
			}
		}()
	}

	// Optional off-path compaction ticker: fold oversized shard logs even
	// when nobody calls POST /api/v1/save or /api/v1/compact.
	if *compactInterval > 0 && rt != nil {
		ticker := time.NewTicker(*compactInterval)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if len(r.NeedsCompaction()) == 0 {
						continue
					}
					if id := srv.EnqueueCompaction(); id != "" {
						logger.Info("compaction pass enqueued", "task", id)
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		// Graceful drain, one deadline for the whole sequence: stop
		// accepting requests and finish in-flight ones, let background
		// tasks run down (stragglers are canceled at the deadline), then
		// take a final snapshot so nothing accepted before the signal is
		// lost, and release the storage backend. Each stage logs its own
		// duration so a slow shutdown names its culprit.
		srv.SetDraining(true)
		logger.Info("shutdown started", "drain_timeout", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		stage := time.Now()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown: http drain", "duration", time.Since(stage), "error", err)
		} else {
			logger.Info("shutdown: http drained", "duration", time.Since(stage))
		}
		if rt != nil {
			stage = time.Now()
			if err := rt.Drain(shutdownCtx); err != nil {
				logger.Error("shutdown: task drain", "duration", time.Since(stage), "error", err)
			} else {
				logger.Info("shutdown: tasks drained", "duration", time.Since(stage))
			}
		}
		if srv.SaveDir != "" {
			stage = time.Now()
			if err := r.Save(srv.SaveDir); err != nil {
				logger.Error("shutdown: final save", "duration", time.Since(stage), "error", err)
			} else {
				logger.Info("shutdown: saved", "dir", srv.SaveDir, "duration", time.Since(stage))
			}
		}
		if err := r.CloseStorage(); err != nil {
			logger.Error("shutdown: close storage", "error", err)
		}
		if alog != nil {
			if err := alog.Close(); err != nil {
				logger.Error("shutdown: close audit log", "error", err)
			}
		}
		logger.Info("shutdown complete")
	}
}

// openDataDir opens (or creates) the repository directory with a
// measured storage backend, so the server can export storage counters.
// An existing directory keeps the backend it was written with (store.kv
// marks the KV store); the -backend flag only picks the engine for a
// fresh directory. Legacy pre-log directories load read-only and get a
// measured flat backend bound for the migrating first save.
func openDataDir(logger *slog.Logger, dir, backendName string) (*repo.Repository, *storage.Measure, error) {
	open := func(name string) (storage.Backend, error) {
		if name == "kv" {
			return storage.OpenKV(dir)
		}
		return storage.OpenFlat(dir)
	}
	if _, err := os.Stat(filepath.Join(dir, storage.KVFileName)); err == nil {
		backendName = "kv"
	} else if _, err := os.Stat(filepath.Join(dir, "manifest.json")); os.IsNotExist(err) {
		// A fresh directory: start empty — the mutation endpoints fill it
		// and POST /api/v1/save commits the first snapshot.
		logger.Info("starting empty repository", "dir", dir, "backend", backendName)
		b, err := open(backendName)
		if err != nil {
			return nil, nil, err
		}
		m := storage.NewMeasure(b)
		r := repo.New()
		if err := r.BindStorage(m, dir); err != nil {
			m.Close()
			return nil, nil, err
		}
		return r, m, nil
	} else {
		backendName = "flat"
	}
	b, err := open(backendName)
	if err != nil {
		return nil, nil, err
	}
	m := storage.NewMeasure(b)
	r, err := repo.LoadStorage(m, dir)
	if errors.Is(err, storage.ErrLegacyLayout) {
		m.Close()
		if r, err = repo.Load(dir); err != nil {
			return nil, nil, err
		}
		logger.Info("legacy layout: will migrate to the log engine on first save", "dir", dir)
		b, err = storage.OpenFlat(dir)
		if err != nil {
			return nil, nil, err
		}
		m = storage.NewMeasure(b)
		if err := r.BindStorage(m, dir); err != nil {
			m.Close()
			return nil, nil, err
		}
		return r, m, nil
	}
	if err != nil {
		m.Close()
		return nil, nil, err
	}
	return r, m, nil
}

// loadExample seeds the paper's disease-susceptibility workflow with
// the canonical policy (snps owner-only, disorders analyst-only,
// per-level view grants) and one execution — the same fixture the CLI
// tools and tests use.
func loadExample(r *repo.Repository) {
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.DataLevels["disorders"] = privacy.Analyst
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	if err := r.AddSpec(spec, pol); err != nil {
		log.Fatalf("example spec: %v", err)
	}
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs123", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		log.Fatalf("example execution: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		log.Fatalf("example execution: %v", err)
	}
}
