package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"provpriv/internal/obs"
)

// freePort reserves an ephemeral port and releases it for the server
// under test (a small race with other processes, covered by the
// readiness poll failing the test loudly rather than hanging).
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestProvserveSmoke boots the real binary against a fresh data
// directory and walks the operational surface end to end: readiness,
// a search, a live /metrics scrape validated with the strict exposition
// parser, and a clean SIGTERM drain. This is the CI e2e step — it
// exercises flag parsing, storage binding, the middleware chain and the
// shutdown sequence, none of which in-process handler tests touch.
func TestProvserveSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary smoke test")
	}
	bin := filepath.Join(t.TempDir(), "provserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	dataDir := t.TempDir()
	cmd := exec.Command(bin,
		"-data", dataDir,
		"-addr", addr,
		"-log-format", "json",
		"-trace-sample", "1",
	)
	var logs strings.Builder
	cmd.Stderr = &logs
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	client := &http.Client{Timeout: 2 * time.Second}
	base := "http://" + addr
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v\nserver logs:\n%s", path, err, logs.String())
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// Poll liveness until the listener is up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy\nserver logs:\n%s", logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Readiness: the fresh data directory bound a storage backend at
	// startup, so a non-draining server is ready.
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d: %s\nserver logs:\n%s", code, body, logs.String())
	}

	// One search through the full middleware chain (empty repository:
	// zero hits is fine, the route must answer 200 with a request id).
	resp, err := client.Get(base + "/api/v1/search?user=public&q=database")
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d", resp.StatusCode)
	}
	if rid := resp.Header.Get("X-Request-Id"); len(rid) != 32 {
		t.Fatalf("search X-Request-Id = %q", rid)
	}

	// Live /metrics must parse under the strict exposition validator.
	code, metrics := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if err := obs.ValidateExposition(metrics); err != nil {
		t.Fatalf("live exposition invalid: %v\n---\n%s", err, metrics)
	}
	if !strings.Contains(string(metrics), "provpriv_http_requests_total") {
		t.Fatalf("no request counters in live metrics")
	}

	// Clean SIGTERM drain: exit 0 and the staged shutdown log trail.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit: %v\nserver logs:\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server did not exit after SIGTERM\nserver logs:\n%s", logs.String())
	}
	out := logs.String()
	for _, want := range []string{"shutdown started", "shutdown: http drained", "shutdown complete"} {
		if !strings.Contains(out, want) {
			t.Fatalf("shutdown log missing %q:\n%s", want, out)
		}
	}
	// The startup config record is the first structured line.
	if !strings.Contains(out, `"msg":"serving"`) {
		t.Fatalf("no structured serving record:\n%s", out)
	}
	_ = os.Remove(bin)
}
