// Command provsearch loads a repository directory produced by provgen
// (or the built-in paper example) and answers keyword and structural
// queries as a user at a chosen access level — demonstrating the
// paper's privacy-integrated search engine.
//
// Keyword search over the built-in example:
//
//	provsearch -example -level 3 -query "database, disorder risks"
//
// Structural query over a generated repository:
//
//	provsearch -data ./provdata -level 1 -spec synth-0 -exec synth-0-E0 \
//	    -squery 'MATCH a = "query", b = "combine" WHERE a ~> b RETURN provenance(b)'
package main

import (
	"flag"
	"fmt"
	"log"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/query"
	"provpriv/internal/repo"
	"provpriv/internal/workflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("provsearch: ")
	data := flag.String("data", "", "repository directory from provgen")
	example := flag.Bool("example", false, "use the built-in paper example instead of -data")
	level := flag.Int("level", 0, "access level of the querying user (0=public)")
	queryText := flag.String("query", "", "keyword query, e.g. 'database, disorder risks'")
	squery := flag.String("squery", "", "structural query (MATCH ... WHERE ... RETURN ...)")
	specID := flag.String("spec", "", "spec id for -squery")
	execID := flag.String("exec", "", "execution id for -squery")
	buckets := flag.Int("buckets", 0, "privacy-aware ranking: bucketize scores into N buckets")
	zoom := flag.Bool("zoom", false, "evaluate -squery with the gradual zoom-out strategy")
	flag.Parse()

	var r *repo.Repository
	switch {
	case *example:
		r = repo.New()
		loadExample(r)
	case *data != "":
		// repo.Load understands every layout provgen emits: the log
		// engine (flat files or KV store) and the legacy per-entity one.
		var err error
		if r, err = repo.Load(*data); err != nil {
			log.Fatalf("load %s: %v", *data, err)
		}
		defer r.CloseStorage()
	default:
		log.Fatal("need -data DIR or -example")
	}
	user := privacy.User{Name: "cli", Level: privacy.Level(*level), Group: fmt.Sprintf("level%d", *level)}
	r.AddUser(user)
	fmt.Print(r.Describe())

	switch {
	case *queryText != "":
		hits, err := r.Search("cli", *queryText, repo.SearchOptions{Buckets: *buckets})
		if err != nil {
			log.Fatalf("search: %v", err)
		}
		if len(hits) == 0 {
			fmt.Println("no results")
			return
		}
		for i, h := range hits {
			fmt.Printf("[%d] %s score=%.3f view={%s}", i+1, h.SpecID, h.Score,
				joinIDs(h.Result.Prefix.IDs()))
			if h.Result.ZoomedOut {
				fmt.Print(" (zoomed out)")
			}
			fmt.Println()
			for _, m := range h.Result.Matches {
				if m.ZoomedTo != "" {
					fmt.Printf("    %q -> %s (shown as %s)\n", m.Phrase, m.ModuleID, m.ZoomedTo)
				} else {
					fmt.Printf("    %q -> %s (in %s)\n", m.Phrase, m.ModuleID, m.Workflow)
				}
			}
		}
	case *squery != "":
		if *specID == "" || *execID == "" {
			log.Fatal("-squery needs -spec and -exec")
		}
		var ans *query.Answer
		var err error
		if *zoom {
			res, zerr := r.QueryZoomOut("cli", *specID, *execID, *squery)
			if zerr != nil {
				log.Fatalf("query: %v", zerr)
			}
			fmt.Printf("zoom-out steps: %d, final view {%s}\n", res.Steps, joinIDs(res.Prefix.IDs()))
			ans = res.Answer
		} else {
			ans, err = r.Query("cli", *specID, *execID, *squery)
			if err != nil {
				log.Fatalf("query: %v", err)
			}
		}
		fmt.Print(ans.Render())
		for i, p := range ans.Provenance {
			fmt.Printf("provenance of binding %d:\n%s", i, p.ASCII())
		}
		for i, ds := range ans.Downstream {
			fmt.Printf("downstream of binding %d: %v\n", i, ds)
		}
	default:
		log.Fatal("need -query or -squery")
	}
}

func joinIDs(ids []string) string {
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += id
	}
	return out
}

func loadExample(r *repo.Repository) {
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.DataLevels["disorders"] = privacy.Analyst
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	if err := r.AddSpec(spec, pol); err != nil {
		log.Fatalf("example spec: %v", err)
	}
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs123", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		log.Fatalf("example execution: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		log.Fatalf("example execution: %v", err)
	}
}
