// Command provgen generates a synthetic provenance-aware workflow
// repository on disk: workflow specifications, privacy policies and
// executions. It substitutes for the public scientific-workflow
// repositories the paper assumes.
//
//	provgen -out ./data -specs 5 -execs 3 -depth 3 -fanout 2 -chain 4 -seed 1
//
// By default the repository is written in the crash-safe log-engine
// layout (per-shard checkpoint + log, committed by an atomic manifest
// swap), in either storage backend:
//
//	provgen -out ./data -backend kv
//
// -layout legacy emits the pre-log per-entity JSON layout instead — a
// fixture generator for migration testing; the engine still loads it
// and upgrades it on the first save.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/storage"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// legacyManifest lists the files of a legacy-layout repository.
type legacyManifest struct {
	Specs      []string `json:"specs"`
	Policies   []string `json:"policies,omitempty"`
	Executions []string `json:"executions"`
}

// corpus is the generated content, independent of the on-disk layout.
type corpus struct {
	specs []*workflow.Spec
	pols  []*privacy.Policy // nil entries when -policies=false
	execs [][]*exec.Execution
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("provgen: ")
	out := flag.String("out", "provdata", "output directory")
	nSpecs := flag.Int("specs", 5, "number of specifications")
	nExecs := flag.Int("execs", 3, "executions per specification")
	depth := flag.Int("depth", 3, "expansion-hierarchy depth")
	fanout := flag.Int("fanout", 2, "composite modules per workflow")
	chain := flag.Int("chain", 4, "modules per workflow chain")
	skip := flag.Float64("skip", 0.3, "skip-edge probability")
	seed := flag.Int64("seed", 1, "random seed")
	withPolicies := flag.Bool("policies", true, "generate a random privacy policy per spec")
	layout := flag.String("layout", "log", "on-disk layout: log (crash-safe engine) or legacy (pre-log per-entity JSON)")
	backendName := flag.String("backend", "flat", "log-layout storage backend: flat or kv")
	flag.Parse()

	if *layout != "log" && *layout != "legacy" {
		log.Fatalf("bad -layout %q (want log or legacy)", *layout)
	}
	if *backendName != "flat" && *backendName != "kv" {
		log.Fatalf("bad -backend %q (want flat or kv)", *backendName)
	}

	c := generate(*nSpecs, *nExecs, *depth, *fanout, *chain, *skip, *seed, *withPolicies)
	var err error
	if *layout == "legacy" {
		err = writeLegacy(*out, c)
	} else {
		err = writeLog(*out, *backendName, c)
	}
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, es := range c.execs {
		total += len(es)
	}
	fmt.Printf("wrote %d specs, %d executions to %s (%s layout)\n", len(c.specs), total, *out, *layout)
}

func generate(nSpecs, nExecs, depth, fanout, chain int, skip float64, seed int64, withPolicies bool) corpus {
	var c corpus
	for i := 0; i < nSpecs; i++ {
		cfg := workload.SpecConfig{
			Seed:     seed + int64(i),
			ID:       fmt.Sprintf("synth-%d", i),
			Depth:    depth,
			Fanout:   fanout,
			Chain:    chain,
			SkipProb: skip,
		}
		spec, err := workload.RandomSpec(cfg)
		if err != nil {
			log.Fatalf("generate spec %d: %v", i, err)
		}
		var pol *privacy.Policy
		if withPolicies {
			if pol, err = workload.RandomPolicy(spec, seed+int64(i)); err != nil {
				log.Fatalf("generate policy %d: %v", i, err)
			}
		}
		runner := exec.NewRunner(spec, nil)
		execs := make([]*exec.Execution, 0, nExecs)
		for j := 0; j < nExecs; j++ {
			e, err := runner.Run(fmt.Sprintf("%s-E%d", spec.ID, j),
				workload.RandomInputs(spec, seed+int64(i*1000+j)))
			if err != nil {
				log.Fatalf("execute %s run %d: %v", spec.ID, j, err)
			}
			execs = append(execs, e)
		}
		c.specs = append(c.specs, spec)
		c.pols = append(c.pols, pol)
		c.execs = append(c.execs, execs)
	}
	return c
}

// writeLog persists the corpus through the storage engine: one bound
// repository save, so the output is exactly what the server writes.
func writeLog(out, backendName string, c corpus) error {
	r := repo.New()
	for i, spec := range c.specs {
		if err := r.AddSpec(spec, c.pols[i]); err != nil {
			return fmt.Errorf("add spec %s: %w", spec.ID, err)
		}
		for _, e := range c.execs[i] {
			if err := r.AddExecution(e); err != nil {
				return fmt.Errorf("add execution %s: %w", e.ID, err)
			}
		}
	}
	var b storage.Backend
	var err error
	if backendName == "kv" {
		b, err = storage.OpenKV(out)
	} else {
		b, err = storage.OpenFlat(out)
	}
	if err != nil {
		return err
	}
	if err := r.BindStorage(b, out); err != nil {
		b.Close()
		return err
	}
	if err := r.Save(out); err != nil {
		return fmt.Errorf("save %s: %w", out, err)
	}
	return r.CloseStorage()
}

// writeLegacy emits the pre-log layout: per-entity JSON files plus the
// parallel-list manifest.
func writeLegacy(out string, c corpus) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return fmt.Errorf("mkdir: %w", err)
	}
	var man legacyManifest
	for i, spec := range c.specs {
		specPath := fmt.Sprintf("spec-%d.json", i)
		if err := writeJSONFile(filepath.Join(out, specPath), func(f *os.File) error {
			return workflow.WriteSpec(f, spec)
		}); err != nil {
			return fmt.Errorf("write %s: %w", specPath, err)
		}
		man.Specs = append(man.Specs, specPath)
		if c.pols[i] != nil {
			polData, err := json.MarshalIndent(c.pols[i], "", "  ")
			if err != nil {
				return fmt.Errorf("encode policy %d: %w", i, err)
			}
			polPath := fmt.Sprintf("policy-%d.json", i)
			if err := os.WriteFile(filepath.Join(out, polPath), polData, 0o644); err != nil {
				return fmt.Errorf("write %s: %w", polPath, err)
			}
			man.Policies = append(man.Policies, polPath)
		}
		for j, e := range c.execs[i] {
			execPath := fmt.Sprintf("exec-%d-%d.json", i, j)
			if err := writeJSONFile(filepath.Join(out, execPath), func(f *os.File) error {
				return exec.WriteExecution(f, e)
			}); err != nil {
				return fmt.Errorf("write %s: %w", execPath, err)
			}
			man.Executions = append(man.Executions, execPath)
		}
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(out, "manifest.json"), manData, 0o644); err != nil {
		return fmt.Errorf("write manifest: %w", err)
	}
	return nil
}

func writeJSONFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
