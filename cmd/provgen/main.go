// Command provgen generates a synthetic provenance-aware workflow
// repository on disk: workflow specifications (JSON), executions (JSON)
// and a manifest. It substitutes for the public scientific-workflow
// repositories the paper assumes.
//
//	provgen -out ./data -specs 5 -execs 3 -depth 3 -fanout 2 -chain 4 -seed 1
//
// The generated directory can be loaded by provsearch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"provpriv/internal/exec"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// Manifest lists the files of a generated repository.
type Manifest struct {
	Specs      []string `json:"specs"`
	Policies   []string `json:"policies,omitempty"`
	Executions []string `json:"executions"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("provgen: ")
	out := flag.String("out", "provdata", "output directory")
	nSpecs := flag.Int("specs", 5, "number of specifications")
	nExecs := flag.Int("execs", 3, "executions per specification")
	depth := flag.Int("depth", 3, "expansion-hierarchy depth")
	fanout := flag.Int("fanout", 2, "composite modules per workflow")
	chain := flag.Int("chain", 4, "modules per workflow chain")
	skip := flag.Float64("skip", 0.3, "skip-edge probability")
	seed := flag.Int64("seed", 1, "random seed")
	withPolicies := flag.Bool("policies", true, "generate a random privacy policy per spec")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("mkdir: %v", err)
	}
	var man Manifest
	for i := 0; i < *nSpecs; i++ {
		cfg := workload.SpecConfig{
			Seed:     *seed + int64(i),
			ID:       fmt.Sprintf("synth-%d", i),
			Depth:    *depth,
			Fanout:   *fanout,
			Chain:    *chain,
			SkipProb: *skip,
		}
		spec, err := workload.RandomSpec(cfg)
		if err != nil {
			log.Fatalf("generate spec %d: %v", i, err)
		}
		specPath := fmt.Sprintf("spec-%d.json", i)
		if err := writeJSONFile(filepath.Join(*out, specPath), func(f *os.File) error {
			return workflow.WriteSpec(f, spec)
		}); err != nil {
			log.Fatalf("write %s: %v", specPath, err)
		}
		man.Specs = append(man.Specs, specPath)

		if *withPolicies {
			pol, err := workload.RandomPolicy(spec, *seed+int64(i))
			if err != nil {
				log.Fatalf("generate policy %d: %v", i, err)
			}
			polData, err := json.MarshalIndent(pol, "", "  ")
			if err != nil {
				log.Fatalf("encode policy %d: %v", i, err)
			}
			polPath := fmt.Sprintf("policy-%d.json", i)
			if err := os.WriteFile(filepath.Join(*out, polPath), polData, 0o644); err != nil {
				log.Fatalf("write %s: %v", polPath, err)
			}
			man.Policies = append(man.Policies, polPath)
		}

		runner := exec.NewRunner(spec, nil)
		for j := 0; j < *nExecs; j++ {
			e, err := runner.Run(fmt.Sprintf("%s-E%d", spec.ID, j),
				workload.RandomInputs(spec, *seed+int64(i*1000+j)))
			if err != nil {
				log.Fatalf("execute %s run %d: %v", spec.ID, j, err)
			}
			execPath := fmt.Sprintf("exec-%d-%d.json", i, j)
			if err := writeJSONFile(filepath.Join(*out, execPath), func(f *os.File) error {
				return exec.WriteExecution(f, e)
			}); err != nil {
				log.Fatalf("write %s: %v", execPath, err)
			}
			man.Executions = append(man.Executions, execPath)
		}
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		log.Fatalf("manifest: %v", err)
	}
	if err := os.WriteFile(filepath.Join(*out, "manifest.json"), manData, 0o644); err != nil {
		log.Fatalf("write manifest: %v", err)
	}
	fmt.Printf("wrote %d specs, %d executions to %s\n", len(man.Specs), len(man.Executions), *out)
}

func writeJSONFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
