package provpriv

// Golden tests pinning the regenerated paper figures: any change to the
// model, scheduler or search semantics that drifts from the paper's
// artifacts fails here first.

import (
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
)

func fig4Execution(t *testing.T) *exec.Execution {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	e, err := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs123", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e
}

const goldenFig4 = `execution E1 of disease-susceptibility
  I -> S1:M1-begin  [d0,d1]
  I -> S8:M2-begin  [d2,d3,d4]
  S10:M12 -> S11:M13  [d13]
  S11:M13 -> S12:M14  [d14]
  S11:M13 -> S14:M11  [d14]
  S12:M14 -> S15:M15  [d15]
  S13:M10 -> S14:M11  [d16]
  S14:M11 -> S15:M15  [d17]
  S15:M15 -> S8:M2-end  [d18]
  S1:M1-begin -> S2:M3  [d0,d1]
  S1:M1-end -> S8:M2-begin  [d10]
  S2:M3 -> S3:M4-begin  [d5]
  S3:M4-begin -> S4:M5  [d5]
  S3:M4-end -> S1:M1-end  [d10]
  S4:M5 -> S5:M6  [d6]
  S4:M5 -> S6:M7  [d7]
  S5:M6 -> S7:M8  [d8]
  S6:M7 -> S7:M8  [d9]
  S7:M8 -> S3:M4-end  [d10]
  S8:M2-begin -> S9:M9  [d2,d3,d4,d10]
  S8:M2-end -> O  [d18]
  S9:M9 -> S10:M12  [d11]
  S9:M9 -> S13:M10  [d12]
`

func TestGoldenFig4(t *testing.T) {
	e := fig4Execution(t)
	if got := e.ASCII(); got != goldenFig4 {
		t.Fatalf("Fig. 4 drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenFig4)
	}
}

const goldenFig2 = `execution E1/view of disease-susceptibility
  I -> S1:M1  [d0,d1]
  I -> S8:M2  [d2,d3,d4]
  S1:M1 -> S8:M2  [d10]
  S8:M2 -> O  [d18]
`

func TestGoldenFig2(t *testing.T) {
	e := fig4Execution(t)
	spec := workflow.DiseaseSusceptibility()
	v, err := exec.Collapse(e, spec, workflow.NewPrefix("W1"))
	if err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	if got := v.ASCII(); got != goldenFig2 {
		t.Fatalf("Fig. 2 drifted:\n--- got ---\n%s--- want ---\n%s", got, goldenFig2)
	}
}

const goldenFig3 = `W1
  W2
    W4
  W3
`

func TestGoldenFig3(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	h, err := workflow.NewHierarchy(spec)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	if got := h.ASCII(); got != goldenFig3 {
		t.Fatalf("Fig. 3 drifted:\n%s", got)
	}
}

func TestGoldenFig5(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	res, err := search.Search(spec, search.ParseQuery("Database, Disorder Risks"))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	ascii := res.View.ASCII()
	wantLines := []string{
		"modules: I, M2, M3, M5, M6, M7, M8, O",
		"I -> M2  [family_history,lifestyle,symptoms]",
		"I -> M3  [ethnicity,snps]",
		"M2 -> O  [prognosis]",
		"M3 -> M5  [snp_set]",
		"M5 -> M6  [query_omim]",
		"M5 -> M7  [query_pubmed]",
		"M6 -> M8  [disorders_omim]",
		"M7 -> M8  [disorders_pubmed]",
		"M8 -> M2  [disorders]",
	}
	for _, line := range wantLines {
		if !strings.Contains(ascii, line) {
			t.Fatalf("Fig. 5 missing %q:\n%s", line, ascii)
		}
	}
}

func TestGoldenFig1FullExpansionEdges(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	h, _ := workflow.NewHierarchy(spec)
	v, err := workflow.Expand(spec, workflow.FullPrefix(h))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	ascii := v.ASCII()
	// Section 2's two named edges plus the full module roster.
	for _, line := range []string{
		"M3 -> M5  [snp_set]",
		"M8 -> M9  [disorders]",
		"modules: I, M10, M11, M12, M13, M14, M15, M3, M5, M6, M7, M8, M9, O",
	} {
		if !strings.Contains(ascii, line) {
			t.Fatalf("Fig. 1 full expansion missing %q:\n%s", line, ascii)
		}
	}
}
