// Package provpriv is a privacy-enabled provenance-aware workflow
// system: a Go implementation of Davidson et al., "Enabling Privacy in
// Provenance-Aware Workflow Systems" (CIDR 2011).
//
// The package is a facade over the implementation packages:
//
//   - hierarchical workflow specifications with τ-expansions and prefix
//     views (internal/workflow);
//   - executions / provenance graphs with begin–end composite nodes and
//     per-edge data items (internal/exec);
//   - the three privacy mechanisms of the paper — data privacy
//     (internal/datapriv), module privacy with Γ-guarantees
//     (internal/modpriv) and structural privacy by cutting or clustering
//     (internal/structpriv);
//   - privacy-aware keyword search with minimal views (internal/search),
//     structural queries (internal/query), TF-IDF ranking with leakage
//     controls (internal/rank), privacy-classified indexes
//     (internal/index) and the repository tying them together
//     (internal/repo).
//
// Quickstart:
//
//	spec := provpriv.DiseaseSusceptibility()
//	r := provpriv.NewRepository()
//	pol := provpriv.NewPolicy(spec.ID)
//	pol.DataLevels["snps"] = provpriv.Owner
//	_ = r.AddSpec(spec, pol)
//	e, _ := provpriv.NewRunner(spec, nil).Run("E1", inputs)
//	_ = r.AddExecution(e)
//	r.AddUser(provpriv.User{Name: "alice", Level: provpriv.Owner})
//	hits, _ := r.Search("alice", "database, disorder risks", provpriv.SearchOptions{})
package provpriv

import (
	"provpriv/internal/datapriv"
	"provpriv/internal/dp"
	"provpriv/internal/exec"
	"provpriv/internal/modpriv"
	"provpriv/internal/privacy"
	"provpriv/internal/query"
	"provpriv/internal/rank"
	"provpriv/internal/repo"
	"provpriv/internal/search"
	"provpriv/internal/structpriv"
	"provpriv/internal/taint"
	"provpriv/internal/workflow"
)

// Workflow model.
type (
	// Spec is a hierarchical workflow specification.
	Spec = workflow.Spec
	// Workflow is a single (sub)workflow graph.
	Workflow = workflow.Workflow
	// Module is a workflow node.
	Module = workflow.Module
	// Hierarchy is the expansion hierarchy of a spec.
	Hierarchy = workflow.Hierarchy
	// Prefix is a prefix of an expansion hierarchy, defining a view.
	Prefix = workflow.Prefix
	// View is an expanded view of a spec.
	View = workflow.View
	// Builder constructs specs fluently.
	Builder = workflow.Builder
)

// Execution / provenance model.
type (
	// Execution is a provenance graph.
	Execution = exec.Execution
	// DataItem is a datum flowing through an execution.
	DataItem = exec.DataItem
	// Value is a data payload.
	Value = exec.Value
	// Runner executes specifications.
	Runner = exec.Runner
	// Registry maps module ids to implementations.
	Registry = exec.Registry
	// Func is a module implementation.
	Func = exec.Func
)

// Privacy vocabulary.
type (
	// Level is an access level.
	Level = privacy.Level
	// User is a repository principal.
	User = privacy.User
	// Policy binds privacy requirements to a spec.
	Policy = privacy.Policy
	// HiddenPair is a structural-privacy requirement.
	HiddenPair = privacy.HiddenPair
)

// Access levels.
const (
	Public     = privacy.Public
	Registered = privacy.Registered
	Analyst    = privacy.Analyst
	Owner      = privacy.Owner
)

// Repository and query layer.
type (
	// Repository stores specs, executions, policies and users.
	Repository = repo.Repository
	// SearchOptions tunes repository search.
	SearchOptions = repo.SearchOptions
	// SearchHit is a ranked search result.
	SearchHit = repo.SearchHit
	// Answer is a structural-query result.
	Answer = query.Answer
	// SearchResult is a minimal-view keyword answer.
	SearchResult = search.Result
)

// Module privacy.
type (
	// Relation is a module's I/O relation over finite domains.
	Relation = modpriv.Relation
	// Domain maps attributes to finite value domains.
	Domain = modpriv.Domain
	// Hidden is a hidden-attribute set.
	Hidden = modpriv.Hidden
	// Weights assigns utility lost per hidden attribute.
	Weights = modpriv.Weights
	// SecureView is a per-module secure view.
	SecureView = modpriv.SecureView
	// WorkflowAnalysis computes workflow-wide secure views.
	WorkflowAnalysis = modpriv.WorkflowAnalysis
)

// Structural privacy.
type (
	// StructPair is a connectivity fact to hide.
	StructPair = structpriv.Pair
	// StructResult is a published structural-privacy view.
	StructResult = structpriv.Result
	// StructStrategy selects cut vs cluster.
	StructStrategy = structpriv.Strategy
)

// Structural strategies.
const (
	CutEdges    = structpriv.CutEdges
	CutVertices = structpriv.CutVertices
	ClusterPair = structpriv.Cluster
)

// Data privacy.
type (
	// Masker applies taint-aware data-privacy masking to executions.
	Masker = datapriv.Masker
	// GeneralizationHierarchy coarsens values level by level.
	GeneralizationHierarchy = datapriv.Hierarchy
	// MaskReport accounts for a masking pass.
	MaskReport = datapriv.Report
	// TaintEngine seeds, propagates and applies provenance taint
	// (internal/taint): protection flows along provenance edges so a
	// protected input value embedded in a derived item's trace string
	// is rewritten or redacted for under-privileged viewers.
	TaintEngine = taint.Engine
	// TaintSet is a cached taint analysis of one execution.
	TaintSet = taint.Set
	// TaintLabel marks one protected ancestor of a tainted item.
	TaintLabel = taint.Label
	// TaintGeneralizer coarsens tainted values; *GeneralizationHierarchy
	// implements it. Exported so NewTaintEngine is callable from outside
	// the module (taint.Generalizer itself lives under internal/).
	TaintGeneralizer = taint.Generalizer
	// ProvenanceOptions tunes Repository provenance retrieval (e.g. the
	// taint=off debugging escape hatch).
	ProvenanceOptions = repo.ProvenanceOptions
)

// NewRepository returns an empty repository.
func NewRepository() *Repository { return repo.New() }

// LoadRepository reads a repository directory written by
// Repository.Save or by cmd/provgen.
func LoadRepository(dir string) (*Repository, error) { return repo.Load(dir) }

// NewPolicy returns an empty policy for a spec id.
func NewPolicy(specID string) *Policy { return privacy.NewPolicy(specID) }

// NewBuilder starts a spec definition.
func NewBuilder(id, name, rootID string) *Builder { return workflow.NewBuilder(id, name, rootID) }

// NewRunner returns an execution runner for a spec.
func NewRunner(s *Spec, funcs Registry) *Runner { return exec.NewRunner(s, funcs) }

// NewMasker builds a data-privacy masker.
func NewMasker(p *Policy, hierarchies map[string]*GeneralizationHierarchy) *Masker {
	return datapriv.NewMasker(p, hierarchies)
}

// NewTaintEngine builds a taint engine directly; most callers want
// NewMasker (whose Engine method wires generalization hierarchies in).
func NewTaintEngine(p *Policy, generalizers map[string]TaintGeneralizer) *TaintEngine {
	return taint.NewEngine(p, generalizers)
}

// DiseaseSusceptibility builds the paper's Figure 1 specification.
func DiseaseSusceptibility() *Spec { return workflow.DiseaseSusceptibility() }

// NewHierarchy derives a spec's expansion hierarchy.
func NewHierarchy(s *Spec) (*Hierarchy, error) { return workflow.NewHierarchy(s) }

// NewPrefix builds a view prefix from workflow ids.
func NewPrefix(ids ...string) Prefix { return workflow.NewPrefix(ids...) }

// FullPrefix is the prefix expanding every workflow.
func FullPrefix(h *Hierarchy) Prefix { return workflow.FullPrefix(h) }

// Expand computes the view of a spec under a prefix.
func Expand(s *Spec, p Prefix) (*View, error) { return workflow.Expand(s, p) }

// CollapseExecution computes an execution view under a prefix.
func CollapseExecution(e *Execution, s *Spec, p Prefix) (*Execution, error) {
	return exec.Collapse(e, s, p)
}

// Provenance extracts the provenance of a data item.
func Provenance(e *Execution, itemID string) (*Execution, error) {
	return exec.Provenance(e, itemID)
}

// Downstream lists the items affected by a data item.
func Downstream(e *Execution, itemID string) ([]string, error) {
	return exec.Downstream(e, itemID)
}

// EnumerateRelation builds a module's I/O relation over finite domains.
func EnumerateRelation(moduleID string, fn Func, inputs, outputs []string, dom Domain) (*Relation, error) {
	return modpriv.Enumerate(moduleID, fn, inputs, outputs, dom)
}

// GreedySecureView finds a safe hidden set heuristically.
func GreedySecureView(r *Relation, gamma int, w Weights) (*SecureView, error) {
	return modpriv.GreedySecureView(r, gamma, w)
}

// ExhaustiveSecureView finds a minimum-cost safe hidden set exactly.
func ExhaustiveSecureView(r *Relation, gamma int, w Weights) (*SecureView, error) {
	return modpriv.ExhaustiveSecureView(r, gamma, w)
}

// RedactExecution masks the values of hidden attributes.
func RedactExecution(e *Execution, hidden Hidden) *Execution {
	return modpriv.Redact(e, hidden)
}

// HideStructuralPairs hides connectivity facts using the strategy.
func HideStructuralPairs(v *View, pairs []StructPair, strat StructStrategy) (*StructResult, error) {
	return structpriv.HidePairs(v.Graph(), pairs, strat, nil)
}

// ParseQuery parses a comma-separated keyword query into phrases.
func ParseQuery(q string) [][]string { return search.ParseQuery(q) }

// KeywordSearch runs a minimal-view keyword search with no privacy.
func KeywordSearch(s *Spec, queryText string) (*SearchResult, error) {
	return search.Search(s, search.ParseQuery(queryText))
}

// ParseStructuralQuery parses the MATCH/WHERE/RETURN query language.
func ParseStructuralQuery(s string) (*query.Query, error) { return query.Parse(s) }

// NewCorpus returns an empty ranking corpus.
func NewCorpus() *rank.Corpus { return rank.NewCorpus() }

// MeasureDPReproducibility quantifies the paper's Section 5 argument
// that noisy provenance counts are irreproducible.
func MeasureDPReproducibility(q dp.CountQuery, e *Execution, epsilon float64, trials int, seed int64) (dp.ReproReport, error) {
	return dp.MeasureReproducibility(q, e, epsilon, trials, seed)
}

// ProvenanceSizeQuery is the DP count query "size of provenance(d)".
func ProvenanceSizeQuery(itemID string) dp.CountQuery { return dp.ProvenanceSize(itemID) }

// ComposeRelations composes two module relations r1 ; r2.
func ComposeRelations(r1, r2 *Relation) (*Relation, error) { return modpriv.Compose(r1, r2) }

// EffectiveLevel computes a module's privacy level against an adversary
// who also observes a public downstream chain — the workflow dimension
// of module privacy (a standalone-safe view can leak through a public
// module that re-exposes hidden data).
func EffectiveLevel(rel *Relation, chain []*Relation, hidden Hidden) (int, error) {
	return modpriv.EffectiveLevel(rel, chain, hidden)
}

// GreedyChainSecureView finds a hidden set safe against the chain-aware
// adversary.
func GreedyChainSecureView(rel *Relation, chain []*Relation, gamma int, w Weights) (*SecureView, error) {
	return modpriv.GreedyChainSecureView(rel, chain, gamma, w)
}

// ReconstructionAttack simulates the repeated-execution adversary of
// Section 3 against a module relation under a hidden set.
func ReconstructionAttack(rel *Relation, observed []map[string]Value, hidden Hidden) modpriv.AttackStats {
	return modpriv.ReconstructionAttack(rel, observed, hidden)
}

// OptimizeStructural picks the best structural-privacy mechanism (cut,
// vertex cut, cluster, sound-grown cluster) for the given pairs by
// utility score.
func OptimizeStructural(v *View, pairs []StructPair, requireSound bool) (*StructResult, error) {
	res, _, err := structpriv.Optimize(v.Graph(), pairs, structpriv.OptimizeOptions{RequireSound: requireSound})
	return res, err
}

// NumericHierarchy builds a range-halving generalization ladder for an
// integer attribute.
func NumericHierarchy(attr string, min, max, baseWidth, levels int) (*GeneralizationHierarchy, error) {
	return datapriv.NumericHierarchy(attr, min, max, baseWidth, levels)
}

// CompareExecutions diffs two runs of the same spec (provenance
// debugging: locate where a bad run diverged from a good one).
func CompareExecutions(a, b *Execution) (*exec.Diff, error) { return exec.CompareExecutions(a, b) }
