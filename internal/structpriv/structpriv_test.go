package structpriv

import (
	"math/rand"
	"strings"
	"testing"

	"provpriv/internal/graph"
)

// w3Graph builds the paper's W3 subworkflow graph (Section 3's running
// example for structural privacy):
//
//	M9 -> M12 -> M13 -> M14 -> M15
//	M9 -> M10 -> M11 -> M15
//	M13 -> M11
func w3Graph() *graph.Graph {
	g := graph.New()
	for _, n := range []string{"M9", "M10", "M11", "M12", "M13", "M14", "M15"} {
		g.AddNode(n)
	}
	edge := func(a, b string) { g.AddEdge(g.Lookup(a), g.Lookup(b)) }
	edge("M9", "M12")
	edge("M9", "M10")
	edge("M12", "M13")
	edge("M13", "M14")
	edge("M13", "M11")
	edge("M10", "M11")
	edge("M11", "M15")
	edge("M14", "M15")
	return g
}

func hidden13to11() []Pair { return []Pair{{From: "M13", To: "M11"}} }

func TestCutEdgesHidesPair(t *testing.T) {
	g := w3Graph()
	res, err := HidePairs(g, hidden13to11(), CutEdges, nil)
	if err != nil {
		t.Fatalf("HidePairs: %v", err)
	}
	if !res.Metrics.HiddenOK {
		t.Fatal("pair still inferable after cut")
	}
	// Min cut is the single edge M13->M11.
	if len(res.RemovedEdges) != 1 || res.RemovedEdges[0] != (NamedEdge{From: "M13", To: "M11"}) {
		t.Fatalf("removed = %v, want [M13->M11]", res.RemovedEdges)
	}
	// Cuts are sound: no extraneous pairs.
	if res.Metrics.ExtraneousPairs != 0 {
		t.Fatalf("cut introduced %d extraneous pairs", res.Metrics.ExtraneousPairs)
	}
	// The original graph is untouched.
	if !g.HasEdge(g.Lookup("M13"), g.Lookup("M11")) {
		t.Fatal("input graph mutated")
	}
}

func TestCutEdgesCollateralLoss(t *testing.T) {
	// The paper: deleting M13->M11 also hides that M12 reaches M11 —
	// collateral loss the metrics must report.
	g := w3Graph()
	res, _ := HidePairs(g, hidden13to11(), CutEdges, nil)
	if res.Metrics.LostPairs == 0 {
		t.Fatal("expected collateral loss (e.g. M12->M11)")
	}
	v := res.Graph
	if v.Reachable(v.Lookup("M12"), v.Lookup("M11")) {
		t.Fatal("M12 still reaches M11 in cut view")
	}
}

func TestCutEdgesWeighted(t *testing.T) {
	// Hide M9->M15. Unweighted min cuts include {M9->M12, M9->M10} and
	// {M11->M15, M14->M15}. Making M9->M12 very expensive forces the cut
	// to avoid it.
	g := w3Graph()
	w := func(e NamedEdge) int64 {
		if e == (NamedEdge{From: "M9", To: "M12"}) {
			return 100
		}
		return 1
	}
	res, err := HidePairs(g, []Pair{{From: "M9", To: "M15"}}, CutEdges, w)
	if err != nil {
		t.Fatalf("HidePairs: %v", err)
	}
	if !res.Metrics.HiddenOK {
		t.Fatal("pair still inferable")
	}
	for _, e := range res.RemovedEdges {
		if e == (NamedEdge{From: "M9", To: "M12"}) {
			t.Fatal("weighted cut removed the expensive edge")
		}
	}
}

func TestCutVertices(t *testing.T) {
	// Hide M12 -> M15: vertex cuts must remove an intermediate module
	// (M13, or M14+M11...).
	g := w3Graph()
	res, err := HidePairs(g, []Pair{{From: "M12", To: "M15"}}, CutVertices, nil)
	if err != nil {
		t.Fatalf("HidePairs: %v", err)
	}
	if !res.Metrics.HiddenOK {
		t.Fatal("pair still inferable")
	}
	if len(res.RemovedNodes) == 0 {
		t.Fatal("no nodes removed")
	}
	if res.Metrics.ExtraneousPairs != 0 {
		t.Fatal("vertex cut introduced extraneous pairs")
	}
}

func TestCutVerticesDirectEdgeFallback(t *testing.T) {
	g := w3Graph()
	res, err := HidePairs(g, hidden13to11(), CutVertices, nil)
	if err != nil {
		t.Fatalf("HidePairs: %v", err)
	}
	if !res.Metrics.HiddenOK {
		t.Fatal("direct edge pair not hidden")
	}
}

func TestClusterHidesPairAndMatchesPaperExample(t *testing.T) {
	// Paper: "we could cluster M11 and M13 into a single composite
	// module. However, we may now infer incorrect provenance
	// information, e.g., that there is a path from M10 to M14."
	g := w3Graph()
	res, err := HidePairs(g, hidden13to11(), Cluster, nil)
	if err != nil {
		t.Fatalf("HidePairs: %v", err)
	}
	if !res.Metrics.HiddenOK {
		t.Fatal("pair externally visible despite clustering")
	}
	if strings.Join(res.Cluster, ",") != "M11,M13" {
		t.Fatalf("cluster = %v", res.Cluster)
	}
	ext := ExtraneousPairs(g, res)
	found := false
	for _, p := range ext {
		if p == (Pair{From: "M10", To: "M14"}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("extraneous pairs = %v, want to include M10->M14", ext)
	}
	if IsSound(g, res) {
		t.Fatal("unsound view reported sound")
	}
	if res.Metrics.ExtraneousPairs != len(ext) {
		t.Fatalf("metrics extraneous = %d, detector = %d", res.Metrics.ExtraneousPairs, len(ext))
	}
	// Clustering loses no true visible-pair connectivity.
	if res.Metrics.LostPairs != 0 {
		t.Fatalf("cluster lost %d true pairs", res.Metrics.LostPairs)
	}
}

func TestClusterQuotientAcyclic(t *testing.T) {
	g := w3Graph()
	res, err := HidePairs(g, hidden13to11(), Cluster, nil)
	if err != nil {
		t.Fatalf("HidePairs: %v", err)
	}
	if !res.Graph.IsAcyclic() {
		t.Fatal("quotient graph cyclic")
	}
}

func TestConvexifyAbsorbsIntermediates(t *testing.T) {
	// Clustering M9 with M14 must absorb the path M12, M13 between them
	// (otherwise the quotient would be cyclic).
	g := w3Graph()
	res, err := HideByCluster(g, nil, []string{"M9", "M14"})
	if err != nil {
		t.Fatalf("HideByCluster: %v", err)
	}
	joined := strings.Join(res.Cluster, ",")
	for _, want := range []string{"M12", "M13"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("cluster = %v, want %s absorbed", res.Cluster, want)
		}
	}
	if !res.Graph.IsAcyclic() {
		t.Fatal("quotient cyclic after convexify")
	}
}

func TestGrowToSound(t *testing.T) {
	g := w3Graph()
	res, err := GrowToSound(g, hidden13to11(), []string{"M11", "M13"}, 5)
	if err != nil {
		t.Fatalf("GrowToSound: %v", err)
	}
	if !IsSound(g, res) {
		t.Fatal("result not sound")
	}
	if !res.Metrics.HiddenOK {
		t.Fatal("privacy lost while growing")
	}
	if len(res.Cluster) <= 2 {
		t.Fatalf("cluster did not grow: %v", res.Cluster)
	}
	// Growing discloses fewer modules.
	if res.Metrics.ModulesVisible >= 6 {
		t.Fatalf("modules visible = %d", res.Metrics.ModulesVisible)
	}
}

func TestSplitToSoundLosesPrivacyHere(t *testing.T) {
	// Splitting {M11,M13} must separate the pair (the only sound
	// 2-segmentation) and therefore lose privacy — the trade-off the
	// paper highlights.
	g := w3Graph()
	_, private, err := SplitToSound(g, hidden13to11(), []string{"M11", "M13"})
	if err != nil {
		t.Fatalf("SplitToSound: %v", err)
	}
	if private {
		t.Fatal("split claims privacy preserved; pair must have been separated")
	}
}

func TestHidePairsValidation(t *testing.T) {
	g := w3Graph()
	if _, err := HidePairs(g, nil, CutEdges, nil); err == nil {
		t.Fatal("empty pairs accepted")
	}
	if _, err := HidePairs(g, []Pair{{From: "MX", To: "M11"}}, CutEdges, nil); err == nil {
		t.Fatal("unknown module accepted")
	}
	if _, err := HideByCluster(g, []Pair{{From: "M9", To: "M15"}}, []string{"M11", "M13"}); err == nil {
		t.Fatal("pair outside cluster accepted")
	}
	if _, err := HideByCluster(g, nil, []string{"M11"}); err == nil {
		t.Fatal("singleton cluster accepted")
	}
}

func TestUtilityScore(t *testing.T) {
	m := Metrics{TruePairs: 10, PreservedPairs: 8, ExtraneousPairs: 1}
	if got := m.UtilityScore(); got < 0.699 || got > 0.701 {
		t.Fatalf("UtilityScore = %v, want ≈0.7", got)
	}
	if (Metrics{}).UtilityScore() != 1 {
		t.Fatal("empty metrics should score 1")
	}
	bad := Metrics{TruePairs: 2, PreservedPairs: 0, ExtraneousPairs: 5}
	if bad.UtilityScore() != 0 {
		t.Fatal("score not clamped at 0")
	}
}

// Property: on the paper graph, cutting is always sound and clustering
// always preserves visible true pairs; the requested pair is hidden
// under every strategy.
func TestStrategyInvariants(t *testing.T) {
	g := w3Graph()
	pairs := [][]Pair{
		{{From: "M13", To: "M11"}},
		{{From: "M12", To: "M15"}},
		{{From: "M9", To: "M11"}},
	}
	for _, ps := range pairs {
		for _, strat := range []Strategy{CutEdges, CutVertices, Cluster} {
			res, err := HidePairs(g, ps, strat, nil)
			if err != nil {
				t.Fatalf("%v %v: %v", strat, ps, err)
			}
			if !res.Metrics.HiddenOK {
				t.Errorf("%v %v: pair not hidden", strat, ps)
			}
			switch strat {
			case CutEdges, CutVertices:
				if res.Metrics.ExtraneousPairs != 0 {
					t.Errorf("%v %v: cut unsound", strat, ps)
				}
			case Cluster:
				if res.Metrics.LostPairs != 0 {
					t.Errorf("%v %v: cluster lost true pairs", strat, ps)
				}
			}
		}
	}
}

// Property: convexify is idempotent and its result contains the seed.
func TestConvexifyIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 20; trial++ {
		g := graph.New()
		n := 20
		for i := 0; i < n; i++ {
			g.AddNode(name2(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					g.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		seed := []string{g.Name(graph.NodeID(rng.Intn(n))), g.Name(graph.NodeID(rng.Intn(n)))}
		once := convexify(g, seed)
		twice := convexify(g, once)
		if len(once) != len(twice) {
			t.Fatalf("trial %d: not idempotent: %v vs %v", trial, once, twice)
		}
		inOnce := map[string]bool{}
		for _, m := range once {
			inOnce[m] = true
		}
		for _, s := range seed {
			if !inOnce[s] {
				t.Fatalf("trial %d: seed %s dropped", trial, s)
			}
		}
		// The quotient of a convex set is acyclic.
		if len(once) >= 2 {
			q, _ := buildQuotient(g, once)
			if !q.IsAcyclic() {
				t.Fatalf("trial %d: quotient cyclic after convexify", trial)
			}
		}
	}
}
