package structpriv

import (
	"fmt"
	"sort"

	"provpriv/internal/graph"
)

// Optimize addresses the optimization problem the paper poses for
// structural privacy ("guaranteeing an adequate level of privacy while
// preserving soundness and minimizing unnecessary loss of
// information"): it tries every available mechanism — edge cut, vertex
// cut, plain clustering, and sound-grown clustering — scores each
// candidate view with Metrics.UtilityScore, and returns the best one
// that hides all requested pairs, subject to the options.

// OptimizeOptions tunes the search.
type OptimizeOptions struct {
	// RequireSound rejects views with extraneous pairs (unsound views,
	// [9]). Cut-based views are always sound.
	RequireSound bool
	// MaxGrow bounds cluster growth during soundness repair.
	MaxGrow int
	// EdgeWeight biases edge cuts away from high-utility edges.
	EdgeWeight func(NamedEdge) int64
}

// Candidate pairs a strategy's result with its score, for reporting.
type Candidate struct {
	Result *Result
	Score  float64
	Note   string
}

// Optimize returns the best view hiding all pairs, and the full list of
// scored candidates (best first) for diagnostics. It fails only if no
// strategy hides the pairs under the given constraints.
func Optimize(g *graph.Graph, pairs []Pair, opt OptimizeOptions) (*Result, []Candidate, error) {
	if opt.MaxGrow == 0 {
		opt.MaxGrow = 8
	}
	var cands []Candidate

	add := func(res *Result, err error, note string) {
		if err != nil || res == nil {
			return
		}
		if !res.Metrics.HiddenOK {
			return
		}
		if opt.RequireSound && res.Metrics.ExtraneousPairs > 0 {
			return
		}
		cands = append(cands, Candidate{Result: res, Score: res.Metrics.UtilityScore(), Note: note})
	}

	res, err := HidePairs(g, pairs, CutEdges, opt.EdgeWeight)
	add(res, err, "min edge cut")

	res, err = HidePairs(g, pairs, CutVertices, nil)
	add(res, err, "min vertex cut")

	res, err = HidePairs(g, pairs, Cluster, nil)
	add(res, err, "cluster endpoints")

	grown, err := GrowToSound(g, pairs, memberSet(pairs), opt.MaxGrow)
	add(grown, err, "cluster grown to sound")

	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("structpriv: no strategy hides %v under the given constraints", pairs)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		// Prefer sound results on ties.
		return cands[i].Result.Metrics.ExtraneousPairs < cands[j].Result.Metrics.ExtraneousPairs
	})
	return cands[0].Result, cands, nil
}
