// Package structpriv implements structural privacy (Section 3 of the
// CIDR 2011 paper): keeping private the information that some module M
// contributes to the generation of a data item output by another module
// M'. Two mechanisms are provided, with the trade-off the paper
// describes:
//
//   - Path cutting deletes edges (or vertices) so that no path from M to
//     M' remains. It is always sound — it can never fabricate provenance
//     — but may hide additional true provenance (collateral loss).
//
//   - Clustering hides both endpoints inside a composite module P, so
//     the reachability of pairs within P is no longer externally
//     visible. It preserves all visible-pair connectivity but may let
//     users infer extraneous paths that never existed — an unsound view
//     in the sense of Sun et al. (SIGMOD 2009, cited as [9]).
//
// The package detects extraneous pairs, repairs unsound clusterings by
// splitting or growing clusters, and reports utility metrics (correct
// connectivity preserved, modules disclosed) so the caller can navigate
// the privacy/utility trade-off the paper poses as its central
// optimization problem.
package structpriv

import (
	"fmt"
	"sort"

	"provpriv/internal/graph"
)

// Pair is an ordered connectivity fact "From contributes to To".
type Pair struct {
	From, To string
}

func (p Pair) String() string { return p.From + "->" + p.To }

// Strategy selects the hiding mechanism.
type Strategy int

const (
	// CutEdges removes a minimum-weight set of dataflow edges.
	CutEdges Strategy = iota
	// CutVertices removes a minimum set of intermediate modules.
	CutVertices
	// Cluster collapses the pair (and optionally more nodes) into one
	// composite module.
	Cluster
)

func (s Strategy) String() string {
	switch s {
	case CutEdges:
		return "cut-edges"
	case CutVertices:
		return "cut-vertices"
	case Cluster:
		return "cluster"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NamedEdge is an edge expressed in module names.
type NamedEdge struct {
	From, To string
}

// Result is a published structural-privacy view: the visible graph plus
// what was removed or clustered, and the utility metrics.
type Result struct {
	Strategy     Strategy
	Graph        *graph.Graph // the graph an unprivileged user sees
	RemovedEdges []NamedEdge
	RemovedNodes []string
	ClusterName  string   // name of the composite node, for Cluster
	Cluster      []string // members, for Cluster
	Metrics      Metrics
}

// HidePairs hides the given connectivity pairs in g using the strategy.
// Edge weights (optional) bias the cut away from high-utility edges.
// The input graph is not modified.
func HidePairs(g *graph.Graph, pairs []Pair, strat Strategy, edgeWeight func(NamedEdge) int64) (*Result, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("structpriv: no pairs to hide")
	}
	for _, p := range pairs {
		if g.Lookup(p.From) == graph.Invalid || g.Lookup(p.To) == graph.Invalid {
			return nil, fmt.Errorf("structpriv: pair %s references unknown module", p)
		}
	}
	switch strat {
	case CutEdges:
		return hideByEdgeCut(g, pairs, edgeWeight)
	case CutVertices:
		return hideByVertexCut(g, pairs)
	case Cluster:
		members := memberSet(pairs)
		return HideByCluster(g, pairs, members)
	default:
		return nil, fmt.Errorf("structpriv: unknown strategy %v", strat)
	}
}

func memberSet(pairs []Pair) []string {
	set := make(map[string]bool)
	for _, p := range pairs {
		set[p.From] = true
		set[p.To] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func hideByEdgeCut(g *graph.Graph, pairs []Pair, edgeWeight func(NamedEdge) int64) (*Result, error) {
	work := g.Clone()
	var removed []NamedEdge
	var wfn func(graph.Edge) int64
	if edgeWeight != nil {
		wfn = func(e graph.Edge) int64 {
			return edgeWeight(NamedEdge{From: work.Name(e.U), To: work.Name(e.V)})
		}
	}
	for _, p := range pairs {
		u, v := work.Lookup(p.From), work.Lookup(p.To)
		cut := graph.MinEdgeCut(work, u, v, wfn)
		for _, e := range cut {
			removed = append(removed, NamedEdge{From: work.Name(e.U), To: work.Name(e.V)})
			work.RemoveEdge(e.U, e.V)
		}
	}
	res := &Result{Strategy: CutEdges, Graph: work, RemovedEdges: removed}
	res.Metrics = computeMetrics(g, work, identityMap(g), pairs, nil)
	return res, nil
}

func hideByVertexCut(g *graph.Graph, pairs []Pair) (*Result, error) {
	work := g.Clone()
	dropped := make(map[string]bool)
	for _, p := range pairs {
		u, v := work.Lookup(p.From), work.Lookup(p.To)
		if u == graph.Invalid || v == graph.Invalid || !work.Reachable(u, v) {
			continue
		}
		cut, ok := graph.MinVertexCut(work, u, v, nil)
		if !ok {
			// Direct edge: fall back to removing it.
			work.RemoveEdge(u, v)
			continue
		}
		for _, n := range cut {
			dropped[work.Name(n)] = true
		}
		// Rebuild the working graph without the cut vertices.
		var keep []graph.NodeID
		for i := 0; i < work.N(); i++ {
			if !dropped[work.Name(graph.NodeID(i))] {
				keep = append(keep, graph.NodeID(i))
			}
		}
		work, _ = work.InducedSubgraph(keep)
	}
	res := &Result{Strategy: CutVertices, Graph: work}
	for n := range dropped {
		res.RemovedNodes = append(res.RemovedNodes, n)
	}
	sort.Strings(res.RemovedNodes)
	nodeMap := make(map[string]string, g.N())
	for i := 0; i < g.N(); i++ {
		name := g.Name(graph.NodeID(i))
		if dropped[name] {
			nodeMap[name] = "" // invisible
		} else {
			nodeMap[name] = name
		}
	}
	res.Metrics = computeMetrics(g, work, nodeMap, pairs, nil)
	return res, nil
}

func identityMap(g *graph.Graph) map[string]string {
	m := make(map[string]string, g.N())
	for i := 0; i < g.N(); i++ {
		m[g.Name(graph.NodeID(i))] = g.Name(graph.NodeID(i))
	}
	return m
}
