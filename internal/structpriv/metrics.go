package structpriv

import "provpriv/internal/graph"

// Metrics quantifies the utility of a structural-privacy view, in the
// terms the paper uses ("some function of both the number of correct
// node connectivity relationships captured and the number of modules
// disclosed in a result").
type Metrics struct {
	// HiddenOK: every requested pair is no longer inferable.
	HiddenOK bool
	// TruePairs: ordered reachable pairs (u,v), u≠v, in the original.
	TruePairs int
	// PreservedPairs: true pairs still inferable from the view.
	PreservedPairs int
	// LostPairs: true pairs between still-visible modules that are no
	// longer inferable, excluding the requested ones — the collateral
	// damage of cutting.
	LostPairs int
	// ClusterHiddenPairs: true pairs absorbed into a cluster (at least
	// one endpoint a member, and not explicitly requested) — hidden by
	// design rather than collaterally, per Section 3's "the reachability
	// of any pair (u,v) in P is no longer externally visible".
	ClusterHiddenPairs int
	// ExtraneousPairs: false pairs inferable from the view — the
	// unsoundness introduced by clustering.
	ExtraneousPairs int
	// ModulesVisible: modules individually visible in the view.
	ModulesVisible int
}

// UtilityScore folds the metrics into a single number in [0,1]:
// the fraction of correct connectivity preserved, penalized by the
// fraction of extraneous inferences. Soundness and completeness enter
// symmetrically.
func (m Metrics) UtilityScore() float64 {
	if m.TruePairs == 0 {
		return 1
	}
	preserved := float64(m.PreservedPairs) / float64(m.TruePairs)
	penalty := float64(m.ExtraneousPairs) / float64(m.TruePairs)
	s := preserved - penalty
	if s < 0 {
		return 0
	}
	return s
}

// computeMetrics compares inferable connectivity before and after.
// nodeMap maps original node names to view node names ("" = removed,
// cluster members map to the cluster node). clusterSet (may be nil)
// marks nodes whose pairwise connectivity is hidden rather than lost.
func computeMetrics(orig, view *graph.Graph, nodeMap map[string]string, requested []Pair, clusterSet map[string]bool) Metrics {
	var m Metrics
	origCl, err := graph.NewClosure(orig)
	if err != nil {
		return m
	}
	viewCl, err := graph.NewClosure(view)
	if err != nil {
		return m
	}
	req := make(map[Pair]bool, len(requested))
	for _, p := range requested {
		req[p] = true
	}
	m.ModulesVisible = 0
	seen := make(map[string]bool)
	for i := 0; i < view.N(); i++ {
		seen[view.Name(graph.NodeID(i))] = true
	}
	for i := 0; i < orig.N(); i++ {
		if n := orig.Name(graph.NodeID(i)); seen[n] && nodeMap[n] == n {
			m.ModulesVisible++
		}
	}

	m.HiddenOK = true
	inferable := func(u, v string) (inf, defined bool) {
		mu, mv := nodeMap[u], nodeMap[v]
		if mu == "" || mv == "" {
			return false, true // endpoint removed: nothing inferable
		}
		// Any endpoint inside a cluster: the pair's connectivity is
		// absorbed by the composite module. These pairs are tallied in
		// ClusterHiddenPairs by the caller, matching the boundary
		// semantics of ExtraneousPairs (which only inspects pairs of
		// visible nodes).
		if clusterSet != nil && (clusterSet[u] || clusterSet[v]) {
			return false, false
		}
		if mu == mv {
			return false, true
		}
		qu, qv := view.Lookup(mu), view.Lookup(mv)
		if qu == graph.Invalid || qv == graph.Invalid {
			return false, true
		}
		return viewCl.Reach(qu, qv), true
	}

	for i := 0; i < orig.N(); i++ {
		un := orig.Name(graph.NodeID(i))
		for j := 0; j < orig.N(); j++ {
			if i == j {
				continue
			}
			vn := orig.Name(graph.NodeID(j))
			truth := origCl.Reach(graph.NodeID(i), graph.NodeID(j))
			inf, defined := inferable(un, vn)
			if !defined {
				if truth && !req[Pair{From: un, To: vn}] {
					m.ClusterHiddenPairs++
				}
				if truth {
					m.TruePairs++
				}
				continue
			}
			if truth {
				m.TruePairs++
				if inf {
					m.PreservedPairs++
					if req[Pair{From: un, To: vn}] {
						m.HiddenOK = false
					}
				} else if !req[Pair{From: un, To: vn}] {
					m.LostPairs++
				}
			} else if inf {
				m.ExtraneousPairs++
			}
		}
	}
	return m
}
