package structpriv

import (
	"math/rand"
	"testing"

	"provpriv/internal/graph"
)

func TestOptimizePicksBestStrategy(t *testing.T) {
	g := w3Graph()
	best, cands, err := Optimize(g, hidden13to11(), OptimizeOptions{})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(cands) < 2 {
		t.Fatalf("candidates = %d, want several", len(cands))
	}
	if !best.Metrics.HiddenOK {
		t.Fatal("best result does not hide the pair")
	}
	// Candidates are sorted best-first.
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatalf("candidates unsorted: %v then %v", cands[i-1].Score, cands[i].Score)
		}
	}
	if best.Metrics.UtilityScore() != cands[0].Score {
		t.Fatal("best does not match first candidate")
	}
}

func TestOptimizeRequireSound(t *testing.T) {
	g := w3Graph()
	best, cands, err := Optimize(g, hidden13to11(), OptimizeOptions{RequireSound: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	for _, c := range cands {
		if c.Result.Metrics.ExtraneousPairs > 0 {
			t.Fatalf("unsound candidate survived RequireSound: %v", c.Note)
		}
	}
	if best.Metrics.ExtraneousPairs != 0 {
		t.Fatal("best result unsound")
	}
}

func TestOptimizeUnknownPair(t *testing.T) {
	g := w3Graph()
	if _, _, err := Optimize(g, []Pair{{From: "MX", To: "M11"}}, OptimizeOptions{}); err == nil {
		t.Fatal("unknown module accepted")
	}
}

// Property: on random DAGs, Optimize always hides the pair, and with
// RequireSound every returned candidate is sound.
func TestOptimizeInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		g := graph.New()
		n := 25
		for i := 0; i < n; i++ {
			g.AddNode(name2(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.12 {
					g.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		// Find a connected non-adjacent pair.
		var pair *Pair
		for u := 0; u < n && pair == nil; u++ {
			for v := n - 1; v > u+3; v-- {
				uu, vv := graph.NodeID(u), graph.NodeID(v)
				if g.Reachable(uu, vv) && !g.HasEdge(uu, vv) {
					pair = &Pair{From: g.Name(uu), To: g.Name(vv)}
					break
				}
			}
		}
		if pair == nil {
			continue
		}
		for _, sound := range []bool{false, true} {
			best, cands, err := Optimize(g, []Pair{*pair}, OptimizeOptions{RequireSound: sound})
			if err != nil {
				if sound {
					continue // may genuinely be impossible soundly+privately
				}
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !best.Metrics.HiddenOK {
				t.Fatalf("trial %d: pair not hidden", trial)
			}
			if sound {
				for _, c := range cands {
					if c.Result.Metrics.ExtraneousPairs > 0 {
						t.Fatalf("trial %d: unsound candidate under RequireSound", trial)
					}
				}
			}
		}
	}
}

func name2(i int) string {
	return "v" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestHideByClusterGroups(t *testing.T) {
	g := w3Graph()
	// Two pairs with disjoint endpoints; M13 lies on the M12→M14 path,
	// so the second group's convexify interacts with the first group's
	// quotient node. Whatever the grouping, both pairs must end hidden.
	pairs := []Pair{
		{From: "M13", To: "M11"},
		{From: "M12", To: "M14"},
	}
	final, groups, err := HideByClusterGroups(g, pairs)
	if err != nil {
		t.Fatalf("HideByClusterGroups: %v", err)
	}
	if len(groups) == 0 {
		t.Fatal("no groups formed")
	}
	if !final.Metrics.HiddenOK {
		t.Fatal("some pair still inferable")
	}
	if !final.Graph.IsAcyclic() {
		t.Fatal("final quotient cyclic")
	}
}

func TestHideByClusterGroupsDisjointPairs(t *testing.T) {
	// Fully disjoint pairs on a wide graph produce separate clusters.
	g := graph.New()
	for _, n := range []string{"a1", "a2", "b1", "b2", "s", "t"} {
		g.AddNode(n)
	}
	e := func(x, y string) { g.AddEdge(g.Lookup(x), g.Lookup(y)) }
	e("s", "a1")
	e("a1", "a2")
	e("s", "b1")
	e("b1", "b2")
	e("a2", "t")
	e("b2", "t")
	final, groups, err := HideByClusterGroups(g, []Pair{
		{From: "a1", To: "a2"},
		{From: "b1", To: "b2"},
	})
	if err != nil {
		t.Fatalf("HideByClusterGroups: %v", err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2", groups)
	}
	if !final.Metrics.HiddenOK {
		t.Fatal("pairs visible")
	}
	// s and t stay individually visible.
	if final.Graph.Lookup("s") == graph.Invalid || final.Graph.Lookup("t") == graph.Invalid {
		t.Fatal("unrelated nodes absorbed")
	}
}

func TestHideByClusterGroupsValidation(t *testing.T) {
	g := w3Graph()
	if _, _, err := HideByClusterGroups(g, nil); err == nil {
		t.Fatal("empty pairs accepted")
	}
}
