package structpriv

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/graph"
)

// HideByCluster collapses the given members into a single composite node
// whose internal structure — including the hidden pairs' connectivity —
// is no longer externally visible. The quotient graph must remain
// acyclic (the member set must be "convex enough"); if collapsing would
// create a cycle, the member set is first grown to include the
// offending intermediate nodes, mirroring how workflow composite modules
// must contain whole sub-dags.
func HideByCluster(g *graph.Graph, pairs []Pair, members []string) (*Result, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("structpriv: cluster needs at least 2 members")
	}
	for _, m := range members {
		if g.Lookup(m) == graph.Invalid {
			return nil, fmt.Errorf("structpriv: cluster member %q not in graph", m)
		}
	}
	for _, p := range pairs {
		inC := make(map[string]bool, len(members))
		for _, m := range members {
			inC[m] = true
		}
		if !inC[p.From] || !inC[p.To] {
			return nil, fmt.Errorf("structpriv: pair %s not contained in cluster", p)
		}
	}
	members = convexify(g, members)
	quotient, name := buildQuotient(g, members)
	res := &Result{
		Strategy:    Cluster,
		Graph:       quotient,
		ClusterName: name,
		Cluster:     members,
	}
	inC := make(map[string]bool, len(members))
	for _, m := range members {
		inC[m] = true
	}
	nodeMap := make(map[string]string, g.N())
	for i := 0; i < g.N(); i++ {
		n := g.Name(graph.NodeID(i))
		if inC[n] {
			nodeMap[n] = name
		} else {
			nodeMap[n] = n
		}
	}
	res.Metrics = computeMetrics(g, quotient, nodeMap, pairs, inC)
	return res, nil
}

// convexify grows the member set until every node on a path between two
// members is itself a member — the condition under which the quotient
// graph of a DAG stays acyclic.
func convexify(g *graph.Graph, members []string) []string {
	set := make(map[string]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	changed := true
	for changed {
		changed = false
		var ms []graph.NodeID
		for name := range set {
			ms = append(ms, g.Lookup(name))
		}
		for _, u := range ms {
			for _, v := range ms {
				if u == v {
					continue
				}
				for _, mid := range g.NodesOnPaths(u, v) {
					name := g.Name(mid)
					if !set[name] {
						set[name] = true
						changed = true
					}
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// buildQuotient collapses members into a single node named
// "P(m1+m2+...)" and returns the quotient graph.
func buildQuotient(g *graph.Graph, members []string) (*graph.Graph, string) {
	inC := make(map[string]bool, len(members))
	for _, m := range members {
		inC[m] = true
	}
	name := "P(" + strings.Join(members, "+") + ")"
	q := graph.New()
	for i := 0; i < g.N(); i++ {
		n := g.Name(graph.NodeID(i))
		if !inC[n] {
			q.AddNode(n)
		}
	}
	p := q.AddNode(name)
	for _, e := range g.Edges() {
		un, vn := g.Name(e.U), g.Name(e.V)
		var qu, qv graph.NodeID
		if inC[un] {
			qu = p
		} else {
			qu = q.Lookup(un)
		}
		if inC[vn] {
			qv = p
		} else {
			qv = q.Lookup(vn)
		}
		if qu != qv {
			q.AddEdge(qu, qv)
		}
	}
	return q, name
}

// HideByClusterGroups hides multiple pairs with one cluster per
// connected group of pairs (pairs sharing an endpoint go to the same
// cluster), instead of one cluster swallowing everything. Groups are
// clustered greedily in deterministic order; each grouping result is
// applied to the previous quotient, so the final graph hides all pairs.
// Returns the final quotient plus the per-group clusters.
func HideByClusterGroups(g *graph.Graph, pairs []Pair) (*Result, [][]string, error) {
	if len(pairs) == 0 {
		return nil, nil, fmt.Errorf("structpriv: no pairs to hide")
	}
	// Union endpoints into groups.
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			parent[x] = x
			return x
		}
		root := find(parent[x])
		parent[x] = root
		return root
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, p := range pairs {
		union(p.From, p.To)
	}
	groupsByRoot := make(map[string][]string)
	seen := make(map[string]bool)
	for _, p := range pairs {
		for _, m := range []string{p.From, p.To} {
			if !seen[m] {
				seen[m] = true
				root := find(m)
				groupsByRoot[root] = append(groupsByRoot[root], m)
			}
		}
	}
	var roots []string
	for r := range groupsByRoot {
		roots = append(roots, r)
	}
	sort.Strings(roots)

	work := g.Clone()
	var groups [][]string
	var last *Result
	for _, root := range roots {
		members := groupsByRoot[root]
		sort.Strings(members)
		// Members already absorbed into an earlier (convexified) cluster
		// are gone from the working graph; their pairs are hidden there.
		var present []string
		for _, m := range members {
			if work.Lookup(m) != graph.Invalid {
				present = append(present, m)
			}
		}
		if len(present) < 2 {
			continue
		}
		inG := make(map[string]bool, len(present))
		for _, m := range present {
			inG[m] = true
		}
		var groupPairs []Pair
		for _, p := range pairs {
			if inG[p.From] && inG[p.To] {
				groupPairs = append(groupPairs, p)
			}
		}
		res, err := HideByCluster(work, groupPairs, present)
		if err != nil {
			return nil, nil, err
		}
		groups = append(groups, res.Cluster)
		work = res.Graph
		last = res
	}
	if last == nil {
		return nil, nil, fmt.Errorf("structpriv: all groups degenerate")
	}
	// Final metrics vs the ORIGINAL graph: recompute with the combined
	// node map.
	nodeMap := make(map[string]string, g.N())
	for i := 0; i < g.N(); i++ {
		name := g.Name(graph.NodeID(i))
		nodeMap[name] = name
	}
	clusterSet := make(map[string]bool)
	for _, members := range groups {
		// Each group got its own quotient node, named by buildQuotient
		// from its (convexified) members.
		cname := "P(" + strings.Join(members, "+") + ")"
		for _, m := range members {
			nodeMap[m] = cname
			clusterSet[m] = true
		}
	}
	final := &Result{
		Strategy: Cluster,
		Graph:    work,
		Cluster:  flatten(groups),
	}
	final.Metrics = computeMetrics(g, work, nodeMap, pairs, clusterSet)
	return final, groups, nil
}

func flatten(groups [][]string) []string {
	var out []string
	for _, g := range groups {
		out = append(out, g...)
	}
	sort.Strings(out)
	return out
}

// ExtraneousPairs returns the connectivity facts a user can infer from
// the clustered view that are NOT true in the original graph — the
// unsound inferences of [9]. Only pairs of visible (non-member) nodes
// are considered; inference means reachability in the quotient graph.
func ExtraneousPairs(orig *graph.Graph, res *Result) []Pair {
	if res.Strategy != Cluster {
		return nil
	}
	inC := make(map[string]bool, len(res.Cluster))
	for _, m := range res.Cluster {
		inC[m] = true
	}
	origCl, err := graph.NewClosure(orig)
	if err != nil {
		return nil
	}
	viewCl, err := graph.NewClosure(res.Graph)
	if err != nil {
		return nil
	}
	var out []Pair
	for i := 0; i < orig.N(); i++ {
		un := orig.Name(graph.NodeID(i))
		if inC[un] {
			continue
		}
		for j := 0; j < orig.N(); j++ {
			if i == j {
				continue
			}
			vn := orig.Name(graph.NodeID(j))
			if inC[vn] {
				continue
			}
			qu, qv := res.Graph.Lookup(un), res.Graph.Lookup(vn)
			if viewCl.Reach(qu, qv) && !origCl.Reach(graph.NodeID(i), graph.NodeID(j)) {
				out = append(out, Pair{From: un, To: vn})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// IsSound reports whether the clustered view allows no extraneous
// inferences (cut-based results are sound by construction).
func IsSound(orig *graph.Graph, res *Result) bool {
	if res.Strategy != Cluster {
		return true
	}
	return len(ExtraneousPairs(orig, res)) == 0
}

// GrowToSound repairs an unsound clustering by absorbing, one at a time,
// the visible node involved in the most extraneous pairs, until the view
// is sound or maxGrow nodes have been added. Growing the cluster trades
// module disclosure for soundness; the returned Result reflects the
// final cluster. The hidden pairs remain hidden throughout (endpoints
// stay inside the cluster).
func GrowToSound(orig *graph.Graph, pairs []Pair, members []string, maxGrow int) (*Result, error) {
	cur := append([]string(nil), members...)
	for step := 0; ; step++ {
		res, err := HideByCluster(orig, pairs, cur)
		if err != nil {
			return nil, err
		}
		ext := ExtraneousPairs(orig, res)
		if len(ext) == 0 {
			return res, nil
		}
		if step >= maxGrow {
			return res, fmt.Errorf("structpriv: still unsound after growing %d nodes (%d extraneous pairs)", step, len(ext))
		}
		// Most frequently offending endpoint.
		count := make(map[string]int)
		for _, p := range ext {
			count[p.From]++
			count[p.To]++
		}
		best, bestN := "", -1
		for n, c := range count {
			if c > bestN || (c == bestN && n < best) {
				best, bestN = n, c
			}
		}
		cur = append(cur, best)
		sort.Strings(cur)
	}
}

// SplitToSound implements the alternative repair of [9]: partition the
// cluster members into topologically contiguous segments, each clustered
// separately, such that the combined view is sound. Splitting may
// re-expose the hidden pairs (if From and To land in different
// segments); the boolean reports whether privacy survived.
func SplitToSound(orig *graph.Graph, pairs []Pair, members []string) (views []*Result, private bool, err error) {
	// Topologically order the members.
	order, err := orig.TopoSort()
	if err != nil {
		return nil, false, err
	}
	inM := make(map[string]bool, len(members))
	for _, m := range members {
		inM[m] = true
	}
	var sorted []string
	for _, n := range order {
		if inM[orig.Name(n)] {
			sorted = append(sorted, orig.Name(n))
		}
	}
	// Greedy segmentation: extend the current segment while the induced
	// single-cluster view stays sound; otherwise start a new segment.
	var segments [][]string
	var cur []string
	soundWith := func(seg []string) bool {
		if len(seg) < 2 {
			return true
		}
		res, err := HideByCluster(orig, nil, seg)
		if err != nil {
			return false
		}
		return len(ExtraneousPairs(orig, res)) == 0
	}
	for _, m := range sorted {
		trial := append(append([]string(nil), cur...), m)
		if soundWith(trial) {
			cur = trial
		} else {
			if len(cur) > 0 {
				segments = append(segments, cur)
			}
			cur = []string{m}
		}
	}
	if len(cur) > 0 {
		segments = append(segments, cur)
	}
	segOf := make(map[string]int)
	for i, seg := range segments {
		for _, m := range seg {
			segOf[m] = i
		}
	}
	private = true
	for _, p := range pairs {
		if segOf[p.From] != segOf[p.To] {
			private = false
		}
	}
	for _, seg := range segments {
		if len(seg) < 2 {
			continue // singleton segments stay visible, no cluster formed
		}
		res, err := HideByCluster(orig, nil, seg)
		if err != nil {
			return nil, false, err
		}
		views = append(views, res)
	}
	return views, private, nil
}
