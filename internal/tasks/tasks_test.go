package tasks

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitTerminal polls a task until it reaches a terminal state.
func waitTerminal(t *testing.T, rt *Runtime, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s, err := rt.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		switch s.State {
		case "succeeded", "failed", "canceled":
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("task %s never reached a terminal state", id)
	return Snapshot{}
}

func TestTaskLifecycleSucceeds(t *testing.T) {
	rt := New(2, 8)
	defer rt.Drain(context.Background())
	id, err := rt.Submit(Class{Kind: "ok"}, func(ctx context.Context, p *Progress) (any, error) {
		p.Set(0, 3)
		for i := int64(1); i <= 3; i++ {
			p.Add(1)
		}
		return map[string]int{"n": 3}, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s := waitTerminal(t, rt, id)
	if s.State != "succeeded" {
		t.Fatalf("state = %s, want succeeded (last error %q)", s.State, s.LastError)
	}
	if s.Done != 3 || s.Total != 3 {
		t.Errorf("progress = %d/%d, want 3/3", s.Done, s.Total)
	}
	if s.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", s.Attempts)
	}
	if s.Result == nil {
		t.Error("result missing from snapshot")
	}
	if s.Started.IsZero() || s.Finished.IsZero() || s.Heartbeat.IsZero() {
		t.Errorf("timestamps incomplete: started=%v finished=%v heartbeat=%v", s.Started, s.Finished, s.Heartbeat)
	}
	st := rt.Stats()
	if st.Succeeded != 1 || st.Submitted != 1 || st.Started != 1 {
		t.Errorf("stats = %+v, want 1 submitted/started/succeeded", st)
	}
}

// TestFlakyHandlerRetries pins the backoff/retry path with a
// fault-injected handler: fails N times, then succeeds. The task must
// converge to succeeded with attempts = N+1 and the retry counter
// matching.
func TestFlakyHandlerRetries(t *testing.T) {
	const failures = 3
	rt := New(1, 4)
	defer rt.Drain(context.Background())
	var calls atomic.Int32
	id, err := rt.Submit(Class{
		Kind:        "flaky",
		MaxAttempts: failures + 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Jitter:      0.5,
	}, func(ctx context.Context, p *Progress) (any, error) {
		if n := calls.Add(1); n <= failures {
			return nil, fmt.Errorf("transient fault %d", n)
		}
		return "converged", nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s := waitTerminal(t, rt, id)
	if s.State != "succeeded" {
		t.Fatalf("state = %s, want succeeded (last error %q)", s.State, s.LastError)
	}
	if s.Attempts != failures+1 {
		t.Errorf("attempts = %d, want %d", s.Attempts, failures+1)
	}
	if got := calls.Load(); got != failures+1 {
		t.Errorf("handler calls = %d, want %d", got, failures+1)
	}
	if st := rt.Stats(); st.Retries != failures {
		t.Errorf("retries counter = %d, want %d", st.Retries, failures)
	}
	// A transient error seen along the way stays visible in the status.
	if s.LastError == "" {
		t.Error("last transient error was not preserved in status")
	}
}

func TestPermanentErrorSkipsRetries(t *testing.T) {
	rt := New(1, 4)
	defer rt.Drain(context.Background())
	var calls atomic.Int32
	id, _ := rt.Submit(Class{Kind: "perm", MaxAttempts: 5, BaseDelay: time.Millisecond},
		func(ctx context.Context, p *Progress) (any, error) {
			calls.Add(1)
			return nil, Permanent(errors.New("bad payload"))
		})
	s := waitTerminal(t, rt, id)
	if s.State != "failed" {
		t.Fatalf("state = %s, want failed", s.State)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("handler ran %d times, want 1 (permanent error must not retry)", got)
	}
	if s.LastError != "bad payload" {
		t.Errorf("last error = %q, want %q", s.LastError, "bad payload")
	}
}

func TestCancelPendingTask(t *testing.T) {
	// One worker wedged on a blocker keeps the second task pending.
	rt := New(1, 4)
	defer rt.Drain(context.Background())
	release := make(chan struct{})
	blockID, _ := rt.Submit(Class{Kind: "block"}, func(ctx context.Context, p *Progress) (any, error) {
		<-release
		return nil, nil
	})
	pendID, _ := rt.Submit(Class{Kind: "pend"}, func(ctx context.Context, p *Progress) (any, error) {
		t.Error("canceled pending task must never run")
		return nil, nil
	})
	s, err := rt.Cancel(pendID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if s.State != "canceled" {
		t.Fatalf("state after cancel = %s, want canceled", s.State)
	}
	close(release)
	waitTerminal(t, rt, blockID)
	if s = waitTerminal(t, rt, pendID); s.State != "canceled" {
		t.Fatalf("pending task ended %s, want canceled", s.State)
	}
	if st := rt.Stats(); st.Canceled != 1 {
		t.Errorf("canceled counter = %d, want 1", st.Canceled)
	}
}

func TestCancelRunningTask(t *testing.T) {
	rt := New(1, 4)
	defer rt.Drain(context.Background())
	started := make(chan struct{})
	id, _ := rt.Submit(Class{Kind: "long", MaxAttempts: 3, BaseDelay: time.Millisecond},
		func(ctx context.Context, p *Progress) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
	<-started
	if _, err := rt.Cancel(id); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	s := waitTerminal(t, rt, id)
	if s.State != "canceled" {
		t.Fatalf("state = %s, want canceled (cancel mid-run must not count as failed)", s.State)
	}
	if s.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after cancel)", s.Attempts)
	}
}

func TestCancelDuringBackoffSleep(t *testing.T) {
	rt := New(1, 4)
	defer rt.Drain(context.Background())
	attempted := make(chan struct{}, 1)
	id, _ := rt.Submit(Class{Kind: "sleepy", MaxAttempts: 3, BaseDelay: time.Minute},
		func(ctx context.Context, p *Progress) (any, error) {
			select {
			case attempted <- struct{}{}:
			default:
			}
			return nil, errors.New("fail once")
		})
	<-attempted
	// The worker is now (or soon will be) in its one-minute backoff
	// sleep; cancel must interrupt it immediately.
	start := time.Now()
	if _, err := rt.Cancel(id); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	s := waitTerminal(t, rt, id)
	if s.State != "canceled" {
		t.Fatalf("state = %s, want canceled", s.State)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("cancel took %v — backoff sleep was not interrupted", el)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	rt := New(1, 1)
	defer rt.Drain(context.Background())
	release := make(chan struct{})
	defer close(release)
	blocker := func(ctx context.Context, p *Progress) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := rt.Submit(Class{Kind: "a"}, blocker); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	// The worker may or may not have dequeued the first task yet; fill
	// until rejection, which must happen within queueCap+1 submissions.
	var err error
	for i := 0; i < 3; i++ {
		if _, err = rt.Submit(Class{Kind: "b"}, blocker); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
}

func TestSubmitAfterDrainRejected(t *testing.T) {
	rt := New(1, 4)
	if err := rt.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := rt.Submit(Class{Kind: "late"}, func(ctx context.Context, p *Progress) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrDraining) {
		t.Fatalf("expected ErrDraining, got %v", err)
	}
}

func TestDrainWaitsForRunning(t *testing.T) {
	rt := New(2, 8)
	var finished atomic.Int32
	for i := 0; i < 4; i++ {
		rt.Submit(Class{Kind: "work"}, func(ctx context.Context, p *Progress) (any, error) {
			time.Sleep(5 * time.Millisecond)
			finished.Add(1)
			return nil, nil
		})
	}
	if err := rt.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := finished.Load(); got != 4 {
		t.Errorf("drain returned with %d/4 tasks finished", got)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	rt := New(1, 4)
	started := make(chan struct{})
	id, _ := rt.Submit(Class{Kind: "stuck"}, func(ctx context.Context, p *Progress) (any, error) {
		close(started)
		<-ctx.Done() // honors cancellation, but never finishes on its own
		return nil, ctx.Err()
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := rt.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	if s, _ := rt.Get(id); s.State != "canceled" {
		t.Errorf("straggler state = %s, want canceled", s.State)
	}
}

// TestWorkerPoolBounded proves concurrency never exceeds the pool size.
func TestWorkerPoolBounded(t *testing.T) {
	const workers = 3
	rt := New(workers, 64)
	defer rt.Drain(context.Background())
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	wg.Add(32)
	for i := 0; i < 32; i++ {
		rt.Submit(Class{Kind: "load"}, func(ctx context.Context, p *Progress) (any, error) {
			defer wg.Done()
			n := cur.Add(1)
			for {
				pk := peak.Load()
				if n <= pk || peak.CompareAndSwap(pk, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil, nil
		})
	}
	wg.Wait()
	if pk := peak.Load(); pk > workers {
		t.Errorf("observed %d concurrent tasks, pool is %d", pk, workers)
	}
}

func TestListNewestFirstPaginated(t *testing.T) {
	rt := New(1, 16)
	defer rt.Drain(context.Background())
	var ids []string
	for i := 0; i < 5; i++ {
		id, err := rt.Submit(Class{Kind: "t"}, func(ctx context.Context, p *Progress) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitTerminal(t, rt, id)
	}
	all, total := rt.List(0, 0)
	if total != 5 || len(all) != 5 {
		t.Fatalf("List(0,0) = %d items, total %d; want 5, 5", len(all), total)
	}
	for i := range all {
		if want := ids[len(ids)-1-i]; all[i].ID != want {
			t.Errorf("List[%d] = %s, want %s (newest first)", i, all[i].ID, want)
		}
	}
	win, total := rt.List(2, 1)
	if total != 5 || len(win) != 2 {
		t.Fatalf("List(2,1) = %d items, total %d; want 2, 5", len(win), total)
	}
	if win[0].ID != ids[3] || win[1].ID != ids[2] {
		t.Errorf("window = [%s %s], want [%s %s]", win[0].ID, win[1].ID, ids[3], ids[2])
	}
	if _, total := rt.List(10, 99); total != 5 {
		t.Errorf("offset past end: total = %d, want 5", total)
	}
}

func TestGetUnknownTask(t *testing.T) {
	rt := New(1, 1)
	defer rt.Drain(context.Background())
	if _, err := rt.Get("t999999"); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("Get unknown = %v, want ErrUnknownTask", err)
	}
	if _, err := rt.Cancel("t999999"); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("Cancel unknown = %v, want ErrUnknownTask", err)
	}
}
