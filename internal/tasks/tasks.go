// Package tasks is the in-process asynchronous task runtime behind the
// repository's heavy operations: bulk ingest, background compaction
// folds, snapshot-cache prewarming — anything that used to run on the
// request path and degrade every concurrent reader while it did.
//
// The model follows the task-queue design of production content
// services: a bounded worker pool pulls typed tasks off a bounded
// queue; each task runs a per-task state machine
//
//	pending → running → succeeded | failed | canceled
//
// with a retry budget and exponential backoff (with jitter) per task
// class, heartbeat-based progress reporting (items done / total, last
// error, last heartbeat time), and context-threaded cancellation: the
// handler receives a context that fires when the task is canceled or
// the runtime is force-stopped, and a cancel mid-run is an ordinary
// early return, never a goroutine kill — so a canceled bulk ingest
// leaves the repository in whatever consistent prefix state the
// handler had reached.
//
// Retries run in-worker: a failing task sleeps its backoff on the
// worker that ran it (interruptible by cancel), so a task class with a
// long MaxDelay should be rare or the pool sized accordingly. Time is
// injected through the Clock interface; tests drive the backoff
// schedule with a deterministic clock.
//
// Everything the runtime reports — Snapshot, Stats — is a copy; the
// live Task is never shared outside the package.
package tasks

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a task's position in its lifecycle state machine.
type State int

const (
	// Pending: submitted, waiting for a worker.
	Pending State = iota
	// Running: a worker is executing the handler (or sleeping a backoff
	// between attempts).
	Running
	// Succeeded: the handler returned nil. Terminal.
	Succeeded
	// Failed: the retry budget is exhausted (or the error was marked
	// permanent); LastError holds the final attempt's error. Terminal.
	Failed
	// Canceled: canceled before or during execution. Terminal.
	Canceled
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Succeeded || s == Failed || s == Canceled }

// Class bundles the retry policy of one kind of task. The zero value
// is normalized to a single attempt with no backoff.
type Class struct {
	// Kind names the task class ("bulk-ingest", "compact", ...); it is
	// reported in snapshots and metrics labels.
	Kind string
	// MaxAttempts is the retry budget: total attempts, including the
	// first (minimum 1).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (0 = uncapped).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (values < 1 mean 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over [d·(1−J), d·(1+J)] so
	// retrying tasks don't synchronize; 0 disables, values are clamped
	// to [0, 1).
	Jitter float64
}

// normalize fills defaults so arithmetic below is total.
func (c Class) normalize() Class {
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 1
	}
	if c.Multiplier < 1 {
		c.Multiplier = 2
	}
	if c.BaseDelay < 0 {
		c.BaseDelay = 0
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter >= 1 {
		c.Jitter = 0.999
	}
	return c
}

// backoff computes the delay before attempt+1 (attempt is 1-based: the
// attempt that just failed). rnd is a uniform [0,1) sample.
func (c Class) backoff(attempt int, rnd float64) time.Duration {
	d := float64(c.BaseDelay) * math.Pow(c.Multiplier, float64(attempt-1))
	if c.MaxDelay > 0 && d > float64(c.MaxDelay) {
		d = float64(c.MaxDelay)
	}
	if c.Jitter > 0 {
		d *= 1 - c.Jitter + 2*c.Jitter*rnd
		// Jitter may push past the cap; the cap is a hard bound.
		if c.MaxDelay > 0 && d > float64(c.MaxDelay) {
			d = float64(c.MaxDelay)
		}
	}
	return time.Duration(d)
}

// Handler is one task's body. It must honor ctx (return promptly —
// typically with ctx.Err() — once it fires), report progress through p,
// and return the task's result value (anything JSON-marshalable; it is
// exposed verbatim in the task status) or an error. A returned error is
// retried until the class's budget exhausts, unless wrapped by
// Permanent or caused by the task's own cancellation.
type Handler func(ctx context.Context, p *Progress) (any, error)

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Permanent wraps an error so the runtime fails the task immediately
// instead of consuming the remaining retry budget (a validation error
// will not pass on attempt three).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

// IsPermanent reports whether err (or anything it wraps) was marked by
// Permanent.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// Clock abstracts time so backoff schedules are testable. Sleep must
// return early with ctx.Err() when the context fires.
type Clock interface {
	Now() time.Time
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Task is the runtime's internal record of one submitted job. All
// mutable fields are guarded by mu; external observers only ever see
// Snapshot copies.
type Task struct {
	id    string
	class Class
	fn    Handler

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	attempts  int
	done      int64
	total     int64
	lastError string
	result    any
	created   time.Time
	started   time.Time
	finished  time.Time
	beat      time.Time
	canceling bool // Cancel was called; decides canceled-vs-failed at exit
}

// Snapshot is the externally visible, immutable copy of a task's
// status — the /api/v1/tasks wire shape.
type Snapshot struct {
	ID          string    `json:"id"`
	Kind        string    `json:"kind"`
	State       string    `json:"state"`
	Attempts    int       `json:"attempts"`
	MaxAttempts int       `json:"max_attempts"`
	Done        int64     `json:"done"`
	Total       int64     `json:"total"`
	LastError   string    `json:"last_error,omitempty"`
	Result      any       `json:"result,omitempty"`
	Created     time.Time `json:"created"`
	Started     time.Time `json:"started,omitzero"`
	Finished    time.Time `json:"finished,omitzero"`
	Heartbeat   time.Time `json:"heartbeat,omitzero"`
}

// TerminalState reports whether the snapshot captured the task in a
// terminal state — the string-side mirror of State.Terminal for callers
// holding only the wire form.
func (s Snapshot) TerminalState() bool {
	switch s.State {
	case Succeeded.String(), Failed.String(), Canceled.String():
		return true
	}
	return false
}

func (t *Task) snapshotLocked() Snapshot {
	return Snapshot{
		ID:          t.id,
		Kind:        t.class.Kind,
		State:       t.state.String(),
		Attempts:    t.attempts,
		MaxAttempts: t.class.MaxAttempts,
		Done:        t.done,
		Total:       t.total,
		LastError:   t.lastError,
		Result:      t.result,
		Created:     t.created,
		Started:     t.started,
		Finished:    t.finished,
		Heartbeat:   t.beat,
	}
}

func (t *Task) snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// Progress is the handler's heartbeat channel: item counts and
// non-terminal errors land in the task status as they happen, so an
// operator polling GET /api/v1/tasks/{id} watches the job move.
type Progress struct {
	t  *Task
	rt *Runtime
}

// Set publishes absolute progress (items done out of total) and beats
// the heartbeat.
func (p *Progress) Set(done, total int64) {
	p.t.mu.Lock()
	p.t.done, p.t.total = done, total
	p.t.beat = p.rt.clock.Now()
	p.t.mu.Unlock()
}

// Add advances the done counter by n and beats the heartbeat.
func (p *Progress) Add(n int64) {
	p.t.mu.Lock()
	p.t.done += n
	p.t.beat = p.rt.clock.Now()
	p.t.mu.Unlock()
}

// Note records a non-terminal error (e.g. one failed item of a bulk
// ingest) in the task status without failing the task.
func (p *Progress) Note(err error) {
	if err == nil {
		return
	}
	p.t.mu.Lock()
	p.t.lastError = err.Error()
	p.t.beat = p.rt.clock.Now()
	p.t.mu.Unlock()
}

// Sentinel errors of the runtime API.
var (
	// ErrUnknownTask marks lookups/cancels of task ids the runtime has
	// never issued.
	ErrUnknownTask = errors.New("tasks: unknown task")
	// ErrQueueFull marks a Submit rejected because the queue is at
	// capacity — backpressure, not data loss (the caller still owns the
	// work).
	ErrQueueFull = errors.New("tasks: queue full")
	// ErrDraining marks a Submit after Drain began.
	ErrDraining = errors.New("tasks: runtime draining")
)

// Stats is a snapshot of the runtime's monotonic counters and current
// gauges.
type Stats struct {
	Submitted int64 `json:"submitted_total"`
	Started   int64 `json:"started_total"`
	Retries   int64 `json:"retries_total"`
	Succeeded int64 `json:"succeeded_total"`
	Failed    int64 `json:"failed_total"`
	Canceled  int64 `json:"canceled_total"`
	Running   int64 `json:"running"`
	Queued    int64 `json:"queued"`
}

// Runtime owns the worker pool, the queue and the task directory.
type Runtime struct {
	clock Clock

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	tasks    map[string]*Task
	order    []string // submission order; List serves newest-first
	queue    chan *Task
	draining bool
	seq      uint64

	wg sync.WaitGroup

	submitted atomic.Int64 //provlint:counter
	started   atomic.Int64 //provlint:counter
	retries   atomic.Int64 //provlint:counter
	succeeded atomic.Int64 //provlint:counter
	failed    atomic.Int64 //provlint:counter
	canceled  atomic.Int64 //provlint:counter
	running   atomic.Int64

	observe   atomic.Pointer[ObserveFunc]
	traceHook atomic.Pointer[TraceHook]
}

// ObserveFunc receives one terminal task's class kind, time spent
// queued, and attempt-loop run time. The signature mirrors the metrics
// registry's ObserveTask so the packages stay decoupled.
type ObserveFunc func(kind string, queueWait, run time.Duration)

// TraceHook wraps one task attempt in a trace: it may return a derived
// context carrying a root span and a finish func called when the
// attempt returns. Mirrors the tracer's StartRoot.
type TraceHook func(ctx context.Context, name string) (context.Context, func())

// SetObserve installs the terminal-task observer. Pass nil to remove.
// Safe to call while workers run.
func (rt *Runtime) SetObserve(fn ObserveFunc) {
	if fn == nil {
		rt.observe.Store(nil)
		return
	}
	rt.observe.Store(&fn)
}

// SetTraceHook installs the per-attempt trace hook. Pass nil to remove.
func (rt *Runtime) SetTraceHook(fn TraceHook) {
	if fn == nil {
		rt.traceHook.Store(nil)
		return
	}
	rt.traceHook.Store(&fn)
}

// Draining reports whether Drain has begun — used by readiness checks.
func (rt *Runtime) Draining() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.draining
}

// New starts a runtime with the given worker count and queue capacity
// (both forced to at least 1).
func New(workers, queueCap int) *Runtime {
	return NewWithClock(workers, queueCap, realClock{}, time.Now().UnixNano())
}

// NewWithClock is New with an injected clock and jitter seed — the
// deterministic-test constructor.
func NewWithClock(workers, queueCap int, c Clock, seed int64) *Runtime {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	rt := &Runtime{
		clock: c,
		rng:   rand.New(rand.NewSource(seed)),
		tasks: make(map[string]*Task),
		queue: make(chan *Task, queueCap),
	}
	rt.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go rt.worker()
	}
	return rt
}

// Submit enqueues a task and returns its id. The queue is bounded:
// a full queue rejects with ErrQueueFull rather than blocking the
// caller (typically an HTTP handler) or growing without limit.
func (rt *Runtime) Submit(class Class, fn Handler) (string, error) {
	class = class.normalize()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		return "", ErrDraining
	}
	rt.seq++
	ctx, cancel := context.WithCancel(context.Background())
	t := &Task{
		id:      fmt.Sprintf("t%06d", rt.seq),
		class:   class,
		fn:      fn,
		ctx:     ctx,
		cancel:  cancel,
		state:   Pending,
		created: rt.clock.Now(),
	}
	select {
	case rt.queue <- t:
	default:
		cancel()
		rt.seq-- // id never issued
		return "", fmt.Errorf("%w (capacity %d)", ErrQueueFull, cap(rt.queue))
	}
	rt.tasks[t.id] = t
	rt.order = append(rt.order, t.id)
	rt.submitted.Add(1)
	return t.id, nil
}

// Get returns the status snapshot of a task.
func (rt *Runtime) Get(id string) (Snapshot, error) {
	rt.mu.Lock()
	t := rt.tasks[id]
	rt.mu.Unlock()
	if t == nil {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrUnknownTask, id)
	}
	return t.snapshot(), nil
}

// List returns task snapshots newest-first, windowed to
// [offset, offset+limit) (limit 0 = unlimited), plus the total count.
func (rt *Runtime) List(limit, offset int) ([]Snapshot, int) {
	rt.mu.Lock()
	ids := make([]string, len(rt.order))
	copy(ids, rt.order)
	ts := make([]*Task, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		ts = append(ts, rt.tasks[ids[i]])
	}
	rt.mu.Unlock()
	total := len(ts)
	if offset >= total {
		return []Snapshot{}, total
	}
	ts = ts[offset:]
	if limit > 0 && limit < len(ts) {
		ts = ts[:limit]
	}
	out := make([]Snapshot, len(ts))
	for i, t := range ts {
		out[i] = t.snapshot()
	}
	return out, total
}

// Cancel requests cancellation of a task: a pending task is terminally
// canceled in place (the worker skips it), a running one has its
// context fired and transitions when the handler returns. Canceling a
// terminal task is a no-op. The returned snapshot is the post-cancel
// status.
func (rt *Runtime) Cancel(id string) (Snapshot, error) {
	rt.mu.Lock()
	t := rt.tasks[id]
	rt.mu.Unlock()
	if t == nil {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrUnknownTask, id)
	}
	t.mu.Lock()
	switch t.state {
	case Pending:
		t.state = Canceled
		t.finished = rt.clock.Now()
		rt.canceled.Add(1)
	case Running:
		t.canceling = true
	}
	snap := t.snapshotLocked()
	t.mu.Unlock()
	t.cancel()
	return snap, nil
}

// CancelAll fires cancellation for every non-terminal task (used by
// deadline-bounded drains).
func (rt *Runtime) CancelAll() {
	rt.mu.Lock()
	ts := make([]*Task, 0, len(rt.tasks))
	for _, t := range rt.tasks {
		ts = append(ts, t)
	}
	rt.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	for _, t := range ts {
		t.mu.Lock()
		terminal := t.state.Terminal()
		if t.state == Pending {
			t.state = Canceled
			t.finished = rt.clock.Now()
			rt.canceled.Add(1)
		} else if t.state == Running {
			t.canceling = true
		}
		t.mu.Unlock()
		if !terminal {
			t.cancel()
		}
	}
}

// Drain stops intake and waits for queued + running tasks to finish.
// If ctx fires first, every remaining task is canceled and Drain waits
// for the workers to observe the cancellation and exit, returning
// ctx's error. Safe to call once; Submit fails with ErrDraining from
// the moment it starts.
func (rt *Runtime) Drain(ctx context.Context) error {
	rt.mu.Lock()
	if !rt.draining {
		rt.draining = true
		close(rt.queue)
	}
	rt.mu.Unlock()
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		rt.CancelAll()
		<-done // handlers honor ctx; wait for them to unwind
		return ctx.Err()
	}
}

// Stats snapshots the runtime counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	queued := int64(len(rt.queue))
	rt.mu.Unlock()
	return Stats{
		Submitted: rt.submitted.Load(),
		Started:   rt.started.Load(),
		Retries:   rt.retries.Load(),
		Succeeded: rt.succeeded.Load(),
		Failed:    rt.failed.Load(),
		Canceled:  rt.canceled.Load(),
		Running:   rt.running.Load(),
		Queued:    queued,
	}
}

func (rt *Runtime) worker() {
	defer rt.wg.Done()
	for t := range rt.queue {
		rt.run(t)
	}
}

// uniform returns one [0,1) jitter sample from the runtime's seeded
// source.
func (rt *Runtime) uniform() float64 {
	rt.rngMu.Lock()
	defer rt.rngMu.Unlock()
	return rt.rng.Float64()
}

// run executes one task's full attempt loop on the calling worker.
func (rt *Runtime) run(t *Task) {
	t.mu.Lock()
	if t.state != Pending { // canceled while queued
		t.mu.Unlock()
		return
	}
	t.state = Running
	t.started = rt.clock.Now()
	t.beat = t.started
	t.mu.Unlock()
	rt.started.Add(1)
	rt.running.Add(1)
	defer rt.running.Add(-1)

	p := &Progress{t: t, rt: rt}
	for attempt := 1; ; attempt++ {
		t.mu.Lock()
		t.attempts = attempt
		t.mu.Unlock()
		if t.ctx.Err() != nil {
			rt.finish(t, Canceled, t.ctx.Err(), nil)
			return
		}
		actx, endSpan := t.ctx, func() {}
		if hp := rt.traceHook.Load(); hp != nil {
			actx, endSpan = (*hp)(t.ctx, "task."+t.class.Kind)
		}
		result, err := t.fn(actx, p)
		endSpan()
		if err == nil {
			rt.finish(t, Succeeded, nil, result)
			return
		}
		if t.ctx.Err() != nil {
			// The task was canceled (or force-stopped) mid-attempt; the
			// handler's error is the cancellation surfacing, not a failure.
			rt.finish(t, Canceled, err, nil)
			return
		}
		t.mu.Lock()
		t.lastError = err.Error()
		t.beat = rt.clock.Now()
		t.mu.Unlock()
		if IsPermanent(err) || attempt >= t.class.MaxAttempts {
			rt.finish(t, Failed, err, nil)
			return
		}
		rt.retries.Add(1)
		if serr := rt.clock.Sleep(t.ctx, t.class.backoff(attempt, rt.uniform())); serr != nil {
			rt.finish(t, Canceled, serr, nil)
			return
		}
	}
}

// finish records a terminal transition.
func (rt *Runtime) finish(t *Task, s State, err error, result any) {
	t.mu.Lock()
	t.state = s
	t.finished = rt.clock.Now()
	t.result = result
	if err != nil {
		t.lastError = err.Error()
	}
	kind := t.class.Kind
	created, started, finished := t.created, t.started, t.finished
	t.mu.Unlock()
	t.cancel() // release the context's resources
	switch s {
	case Succeeded:
		rt.succeeded.Add(1)
	case Failed:
		rt.failed.Add(1)
	case Canceled:
		rt.canceled.Add(1)
	}
	// Tasks canceled while still queued never started; they have no
	// queue-wait or run time worth recording.
	if op := rt.observe.Load(); op != nil && !started.IsZero() {
		(*op)(kind, started.Sub(created), finished.Sub(started))
	}
}
