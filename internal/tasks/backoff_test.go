package tasks

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when Sleep is called, recording every
// requested backoff duration — the deterministic harness for the
// schedule tests.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *fakeClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.sleeps))
	copy(out, c.sleeps)
	return out
}

// TestBackoffScheduleNoJitter pins the exact geometric schedule:
// base·multiplier^(attempt−1), hard-capped at MaxDelay.
func TestBackoffScheduleNoJitter(t *testing.T) {
	c := Class{
		Kind:        "sched",
		MaxAttempts: 6,
		BaseDelay:   100 * time.Millisecond,
		Multiplier:  2,
		MaxDelay:    time.Second,
	}.normalize()
	want := []time.Duration{
		100 * time.Millisecond, // after attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // 1600ms capped
	}
	for i, w := range want {
		if got := c.backoff(i+1, 0.5); got != w {
			t.Errorf("backoff(attempt=%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestBackoffJitterBounds: with jitter J, every delay must land in
// [d·(1−J), d·(1+J)] and never exceed the cap, across the whole rnd
// range.
func TestBackoffJitterBounds(t *testing.T) {
	c := Class{
		Kind:        "jit",
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		Multiplier:  3,
		MaxDelay:    2 * time.Second,
		Jitter:      0.25,
	}.normalize()
	for attempt := 1; attempt <= 4; attempt++ {
		raw := float64(c.BaseDelay) * math.Pow(c.Multiplier, float64(attempt-1))
		if raw > float64(c.MaxDelay) {
			raw = float64(c.MaxDelay)
		}
		lo := time.Duration(raw * (1 - c.Jitter))
		hi := time.Duration(raw * (1 + c.Jitter))
		if hi > c.MaxDelay {
			hi = c.MaxDelay
		}
		for _, rnd := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
			got := c.backoff(attempt, rnd)
			if got < lo || got > hi {
				t.Errorf("backoff(attempt=%d, rnd=%v) = %v, outside [%v, %v]", attempt, rnd, got, lo, hi)
			}
		}
		// The extremes of rnd map to the extremes of the band.
		if got := c.backoff(attempt, 0); got != lo {
			t.Errorf("backoff(attempt=%d, rnd=0) = %v, want lower bound %v", attempt, got, lo)
		}
	}
}

// TestRetryBudgetExhaustsDeterministic drives a runtime on the fake
// clock: an always-failing handler must sleep the exact geometric
// schedule between attempts and land in terminal failed with the final
// attempt's error preserved — without any real time passing.
func TestRetryBudgetExhaustsDeterministic(t *testing.T) {
	fc := newFakeClock()
	rt := NewWithClock(1, 4, fc, 1)
	defer rt.Drain(context.Background())
	const budget = 4
	id, err := rt.Submit(Class{
		Kind:        "doomed",
		MaxAttempts: budget,
		BaseDelay:   50 * time.Millisecond,
		Multiplier:  2,
		MaxDelay:    150 * time.Millisecond,
		// Jitter 0: the schedule must be exact.
	}, func(ctx context.Context, p *Progress) (any, error) {
		return nil, fmt.Errorf("attempt failed")
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s := waitTerminal(t, rt, id)
	if s.State != "failed" {
		t.Fatalf("state = %s, want failed", s.State)
	}
	if s.Attempts != budget {
		t.Errorf("attempts = %d, want full budget %d", s.Attempts, budget)
	}
	if s.LastError != "attempt failed" {
		t.Errorf("last error = %q, want %q", s.LastError, "attempt failed")
	}
	// budget attempts → budget−1 backoff sleeps, geometric then capped.
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		150 * time.Millisecond, // 200ms capped at 150ms
	}
	got := fc.recorded()
	if len(got) != len(want) {
		t.Fatalf("recorded %d sleeps %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if st := rt.Stats(); st.Failed != 1 || st.Retries != budget-1 {
		t.Errorf("stats = %+v, want failed=1 retries=%d", st, budget-1)
	}
}

// TestJitteredSleepsStayInBounds runs the same doomed task with jitter
// on a seeded runtime and checks every recorded sleep lands inside the
// jitter band of its scheduled delay.
func TestJitteredSleepsStayInBounds(t *testing.T) {
	fc := newFakeClock()
	rt := NewWithClock(1, 4, fc, 42)
	defer rt.Drain(context.Background())
	cl := Class{
		Kind:        "jittered",
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		Multiplier:  2,
		MaxDelay:    time.Second,
		Jitter:      0.2,
	}
	id, _ := rt.Submit(cl, func(ctx context.Context, p *Progress) (any, error) {
		return nil, errors.New("nope")
	})
	if s := waitTerminal(t, rt, id); s.State != "failed" {
		t.Fatalf("state = %s, want failed", s.State)
	}
	sleeps := fc.recorded()
	if len(sleeps) != cl.MaxAttempts-1 {
		t.Fatalf("recorded %d sleeps, want %d", len(sleeps), cl.MaxAttempts-1)
	}
	n := cl.normalize()
	for i, d := range sleeps {
		raw := float64(n.BaseDelay) * math.Pow(n.Multiplier, float64(i))
		if raw > float64(n.MaxDelay) {
			raw = float64(n.MaxDelay)
		}
		lo, hi := time.Duration(raw*(1-n.Jitter)), time.Duration(raw*(1+n.Jitter))
		if hi > n.MaxDelay {
			hi = n.MaxDelay
		}
		if d < lo || d > hi {
			t.Errorf("sleep[%d] = %v, outside jitter band [%v, %v]", i, d, lo, hi)
		}
	}
}

// TestZeroClassNormalizes: a zero-value Class is one attempt, no sleeps.
func TestZeroClassNormalizes(t *testing.T) {
	fc := newFakeClock()
	rt := NewWithClock(1, 2, fc, 1)
	defer rt.Drain(context.Background())
	id, _ := rt.Submit(Class{Kind: "zero"}, func(ctx context.Context, p *Progress) (any, error) {
		return nil, errors.New("only chance")
	})
	s := waitTerminal(t, rt, id)
	if s.State != "failed" || s.Attempts != 1 {
		t.Fatalf("state=%s attempts=%d, want failed after exactly 1 attempt", s.State, s.Attempts)
	}
	if len(fc.recorded()) != 0 {
		t.Errorf("zero class slept %v, want no sleeps", fc.recorded())
	}
}
