package privacy

import (
	"encoding/json"
	"strings"
	"testing"

	"provpriv/internal/workflow"
)

func diseasePolicy(t *testing.T) (*workflow.Spec, *Policy) {
	t.Helper()
	s := workflow.DiseaseSusceptibility()
	p := NewPolicy(s.ID)
	p.DataLevels["disorders"] = Analyst
	p.DataLevels["snps"] = Owner
	p.ModuleGamma["M1"] = 4
	p.ModuleLevels["M1"] = Owner
	p.Structural = []HiddenPair{{From: "M13", To: "M11", Level: Owner}}
	p.ViewGrants[Registered] = []string{"W2"}
	p.ViewGrants[Analyst] = []string{"W4", "W3"}
	if err := p.Validate(s); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return s, p
}

func TestCanSeeData(t *testing.T) {
	_, p := diseasePolicy(t)
	if p.CanSeeData(Public, "disorders") {
		t.Fatal("public sees disorders")
	}
	if !p.CanSeeData(Analyst, "disorders") {
		t.Fatal("analyst blind to disorders")
	}
	if !p.CanSeeData(Public, "prognosis") {
		t.Fatal("unlisted attribute not public")
	}
}

func TestHiddenAttrs(t *testing.T) {
	_, p := diseasePolicy(t)
	got := strings.Join(p.HiddenAttrs(Registered), ",")
	if got != "disorders,snps" {
		t.Fatalf("HiddenAttrs(Registered) = %s", got)
	}
	if len(p.HiddenAttrs(Owner)) != 0 {
		t.Fatal("owner has hidden attrs")
	}
}

func TestCanSeeModule(t *testing.T) {
	_, p := diseasePolicy(t)
	if p.CanSeeModule(Analyst, "M1") {
		t.Fatal("analyst sees private module M1")
	}
	if !p.CanSeeModule(Owner, "M1") {
		t.Fatal("owner blind to M1")
	}
	if !p.CanSeeModule(Public, "M3") {
		t.Fatal("unlisted module not public")
	}
}

func TestHiddenPairsFor(t *testing.T) {
	_, p := diseasePolicy(t)
	if got := p.HiddenPairsFor(Analyst); len(got) != 1 || got[0].From != "M13" {
		t.Fatalf("HiddenPairsFor(Analyst) = %v", got)
	}
	if got := p.HiddenPairsFor(Owner); len(got) != 0 {
		t.Fatalf("HiddenPairsFor(Owner) = %v", got)
	}
}

func TestAccessViewCumulative(t *testing.T) {
	s, p := diseasePolicy(t)
	h, _ := workflow.NewHierarchy(s)

	pub := p.AccessView(h, Public)
	if strings.Join(pub.IDs(), ",") != "W1" {
		t.Fatalf("public view = %v", pub.IDs())
	}
	reg := p.AccessView(h, Registered)
	if strings.Join(reg.IDs(), ",") != "W1,W2" {
		t.Fatalf("registered view = %v", reg.IDs())
	}
	an := p.AccessView(h, Analyst)
	if strings.Join(an.IDs(), ",") != "W1,W2,W3,W4" {
		t.Fatalf("analyst view = %v", an.IDs())
	}
	// All results are valid prefixes.
	for _, pre := range []workflow.Prefix{pub, reg, an} {
		if err := pre.Validate(h); err != nil {
			t.Fatalf("access view invalid: %v", err)
		}
	}
}

func TestAccessViewClosesUnderParents(t *testing.T) {
	s, _ := diseasePolicy(t)
	h, _ := workflow.NewHierarchy(s)
	p := NewPolicy(s.ID)
	p.ViewGrants[Registered] = []string{"W4"} // deep grant; W2 must come along
	v := p.AccessView(h, Registered)
	if strings.Join(v.IDs(), ",") != "W1,W2,W4" {
		t.Fatalf("view = %v, want parent closure", v.IDs())
	}
}

func TestValidateRejectsUnknownRefs(t *testing.T) {
	s := workflow.DiseaseSusceptibility()
	cases := []func(p *Policy){
		func(p *Policy) { p.DataLevels["nope"] = Analyst },
		func(p *Policy) { p.ModuleGamma["MX"] = 4 },
		func(p *Policy) { p.ModuleGamma["M1"] = 1 },
		func(p *Policy) { p.ModuleLevels["MX"] = Owner },
		func(p *Policy) { p.Structural = []HiddenPair{{From: "MX", To: "M1", Level: Owner}} },
		func(p *Policy) { p.Structural = []HiddenPair{{From: "M1", To: "MX", Level: Owner}} },
		func(p *Policy) { p.ViewGrants[Registered] = []string{"WX"} },
	}
	for i, mut := range cases {
		p := NewPolicy(s.ID)
		mut(p)
		if err := p.Validate(s); err == nil {
			t.Errorf("case %d: invalid policy accepted", i)
		}
	}
	// Wrong spec id.
	p := NewPolicy("other")
	if err := p.Validate(s); err == nil {
		t.Error("policy for wrong spec accepted")
	}
}

func TestLevelString(t *testing.T) {
	if Public.String() != "public" || Owner.String() != "owner" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() != "level9" {
		t.Fatalf("Level(9) = %s", Level(9))
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	s, p := diseasePolicy(t)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var p2 Policy
	if err := json.Unmarshal(data, &p2); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := p2.Validate(s); err != nil {
		t.Fatalf("round-tripped policy invalid: %v", err)
	}
	if p2.DataLevels["snps"] != Owner || p2.ModuleGamma["M1"] != 4 {
		t.Fatalf("fields lost: %+v", p2)
	}
	if len(p2.Structural) != 1 || p2.Structural[0].From != "M13" {
		t.Fatalf("structural lost: %+v", p2.Structural)
	}
	h, _ := workflow.NewHierarchy(s)
	if strings.Join(p2.AccessView(h, Registered).IDs(), ",") != "W1,W2" {
		t.Fatal("view grants lost")
	}
}
