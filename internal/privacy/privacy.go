// Package privacy defines the shared vocabulary of the privacy layer:
// access levels, users, and per-specification policies binding levels to
// the three kinds of privacy concerns the paper enumerates (Section 3) —
// data privacy, module privacy and structural privacy — plus the access
// views of Section 2 ("we can define a user's access privilege as the
// finest grained view that s/he can access").
package privacy

import (
	"fmt"
	"sort"

	"provpriv/internal/workflow"
)

// Level is an access level. Higher levels see more. Level 0 (Public) is
// the unauthenticated default.
type Level int

// Common levels. Policies may use any non-negative values.
const (
	Public Level = iota
	Registered
	Analyst
	Owner
)

func (l Level) String() string {
	switch l {
	case Public:
		return "public"
	case Registered:
		return "registered"
	case Analyst:
		return "analyst"
	case Owner:
		return "owner"
	default:
		return fmt.Sprintf("level%d", int(l))
	}
}

// User is a repository principal.
type User struct {
	Name  string `json:"name"`
	Level Level  `json:"level"`
	Group string `json:"group,omitempty"` // cache-sharing group (Section 4)
}

// HiddenPair is a structural-privacy requirement: users below the
// required level must not learn that module From contributes to the
// data produced by module To (Section 3, "Structural Privacy").
type HiddenPair struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Level Level  `json:"level"` // minimum level allowed to see the connection
}

// Policy binds a specification's components to access levels.
type Policy struct {
	SpecID string `json:"spec"`

	// DataLevels: minimum level required to see the value of a data
	// attribute (data privacy). Attributes absent from the map are
	// public.
	DataLevels map[string]Level `json:"data_levels,omitempty"`

	// ModuleGamma: module privacy requirements — minimum number of
	// possible outputs an adversary below ModuleLevels[m] must be left
	// with for every input of private module m (Γ in [4]).
	ModuleGamma  map[string]int   `json:"module_gamma,omitempty"`
	ModuleLevels map[string]Level `json:"module_levels,omitempty"`

	// Structural: connections that must be hidden from low levels.
	Structural []HiddenPair `json:"structural,omitempty"`

	// ViewGrants: the workflows each level's access view may expand,
	// cumulatively: a level's access view is the union of grants at all
	// levels ≤ it, plus the root. Finer views for higher levels.
	ViewGrants map[Level][]string `json:"view_grants,omitempty"`
}

// NewPolicy returns an empty policy for a spec.
func NewPolicy(specID string) *Policy {
	return &Policy{
		SpecID:       specID,
		DataLevels:   make(map[string]Level),
		ModuleGamma:  make(map[string]int),
		ModuleLevels: make(map[string]Level),
		ViewGrants:   make(map[Level][]string),
	}
}

// CanSeeData reports whether a user at level l may see values of
// attribute attr.
func (p *Policy) CanSeeData(l Level, attr string) bool {
	return l >= p.DataLevels[attr]
}

// ProtectedAttrs returns the attributes whose required level exceeds l,
// with their required levels — the seeding set for taint propagation
// (internal/taint). ProtectedAttrs(Public) is every protected attribute.
func (p *Policy) ProtectedAttrs(l Level) map[string]Level {
	out := make(map[string]Level)
	for a, req := range p.DataLevels {
		if req > l {
			out[a] = req
		}
	}
	return out
}

// HiddenAttrs returns the attributes whose values level l may NOT see,
// sorted.
func (p *Policy) HiddenAttrs(l Level) []string {
	var out []string
	for a, req := range p.DataLevels {
		if l < req {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// CanSeeModule reports whether level l may see the identity/behaviour of
// module m (module privacy).
func (p *Policy) CanSeeModule(l Level, moduleID string) bool {
	return l >= p.ModuleLevels[moduleID]
}

// HiddenPairsFor returns the structural pairs that must stay hidden from
// level l.
func (p *Policy) HiddenPairsFor(l Level) []HiddenPair {
	var out []HiddenPair
	for _, hp := range p.Structural {
		if l < hp.Level {
			out = append(out, hp)
		}
	}
	return out
}

// AccessView returns the finest view prefix a user at level l may see:
// the root workflow plus every grant at levels ≤ l, closed under
// parents. The result is always a valid prefix of h.
func (p *Policy) AccessView(h *workflow.Hierarchy, l Level) workflow.Prefix {
	prefix := workflow.NewPrefix(h.Root)
	for lvl, wids := range p.ViewGrants {
		if lvl > l {
			continue
		}
		for _, wid := range wids {
			// Close under parents up to the root.
			for cur := wid; cur != "" && !prefix.Contains(cur); cur = h.Parent(cur) {
				if h.Depth(cur) < 0 {
					break // unknown workflow: skip grant
				}
				prefix[cur] = true
			}
		}
	}
	return prefix
}

// Validate checks the policy against a spec: referenced modules,
// workflows and attributes must exist, Γ values must be ≥ 2 (Γ = 1 is
// no privacy) and structural pairs must reference modules.
func (p *Policy) Validate(s *workflow.Spec) error {
	if p.SpecID != s.ID {
		return fmt.Errorf("privacy: policy for %q applied to spec %q", p.SpecID, s.ID)
	}
	attrs := make(map[string]bool)
	for _, wid := range s.WorkflowIDs() {
		for _, m := range s.Workflows[wid].Modules {
			for _, a := range m.Inputs {
				attrs[a] = true
			}
			for _, a := range m.Outputs {
				attrs[a] = true
			}
		}
	}
	for a := range p.DataLevels {
		if !attrs[a] {
			return fmt.Errorf("privacy: data level for unknown attribute %q", a)
		}
	}
	for mid, g := range p.ModuleGamma {
		if m, _ := s.FindModule(mid); m == nil {
			return fmt.Errorf("privacy: module gamma for unknown module %q", mid)
		}
		if g < 2 {
			return fmt.Errorf("privacy: module %s gamma %d < 2 provides no privacy", mid, g)
		}
	}
	for mid := range p.ModuleLevels {
		if m, _ := s.FindModule(mid); m == nil {
			return fmt.Errorf("privacy: module level for unknown module %q", mid)
		}
	}
	for _, hp := range p.Structural {
		if m, _ := s.FindModule(hp.From); m == nil {
			return fmt.Errorf("privacy: structural pair references unknown module %q", hp.From)
		}
		if m, _ := s.FindModule(hp.To); m == nil {
			return fmt.Errorf("privacy: structural pair references unknown module %q", hp.To)
		}
	}
	for lvl, wids := range p.ViewGrants {
		if lvl < 0 {
			return fmt.Errorf("privacy: negative view-grant level %d", lvl)
		}
		for _, wid := range wids {
			if s.Workflows[wid] == nil {
				return fmt.Errorf("privacy: view grant for unknown workflow %q", wid)
			}
		}
	}
	return nil
}
