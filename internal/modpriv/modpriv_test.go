package modpriv

import (
	"errors"
	"strings"
	"testing"

	"provpriv/internal/exec"
)

// xorFunc: out = in1 XOR in2 over {0,1}.
func xorFunc(in map[string]exec.Value) map[string]exec.Value {
	v := "0"
	if in["a"] != in["b"] {
		v = "1"
	}
	return map[string]exec.Value{"y": exec.Value(v)}
}

func xorRelation(t *testing.T) *Relation {
	t.Helper()
	dom := Domain{
		"a": {"0", "1"},
		"b": {"0", "1"},
		"y": {"0", "1"},
	}
	rel, err := Enumerate("xor", xorFunc, []string{"a", "b"}, []string{"y"}, dom)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	return rel
}

func TestEnumerateRows(t *testing.T) {
	rel := xorRelation(t)
	if len(rel.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rel.Rows))
	}
	// Spot check a row.
	found := false
	for _, r := range rel.Rows {
		if r.In["a"] == "1" && r.In["b"] == "0" {
			found = true
			if r.Out["y"] != "1" {
				t.Fatalf("xor(1,0) = %v", r.Out["y"])
			}
		}
	}
	if !found {
		t.Fatal("row (1,0) missing")
	}
}

func TestEnumerateRejectsEmptyDomain(t *testing.T) {
	_, err := Enumerate("m", xorFunc, []string{"a", "b"}, []string{"y"},
		Domain{"a": {"0"}, "b": nil, "y": {"0", "1"}})
	if err == nil || !strings.Contains(err.Error(), "empty domain") {
		t.Fatalf("err = %v", err)
	}
}

func TestEnumerateRejectsOutOfDomainOutput(t *testing.T) {
	bad := func(in map[string]exec.Value) map[string]exec.Value {
		return map[string]exec.Value{"y": "weird"}
	}
	_, err := Enumerate("m", bad, []string{"a"}, []string{"y"},
		Domain{"a": {"0"}, "y": {"0", "1"}})
	if err == nil || !strings.Contains(err.Error(), "outside its domain") {
		t.Fatalf("err = %v", err)
	}
}

func TestPrivacyLevelNothingHidden(t *testing.T) {
	rel := xorRelation(t)
	if got := rel.PrivacyLevel(NewHidden()); got != 1 {
		t.Fatalf("level(∅) = %d, want 1", got)
	}
}

func TestPrivacyLevelHideOutput(t *testing.T) {
	rel := xorRelation(t)
	// Hiding y alone: for any input, OUT_x = dom(y) = 2.
	if got := rel.PrivacyLevel(NewHidden("y")); got != 2 {
		t.Fatalf("level({y}) = %d, want 2", got)
	}
}

func TestPrivacyLevelHideOneInput(t *testing.T) {
	rel := xorRelation(t)
	// Hiding input a: group {b=0} contains rows a=0 (y=0) and a=1 (y=1):
	// two distinct visible outputs -> level 2. Same for b=1.
	if got := rel.PrivacyLevel(NewHidden("a")); got != 2 {
		t.Fatalf("level({a}) = %d, want 2", got)
	}
}

func TestPrivacyLevelHideAll(t *testing.T) {
	rel := xorRelation(t)
	// Hidden inputs merge all rows into one group; hidden output is free:
	// 1 distinct visible projection × |dom(y)| = 2.
	if got := rel.MaxLevel(); got != 2 {
		t.Fatalf("MaxLevel = %d, want 2", got)
	}
}

// Monotonicity: hiding more attributes never lowers the level.
func TestPrivacyLevelMonotone(t *testing.T) {
	rel := bigRelation(t)
	subsets := [][]string{
		{}, {"a"}, {"a", "b"}, {"a", "b", "y"}, {"a", "b", "y", "z"},
	}
	prev := 0
	for _, s := range subsets {
		level := rel.PrivacyLevel(NewHidden(s...))
		if level < prev {
			t.Fatalf("level(%v) = %d < previous %d: not monotone", s, level, prev)
		}
		prev = level
	}
}

// bigRelation: two ternary inputs, two outputs:
// y = (a+b) mod 3, z = a*b mod 3 over {0,1,2}.
func bigRelation(t *testing.T) *Relation {
	t.Helper()
	fn := func(in map[string]exec.Value) map[string]exec.Value {
		a := int(in["a"][0] - '0')
		b := int(in["b"][0] - '0')
		return map[string]exec.Value{
			"y": exec.Value(rune('0' + (a+b)%3)),
			"z": exec.Value(rune('0' + (a*b)%3)),
		}
	}
	dom := Domain{
		"a": {"0", "1", "2"},
		"b": {"0", "1", "2"},
		"y": {"0", "1", "2"},
		"z": {"0", "1", "2"},
	}
	rel, err := Enumerate("mod3", fn, []string{"a", "b"}, []string{"y", "z"}, dom)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	return rel
}

func TestExhaustiveFindsMinimumCost(t *testing.T) {
	rel := xorRelation(t)
	// Weights: y is cheap to hide.
	w := Weights{"a": 5, "b": 5, "y": 1}
	sv, err := ExhaustiveSecureView(rel, 2, w)
	if err != nil {
		t.Fatalf("ExhaustiveSecureView: %v", err)
	}
	if !sv.Hidden["y"] || len(sv.Hidden) != 1 {
		t.Fatalf("hidden = %v, want {y}", sv.Hidden)
	}
	if sv.Cost != 1 {
		t.Fatalf("cost = %v, want 1", sv.Cost)
	}
	if sv.Level < 2 {
		t.Fatalf("level = %d", sv.Level)
	}
}

func TestExhaustivePrefersCheapInput(t *testing.T) {
	rel := xorRelation(t)
	// Now the output is expensive; hiding one input also gives Γ=2.
	w := Weights{"a": 1, "b": 5, "y": 10}
	sv, err := ExhaustiveSecureView(rel, 2, w)
	if err != nil {
		t.Fatalf("ExhaustiveSecureView: %v", err)
	}
	if !sv.Hidden["a"] || len(sv.Hidden) != 1 {
		t.Fatalf("hidden = %v, want {a}", sv.Hidden)
	}
}

func TestUnachievableGamma(t *testing.T) {
	rel := xorRelation(t)
	_, err := ExhaustiveSecureView(rel, 3, nil)
	var ue *ErrUnachievable
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want ErrUnachievable", err)
	}
	if ue.Max != 2 {
		t.Fatalf("max = %d, want 2", ue.Max)
	}
	if _, err := GreedySecureView(rel, 3, nil); !errors.As(err, &ue) {
		t.Fatalf("greedy err = %v, want ErrUnachievable", err)
	}
}

func TestGreedyIsSafe(t *testing.T) {
	rel := bigRelation(t)
	for _, gamma := range []int{2, 3, 6, 9} {
		sv, err := GreedySecureView(rel, gamma, nil)
		if err != nil {
			t.Fatalf("Γ=%d: %v", gamma, err)
		}
		if !rel.IsSafe(sv.Hidden, gamma) {
			t.Fatalf("Γ=%d: greedy result %v unsafe (level %d)", gamma, sv.Hidden, sv.Level)
		}
	}
}

func TestGreedyVsExhaustiveGap(t *testing.T) {
	rel := bigRelation(t)
	w := Weights{"a": 3, "b": 2, "y": 2, "z": 1}
	for _, gamma := range []int{2, 3, 6} {
		ex, err := ExhaustiveSecureView(rel, gamma, w)
		if err != nil {
			t.Fatalf("exact Γ=%d: %v", gamma, err)
		}
		gr, err := GreedySecureView(rel, gamma, w)
		if err != nil {
			t.Fatalf("greedy Γ=%d: %v", gamma, err)
		}
		if gr.Cost < ex.Cost {
			t.Fatalf("Γ=%d: greedy cost %v beats exact %v — exact not optimal", gamma, gr.Cost, ex.Cost)
		}
		// Greedy should stay within 3x on these tiny instances.
		if gr.Cost > 3*ex.Cost {
			t.Fatalf("Γ=%d: greedy cost %v vs exact %v: gap too large", gamma, gr.Cost, ex.Cost)
		}
	}
}

func TestGreedyReverseDeletionPrunes(t *testing.T) {
	rel := bigRelation(t)
	sv, err := GreedySecureView(rel, 2, nil)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	// Γ=2 is reachable by hiding a single attribute (e.g. z: for input
	// groups the distinct visible outputs... verify minimality: no proper
	// subset of the result is safe.
	for a := range sv.Hidden {
		h := sv.Hidden.Clone()
		delete(h, a)
		if rel.IsSafe(h, 2) {
			t.Fatalf("greedy result %v not minimal: %s removable", sv.Hidden, a)
		}
	}
}

func TestHiddenHelpers(t *testing.T) {
	h := NewHidden("b", "a")
	if h.String() != "{a,b}" {
		t.Fatalf("String = %s", h.String())
	}
	c := h.Clone()
	delete(c, "a")
	if !h["a"] {
		t.Fatal("Clone aliases original")
	}
	if got := (Weights{"a": 2}).Cost(h); got != 3 { // a=2 + b=default 1
		t.Fatalf("Cost = %v, want 3", got)
	}
}
