package modpriv

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/exec"
)

// This file implements the workflow dimension of module privacy from
// the paper's companion report [4]: standalone Γ-privacy of a module is
// NOT preserved once its outputs flow through *public* downstream
// modules whose functions are common knowledge. A visible downstream
// output can act as an oracle that re-identifies a hidden intermediate
// value (hide y, publish NOT(y), and y is gone). EffectiveLevel
// quantifies the adversary's real uncertainty for a module followed by
// a public chain; GreedyChainSecureView finds hidden sets that are safe
// with respect to that stronger adversary. The conservative alternative
// (hide everything downstream) is WorkflowAnalysis.Propagate.

// Apply evaluates the relation as a function: it looks up the row whose
// input assignment matches in (all inputs must be present) and returns
// its outputs. ok is false when no row matches.
func (r *Relation) Apply(in map[string]exec.Value) (map[string]exec.Value, bool) {
	if r.lookup == nil {
		r.buildLookup()
	}
	out, ok := r.lookup[assignKey(r.Inputs, in)]
	return out, ok
}

func (r *Relation) buildLookup() {
	r.lookup = make(map[string]map[string]exec.Value, len(r.Rows))
	for _, row := range r.Rows {
		r.lookup[assignKey(r.Inputs, row.In)] = row.Out
	}
}

func assignKey(attrs []string, m map[string]exec.Value) string {
	var b strings.Builder
	for _, a := range attrs {
		b.WriteString(a)
		b.WriteByte('=')
		b.WriteString(string(m[a]))
		b.WriteByte(';')
	}
	return b.String()
}

// Compose composes r1 ; r2 into a single relation from r1's inputs to
// r2's outputs. Every input of r2 must be produced by r1. The composed
// module id is "r1;r2".
func Compose(r1, r2 *Relation) (*Relation, error) {
	for _, a := range r2.Inputs {
		if !containsStrSlice(r1.Outputs, a) {
			return nil, fmt.Errorf("modpriv: compose: %s input %q not produced by %s", r2.ModuleID, a, r1.ModuleID)
		}
	}
	out := &Relation{
		ModuleID: r1.ModuleID + ";" + r2.ModuleID,
		Inputs:   append([]string(nil), r1.Inputs...),
		Outputs:  append([]string(nil), r2.Outputs...),
		Dom:      mergeDomains(r1.Dom, r2.Dom),
	}
	for _, row := range r1.Rows {
		mid := make(map[string]exec.Value, len(r2.Inputs))
		for _, a := range r2.Inputs {
			mid[a] = row.Out[a]
		}
		y, ok := r2.Apply(mid)
		if !ok {
			return nil, fmt.Errorf("modpriv: compose: %s has no row for intermediate %v", r2.ModuleID, mid)
		}
		out.Rows = append(out.Rows, Row{In: row.In, Out: y})
	}
	return out, nil
}

func containsStrSlice(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func mergeDomains(a, b Domain) Domain {
	m := make(Domain, len(a)+len(b))
	for k, v := range a {
		m[k] = v
	}
	for k, v := range b {
		m[k] = v
	}
	return m
}

// EffectiveLevel computes min_x |OUT_x| for rel against an adversary
// who additionally knows the functions of the public downstream chain
// and sees its visible outputs. Each chain element must consume only
// attributes produced by the previous stage (rel's outputs for the
// first element).
//
// For every input row x, a candidate full output y ∈ Dom(rel.Outputs)
// survives iff (a) y agrees with the true output on rel's visible
// output attributes, and (b) pushing y through the chain reproduces
// every visible downstream attribute the adversary observed. The level
// is the minimum surviving-candidate count over all rows.
func EffectiveLevel(rel *Relation, chain []*Relation, hidden Hidden) (int, error) {
	if err := checkChain(rel, chain); err != nil {
		return 0, err
	}
	candidates := enumerateAssignments(rel.Outputs, rel.Dom)
	min := -1
	for _, row := range rel.Rows {
		// The adversary's observations for this run.
		trueVisOut := projKey(rel.Outputs, row.Out, hidden)
		trueChainSigs, err := chainSignature(chain, row.Out, hidden)
		if err != nil {
			return 0, err
		}
		count := 0
		for _, y := range candidates {
			if projKey(rel.Outputs, y, hidden) != trueVisOut {
				continue
			}
			sig, err := chainSignature(chain, y, hidden)
			if err != nil {
				return 0, err
			}
			if sig == trueChainSigs {
				count++
			}
		}
		// Rows with visibly identical inputs widen the candidate set:
		// the adversary cannot tell which row ran. We take the stricter
		// per-row bound (visible inputs assumed known), matching the
		// worst case where the adversary supplies the input ("they do
		// not want someone who may happen to have access to their SNP
		// and ethnicity information...").
		if min < 0 || count < min {
			min = count
		}
	}
	if min < 0 {
		return 0, nil
	}
	return min, nil
}

func checkChain(rel *Relation, chain []*Relation) error {
	avail := append([]string(nil), rel.Outputs...)
	for _, c := range chain {
		for _, a := range c.Inputs {
			if !containsStrSlice(avail, a) {
				return fmt.Errorf("modpriv: chain module %s consumes %q not produced upstream", c.ModuleID, a)
			}
		}
		avail = append(avail, c.Outputs...)
	}
	return nil
}

// chainSignature pushes a candidate first-stage output through the
// chain and renders the visible projection of every stage's outputs.
func chainSignature(chain []*Relation, firstOut map[string]exec.Value, hidden Hidden) (string, error) {
	env := make(map[string]exec.Value, len(firstOut))
	for k, v := range firstOut {
		env[k] = v
	}
	var b strings.Builder
	for _, c := range chain {
		in := make(map[string]exec.Value, len(c.Inputs))
		for _, a := range c.Inputs {
			in[a] = env[a]
		}
		out, ok := c.Apply(in)
		if !ok {
			return "", fmt.Errorf("modpriv: chain module %s undefined on %v", c.ModuleID, in)
		}
		b.WriteString(projKey(c.Outputs, out, hidden))
		b.WriteByte('|')
		for k, v := range out {
			env[k] = v
		}
	}
	return b.String(), nil
}

// enumerateAssignments lists every full assignment of the given
// attributes over their domains.
func enumerateAssignments(attrs []string, dom Domain) []map[string]exec.Value {
	if len(attrs) == 0 {
		return []map[string]exec.Value{{}}
	}
	total := 1
	for _, a := range attrs {
		total *= dom.Size(a)
	}
	out := make([]map[string]exec.Value, 0, total)
	idx := make([]int, len(attrs))
	for {
		m := make(map[string]exec.Value, len(attrs))
		for i, a := range attrs {
			m[a] = dom[a][idx[i]]
		}
		out = append(out, m)
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < dom.Size(attrs[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}

// GreedyChainSecureView finds a hidden set achieving Γ against the
// chain-aware adversary, greedily hiding the attribute (of the module
// or any chain stage) with the best marginal effective-level gain per
// unit weight, then pruning. It subsumes GreedySecureView (empty
// chain ⇒ per-row standalone semantics with known inputs).
func GreedyChainSecureView(rel *Relation, chain []*Relation, gamma int, w Weights) (*SecureView, error) {
	var attrs []string
	attrs = append(attrs, rel.Outputs...)
	for _, c := range chain {
		attrs = append(attrs, c.Outputs...)
	}
	sort.Strings(attrs)
	attrs = dedupe(attrs)

	h := make(Hidden)
	level, err := EffectiveLevel(rel, chain, h)
	if err != nil {
		return nil, err
	}
	allHidden := NewHidden(attrs...)
	maxLevel, err := EffectiveLevel(rel, chain, allHidden)
	if err != nil {
		return nil, err
	}
	if maxLevel < gamma {
		return nil, &ErrUnachievable{ModuleID: rel.ModuleID, Gamma: gamma, Max: maxLevel}
	}
	for level < gamma {
		bestAttr, bestGain, bestWeight := "", -1.0, 0.0
		for _, a := range attrs {
			if h[a] {
				continue
			}
			h[a] = true
			nl, err := EffectiveLevel(rel, chain, h)
			delete(h, a)
			if err != nil {
				return nil, err
			}
			gain := float64(nl-level) / maxf(w.Of(a), 1e-9)
			if gain > bestGain || (gain == bestGain && (bestAttr == "" || w.Of(a) < bestWeight || (w.Of(a) == bestWeight && a < bestAttr))) {
				bestAttr, bestGain, bestWeight = a, gain, w.Of(a)
			}
		}
		if bestAttr == "" {
			break
		}
		h[bestAttr] = true
		level, err = EffectiveLevel(rel, chain, h)
		if err != nil {
			return nil, err
		}
	}
	if level < gamma {
		return nil, &ErrUnachievable{ModuleID: rel.ModuleID, Gamma: gamma, Max: maxLevel}
	}
	// Reverse deletion, most expensive first.
	hs := h.List()
	sort.Slice(hs, func(i, j int) bool {
		wi, wj := w.Of(hs[i]), w.Of(hs[j])
		if wi != wj {
			return wi > wj
		}
		return hs[i] < hs[j]
	})
	for _, a := range hs {
		delete(h, a)
		nl, err := EffectiveLevel(rel, chain, h)
		if err != nil {
			return nil, err
		}
		if nl < gamma {
			h[a] = true
		}
	}
	finalLevel, err := EffectiveLevel(rel, chain, h)
	if err != nil {
		return nil, err
	}
	return &SecureView{ModuleID: rel.ModuleID, Hidden: h, Cost: w.Cost(h), Level: finalLevel}, nil
}

// ExhaustiveChainSecureView finds a minimum-cost hidden set achieving Γ
// against the chain-aware adversary by subset enumeration over the
// module's and chain's output attributes. Exact but exponential; use
// for ≲16 attributes and as the optimality baseline for
// GreedyChainSecureView.
func ExhaustiveChainSecureView(rel *Relation, chain []*Relation, gamma int, w Weights) (*SecureView, error) {
	var attrs []string
	attrs = append(attrs, rel.Outputs...)
	for _, c := range chain {
		attrs = append(attrs, c.Outputs...)
	}
	sort.Strings(attrs)
	attrs = dedupe(attrs)
	if len(attrs) > 20 {
		return nil, fmt.Errorf("modpriv: exhaustive chain search over %d attributes refused (>20)", len(attrs))
	}
	maxLevel, err := EffectiveLevel(rel, chain, NewHidden(attrs...))
	if err != nil {
		return nil, err
	}
	if maxLevel < gamma {
		return nil, &ErrUnachievable{ModuleID: rel.ModuleID, Gamma: gamma, Max: maxLevel}
	}
	var best Hidden
	bestCost := 0.0
	bestSize := 0
	for mask := 0; mask < 1<<uint(len(attrs)); mask++ {
		h := make(Hidden)
		cost := 0.0
		size := 0
		for i, a := range attrs {
			if mask&(1<<uint(i)) != 0 {
				h[a] = true
				cost += w.Of(a)
				size++
			}
		}
		if best != nil && (cost > bestCost || (cost == bestCost && size >= bestSize)) {
			continue
		}
		lvl, err := EffectiveLevel(rel, chain, h)
		if err != nil {
			return nil, err
		}
		if lvl >= gamma {
			best, bestCost, bestSize = h, cost, size
		}
	}
	if best == nil {
		return nil, &ErrUnachievable{ModuleID: rel.ModuleID, Gamma: gamma, Max: maxLevel}
	}
	lvl, err := EffectiveLevel(rel, chain, best)
	if err != nil {
		return nil, err
	}
	return &SecureView{ModuleID: rel.ModuleID, Hidden: best, Cost: bestCost, Level: lvl}, nil
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
