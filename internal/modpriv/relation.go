// Package modpriv implements module privacy (Section 3 of the CIDR 2011
// paper and its companion technical report, Davidson et al.,
// arXiv:1005.5543, cited as [4]): guaranteeing that the functionality of
// a private module — the mapping it defines between inputs and outputs —
// is not revealed to users without the required access level, by hiding
// a carefully chosen subset of intermediate data in ALL executions.
//
// A module is viewed as a finite relation over its input and output
// attributes. Hiding a set H of attributes leaves an adversary, for any
// input x, with a set of possible outputs OUT_x: the outputs consistent
// with some visibly-indistinguishable input row, with hidden output
// attributes free over their domains. The module is Γ-private under H
// when min_x |OUT_x| ≥ Γ. Since several hidden sets may achieve a given
// Γ and attributes carry utility weights, choosing the cheapest safe
// subset is an optimization problem; this package provides an exact
// exhaustive solver and a greedy heuristic, compared in benchmark B1.
package modpriv

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/exec"
)

// Domain maps attribute names to their finite value domains. Module
// privacy is defined over finite domains; real-world attributes are
// binned into finite categories before analysis.
type Domain map[string][]exec.Value

// Size returns |dom(attr)|, or 0 if unknown.
func (d Domain) Size(attr string) int { return len(d[attr]) }

// Row is one entry of a module relation: a full input assignment and
// the corresponding output assignment.
type Row struct {
	In  map[string]exec.Value
	Out map[string]exec.Value
}

// Relation is the full extension of a module function over its input
// domain: one row per input combination. This is the object the privacy
// analysis works on.
type Relation struct {
	ModuleID string
	Inputs   []string
	Outputs  []string
	Rows     []Row
	Dom      Domain

	lookup map[string]map[string]exec.Value // built lazily by Apply
}

// Enumerate builds the relation of fn by evaluating it on the full
// cartesian product of the input domains. The number of rows is the
// product of the input domain sizes; callers should keep domains small
// (the analysis is exact, not sampled).
func Enumerate(moduleID string, fn exec.Func, inputs, outputs []string, dom Domain) (*Relation, error) {
	for _, a := range inputs {
		if dom.Size(a) == 0 {
			return nil, fmt.Errorf("modpriv: input %q has empty domain", a)
		}
	}
	for _, a := range outputs {
		if dom.Size(a) == 0 {
			return nil, fmt.Errorf("modpriv: output %q has empty domain", a)
		}
	}
	rel := &Relation{
		ModuleID: moduleID,
		Inputs:   append([]string(nil), inputs...),
		Outputs:  append([]string(nil), outputs...),
		Dom:      dom,
	}
	idx := make([]int, len(inputs))
	for {
		in := make(map[string]exec.Value, len(inputs))
		for i, a := range inputs {
			in[a] = dom[a][idx[i]]
		}
		out := fn(in)
		outCopy := make(map[string]exec.Value, len(outputs))
		for _, a := range outputs {
			v, ok := out[a]
			if !ok {
				return nil, fmt.Errorf("modpriv: module %s produced no output %q", moduleID, a)
			}
			if !containsValue(dom[a], v) {
				return nil, fmt.Errorf("modpriv: module %s output %s=%q outside its domain", moduleID, a, v)
			}
			outCopy[a] = v
		}
		rel.Rows = append(rel.Rows, Row{In: in, Out: outCopy})
		// Advance the odometer.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(dom[inputs[i]]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return rel, nil
}

func containsValue(vs []exec.Value, v exec.Value) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// Attrs returns all attribute names of the relation (inputs then
// outputs).
func (r *Relation) Attrs() []string {
	out := make([]string, 0, len(r.Inputs)+len(r.Outputs))
	out = append(out, r.Inputs...)
	out = append(out, r.Outputs...)
	return out
}

// Hidden is a set of hidden attribute names.
type Hidden map[string]bool

// NewHidden builds a Hidden set.
func NewHidden(attrs ...string) Hidden {
	h := make(Hidden, len(attrs))
	for _, a := range attrs {
		h[a] = true
	}
	return h
}

// Clone copies the set.
func (h Hidden) Clone() Hidden {
	c := make(Hidden, len(h))
	for a := range h {
		c[a] = true
	}
	return c
}

// List returns the hidden attributes in sorted order.
func (h Hidden) List() []string {
	out := make([]string, 0, len(h))
	for a := range h {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (h Hidden) String() string { return "{" + strings.Join(h.List(), ",") + "}" }

// projKey renders the projection of assignment m onto the visible
// (non-hidden) attributes in attrs, as a canonical string key.
func projKey(attrs []string, m map[string]exec.Value, hidden Hidden) string {
	var b strings.Builder
	for _, a := range attrs {
		if hidden[a] {
			continue
		}
		b.WriteString(a)
		b.WriteByte('=')
		b.WriteString(string(m[a]))
		b.WriteByte(';')
	}
	return b.String()
}

// PrivacyLevel returns min_x |OUT_x| under the hidden set: rows are
// grouped by visible-input projection; within a group the adversary can
// pin the output only up to (a) which distinct visible-output projection
// occurred and (b) the free hidden output attributes. So
//
//	|OUT_x| = #distinct visible-output projections in x's group
//	          × ∏_{hidden output attrs} |dom|
//
// A fully deterministic, fully visible module has level 1.
func (r *Relation) PrivacyLevel(hidden Hidden) int {
	hiddenOutProduct := 1
	for _, a := range r.Outputs {
		if hidden[a] {
			hiddenOutProduct *= r.Dom.Size(a)
		}
	}
	groups := make(map[string]map[string]bool) // visible-in key -> set of visible-out keys
	for _, row := range r.Rows {
		ik := projKey(r.Inputs, row.In, hidden)
		ok := projKey(r.Outputs, row.Out, hidden)
		if groups[ik] == nil {
			groups[ik] = make(map[string]bool)
		}
		groups[ik][ok] = true
	}
	min := -1
	for _, outs := range groups {
		level := len(outs) * hiddenOutProduct
		if min < 0 || level < min {
			min = level
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// IsSafe reports whether the hidden set guarantees Γ-privacy.
func (r *Relation) IsSafe(hidden Hidden, gamma int) bool {
	return r.PrivacyLevel(hidden) >= gamma
}

// MaxLevel returns the privacy level achieved by hiding every attribute
// — the best any hidden set can do. If MaxLevel < Γ, Γ is unachievable
// for this module.
func (r *Relation) MaxLevel() int {
	all := NewHidden(r.Attrs()...)
	return r.PrivacyLevel(all)
}
