package modpriv

import (
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/workflow"
)

func allInputs(rel *Relation) []map[string]exec.Value {
	var out []map[string]exec.Value
	for _, r := range rel.Rows {
		out = append(out, r.In)
	}
	return out
}

func TestReconstructionRecoversEverythingWhenNothingHidden(t *testing.T) {
	rel := xorRelation(t)
	stats := ReconstructionAttack(rel, allInputs(rel), NewHidden())
	if stats.Recovered != len(rel.Rows) || stats.Coverage() != 1 {
		t.Fatalf("stats = %+v, want full recovery", stats)
	}
}

func TestReconstructionPartialObservations(t *testing.T) {
	rel := xorRelation(t)
	// Observe only two of four inputs.
	obs := allInputs(rel)[:2]
	stats := ReconstructionAttack(rel, obs, NewHidden())
	if stats.Observed != 2 || stats.Recovered != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Coverage() != 0.5 {
		t.Fatalf("coverage = %v", stats.Coverage())
	}
}

func TestSecureViewStopsReconstruction(t *testing.T) {
	rel := xorRelation(t)
	sv, err := GreedySecureView(rel, 2, nil)
	if err != nil {
		t.Fatalf("GreedySecureView: %v", err)
	}
	// Even with EVERY input observed, a Γ=2 view recovers nothing.
	stats := ReconstructionAttack(rel, allInputs(rel), sv.Hidden)
	if stats.Recovered != 0 {
		t.Fatalf("secure view leaked %d rows (hidden %v)", stats.Recovered, sv.Hidden)
	}
	if stats.Observed != len(rel.Rows) {
		t.Fatalf("observed = %d", stats.Observed)
	}
}

func TestReconstructionIgnoresOutOfDomain(t *testing.T) {
	rel := xorRelation(t)
	obs := []map[string]exec.Value{{"a": "9", "b": "9"}}
	stats := ReconstructionAttack(rel, obs, NewHidden())
	if stats.Observed != 0 || stats.Recovered != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// Property: recovery is monotone in observations and antitone in
// hiding.
func TestReconstructionMonotonicity(t *testing.T) {
	rel := bigRelation(t)
	all := allInputs(rel)
	prevRecovered := -1
	for k := 0; k <= len(all); k += 3 {
		stats := ReconstructionAttack(rel, all[:k], NewHidden())
		if stats.Recovered < prevRecovered {
			t.Fatalf("recovery not monotone in observations: %d then %d", prevRecovered, stats.Recovered)
		}
		prevRecovered = stats.Recovered
	}
	// More hiding never recovers more.
	full := ReconstructionAttack(rel, all, NewHidden()).Recovered
	hidY := ReconstructionAttack(rel, all, NewHidden("y")).Recovered
	hidYZ := ReconstructionAttack(rel, all, NewHidden("y", "z")).Recovered
	if hidY > full || hidYZ > hidY {
		t.Fatalf("recovery not antitone in hiding: %d, %d, %d", full, hidY, hidYZ)
	}
}

func TestHarvestInputsFromExecutions(t *testing.T) {
	// Run the chain spec several times and harvest P's inputs.
	s, err := workflow.NewBuilder("chain2", "Chain", "R").
		Workflow("R", "Root").
		Source("I", "a", "b").
		Atomic("P", "XOR", []string{"a", "b"}, []string{"y"}).
		Sink("O", "y").
		Edge("I", "P", "a", "b").
		Edge("P", "O", "y").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	r := exec.NewRunner(s, exec.Registry{"P": xorFunc})
	var execs []*exec.Execution
	for i, in := range []map[string]exec.Value{
		{"a": "0", "b": "0"}, {"a": "0", "b": "1"}, {"a": "1", "b": "0"},
	} {
		e, err := r.Run(itoaT(i), in)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		execs = append(execs, e)
	}
	obs := HarvestInputs(execs, "P", []string{"a", "b"})
	if len(obs) != 3 {
		t.Fatalf("harvested = %d, want 3", len(obs))
	}
	rel := xorRelation(t)
	stats := ReconstructionAttack(rel, obs, NewHidden())
	if stats.Recovered != 3 {
		t.Fatalf("recovered = %d, want 3 (the 3 observed inputs)", stats.Recovered)
	}
	// The secure view defeats the harvest-based attack too.
	sv, _ := GreedySecureView(rel, 2, nil)
	if got := ReconstructionAttack(rel, obs, sv.Hidden).Recovered; got != 0 {
		t.Fatalf("secure view leaked %d rows from harvested executions", got)
	}
}

func itoaT(i int) string { return string(rune('A' + i)) }
