package modpriv

import (
	"fmt"
	"sort"

	"provpriv/internal/exec"
	"provpriv/internal/workflow"
)

// WorkflowAnalysis computes a workflow-wide secure view: one hidden set
// of data attributes, applied to every execution of the workflow, under
// which every private module retains its required Γ. Attributes are
// hidden globally ("in all executions of the workflow", Section 3),
// because module privacy must hold over repeated executions with varied
// inputs.
type WorkflowAnalysis struct {
	// View is the expansion the adversary is assumed to see (typically
	// the full expansion — the worst case).
	View *workflow.View
	// Relations holds the I/O relation of each analysed module.
	Relations map[string]*Relation
	// Gamma maps private module ids to their required privacy level.
	Gamma map[string]int
	// Weights is the utility lost per hidden attribute.
	Weights Weights
	// Propagate enables the conservative downstream closure: any module
	// consuming a hidden attribute has all its outputs hidden too, so a
	// visible public module can never act as an oracle that re-exposes
	// hidden data (the workflow-privacy correction of [4]).
	Propagate bool
	// Exact selects the exhaustive per-module solver instead of greedy.
	Exact bool
}

// WorkflowSecureView is the result: the global hidden attribute set, its
// total utility cost, and the certified privacy level per private
// module.
type WorkflowSecureView struct {
	Hidden     Hidden
	Cost       float64
	Guarantees map[string]int
}

// Solve computes the workflow secure view.
func (wa *WorkflowAnalysis) Solve() (*WorkflowSecureView, error) {
	if len(wa.Gamma) == 0 {
		return &WorkflowSecureView{Hidden: make(Hidden), Guarantees: map[string]int{}}, nil
	}
	hidden := make(Hidden)
	// Deterministic module order.
	mods := make([]string, 0, len(wa.Gamma))
	for m := range wa.Gamma {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	for _, mid := range mods {
		rel := wa.Relations[mid]
		if rel == nil {
			return nil, fmt.Errorf("modpriv: no relation for private module %s", mid)
		}
		var sv *SecureView
		var err error
		if wa.Exact {
			sv, err = ExhaustiveSecureView(rel, wa.Gamma[mid], wa.Weights)
		} else {
			sv, err = GreedySecureView(rel, wa.Gamma[mid], wa.Weights)
		}
		if err != nil {
			return nil, err
		}
		for a := range sv.Hidden {
			hidden[a] = true
		}
	}
	if wa.Propagate {
		wa.propagate(hidden)
	}
	out := &WorkflowSecureView{
		Hidden:     hidden,
		Cost:       wa.Weights.Cost(hidden),
		Guarantees: make(map[string]int, len(wa.Gamma)),
	}
	for _, mid := range mods {
		rel := wa.Relations[mid]
		level := rel.PrivacyLevel(hidden)
		if level < wa.Gamma[mid] {
			return nil, fmt.Errorf("modpriv: internal: module %s level %d < Γ=%d after union", mid, level, wa.Gamma[mid])
		}
		out.Guarantees[mid] = level
	}
	return out, nil
}

// propagate closes hidden downstream over the view graph: whenever a
// module consumes a hidden attribute, all its outputs become hidden.
// Modules are processed in topological order so the closure is reached
// in one pass.
func (wa *WorkflowAnalysis) propagate(hidden Hidden) {
	g := wa.View.Graph()
	order, err := g.TopoSort()
	if err != nil {
		return // view graphs are validated acyclic; defensive
	}
	byID := make(map[string]*workflow.FlatModule, len(wa.View.Modules))
	for _, fm := range wa.View.Modules {
		byID[fm.Module.ID] = fm
	}
	for _, n := range order {
		fm := byID[g.Name(n)]
		if fm == nil {
			continue
		}
		m := fm.Module
		tainted := false
		for _, a := range m.Inputs {
			if hidden[a] {
				tainted = true
				break
			}
		}
		if tainted {
			for _, a := range m.Outputs {
				hidden[a] = true
			}
		}
	}
}

// Redact returns a copy of the execution in which every data item whose
// attribute is hidden has its value masked. Graph structure, item ids
// and attributes remain visible — module privacy hides values, not flow
// (structural privacy is a separate mechanism).
func Redact(e *exec.Execution, hidden Hidden) *exec.Execution {
	out := &exec.Execution{
		ID:     e.ID + "/redacted",
		SpecID: e.SpecID,
		Items:  make(map[string]*exec.DataItem, len(e.Items)),
	}
	for _, n := range e.Nodes {
		cp := *n
		out.Nodes = append(out.Nodes, &cp)
	}
	out.Edges = append(out.Edges, e.Edges...)
	for id, it := range e.Items {
		cp := *it
		if hidden[it.Attr] {
			cp.Value = ""
			cp.Redacted = true
		}
		out.Items[id] = &cp
	}
	return out
}
