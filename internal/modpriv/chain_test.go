package modpriv

import (
	"errors"
	"strings"
	"testing"

	"provpriv/internal/exec"
)

func notRelation(t *testing.T) *Relation {
	t.Helper()
	fn := func(in map[string]exec.Value) map[string]exec.Value {
		v := "1"
		if in["y"] == "1" {
			v = "0"
		}
		return map[string]exec.Value{"w": exec.Value(v)}
	}
	dom := Domain{"y": {"0", "1"}, "w": {"0", "1"}}
	rel, err := Enumerate("not", fn, []string{"y"}, []string{"w"}, dom)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	return rel
}

func TestApply(t *testing.T) {
	rel := xorRelation(t)
	out, ok := rel.Apply(map[string]exec.Value{"a": "1", "b": "0"})
	if !ok || out["y"] != "1" {
		t.Fatalf("Apply = %v, %v", out, ok)
	}
	if _, ok := rel.Apply(map[string]exec.Value{"a": "7", "b": "0"}); ok {
		t.Fatal("Apply succeeded on out-of-domain input")
	}
}

func TestCompose(t *testing.T) {
	xorRel := xorRelation(t)
	notRel := notRelation(t)
	comp, err := Compose(xorRel, notRel)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	if comp.ModuleID != "xor;not" {
		t.Fatalf("id = %s", comp.ModuleID)
	}
	if len(comp.Rows) != 4 {
		t.Fatalf("rows = %d", len(comp.Rows))
	}
	// xor(1,0)=1, not(1)=0.
	out, ok := comp.Apply(map[string]exec.Value{"a": "1", "b": "0"})
	if !ok || out["w"] != "0" {
		t.Fatalf("composed(1,0) = %v", out)
	}
}

func TestComposeRejectsUnmatchedInputs(t *testing.T) {
	xorRel := xorRelation(t)
	other, _ := Enumerate("g", func(in map[string]exec.Value) map[string]exec.Value {
		return map[string]exec.Value{"z": "0"}
	}, []string{"q"}, []string{"z"}, Domain{"q": {"0"}, "z": {"0", "1"}})
	if _, err := Compose(xorRel, other); err == nil {
		t.Fatal("compose with unmatched inputs accepted")
	}
}

// The central leak theorem: hiding y alone is Γ=2 standalone, but with
// a public NOT module downstream publishing w, the effective level
// collapses to 1.
func TestEffectiveLevelDetectsDownstreamLeak(t *testing.T) {
	xorRel := xorRelation(t)
	notRel := notRelation(t)
	hidden := NewHidden("y")

	standalone := xorRel.PrivacyLevel(hidden)
	if standalone != 2 {
		t.Fatalf("standalone level = %d, want 2", standalone)
	}
	effective, err := EffectiveLevel(xorRel, []*Relation{notRel}, hidden)
	if err != nil {
		t.Fatalf("EffectiveLevel: %v", err)
	}
	if effective != 1 {
		t.Fatalf("effective level = %d, want 1 (w = NOT y re-exposes y)", effective)
	}
	// Hiding w as well restores Γ=2.
	both := NewHidden("y", "w")
	effective2, err := EffectiveLevel(xorRel, []*Relation{notRel}, both)
	if err != nil {
		t.Fatalf("EffectiveLevel: %v", err)
	}
	if effective2 != 2 {
		t.Fatalf("effective level with both hidden = %d, want 2", effective2)
	}
}

func TestEffectiveLevelEmptyChainMatchesFreeDomain(t *testing.T) {
	xorRel := xorRelation(t)
	// With no downstream chain and visible inputs, hiding y leaves
	// |dom(y)| = 2 candidates.
	lvl, err := EffectiveLevel(xorRel, nil, NewHidden("y"))
	if err != nil {
		t.Fatalf("EffectiveLevel: %v", err)
	}
	if lvl != 2 {
		t.Fatalf("level = %d, want 2", lvl)
	}
	// Nothing hidden: the output is pinned.
	lvl, _ = EffectiveLevel(xorRel, nil, NewHidden())
	if lvl != 1 {
		t.Fatalf("level = %d, want 1", lvl)
	}
}

func TestEffectiveLevelChainValidation(t *testing.T) {
	xorRel := xorRelation(t)
	bad, _ := Enumerate("bad", func(in map[string]exec.Value) map[string]exec.Value {
		return map[string]exec.Value{"z": "0"}
	}, []string{"nonexistent"}, []string{"z"}, Domain{"nonexistent": {"0"}, "z": {"0", "1"}})
	if _, err := EffectiveLevel(xorRel, []*Relation{bad}, NewHidden()); err == nil ||
		!strings.Contains(err.Error(), "not produced upstream") {
		t.Fatalf("err = %v", err)
	}
}

func TestGreedyChainSecureView(t *testing.T) {
	xorRel := xorRelation(t)
	notRel := notRelation(t)
	// w is cheap, y expensive: but hiding only w leaves y visible (level
	// 1); hiding only y leaks through w. The solver must hide both.
	sv, err := GreedyChainSecureView(xorRel, []*Relation{notRel}, 2, Weights{"y": 3, "w": 1})
	if err != nil {
		t.Fatalf("GreedyChainSecureView: %v", err)
	}
	if !sv.Hidden["y"] || !sv.Hidden["w"] {
		t.Fatalf("hidden = %v, want {w,y}", sv.Hidden)
	}
	if sv.Level < 2 {
		t.Fatalf("level = %d", sv.Level)
	}
	// Verify the certificate.
	lvl, _ := EffectiveLevel(xorRel, []*Relation{notRel}, sv.Hidden)
	if lvl != sv.Level {
		t.Fatalf("certificate mismatch: %d vs %d", lvl, sv.Level)
	}
}

func TestGreedyChainUnachievable(t *testing.T) {
	xorRel := xorRelation(t)
	notRel := notRelation(t)
	_, err := GreedyChainSecureView(xorRel, []*Relation{notRel}, 3, nil)
	var ue *ErrUnachievable
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want ErrUnachievable", err)
	}
}

// Property: the effective level never exceeds the standalone level
// computed with known inputs (the chain only adds observations), and
// hiding more attributes never lowers it.
func TestEffectiveLevelMonotoneAndBounded(t *testing.T) {
	rel := bigRelation(t)
	// Downstream: sum of y and z mod 3.
	down, err := Enumerate("down", func(in map[string]exec.Value) map[string]exec.Value {
		y := int(in["y"][0] - '0')
		z := int(in["z"][0] - '0')
		return map[string]exec.Value{"s": exec.Value(rune('0' + (y+z)%3))}
	}, []string{"y", "z"}, []string{"s"}, Domain{
		"y": {"0", "1", "2"}, "z": {"0", "1", "2"}, "s": {"0", "1", "2"},
	})
	if err != nil {
		t.Fatalf("Enumerate down: %v", err)
	}
	chains := [][]string{
		{}, {"y"}, {"y", "z"}, {"y", "z", "s"},
	}
	prev := 0
	for _, hs := range chains {
		h := NewHidden(hs...)
		eff, err := EffectiveLevel(rel, []*Relation{down}, h)
		if err != nil {
			t.Fatalf("EffectiveLevel(%v): %v", hs, err)
		}
		if eff < prev {
			t.Fatalf("not monotone: level(%v)=%d < %d", hs, eff, prev)
		}
		noChain, _ := EffectiveLevel(rel, nil, h)
		if eff > noChain {
			t.Fatalf("chain increased uncertainty: %d > %d for %v", eff, noChain, hs)
		}
		prev = eff
	}
}

func TestExhaustiveChainSecureView(t *testing.T) {
	xorRel := xorRelation(t)
	notRel := notRelation(t)
	ex, err := ExhaustiveChainSecureView(xorRel, []*Relation{notRel}, 2, Weights{"y": 3, "w": 1})
	if err != nil {
		t.Fatalf("ExhaustiveChainSecureView: %v", err)
	}
	if !ex.Hidden["y"] || !ex.Hidden["w"] {
		t.Fatalf("hidden = %v, want both", ex.Hidden)
	}
	gr, err := GreedyChainSecureView(xorRel, []*Relation{notRel}, 2, Weights{"y": 3, "w": 1})
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if gr.Cost < ex.Cost {
		t.Fatalf("greedy %v beats exact %v", gr.Cost, ex.Cost)
	}
	var ue *ErrUnachievable
	if _, err := ExhaustiveChainSecureView(xorRel, []*Relation{notRel}, 5, nil); !errors.As(err, &ue) {
		t.Fatalf("err = %v, want ErrUnachievable", err)
	}
}
