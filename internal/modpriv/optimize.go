package modpriv

import (
	"fmt"
	"math"
	"sort"
)

// Weights assigns each attribute the utility lost by hiding it. Missing
// attributes default to weight 1. Weights must be non-negative.
type Weights map[string]float64

// Of returns the weight of attr (default 1).
func (w Weights) Of(attr string) float64 {
	if w == nil {
		return 1
	}
	if v, ok := w[attr]; ok {
		return v
	}
	return 1
}

// Cost sums the weights of a hidden set.
func (w Weights) Cost(h Hidden) float64 {
	var c float64
	for a := range h {
		c += w.Of(a)
	}
	return c
}

// SecureView is the result of a secure-view computation for one module:
// a hidden attribute set, its utility cost, and the privacy level it
// certifies.
type SecureView struct {
	ModuleID string
	Hidden   Hidden
	Cost     float64
	Level    int
}

// ErrUnachievable is returned when no hidden set reaches the requested
// Γ (the module's output domain is too small).
type ErrUnachievable struct {
	ModuleID string
	Gamma    int
	Max      int
}

func (e *ErrUnachievable) Error() string {
	return fmt.Sprintf("modpriv: module %s: Γ=%d unachievable (max level %d)", e.ModuleID, e.Gamma, e.Max)
}

// ExhaustiveSecureView finds a minimum-cost hidden set achieving
// Γ-privacy by enumerating all attribute subsets. Exact but exponential:
// use only when the module has ≲20 attributes. Ties are broken toward
// fewer hidden attributes, then lexicographically, so results are
// deterministic.
func ExhaustiveSecureView(r *Relation, gamma int, w Weights) (*SecureView, error) {
	attrs := r.Attrs()
	if len(attrs) > 24 {
		return nil, fmt.Errorf("modpriv: exhaustive search over %d attributes refused (>24)", len(attrs))
	}
	if max := r.MaxLevel(); max < gamma {
		return nil, &ErrUnachievable{ModuleID: r.ModuleID, Gamma: gamma, Max: max}
	}
	bestCost := math.Inf(1)
	var best Hidden
	bestSize := len(attrs) + 1
	for mask := 0; mask < 1<<uint(len(attrs)); mask++ {
		h := make(Hidden)
		cost := 0.0
		size := 0
		for i, a := range attrs {
			if mask&(1<<uint(i)) != 0 {
				h[a] = true
				cost += w.Of(a)
				size++
			}
		}
		if cost > bestCost || (cost == bestCost && size >= bestSize) {
			continue
		}
		if r.IsSafe(h, gamma) {
			bestCost = cost
			best = h
			bestSize = size
		}
	}
	if best == nil {
		return nil, &ErrUnachievable{ModuleID: r.ModuleID, Gamma: gamma, Max: r.MaxLevel()}
	}
	return &SecureView{ModuleID: r.ModuleID, Hidden: best, Cost: bestCost, Level: r.PrivacyLevel(best)}, nil
}

// GreedySecureView finds a safe hidden set heuristically: it repeatedly
// hides the attribute with the best marginal privacy gain per unit
// weight (preferring output attributes on ties, whose gain is
// multiplicative) until Γ is reached, then greedily un-hides attributes
// whose removal keeps the view safe (reverse deletion), from most to
// least expensive. Runs in O(n² · |rows|).
func GreedySecureView(r *Relation, gamma int, w Weights) (*SecureView, error) {
	if max := r.MaxLevel(); max < gamma {
		return nil, &ErrUnachievable{ModuleID: r.ModuleID, Gamma: gamma, Max: max}
	}
	attrs := r.Attrs()
	h := make(Hidden)
	level := r.PrivacyLevel(h)
	for level < gamma {
		type cand struct {
			attr  string
			gain  float64
			ratio float64
		}
		var best *cand
		for _, a := range attrs {
			if h[a] {
				continue
			}
			h[a] = true
			newLevel := r.PrivacyLevel(h)
			delete(h, a)
			gain := float64(newLevel - level)
			weight := w.Of(a)
			ratio := gain / math.Max(weight, 1e-9)
			c := &cand{attr: a, gain: gain, ratio: ratio}
			if best == nil ||
				c.ratio > best.ratio ||
				(c.ratio == best.ratio && weight < w.Of(best.attr)) ||
				(c.ratio == best.ratio && weight == w.Of(best.attr) && c.attr < best.attr) {
				best = c
			}
		}
		if best == nil {
			break
		}
		if best.gain <= 0 {
			// No single attribute helps; hide the cheapest remaining one
			// and keep going (combinations may unlock gains).
			cheapest := ""
			for _, a := range attrs {
				if h[a] {
					continue
				}
				if cheapest == "" || w.Of(a) < w.Of(cheapest) ||
					(w.Of(a) == w.Of(cheapest) && a < cheapest) {
					cheapest = a
				}
			}
			if cheapest == "" {
				break
			}
			h[cheapest] = true
		} else {
			h[best.attr] = true
		}
		level = r.PrivacyLevel(h)
	}
	if level < gamma {
		return nil, &ErrUnachievable{ModuleID: r.ModuleID, Gamma: gamma, Max: r.MaxLevel()}
	}
	// Reverse deletion: drop redundant attributes, most expensive first.
	hidden := h.List()
	sort.Slice(hidden, func(i, j int) bool {
		wi, wj := w.Of(hidden[i]), w.Of(hidden[j])
		if wi != wj {
			return wi > wj
		}
		return hidden[i] < hidden[j]
	})
	for _, a := range hidden {
		delete(h, a)
		if !r.IsSafe(h, gamma) {
			h[a] = true
		}
	}
	return &SecureView{ModuleID: r.ModuleID, Hidden: h, Cost: w.Cost(h), Level: r.PrivacyLevel(h)}, nil
}
