package modpriv

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"provpriv/internal/exec"
)

// randomRelation builds a random table-driven relation with nIn/nOut
// attributes over k-value domains, deterministic in seed.
func randomRelation(seed int64, nIn, nOut, k int) *Relation {
	rng := rand.New(rand.NewSource(seed))
	var ins, outs []string
	dom := make(Domain)
	vals := make([]exec.Value, k)
	for i := range vals {
		vals[i] = exec.Value(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < nIn; i++ {
		a := fmt.Sprintf("i%d", i)
		ins = append(ins, a)
		dom[a] = vals
	}
	for i := 0; i < nOut; i++ {
		a := fmt.Sprintf("o%d", i)
		outs = append(outs, a)
		dom[a] = vals
	}
	table := make(map[string]map[string]exec.Value)
	fn := func(in map[string]exec.Value) map[string]exec.Value {
		key := assignKey(ins, in)
		if out, ok := table[key]; ok {
			return out
		}
		out := make(map[string]exec.Value, nOut)
		for _, o := range outs {
			out[o] = vals[rng.Intn(k)]
		}
		table[key] = out
		return out
	}
	rel, err := Enumerate("q", fn, ins, outs, dom)
	if err != nil {
		panic(err)
	}
	return rel
}

// Property: PrivacyLevel is monotone under adding hidden attributes,
// for random relations and random hiding orders.
func TestPrivacyLevelMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rel := randomRelation(seed, 2, 2, 3)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		attrs := rel.Attrs()
		rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
		h := make(Hidden)
		prev := rel.PrivacyLevel(h)
		for _, a := range attrs {
			h[a] = true
			cur := rel.PrivacyLevel(h)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: both solvers always return safe views with level ≥ Γ, and
// exhaustive never costs more than greedy.
func TestSolversSoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		rel := randomRelation(seed, 2, 2, 3)
		for _, gamma := range []int{2, 3} {
			if rel.MaxLevel() < gamma {
				continue
			}
			ex, err1 := ExhaustiveSecureView(rel, gamma, nil)
			gr, err2 := GreedySecureView(rel, gamma, nil)
			if err1 != nil || err2 != nil {
				return false
			}
			if !rel.IsSafe(ex.Hidden, gamma) || !rel.IsSafe(gr.Hidden, gamma) {
				return false
			}
			if ex.Cost > gr.Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: reconstruction recovery plus ambiguity covers all observed
// rows — every observed row is either recovered or Γ-ambiguous.
func TestAttackPartitionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rel := randomRelation(seed, 2, 1, 3)
		var obs []map[string]exec.Value
		for i, row := range rel.Rows {
			if i%2 == 0 {
				obs = append(obs, row.In)
			}
		}
		for _, hs := range []Hidden{NewHidden(), NewHidden("i0"), NewHidden("o0"), NewHidden("i0", "o0")} {
			st := ReconstructionAttack(rel, obs, hs)
			if st.Recovered > st.Observed || st.Observed > st.DomainRows {
				return false
			}
			// Safety: under a view with PrivacyLevel ≥ 2, nothing is
			// recovered.
			if rel.PrivacyLevel(hs) >= 2 && st.Recovered != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
