package modpriv

import (
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/workflow"
)

// chainSpec builds I -> P (private) -> Q (public) -> O where P computes
// y = a XOR b and Q computes w = NOT y. If y is hidden but w visible, Q
// re-exposes y; propagation must hide w too.
func chainSpec(t *testing.T) (*workflow.Spec, *workflow.View) {
	t.Helper()
	s, err := workflow.NewBuilder("chain", "Chain", "R").
		Workflow("R", "Root").
		Source("I", "a", "b").
		Atomic("P", "Private XOR", []string{"a", "b"}, []string{"y"}).
		Atomic("Q", "Public NOT", []string{"y"}, []string{"w"}).
		Sink("O", "w").
		Edge("I", "P", "a", "b").
		Edge("P", "Q", "y").
		Edge("Q", "O", "w").
		Build()
	if err != nil {
		t.Fatalf("chainSpec: %v", err)
	}
	h, _ := workflow.NewHierarchy(s)
	v, err := workflow.Expand(s, workflow.FullPrefix(h))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return s, v
}

func notFunc(in map[string]exec.Value) map[string]exec.Value {
	v := "1"
	if in["y"] == "1" {
		v = "0"
	}
	return map[string]exec.Value{"w": exec.Value(v)}
}

func chainAnalysis(t *testing.T, propagate bool) *WorkflowAnalysis {
	t.Helper()
	_, v := chainSpec(t)
	dom := Domain{
		"a": {"0", "1"}, "b": {"0", "1"},
		"y": {"0", "1"}, "w": {"0", "1"},
	}
	relP, err := Enumerate("P", xorFunc, []string{"a", "b"}, []string{"y"}, dom)
	if err != nil {
		t.Fatalf("Enumerate P: %v", err)
	}
	return &WorkflowAnalysis{
		View:      v,
		Relations: map[string]*Relation{"P": relP},
		Gamma:     map[string]int{"P": 2},
		Weights:   Weights{"a": 5, "b": 5, "y": 1, "w": 1},
		Propagate: propagate,
	}
}

func TestWorkflowSecureViewBasic(t *testing.T) {
	wa := chainAnalysis(t, false)
	sv, err := wa.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !sv.Hidden["y"] {
		t.Fatalf("hidden = %v, want y hidden (cheapest)", sv.Hidden)
	}
	if sv.Guarantees["P"] < 2 {
		t.Fatalf("guarantee = %d", sv.Guarantees["P"])
	}
}

func TestWorkflowSecureViewPropagation(t *testing.T) {
	wa := chainAnalysis(t, true)
	sv, err := wa.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// y hidden => Q consumes hidden data => w must be hidden too.
	if !sv.Hidden["y"] || !sv.Hidden["w"] {
		t.Fatalf("hidden = %v, want y and w", sv.Hidden)
	}
}

func TestWorkflowSecureViewExact(t *testing.T) {
	wa := chainAnalysis(t, false)
	wa.Exact = true
	sv, err := wa.Solve()
	if err != nil {
		t.Fatalf("Solve exact: %v", err)
	}
	if sv.Cost != 1 { // just y
		t.Fatalf("cost = %v, want 1", sv.Cost)
	}
}

func TestWorkflowSecureViewNoPrivateModules(t *testing.T) {
	wa := chainAnalysis(t, false)
	wa.Gamma = nil
	sv, err := wa.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(sv.Hidden) != 0 || sv.Cost != 0 {
		t.Fatalf("expected empty view, got %v", sv.Hidden)
	}
}

func TestWorkflowSecureViewMissingRelation(t *testing.T) {
	wa := chainAnalysis(t, false)
	wa.Gamma["Q"] = 2 // no relation supplied for Q
	if _, err := wa.Solve(); err == nil || !strings.Contains(err.Error(), "no relation") {
		t.Fatalf("err = %v", err)
	}
}

func TestRedact(t *testing.T) {
	spec, _ := chainSpec(t)
	r := exec.NewRunner(spec, exec.Registry{"P": xorFunc, "Q": notFunc})
	e, err := r.Run("E", map[string]exec.Value{"a": "1", "b": "0"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	red := Redact(e, NewHidden("y"))
	if err := red.Validate(); err != nil {
		t.Fatalf("redacted invalid: %v", err)
	}
	var sawY, sawA bool
	for _, id := range red.ItemIDs() {
		it := red.Items[id]
		switch it.Attr {
		case "y":
			sawY = true
			if !it.Redacted || it.Value != "" {
				t.Fatalf("y not redacted: %+v", it)
			}
		case "a":
			sawA = true
			if it.Redacted || it.Value != "1" {
				t.Fatalf("a wrongly redacted: %+v", it)
			}
		}
	}
	if !sawY || !sawA {
		t.Fatal("items missing from redacted execution")
	}
	// Original untouched.
	for _, id := range e.ItemIDs() {
		if e.Items[id].Redacted {
			t.Fatal("Redact mutated original")
		}
	}
	// Structure preserved.
	if len(red.Edges) != len(e.Edges) || len(red.Nodes) != len(e.Nodes) {
		t.Fatal("Redact changed graph structure")
	}
}

// Property: the adversary's view of a Γ-private module is consistent —
// for every input row, at least Γ candidate outputs exist, one of which
// is the true output.
func TestGammaSemantics(t *testing.T) {
	rel := xorRelation(t)
	hidden := NewHidden("a") // level 2
	// Recompute OUT_x by brute force and compare with PrivacyLevel's
	// group arithmetic.
	for _, row := range rel.Rows {
		ik := projKey(rel.Inputs, row.In, hidden)
		outs := make(map[string]bool)
		for _, other := range rel.Rows {
			if projKey(rel.Inputs, other.In, hidden) == ik {
				outs[projKey(rel.Outputs, other.Out, hidden)] = true
			}
		}
		if len(outs) < 2 {
			t.Fatalf("row %v: brute-force OUT_x = %d < 2", row.In, len(outs))
		}
		// The true output is among the candidates.
		if !outs[projKey(rel.Outputs, row.Out, hidden)] {
			t.Fatalf("row %v: true output not a candidate", row.In)
		}
	}
}
