package modpriv

import (
	"provpriv/internal/exec"
)

// This file implements the adversary of Section 3's motivating
// observation: "if information about all intermediate data is
// repeatedly given for multiple executions of a workflow on different
// initial inputs, then partial or complete functionality of modules may
// be revealed" — and, from the owner's side, "they do not want the
// module to be simulated by competitors who capture all input-output
// relationships." ReconstructionAttack replays that adversary against a
// module relation under a hidden-attribute set, measuring how much of
// the module's function the observations pin down. A correct secure
// view (Γ ≥ 2) keeps the recovered fraction at zero no matter how many
// executions leak.

// AttackStats summarizes a reconstruction attempt.
type AttackStats struct {
	// DomainRows is the size of the module's full input domain.
	DomainRows int
	// Observed is the number of distinct domain rows that appeared in
	// at least one execution.
	Observed int
	// Recovered is the number of domain rows whose exact full output
	// the adversary can pin down from the visible observations.
	Recovered int
}

// Coverage is the fraction of the module's function recovered.
func (a AttackStats) Coverage() float64 {
	if a.DomainRows == 0 {
		return 0
	}
	return float64(a.Recovered) / float64(a.DomainRows)
}

// ReconstructionAttack simulates the repeated-execution adversary: each
// element of observedInputs is a full input assignment the workflow ran
// on; the adversary sees only the visible projections of those inputs
// and of the corresponding outputs.
//
// A row is recovered only when the observations logically pin its exact
// full output. Because an observation with a partially hidden input can
// always be attributed to a *different* row of the same visible-input
// group (the adversary has no census of which inputs actually ran),
// recovery requires all of:
//
//   - the row was observed,
//   - its visible inputs identify it uniquely in the input domain
//     (its visible-input group is a singleton), and
//   - no output attribute is hidden (otherwise the hidden part ranges
//     freely over its domain).
//
// With nothing hidden this degenerates to "observed ⇒ recovered" — the
// paper's repeated-execution threat; any safe view (Γ ≥ 2) keeps
// recovery at zero because safety forces every group to be ambiguous.
func ReconstructionAttack(rel *Relation, observedInputs []map[string]exec.Value, hidden Hidden) AttackStats {
	stats := AttackStats{DomainRows: len(rel.Rows)}

	// Visible-input group sizes over the FULL input domain.
	groupSize := make(map[string]int)
	for _, row := range rel.Rows {
		groupSize[projKey(rel.Inputs, row.In, hidden)]++
	}

	observedRow := make(map[string]bool) // full-input key -> observed
	for _, in := range observedInputs {
		if _, ok := rel.Apply(in); !ok {
			continue // out-of-domain input: nothing learned
		}
		observedRow[assignKey(rel.Inputs, in)] = true
	}

	hiddenOutProduct := 1
	for _, a := range rel.Outputs {
		if hidden[a] {
			hiddenOutProduct *= rel.Dom.Size(a)
		}
	}

	for _, row := range rel.Rows {
		if !observedRow[assignKey(rel.Inputs, row.In)] {
			continue
		}
		stats.Observed++
		if hiddenOutProduct == 1 && groupSize[projKey(rel.Inputs, row.In, hidden)] == 1 {
			stats.Recovered++
		}
	}
	return stats
}

// HarvestInputs extracts, from stored executions, the full input
// assignments a given module ran on — the raw material for
// ReconstructionAttack. The module's inputs are matched by attribute
// name against each execution's data items flowing into its node(s).
func HarvestInputs(execs []*exec.Execution, moduleID string, inputs []string) []map[string]exec.Value {
	var out []map[string]exec.Value
	for _, e := range execs {
		for _, n := range e.ExecutionsOf(moduleID) {
			assign := make(map[string]exec.Value, len(inputs))
			found := 0
			for _, ed := range e.Edges {
				if ed.To != n.ID {
					continue
				}
				for _, itID := range ed.Items {
					it := e.Items[itID]
					if it == nil {
						continue
					}
					for _, a := range inputs {
						if it.Attr == a {
							assign[a] = it.Value
							found++
						}
					}
				}
			}
			if found == len(inputs) {
				out = append(out, assign)
			}
		}
	}
	return out
}
