// Package workload generates synthetic workflow specifications,
// executions, module implementations and query streams for tests and
// benchmarks. It substitutes for the real scientific-workflow
// repositories (myGrid/Taverna-style) the paper assumes but which are
// not available here: generated specs exercise the same shapes —
// hierarchical DAGs with τ-expansions, keyword-bearing module names,
// chains with skip edges — with seeded determinism so every benchmark
// run is reproducible.
package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"provpriv/internal/exec"
	"provpriv/internal/graph"
	"provpriv/internal/modpriv"
	"provpriv/internal/workflow"
)

// DefaultVocab is the keyword vocabulary used for module names,
// loosely themed on the paper's life-sciences domain.
func DefaultVocab() []string {
	return []string{
		"align", "annotate", "archive", "assemble", "calibrate", "cluster",
		"combine", "compare", "database", "disorder", "expand", "extract",
		"filter", "format", "genome", "genotype", "index", "lifestyle",
		"merge", "normalize", "ontology", "parse", "pathway", "phenotype",
		"predict", "private", "profile", "prognosis", "protein", "pubmed",
		"query", "rank", "reformat", "risk", "sample", "search", "sequence",
		"snp", "summarize", "validate", "variant",
	}
}

// ZipfPick draws a vocabulary index with a Zipf(1) distribution:
// rank r is drawn with probability proportional to 1/(r+1).
func ZipfPick(rng *rand.Rand, n int) int {
	// Cumulative harmonic weights; n is small so linear scan is fine.
	var total float64
	for r := 0; r < n; r++ {
		total += 1 / float64(r+1)
	}
	x := rng.Float64() * total
	for r := 0; r < n; r++ {
		x -= 1 / float64(r+1)
		if x <= 0 {
			return r
		}
	}
	return n - 1
}

// SpecConfig parameterizes RandomSpec.
type SpecConfig struct {
	Seed     int64
	ID       string
	Depth    int      // expansion-hierarchy depth; 1 = no composites
	Fanout   int      // composite modules per workflow (at depth < Depth)
	Chain    int      // modules per workflow chain (≥ 2 at depth < Depth)
	SkipProb float64  // probability of extra skip edges within a chain
	Vocab    []string // defaults to DefaultVocab
}

func (c *SpecConfig) normalize() error {
	if c.ID == "" {
		c.ID = fmt.Sprintf("synth-%d", c.Seed)
	}
	if c.Depth < 1 {
		return fmt.Errorf("workload: depth %d < 1", c.Depth)
	}
	if c.Chain < 1 {
		return fmt.Errorf("workload: chain %d < 1", c.Chain)
	}
	if c.Fanout < 0 || c.Fanout > c.Chain {
		return fmt.Errorf("workload: fanout %d outside [0,%d]", c.Fanout, c.Chain)
	}
	if c.Vocab == nil {
		c.Vocab = DefaultVocab()
	}
	return nil
}

type specGen struct {
	cfg   SpecConfig
	rng   *rand.Rand
	spec  *workflow.Spec
	wfN   int
	modN  int
	attrN int
}

// RandomSpec generates a validated hierarchical specification: every
// workflow is a chain of Chain modules with optional skip edges; at
// depths below Depth, Fanout of the chain modules are composite and
// expand into child workflows, giving a (Fanout^Depth)-ish hierarchy.
func RandomSpec(cfg SpecConfig) (*workflow.Spec, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	g := &specGen{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		spec: &workflow.Spec{ID: cfg.ID, Name: "Synthetic " + cfg.ID, Workflows: map[string]*workflow.Workflow{}},
	}
	rootIn := g.freshAttr("in")
	rootOut := g.freshAttr("out")
	rootID := g.genWorkflow(1, rootIn, rootOut, true)
	g.spec.Root = rootID
	if err := g.spec.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid spec: %w", err)
	}
	return g.spec, nil
}

func (g *specGen) freshAttr(prefix string) string {
	g.attrN++
	return fmt.Sprintf("%s%d", prefix, g.attrN)
}

func (g *specGen) name() string {
	v := g.cfg.Vocab
	w1 := v[ZipfPick(g.rng, len(v))]
	w2 := v[ZipfPick(g.rng, len(v))]
	return capitalize(w1) + " " + capitalize(w2)
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// genWorkflow creates one workflow consuming inAttr and producing
// outAttr, recursing for composite members, and returns its id.
func (g *specGen) genWorkflow(depth int, inAttr, outAttr string, root bool) string {
	g.wfN++
	wid := fmt.Sprintf("W%d", g.wfN)
	w := &workflow.Workflow{ID: wid, Name: "Workflow " + wid}
	g.spec.Workflows[wid] = w

	n := g.cfg.Chain
	// Choose which chain positions become composite.
	composite := make(map[int]bool)
	if depth < g.cfg.Depth {
		perm := g.rng.Perm(n)
		for i := 0; i < g.cfg.Fanout && i < len(perm); i++ {
			composite[perm[i]] = true
		}
	}
	// Chain attrs: a0 = inAttr, a_n = outAttr.
	attrs := make([]string, n+1)
	attrs[0] = inAttr
	attrs[n] = outAttr
	for i := 1; i < n; i++ {
		attrs[i] = g.freshAttr(wid + "a")
	}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		g.modN++
		ids[i] = fmt.Sprintf("M%d", g.modN)
		ins := []string{attrs[i]}
		outs := []string{attrs[i+1]}
		if composite[i] {
			sub := g.genWorkflow(depth+1, attrs[i], attrs[i+1], false)
			w.Modules = append(w.Modules, &workflow.Module{
				ID: ids[i], Name: g.name(), Kind: workflow.Composite, Sub: sub,
				Inputs: ins, Outputs: outs,
			})
		} else {
			w.Modules = append(w.Modules, &workflow.Module{
				ID: ids[i], Name: g.name(), Kind: workflow.Atomic,
				Inputs: ins, Outputs: outs,
			})
		}
	}
	for i := 0; i+1 < n; i++ {
		w.Edges = append(w.Edges, workflow.Edge{From: ids[i], To: ids[i+1], Data: []string{attrs[i+1]}})
	}
	// Skip edges between atomic modules (composites keep clean
	// boundaries so entries/exits stay well-defined).
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			if composite[i] || composite[j] || g.rng.Float64() >= g.cfg.SkipProb {
				continue
			}
			a := g.freshAttr(wid + "s")
			mi, mj := w.Modules[i], w.Modules[j]
			mi.Outputs = append(mi.Outputs, a)
			mj.Inputs = append(mj.Inputs, a)
			w.Edges = append(w.Edges, workflow.Edge{From: mi.ID, To: mj.ID, Data: []string{a}})
		}
	}
	if root {
		src := &workflow.Module{ID: "I", Name: "Input", Kind: workflow.Source, Outputs: []string{inAttr}}
		snk := &workflow.Module{ID: "O", Name: "Output", Kind: workflow.Sink, Inputs: []string{outAttr}}
		w.Modules = append([]*workflow.Module{src}, w.Modules...)
		w.Modules = append(w.Modules, snk)
		w.Edges = append(w.Edges,
			workflow.Edge{From: "I", To: ids[0], Data: []string{inAttr}},
			workflow.Edge{From: ids[n-1], To: "O", Data: []string{outAttr}},
		)
	}
	return wid
}

// RandomInputs builds a Value for every output attribute of the spec's
// source module, deterministically from the seed.
func RandomInputs(s *workflow.Spec, seed int64) map[string]exec.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]exec.Value)
	for _, m := range s.RootWorkflow().Modules {
		if m.Kind == workflow.Source {
			for _, a := range m.Outputs {
				out[a] = exec.Value(fmt.Sprintf("v%d", rng.Intn(1000)))
			}
		}
	}
	return out
}

// RandomQueries draws n keyword queries (1–2 phrases of 1–2 Zipf terms)
// over the vocabulary.
func RandomQueries(rng *rand.Rand, vocab []string, n int) []string {
	if vocab == nil {
		vocab = DefaultVocab()
	}
	out := make([]string, n)
	for i := range out {
		var phrases []string
		for p := 0; p < 1+rng.Intn(2); p++ {
			t1 := vocab[ZipfPick(rng, len(vocab))]
			if rng.Intn(2) == 0 {
				phrases = append(phrases, t1)
			} else {
				phrases = append(phrases, t1+" "+vocab[ZipfPick(rng, len(vocab))])
			}
		}
		out[i] = strings.Join(phrases, ", ")
	}
	return out
}

// LayeredDAG generates a DAG with the given number of layers and width:
// every node in layer i gets 1–maxIn edges from random nodes of earlier
// layers. Used by the structural-privacy benchmarks.
func LayeredDAG(rng *rand.Rand, layers, width, maxIn int) *graph.Graph {
	g := graph.New()
	var prev []graph.NodeID
	var all []graph.NodeID
	for l := 0; l < layers; l++ {
		var cur []graph.NodeID
		for i := 0; i < width; i++ {
			id := g.AddNode(fmt.Sprintf("n%d_%d", l, i))
			cur = append(cur, id)
			if l > 0 {
				k := 1 + rng.Intn(maxIn)
				for e := 0; e < k; e++ {
					src := all[rng.Intn(len(all))]
					g.AddEdge(src, id)
				}
			}
		}
		prev = cur
		all = append(all, cur...)
	}
	_ = prev
	return g
}

// BoolDomain builds a {0,1} domain for the given attributes.
func BoolDomain(attrs ...string) modpriv.Domain {
	d := make(modpriv.Domain, len(attrs))
	for _, a := range attrs {
		d[a] = []exec.Value{"0", "1"}
	}
	return d
}

// KDomain builds a domain of k values v0..v(k-1) for each attribute.
func KDomain(k int, attrs ...string) modpriv.Domain {
	vals := make([]exec.Value, k)
	for i := range vals {
		vals[i] = exec.Value(fmt.Sprintf("v%d", i))
	}
	d := make(modpriv.Domain, len(attrs))
	for _, a := range attrs {
		d[a] = vals
	}
	return d
}

// RandomTableFunc returns a deterministic pseudo-random module function:
// each output value is chosen from its domain by hashing the seed, the
// sorted input assignment and the output attribute. The same seed always
// yields the same relation — module privacy requires a fixed function.
func RandomTableFunc(seed int64, outputs []string, dom modpriv.Domain) exec.Func {
	return func(in map[string]exec.Value) map[string]exec.Value {
		keys := make([]string, 0, len(in))
		for a := range in {
			keys = append(keys, a)
		}
		sortStrings(keys)
		var sig strings.Builder
		for _, a := range keys {
			sig.WriteString(a)
			sig.WriteByte('=')
			sig.WriteString(string(in[a]))
			sig.WriteByte(';')
		}
		out := make(map[string]exec.Value, len(outputs))
		for _, o := range outputs {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d|%s|%s", seed, sig.String(), o)
			vals := dom[o]
			out[o] = vals[h.Sum64()%uint64(len(vals))]
		}
		return out
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
