package workload

import (
	"math/rand"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/modpriv"
	"provpriv/internal/workflow"
)

func TestRandomSpecValidates(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s, err := RandomSpec(SpecConfig{Seed: seed, Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
		if len(s.Workflows) < 2 {
			t.Fatalf("seed %d: no hierarchy generated", seed)
		}
	}
}

func TestRandomSpecDeterministic(t *testing.T) {
	a, _ := RandomSpec(SpecConfig{Seed: 5, Depth: 2, Fanout: 1, Chain: 3})
	b, _ := RandomSpec(SpecConfig{Seed: 5, Depth: 2, Fanout: 1, Chain: 3})
	da, _ := workflow.MarshalSpec(a)
	db, _ := workflow.MarshalSpec(b)
	if string(da) != string(db) {
		t.Fatal("same seed, different specs")
	}
}

func TestRandomSpecConfigValidation(t *testing.T) {
	bad := []SpecConfig{
		{Depth: 0, Chain: 3},
		{Depth: 1, Chain: 0},
		{Depth: 1, Chain: 2, Fanout: 5},
		{Depth: 1, Chain: 2, Fanout: -1},
	}
	for i, cfg := range bad {
		if _, err := RandomSpec(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRandomSpecExecutes(t *testing.T) {
	s, err := RandomSpec(SpecConfig{Seed: 42, Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.4})
	if err != nil {
		t.Fatalf("RandomSpec: %v", err)
	}
	r := exec.NewRunner(s, nil)
	e, err := r.Run("E1", RandomInputs(s, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("execution invalid: %v", err)
	}
	if len(e.Nodes) < 8 {
		t.Fatalf("execution too small: %d nodes", len(e.Nodes))
	}
}

func TestRandomSpecHierarchyDepth(t *testing.T) {
	s, _ := RandomSpec(SpecConfig{Seed: 3, Depth: 4, Fanout: 1, Chain: 3})
	h, err := workflow.NewHierarchy(s)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	maxDepth := 0
	for _, wid := range h.All() {
		if d := h.Depth(wid); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 3 { // Depth=4 levels → max tree depth 3
		t.Fatalf("max depth = %d, want 3", maxDepth)
	}
}

func TestZipfPickSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[ZipfPick(rng, 10)]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
	if counts[0] < 2000 {
		t.Fatalf("rank 0 too rare: %d", counts[0])
	}
}

func TestRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	qs := RandomQueries(rng, nil, 20)
	if len(qs) != 20 {
		t.Fatalf("n = %d", len(qs))
	}
	for _, q := range qs {
		if q == "" {
			t.Fatal("empty query generated")
		}
	}
}

func TestLayeredDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := LayeredDAG(rng, 5, 10, 3)
	if g.N() != 50 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.IsAcyclic() {
		t.Fatal("layered DAG cyclic")
	}
	if g.M() < 40 {
		t.Fatalf("too few edges: %d", g.M())
	}
}

func TestDomains(t *testing.T) {
	d := BoolDomain("a", "b")
	if d.Size("a") != 2 || d.Size("b") != 2 {
		t.Fatalf("BoolDomain = %v", d)
	}
	k := KDomain(5, "x")
	if k.Size("x") != 5 {
		t.Fatalf("KDomain = %v", k)
	}
}

func TestRandomTableFuncDeterministicAndEnumerable(t *testing.T) {
	dom := KDomain(3, "a", "b", "y", "z")
	fn := RandomTableFunc(9, []string{"y", "z"}, dom)
	in := map[string]exec.Value{"a": "v1", "b": "v2"}
	o1 := fn(in)
	o2 := fn(in)
	if o1["y"] != o2["y"] || o1["z"] != o2["z"] {
		t.Fatal("nondeterministic table func")
	}
	rel, err := modpriv.Enumerate("m", fn, []string{"a", "b"}, []string{"y", "z"}, dom)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(rel.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rel.Rows))
	}
	// Different seed gives a (very likely) different relation.
	fn2 := RandomTableFunc(10, []string{"y", "z"}, dom)
	diff := false
	for _, row := range rel.Rows {
		o := fn2(row.In)
		if o["y"] != row.Out["y"] || o["z"] != row.Out["z"] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("two seeds produced identical relations")
	}
}

func TestRandomInputsCoversSource(t *testing.T) {
	s, _ := RandomSpec(SpecConfig{Seed: 1, Depth: 1, Chain: 3})
	in := RandomInputs(s, 9)
	for _, m := range s.RootWorkflow().Modules {
		if m.Kind == workflow.Source {
			for _, a := range m.Outputs {
				if _, ok := in[a]; !ok {
					t.Fatalf("input %s missing", a)
				}
			}
		}
	}
}

func TestRandomPolicyValidates(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		s, err := RandomSpec(SpecConfig{Seed: seed, Depth: 3, Fanout: 2, Chain: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pol, err := RandomPolicy(s, seed)
		if err != nil {
			t.Fatalf("seed %d: RandomPolicy: %v", seed, err)
		}
		if err := pol.Validate(s); err != nil {
			t.Fatalf("seed %d: invalid policy: %v", seed, err)
		}
	}
}

func TestRandomPolicyDeepWorkflowsNeedHigherLevels(t *testing.T) {
	s, _ := RandomSpec(SpecConfig{Seed: 2, Depth: 4, Fanout: 1, Chain: 3})
	pol, err := RandomPolicy(s, 2)
	if err != nil {
		t.Fatalf("RandomPolicy: %v", err)
	}
	h, _ := workflow.NewHierarchy(s)
	for lvl, wids := range pol.ViewGrants {
		for _, wid := range wids {
			if int(lvl) < h.Depth(wid) {
				t.Fatalf("workflow %s (depth %d) granted at too-low level %v", wid, h.Depth(wid), lvl)
			}
		}
	}
}
