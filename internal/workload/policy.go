package workload

import (
	"math/rand"

	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

// RandomPolicy generates a plausible privacy policy for a spec: a
// fraction of atomic modules become module-private, a fraction of data
// attributes become level-protected, and non-root workflows are granted
// to levels so that coarser views go to lower levels (deeper workflows
// require higher levels, mimicking real hierarchical clearance).
func RandomPolicy(s *workflow.Spec, seed int64) (*privacy.Policy, error) {
	rng := rand.New(rand.NewSource(seed))
	pol := privacy.NewPolicy(s.ID)
	h, err := workflow.NewHierarchy(s)
	if err != nil {
		return nil, err
	}
	levels := []privacy.Level{privacy.Registered, privacy.Analyst, privacy.Owner}

	for _, wid := range s.WorkflowIDs() {
		for _, m := range s.Workflows[wid].Modules {
			switch m.Kind {
			case workflow.Atomic:
				if rng.Float64() < 0.15 {
					pol.ModuleLevels[m.ID] = levels[rng.Intn(len(levels))]
				}
			default:
			}
			for _, a := range m.Outputs {
				if rng.Float64() < 0.15 {
					if _, dup := pol.DataLevels[a]; !dup {
						pol.DataLevels[a] = levels[rng.Intn(len(levels))]
					}
				}
			}
		}
	}
	// Grant each non-root workflow at a level no lower than its depth
	// (deeper detail needs more privilege).
	for _, wid := range h.All() {
		if wid == h.Root {
			continue
		}
		min := h.Depth(wid)
		if min > len(levels) {
			min = len(levels)
		}
		lvl := levels[min-1+rng.Intn(len(levels)-min+1)]
		pol.ViewGrants[lvl] = append(pol.ViewGrants[lvl], wid)
	}
	if err := pol.Validate(s); err != nil {
		return nil, err
	}
	return pol, nil
}
