package dp

import (
	"math"
	"math/rand"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/workflow"
)

func TestLaplaceStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	b := 2.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := Laplace(b, rng)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v, want ≈0", mean)
	}
	// E|X| = b for Laplace(b).
	if math.Abs(meanAbs-b) > 0.05 {
		t.Fatalf("E|X| = %v, want ≈%v", meanAbs, b)
	}
}

func TestNewMechanismValidation(t *testing.T) {
	if _, err := NewMechanism(0, 1, 1); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := NewMechanism(1, 0, 1); err == nil {
		t.Fatal("sensitivity 0 accepted")
	}
}

func TestMechanismDeterministicUnderSeed(t *testing.T) {
	m1, _ := NewMechanism(1, 1, 7)
	m2, _ := NewMechanism(1, 1, 7)
	for i := 0; i < 10; i++ {
		if m1.Noisy(5) != m2.Noisy(5) {
			t.Fatal("same seed, different noise")
		}
	}
}

func diseaseExec(t *testing.T) *exec.Execution {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	r := exec.NewRunner(spec, nil)
	e, err := r.Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e
}

func TestCountQueries(t *testing.T) {
	e := diseaseExec(t)
	// Find the disorders item.
	var disID string
	for id, it := range e.Items {
		if it.Attr == "disorders" {
			disID = id
		}
	}
	size := ProvenanceSize(disID)(e)
	if size < 5 {
		t.Fatalf("ProvenanceSize = %v, want ≥5", size)
	}
	down := DownstreamCount(disID)(e)
	if down < 2 {
		t.Fatalf("DownstreamCount = %v", down)
	}
	if got := ProvenanceSize("d999")(e); got != 0 {
		t.Fatalf("unknown item size = %v", got)
	}
}

func TestNoiseScalesInverselyWithEpsilon(t *testing.T) {
	e := diseaseExec(t)
	var disID string
	for id, it := range e.Items {
		if it.Attr == "disorders" {
			disID = id
		}
	}
	q := ProvenanceSize(disID)
	loose, err := MeasureReproducibility(q, e, 0.1, 400, 11)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	tight, err := MeasureReproducibility(q, e, 10, 400, 11)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if loose.MeanAbsErr <= tight.MeanAbsErr {
		t.Fatalf("ε=0.1 err %v not worse than ε=10 err %v", loose.MeanAbsErr, tight.MeanAbsErr)
	}
	// The paper's point: at strong privacy (small ε), answers are
	// irreproducible and nearly always wrong.
	if loose.WrongFrac < 0.8 {
		t.Fatalf("ε=0.1 WrongFrac = %v, want ≥0.8", loose.WrongFrac)
	}
	if loose.DisagreeFrac < 0.8 {
		t.Fatalf("ε=0.1 DisagreeFrac = %v", loose.DisagreeFrac)
	}
	// At weak privacy the answers stabilize.
	if tight.WrongFrac > 0.2 {
		t.Fatalf("ε=10 WrongFrac = %v, want ≤0.2", tight.WrongFrac)
	}
}

func TestMeasureReproducibilityValidation(t *testing.T) {
	e := diseaseExec(t)
	if _, err := MeasureReproducibility(ProvenanceSize("d0"), e, 1, 1, 1); err == nil {
		t.Fatal("trials=1 accepted")
	}
	if _, err := MeasureReproducibility(ProvenanceSize("d0"), e, -1, 10, 1); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}
