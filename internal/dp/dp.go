// Package dp explores the paper's Section 5 observation about
// differential privacy: although DP is "the strongest notion of privacy
// known to date", no deterministic algorithm can guarantee it, and
// "provenance in scientific workflows is used to ensure reproducibility
// of experiments, and adding random noise to provenance information may
// render it useless."
//
// The package provides a Laplace mechanism over provenance count
// queries (e.g. "how many module executions contributed to item d") and
// a reproducibility-loss measurement that quantifies the paper's
// argument: the probability that two independent noisy answers to the
// same query disagree, and the expected error, as functions of ε.
package dp

import (
	"fmt"
	"math"
	"math/rand"

	"provpriv/internal/exec"
)

// Laplace draws one sample from the Laplace distribution with scale b,
// via inverse-CDF sampling from the provided source (deterministic under
// a seeded source; the randomness is the point).
func Laplace(b float64, rng *rand.Rand) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// Mechanism is an (ε, sensitivity)-Laplace mechanism.
type Mechanism struct {
	Epsilon     float64
	Sensitivity float64
	rng         *rand.Rand
}

// NewMechanism returns a mechanism; epsilon and sensitivity must be
// positive.
func NewMechanism(epsilon, sensitivity float64, seed int64) (*Mechanism, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("dp: epsilon %v must be positive", epsilon)
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("dp: sensitivity %v must be positive", sensitivity)
	}
	return &Mechanism{Epsilon: epsilon, Sensitivity: sensitivity, rng: rand.New(rand.NewSource(seed))}, nil
}

// Noisy returns trueValue + Laplace(sensitivity/ε) noise.
func (m *Mechanism) Noisy(trueValue float64) float64 {
	return trueValue + Laplace(m.Sensitivity/m.Epsilon, m.rng)
}

// CountQuery is a numeric query over an execution.
type CountQuery func(e *exec.Execution) float64

// ProvenanceSize returns the query "number of nodes in the provenance
// of item id".
func ProvenanceSize(itemID string) CountQuery {
	return func(e *exec.Execution) float64 {
		p, err := exec.Provenance(e, itemID)
		if err != nil {
			return 0
		}
		return float64(len(p.Nodes))
	}
}

// DownstreamCount returns the query "number of items downstream of
// item id".
func DownstreamCount(itemID string) CountQuery {
	return func(e *exec.Execution) float64 {
		ds, err := exec.Downstream(e, itemID)
		if err != nil {
			return 0
		}
		return float64(len(ds))
	}
}

// Answer runs the query through the mechanism.
func (m *Mechanism) Answer(q CountQuery, e *exec.Execution) float64 {
	return m.Noisy(q(e))
}

// ReproReport quantifies reproducibility loss under the mechanism.
type ReproReport struct {
	Epsilon      float64
	Trials       int
	MeanAbsErr   float64 // E|noisy − true|
	DisagreeFrac float64 // fraction of trial pairs whose rounded answers differ
	WrongFrac    float64 // fraction of rounded answers ≠ true count
}

// MeasureReproducibility asks the query repeatedly and reports how
// irreproducible and wrong the integerized answers are. A scientist
// re-running a provenance count expects the same integer every time;
// WrongFrac ≈ 1 at small ε is the paper's "render it useless".
func MeasureReproducibility(q CountQuery, e *exec.Execution, epsilon float64, trials int, seed int64) (ReproReport, error) {
	if trials < 2 {
		return ReproReport{}, fmt.Errorf("dp: need at least 2 trials")
	}
	m, err := NewMechanism(epsilon, 1, seed)
	if err != nil {
		return ReproReport{}, err
	}
	truth := q(e)
	answers := make([]float64, trials)
	var sumErr float64
	wrong := 0
	for i := range answers {
		answers[i] = m.Noisy(truth)
		sumErr += math.Abs(answers[i] - truth)
		if math.Round(answers[i]) != truth {
			wrong++
		}
	}
	disagree := 0
	pairs := 0
	for i := 0; i < trials; i++ {
		for j := i + 1; j < trials; j++ {
			pairs++
			if math.Round(answers[i]) != math.Round(answers[j]) {
				disagree++
			}
		}
	}
	return ReproReport{
		Epsilon:      epsilon,
		Trials:       trials,
		MeanAbsErr:   sumErr / float64(trials),
		DisagreeFrac: float64(disagree) / float64(pairs),
		WrongFrac:    float64(wrong) / float64(trials),
	}, nil
}
