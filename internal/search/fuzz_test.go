package search

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// Fuzz harnesses for the query-parsing front door — the first code that
// touches attacker-controlled input once the repository is served over
// HTTP. Run with `go test -fuzz=FuzzParseQuery ./internal/search`; the
// seed corpus below keeps them running as plain tests in CI.

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "database", "disorder risks", "Expand SNP Set",
		"a-b_c/d.e", "ss", "miss", "UPPER lower MiXeD",
		"ends-with-s", "q\x00b", "héllo wörld", strings.Repeat("s", 100),
		",,,", " \t ", "phrase, with, commas",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Errorf("Tokenize(%q) emitted empty token", s)
				continue
			}
			if Normalize(tok) != tok {
				t.Errorf("Tokenize(%q): token %q not normalized (Normalize → %q)", s, tok, Normalize(tok))
			}
			if tok != strings.ToLower(tok) {
				t.Errorf("Tokenize(%q): token %q not lowercased", s, tok)
			}
		}
	})
}

func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"", "database", "database, disorder risks", ",", ", ,",
		"a,b,c,d,e", "one two three, four", "\x00,\xff", "π, ∞",
		strings.Repeat("q,", 50), "trailing,", ",leading",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, q string) {
		phrases := ParseQuery(q)
		for i, phrase := range phrases {
			if len(phrase) == 0 {
				t.Errorf("ParseQuery(%q): phrase %d empty", q, i)
			}
			for _, term := range phrase {
				if term != Normalize(term) {
					t.Errorf("ParseQuery(%q): term %q not normalized", q, term)
				}
			}
		}
		// Parsing is insensitive to a trailing comma and idempotent
		// under re-joining: re-parsing the canonical form yields the
		// same phrases.
		if utf8.ValidString(q) {
			var parts []string
			for _, phrase := range phrases {
				parts = append(parts, strings.Join(phrase, " "))
			}
			again := ParseQuery(strings.Join(parts, ", "))
			if len(again) != len(phrases) {
				t.Fatalf("ParseQuery not stable: %v vs %v", phrases, again)
			}
			for i := range again {
				if strings.Join(again[i], " ") != strings.Join(phrases[i], " ") {
					t.Fatalf("ParseQuery not stable at %d: %v vs %v", i, phrases[i], again[i])
				}
			}
		}
	})
}

func FuzzNormalizeIdempotent(f *testing.F) {
	for _, seed := range []string{"", "Risks", "ss", "S", "glass", "genes", "données"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		once := Normalize(s)
		if twice := Normalize(once); twice != once {
			t.Errorf("Normalize not idempotent: %q → %q → %q", s, once, twice)
		}
	})
}
