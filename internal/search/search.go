// Package search implements keyword queries over hierarchical workflow
// specifications (Section 4 of the CIDR 2011 paper; semantics follow
// Liu, Shao and Chen, "Searching workflows with hierarchical views",
// PVLDB 2010, cited as [7]): the answer to a keyword query is a MINIMAL
// VIEW of the workflow — a prefix of the expansion hierarchy — that
// contains a match for every query phrase, drilling into composite
// modules exactly when a finer match exists inside them.
//
// On the paper's Fig. 1 workflow, the query "database, disorder risks"
// yields the view of prefix {W1, W2, W4} — Figure 5 — because
// "database" matches most specifically inside W4 (Generate Database
// Queries) while "disorder risks" matches the collapsed composite M2
// and nothing finer inside it.
//
// The privacy-aware variant clips the ideal view to the user's access
// view, re-mapping finer matches to their deepest visible ancestor
// composite (the "zoom-out" of Section 4), and refuses to match modules
// whose identity is protected by module privacy.
package search

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

// Tokenize lowercases and splits a query or name into normalized terms.
// A trailing plural "s" is stripped from terms of length ≥ 4 so that
// "Risks" matches "risk".
func Tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '-' || r == '_' || r == '/' || r == '.'
	})
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		// Fields made only of untrimmed whitespace (\r, \n, …) normalize
		// to nothing; an empty term can never match and must not count
		// as a phrase.
		if t := Normalize(f); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Normalize applies the term normalization used by both indexing and
// querying.
func Normalize(term string) string {
	t := strings.ToLower(strings.TrimSpace(term))
	if len(t) >= 4 && strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss") {
		t = t[:len(t)-1]
	}
	return t
}

// ParseQuery splits a comma-separated keyword query into phrases, each
// a set of terms that must all match the same module ("database,
// disorder risks" → ["database"], ["disorder","risks"]).
func ParseQuery(q string) [][]string {
	var out [][]string
	for _, part := range strings.Split(q, ",") {
		toks := Tokenize(part)
		if len(toks) > 0 {
			out = append(out, toks)
		}
	}
	return out
}

// Match records that a phrase matched a module.
type Match struct {
	Phrase   string // the phrase, space-joined
	ModuleID string
	Workflow string // workflow containing the module
	ZoomedTo string // if privacy re-mapped the match, the visible ancestor
}

// Result is a keyword-search answer: the minimal view and the matches
// visible in it.
type Result struct {
	View      *workflow.View
	Prefix    workflow.Prefix
	Matches   []Match
	ZoomedOut bool // the ideal view was clipped by the user's access view
}

// moduleTerms returns the normalized searchable terms of a module.
func moduleTerms(m *workflow.Module) map[string]bool {
	set := make(map[string]bool)
	for _, k := range m.AllKeywords() {
		set[Normalize(k)] = true
	}
	return set
}

func phraseMatches(m *workflow.Module, phrase []string) bool {
	terms := moduleTerms(m)
	for _, p := range phrase {
		if !terms[p] {
			return false
		}
	}
	return true
}

// rawMatch is a phrase match before supersession/minimality.
type rawMatch struct {
	module   *workflow.Module
	workflow string
}

// Search evaluates a keyword query (see ParseQuery) against a spec with
// no privacy constraints and returns the minimal view containing all
// matches. It returns an error when some phrase matches nothing.
func Search(spec *workflow.Spec, query [][]string) (*Result, error) {
	return searchInternal(spec, query, nil, nil, 0)
}

// Matches reports whether SearchWithAccess would succeed for the query —
// i.e. every phrase matches at least one module visible under module
// privacy — without building the hierarchy, the minimal prefix or the
// answer view. This is the pagination predicate: windowed repository
// search uses it to count the full result set while materializing views
// only for the requested page.
//
// Equivalence with searchInternal: beyond the per-phrase visible-match
// requirement tested here, searchInternal can only fail on structurally
// invalid specs (hierarchy/expand errors, impossible for specs the
// repository validated on registration); its "all matches suppressed"
// guard is unreachable when every phrase has a visible match, because a
// match is dropped from the report only when its whole workflow chain
// is in the prefix yet the module is absent from the view — a
// contradiction for expanded prefixes. TestMatchesAgreesWithSearch
// pins the equivalence property-style.
func Matches(spec *workflow.Spec, query [][]string, pol *privacy.Policy, level privacy.Level) bool {
	if len(query) == 0 {
		return false
	}
	for _, phrase := range query {
		found := false
		for _, wid := range spec.WorkflowIDs() {
			for _, m := range spec.Workflows[wid].Modules {
				if pol != nil && !pol.CanSeeModule(level, m.ID) {
					continue
				}
				if phraseMatches(m, phrase) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SearchWithAccess evaluates the query under an access view and a
// policy: the answer view never exceeds accessView, matches on modules
// hidden by module privacy are discarded, and matches inside workflows
// beyond the access view zoom out to their deepest visible ancestor.
func SearchWithAccess(spec *workflow.Spec, query [][]string, accessView workflow.Prefix, pol *privacy.Policy, level privacy.Level) (*Result, error) {
	if accessView == nil {
		return nil, fmt.Errorf("search: nil access view")
	}
	return searchInternal(spec, query, accessView, pol, level)
}

func searchInternal(spec *workflow.Spec, query [][]string, accessView workflow.Prefix, pol *privacy.Policy, level privacy.Level) (*Result, error) {
	if len(query) == 0 {
		return nil, fmt.Errorf("search: empty query")
	}
	h, err := workflow.NewHierarchy(spec)
	if err != nil {
		return nil, err
	}

	// Collect raw matches per phrase.
	type phraseState struct {
		phrase  []string
		matches []rawMatch
	}
	states := make([]*phraseState, 0, len(query))
	for _, phrase := range query {
		ps := &phraseState{phrase: phrase}
		for _, wid := range spec.WorkflowIDs() {
			for _, m := range spec.Workflows[wid].Modules {
				if pol != nil && !pol.CanSeeModule(level, m.ID) {
					continue // module privacy: identity not searchable
				}
				if phraseMatches(m, phrase) {
					ps.matches = append(ps.matches, rawMatch{module: m, workflow: wid})
				}
			}
		}
		if len(ps.matches) == 0 {
			return nil, fmt.Errorf("search: no match for phrase %q", strings.Join(phrase, " "))
		}
		states = append(states, ps)
	}

	// Supersession: drop a match on a composite module when the phrase
	// also matches inside its expansion subtree (the finer match is the
	// answer; the composite merely summarizes it).
	for _, ps := range states {
		ps.matches = dropSuperseded(h, ps.matches)
	}

	// Minimal prefix: per phrase, the cheapest requirement (fewest
	// workflows added, ties broken lexicographically); union across
	// phrases, clipped to the access view with zoom-out.
	prefix := workflow.NewPrefix(h.Root)
	zoomed := false
	for _, ps := range states {
		req, clipped := cheapestRequirement(h, ps.matches, accessView)
		zoomed = zoomed || clipped
		for wid := range req {
			prefix[wid] = true
		}
	}
	view, err := workflow.Expand(spec, prefix)
	if err != nil {
		return nil, err
	}

	// Report every match visible in the final view; invisible finer
	// matches zoom out to their visible ancestor composite.
	res := &Result{View: view, Prefix: prefix, ZoomedOut: zoomed}
	// Composite dedup key as a struct, not a "|"-joined string: module
	// IDs are wire-writable, and an ID containing the separator could
	// alias two distinct matches into one (provlint cachekey).
	type matchKey struct{ phrase, module, zoomedTo string }
	seen := make(map[matchKey]bool)
	for _, ps := range states {
		name := strings.Join(ps.phrase, " ")
		for _, rm := range ps.matches {
			match := Match{Phrase: name, ModuleID: rm.module.ID, Workflow: rm.workflow}
			if view.Module(rm.module.ID) == nil {
				anc := visibleAncestor(h, rm.workflow, prefix)
				if anc == "" {
					continue
				}
				match.ZoomedTo = anc
			}
			key := matchKey{phrase: name, module: match.ModuleID, zoomedTo: match.ZoomedTo}
			if !seen[key] {
				seen[key] = true
				res.Matches = append(res.Matches, match)
			}
		}
	}
	sort.Slice(res.Matches, func(i, j int) bool {
		if res.Matches[i].Phrase != res.Matches[j].Phrase {
			return res.Matches[i].Phrase < res.Matches[j].Phrase
		}
		return res.Matches[i].ModuleID < res.Matches[j].ModuleID
	})
	if len(res.Matches) == 0 {
		return nil, fmt.Errorf("search: all matches suppressed by privacy constraints")
	}
	return res, nil
}

// dropSuperseded removes matches on composite modules whose subtree
// contains another match for the same phrase.
func dropSuperseded(h *workflow.Hierarchy, matches []rawMatch) []rawMatch {
	// Workflows containing a match.
	matchWf := make(map[string]bool, len(matches))
	for _, rm := range matches {
		matchWf[rm.workflow] = true
	}
	inSubtree := func(root, wid string) bool {
		for cur := wid; cur != ""; cur = h.Parent(cur) {
			if cur == root {
				return true
			}
			if cur == h.Root {
				break
			}
		}
		return false
	}
	var out []rawMatch
	for _, rm := range matches {
		if rm.module.Kind == workflow.Composite {
			superseded := false
			for w := range matchWf {
				if w != rm.workflow && inSubtree(rm.module.Sub, w) {
					superseded = true
					break
				}
				if w == rm.module.Sub {
					superseded = true
					break
				}
			}
			if superseded {
				continue
			}
		}
		out = append(out, rm)
	}
	if len(out) == 0 {
		return matches // defensive: never drop everything
	}
	return out
}

// cheapestRequirement returns the smallest prefix extension making some
// match of the phrase visible. When an access view is supplied and the
// cheapest requirement exceeds it, the requirement is clipped (zoom-out)
// and clipped=true is returned.
func cheapestRequirement(h *workflow.Hierarchy, matches []rawMatch, accessView workflow.Prefix) (req map[string]bool, clipped bool) {
	type cand struct {
		chain []string // workflows root..containing
		key   string
	}
	var best *cand
	for _, rm := range matches {
		var chain []string
		for cur := rm.workflow; cur != ""; cur = h.Parent(cur) {
			chain = append([]string{cur}, chain...)
			if cur == h.Root {
				break
			}
		}
		c := &cand{chain: chain, key: strings.Join(chain, "/")}
		if best == nil || len(c.chain) < len(best.chain) ||
			(len(c.chain) == len(best.chain) && c.key < best.key) {
			best = c
		}
	}
	req = make(map[string]bool, len(best.chain))
	for _, wid := range best.chain {
		if accessView != nil && !accessView.Contains(wid) {
			clipped = true
			break // prefix-closed: once outside, everything deeper is too
		}
		req[wid] = true
	}
	return req, clipped
}

// visibleAncestor returns the composite module that represents workflow
// wid in the view of the given prefix: the via-module of the shallowest
// ancestor workflow not in the prefix ("" if wid is visible).
func visibleAncestor(h *workflow.Hierarchy, wid string, prefix workflow.Prefix) string {
	// Build chain root..wid.
	var chain []string
	for cur := wid; cur != ""; cur = h.Parent(cur) {
		chain = append([]string{cur}, chain...)
		if cur == h.Root {
			break
		}
	}
	for _, w := range chain {
		if !prefix.Contains(w) {
			return h.ViaModule(w)
		}
	}
	return ""
}
