package search

import (
	"strings"
	"testing"

	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Disorder-Risks and_some/Queries")
	want := []string{"disorder", "risk", "and", "some", "querie"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Risks": "risk", "gas": "gas", "DBs": "dbs" /* len<4 kept */, "ab": "ab",
	}
	// "class" strips nothing ("ss" guard).
	if Normalize("class") != "class" {
		t.Fatalf("Normalize(class) = %s, want class (ss guard)", Normalize("class"))
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Fatalf("Normalize(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q := ParseQuery("Database, Disorder Risks")
	if len(q) != 2 {
		t.Fatalf("phrases = %v", q)
	}
	if q[0][0] != "database" {
		t.Fatalf("q[0] = %v", q[0])
	}
	if strings.Join(q[1], "+") != "disorder+risk" {
		t.Fatalf("q[1] = %v", q[1])
	}
	if got := ParseQuery(" ,, "); got != nil {
		t.Fatalf("empty query = %v", got)
	}
}

// The headline test: the paper's Fig. 5 result.
func TestSearchReproducesFig5(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	res, err := Search(spec, ParseQuery("Database, Disorder Risks"))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	// Fig. 5 view: prefix {W1, W2, W4} — modules I, M3, M5, M6, M7, M8,
	// M2, O.
	if strings.Join(res.Prefix.IDs(), ",") != "W1,W2,W4" {
		t.Fatalf("prefix = %v, want W1,W2,W4", res.Prefix.IDs())
	}
	got := strings.Join(res.View.ModuleIDs(), ",")
	if got != "I,M2,M3,M5,M6,M7,M8,O" {
		t.Fatalf("view modules = %s, want I,M2,M3,M5,M6,M7,M8,O", got)
	}
	// "disorder risks" matched the collapsed M2; "database" matched
	// atomic modules inside W4.
	byPhrase := make(map[string][]string)
	for _, m := range res.Matches {
		byPhrase[m.Phrase] = append(byPhrase[m.Phrase], m.ModuleID)
	}
	if !containsID(byPhrase["disorder risk"], "M2") {
		t.Fatalf("disorder-risk matches = %v, want M2", byPhrase["disorder risk"])
	}
	if !containsID(byPhrase["database"], "M5") {
		t.Fatalf("database matches = %v, want M5", byPhrase["database"])
	}
	if res.ZoomedOut {
		t.Fatal("unexpected zoom-out without privacy")
	}
}

func containsID(ids []string, want string) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func TestSearchMatchesNamesNotAttributes(t *testing.T) {
	// "prognosis" is a data attribute, not a module name or keyword:
	// keyword search is over module terms, so it must report no match.
	spec := workflow.DiseaseSusceptibility()
	if _, err := Search(spec, ParseQuery("prognosis")); err == nil {
		t.Fatal("attribute name matched as module keyword")
	}
}

func TestSearchNoMatch(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	if _, err := Search(spec, ParseQuery("nonexistent")); err == nil {
		t.Fatal("no-match query succeeded")
	}
	if _, err := Search(spec, nil); err == nil {
		t.Fatal("empty query succeeded")
	}
}

func TestSearchRootLevelMatchStaysCollapsed(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	res, err := Search(spec, ParseQuery("genetic susceptibility"))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	// M1 "Determine Genetic Susceptibility" matches; nothing inside W2
	// matches both terms, so the view stays at {W1}.
	if strings.Join(res.Prefix.IDs(), ",") != "W1" {
		t.Fatalf("prefix = %v, want W1", res.Prefix.IDs())
	}
	if res.View.Module("M1") == nil {
		t.Fatal("M1 not visible")
	}
}

func TestSearchDrillsPastComposite(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	// "omim" matches only M6 inside W4: both W2 and W4 must expand.
	res, err := Search(spec, ParseQuery("omim"))
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if strings.Join(res.Prefix.IDs(), ",") != "W1,W2,W4" {
		t.Fatalf("prefix = %v", res.Prefix.IDs())
	}
}

func TestSearchWithAccessZoomsOut(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	access := workflow.NewPrefix("W1", "W2") // W4 not allowed
	res, err := SearchWithAccess(spec, ParseQuery("omim"), access, pol, privacy.Registered)
	if err != nil {
		t.Fatalf("SearchWithAccess: %v", err)
	}
	if !res.ZoomedOut {
		t.Fatal("expected zoom-out")
	}
	// View must not exceed the access view.
	for wid := range res.Prefix {
		if !access.Contains(wid) {
			t.Fatalf("prefix %v exceeds access view", res.Prefix.IDs())
		}
	}
	// The match on M6 zooms out to the visible composite M4.
	found := false
	for _, m := range res.Matches {
		if m.ModuleID == "M6" && m.ZoomedTo == "M4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("matches = %+v, want M6 zoomed to M4", res.Matches)
	}
}

func TestSearchWithAccessModulePrivacy(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(spec.ID)
	pol.ModuleLevels["M6"] = privacy.Owner // Query OMIM is proprietary
	h, _ := workflow.NewHierarchy(spec)
	access := workflow.FullPrefix(h)
	// "omim" only matches the private module: public search must fail.
	if _, err := SearchWithAccess(spec, ParseQuery("omim"), access, pol, privacy.Public); err == nil {
		t.Fatal("private module matched for public user")
	}
	// The owner still finds it.
	res, err := SearchWithAccess(spec, ParseQuery("omim"), access, pol, privacy.Owner)
	if err != nil {
		t.Fatalf("owner search: %v", err)
	}
	if len(res.Matches) == 0 || res.Matches[0].ModuleID != "M6" {
		t.Fatalf("owner matches = %v", res.Matches)
	}
}

func TestSearchWithAccessNilView(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	if _, err := SearchWithAccess(spec, ParseQuery("database"), nil, nil, 0); err == nil {
		t.Fatal("nil access view accepted")
	}
}

// Property: the result prefix is always a valid prefix, and every
// reported non-zoomed match is visible in the view.
func TestSearchResultWellFormed(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	h, _ := workflow.NewHierarchy(spec)
	queries := []string{"database", "pubmed", "query", "disorder", "snp", "summary"}
	for _, q := range queries {
		res, err := Search(spec, ParseQuery(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if err := res.Prefix.Validate(h); err != nil {
			t.Fatalf("%s: invalid prefix: %v", q, err)
		}
		for _, m := range res.Matches {
			if m.ZoomedTo == "" && res.View.Module(m.ModuleID) == nil {
				t.Fatalf("%s: match %s not visible", q, m.ModuleID)
			}
		}
	}
}
