package search_test

// Search invariants over randomly generated specifications and query
// streams (external test package to use the workload generator).

import (
	"math/rand"
	"testing"

	"provpriv/internal/privacy"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

func TestRandomSpecSearchWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for seed := int64(0); seed < 8; seed++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: seed, Depth: 3, Fanout: 2, Chain: 5, SkipProb: 0.2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h, err := workflow.NewHierarchy(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, q := range workload.RandomQueries(rng, nil, 12) {
			res, err := search.Search(s, search.ParseQuery(q))
			if err != nil {
				continue // unmatched phrases are fine
			}
			if err := res.Prefix.Validate(h); err != nil {
				t.Fatalf("seed %d query %q: invalid prefix: %v", seed, q, err)
			}
			if len(res.Matches) == 0 {
				t.Fatalf("seed %d query %q: result with no matches", seed, q)
			}
			for _, m := range res.Matches {
				if m.ZoomedTo == "" && res.View.Module(m.ModuleID) == nil {
					t.Fatalf("seed %d query %q: match %s invisible", seed, q, m.ModuleID)
				}
			}
		}
	}
}

// Access-view monotonicity: a finer access view never yields a coarser
// result prefix, and the result never exceeds the access view.
func TestRandomSpecSearchAccessMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for seed := int64(0); seed < 6; seed++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: seed, Depth: 3, Fanout: 2, Chain: 5, SkipProb: 0.2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h, _ := workflow.NewHierarchy(s)
		pol := privacy.NewPolicy(s.ID)
		coarse := workflow.RootPrefix(h)
		fine := workflow.FullPrefix(h)
		for _, q := range workload.RandomQueries(rng, nil, 10) {
			phrases := search.ParseQuery(q)
			resC, errC := search.SearchWithAccess(s, phrases, coarse, pol, privacy.Public)
			resF, errF := search.SearchWithAccess(s, phrases, fine, pol, privacy.Owner)
			if errC != nil || errF != nil {
				continue
			}
			for wid := range resC.Prefix {
				if !coarse.Contains(wid) {
					t.Fatalf("seed %d query %q: coarse result exceeds access view", seed, q)
				}
			}
			// Coarse prefix ⊆ fine prefix (same matches, less expansion).
			for wid := range resC.Prefix {
				if !resF.Prefix.Contains(wid) {
					t.Fatalf("seed %d query %q: coarse prefix %v ⊄ fine %v",
						seed, q, resC.Prefix.IDs(), resF.Prefix.IDs())
				}
			}
		}
	}
}

// The drill-down invariant: if a phrase's chosen match sits in
// workflow W, every ancestor of W is in the result prefix.
func TestRandomSpecSearchPrefixCoversMatches(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: seed, Depth: 4, Fanout: 1, Chain: 4, SkipProb: 0.1,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h, _ := workflow.NewHierarchy(s)
		// Query for a term guaranteed present: the first word of some
		// deep module's name.
		deepest := h.All()[len(h.All())-1]
		var term string
		for _, m := range s.Workflows[deepest].Modules {
			kws := m.AllKeywords()
			if len(kws) > 0 {
				term = kws[0]
				break
			}
		}
		if term == "" {
			continue
		}
		res, err := search.Search(s, search.ParseQuery(term))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, m := range res.Matches {
			if m.ZoomedTo != "" {
				continue
			}
			for cur := m.Workflow; cur != ""; cur = h.Parent(cur) {
				if !res.Prefix.Contains(cur) {
					t.Fatalf("seed %d: match in %s but ancestor %s not in prefix %v",
						seed, m.Workflow, cur, res.Prefix.IDs())
				}
				if cur == h.Root {
					break
				}
			}
		}
	}
}
