package search_test

import (
	"math/rand"
	"testing"

	"provpriv/internal/privacy"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// TestMatchesAgreesWithSearch pins the pagination predicate to the full
// search: Matches(spec, q, pol, level) must equal "SearchWithAccess
// succeeds" for every random spec × query × policy × level — the
// repository's windowed search counts totals with the predicate and
// materializes views only inside the window, so a divergence here would
// make paginated totals lie.
func TestMatchesAgreesWithSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for seed := int64(0); seed < 8; seed++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: seed, Depth: 3, Fanout: 2, Chain: 5, SkipProb: 0.2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h, err := workflow.NewHierarchy(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pol := privacy.NewPolicy(s.ID)
		k := 0
		for _, wid := range s.WorkflowIDs() {
			for _, m := range s.Workflows[wid].Modules {
				if k%3 == 0 {
					pol.ModuleLevels[m.ID] = privacy.Analyst
				}
				k++
			}
		}
		for _, q := range workload.RandomQueries(rng, nil, 16) {
			phrases := search.ParseQuery(q)
			if len(phrases) == 0 {
				continue
			}
			for _, level := range []privacy.Level{privacy.Public, privacy.Registered, privacy.Analyst, privacy.Owner} {
				access := pol.AccessView(h, level)
				_, err := search.SearchWithAccess(s, phrases, access, pol, level)
				if got, want := search.Matches(s, phrases, pol, level), err == nil; got != want {
					t.Fatalf("seed %d level %v query %q: Matches=%v but SearchWithAccess err=%v",
						seed, level, q, got, err)
				}
			}
		}
	}
}

func TestMatchesEmptyQuery(t *testing.T) {
	s := workflow.DiseaseSusceptibility()
	if search.Matches(s, nil, nil, privacy.Owner) {
		t.Fatal("empty query matched")
	}
}
