package graph

import "sort"

// SCC computes the strongly connected components of g using Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the stack).
// Components are returned in reverse topological order of the
// condensation (a component appears before the components it can
// reach... Tarjan emits them in reverse topological order), each
// component's node ids sorted ascending.
func (g *Graph) SCC() [][]NodeID {
	n := g.N()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []NodeID
	var comps [][]NodeID
	counter := 0

	type frame struct {
		v    NodeID
		iter int
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack := []frame{{v: NodeID(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, NodeID(start))
		onStack[start] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.iter < len(g.out[v]) {
				w := g.out[v][f.iter]
				f.iter++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			// Post-visit.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Condense returns the condensation of g: one node per strongly
// connected component (named "scc<k>" in the returned graph, k being
// the component's index in the second return value), with an edge
// between two components when any original edge crosses them. The
// condensation is always a DAG.
func (g *Graph) Condense() (*Graph, [][]NodeID) {
	comps := g.SCC()
	compOf := make([]int, g.N())
	for ci, comp := range comps {
		for _, u := range comp {
			compOf[u] = ci
		}
	}
	c := New()
	for ci := range comps {
		c.AddNode(sccName(ci))
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.out[u] {
			cu, cv := compOf[u], compOf[v]
			if cu != cv {
				c.AddEdge(NodeID(cu), NodeID(cv))
			}
		}
	}
	return c, comps
}

func sccName(i int) string {
	// Small deterministic names without fmt to keep this allocation-light.
	digits := "0123456789"
	if i == 0 {
		return "scc0"
	}
	var buf [24]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = digits[i%10]
		i /= 10
	}
	return "scc" + string(buf[pos:])
}

// Dominators computes the immediate dominator of every node reachable
// from root, using the simple iterative data-flow algorithm (Cooper,
// Harvey, Kennedy). idom[root] = root; unreachable nodes get Invalid.
// In a workflow view, the dominators of a sink are exactly the modules
// every dataflow path must pass through — useful for placing privacy
// "choke points".
func (g *Graph) Dominators(root NodeID) []NodeID {
	order, err := g.TopoSort()
	if err != nil {
		// General graphs: use reverse postorder of a DFS instead.
		order = g.dfsPostorderReversed(root)
	}
	// Restrict to nodes reachable from root, in (reverse post)order.
	reach := make([]bool, g.N())
	for _, u := range g.ReachableFrom(root) {
		reach[u] = true
	}
	rpo := make([]NodeID, 0, g.N())
	for _, u := range order {
		if reach[u] {
			rpo = append(rpo, u)
		}
	}
	pos := make([]int, g.N())
	for i, u := range rpo {
		pos[u] = i
	}
	idom := make([]NodeID, g.N())
	for i := range idom {
		idom[i] = Invalid
	}
	idom[root] = root
	changed := true
	for changed {
		changed = false
		for _, u := range rpo {
			if u == root {
				continue
			}
			newIdom := Invalid
			for _, p := range g.in[u] {
				if !reach[p] || idom[p] == Invalid {
					continue
				}
				if newIdom == Invalid {
					newIdom = p
				} else {
					newIdom = intersectDom(idom, pos, p, newIdom)
				}
			}
			if newIdom != Invalid && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func intersectDom(idom []NodeID, pos []int, a, b NodeID) NodeID {
	for a != b {
		for pos[a] > pos[b] {
			a = idom[a]
		}
		for pos[b] > pos[a] {
			b = idom[b]
		}
	}
	return a
}

func (g *Graph) dfsPostorderReversed(root NodeID) []NodeID {
	visited := make([]bool, g.N())
	var post []NodeID
	var dfs func(u NodeID)
	dfs = func(u NodeID) {
		visited[u] = true
		for _, v := range g.out[u] {
			if !visited[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(root)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether u dominates v given an idom array from
// Dominators: every path from the root to v passes through u.
func Dominates(idom []NodeID, u, v NodeID) bool {
	if idom[v] == Invalid {
		return false
	}
	for {
		if v == u {
			return true
		}
		if idom[v] == v {
			return false // reached root
		}
		v = idom[v]
	}
}
