package graph

import "sort"

// Closure is a precomputed all-pairs reachability index built from the
// bitset transitive closure of a DAG. Queries are O(1); construction is
// O(n*m/64). Reachability is reflexive: Reach(u,u) is always true.
//
// All rows live in one arena word slice, so building a closure costs a
// constant number of allocations regardless of graph size, and callers
// with closure-per-request patterns (taint analysis) can recycle the
// arena through NewClosureScratch.
type Closure struct {
	reach []*Bitset
	words []uint64 // arena backing every row
}

// NewClosure computes the transitive closure of g, which must be a DAG.
// Returns ErrCycle otherwise.
func NewClosure(g *Graph) (*Closure, error) {
	return NewClosureScratch(g, nil)
}

// NewClosureScratch is NewClosure reusing a scratch word arena from a
// previous closure (see Closure.Scratch): when scratch has capacity for
// every row it is zeroed and reused, otherwise a fresh arena is
// allocated. Pass nil for no reuse.
func NewClosureScratch(g *Graph, scratch []uint64) (*Closure, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := g.N()
	wpr := (n + 63) / 64 // words per row
	need := n * wpr
	if cap(scratch) >= need {
		scratch = scratch[:need]
		for i := range scratch {
			scratch[i] = 0
		}
	} else {
		scratch = make([]uint64, need)
	}
	rows := make([]Bitset, n)
	c := &Closure{reach: make([]*Bitset, n), words: scratch}
	for i := 0; i < n; i++ {
		rows[i] = Bitset{words: scratch[i*wpr : (i+1)*wpr : (i+1)*wpr], n: n}
		c.reach[i] = &rows[i]
	}
	// Process in reverse topological order so successors are done first.
	for i := n - 1; i >= 0; i-- {
		u := order[i]
		b := c.reach[u]
		b.Set(int(u))
		for _, v := range g.Out(u) {
			b.Or(c.reach[v])
		}
	}
	return c, nil
}

// Scratch returns the arena backing the closure's rows so a caller can
// hand it to a later NewClosureScratch. The closure must not be used
// after its scratch has been recycled.
func (c *Closure) Scratch() []uint64 { return c.words }

// Reach reports whether v is reachable from u (reflexively).
func (c *Closure) Reach(u, v NodeID) bool { return c.reach[u].Has(int(v)) }

// From returns the bitset of nodes reachable from u. The caller must not
// modify it.
func (c *Closure) From(u NodeID) *Bitset { return c.reach[u] }

// Pairs returns the number of ordered reachable pairs (u,v), u != v.
func (c *Closure) Pairs() int {
	total := 0
	for _, b := range c.reach {
		total += b.Count() - 1 // exclude self
	}
	return total
}

// IntervalIndex is a lightweight DAG reachability index based on DFS
// pre/post intervals over a spanning forest, with a pruned-DFS fallback
// for non-tree reachability. For tree-like workflow graphs the interval
// test answers most queries in O(1); the fallback never visits a node
// whose interval already excludes the target's subtree.
//
// It trades construction cost (O(n+m)) against query cost (worst case
// O(n+m), typically far less), versus Closure's O(n*m/64) build and O(1)
// queries. Benchmark B2/B3 in EXPERIMENTS.md compares the two.
type IntervalIndex struct {
	g         *Graph
	pre, post []int
	topoOf    []int // topological rank of each node
}

// NewIntervalIndex builds the index for a DAG g.
func NewIntervalIndex(g *Graph) (*IntervalIndex, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := g.N()
	ix := &IntervalIndex{
		g:      g,
		pre:    make([]int, n),
		post:   make([]int, n),
		topoOf: make([]int, n),
	}
	for rank, u := range order {
		ix.topoOf[u] = rank
	}
	// DFS over a spanning forest rooted at sources, in topo order.
	visited := make([]bool, n)
	clock := 0
	var dfs func(u NodeID)
	dfs = func(u NodeID) {
		visited[u] = true
		ix.pre[u] = clock
		clock++
		// Deterministic order.
		succ := append([]NodeID(nil), g.Out(u)...)
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		for _, v := range succ {
			if !visited[v] {
				dfs(v)
			}
		}
		ix.post[u] = clock
		clock++
	}
	for _, u := range order {
		if !visited[u] {
			dfs(u)
		}
	}
	return ix, nil
}

// Reach reports whether v is reachable from u.
func (ix *IntervalIndex) Reach(u, v NodeID) bool {
	if u == v {
		return true
	}
	// Topological pruning: a node can only reach topologically later ones.
	if ix.topoOf[u] > ix.topoOf[v] {
		return false
	}
	// Tree ancestor test on the spanning forest.
	if ix.pre[u] <= ix.pre[v] && ix.post[v] <= ix.post[u] {
		return true
	}
	// Pruned DFS fallback.
	seen := make([]bool, ix.g.N())
	return ix.dfsReach(u, v, seen)
}

func (ix *IntervalIndex) dfsReach(u, v NodeID, seen []bool) bool {
	seen[u] = true
	for _, w := range ix.g.Out(u) {
		if w == v {
			return true
		}
		if seen[w] || ix.topoOf[w] > ix.topoOf[v] {
			continue
		}
		if ix.pre[w] <= ix.pre[v] && ix.post[v] <= ix.post[w] {
			return true
		}
		if ix.dfsReach(w, v, seen) {
			return true
		}
	}
	return false
}
