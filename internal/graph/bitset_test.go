package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		if !b.Has(i) {
			t.Fatalf("Has(%d) = false after Set", i)
		}
	}
	if b.Has(1) || b.Has(128) {
		t.Fatal("spurious bits set")
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("Has(64) after Clear")
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
}

func TestBitsetElems(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 67, 150, 199}
	for _, i := range want {
		b.Set(i)
	}
	got := b.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestBitsetForEachSparse pins the word-skipping fast path: elements
// straddling skip-block boundaries, in the final partial block, and in
// sets whose word count is not a multiple of the skip width must all be
// visited, in order.
func TestBitsetForEachSparse(t *testing.T) {
	for _, n := range []int{1, 63, 64, 255, 256, 257, 1000, 1337} {
		b := NewBitset(n)
		want := []int{}
		for _, i := range []int{0, 62, 63, 64, 191, 255, 256, 320, 511, 512, 999, n - 1} {
			if i < n && !b.Has(i) {
				b.Set(i)
				want = append(want, i)
			}
		}
		// want is ascending by construction: candidates are appended in
		// increasing order and n-1 either duplicates the largest or
		// extends it.
		var got []int
		b.ForEach(func(i int) { got = append(got, i) })
		if len(got) != len(want) {
			t.Fatalf("n=%d: ForEach visited %v, want %v", n, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: ForEach visited %v, want %v", n, got, want)
			}
		}
	}
}

// BenchmarkBitsetForEach measures iteration over dense vs sparse sets;
// the sparse case is the shape taint propagation sees (a closure row
// touching a handful of a wide execution's nodes).
func BenchmarkBitsetForEach(b *testing.B) {
	for _, tc := range []struct {
		name   string
		n      int
		stride int
	}{
		{"dense", 4096, 1},
		{"mid", 4096, 64},
		{"sparse", 4096, 509},
	} {
		bs := NewBitset(tc.n)
		for i := 0; i < tc.n; i += tc.stride {
			bs.Set(i)
		}
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			sum := 0
			for i := 0; i < b.N; i++ {
				bs.ForEach(func(x int) { sum += x })
			}
			if sum < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

func TestBitsetSetOps(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)

	u := a.Clone()
	u.Or(b)
	if u.Count() != 3 || !u.Has(1) || !u.Has(2) || !u.Has(3) {
		t.Fatalf("Or wrong: %v", u.Elems())
	}

	i := a.Clone()
	i.And(b)
	if i.Count() != 1 || !i.Has(2) {
		t.Fatalf("And wrong: %v", i.Elems())
	}

	d := a.Clone()
	d.AndNot(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Fatalf("AndNot wrong: %v", d.Elems())
	}
}

func TestBitsetEqual(t *testing.T) {
	a, b := NewBitset(64), NewBitset(64)
	a.Set(5)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Set(5)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	c := NewBitset(65)
	c.Set(5)
	if a.Equal(c) {
		t.Fatal("different capacities reported equal")
	}
}

// Property: a bitset behaves like a map[int]bool under random ops.
func TestBitsetQuickVsMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 256
		b := NewBitset(n)
		m := make(map[int]bool)
		for op := 0; op < 500; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				m[i] = true
			case 1:
				b.Clear(i)
				delete(m, i)
			case 2:
				if b.Has(i) != m[i] {
					return false
				}
			}
		}
		if b.Count() != len(m) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Or is commutative and AndNot then Or restores the union.
func TestBitsetQuickAlgebra(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewBitset(256), NewBitset(256)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		if !ab.Equal(ba) {
			return false
		}
		// (a \ b) ∪ (a ∩ b) == a
		diff := a.Clone()
		diff.AndNot(b)
		inter := a.Clone()
		inter.And(b)
		diff.Or(inter)
		return diff.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTAndASCII(t *testing.T) {
	g, _, _, _, _ := diamond()
	dot := g.DOT(DotOptions{Name: "D", Rankdir: "LR"})
	for _, want := range []string{`digraph "D"`, `rankdir=LR`, `"s" -> "a"`, `"b" -> "t"`} {
		if !contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	ascii := g.ASCII()
	if !contains(ascii, "s -> a, b") {
		t.Fatalf("ASCII missing adjacency line:\n%s", ascii)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
