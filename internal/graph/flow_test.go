package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxFlowSimple(t *testing.T) {
	f := NewFlowNetwork(4)
	f.AddEdge(0, 1, 3)
	f.AddEdge(0, 2, 2)
	f.AddEdge(1, 3, 2)
	f.AddEdge(2, 3, 3)
	if got := f.MaxFlow(0, 3); got != 4 {
		t.Fatalf("MaxFlow = %d, want 4", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	f := NewFlowNetwork(3)
	f.AddEdge(0, 1, 5)
	if got := f.MaxFlow(0, 2); got != 0 {
		t.Fatalf("MaxFlow = %d, want 0", got)
	}
}

func TestMinEdgeCutDiamond(t *testing.T) {
	g, s, _, _, tt := diamond()
	cut := MinEdgeCut(g, s, tt, nil)
	if len(cut) != 2 {
		t.Fatalf("cut size = %d (%v), want 2", len(cut), cut)
	}
	// Removing the cut must disconnect.
	h := g.Clone()
	for _, e := range cut {
		h.RemoveEdge(e.U, e.V)
	}
	if h.Reachable(s, tt) {
		t.Fatal("cut does not disconnect s from t")
	}
}

func TestMinEdgeCutAlreadyDisconnected(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if cut := MinEdgeCut(g, a, b, nil); cut != nil {
		t.Fatalf("cut = %v, want nil", cut)
	}
}

func TestMinEdgeCutWeighted(t *testing.T) {
	// s -> a -> t with a cheap bypass s -> t of weight 10:
	// s-a (w=1), a-t (w=5), s-t (w=10). Min cut must take s-a + s-t? No:
	// cutting {s->a?} doesn't cut s->t. All s-t paths: s-a-t and s-t.
	// Options: {s->t, s->a} cost 11, {s->t, a->t} cost 15. Expect former.
	g := New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	tt := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, tt)
	g.AddEdge(s, tt)
	w := func(e Edge) int64 {
		switch {
		case e.U == s && e.V == a:
			return 1
		case e.U == a && e.V == tt:
			return 5
		default:
			return 10
		}
	}
	cut := MinEdgeCut(g, s, tt, w)
	var total int64
	for _, e := range cut {
		total += w(e)
	}
	if total != 11 {
		t.Fatalf("cut weight = %d (%v), want 11", total, cut)
	}
}

func TestMinVertexCut(t *testing.T) {
	// s -> a -> t and s -> b -> t: vertex cut {a,b}.
	g, s, a, b, tt := diamond()
	cut, ok := MinVertexCut(g, s, tt, nil)
	if !ok {
		t.Fatal("MinVertexCut reported impossible")
	}
	if len(cut) != 2 {
		t.Fatalf("vertex cut = %v, want 2 nodes", cut)
	}
	seen := map[NodeID]bool{}
	for _, u := range cut {
		seen[u] = true
	}
	if !seen[a] || !seen[b] {
		t.Fatalf("vertex cut = %v, want {a,b}", cut)
	}
	_ = s
}

func TestMinVertexCutDirectEdge(t *testing.T) {
	g := New()
	s := g.AddNode("s")
	tt := g.AddNode("t")
	g.AddEdge(s, tt)
	if _, ok := MinVertexCut(g, s, tt, nil); ok {
		t.Fatal("vertex cut claimed possible despite direct edge")
	}
}

func TestMinVertexCutDisconnected(t *testing.T) {
	g := New()
	s := g.AddNode("s")
	tt := g.AddNode("t")
	cut, ok := MinVertexCut(g, s, tt, nil)
	if !ok || len(cut) != 0 {
		t.Fatalf("cut=%v ok=%v, want empty,true", cut, ok)
	}
}

// Property: for random DAGs, the min edge cut disconnects and has size
// equal to max-flow, which is at most min(outdeg(s), indeg(t)).
func TestMinEdgeCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 20, 0.15)
		s, tt := NodeID(0), NodeID(g.N()-1)
		if !g.Reachable(s, tt) {
			continue
		}
		cut := MinEdgeCut(g, s, tt, nil)
		if len(cut) == 0 {
			t.Fatalf("trial %d: empty cut for connected pair", trial)
		}
		h := g.Clone()
		for _, e := range cut {
			h.RemoveEdge(e.U, e.V)
		}
		if h.Reachable(s, tt) {
			t.Fatalf("trial %d: cut fails to disconnect", trial)
		}
		if len(cut) > g.OutDegree(s) && len(cut) > g.InDegree(tt) {
			t.Fatalf("trial %d: cut %d exceeds trivial bounds %d/%d",
				trial, len(cut), g.OutDegree(s), g.InDegree(tt))
		}
	}
}

// Property: removing a min vertex cut disconnects s from t.
func TestMinVertexCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(rng, 18, 0.12)
		s, tt := NodeID(0), NodeID(g.N()-1)
		if !g.Reachable(s, tt) || g.HasEdge(s, tt) {
			continue
		}
		cut, ok := MinVertexCut(g, s, tt, nil)
		if !ok {
			t.Fatalf("trial %d: unexpectedly impossible", trial)
		}
		drop := map[NodeID]bool{}
		for _, u := range cut {
			drop[u] = true
		}
		var keep []NodeID
		for u := 0; u < g.N(); u++ {
			if !drop[NodeID(u)] {
				keep = append(keep, NodeID(u))
			}
		}
		sub, remap := g.InducedSubgraph(keep)
		if sub.Reachable(remap[s], remap[tt]) {
			t.Fatalf("trial %d: vertex cut fails to disconnect", trial)
		}
	}
}

// Max-flow/min-cut duality: the number of cut edges (unit capacities)
// equals the max flow value on random DAGs.
func TestMinCutMaxFlowDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 16, 0.2)
		s, tt := NodeID(0), NodeID(g.N()-1)
		if !g.Reachable(s, tt) {
			continue
		}
		f := NewFlowNetwork(g.N())
		for _, e := range g.Edges() {
			f.AddEdge(int(e.U), int(e.V), 1)
		}
		flow := f.MaxFlow(int(s), int(tt))
		cut := MinEdgeCut(g, s, tt, nil)
		if int64(len(cut)) != flow {
			t.Fatalf("trial %d: |cut| %d != maxflow %d", trial, len(cut), flow)
		}
	}
}

// Toposort property via testing/quick: every edge respects the order.
func TestTopoSortQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 24, 0.15)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[NodeID]int, len(order))
		for i, u := range order {
			pos[u] = i
		}
		for _, e := range g.Edges() {
			if pos[e.U] >= pos[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
