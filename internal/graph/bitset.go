package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers, used
// for transitive closures and visited sets in the privacy algorithms.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a Bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity n the set was created with.
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool { return b.words[i/64]&(1<<(uint(i)%64)) != 0 }

// Or sets b to the union of b and o. The two sets must have equal
// capacity.
func (b *Bitset) Or(o *Bitset) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// And sets b to the intersection of b and o.
func (b *Bitset) And(o *Bitset) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// AndNot removes from b every element of o.
func (b *Bitset) AndNot(o *Bitset) {
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	c := NewBitset(b.n)
	copy(c.words, b.words)
	return c
}

// Elems returns the elements of the set in increasing order. The slice
// is allocated exactly once, sized by Count.
func (b *Bitset) Elems() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls fn for every element of the set in increasing order,
// without allocating (the iteration form of Elems for hot paths like
// taint propagation over closure rows). Runs of empty words are skipped
// four at a time, so iterating a sparse set costs ~one OR per four words
// instead of one branch per word — closure rows of wide executions are
// mostly empty (see BenchmarkBitsetForEach).
func (b *Bitset) ForEach(fn func(int)) {
	words := b.words
	for wi := 0; wi < len(words); {
		if wi+4 <= len(words) && words[wi]|words[wi+1]|words[wi+2]|words[wi+3] == 0 {
			wi += 4
			continue
		}
		w := words[wi]
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*64 + tz)
			w &= w - 1
		}
		wi++
	}
}

// Equal reports whether b and o contain the same elements.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}
