package graph

import (
	"math/rand"
	"testing"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	g.AddEdge(b, c)
	comps := g.SCC()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	// One component {a,b}, one {c}.
	sizes := map[int]int{}
	for _, comp := range comps {
		sizes[len(comp)]++
	}
	if sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
}

func TestSCCOnDAGIsSingletons(t *testing.T) {
	g, _, _, _, _ := diamond()
	comps := g.SCC()
	if len(comps) != 4 {
		t.Fatalf("DAG components = %d, want 4", len(comps))
	}
	for _, c := range comps {
		if len(c) != 1 {
			t.Fatalf("non-singleton component on DAG: %v", c)
		}
	}
}

func TestCondenseIsDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		// Random graph with cycles: add both directions sometimes.
		g := New()
		n := 20
		for i := 0; i < n; i++ {
			g.AddNode(nodeName(i))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.08 {
					g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		cond, comps := g.Condense()
		if !cond.IsAcyclic() {
			t.Fatalf("trial %d: condensation cyclic", trial)
		}
		total := 0
		for _, c := range comps {
			total += len(c)
		}
		if total != n {
			t.Fatalf("trial %d: components cover %d of %d nodes", trial, total, n)
		}
		// Mutual reachability inside components; checked on a sample.
		for _, comp := range comps {
			if len(comp) < 2 {
				continue
			}
			u, v := comp[0], comp[1]
			if !g.Reachable(u, v) || !g.Reachable(v, u) {
				t.Fatalf("trial %d: component %v not strongly connected", trial, comp)
			}
		}
	}
}

func TestDominatorsChain(t *testing.T) {
	// s -> a -> b -> t: every node dominates its successors.
	g := New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	tt := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, b)
	g.AddEdge(b, tt)
	idom := g.Dominators(s)
	if idom[a] != s || idom[b] != a || idom[tt] != b {
		t.Fatalf("idom = %v", idom)
	}
	if !Dominates(idom, a, tt) || Dominates(idom, tt, a) {
		t.Fatal("Dominates wrong on chain")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g, s, a, b, tt := diamond()
	idom := g.Dominators(s)
	// Neither a nor b dominates t; s does.
	if idom[tt] != s {
		t.Fatalf("idom[t] = %v, want s", idom[tt])
	}
	if Dominates(idom, a, tt) || Dominates(idom, b, tt) {
		t.Fatal("branch node wrongly dominates t")
	}
	if !Dominates(idom, s, tt) {
		t.Fatal("s must dominate t")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := New()
	s := g.AddNode("s")
	x := g.AddNode("x") // unreachable
	idom := g.Dominators(s)
	if idom[x] != Invalid {
		t.Fatalf("unreachable idom = %v", idom[x])
	}
	if Dominates(idom, s, x) {
		t.Fatal("dominates unreachable node")
	}
}

// Property: u dominates v iff removing u disconnects v from the root
// (checked by brute force on random DAGs).
func TestDominatorsMatchCutDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		g := randomDAG(rng, 15, 0.2)
		root := NodeID(0)
		idom := g.Dominators(root)
		reach := make(map[NodeID]bool)
		for _, u := range g.ReachableFrom(root) {
			reach[u] = true
		}
		for u := 1; u < g.N(); u++ {
			for v := 1; v < g.N(); v++ {
				if u == v || !reach[NodeID(u)] || !reach[NodeID(v)] {
					continue
				}
				dom := Dominates(idom, NodeID(u), NodeID(v))
				// Brute force: drop u, test reachability root->v.
				var keep []NodeID
				for w := 0; w < g.N(); w++ {
					if w != u {
						keep = append(keep, NodeID(w))
					}
				}
				sub, remap := g.InducedSubgraph(keep)
				still := sub.Reachable(remap[root], remap[NodeID(v)])
				if dom == still && NodeID(v) != NodeID(u) {
					t.Fatalf("trial %d: Dominates(%d,%d)=%v but removal-reachable=%v", trial, u, v, dom, still)
				}
			}
		}
	}
}

func TestDominatorsOnFig1FullExpansion(t *testing.T) {
	// In the disease workflow's full expansion, M3 dominates everything
	// on the genetic branch: every path from I to M8 passes through M3.
	// (Built inline to avoid an import cycle with package workflow.)
	g := New()
	names := []string{"I", "M3", "M5", "M6", "M7", "M8"}
	for _, n := range names {
		g.AddNode(n)
	}
	e := func(a, b string) { g.AddEdge(g.Lookup(a), g.Lookup(b)) }
	e("I", "M3")
	e("M3", "M5")
	e("M5", "M6")
	e("M5", "M7")
	e("M6", "M8")
	e("M7", "M8")
	idom := g.Dominators(g.Lookup("I"))
	if !Dominates(idom, g.Lookup("M3"), g.Lookup("M8")) {
		t.Fatal("M3 must dominate M8")
	}
	if !Dominates(idom, g.Lookup("M5"), g.Lookup("M8")) {
		t.Fatal("M5 must dominate M8")
	}
	if Dominates(idom, g.Lookup("M6"), g.Lookup("M8")) {
		t.Fatal("M6 must not dominate M8")
	}
}
