// Package graph provides the directed-graph substrate used by the
// workflow, provenance and privacy layers: adjacency storage, traversal,
// topological ordering, reachability indexes, max-flow based minimum
// cuts, strongly connected components and DOT rendering.
//
// Graphs are node-centric: nodes are created with string names and
// addressed by dense integer NodeIDs, which keeps the privacy algorithms
// (bitset closures, flow networks) allocation-friendly.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a single Graph. IDs are dense: the
// first node added gets 0, the next 1, and so on. IDs are never reused.
type NodeID int

// Invalid is returned by lookups that find no node.
const Invalid NodeID = -1

// Graph is a mutable directed graph with named nodes. The zero value is
// an empty graph ready to use. Graph is not safe for concurrent mutation;
// concurrent reads are safe once mutation stops.
type Graph struct {
	names  []string
	index  map[string]NodeID
	out    [][]NodeID
	in     [][]NodeID
	edgeN  int
	hasSet map[edgeKey]struct{}
}

type edgeKey struct{ u, v NodeID }

// New returns an empty graph. Equivalent to new(Graph) but reads better
// at call sites.
func New() *Graph { return &Graph{} }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, name := range g.names {
		c.AddNode(name)
	}
	for u := range g.out {
		for _, v := range g.out[u] {
			c.AddEdge(NodeID(u), v)
		}
	}
	return c
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.names) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edgeN }

// AddNode adds a node with the given name and returns its id. If a node
// with the name already exists, its existing id is returned.
func (g *Graph) AddNode(name string) NodeID {
	if g.index == nil {
		g.index = make(map[string]NodeID)
		g.hasSet = make(map[edgeKey]struct{})
	}
	if id, ok := g.index[name]; ok {
		return id
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.index[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// Lookup returns the id of the node with the given name, or Invalid.
func (g *Graph) Lookup(name string) NodeID {
	if id, ok := g.index[name]; ok {
		return id
	}
	return Invalid
}

// Name returns the name of node u. It panics if u is out of range.
func (g *Graph) Name(u NodeID) string { return g.names[u] }

// Names returns the names of all nodes, indexed by NodeID.
func (g *Graph) Names() []string {
	out := make([]string, len(g.names))
	copy(out, g.names)
	return out
}

// AddEdge adds the directed edge u->v. Parallel edges are collapsed:
// adding an existing edge is a no-op. It panics if u or v is out of
// range.
func (g *Graph) AddEdge(u, v NodeID) {
	g.check(u)
	g.check(v)
	k := edgeKey{u, v}
	if _, ok := g.hasSet[k]; ok {
		return
	}
	if g.hasSet == nil {
		g.hasSet = make(map[edgeKey]struct{})
	}
	g.hasSet[k] = struct{}{}
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.edgeN++
}

// RemoveEdge removes the edge u->v if present and reports whether it was.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	k := edgeKey{u, v}
	if _, ok := g.hasSet[k]; !ok {
		return false
	}
	delete(g.hasSet, k)
	g.out[u] = removeID(g.out[u], v)
	g.in[v] = removeID(g.in[v], u)
	g.edgeN--
	return true
}

func removeID(s []NodeID, x NodeID) []NodeID {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// HasEdge reports whether the edge u->v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.hasSet[edgeKey{u, v}]
	return ok
}

// Out returns the successors of u. The returned slice must not be
// modified.
func (g *Graph) Out(u NodeID) []NodeID { return g.out[u] }

// In returns the predecessors of u. The returned slice must not be
// modified.
func (g *Graph) In(u NodeID) []NodeID { return g.in[u] }

// OutDegree returns the number of successors of u.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// InDegree returns the number of predecessors of u.
func (g *Graph) InDegree(u NodeID) int { return len(g.in[u]) }

// Edge is a directed edge between two nodes.
type Edge struct{ U, V NodeID }

// Edges returns all edges in deterministic (source, target) order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edgeN)
	for u := range g.out {
		for _, v := range g.out[u] {
			es = append(es, Edge{NodeID(u), v})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Sources returns all nodes with no incoming edges, in id order.
func (g *Graph) Sources() []NodeID {
	var s []NodeID
	for u := range g.in {
		if len(g.in[u]) == 0 {
			s = append(s, NodeID(u))
		}
	}
	return s
}

// Sinks returns all nodes with no outgoing edges, in id order.
func (g *Graph) Sinks() []NodeID {
	var s []NodeID
	for u := range g.out {
		if len(g.out[u]) == 0 {
			s = append(s, NodeID(u))
		}
	}
	return s
}

// InducedSubgraph returns the subgraph induced by keep. Node names are
// preserved; ids are renumbered densely. The second return value maps
// old ids to new ids (Invalid for dropped nodes).
func (g *Graph) InducedSubgraph(keep []NodeID) (*Graph, []NodeID) {
	mark := make([]bool, g.N())
	for _, u := range keep {
		mark[u] = true
	}
	sub := New()
	remap := make([]NodeID, g.N())
	for i := range remap {
		remap[i] = Invalid
	}
	for u := 0; u < g.N(); u++ {
		if mark[u] {
			remap[u] = sub.AddNode(g.names[u])
		}
	}
	for u := 0; u < g.N(); u++ {
		if !mark[u] {
			continue
		}
		for _, v := range g.out[u] {
			if mark[v] {
				sub.AddEdge(remap[u], remap[v])
			}
		}
	}
	return sub, remap
}

func (g *Graph) check(u NodeID) {
	if u < 0 || int(u) >= len(g.names) {
		panic(fmt.Sprintf("graph: node id %d out of range [0,%d)", u, len(g.names)))
	}
}

// String returns a compact human-readable description, mainly for tests.
func (g *Graph) String() string {
	s := fmt.Sprintf("graph(n=%d,m=%d)", g.N(), g.M())
	return s
}
