package graph

import (
	"errors"
	"sort"
)

// ErrCycle is returned by TopoSort when the graph contains a directed
// cycle.
var ErrCycle = errors.New("graph: not a DAG (cycle detected)")

// TopoSort returns the nodes in a topological order (Kahn's algorithm,
// smallest-id-first for determinism). It returns ErrCycle if the graph
// has a directed cycle.
func (g *Graph) TopoSort() ([]NodeID, error) {
	indeg := make([]int, g.N())
	for u := 0; u < g.N(); u++ {
		indeg[u] = len(g.in[u])
	}
	// Min-heap behaviour via sorted frontier keeps output deterministic.
	var frontier []NodeID
	for u := 0; u < g.N(); u++ {
		if indeg[u] == 0 {
			frontier = append(frontier, NodeID(u))
		}
	}
	order := make([]NodeID, 0, g.N())
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, u)
		for _, v := range g.out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(order) != g.N() {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether the graph is a DAG.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Reachable reports whether v is reachable from u by a directed path
// (u is reachable from itself). It runs a DFS and is O(n+m).
func (g *Graph) Reachable(u, v NodeID) bool {
	if u == v {
		return true
	}
	seen := make([]bool, g.N())
	stack := []NodeID{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range g.out[x] {
			if y == v {
				return true
			}
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	return false
}

// ReachableFrom returns the set of nodes reachable from u, including u.
func (g *Graph) ReachableFrom(u NodeID) []NodeID {
	seen := make([]bool, g.N())
	stack := []NodeID{u}
	seen[u] = true
	var out []NodeID
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		for _, y := range g.out[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReachingTo returns the set of nodes from which u is reachable,
// including u (i.e. reverse reachability).
func (g *Graph) ReachingTo(u NodeID) []NodeID {
	seen := make([]bool, g.N())
	stack := []NodeID{u}
	seen[u] = true
	var out []NodeID
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		for _, y := range g.in[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodesOnPaths returns every node lying on some directed path from s to
// t (inclusive). It is the intersection of ReachableFrom(s) and
// ReachingTo(t). The result is empty when t is unreachable from s.
func (g *Graph) NodesOnPaths(s, t NodeID) []NodeID {
	fwd := make([]bool, g.N())
	for _, u := range g.ReachableFrom(s) {
		fwd[u] = true
	}
	var out []NodeID
	for _, u := range g.ReachingTo(t) {
		if fwd[u] {
			out = append(out, u)
		}
	}
	if !g.Reachable(s, t) {
		return nil
	}
	return out
}

// ShortestPath returns a minimum-hop path from s to t (inclusive), or
// nil when t is unreachable. BFS with deterministic neighbour order.
func (g *Graph) ShortestPath(s, t NodeID) []NodeID {
	if s == t {
		return []NodeID{s}
	}
	prev := make([]NodeID, g.N())
	for i := range prev {
		prev[i] = Invalid
	}
	queue := []NodeID{s}
	prev[s] = s
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.out[x] {
			if prev[y] != Invalid {
				continue
			}
			prev[y] = x
			if y == t {
				var path []NodeID
				for c := t; c != s; c = prev[c] {
					path = append(path, c)
				}
				path = append(path, s)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, y)
		}
	}
	return nil
}

// LongestPathLen returns the number of edges on the longest directed
// path in a DAG, or -1 if the graph has a cycle.
func (g *Graph) LongestPathLen() int {
	order, err := g.TopoSort()
	if err != nil {
		return -1
	}
	dist := make([]int, g.N())
	best := 0
	for _, u := range order {
		for _, v := range g.out[u] {
			if dist[u]+1 > dist[v] {
				dist[v] = dist[u] + 1
				if dist[v] > best {
					best = dist[v]
				}
			}
		}
	}
	return best
}

// CountPaths returns the number of distinct directed paths from s to t
// in a DAG (capped at cap to avoid overflow; pass 0 for no cap). Returns
// -1 on cyclic graphs.
func (g *Graph) CountPaths(s, t NodeID, cap int64) int64 {
	order, err := g.TopoSort()
	if err != nil {
		return -1
	}
	cnt := make([]int64, g.N())
	cnt[s] = 1
	for _, u := range order {
		if cnt[u] == 0 {
			continue
		}
		for _, v := range g.out[u] {
			cnt[v] += cnt[u]
			if cap > 0 && cnt[v] > cap {
				cnt[v] = cap
			}
		}
	}
	return cnt[t]
}
