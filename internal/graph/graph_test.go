package graph

import (
	"math/rand"
	"testing"
)

func mustTopo(t *testing.T, g *Graph) []NodeID {
	t.Helper()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	return order
}

// diamond builds s -> a,b -> t.
func diamond() (*Graph, NodeID, NodeID, NodeID, NodeID) {
	g := New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	t := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(s, b)
	g.AddEdge(a, t)
	g.AddEdge(b, t)
	return g, s, a, b, t
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	b := g.AddNode("x")
	if a != b {
		t.Fatalf("AddNode not idempotent: %d vs %d", a, b)
	}
	if g.N() != 1 {
		t.Fatalf("N = %d, want 1", g.N())
	}
}

func TestLookup(t *testing.T) {
	g := New()
	a := g.AddNode("x")
	if got := g.Lookup("x"); got != a {
		t.Fatalf("Lookup(x) = %d, want %d", got, a)
	}
	if got := g.Lookup("missing"); got != Invalid {
		t.Fatalf("Lookup(missing) = %d, want Invalid", got)
	}
}

func TestAddEdgeCollapsesParallel(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b)
	g.AddEdge(a, b)
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if len(g.Out(a)) != 1 || len(g.In(b)) != 1 {
		t.Fatalf("adjacency duplicated")
	}
}

func TestRemoveEdge(t *testing.T) {
	g, s, a, _, _ := diamond()
	if !g.RemoveEdge(s, a) {
		t.Fatal("RemoveEdge returned false for existing edge")
	}
	if g.RemoveEdge(s, a) {
		t.Fatal("RemoveEdge returned true for missing edge")
	}
	if g.HasEdge(s, a) {
		t.Fatal("edge still present after removal")
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
}

func TestCloneIndependence(t *testing.T) {
	g, s, a, _, _ := diamond()
	c := g.Clone()
	c.RemoveEdge(s, a)
	if !g.HasEdge(s, a) {
		t.Fatal("mutation of clone affected original")
	}
	if c.N() != g.N() {
		t.Fatalf("clone N = %d, want %d", c.N(), g.N())
	}
}

func TestTopoSortOrder(t *testing.T) {
	g, s, a, b, tt := diamond()
	order := mustTopo(t, g)
	pos := make(map[NodeID]int)
	for i, u := range order {
		pos[u] = i
	}
	for _, e := range []Edge{{s, a}, {s, b}, {a, tt}, {b, tt}} {
		if pos[e.U] >= pos[e.V] {
			t.Fatalf("topo order violates edge %v", e)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := g.TopoSort(); err != ErrCycle {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic = true on cyclic graph")
	}
}

func TestReachable(t *testing.T) {
	g, s, a, b, tt := diamond()
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{s, tt, true}, {s, a, true}, {a, b, false}, {tt, s, false}, {a, a, true},
	}
	for _, c := range cases {
		if got := g.Reachable(c.u, c.v); got != c.want {
			t.Errorf("Reachable(%s,%s) = %v, want %v", g.Name(c.u), g.Name(c.v), got, c.want)
		}
	}
	_ = b
}

func TestReachableFromAndTo(t *testing.T) {
	g, s, a, b, tt := diamond()
	from := g.ReachableFrom(s)
	if len(from) != 4 {
		t.Fatalf("ReachableFrom(s) = %v, want 4 nodes", from)
	}
	to := g.ReachingTo(tt)
	if len(to) != 4 {
		t.Fatalf("ReachingTo(t) = %v, want 4 nodes", to)
	}
	fromA := g.ReachableFrom(a)
	if len(fromA) != 2 { // a, t
		t.Fatalf("ReachableFrom(a) = %v, want [a t]", fromA)
	}
	_ = b
}

func TestNodesOnPaths(t *testing.T) {
	g := New()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b") // off-path node
	tt := g.AddNode("t")
	g.AddEdge(s, a)
	g.AddEdge(a, tt)
	g.AddEdge(s, b) // b doesn't reach t
	on := g.NodesOnPaths(s, tt)
	if len(on) != 3 {
		t.Fatalf("NodesOnPaths = %v, want s,a,t", on)
	}
	for _, u := range on {
		if u == b {
			t.Fatal("off-path node included")
		}
	}
	if got := g.NodesOnPaths(tt, s); got != nil {
		t.Fatalf("NodesOnPaths(t,s) = %v, want nil", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := New()
	n := make([]NodeID, 5)
	for i := range n {
		n[i] = g.AddNode(string(rune('a' + i)))
	}
	// a->b->c->e and a->d->e: both length... a-b-c-e=3 edges, a-d-e=2 edges.
	g.AddEdge(n[0], n[1])
	g.AddEdge(n[1], n[2])
	g.AddEdge(n[2], n[4])
	g.AddEdge(n[0], n[3])
	g.AddEdge(n[3], n[4])
	p := g.ShortestPath(n[0], n[4])
	if len(p) != 3 {
		t.Fatalf("ShortestPath len = %d (%v), want 3", len(p), p)
	}
	if p[0] != n[0] || p[2] != n[4] {
		t.Fatalf("path endpoints wrong: %v", p)
	}
	if got := g.ShortestPath(n[4], n[0]); got != nil {
		t.Fatalf("ShortestPath backwards = %v, want nil", got)
	}
	if got := g.ShortestPath(n[2], n[2]); len(got) != 1 {
		t.Fatalf("self path = %v, want single node", got)
	}
}

func TestLongestPathLen(t *testing.T) {
	g, _, _, _, _ := diamond()
	if got := g.LongestPathLen(); got != 2 {
		t.Fatalf("LongestPathLen = %d, want 2", got)
	}
	c := New()
	a, b := c.AddNode("a"), c.AddNode("b")
	c.AddEdge(a, b)
	c.AddEdge(b, a)
	if got := c.LongestPathLen(); got != -1 {
		t.Fatalf("LongestPathLen on cycle = %d, want -1", got)
	}
}

func TestCountPaths(t *testing.T) {
	g, s, _, _, tt := diamond()
	if got := g.CountPaths(s, tt, 0); got != 2 {
		t.Fatalf("CountPaths = %d, want 2", got)
	}
	if got := g.CountPaths(tt, s, 0); got != 0 {
		t.Fatalf("CountPaths reverse = %d, want 0", got)
	}
}

func TestSourcesSinks(t *testing.T) {
	g, s, _, _, tt := diamond()
	if src := g.Sources(); len(src) != 1 || src[0] != s {
		t.Fatalf("Sources = %v", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != tt {
		t.Fatalf("Sinks = %v", snk)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, s, a, b, tt := diamond()
	sub, remap := g.InducedSubgraph([]NodeID{s, a, tt})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub n=%d m=%d, want 3,2", sub.N(), sub.M())
	}
	if remap[b] != Invalid {
		t.Fatal("dropped node has valid remap")
	}
	if !sub.HasEdge(remap[s], remap[a]) || !sub.HasEdge(remap[a], remap[tt]) {
		t.Fatal("expected edges missing in subgraph")
	}
	if sub.Name(remap[a]) != "a" {
		t.Fatal("names not preserved")
	}
}

func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(nodeName(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestClosureMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 30, 0.1)
		cl, err := NewClosure(g)
		if err != nil {
			t.Fatalf("NewClosure: %v", err)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				want := g.Reachable(NodeID(u), NodeID(v))
				if got := cl.Reach(NodeID(u), NodeID(v)); got != want {
					t.Fatalf("trial %d: closure(%d,%d)=%v dfs=%v", trial, u, v, got, want)
				}
			}
		}
	}
}

func TestIntervalIndexMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(rng, 30, 0.08)
		ix, err := NewIntervalIndex(g)
		if err != nil {
			t.Fatalf("NewIntervalIndex: %v", err)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				want := g.Reachable(NodeID(u), NodeID(v))
				if got := ix.Reach(NodeID(u), NodeID(v)); got != want {
					t.Fatalf("trial %d: interval(%d,%d)=%v dfs=%v", trial, u, v, got, want)
				}
			}
		}
	}
}

func TestClosureCyclic(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddEdge(a, b)
	g.AddEdge(b, a)
	if _, err := NewClosure(g); err == nil {
		t.Fatal("NewClosure accepted cyclic graph")
	}
	if _, err := NewIntervalIndex(g); err == nil {
		t.Fatal("NewIntervalIndex accepted cyclic graph")
	}
}

func TestClosurePairs(t *testing.T) {
	g, _, _, _, _ := diamond()
	cl, _ := NewClosure(g)
	// s->a, s->b, s->t, a->t, b->t = 5 ordered pairs.
	if got := cl.Pairs(); got != 5 {
		t.Fatalf("Pairs = %d, want 5", got)
	}
}
