package graph

// Max-flow (Dinic) and minimum-cut utilities. Structural privacy uses
// minimum s-t edge cuts to delete the cheapest set of dataflow edges
// that severs every path between a hidden pair of modules, and minimum
// vertex cuts for node-deletion variants.

const flowInf = int64(1) << 60

type flowEdge struct {
	to   int
	cap  int64
	rev  int // index of reverse edge in adj[to]
	orig bool
}

// FlowNetwork is a capacitated directed graph for max-flow computation.
type FlowNetwork struct {
	adj [][]flowEdge
}

// NewFlowNetwork creates a network with n nodes and no edges.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{adj: make([][]flowEdge, n)}
}

// AddEdge adds a directed edge u->v with the given capacity.
func (f *FlowNetwork) AddEdge(u, v int, cap int64) {
	f.adj[u] = append(f.adj[u], flowEdge{to: v, cap: cap, rev: len(f.adj[v]), orig: true})
	f.adj[v] = append(f.adj[v], flowEdge{to: u, cap: 0, rev: len(f.adj[u]) - 1})
}

// MaxFlow computes the maximum s-t flow using Dinic's algorithm,
// mutating residual capacities in place.
func (f *FlowNetwork) MaxFlow(s, t int) int64 {
	var total int64
	n := len(f.adj)
	level := make([]int, n)
	iter := make([]int, n)
	for {
		// BFS to build level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range f.adj[u] {
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := f.dfsAugment(s, t, flowInf, level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
}

func (f *FlowNetwork) dfsAugment(u, t int, limit int64, level, iter []int) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(f.adj[u]); iter[u]++ {
		e := &f.adj[u][iter[u]]
		if e.cap <= 0 || level[e.to] != level[u]+1 {
			continue
		}
		amt := limit
		if e.cap < amt {
			amt = e.cap
		}
		pushed := f.dfsAugment(e.to, t, amt, level, iter)
		if pushed > 0 {
			e.cap -= pushed
			f.adj[e.to][e.rev].cap += pushed
			return pushed
		}
	}
	return 0
}

// minCutSide returns the set of nodes reachable from s in the residual
// network (after MaxFlow has run).
func (f *FlowNetwork) minCutSide(s int) []bool {
	side := make([]bool, len(f.adj))
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range f.adj[u] {
			if e.cap > 0 && !side[e.to] {
				side[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return side
}

// MinEdgeCut returns a minimum-cardinality set of edges whose removal
// disconnects t from s in g, using unit capacities. Optional weights
// (same length as g.Edges(), matched by edge identity via the weight
// function) may be supplied through weightFn; nil means unit weights.
// It returns nil if t is not reachable from s.
func MinEdgeCut(g *Graph, s, t NodeID, weightFn func(Edge) int64) []Edge {
	if !g.Reachable(s, t) {
		return nil
	}
	n := g.N()
	f := NewFlowNetwork(n)
	for _, e := range g.Edges() {
		w := int64(1)
		if weightFn != nil {
			w = weightFn(e)
		}
		f.AddEdge(int(e.U), int(e.V), w)
	}
	f.MaxFlow(int(s), int(t))
	side := f.minCutSide(int(s))
	var cut []Edge
	for _, e := range g.Edges() {
		if side[e.U] && !side[e.V] {
			cut = append(cut, e)
		}
	}
	return cut
}

// MinVertexCut returns a minimum set of internal vertices (excluding s
// and t) whose removal disconnects t from s. It uses the standard
// node-splitting reduction: each vertex v becomes v_in -> v_out with
// capacity weight(v) (default 1); original edges get infinite capacity.
// If t is directly adjacent to s by an edge, no vertex cut exists and
// nil plus ok=false is returned.
func MinVertexCut(g *Graph, s, t NodeID, weightFn func(NodeID) int64) (cut []NodeID, ok bool) {
	if !g.Reachable(s, t) {
		return nil, true // already disconnected: empty cut suffices
	}
	if g.HasEdge(s, t) {
		return nil, false
	}
	n := g.N()
	// Node u maps to in-node 2u and out-node 2u+1.
	f := NewFlowNetwork(2 * n)
	for u := 0; u < n; u++ {
		w := int64(1)
		if weightFn != nil {
			w = weightFn(NodeID(u))
		}
		if NodeID(u) == s || NodeID(u) == t {
			w = flowInf
		}
		f.AddEdge(2*u, 2*u+1, w)
	}
	for _, e := range g.Edges() {
		f.AddEdge(2*int(e.U)+1, 2*int(e.V), flowInf)
	}
	f.MaxFlow(2*int(s), 2*int(t)+1)
	side := f.minCutSide(2 * int(s))
	for u := 0; u < n; u++ {
		if NodeID(u) == s || NodeID(u) == t {
			continue
		}
		if side[2*u] && !side[2*u+1] {
			cut = append(cut, NodeID(u))
		}
	}
	return cut, true
}
