package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DotOptions controls DOT rendering.
type DotOptions struct {
	Name      string              // digraph name; default "G"
	NodeAttrs func(NodeID) string // extra attrs per node, e.g. `shape=box`
	EdgeAttrs func(Edge) string   // extra attrs per edge
	Rankdir   string              // e.g. "TB", "LR"
}

// DOT renders the graph in Graphviz DOT format with deterministic
// ordering, suitable for regenerating the paper's figures.
func (g *Graph) DOT(opt DotOptions) string {
	name := opt.Name
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	if opt.Rankdir != "" {
		fmt.Fprintf(&b, "  rankdir=%s;\n", opt.Rankdir)
	}
	ids := make([]int, g.N())
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	for _, i := range ids {
		attrs := ""
		if opt.NodeAttrs != nil {
			attrs = opt.NodeAttrs(NodeID(i))
		}
		if attrs != "" {
			fmt.Fprintf(&b, "  %q [%s];\n", g.names[i], attrs)
		} else {
			fmt.Fprintf(&b, "  %q;\n", g.names[i])
		}
	}
	for _, e := range g.Edges() {
		attrs := ""
		if opt.EdgeAttrs != nil {
			attrs = opt.EdgeAttrs(e)
		}
		if attrs != "" {
			fmt.Fprintf(&b, "  %q -> %q [%s];\n", g.names[e.U], g.names[e.V], attrs)
		} else {
			fmt.Fprintf(&b, "  %q -> %q;\n", g.names[e.U], g.names[e.V])
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders a terse text listing of the graph: one line per node
// with its successors, in topological order when acyclic, id order
// otherwise.
func (g *Graph) ASCII() string {
	order, err := g.TopoSort()
	if err != nil {
		order = make([]NodeID, g.N())
		for i := range order {
			order[i] = NodeID(i)
		}
	}
	var b strings.Builder
	for _, u := range order {
		succ := append([]NodeID(nil), g.Out(u)...)
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		names := make([]string, len(succ))
		for i, v := range succ {
			names[i] = g.Name(v)
		}
		if len(names) == 0 {
			fmt.Fprintf(&b, "%s\n", g.Name(u))
		} else {
			fmt.Fprintf(&b, "%s -> %s\n", g.Name(u), strings.Join(names, ", "))
		}
	}
	return b.String()
}
