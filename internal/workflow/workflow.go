// Package workflow models hierarchical workflow specifications as in
// Davidson et al., "Enabling Privacy in Provenance-Aware Workflow
// Systems" (CIDR 2011), Section 2: graphs whose nodes are modules and
// whose edges carry named data attributes, where a composite module is
// defined (via a τ-expansion) by a subworkflow. The τ relationships form
// an expansion hierarchy; prefixes of that hierarchy define views of the
// specification.
package workflow

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a module.
type Kind int

const (
	// Atomic modules have opaque behaviour and no expansion.
	Atomic Kind = iota
	// Composite modules are defined by a subworkflow (τ-expansion).
	Composite
	// Source is the distinguished workflow input node (I in the paper).
	Source
	// Sink is the distinguished workflow output node (O in the paper).
	Sink
)

func (k Kind) String() string {
	switch k {
	case Atomic:
		return "atomic"
	case Composite:
		return "composite"
	case Source:
		return "source"
	case Sink:
		return "sink"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Module is a node of a workflow graph. Inputs and Outputs name the
// data attributes the module consumes and produces; dataflow edges carry
// subsets of these attribute names.
type Module struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Kind     Kind     `json:"kind"`
	Sub      string   `json:"sub,omitempty"` // subworkflow id when Kind == Composite
	Inputs   []string `json:"inputs,omitempty"`
	Outputs  []string `json:"outputs,omitempty"`
	Keywords []string `json:"keywords,omitempty"`
}

// AllKeywords returns the module's searchable terms: its explicit
// Keywords plus the lower-cased tokens of its Name.
func (m *Module) AllKeywords() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(s string) {
		s = strings.ToLower(strings.TrimSpace(s))
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, t := range strings.FieldsFunc(m.Name, func(r rune) bool {
		return r == ' ' || r == '-' || r == '_' || r == ',' || r == '/'
	}) {
		add(t)
	}
	for _, k := range m.Keywords {
		add(k)
	}
	return out
}

// Consumes reports whether the module consumes attribute a.
func (m *Module) Consumes(a string) bool { return containsStr(m.Inputs, a) }

// Produces reports whether the module produces attribute a.
func (m *Module) Produces(a string) bool { return containsStr(m.Outputs, a) }

func containsStr(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// Edge is a dataflow edge between two modules of the same workflow,
// carrying the named data attributes.
type Edge struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	Data []string `json:"data"`
}

// Workflow is a single (sub)workflow graph: a set of modules and the
// dataflow edges between them.
type Workflow struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"`
	Modules []*Module `json:"modules"`
	Edges   []Edge    `json:"edges"`
}

// Module returns the module with the given id, or nil.
func (w *Workflow) Module(id string) *Module {
	for _, m := range w.Modules {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// Entries returns the modules of w that consume attribute a and have no
// incoming edge within w carrying a — i.e. the modules an external
// producer of a should be wired to when w is spliced into its parent.
func (w *Workflow) Entries(a string) []*Module {
	fed := make(map[string]bool)
	for _, e := range w.Edges {
		if containsStr(e.Data, a) {
			fed[e.To] = true
		}
	}
	var out []*Module
	for _, m := range w.Modules {
		if m.Consumes(a) && !fed[m.ID] {
			out = append(out, m)
		}
	}
	return out
}

// Exits returns the modules of w that produce attribute a and have no
// outgoing edge within w carrying a — the modules an external consumer
// of a should be wired from.
func (w *Workflow) Exits(a string) []*Module {
	drained := make(map[string]bool)
	for _, e := range w.Edges {
		if containsStr(e.Data, a) {
			drained[e.From] = true
		}
	}
	var out []*Module
	for _, m := range w.Modules {
		if m.Produces(a) && !drained[m.ID] {
			out = append(out, m)
		}
	}
	return out
}

// Spec is a complete hierarchical workflow specification: a root
// workflow plus the subworkflows reachable from it through composite
// modules.
type Spec struct {
	ID        string               `json:"id"`
	Name      string               `json:"name"`
	Root      string               `json:"root"`
	Workflows map[string]*Workflow `json:"workflows"`
}

// RootWorkflow returns the root workflow.
func (s *Spec) RootWorkflow() *Workflow { return s.Workflows[s.Root] }

// WorkflowIDs returns all workflow ids in sorted order.
func (s *Spec) WorkflowIDs() []string {
	ids := make([]string, 0, len(s.Workflows))
	for id := range s.Workflows {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// FindModule returns the module with the given id and the workflow that
// contains it, or (nil, nil).
func (s *Spec) FindModule(id string) (*Module, *Workflow) {
	for _, wid := range s.WorkflowIDs() {
		w := s.Workflows[wid]
		if m := w.Module(id); m != nil {
			return m, w
		}
	}
	return nil, nil
}

// Validate checks structural well-formedness:
//   - the root workflow exists;
//   - module ids are unique across the whole spec;
//   - every edge references modules of its workflow, and its data labels
//     are produced by the source and consumed by the target;
//   - every composite module references an existing subworkflow;
//   - the τ-relationships form a tree rooted at Root (the expansion
//     hierarchy), with every workflow reachable;
//   - every workflow graph is acyclic;
//   - for every composite module, each of its input attributes has an
//     entry in its subworkflow and each output attribute an exit.
func (s *Spec) Validate() error {
	if s.Workflows[s.Root] == nil {
		return fmt.Errorf("workflow: spec %s: root workflow %q missing", s.ID, s.Root)
	}
	seen := make(map[string]string) // module id -> workflow id
	for _, wid := range s.WorkflowIDs() {
		w := s.Workflows[wid]
		if w.ID != wid {
			return fmt.Errorf("workflow: spec %s: workflow key %q has id %q", s.ID, wid, w.ID)
		}
		for _, m := range w.Modules {
			if prev, dup := seen[m.ID]; dup {
				return fmt.Errorf("workflow: module id %q appears in both %s and %s", m.ID, prev, wid)
			}
			seen[m.ID] = wid
		}
	}
	parent := make(map[string]string) // sub workflow -> parent workflow
	for _, wid := range s.WorkflowIDs() {
		w := s.Workflows[wid]
		for _, m := range w.Modules {
			if m.Kind != Composite {
				if m.Sub != "" {
					return fmt.Errorf("workflow: non-composite module %s has expansion %q", m.ID, m.Sub)
				}
				continue
			}
			sub := s.Workflows[m.Sub]
			if sub == nil {
				return fmt.Errorf("workflow: composite %s references missing subworkflow %q", m.ID, m.Sub)
			}
			if p, dup := parent[m.Sub]; dup {
				return fmt.Errorf("workflow: subworkflow %s expanded by modules in both %s and %s", m.Sub, p, wid)
			}
			parent[m.Sub] = wid
			for _, a := range m.Inputs {
				if len(sub.Entries(a)) == 0 {
					return fmt.Errorf("workflow: subworkflow %s has no entry for input %q of %s", m.Sub, a, m.ID)
				}
			}
			for _, a := range m.Outputs {
				if len(sub.Exits(a)) == 0 {
					return fmt.Errorf("workflow: subworkflow %s has no exit for output %q of %s", m.Sub, a, m.ID)
				}
			}
		}
		if err := s.validateEdges(w); err != nil {
			return err
		}
		if _, err := BuildGraph(w); err != nil {
			return fmt.Errorf("workflow: %s: %w", wid, err)
		}
	}
	// Hierarchy must be a tree rooted at Root covering all workflows.
	if _, ok := parent[s.Root]; ok {
		return fmt.Errorf("workflow: root %s appears as a subworkflow", s.Root)
	}
	for _, wid := range s.WorkflowIDs() {
		if wid == s.Root {
			continue
		}
		// Walk up to the root, guarding against cycles.
		cur, steps := wid, 0
		for cur != s.Root {
			p, ok := parent[cur]
			if !ok {
				return fmt.Errorf("workflow: workflow %s unreachable from root", wid)
			}
			cur = p
			if steps++; steps > len(s.Workflows) {
				return fmt.Errorf("workflow: τ-expansion cycle involving %s", wid)
			}
		}
	}
	return nil
}

func (s *Spec) validateEdges(w *Workflow) error {
	for _, e := range w.Edges {
		from, to := w.Module(e.From), w.Module(e.To)
		if from == nil || to == nil {
			return fmt.Errorf("workflow: %s: edge %s->%s references missing module", w.ID, e.From, e.To)
		}
		if len(e.Data) == 0 {
			return fmt.Errorf("workflow: %s: edge %s->%s carries no data", w.ID, e.From, e.To)
		}
		for _, a := range e.Data {
			if !from.Produces(a) {
				return fmt.Errorf("workflow: %s: edge %s->%s carries %q not produced by %s", w.ID, e.From, e.To, a, e.From)
			}
			if !to.Consumes(a) {
				return fmt.Errorf("workflow: %s: edge %s->%s carries %q not consumed by %s", w.ID, e.From, e.To, a, e.To)
			}
		}
	}
	return nil
}
