package workflow

import (
	"fmt"
	"strings"
)

// Stats summarizes a specification's shape — used by the CLIs and handy
// when sizing privacy analyses (e.g. whether exhaustive secure-view
// search is feasible).
type Stats struct {
	Workflows  int
	Modules    int
	Atomic     int
	Composite  int
	Edges      int
	Attributes int
	// Depth is the expansion-hierarchy depth (root = 0 ⇒ flat spec).
	Depth int
	// FullModules is the module count of the full expansion.
	FullModules int
	// LongestPath is the edge count of the longest dataflow path in the
	// full expansion.
	LongestPath int
}

// ComputeStats derives Stats for a validated spec.
func ComputeStats(s *Spec) (Stats, error) {
	var st Stats
	attrs := make(map[string]bool)
	for _, wid := range s.WorkflowIDs() {
		w := s.Workflows[wid]
		st.Workflows++
		st.Edges += len(w.Edges)
		for _, m := range w.Modules {
			st.Modules++
			switch m.Kind {
			case Atomic:
				st.Atomic++
			case Composite:
				st.Composite++
			}
			for _, a := range m.Inputs {
				attrs[a] = true
			}
			for _, a := range m.Outputs {
				attrs[a] = true
			}
		}
	}
	st.Attributes = len(attrs)
	h, err := NewHierarchy(s)
	if err != nil {
		return st, err
	}
	for _, wid := range h.All() {
		if d := h.Depth(wid); d > st.Depth {
			st.Depth = d
		}
	}
	v, err := Expand(s, FullPrefix(h))
	if err != nil {
		return st, err
	}
	st.FullModules = len(v.Modules)
	st.LongestPath = v.Graph().LongestPathLen()
	return st, nil
}

// String renders the stats on one line.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflows=%d modules=%d (atomic=%d composite=%d) edges=%d attrs=%d depth=%d full=%d longest-path=%d",
		st.Workflows, st.Modules, st.Atomic, st.Composite, st.Edges,
		st.Attributes, st.Depth, st.FullModules, st.LongestPath)
	return b.String()
}
