package workflow

import (
	"strings"
	"testing"
)

// tinySpec: root R with source I -> composite C(->S) -> sink O;
// S contains a -> b.
func tinySpec(t *testing.T) *Spec {
	t.Helper()
	s, err := NewBuilder("tiny", "Tiny", "R").
		Workflow("R", "Root").
		Source("I", "x").
		Composite("C", "Do Stuff", "S", []string{"x"}, []string{"y"}).
		Sink("O", "y").
		Edge("I", "C", "x").
		Edge("C", "O", "y").
		Workflow("S", "Stuff").
		Atomic("a", "Step A", []string{"x"}, []string{"mid"}).
		Atomic("b", "Step B", []string{"mid"}, []string{"y"}).
		Edge("a", "b", "mid").
		Build()
	if err != nil {
		t.Fatalf("tinySpec: %v", err)
	}
	return s
}

func TestTinySpecValidates(t *testing.T) {
	s := tinySpec(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFindModule(t *testing.T) {
	s := tinySpec(t)
	m, w := s.FindModule("a")
	if m == nil || w == nil || w.ID != "S" || m.Name != "Step A" {
		t.Fatalf("FindModule(a) = %v in %v", m, w)
	}
	if m, _ := s.FindModule("nope"); m != nil {
		t.Fatal("FindModule(nope) found something")
	}
}

func TestEntriesExits(t *testing.T) {
	s := tinySpec(t)
	sub := s.Workflows["S"]
	entries := sub.Entries("x")
	if len(entries) != 1 || entries[0].ID != "a" {
		t.Fatalf("Entries(x) = %v", entries)
	}
	exits := sub.Exits("y")
	if len(exits) != 1 || exits[0].ID != "b" {
		t.Fatalf("Exits(y) = %v", exits)
	}
	// mid is both produced and consumed internally: not an exit of b?
	// a produces mid, and edge a->b carries it, so a is not an exit for mid.
	if got := sub.Exits("mid"); len(got) != 0 {
		t.Fatalf("Exits(mid) = %v, want none", got)
	}
}

func TestValidateRejectsBadEdge(t *testing.T) {
	_, err := NewBuilder("bad", "Bad", "R").
		Workflow("R", "Root").
		Source("I", "x").
		Sink("O", "y").
		Edge("I", "O", "y"). // I does not produce y
		Build()
	if err == nil || !strings.Contains(err.Error(), "not produced") {
		t.Fatalf("err = %v, want 'not produced'", err)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	_, err := NewBuilder("cyc", "Cyc", "R").
		Workflow("R", "Root").
		Atomic("a", "A", []string{"y"}, []string{"x"}).
		Atomic("b", "B", []string{"x"}, []string{"y"}).
		Edge("a", "b", "x").
		Edge("b", "a", "y").
		Build()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle error", err)
	}
}

func TestValidateRejectsMissingSub(t *testing.T) {
	_, err := NewBuilder("ms", "MS", "R").
		Workflow("R", "Root").
		Composite("C", "C", "NOPE", []string{"x"}, []string{"y"}).
		Build()
	if err == nil || !strings.Contains(err.Error(), "missing subworkflow") {
		t.Fatalf("err = %v, want missing-subworkflow error", err)
	}
}

func TestValidateRejectsDuplicateModuleIDs(t *testing.T) {
	_, err := NewBuilder("dup", "Dup", "R").
		Workflow("R", "Root").
		Composite("C", "C", "S", []string{"x"}, []string{"y"}).
		Workflow("S", "Sub").
		Atomic("C", "Clash", []string{"x"}, []string{"y"}).
		Build()
	if err == nil {
		t.Fatal("expected duplicate-id error")
	}
}

func TestValidateRejectsSharedSubworkflow(t *testing.T) {
	_, err := NewBuilder("shared", "Shared", "R").
		Workflow("R", "Root").
		Source("I", "x").
		Composite("C1", "C1", "S", []string{"x"}, []string{"y"}).
		Composite("C2", "C2", "S", []string{"y"}, []string{"z"}).
		Sink("O", "z").
		Edge("I", "C1", "x").
		Edge("C1", "C2", "y").
		Edge("C2", "O", "z").
		Workflow("S", "Sub").
		Atomic("a", "A", []string{"x", "y"}, []string{"y", "z"}).
		Build()
	if err == nil || !strings.Contains(err.Error(), "expanded by modules in both") {
		t.Fatalf("err = %v, want shared-subworkflow error", err)
	}
}

func TestValidateRejectsUnreachableWorkflow(t *testing.T) {
	b := NewBuilder("orphan", "Orphan", "R").
		Workflow("R", "Root").
		Source("I", "x").
		Sink("O", "x").
		Edge("I", "O", "x").
		Workflow("Z", "Orphan").
		Atomic("z", "Z", []string{"q"}, []string{"r"})
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v, want unreachable error", err)
	}
}

func TestValidateRejectsMissingEntry(t *testing.T) {
	_, err := NewBuilder("ne", "NE", "R").
		Workflow("R", "Root").
		Source("I", "x").
		Composite("C", "C", "S", []string{"x"}, []string{"y"}).
		Sink("O", "y").
		Edge("I", "C", "x").
		Edge("C", "O", "y").
		Workflow("S", "Sub").
		Atomic("a", "A", []string{"other"}, []string{"y"}).
		Build()
	if err == nil || !strings.Contains(err.Error(), "no entry") {
		t.Fatalf("err = %v, want no-entry error", err)
	}
}

func TestAllKeywords(t *testing.T) {
	m := &Module{Name: "Query OMIM Database", Keywords: []string{"genetics", "query"}}
	kws := m.AllKeywords()
	want := map[string]bool{"query": true, "omim": true, "database": true, "genetics": true}
	if len(kws) != len(want) {
		t.Fatalf("AllKeywords = %v", kws)
	}
	for _, k := range kws {
		if !want[k] {
			t.Fatalf("unexpected keyword %q in %v", k, kws)
		}
	}
}

func TestHierarchy(t *testing.T) {
	s := DiseaseSusceptibility()
	h, err := NewHierarchy(s)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	if h.Root != "W1" {
		t.Fatalf("root = %s", h.Root)
	}
	if got := h.Parent("W4"); got != "W2" {
		t.Fatalf("Parent(W4) = %s, want W2", got)
	}
	if got := h.Parent("W2"); got != "W1" {
		t.Fatalf("Parent(W2) = %s, want W1", got)
	}
	if got := h.Parent("W3"); got != "W1" {
		t.Fatalf("Parent(W3) = %s, want W1", got)
	}
	if got := h.Depth("W4"); got != 2 {
		t.Fatalf("Depth(W4) = %d, want 2", got)
	}
	if got := h.ViaModule("W3"); got != "M2" {
		t.Fatalf("ViaModule(W3) = %s, want M2", got)
	}
	kids := h.Children("W1")
	if len(kids) != 2 || kids[0] != "W2" || kids[1] != "W3" {
		t.Fatalf("Children(W1) = %v", kids)
	}
	all := h.All()
	if len(all) != 4 || all[0] != "W1" {
		t.Fatalf("All = %v", all)
	}
	ascii := h.ASCII()
	if !strings.Contains(ascii, "W1\n  W2\n    W4\n  W3\n") {
		t.Fatalf("ASCII =\n%s", ascii)
	}
}

func TestPrefixValidate(t *testing.T) {
	s := DiseaseSusceptibility()
	h, _ := NewHierarchy(s)
	cases := []struct {
		p  Prefix
		ok bool
	}{
		{NewPrefix("W1"), true},
		{NewPrefix("W1", "W2"), true},
		{NewPrefix("W1", "W2", "W4"), true},
		{NewPrefix("W1", "W3"), true},
		{NewPrefix("W1", "W2", "W3", "W4"), true},
		{NewPrefix("W2"), false},          // missing root
		{NewPrefix("W1", "W4"), false},    // not closed: W2 absent
		{NewPrefix("W1", "BOGUS"), false}, // unknown workflow
	}
	for i, c := range cases {
		err := c.p.Validate(h)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%v) err=%v, want ok=%v", i, c.p.IDs(), err, c.ok)
		}
	}
}

func TestPrefixesEnumeration(t *testing.T) {
	s := DiseaseSusceptibility()
	h, _ := NewHierarchy(s)
	ps := Prefixes(h)
	// Legal prefixes of the tree W1(W2(W4),W3):
	// {W1}, {W1,W2}, {W1,W3}, {W1,W2,W4}, {W1,W2,W3}, {W1,W2,W3,W4} = 6.
	if len(ps) != 6 {
		var got []string
		for _, p := range ps {
			got = append(got, strings.Join(p.IDs(), "+"))
		}
		t.Fatalf("Prefixes = %d (%v), want 6", len(ps), got)
	}
	for _, p := range ps {
		if err := p.Validate(h); err != nil {
			t.Fatalf("enumerated prefix %v invalid: %v", p.IDs(), err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := DiseaseSusceptibility()
	data, err := MarshalSpec(s)
	if err != nil {
		t.Fatalf("MarshalSpec: %v", err)
	}
	s2, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatalf("UnmarshalSpec: %v", err)
	}
	if s2.ID != s.ID || len(s2.Workflows) != len(s.Workflows) {
		t.Fatalf("round trip mismatch: %v", s2)
	}
	m, _ := s2.FindModule("M13")
	if m == nil || m.Name != "Reformat" {
		t.Fatalf("module M13 lost in round trip: %v", m)
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	if _, err := UnmarshalSpec([]byte(`{"id":"x","root":"missing","workflows":{}}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := UnmarshalSpec([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestComputeStats(t *testing.T) {
	s := DiseaseSusceptibility()
	st, err := ComputeStats(s)
	if err != nil {
		t.Fatalf("ComputeStats: %v", err)
	}
	if st.Workflows != 4 {
		t.Fatalf("workflows = %d", st.Workflows)
	}
	if st.Modules != 17 { // I,O + M1..M15
		t.Fatalf("modules = %d", st.Modules)
	}
	if st.Composite != 3 { // M1, M2, M4
		t.Fatalf("composite = %d", st.Composite)
	}
	if st.Depth != 2 { // W1 -> W2 -> W4
		t.Fatalf("depth = %d", st.Depth)
	}
	if st.FullModules != 14 {
		t.Fatalf("full modules = %d", st.FullModules)
	}
	// Longest dataflow path in the full expansion:
	// I->M3->M5->M6->M8->M9->M12->M13->M11->M15->O = 10 edges.
	if st.LongestPath != 10 {
		t.Fatalf("longest path = %d", st.LongestPath)
	}
	if !strings.Contains(st.String(), "workflows=4") {
		t.Fatalf("String = %s", st)
	}
}
