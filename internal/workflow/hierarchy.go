package workflow

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/graph"
)

// Hierarchy is the expansion hierarchy of a specification (Fig. 3 of the
// paper): a tree whose nodes are workflow ids, with W' a child of W when
// some composite module of W expands to W'.
type Hierarchy struct {
	Root     string
	parent   map[string]string
	children map[string][]string
	// viaModule records which composite module introduces each child.
	viaModule map[string]string
}

// NewHierarchy derives the expansion hierarchy from a validated spec.
func NewHierarchy(s *Spec) (*Hierarchy, error) {
	h := &Hierarchy{
		Root:      s.Root,
		parent:    make(map[string]string),
		children:  make(map[string][]string),
		viaModule: make(map[string]string),
	}
	for _, wid := range s.WorkflowIDs() {
		w := s.Workflows[wid]
		for _, m := range w.Modules {
			if m.Kind != Composite {
				continue
			}
			if _, dup := h.parent[m.Sub]; dup {
				return nil, fmt.Errorf("workflow: %s has multiple parents", m.Sub)
			}
			h.parent[m.Sub] = wid
			h.children[wid] = append(h.children[wid], m.Sub)
			h.viaModule[m.Sub] = m.ID
		}
	}
	for wid := range h.children {
		sort.Strings(h.children[wid])
	}
	return h, nil
}

// Parent returns the parent workflow of wid ("" for the root).
func (h *Hierarchy) Parent(wid string) string { return h.parent[wid] }

// Children returns the child workflows of wid in sorted order.
func (h *Hierarchy) Children(wid string) []string { return h.children[wid] }

// ViaModule returns the composite module whose expansion introduces wid.
func (h *Hierarchy) ViaModule(wid string) string { return h.viaModule[wid] }

// Depth returns the number of edges from the root to wid (root = 0),
// or -1 if wid is not in the hierarchy.
func (h *Hierarchy) Depth(wid string) int {
	if wid == h.Root {
		return 0
	}
	d := 0
	for wid != h.Root {
		p, ok := h.parent[wid]
		if !ok {
			return -1
		}
		wid = p
		d++
	}
	return d
}

// All returns every workflow id in the hierarchy in BFS order from the
// root.
func (h *Hierarchy) All() []string {
	var out []string
	queue := []string{h.Root}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		out = append(out, w)
		queue = append(queue, h.children[w]...)
	}
	return out
}

// Graph returns the hierarchy as a directed graph (parent -> child).
func (h *Hierarchy) Graph() *graph.Graph {
	g := graph.New()
	for _, w := range h.All() {
		g.AddNode(w)
	}
	for _, w := range h.All() {
		for _, c := range h.children[w] {
			g.AddEdge(g.Lookup(w), g.Lookup(c))
		}
	}
	return g
}

// ASCII renders the hierarchy as an indented tree (regenerates Fig. 3).
func (h *Hierarchy) ASCII() string {
	var b strings.Builder
	var walk func(wid string, depth int)
	walk = func(wid string, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), wid)
		for _, c := range h.children[wid] {
			walk(c, depth+1)
		}
	}
	walk(h.Root, 0)
	return b.String()
}

// Prefix is a prefix of the expansion hierarchy: a set of workflow ids
// containing the root and closed under parents. Per the paper, a prefix
// determines a view of the specification in which exactly the composite
// modules whose subworkflow is in the prefix are replaced by their
// expansions.
type Prefix map[string]bool

// NewPrefix builds a Prefix from workflow ids.
func NewPrefix(ids ...string) Prefix {
	p := make(Prefix, len(ids))
	for _, id := range ids {
		p[id] = true
	}
	return p
}

// Contains reports whether wid is in the prefix.
func (p Prefix) Contains(wid string) bool { return p[wid] }

// IDs returns the prefix's workflow ids in sorted order.
func (p Prefix) IDs() []string {
	out := make([]string, 0, len(p))
	for id := range p {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Validate checks that p is a legal prefix of h: non-empty, contains the
// root, every member's parent is a member, and every member exists.
func (p Prefix) Validate(h *Hierarchy) error {
	if !p[h.Root] {
		return fmt.Errorf("workflow: prefix must contain root %s", h.Root)
	}
	for wid := range p {
		if wid == h.Root {
			continue
		}
		parent, ok := h.parent[wid]
		if !ok {
			return fmt.Errorf("workflow: prefix member %s not in hierarchy", wid)
		}
		if !p[parent] {
			return fmt.Errorf("workflow: prefix not closed: %s present but parent %s absent", wid, parent)
		}
	}
	return nil
}

// FullPrefix returns the prefix containing every workflow (the full
// expansion view).
func FullPrefix(h *Hierarchy) Prefix {
	p := make(Prefix)
	for _, w := range h.All() {
		p[w] = true
	}
	return p
}

// RootPrefix returns the minimal prefix {root}.
func RootPrefix(h *Hierarchy) Prefix { return NewPrefix(h.Root) }

// Prefixes enumerates every legal prefix of h (used by tests and the
// zoom-out search on small hierarchies). The count is exponential in the
// hierarchy size; callers should bound the hierarchy.
func Prefixes(h *Hierarchy) []Prefix {
	all := h.All()
	// Order children after parents (BFS already does), then do a simple
	// recursive inclusion respecting the parent-closure constraint.
	var out []Prefix
	var rec func(i int, cur Prefix)
	rec = func(i int, cur Prefix) {
		if i == len(all) {
			cp := make(Prefix, len(cur))
			for k := range cur {
				cp[k] = true
			}
			out = append(out, cp)
			return
		}
		wid := all[i]
		if wid == h.Root {
			cur[wid] = true
			rec(i+1, cur)
			return
		}
		// Exclude wid (and implicitly its descendants, handled by the
		// parent check below).
		rec(i+1, cur)
		if cur[h.parent[wid]] {
			cur[wid] = true
			rec(i+1, cur)
			delete(cur, wid)
		}
	}
	rec(0, make(Prefix))
	return out
}
