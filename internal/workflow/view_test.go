package workflow

import (
	"strings"
	"testing"
)

func mustExpand(t *testing.T, s *Spec, ids ...string) *View {
	t.Helper()
	v, err := Expand(s, NewPrefix(ids...))
	if err != nil {
		t.Fatalf("Expand(%v): %v", ids, err)
	}
	return v
}

func TestExpandRootPrefixIsUnexpanded(t *testing.T) {
	s := DiseaseSusceptibility()
	v := mustExpand(t, s, "W1")
	want := []string{"I", "M1", "M2", "O"}
	got := v.ModuleIDs()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("modules = %v, want %v", got, want)
	}
	g := v.Graph()
	if !g.HasEdge(g.Lookup("M1"), g.Lookup("M2")) {
		t.Fatal("edge M1->M2 missing in root view")
	}
}

func TestExpandW1W2(t *testing.T) {
	// Paper: prefix {W1,W2} replaces M1 with W2's contents (M3, M4).
	s := DiseaseSusceptibility()
	v := mustExpand(t, s, "W1", "W2")
	ids := strings.Join(v.ModuleIDs(), ",")
	if ids != "I,M2,M3,M4,O" {
		t.Fatalf("modules = %s, want I,M2,M3,M4,O", ids)
	}
	g := v.Graph()
	// I feeds M3 (entry of W2 for snps/ethnicity); M4 (exit for
	// disorders) feeds M2.
	if !g.HasEdge(g.Lookup("I"), g.Lookup("M3")) {
		t.Fatal("edge I->M3 missing")
	}
	if !g.HasEdge(g.Lookup("M4"), g.Lookup("M2")) {
		t.Fatal("edge M4->M2 missing")
	}
	if g.Lookup("M1") != -1 {
		t.Fatal("M1 still present after expansion")
	}
}

func TestFullExpansionMatchesPaper(t *testing.T) {
	// Section 2: the full expansion "yields a workflow with module names
	// I,O,M3,and M5−M15 and whose edges include one from M3 to M5 and
	// another from M8 to M9".
	s := DiseaseSusceptibility()
	h, _ := NewHierarchy(s)
	v, err := Expand(s, FullPrefix(h))
	if err != nil {
		t.Fatalf("Expand full: %v", err)
	}
	got := v.ModuleIDs()
	want := []string{"I", "M10", "M11", "M12", "M13", "M14", "M15", "M3", "M5", "M6", "M7", "M8", "M9", "O"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("modules = %v, want %v", got, want)
	}
	g := v.Graph()
	if !g.HasEdge(g.Lookup("M3"), g.Lookup("M5")) {
		t.Fatal("edge M3->M5 missing in full expansion")
	}
	if !g.HasEdge(g.Lookup("M8"), g.Lookup("M9")) {
		t.Fatal("edge M8->M9 missing in full expansion")
	}
	if !g.IsAcyclic() {
		t.Fatal("full expansion not acyclic")
	}
}

func TestExpandRejectsBadPrefix(t *testing.T) {
	s := DiseaseSusceptibility()
	if _, err := Expand(s, NewPrefix("W1", "W4")); err == nil {
		t.Fatal("non-closed prefix accepted")
	}
	if _, err := Expand(s, NewPrefix("W2")); err == nil {
		t.Fatal("rootless prefix accepted")
	}
}

func TestExpandPreservesDataLabels(t *testing.T) {
	s := DiseaseSusceptibility()
	v := mustExpand(t, s, "W1", "W2")
	var found bool
	for _, e := range v.Edges {
		if e.From == "I" && e.To == "M3" {
			found = true
			joined := strings.Join(e.Data, ",")
			if joined != "ethnicity,snps" {
				t.Fatalf("I->M3 data = %v", e.Data)
			}
		}
	}
	if !found {
		t.Fatal("I->M3 edge not found")
	}
}

func TestExpandModulePaths(t *testing.T) {
	s := DiseaseSusceptibility()
	h, _ := NewHierarchy(s)
	v, _ := Expand(s, FullPrefix(h))
	m8 := v.Module("M8")
	if m8 == nil {
		t.Fatal("M8 missing")
	}
	if strings.Join(m8.Path, "/") != "W1/W2/W4" {
		t.Fatalf("M8 path = %v, want W1/W2/W4", m8.Path)
	}
	m9 := v.Module("M9")
	if strings.Join(m9.Path, "/") != "W1/W3" {
		t.Fatalf("M9 path = %v, want W1/W3", m9.Path)
	}
}

// Property (DESIGN.md §5): every legal prefix yields an acyclic view
// whose atomic modules are a subset of the full expansion's.
func TestAllPrefixViewsAcyclicAndNested(t *testing.T) {
	s := DiseaseSusceptibility()
	h, _ := NewHierarchy(s)
	full, _ := Expand(s, FullPrefix(h))
	fullSet := make(map[string]bool)
	for _, fm := range full.Modules {
		fullSet[fm.Module.ID] = true
	}
	for _, p := range Prefixes(h) {
		v, err := Expand(s, p)
		if err != nil {
			t.Fatalf("Expand(%v): %v", p.IDs(), err)
		}
		if !v.Graph().IsAcyclic() {
			t.Fatalf("prefix %v: cyclic view", p.IDs())
		}
		for _, fm := range v.Modules {
			if fm.Module.Kind == Atomic && !fullSet[fm.Module.ID] {
				t.Fatalf("prefix %v: atomic module %s not in full expansion", p.IDs(), fm.Module.ID)
			}
		}
	}
}

func TestViewRenderings(t *testing.T) {
	s := DiseaseSusceptibility()
	v := mustExpand(t, s, "W1")
	ascii := v.ASCII()
	if !strings.Contains(ascii, "M1 -> M2") {
		t.Fatalf("ASCII missing edge:\n%s", ascii)
	}
	dot := v.DOT()
	for _, want := range []string{"doubleoctagon", `"I" -> "M1"`, "disorders"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestExpandTiny(t *testing.T) {
	s := tinySpec(t)
	v := mustExpand(t, s, "R", "S")
	ids := strings.Join(v.ModuleIDs(), ",")
	if ids != "I,O,a,b" {
		t.Fatalf("modules = %s", ids)
	}
	g := v.Graph()
	for _, e := range [][2]string{{"I", "a"}, {"a", "b"}, {"b", "O"}} {
		if !g.HasEdge(g.Lookup(e[0]), g.Lookup(e[1])) {
			t.Fatalf("edge %s->%s missing", e[0], e[1])
		}
	}
}
