package workflow

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/graph"
)

// ViewEdge is a dataflow edge of an expanded view, carrying the union of
// data attributes that flow between the two (possibly spliced) modules.
type ViewEdge struct {
	From, To string
	Data     []string
}

// FlatModule is a module of an expanded view together with the chain of
// workflow ids that contains it (root first), which records how deeply
// nested the module is.
type FlatModule struct {
	Module *Module
	Path   []string
}

// View is a view of a specification determined by a prefix of its
// expansion hierarchy: composite modules whose subworkflow is in the
// prefix are replaced by their expansions; the rest appear collapsed.
type View struct {
	Spec    *Spec
	Prefix  Prefix
	Modules []*FlatModule
	Edges   []ViewEdge
	byID    map[string]*FlatModule
}

// Expand computes the view of s determined by prefix. The prefix must be
// valid for s's hierarchy.
func Expand(s *Spec, prefix Prefix) (*View, error) {
	h, err := NewHierarchy(s)
	if err != nil {
		return nil, err
	}
	if err := prefix.Validate(h); err != nil {
		return nil, err
	}
	flat, err := expandWorkflow(s, s.Root, prefix, []string{s.Root})
	if err != nil {
		return nil, err
	}
	v := &View{
		Spec:    s,
		Prefix:  prefix,
		Modules: flat.modules,
		byID:    make(map[string]*FlatModule, len(flat.modules)),
	}
	for _, fm := range flat.modules {
		v.byID[fm.Module.ID] = fm
	}
	v.Edges = mergeEdges(flat.edges)
	return v, nil
}

// flatWorkflow is the result of recursively expanding one workflow.
type flatWorkflow struct {
	modules []*FlatModule
	edges   []ViewEdge
	// entries/exits map attribute name -> module ids at the flat level.
	entries map[string][]string
	exits   map[string][]string
}

func expandWorkflow(s *Spec, wid string, prefix Prefix, path []string) (*flatWorkflow, error) {
	w := s.Workflows[wid]
	if w == nil {
		return nil, fmt.Errorf("workflow: missing workflow %s", wid)
	}
	out := &flatWorkflow{
		entries: make(map[string][]string),
		exits:   make(map[string][]string),
	}
	// Recursively expand composite members whose subworkflow is in the
	// prefix; remember each expansion to splice edges.
	expanded := make(map[string]*flatWorkflow) // module id -> expansion
	for _, m := range w.Modules {
		if m.Kind == Composite && prefix.Contains(m.Sub) {
			subPath := append(append([]string(nil), path...), m.Sub)
			sub, err := expandWorkflow(s, m.Sub, prefix, subPath)
			if err != nil {
				return nil, err
			}
			expanded[m.ID] = sub
			out.modules = append(out.modules, sub.modules...)
			out.edges = append(out.edges, sub.edges...)
		} else {
			out.modules = append(out.modules, &FlatModule{Module: m, Path: append([]string(nil), path...)})
		}
	}
	// Splice this workflow's edges through expansions.
	for _, e := range w.Edges {
		srcSub, srcExpanded := expanded[e.From]
		dstSub, dstExpanded := expanded[e.To]
		switch {
		case !srcExpanded && !dstExpanded:
			out.edges = append(out.edges, ViewEdge{From: e.From, To: e.To, Data: append([]string(nil), e.Data...)})
		default:
			// Per-attribute wiring through expansion boundaries.
			for _, a := range e.Data {
				froms := []string{e.From}
				if srcExpanded {
					froms = srcSub.exits[a]
					if len(froms) == 0 {
						return nil, fmt.Errorf("workflow: expansion of %s has no exit for %q", e.From, a)
					}
				}
				tos := []string{e.To}
				if dstExpanded {
					tos = dstSub.entries[a]
					if len(tos) == 0 {
						return nil, fmt.Errorf("workflow: expansion of %s has no entry for %q", e.To, a)
					}
				}
				for _, f := range froms {
					for _, t := range tos {
						out.edges = append(out.edges, ViewEdge{From: f, To: t, Data: []string{a}})
					}
				}
			}
		}
	}
	// Boundary entries/exits of the flat result, mapped through
	// expansions of the original boundary modules.
	for _, m := range w.Modules {
		for _, a := range m.Inputs {
			if !moduleIsEntry(w, m, a) {
				continue
			}
			if sub, ok := expanded[m.ID]; ok {
				out.entries[a] = append(out.entries[a], sub.entries[a]...)
			} else {
				out.entries[a] = append(out.entries[a], m.ID)
			}
		}
		for _, a := range m.Outputs {
			if !moduleIsExit(w, m, a) {
				continue
			}
			if sub, ok := expanded[m.ID]; ok {
				out.exits[a] = append(out.exits[a], sub.exits[a]...)
			} else {
				out.exits[a] = append(out.exits[a], m.ID)
			}
		}
	}
	return out, nil
}

func moduleIsEntry(w *Workflow, m *Module, a string) bool {
	for _, e := range w.Edges {
		if e.To == m.ID && containsStr(e.Data, a) {
			return false
		}
	}
	return true
}

func moduleIsExit(w *Workflow, m *Module, a string) bool {
	for _, e := range w.Edges {
		if e.From == m.ID && containsStr(e.Data, a) {
			return false
		}
	}
	return true
}

// mergeEdges collapses parallel view edges, unioning their data labels,
// and returns them in deterministic order.
func mergeEdges(es []ViewEdge) []ViewEdge {
	type key struct{ f, t string }
	acc := make(map[key]map[string]bool)
	for _, e := range es {
		k := key{e.From, e.To}
		if acc[k] == nil {
			acc[k] = make(map[string]bool)
		}
		for _, a := range e.Data {
			acc[k][a] = true
		}
	}
	keys := make([]key, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].f != keys[j].f {
			return keys[i].f < keys[j].f
		}
		return keys[i].t < keys[j].t
	})
	out := make([]ViewEdge, 0, len(keys))
	for _, k := range keys {
		attrs := make([]string, 0, len(acc[k]))
		for a := range acc[k] {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		out = append(out, ViewEdge{From: k.f, To: k.t, Data: attrs})
	}
	return out
}

// Module returns the flat module with the given id, or nil.
func (v *View) Module(id string) *FlatModule { return v.byID[id] }

// ModuleIDs returns the ids of all modules in the view, sorted.
func (v *View) ModuleIDs() []string {
	ids := make([]string, 0, len(v.Modules))
	for _, fm := range v.Modules {
		ids = append(ids, fm.Module.ID)
	}
	sort.Strings(ids)
	return ids
}

// Graph returns the view as a directed graph over module ids.
func (v *View) Graph() *graph.Graph {
	g := graph.New()
	for _, fm := range v.Modules {
		g.AddNode(fm.Module.ID)
	}
	for _, e := range v.Edges {
		g.AddEdge(g.Lookup(e.From), g.Lookup(e.To))
	}
	return g
}

// BuildGraph returns the plain (unexpanded) graph of a single workflow.
func BuildGraph(w *Workflow) (*graph.Graph, error) {
	g := graph.New()
	for _, m := range w.Modules {
		g.AddNode(m.ID)
	}
	for _, e := range w.Edges {
		u, t := g.Lookup(e.From), g.Lookup(e.To)
		if u == graph.Invalid || t == graph.Invalid {
			return nil, fmt.Errorf("workflow: edge %s->%s references missing module", e.From, e.To)
		}
		g.AddEdge(u, t)
	}
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("workflow: %s contains a cycle", w.ID)
	}
	return g, nil
}

// ASCII renders the view as text: one line per edge with data labels,
// in deterministic order (used by cmd/figures for Figs. 1 and 5).
func (v *View) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view of %s, prefix {%s}\n", v.Spec.ID, strings.Join(v.Prefix.IDs(), ", "))
	fmt.Fprintf(&b, "modules: %s\n", strings.Join(v.ModuleIDs(), ", "))
	for _, e := range v.Edges {
		fmt.Fprintf(&b, "  %s -> %s  [%s]\n", e.From, e.To, strings.Join(e.Data, ","))
	}
	return b.String()
}

// DOT renders the view in Graphviz format; composite (collapsed) modules
// are drawn as double octagons, sources/sinks as circles.
func (v *View) DOT() string {
	g := v.Graph()
	kindOf := make(map[string]Kind, len(v.Modules))
	nameOf := make(map[string]string, len(v.Modules))
	for _, fm := range v.Modules {
		kindOf[fm.Module.ID] = fm.Module.Kind
		nameOf[fm.Module.ID] = fm.Module.Name
	}
	dataOf := make(map[[2]string]string, len(v.Edges))
	for _, e := range v.Edges {
		dataOf[[2]string{e.From, e.To}] = strings.Join(e.Data, ",")
	}
	return g.DOT(graph.DotOptions{
		Name:    v.Spec.ID,
		Rankdir: "TB",
		NodeAttrs: func(n graph.NodeID) string {
			id := g.Name(n)
			label := fmt.Sprintf("label=%q", id+"\\n"+nameOf[id])
			switch kindOf[id] {
			case Composite:
				return label + ",shape=doubleoctagon"
			case Source, Sink:
				return label + ",shape=circle"
			default:
				return label + ",shape=box"
			}
		},
		EdgeAttrs: func(e graph.Edge) string {
			return fmt.Sprintf("label=%q", dataOf[[2]string{g.Name(e.U), g.Name(e.V)}])
		},
	})
}
