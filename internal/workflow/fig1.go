package workflow

// DiseaseSusceptibility constructs the paper's Figure 1 specification:
// a personalized disease-susceptibility workflow with root W1 and
// τ-expansions M1→W2, M2→W3, M4→W4 (hence the Fig. 3 expansion
// hierarchy W1 → {W2, W3}? — no: W2 and W4 are subworkflows of W1 via
// M1 and (inside W2) M4; W3 is the expansion of M2).
//
// Hierarchy (Fig. 3):
//
//	W1
//	├── W2 (via M1)
//	│   └── W4 (via M4)
//	└── W3 (via M2)
//
// Data attributes follow the figure's labels: the workflow input is
// {snps, ethnicity, lifestyle, family_history, symptoms}; M1 produces
// disorders; M2 produces prognosis. The full expansion contains modules
// I, O, M3, M5–M15 with edges M3→M5 and M8→M9, exactly as stated in
// Section 2 of the paper.
func DiseaseSusceptibility() *Spec {
	b := NewBuilder("disease-susceptibility", "Personalized Disease Susceptibility", "W1")

	b.Workflow("W1", "Disease Susceptibility").
		Source("I", "snps", "ethnicity", "lifestyle", "family_history", "symptoms").
		Composite("M1", "Determine Genetic Susceptibility", "W2",
			[]string{"snps", "ethnicity"}, []string{"disorders"}, "genetic", "susceptibility").
		Composite("M2", "Evaluate Disorder Risk", "W3",
			[]string{"disorders", "lifestyle", "family_history", "symptoms"}, []string{"prognosis"}, "disorder", "risk").
		Sink("O", "prognosis").
		Edge("I", "M1", "snps", "ethnicity").
		Edge("I", "M2", "lifestyle", "family_history", "symptoms").
		Edge("M1", "M2", "disorders").
		Edge("M2", "O", "prognosis")

	b.Workflow("W2", "Determine Genetic Susceptibility").
		Atomic("M3", "Expand SNP Set",
			[]string{"snps", "ethnicity"}, []string{"snp_set"}, "snp").
		Composite("M4", "Consult External Databases", "W4",
			[]string{"snp_set"}, []string{"disorders"}, "database", "external").
		Edge("M3", "M4", "snp_set")

	b.Workflow("W4", "Consult External Databases").
		Atomic("M5", "Generate Database Queries",
			[]string{"snp_set"}, []string{"query_omim", "query_pubmed"}, "database", "query").
		Atomic("M6", "Query OMIM",
			[]string{"query_omim"}, []string{"disorders_omim"}, "omim", "query", "database").
		Atomic("M7", "Query PubMed",
			[]string{"query_pubmed"}, []string{"disorders_pubmed"}, "pubmed", "query", "database").
		Atomic("M8", "Combine Disorder Sets",
			[]string{"disorders_omim", "disorders_pubmed"}, []string{"disorders"}, "disorder").
		Edge("M5", "M6", "query_omim").
		Edge("M5", "M7", "query_pubmed").
		Edge("M6", "M8", "disorders_omim").
		Edge("M7", "M8", "disorders_pubmed")

	// Module insertion order here (M9, M12, M13, M14, M10, M11, M15)
	// matches the process-id assignment of Fig. 4: the runner breaks
	// topological-order ties by insertion order.
	b.Workflow("W3", "Evaluate Disorder Risk").
		Atomic("M9", "Generate Queries",
			[]string{"disorders", "lifestyle", "family_history", "symptoms"},
			[]string{"query_pmc", "query_private"}, "query").
		Atomic("M12", "Search PubMed Central",
			[]string{"query_pmc"}, []string{"articles"}, "pubmed", "search").
		Atomic("M13", "Reformat",
			[]string{"articles"}, []string{"reformatted"}).
		Atomic("M14", "Summarize Articles",
			[]string{"reformatted"}, []string{"summary"}, "summary").
		Atomic("M10", "Search Private Datasets",
			[]string{"query_private"}, []string{"notes"}, "private", "search").
		Atomic("M11", "Update Private Datasets",
			[]string{"notes", "reformatted"}, []string{"updated_notes"}, "private").
		Atomic("M15", "Combine",
			[]string{"updated_notes", "summary"}, []string{"prognosis"}, "notes", "summary").
		Edge("M9", "M12", "query_pmc").
		Edge("M9", "M10", "query_private").
		Edge("M12", "M13", "articles").
		Edge("M13", "M14", "reformatted").
		Edge("M13", "M11", "reformatted").
		Edge("M10", "M11", "notes").
		Edge("M11", "M15", "updated_notes").
		Edge("M14", "M15", "summary")

	return b.MustBuild()
}
