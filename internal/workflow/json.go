package workflow

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalSpec serializes a spec as indented JSON.
func MarshalSpec(s *Spec) ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// UnmarshalSpec parses and validates a spec from JSON.
func UnmarshalSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workflow: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteSpec writes the JSON encoding of s to w.
func WriteSpec(w io.Writer, s *Spec) error {
	data, err := MarshalSpec(s)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadSpec reads and validates a spec from r.
func ReadSpec(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("workflow: read spec: %w", err)
	}
	return UnmarshalSpec(data)
}
