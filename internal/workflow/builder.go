package workflow

import "fmt"

// Builder constructs a Spec incrementally with a fluent API. Errors are
// accumulated and reported by Build, so call sites stay linear.
type Builder struct {
	spec *Spec
	cur  *Workflow
	errs []error
}

// NewBuilder starts a spec with the given id, name and root workflow id.
func NewBuilder(id, name, rootID string) *Builder {
	b := &Builder{spec: &Spec{
		ID:        id,
		Name:      name,
		Root:      rootID,
		Workflows: make(map[string]*Workflow),
	}}
	return b
}

// Workflow starts (or re-opens) a workflow; subsequent module and edge
// calls apply to it.
func (b *Builder) Workflow(id, name string) *Builder {
	if w, ok := b.spec.Workflows[id]; ok {
		b.cur = w
		return b
	}
	w := &Workflow{ID: id, Name: name}
	b.spec.Workflows[id] = w
	b.cur = w
	return b
}

func (b *Builder) addModule(m *Module) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("workflow builder: module %s added before any workflow", m.ID))
		return b
	}
	b.cur.Modules = append(b.cur.Modules, m)
	return b
}

// Source adds the workflow input node producing the given attributes.
func (b *Builder) Source(id string, outputs ...string) *Builder {
	return b.addModule(&Module{ID: id, Name: "Input", Kind: Source, Outputs: outputs})
}

// Sink adds the workflow output node consuming the given attributes.
func (b *Builder) Sink(id string, inputs ...string) *Builder {
	return b.addModule(&Module{ID: id, Name: "Output", Kind: Sink, Inputs: inputs})
}

// Atomic adds an atomic module.
func (b *Builder) Atomic(id, name string, inputs, outputs []string, keywords ...string) *Builder {
	return b.addModule(&Module{ID: id, Name: name, Kind: Atomic,
		Inputs: inputs, Outputs: outputs, Keywords: keywords})
}

// Composite adds a composite module expanding to subID.
func (b *Builder) Composite(id, name, subID string, inputs, outputs []string, keywords ...string) *Builder {
	return b.addModule(&Module{ID: id, Name: name, Kind: Composite, Sub: subID,
		Inputs: inputs, Outputs: outputs, Keywords: keywords})
}

// Edge adds a dataflow edge in the current workflow.
func (b *Builder) Edge(from, to string, data ...string) *Builder {
	if b.cur == nil {
		b.errs = append(b.errs, fmt.Errorf("workflow builder: edge %s->%s added before any workflow", from, to))
		return b
	}
	b.cur.Edges = append(b.cur.Edges, Edge{From: from, To: to, Data: data})
	return b
}

// Build validates and returns the spec.
func (b *Builder) Build() (*Spec, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.spec.Validate(); err != nil {
		return nil, err
	}
	return b.spec, nil
}

// MustBuild is Build that panics on error; for tests and the hard-coded
// paper figures.
func (b *Builder) MustBuild() *Spec {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
