package repo

import (
	"strings"
	"sync"
	"testing"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func seededRepo(t *testing.T) *Repository {
	t.Helper()
	r := New()
	s := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(s.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.ModuleLevels["M6"] = privacy.Owner
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	if err := r.AddSpec(s, pol); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	run := exec.NewRunner(s, nil)
	e, err := run.Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		t.Fatalf("AddExecution: %v", err)
	}
	r.AddUser(privacy.User{Name: "alice", Level: privacy.Owner, Group: "owners"})
	r.AddUser(privacy.User{Name: "bob", Level: privacy.Public, Group: "public"})
	r.AddUser(privacy.User{Name: "carol", Level: privacy.Analyst, Group: "analysts"})
	return r
}

func TestAddSpecValidation(t *testing.T) {
	r := New()
	s := workflow.DiseaseSusceptibility()
	if err := r.AddSpec(s, nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	if err := r.AddSpec(s, nil); err == nil {
		t.Fatal("duplicate spec accepted")
	}
	bad := privacy.NewPolicy("wrong-id")
	r2 := New()
	if err := r2.AddSpec(s, bad); err == nil {
		t.Fatal("mismatched policy accepted")
	}
}

func TestAddExecutionValidation(t *testing.T) {
	r := seededRepo(t)
	orphan := &exec.Execution{ID: "EX", SpecID: "nope", Items: map[string]*exec.DataItem{}}
	if err := r.AddExecution(orphan); err == nil {
		t.Fatal("execution for unknown spec accepted")
	}
	if got := r.ExecutionIDs("disease-susceptibility"); len(got) != 1 || got[0] != "E1" {
		t.Fatalf("ExecutionIDs = %v", got)
	}
}

func TestUserLookup(t *testing.T) {
	r := seededRepo(t)
	u, err := r.User("alice")
	if err != nil || u.Level != privacy.Owner {
		t.Fatalf("User(alice) = %v, %v", u, err)
	}
	if _, err := r.User("mallory"); err == nil {
		t.Fatal("unknown user found")
	}
}

func TestSearchAsOwnerFindsOMIM(t *testing.T) {
	r := seededRepo(t)
	hits, err := r.Search("alice", "omim", SearchOptions{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(hits) != 1 || hits[0].SpecID != "disease-susceptibility" {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Score <= 0 {
		t.Fatalf("score = %v", hits[0].Score)
	}
}

func TestSearchModulePrivacyHidesFromPublic(t *testing.T) {
	r := seededRepo(t)
	hits, err := r.Search("bob", "omim", SearchOptions{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(hits) != 0 {
		t.Fatalf("public user found private module: %v", hits)
	}
}

func TestSearchAccessViewClipsResult(t *testing.T) {
	r := seededRepo(t)
	// carol (Analyst) has full view grants; bob (Public) only W1.
	hitsCarol, err := r.Search("carol", "database, disorder risks", SearchOptions{})
	if err != nil {
		t.Fatalf("Search carol: %v", err)
	}
	if len(hitsCarol) != 1 {
		t.Fatalf("carol hits = %v", hitsCarol)
	}
	if strings.Join(hitsCarol[0].Result.Prefix.IDs(), ",") != "W1,W2,W4" {
		t.Fatalf("carol prefix = %v (Fig. 5 expected)", hitsCarol[0].Result.Prefix.IDs())
	}
	hitsBob, err := r.Search("bob", "database, disorder risks", SearchOptions{})
	if err != nil {
		t.Fatalf("Search bob: %v", err)
	}
	if len(hitsBob) != 1 {
		t.Fatalf("bob hits = %v", hitsBob)
	}
	if !hitsBob[0].Result.ZoomedOut {
		t.Fatal("bob's result not zoomed out")
	}
	if strings.Join(hitsBob[0].Result.Prefix.IDs(), ",") != "W1" {
		t.Fatalf("bob prefix = %v", hitsBob[0].Result.Prefix.IDs())
	}
}

func TestSearchCachePerGroup(t *testing.T) {
	r := seededRepo(t)
	if _, err := r.Search("carol", "database", SearchOptions{}); err != nil {
		t.Fatalf("Search: %v", err)
	}
	h0, m0 := r.CacheStats()
	if _, err := r.Search("carol", "database", SearchOptions{}); err != nil {
		t.Fatalf("Search: %v", err)
	}
	h1, _ := r.CacheStats()
	if h1 != h0+1 {
		t.Fatalf("no cache hit: %d -> %d (misses %d)", h0, h1, m0)
	}
	// A different group must not share the entry.
	if _, err := r.Search("bob", "database", SearchOptions{}); err != nil {
		t.Fatalf("Search: %v", err)
	}
	h2, m2 := r.CacheStats()
	if h2 != h1 {
		t.Fatalf("cross-group cache hit: %d -> %d (misses %d)", h1, h2, m2)
	}
}

func TestSearchBucketedScores(t *testing.T) {
	r := seededRepo(t)
	exact, err := r.Search("carol", "database", SearchOptions{BypassCache: true})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	bucketed, err := r.Search("carol", "database", SearchOptions{Buckets: 2, BypassCache: true})
	if err != nil {
		t.Fatalf("Search bucketed: %v", err)
	}
	if len(exact) != len(bucketed) {
		t.Fatalf("result counts differ: %d vs %d", len(exact), len(bucketed))
	}
}

func TestQueryPaperExample(t *testing.T) {
	r := seededRepo(t)
	ans, err := r.Query("alice", "disease-susceptibility", "E1",
		`MATCH a = "expand snp", b = "query omim" WHERE a ~> b RETURN provenance(b)`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(ans.Bindings) != 1 {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
	// Public user cannot see M6 executions (module privacy + view).
	ansPub, err := r.Query("bob", "disease-susceptibility", "E1",
		`MATCH b = "query omim"`)
	if err != nil {
		t.Fatalf("Query bob: %v", err)
	}
	if len(ansPub.Bindings) != 0 {
		t.Fatalf("public bindings = %v", ansPub.Bindings)
	}
}

func TestQueryAllAndErrors(t *testing.T) {
	r := seededRepo(t)
	out, err := r.QueryAll("alice", "disease-susceptibility", `MATCH a = "reformat"`)
	if err != nil {
		t.Fatalf("QueryAll: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("answers = %d", len(out))
	}
	if _, err := r.Query("alice", "nope", "E1", `MATCH a = "x"`); err == nil {
		t.Fatal("unknown spec accepted")
	}
	if _, err := r.Query("alice", "disease-susceptibility", "EX", `MATCH a = "x"`); err == nil {
		t.Fatal("unknown execution accepted")
	}
	if _, err := r.Query("alice", "disease-susceptibility", "E1", `garbage`); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestProvenancePrivacyPipeline(t *testing.T) {
	r := seededRepo(t)
	// alice sees everything: provenance of the prognosis item (d18).
	e := r.execution("disease-susceptibility", "E1")
	var progID, snpID string
	for id, it := range e.Items {
		switch it.Attr {
		case "prognosis":
			progID = id
		case "snps":
			snpID = id
		}
	}
	prov, err := r.Provenance("alice", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	if len(prov.Nodes) < 5 {
		t.Fatalf("provenance too small: %v", prov.NodeIDs())
	}
	// bob: prognosis visible at root view; snps masked.
	provBob, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatalf("Provenance bob: %v", err)
	}
	for _, it := range provBob.Items {
		if it.Attr == "snps" && !it.Redacted {
			t.Fatal("snps not masked for public user")
		}
	}
	// bob's view is the root view: internal nodes are collapsed.
	for _, n := range provBob.Nodes {
		if strings.Contains(n.ID, "-begin") || strings.Contains(n.ID, "M5") {
			t.Fatalf("internal node %s leaked to public provenance", n.ID)
		}
	}
	_ = snpID
	// An internal item is not visible to bob at all.
	var internalID string
	for id, it := range e.Items {
		if it.Attr == "snp_set" {
			internalID = id
		}
	}
	if _, err := r.Provenance("bob", "disease-susceptibility", "E1", internalID); err == nil {
		t.Fatal("internal item visible to public user")
	}
	if _, err := r.Provenance("alice", "disease-susceptibility", "E1", internalID); err != nil {
		t.Fatalf("owner blocked from internal item: %v", err)
	}
}

func TestStatsAndDescribe(t *testing.T) {
	r := seededRepo(t)
	st := r.Stats()
	if st.Specs != 1 || st.Executions != 1 || st.Users != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IndexTerms == 0 || st.Postings == 0 {
		t.Fatalf("index empty: %+v", st)
	}
	if !strings.Contains(r.Describe(), "specs: 1") {
		t.Fatalf("Describe:\n%s", r.Describe())
	}
}

func TestConcurrentSearch(t *testing.T) {
	r := seededRepo(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			users := []string{"alice", "bob", "carol"}
			for j := 0; j < 30; j++ {
				_, _ = r.Search(users[j%3], "database", SearchOptions{})
				_, _ = r.Search(users[j%3], "query", SearchOptions{BypassCache: true})
			}
		}(i)
	}
	wg.Wait()
}

func TestQuerySpec(t *testing.T) {
	r := seededRepo(t)
	// alice (Owner) sees the full expansion.
	ans, err := r.QuerySpec("alice", "disease-susceptibility",
		`MATCH a = "expand snp", b = "query omim" WHERE a ~> b`)
	if err != nil {
		t.Fatalf("QuerySpec: %v", err)
	}
	if len(ans.Bindings) != 1 || ans.Bindings[0]["b"] != "M6" {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
	// bob (Public, view {W1}) cannot see M6 at all.
	ansBob, err := r.QuerySpec("bob", "disease-susceptibility", `MATCH b = "query omim"`)
	if err != nil {
		t.Fatalf("QuerySpec bob: %v", err)
	}
	if len(ansBob.Bindings) != 0 {
		t.Fatalf("bob bindings = %v", ansBob.Bindings)
	}
	// Unknown spec errors.
	if _, err := r.QuerySpec("alice", "nope", `MATCH a = "x"`); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestSetGeneralization(t *testing.T) {
	r := seededRepo(t)
	h := &datapriv.Hierarchy{
		Attr: "snps",
		Levels: []map[exec.Value]exec.Value{
			{"rs1": "chr1"},
			{"chr1": "genome"},
		},
	}
	if err := r.SetGeneralization("disease-susceptibility", map[string]*datapriv.Hierarchy{"snps": h}); err != nil {
		t.Fatalf("SetGeneralization: %v", err)
	}
	if err := r.SetGeneralization("nope", nil); err == nil {
		t.Fatal("unknown spec accepted")
	}
	// carol (Analyst < Owner by 1): snps generalized 1 step, not redacted.
	e := r.execution("disease-susceptibility", "E1")
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	prov, err := r.Provenance("carol", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	found := false
	for _, it := range prov.Items {
		if it.Attr == "snps" {
			found = true
			if it.Redacted || it.Value != "chr1" {
				t.Fatalf("snps = %+v, want generalized chr1", it)
			}
		}
	}
	if !found {
		t.Fatal("snps item not in provenance")
	}
}

func TestQueryZoomOutAgreesWithQuery(t *testing.T) {
	r := seededRepo(t)
	q := `MATCH a = "consult external"`
	direct, err := r.Query("bob", "disease-susceptibility", "E1", q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	zoomed, err := r.QueryZoomOut("bob", "disease-susceptibility", "E1", q)
	if err != nil {
		t.Fatalf("QueryZoomOut: %v", err)
	}
	if len(direct.Bindings) != len(zoomed.Answer.Bindings) {
		t.Fatalf("direct %v vs zoomed %v", direct.Bindings, zoomed.Answer.Bindings)
	}
	// bob is Public: everything below W1 must zoom shut.
	if zoomed.Steps == 0 {
		t.Fatal("no zoom-out steps for public user")
	}
	if _, err := r.QueryZoomOut("bob", "nope", "E1", q); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestRemoveSpec(t *testing.T) {
	r := seededRepo(t)
	if err := r.RemoveSpec("disease-susceptibility"); err != nil {
		t.Fatalf("RemoveSpec: %v", err)
	}
	if r.Spec("disease-susceptibility") != nil {
		t.Fatal("spec still present")
	}
	if hits, _ := r.Search("alice", "database", SearchOptions{}); len(hits) != 0 {
		t.Fatalf("removed spec still searchable: %v", hits)
	}
	if _, err := r.Query("alice", "disease-susceptibility", "E1", `MATCH a = "reformat"`); err == nil {
		t.Fatal("removed spec still queryable")
	}
	if err := r.RemoveSpec("disease-susceptibility"); err == nil {
		t.Fatal("double remove accepted")
	}
	// Re-adding works (indexes consistent).
	if err := r.AddSpec(workflow.DiseaseSusceptibility(), nil); err != nil {
		t.Fatalf("re-AddSpec: %v", err)
	}
	if hits, err := r.Search("alice", "database", SearchOptions{}); err != nil || len(hits) != 1 {
		t.Fatalf("re-added spec not searchable: %v, %v", hits, err)
	}
}

func TestReachesEnforcesStructuralPrivacy(t *testing.T) {
	r := New()
	s := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(s.ID)
	pol.Structural = []privacy.HiddenPair{{From: "M13", To: "M11", Level: privacy.Owner}}
	h, _ := workflow.NewHierarchy(s)
	for _, w := range h.All() {
		pol.ViewGrants[privacy.Public] = append(pol.ViewGrants[privacy.Public], w)
	}
	if err := r.AddSpec(s, pol); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	r.AddUser(privacy.User{Name: "pub", Level: privacy.Public, Group: "g"})
	r.AddUser(privacy.User{Name: "own", Level: privacy.Owner, Group: "g"})

	// The protected pair: hidden from public, visible to owner.
	got, err := r.Reaches("pub", s.ID, "M13", "M11")
	if err != nil {
		t.Fatalf("Reaches: %v", err)
	}
	if got {
		t.Fatal("hidden pair answered true for public user")
	}
	got, err = r.Reaches("own", s.ID, "M13", "M11")
	if err != nil || !got {
		t.Fatalf("owner Reaches = %v, %v", got, err)
	}
	// Unprotected true pair stays answerable.
	got, _ = r.Reaches("pub", s.ID, "M12", "M11")
	if !got {
		t.Fatal("true unprotected pair answered false")
	}
	// False pair stays false (the famous M10 -> M14).
	got, _ = r.Reaches("pub", s.ID, "M10", "M14")
	if got {
		t.Fatal("non-path answered true")
	}
}

func TestReachesResolvesToComposite(t *testing.T) {
	r := seededRepo(t) // bob is Public with view {W1}
	// M3 and M6 both live inside M1's expansion; for bob both collapse
	// into M1 — relationship not externally visible.
	got, err := r.Reaches("bob", "disease-susceptibility", "M3", "M6")
	if err != nil {
		t.Fatalf("Reaches: %v", err)
	}
	if got {
		t.Fatal("intra-composite pair visible to public user")
	}
	// M3 (inside M1) to M9 (inside M2): composites M1 -> M2 are
	// connected at bob's granularity.
	got, err = r.Reaches("bob", "disease-susceptibility", "M3", "M9")
	if err != nil || !got {
		t.Fatalf("cross-composite Reaches = %v, %v", got, err)
	}
	// Errors for unknown ids.
	if _, err := r.Reaches("bob", "disease-susceptibility", "MX", "M9"); err == nil {
		t.Fatal("unknown module accepted")
	}
	if _, err := r.Reaches("bob", "nope", "M3", "M9"); err == nil {
		t.Fatal("unknown spec accepted")
	}
}
