package repo

import (
	"fmt"
	"testing"

	"provpriv/internal/exec"
)

// TestSearchPageTilesFullSearch: windows of SearchPage must tile the
// full Search result exactly — same hits, same order, exact total —
// even though out-of-window specs never get their minimal view built.
func TestSearchPageTilesFullSearch(t *testing.T) {
	r := multiSpecRepo(t, 8)
	for _, user := range []string{"pub", "reg", "ana"} {
		for _, q := range []string{"query", "alpha", "query, data"} {
			full, err := r.Search(user, q, SearchOptions{BypassCache: true})
			if err != nil {
				continue // no match at this level: nothing to tile
			}
			for limit := 1; limit <= 3; limit++ {
				var tiled []SearchHit
				for off := 0; ; off += limit {
					page, total, err := r.SearchPage(user, q, SearchOptions{
						BypassCache: true, Limit: limit, Offset: off,
					})
					if err != nil {
						t.Fatalf("%s %q limit=%d off=%d: %v", user, q, limit, off, err)
					}
					if total != len(full) {
						t.Fatalf("%s %q: total %d != full %d", user, q, total, len(full))
					}
					if len(page) == 0 {
						break
					}
					tiled = append(tiled, page...)
				}
				if len(tiled) != len(full) {
					t.Fatalf("%s %q limit=%d: tiled %d hits, full %d", user, q, limit, len(tiled), len(full))
				}
				for i := range full {
					if tiled[i].SpecID != full[i].SpecID || tiled[i].Score != full[i].Score {
						t.Fatalf("%s %q limit=%d page item %d: %s/%f != %s/%f",
							user, q, limit, i, tiled[i].SpecID, tiled[i].Score, full[i].SpecID, full[i].Score)
					}
					if len(tiled[i].Result.Matches) != len(full[i].Result.Matches) {
						t.Fatalf("%s %q item %d: window materialized a different view", user, q, i)
					}
				}
			}
			// Offset past the end: empty window, total intact.
			page, total, err := r.SearchPage(user, q, SearchOptions{
				BypassCache: true, Limit: 2, Offset: len(full) + 3,
			})
			if err != nil || len(page) != 0 || total != len(full) {
				t.Fatalf("%s %q past-end: %d hits total %d err %v", user, q, len(page), total, err)
			}
		}
	}
}

// TestSearchPageCachedWindows: the result cache keys windows separately,
// so a cached page never bleeds into another window or another group.
func TestSearchPageCachedWindows(t *testing.T) {
	r := multiSpecRepo(t, 6)
	p0, total0, err := r.SearchPage("ana", "query", SearchOptions{Limit: 1, Offset: 0})
	if err != nil {
		t.Fatalf("page 0: %v", err)
	}
	p1, total1, err := r.SearchPage("ana", "query", SearchOptions{Limit: 1, Offset: 1})
	if err != nil {
		t.Fatalf("page 1: %v", err)
	}
	if total0 != total1 || total0 < 2 {
		t.Fatalf("totals %d/%d (need >=2 hits)", total0, total1)
	}
	if p0[0].SpecID == p1[0].SpecID {
		t.Fatalf("cached window bled: both pages returned %s", p0[0].SpecID)
	}
	// Repeat must hit the cache and return the identical window.
	p0b, _, err := r.SearchPage("ana", "query", SearchOptions{Limit: 1, Offset: 0})
	if err != nil || p0b[0].SpecID != p0[0].SpecID {
		t.Fatalf("cached repeat diverged: %v %v", p0b, err)
	}
}

// TestQueryAllPageTilesFull: QueryAllPage windows tile QueryAll, totals
// are exact, and windowed answers carry their materialized return
// clauses (provenance) while out-of-window answers never built them.
func TestQueryAllPageTilesFull(t *testing.T) {
	r := seededRepo(t)
	s := r.Spec("disease-susceptibility")
	for i := 2; i <= 5; i++ {
		e, err := exec.NewRunner(s, nil).Run(fmt.Sprintf("E%d", i), map[string]exec.Value{
			"snps": exec.Value(fmt.Sprintf("rs%d", i)), "ethnicity": "e", "lifestyle": "l",
			"family_history": "f", "symptoms": "s",
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("AddExecution: %v", err)
		}
	}
	const q = `MATCH a = "reformat" RETURN provenance(a)`
	full, err := r.QueryAll("alice", "disease-susceptibility", q)
	if err != nil {
		t.Fatalf("QueryAll: %v", err)
	}
	if len(full) != 5 {
		t.Fatalf("full answers = %d, want 5", len(full))
	}
	for limit := 1; limit <= 3; limit++ {
		var execIDs []string
		for off := 0; ; off += limit {
			page, total, err := r.QueryAllPage("alice", "disease-susceptibility", q, limit, off)
			if err != nil {
				t.Fatalf("limit=%d off=%d: %v", limit, off, err)
			}
			if total != len(full) {
				t.Fatalf("total %d != %d", total, len(full))
			}
			if len(page) == 0 {
				break
			}
			for _, ans := range page {
				execIDs = append(execIDs, ans.ExecutionID)
				if len(ans.Provenance) == 0 {
					t.Fatalf("windowed answer %s lacks materialized provenance", ans.ExecutionID)
				}
			}
		}
		for i := range full {
			if execIDs[i] != full[i].ExecutionID {
				t.Fatalf("limit=%d: tiling order %v diverges from full", limit, execIDs)
			}
		}
	}
	// Past-the-end offset: empty, total preserved.
	page, total, err := r.QueryAllPage("alice", "disease-susceptibility", q, 2, 99)
	if err != nil || len(page) != 0 || total != len(full) {
		t.Fatalf("past-end: %d answers total %d err %v", len(page), total, err)
	}
	// Negative windows are rejected.
	if _, _, err := r.QueryAllPage("alice", "disease-susceptibility", q, -1, 0); err == nil {
		t.Fatal("negative limit accepted")
	}
	if _, _, err := r.SearchPage("alice", "omim", SearchOptions{Offset: -1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}
