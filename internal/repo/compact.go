package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"provpriv/internal/storage"
)

// Background compaction: Save only ever appends deltas, so a busy
// shard's log grows without bound until someone folds it back into a
// checkpoint. That someone is CompactShard, designed to run inside the
// async task runtime, off the request path.
//
// The fold is optimistic: the shard's state is snapshotted and encoded
// into checkpoint records without holding the save lock, then the
// backend write + manifest commit run under saveMu only if nothing
// moved in between. A shard that mutated (or was saved, removed, or
// replaced) since the snapshot makes the fold lose its race and return
// ErrCompactConflict — a retryable outcome, not a failure: the task
// runtime backs off and tries again against the fresher state.

// ErrCompactConflict reports a compaction fold that lost a race with a
// newer mutation or save of the same shard. Retry with backoff.
var ErrCompactConflict = errors.New("repo: compaction lost race with newer save")

// ErrNoStorage reports an operation that needs a bound storage backend
// on a repository that has none (no Load/BindStorage/Save yet).
var ErrNoStorage = errors.New("repo: no bound storage")

// NeedsCompaction returns the ids of shards whose committed log has
// outgrown compactThreshold, sorted — the work list a background
// compaction pass walks. A repository without bound storage has
// nothing to compact.
func (r *Repository) NeedsCompaction() []string {
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	if r.bound == nil {
		return nil
	}
	var out []string
	for sid, ss := range r.bound.shards {
		if ss.logRecs > compactThreshold {
			out = append(out, sid)
		}
	}
	sort.Strings(out)
	return out
}

// CompactShard folds one shard's checkpoint+log into a fresh checkpoint
// at a new generation and commits a manifest pointing at it with an
// empty log, leaving the shard's durable state identical but O(1) to
// replay. The expensive encoding happens outside the save lock;
// ErrCompactConflict means the shard changed underneath the fold and
// the caller should retry. Compacting a shard that no longer exists or
// is already compact is a no-op.
func (r *Repository) CompactShard(sid string) error {
	sh := r.shard(sid)
	if sh == nil {
		return nil // spec removed; nothing to fold
	}
	return r.compactFrom(sid, snapshotShardState(sh))
}

// compactFrom is CompactShard after the snapshot — split out so tests
// can wedge a mutation between snapshot and commit to pin the conflict
// path.
func (r *Repository) compactFrom(sid string, snap shardSnap) error {
	recs, err := checkpointRecords(sid, snap)
	if err != nil {
		return err
	}
	users, err := json.Marshal(r.Users())
	if err != nil {
		return fmt.Errorf("repo: compact users: %w", err)
	}
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	bs := r.bound
	if bs == nil {
		return ErrNoStorage
	}
	prev := bs.shards[sid]
	if prev == nil || prev.spec != snap.spec || prev.seq != snap.seq {
		// Saved state moved (newer save, unsaved mutations, or a
		// remove/re-add) since the snapshot: the encoded records no longer
		// describe what the store must hold.
		return ErrCompactConflict
	}
	if prev.logRecs == 0 {
		return nil // already compact
	}
	gen := bs.gen + 1
	if err := bs.b.WriteCheckpoint(sid, gen, recs); err != nil {
		return r.dropBindingLocked(err)
	}
	meta := storage.Meta{Generation: gen, Shards: make(map[string]storage.ShardInfo, len(bs.shards)), Users: users}
	for id, ss := range bs.shards {
		meta.Shards[id] = ss.info()
	}
	folded := &shardSaved{
		seq: snap.seq, polGen: snap.polGen, spec: snap.spec,
		ckptGen: gen, ckptRecords: uint64(len(recs)),
		execs: execSet(snap.execs),
	}
	meta.Shards[sid] = folded.info()
	if err := bs.b.Commit(meta); err != nil {
		return r.dropBindingLocked(err)
	}
	bs.gen = gen
	bs.shards[sid] = folded
	return nil
}

// dropBindingLocked mirrors Save's error handling under saveMu: a
// backend error mid-write leaves the bookkeeping untrustworthy, so the
// binding is dropped and the next Save rebinds and rewrites in full.
func (r *Repository) dropBindingLocked(err error) error {
	if r.bound != nil {
		r.bound.b.Close()
		r.bound = nil
	}
	return err
}
