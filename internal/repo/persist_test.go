package repo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := seededRepo(t)
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, b := r.Stats().Content(), r2.Stats().Content()
	if a != b {
		t.Fatalf("stats differ: %+v vs %+v", a, b)
	}
	// Search behaves identically after the round trip (incl. policies).
	for _, user := range []string{"alice", "bob", "carol"} {
		h1, err1 := r.Search(user, "database, disorder risks", SearchOptions{BypassCache: true})
		h2, err2 := r2.Search(user, "database, disorder risks", SearchOptions{BypassCache: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: err mismatch %v vs %v", user, err1, err2)
		}
		if len(h1) != len(h2) {
			t.Fatalf("%s: hit counts %d vs %d", user, len(h1), len(h2))
		}
		for i := range h1 {
			if h1[i].SpecID != h2[i].SpecID ||
				strings.Join(h1[i].Result.Prefix.IDs(), ",") != strings.Join(h2[i].Result.Prefix.IDs(), ",") {
				t.Fatalf("%s: hit %d differs", user, i)
			}
		}
	}
	// Provenance answers match too.
	ans1, err := r.Query("alice", "disease-susceptibility", "E1", `MATCH a = "reformat"`)
	if err != nil {
		t.Fatalf("Query r: %v", err)
	}
	ans2, err := r2.Query("alice", "disease-susceptibility", "E1", `MATCH a = "reformat"`)
	if err != nil {
		t.Fatalf("Query r2: %v", err)
	}
	if len(ans1.Bindings) != len(ans2.Bindings) {
		t.Fatal("query answers differ after round trip")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestLoadCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r := seededRepo(t)
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Damage a committed checkpoint: the CRC framing must reject it as
	// corruption, never load a truncated shard silently.
	ckpts, err := filepath.Glob(filepath.Join(dir, "ckpt-*.log"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoint files written (err=%v)", err)
	}
	if err := os.WriteFile(ckpts[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestSaveManifestIsLogFormat(t *testing.T) {
	// The committed manifest carries the log-engine format marker and a
	// generation-numbered checkpoint pointer per shard.
	dir := t.TempDir()
	r := seededRepo(t)
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Format     string `json:"format"`
		Generation uint64 `json:"generation"`
		Shards     map[string]struct {
			Checkpoint uint64 `json:"checkpoint"`
			Records    uint64 `json:"records"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	if man.Format == "" || man.Generation == 0 || len(man.Shards) == 0 {
		t.Fatalf("manifest not in log format:\n%s", data)
	}
	for sid, info := range man.Shards {
		if info.Checkpoint == 0 || info.Records == 0 {
			t.Fatalf("shard %s has no checkpoint pointer:\n%s", sid, data)
		}
	}
	if !strings.Contains(string(data), `"users"`) {
		t.Fatalf("manifest missing users:\n%s", data)
	}
}
