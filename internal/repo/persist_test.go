package repo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := seededRepo(t)
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, b := r.Stats().Content(), r2.Stats().Content()
	if a != b {
		t.Fatalf("stats differ: %+v vs %+v", a, b)
	}
	// Search behaves identically after the round trip (incl. policies).
	for _, user := range []string{"alice", "bob", "carol"} {
		h1, err1 := r.Search(user, "database, disorder risks", SearchOptions{BypassCache: true})
		h2, err2 := r2.Search(user, "database, disorder risks", SearchOptions{BypassCache: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: err mismatch %v vs %v", user, err1, err2)
		}
		if len(h1) != len(h2) {
			t.Fatalf("%s: hit counts %d vs %d", user, len(h1), len(h2))
		}
		for i := range h1 {
			if h1[i].SpecID != h2[i].SpecID ||
				strings.Join(h1[i].Result.Prefix.IDs(), ",") != strings.Join(h2[i].Result.Prefix.IDs(), ",") {
				t.Fatalf("%s: hit %d differs", user, i)
			}
		}
	}
	// Provenance answers match too.
	ans1, err := r.Query("alice", "disease-susceptibility", "E1", `MATCH a = "reformat"`)
	if err != nil {
		t.Fatalf("Query r: %v", err)
	}
	ans2, err := r2.Query("alice", "disease-susceptibility", "E1", `MATCH a = "reformat"`)
	if err != nil {
		t.Fatalf("Query r2: %v", err)
	}
	if len(ans1.Bindings) != len(ans2.Bindings) {
		t.Fatal("query answers differ after round trip")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestLoadCorruptSpec(t *testing.T) {
	dir := t.TempDir()
	r := seededRepo(t)
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Corrupt the first spec file the manifest references (file names
	// derive from spec ids, so resolve them through the manifest).
	manData, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man struct {
		Specs []string `json:"specs"`
	}
	if err := json.Unmarshal(manData, &man); err != nil {
		t.Fatal(err)
	}
	if len(man.Specs) == 0 {
		t.Fatal("manifest lists no specs")
	}
	if err := os.WriteFile(filepath.Join(dir, man.Specs[0]), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("corrupt spec accepted")
	}
}

func TestSaveIsLoadableByProvgenFormat(t *testing.T) {
	// The manifest layout matches cmd/provgen: specs, policies,
	// executions keys present.
	dir := t.TempDir()
	r := seededRepo(t)
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"specs"`, `"policies"`, `"executions"`, `"users"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("manifest missing %s:\n%s", key, data)
		}
	}
}
