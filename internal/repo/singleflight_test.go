package repo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFlightGroupSharesResult(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do("k", func() (any, error) {
				calls.Add(1)
				<-gate // hold the flight open until all callers queue
				return "shared", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	if c := calls.Load(); c < 1 || c > 8 {
		t.Fatalf("calls = %d", c)
	}
}

func TestFlightGroupErrorShared(t *testing.T) {
	var g flightGroup
	want := errors.New("boom")
	if _, err := g.Do("k", func() (any, error) { return nil, want }); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	// The key is forgotten afterwards: a later call runs fresh.
	v, err := g.Do("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry = %v, %v", v, err)
	}
}

// TestFlightGroupPanic checks the cleanup contract: a panicking fn must
// release the key (no permanent wedge) and re-raise in the caller.
func TestFlightGroupPanic(t *testing.T) {
	var g flightGroup
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic not propagated to caller")
			}
		}()
		_, _ = g.Do("k", func() (any, error) { panic("boom") })
	}()
	// The key must have been released: this call runs, not deadlocks.
	v, err := g.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("post-panic Do = %v, %v", v, err)
	}
}
