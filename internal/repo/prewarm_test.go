package repo

import (
	"context"
	"errors"
	"testing"

	"provpriv/internal/privacy"
)

// TestPrewarmMaskedWarmsCache: after a policy change purges the
// masked-snapshot cache, PrewarmMasked rebuilds one snapshot per
// (execution, level) and the next enforced read is a cache hit.
func TestPrewarmMaskedWarmsCache(t *testing.T) {
	r := seededRepo(t)
	const sid = "disease-susceptibility"
	// Distinct user levels: Owner, Public, Analyst → 3 snapshots for the
	// single execution.
	var beats int
	built, err := r.PrewarmMasked(context.Background(), sid, nil, func(done, total int64) {
		beats++
		if total != 3 {
			t.Errorf("progress total = %d, want 3", total)
		}
	})
	if err != nil {
		t.Fatalf("PrewarmMasked: %v", err)
	}
	if built != 3 {
		t.Fatalf("built %d snapshots, want 3", built)
	}
	if beats < 2 {
		t.Errorf("progress heartbeats = %d, want at least initial + final", beats)
	}
	hits0 := r.Stats().MaskedCacheHits
	if _, err := r.Query("carol", sid, "E1", `MATCH a = "reformat"`); err != nil {
		t.Fatalf("Query after prewarm: %v", err)
	}
	if hits := r.Stats().MaskedCacheHits; hits <= hits0 {
		t.Fatalf("warm read missed the cache: hits %d -> %d", hits0, hits)
	}

	// A policy change invalidates; re-warming serves the new generation.
	pol := privacy.NewPolicy(sid)
	if err := r.UpdatePolicy(sid, pol); err != nil {
		t.Fatalf("UpdatePolicy: %v", err)
	}
	if built, err = r.PrewarmMasked(context.Background(), sid, nil, nil); err != nil || built != 3 {
		t.Fatalf("re-warm: built %d, err %v", built, err)
	}
	hits1 := r.Stats().MaskedCacheHits
	if _, err := r.Query("carol", sid, "E1", `MATCH a = "reformat"`); err != nil {
		t.Fatalf("Query after re-warm: %v", err)
	}
	if hits := r.Stats().MaskedCacheHits; hits <= hits1 {
		t.Fatalf("re-warmed read missed the cache: hits %d -> %d", hits1, hits)
	}

	// Unknown spec and explicit empty level set are clean no-ops.
	if built, err := r.PrewarmMasked(context.Background(), "nope", nil, nil); err != nil || built != 0 {
		t.Fatalf("prewarm of unknown spec: built %d, err %v", built, err)
	}
}

func TestPrewarmMaskedCanceled(t *testing.T) {
	r := seededRepo(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	built, err := r.PrewarmMasked(ctx, "disease-susceptibility", nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled prewarm = (%d, %v), want context.Canceled", built, err)
	}
	if built != 0 {
		t.Errorf("canceled-before-start prewarm built %d snapshots", built)
	}
}

// TestReadPathsHonorCanceledContext: the ctx-threaded read paths return
// the context's error instead of computing a result nobody will read.
func TestReadPathsHonorCanceledContext(t *testing.T) {
	r := seededRepo(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const sid = "disease-susceptibility"
	if _, _, err := r.SearchPageCtx(ctx, "carol", "disease", SearchOptions{BypassCache: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchPageCtx canceled = %v, want context.Canceled", err)
	}
	if _, _, err := r.QueryAllPageCtx(ctx, "carol", sid, `MATCH a = "reformat"`, 0, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryAllPageCtx canceled = %v, want context.Canceled", err)
	}
	if _, err := r.ProvenanceWithCtx(ctx, "alice", sid, "E1", "d1", ProvenanceOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ProvenanceWithCtx canceled = %v, want context.Canceled", err)
	}
	// The live-context paths still work and return identical results to
	// the ctx-less wrappers.
	hits, total, err := r.SearchPageCtx(context.Background(), "carol", "disease", SearchOptions{BypassCache: true})
	if err != nil {
		t.Fatalf("SearchPageCtx: %v", err)
	}
	hits2, total2, err := r.SearchPage("carol", "disease", SearchOptions{BypassCache: true})
	if err != nil {
		t.Fatalf("SearchPage: %v", err)
	}
	if len(hits) != len(hits2) || total != total2 {
		t.Errorf("ctx and plain search disagree: %d/%d vs %d/%d", len(hits), total, len(hits2), total2)
	}
}
