package repo

// Tests for the masked-execution snapshot cache: warm reads serve a
// shared immutable snapshot, policy/hierarchy mutations evict it, shard
// removal keeps the counters monotone, and concurrent readers of one
// snapshot can never observe each other's activity.

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/privacy"
)

func itemByAttr(t *testing.T, r *Repository, attr string) string {
	t.Helper()
	e := r.execution("disease-susceptibility", "E1")
	for id, it := range e.Items {
		if it.Attr == attr {
			return id
		}
	}
	t.Fatalf("no %s item", attr)
	return ""
}

// TestMaskedCacheServesWarmReads: the first enforced read misses and
// fills; repeats at the same level hit without re-masking, and a
// different level fills its own slot.
func TestMaskedCacheServesWarmReads(t *testing.T) {
	r := seededRepo(t)
	progID := itemByAttr(t, r, "prognosis")
	if _, err := r.Provenance("bob", "disease-susceptibility", "E1", progID); err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	st := r.Stats()
	if st.MaskedCacheMisses == 0 {
		t.Fatalf("first read did not miss: %+v", st)
	}
	if st.MaskedCacheHits != 0 {
		t.Fatalf("phantom hit before warm read: %+v", st)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Provenance("bob", "disease-susceptibility", "E1", progID); err != nil {
			t.Fatalf("warm Provenance: %v", err)
		}
	}
	if _, err := r.Query("bob", "disease-susceptibility", "E1", `MATCH a = "disease" RETURN bindings`); err != nil {
		t.Fatalf("Query: %v", err)
	}
	st2 := r.Stats()
	if st2.MaskedCacheHits < 4 {
		t.Fatalf("warm reads did not hit the masked cache: hits=%d", st2.MaskedCacheHits)
	}
	if st2.MaskedCacheMisses != st.MaskedCacheMisses {
		t.Fatalf("warm reads missed again: %d -> %d", st.MaskedCacheMisses, st2.MaskedCacheMisses)
	}
	// A different level is a different snapshot.
	if _, err := r.Provenance("alice", "disease-susceptibility", "E1", progID); err != nil {
		t.Fatalf("owner Provenance: %v", err)
	}
	if st3 := r.Stats(); st3.MaskedCacheMisses <= st2.MaskedCacheMisses {
		t.Fatalf("owner-level read served from public snapshot: %+v", st3)
	}
	if _, ok := r.Stats().MaskedCache["disease-susceptibility"]; !ok {
		t.Fatal("per-shard masked cache stats missing")
	}
}

// TestMaskedCacheInvalidationOnUpdatePolicy: a policy update must evict
// masked snapshots — a reader after the update may never see a mask
// computed under the old policy, in either direction (newly public stays
// rewritten-free, newly protected is rewritten).
func TestMaskedCacheInvalidationOnUpdatePolicy(t *testing.T) {
	r := seededRepo(t)
	progID := itemByAttr(t, r, "prognosis")
	prov, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	if v := string(prov.Items[progID].Value); strings.Contains(v, "rs1") {
		t.Fatalf("pre-update leak: %q", v)
	}
	// Warm the cache, then drop all protection.
	if _, err := r.Provenance("bob", "disease-susceptibility", "E1", progID); err != nil {
		t.Fatal(err)
	}
	open := privacy.NewPolicy("disease-susceptibility")
	if err := r.UpdatePolicy("disease-susceptibility", open); err != nil {
		t.Fatalf("UpdatePolicy: %v", err)
	}
	prov, err = r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatalf("post-update Provenance: %v", err)
	}
	if v := string(prov.Items[progID].Value); !strings.Contains(v, "rs1") {
		t.Fatalf("stale pre-update mask served after policy opened everything: %q", v)
	}
	// And back: re-protecting must evict the open snapshot.
	closed := privacy.NewPolicy("disease-susceptibility")
	closed.DataLevels["snps"] = privacy.Owner
	if err := r.UpdatePolicy("disease-susceptibility", closed); err != nil {
		t.Fatalf("UpdatePolicy: %v", err)
	}
	prov, err = r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatalf("re-protected Provenance: %v", err)
	}
	if v := string(prov.Items[progID].Value); strings.Contains(v, "rs1") {
		t.Fatalf("stale open snapshot served after re-protection: %q", v)
	}
}

// TestMaskedCacheInvalidationOnSetGeneralization: installing ladders
// changes what masking emits, so cached snapshots must go.
func TestMaskedCacheInvalidationOnSetGeneralization(t *testing.T) {
	r := seededRepo(t)
	snpID := itemByAttr(t, r, "snps")
	progID := itemByAttr(t, r, "prognosis")
	// Warm the public snapshot: snps fully redacted (no ladder). The
	// snps item is an ancestor of prognosis, so it is always present in
	// this provenance.
	before, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatal(err)
	}
	if it := before.Items[snpID]; it == nil || !it.Redacted {
		t.Fatalf("snps not redacted without ladder: %+v", it)
	}
	err = r.SetGeneralization("disease-susceptibility", map[string]*datapriv.Hierarchy{
		"snps": {Attr: "snps", Levels: []map[exec.Value]exec.Value{{"rs1": "chr-region"}}},
	})
	if err != nil {
		t.Fatalf("SetGeneralization: %v", err)
	}
	after, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatal(err)
	}
	if it := after.Items[snpID]; it == nil || it.Redacted || it.Value != "chr-region" {
		t.Fatalf("stale redaction served after ladder install: %+v", it)
	}
}

// TestMaskedCacheMonotoneAcrossRemoveSpec: removing a shard banks its
// masked-cache counters so the repository totals never regress.
func TestMaskedCacheMonotoneAcrossRemoveSpec(t *testing.T) {
	r := seededRepo(t)
	progID := itemByAttr(t, r, "prognosis")
	for i := 0; i < 3; i++ {
		if _, err := r.Provenance("bob", "disease-susceptibility", "E1", progID); err != nil {
			t.Fatal(err)
		}
	}
	before := r.Stats()
	if before.MaskedCacheHits == 0 || before.MaskedCacheMisses == 0 {
		t.Fatalf("no masked traffic: %+v", before)
	}
	if err := r.RemoveSpec("disease-susceptibility"); err != nil {
		t.Fatalf("RemoveSpec: %v", err)
	}
	after := r.Stats()
	if after.MaskedCacheHits < before.MaskedCacheHits || after.MaskedCacheMisses < before.MaskedCacheMisses {
		t.Fatalf("masked counters regressed across RemoveSpec: %+v -> %+v", before, after)
	}
	if len(after.MaskedCache) != 0 {
		t.Fatalf("removed shard still listed: %+v", after.MaskedCache)
	}
}

// TestMaskedSnapshotImmutableConcurrentReaders is the aliasing guard of
// the snapshot design, meaningful under -race: many goroutines serve
// query, provenance and a JSON render from ONE cached snapshot while
// others mutate the sub-executions they received back. Every reader
// must observe byte-identical results; any hidden shared mutable state
// (a lazily memoized index, an aliased item) trips the race detector.
func TestMaskedSnapshotImmutableConcurrentReaders(t *testing.T) {
	r := seededRepo(t)
	progID := itemByAttr(t, r, "prognosis")
	// Warm the public snapshot once so every goroutine shares it.
	ref, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (w + i) % 3 {
				case 0:
					prov, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
					if err != nil {
						errs <- err.Error()
						return
					}
					got, err := json.Marshal(prov)
					if err != nil {
						errs <- err.Error()
						return
					}
					if string(got) != string(refJSON) {
						errs <- "provenance bytes changed across concurrent reads"
						return
					}
					// Scribble over the returned copy: it must be ours alone.
					for _, it := range prov.Items {
						it.Value = "scribbled"
						it.Redacted = false
					}
					for _, n := range prov.Nodes {
						n.ID = "gone"
					}
				case 1:
					ans, err := r.Query("bob", "disease-susceptibility", "E1",
						`MATCH a = "disease" RETURN provenance(a)`)
					if err != nil {
						errs <- err.Error()
						return
					}
					for _, p := range ans.Provenance {
						for _, it := range p.Items {
							it.Value = "scribbled"
						}
					}
				case 2:
					if _, err := r.QueryAll("bob", "disease-susceptibility",
						`MATCH a = "disease" RETURN bindings`); err != nil {
						errs <- err.Error()
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	// After all the scribbling, a fresh read still serves clean bytes.
	final, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(final)
	if string(got) != string(refJSON) {
		t.Fatal("caller mutation of a returned provenance leaked into the cached snapshot")
	}
}
