package repo

import (
	"fmt"
	"testing"
	"unicode/utf8"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workload"
)

// FuzzPersistRoundTrip drives the Save/Load cycle of persist.go with
// fuzzed shapes: generated spec topologies, adversarial user names and
// levels, and varying execution counts. The invariant is full fidelity —
// a loaded repository must report the same specs, executions, users and
// index statistics as the one saved, and must answer a provenance
// request identically. Run with `go test -fuzz=FuzzPersistRoundTrip`.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2), uint8(1), "alice", uint8(3))
	f.Add(int64(7), uint8(1), uint8(4), uint8(0), "", uint8(0))
	f.Add(int64(42), uint8(3), uint8(3), uint8(2), "u\x00ser", uint8(200))
	f.Add(int64(-9), uint8(2), uint8(2), uint8(3), "ünïcode né", uint8(1))
	f.Add(int64(1234), uint8(1), uint8(1), uint8(1), "a,b\"c\\d", uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, depth, chain, nExecs uint8, userName string, userLevel uint8) {
		// Clamp the generator knobs to valid, fast shapes.
		d := int(depth)%3 + 1
		ch := int(chain)%4 + 1
		fan := 1
		if fan > ch {
			fan = ch
		}
		if d == 1 {
			fan = 0
		}
		ne := int(nExecs) % 4

		r := New()
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: seed, ID: "fz", Depth: d, Fanout: fan, Chain: ch, SkipProb: 0.3,
		})
		if err != nil {
			t.Fatalf("RandomSpec(depth=%d chain=%d): %v", d, ch, err)
		}
		pol := privacy.NewPolicy(s.ID)
		for _, wid := range s.WorkflowIDs() {
			for _, m := range s.Workflows[wid].Modules {
				if len(m.ID)%2 == 0 {
					pol.ModuleLevels[m.ID] = privacy.Level(int(userLevel) % 4)
				}
			}
		}
		if err := r.AddSpec(s, pol); err != nil {
			t.Fatalf("AddSpec: %v", err)
		}
		for i := 0; i < ne; i++ {
			e, err := exec.NewRunner(s, nil).Run(fmt.Sprintf("E%d", i), workload.RandomInputs(s, seed+int64(i)))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := r.AddExecution(e); err != nil {
				t.Fatalf("AddExecution: %v", err)
			}
		}
		r.AddUser(privacy.User{Name: userName, Level: privacy.Level(userLevel), Group: "g"})

		dir := t.TempDir()
		if err := r.Save(dir); err != nil {
			t.Fatalf("Save: %v", err)
		}
		r2, err := Load(dir)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}

		if got, want := fmt.Sprint(r2.SpecIDs()), fmt.Sprint(r.SpecIDs()); got != want {
			t.Fatalf("SpecIDs: %s != %s", got, want)
		}
		if got, want := fmt.Sprint(r2.ExecutionIDs("fz")), fmt.Sprint(r.ExecutionIDs("fz")); got != want {
			t.Fatalf("ExecutionIDs: %s != %s", got, want)
		}
		if got, want := r2.Stats().Content(), r.Stats().Content(); got != want {
			t.Fatalf("Stats: %+v != %+v", got, want)
		}
		// JSON persistence coerces invalid UTF-8 to U+FFFD, so exact name
		// fidelity is only promised for valid UTF-8 names; the user count
		// (checked via Stats above) must survive regardless.
		if utf8.ValidString(userName) {
			u2, err := r2.User(userName)
			if err != nil {
				t.Fatalf("user %q lost in round trip: %v", userName, err)
			}
			if u2.Level != privacy.Level(userLevel) {
				t.Fatalf("user level: %v != %v", u2.Level, privacy.Level(userLevel))
			}
		}
		// Behavioral fidelity: provenance of the final output item must
		// agree between original and reloaded repositories.
		if ne > 0 && utf8.ValidString(userName) {
			e := r.execution("fz", "E0")
			var itemID string
			for id := range e.Items {
				itemID = id
				break
			}
			p1, err1 := r.Provenance(userName, "fz", "E0", itemID)
			p2, err2 := r2.Provenance(userName, "fz", "E0", itemID)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("provenance error mismatch: %v vs %v", err1, err2)
			}
			if err1 == nil && len(p1.Nodes) != len(p2.Nodes) {
				t.Fatalf("provenance size mismatch: %d vs %d nodes", len(p1.Nodes), len(p2.Nodes))
			}
		}
	})
}
