package repo

import (
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func TestMaterializedProvenanceMatchesOnTheFly(t *testing.T) {
	// Two identical repositories, one materialized — answers must agree.
	plain := seededRepo(t)
	mat := seededRepo(t)
	if err := mat.EnableMaterialization([]privacy.Level{privacy.Public, privacy.Analyst}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	e := plain.execution("disease-susceptibility", "E1")
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	for _, user := range []string{"bob", "carol"} { // public, analyst
		a, errA := plain.Provenance(user, "disease-susceptibility", "E1", progID)
		b, errB := mat.Provenance(user, "disease-susceptibility", "E1", progID)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", user, errA, errB)
		}
		if errA != nil {
			continue
		}
		if strings.Join(a.NodeIDs(), ",") != strings.Join(b.NodeIDs(), ",") {
			t.Fatalf("%s: nodes differ:\n%v\n%v", user, a.NodeIDs(), b.NodeIDs())
		}
		for id, it := range a.Items {
			bit := b.Items[id]
			if bit == nil || bit.Redacted != it.Redacted || bit.Value != it.Value {
				t.Fatalf("%s: item %s differs: %+v vs %+v", user, id, it, bit)
			}
		}
	}
}

func TestMaterializationCoversNewExecutions(t *testing.T) {
	r := seededRepo(t)
	if err := r.EnableMaterialization([]privacy.Level{privacy.Public}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	// Add a second execution after enabling.
	spec := r.Spec("disease-susceptibility")
	e2, err := exec.NewRunner(spec, nil).Run("E2", map[string]exec.Value{
		"snps": "rs9", "ethnicity": "eth2", "lifestyle": "sedentary",
		"family_history": "none", "symptoms": "cough",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.AddExecution(e2); err != nil {
		t.Fatalf("AddExecution: %v", err)
	}
	var progID string
	for id, it := range e2.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	prov, err := r.Provenance("bob", "disease-susceptibility", "E2", progID)
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	if len(prov.Nodes) == 0 {
		t.Fatal("empty provenance from materialized path")
	}
}

func TestMaterializationHidesInternalItems(t *testing.T) {
	r := seededRepo(t)
	if err := r.EnableMaterialization([]privacy.Level{privacy.Public}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	e := r.execution("disease-susceptibility", "E1")
	var internalID string
	for id, it := range e.Items {
		if it.Attr == "snp_set" {
			internalID = id
		}
	}
	if _, err := r.Provenance("bob", "disease-susceptibility", "E1", internalID); err == nil {
		t.Fatal("internal item visible through materialized view")
	}
}

func TestMaterializationNewSpecRegistered(t *testing.T) {
	r := New()
	r.AddUser(privacy.User{Name: "u", Level: privacy.Public, Group: "g"})
	if err := r.EnableMaterialization([]privacy.Level{privacy.Public}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	spec := workflow.DiseaseSusceptibility()
	if err := r.AddSpec(spec, nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	e, _ := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "e", "lifestyle": "l",
		"family_history": "f", "symptoms": "s",
	})
	if err := r.AddExecution(e); err != nil {
		t.Fatalf("AddExecution after enable: %v", err)
	}
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	if _, err := r.Provenance("u", spec.ID, "E1", progID); err != nil {
		t.Fatalf("Provenance: %v", err)
	}
}
