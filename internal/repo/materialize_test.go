package repo

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func TestMaterializedProvenanceMatchesOnTheFly(t *testing.T) {
	// Two identical repositories, one materialized — answers must agree.
	plain := seededRepo(t)
	mat := seededRepo(t)
	if err := mat.EnableMaterialization([]privacy.Level{privacy.Public, privacy.Analyst}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	e := plain.execution("disease-susceptibility", "E1")
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	for _, user := range []string{"bob", "carol"} { // public, analyst
		a, errA := plain.Provenance(user, "disease-susceptibility", "E1", progID)
		b, errB := mat.Provenance(user, "disease-susceptibility", "E1", progID)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", user, errA, errB)
		}
		if errA != nil {
			continue
		}
		if strings.Join(a.NodeIDs(), ",") != strings.Join(b.NodeIDs(), ",") {
			t.Fatalf("%s: nodes differ:\n%v\n%v", user, a.NodeIDs(), b.NodeIDs())
		}
		for id, it := range a.Items {
			bit := b.Items[id]
			if bit == nil || bit.Redacted != it.Redacted || bit.Value != it.Value {
				t.Fatalf("%s: item %s differs: %+v vs %+v", user, id, it, bit)
			}
		}
	}
}

func TestMaterializationCoversNewExecutions(t *testing.T) {
	r := seededRepo(t)
	if err := r.EnableMaterialization([]privacy.Level{privacy.Public}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	// Add a second execution after enabling.
	spec := r.Spec("disease-susceptibility")
	e2, err := exec.NewRunner(spec, nil).Run("E2", map[string]exec.Value{
		"snps": "rs9", "ethnicity": "eth2", "lifestyle": "sedentary",
		"family_history": "none", "symptoms": "cough",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.AddExecution(e2); err != nil {
		t.Fatalf("AddExecution: %v", err)
	}
	var progID string
	for id, it := range e2.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	prov, err := r.Provenance("bob", "disease-susceptibility", "E2", progID)
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	if len(prov.Nodes) == 0 {
		t.Fatal("empty provenance from materialized path")
	}
}

func TestMaterializationHidesInternalItems(t *testing.T) {
	r := seededRepo(t)
	if err := r.EnableMaterialization([]privacy.Level{privacy.Public}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	e := r.execution("disease-susceptibility", "E1")
	var internalID string
	for id, it := range e.Items {
		if it.Attr == "snp_set" {
			internalID = id
		}
	}
	if _, err := r.Provenance("bob", "disease-susceptibility", "E1", internalID); err == nil {
		t.Fatal("internal item visible through materialized view")
	}
}

// snpsLadder is the generalization fixture of the parity tests: rs1 →
// chr1 → genome.
func snpsLadder() map[string]*datapriv.Hierarchy {
	return map[string]*datapriv.Hierarchy{
		"snps": {Attr: "snps", Levels: []map[exec.Value]exec.Value{
			{"rs1": "chr1"},
			{"chr1": "genome"},
		}},
	}
}

// allLevels are the access levels the parity sweep materializes.
var allLevels = []privacy.Level{privacy.Public, privacy.Registered, privacy.Analyst, privacy.Owner}

// assertViewSnapshotParity compares, for every materialized level, the
// view store's output with the masked-snapshot cache's output for the
// same execution: identical node sets and byte-identical item values /
// redaction flags. This is the regression test for the masking-parity
// bug where materialized views redacted where the taint/snapshot path
// generalized.
func assertViewSnapshotParity(t *testing.T, r *Repository, specID, execID string) {
	t.Helper()
	sh := r.shard(specID)
	if sh == nil {
		t.Fatalf("no shard for %s", specID)
	}
	sh.mu.RLock()
	e := sh.execs[execID]
	vs := sh.viewStore
	sh.mu.RUnlock()
	if e == nil || vs == nil {
		t.Fatalf("missing execution %s or view store", execID)
	}
	for _, lvl := range allLevels {
		view := vs.Get(specID, execID, lvl)
		if view == nil {
			t.Fatalf("level %v: no materialized view", lvl)
		}
		snap, err := r.maskedExecFor(context.Background(), sh, e, lvl)
		if err != nil {
			t.Fatalf("level %v: maskedExecFor: %v", lvl, err)
		}
		want := snap.prep.Exec
		if got, wantIDs := fmt.Sprint(view.NodeIDs()), fmt.Sprint(want.NodeIDs()); got != wantIDs {
			t.Fatalf("level %v: node sets differ:\nview:     %s\nsnapshot: %s", lvl, got, wantIDs)
		}
		if len(view.Items) != len(want.Items) {
			t.Fatalf("level %v: item counts differ: %d vs %d", lvl, len(view.Items), len(want.Items))
		}
		for id, it := range view.Items {
			wit := want.Items[id]
			if wit == nil {
				t.Fatalf("level %v: item %s only in view", lvl, id)
			}
			if it.Redacted != wit.Redacted || it.Value != wit.Value {
				t.Fatalf("level %v item %s: view %+v != snapshot %+v — materialized masking diverged",
					lvl, id, it, wit)
			}
		}
	}
}

// TestViewSnapshotMaskingParity: with generalization ladders installed,
// materialized views must generalize exactly like the masked-snapshot
// path at every privacy level — in both mutation orders (ladders before
// materialization, and ladders installed into an already-materialized
// repository, which rebuilds the view stores).
func TestViewSnapshotMaskingParity(t *testing.T) {
	t.Run("generalize-then-materialize", func(t *testing.T) {
		r := seededRepo(t)
		if err := r.SetGeneralization("disease-susceptibility", snpsLadder()); err != nil {
			t.Fatalf("SetGeneralization: %v", err)
		}
		if err := r.EnableMaterialization(allLevels); err != nil {
			t.Fatalf("EnableMaterialization: %v", err)
		}
		assertViewSnapshotParity(t, r, "disease-susceptibility", "E1")
	})
	t.Run("materialize-then-generalize", func(t *testing.T) {
		r := seededRepo(t)
		if err := r.EnableMaterialization(allLevels); err != nil {
			t.Fatalf("EnableMaterialization: %v", err)
		}
		if err := r.SetGeneralization("disease-susceptibility", snpsLadder()); err != nil {
			t.Fatalf("SetGeneralization: %v", err)
		}
		assertViewSnapshotParity(t, r, "disease-susceptibility", "E1")
	})
	t.Run("no-ladders", func(t *testing.T) {
		// Redaction-only policies must agree too (the pre-existing case).
		r := seededRepo(t)
		if err := r.EnableMaterialization(allLevels); err != nil {
			t.Fatalf("EnableMaterialization: %v", err)
		}
		assertViewSnapshotParity(t, r, "disease-susceptibility", "E1")
	})
}

// TestMaterializedGeneralizedProvenance is the end-to-end shape of the
// parity bug: with ladders AND materialization on, a below-level user's
// provenance must carry the generalized value — served from the view
// store fast path — not a redaction, and must equal the answer of an
// unmaterialized repository.
func TestMaterializedGeneralizedProvenance(t *testing.T) {
	plain := seededRepo(t)
	mat := seededRepo(t)
	for _, r := range []*Repository{plain, mat} {
		if err := r.SetGeneralization("disease-susceptibility", snpsLadder()); err != nil {
			t.Fatalf("SetGeneralization: %v", err)
		}
	}
	if err := mat.EnableMaterialization(allLevels); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	e := plain.execution("disease-susceptibility", "E1")
	var progID, snpID string
	for id, it := range e.Items {
		switch it.Attr {
		case "prognosis":
			progID = id
		case "snps":
			snpID = id
		}
	}
	for _, user := range []string{"bob", "carol", "alice"} {
		a, errA := plain.Provenance(user, "disease-susceptibility", "E1", progID)
		b, errB := mat.Provenance(user, "disease-susceptibility", "E1", progID)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: error mismatch: %v vs %v", user, errA, errB)
		}
		if errA != nil {
			continue
		}
		for id, it := range a.Items {
			bit := b.Items[id]
			if bit == nil || bit.Redacted != it.Redacted || bit.Value != it.Value {
				t.Fatalf("%s: item %s differs: %+v vs %+v", user, id, it, bit)
			}
		}
	}
	// The materialized fast path itself generalizes: carol (analyst, one
	// level short of owner) sees chr1, not a redaction.
	prov, err := mat.Provenance("carol", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatalf("Provenance: %v", err)
	}
	it := prov.Items[snpID]
	if it == nil || it.Redacted || it.Value != "chr1" {
		t.Fatalf("materialized analyst snps = %+v, want generalized chr1", it)
	}
}

func TestMaterializationNewSpecRegistered(t *testing.T) {
	r := New()
	r.AddUser(privacy.User{Name: "u", Level: privacy.Public, Group: "g"})
	if err := r.EnableMaterialization([]privacy.Level{privacy.Public}); err != nil {
		t.Fatalf("EnableMaterialization: %v", err)
	}
	spec := workflow.DiseaseSusceptibility()
	if err := r.AddSpec(spec, nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	e, _ := exec.NewRunner(spec, nil).Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "e", "lifestyle": "l",
		"family_history": "f", "symptoms": "s",
	})
	if err := r.AddExecution(e); err != nil {
		t.Fatalf("AddExecution after enable: %v", err)
	}
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	if _, err := r.Provenance("u", spec.ID, "E1", progID); err != nil {
		t.Fatalf("Provenance: %v", err)
	}
}
