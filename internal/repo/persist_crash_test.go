package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/storage"
	"provpriv/internal/workload"
)

// crashFixture builds the three-spec repository the crash tests save:
// v1 state is one execution per shard and the synthetic policy (which
// always carries module levels).
func crashFixture(t *testing.T) *Repository {
	t.Helper()
	r := New()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%d", i)
		_, add := makeSynthSpec(t, int64(i), id)
		add(r)
		s := r.Spec(id)
		e, err := exec.NewRunner(s, nil).Run(id+"-E0", workload.RandomInputs(s, int64(i)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("AddExecution: %v", err)
		}
	}
	r.AddUser(privacy.User{Name: "ana", Level: privacy.Analyst, Group: "g"})
	return r
}

// mutateToV2 moves every shard to its v2 state: a second execution and
// an all-public replacement policy (module levels cleared — the marker
// snapshotVersion keys on).
func mutateToV2(t *testing.T, r *Repository) {
	t.Helper()
	for i := 0; i < 3; i++ {
		sid := fmt.Sprintf("s%d", i)
		s := r.Spec(sid)
		e, err := exec.NewRunner(s, nil).Run(sid+"-E1", workload.RandomInputs(s, int64(100+i)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("AddExecution: %v", err)
		}
		if err := r.UpdatePolicy(sid, nil); err != nil {
			t.Fatalf("UpdatePolicy: %v", err)
		}
	}
}

// snapshotVersion classifies a loaded repository as all-v1 or all-v2
// and fails the test on any mixed-generation state — the torn-snapshot
// condition this PR exists to rule out.
func snapshotVersion(t *testing.T, r *Repository) int {
	t.Helper()
	ver := 0
	for i := 0; i < 3; i++ {
		sid := fmt.Sprintf("s%d", i)
		sh := r.shard(sid)
		if sh == nil {
			t.Fatalf("shard %s missing after load", sid)
		}
		sh.mu.RLock()
		execN, mods := len(sh.execs), len(sh.policy.ModuleLevels)
		sh.mu.RUnlock()
		var v int
		switch {
		case execN == 1 && mods > 0:
			v = 1
		case execN == 2 && mods == 0:
			v = 2
		default:
			t.Fatalf("shard %s torn: %d execs with %d module levels", sid, execN, mods)
		}
		if ver == 0 {
			ver = v
		} else if v != ver {
			t.Fatalf("mixed generations: shard %s is v%d, earlier shards v%d", sid, v, ver)
		}
	}
	return ver
}

// TestTornSnapshotKillMatrix is the regression test for the
// torn-snapshot bug: a save of a multi-shard v2 snapshot is killed at
// every backend call boundary — before and after each shard write and
// the manifest commit — and after every injected crash the directory
// must load as a single consistent generation: complete v1 until the
// commit lands, complete v2 once it has. A recovery save must then
// bring the directory fully to v2. (Save only ever appends deltas now;
// the checkpoint-write crash points live in the background-fold matrix
// below.)
func TestTornSnapshotKillMatrix(t *testing.T) {
	type kp struct {
		op    string
		n     int
		after bool
	}
	var points []kp
	for n := 1; n <= 3; n++ {
		points = append(points, kp{storage.OpAppend, n, false}, kp{storage.OpAppend, n, true})
	}
	points = append(points, kp{storage.OpCommit, 1, false}, kp{storage.OpCommit, 1, true})
	backends := map[string]func(dir string) (storage.Backend, error){
		"flat": func(dir string) (storage.Backend, error) { return storage.OpenFlat(dir) },
		"kv":   func(dir string) (storage.Backend, error) { return storage.OpenKV(dir) },
	}
	for bname, open := range backends {
		t.Run(bname, func(t *testing.T) {
			for _, p := range points {
				mode := "before"
				if p.after {
					mode = "after"
				}
				t.Run(fmt.Sprintf("%s-%s-%d", mode, p.op, p.n), func(t *testing.T) {
					dir := t.TempDir()
					r := crashFixture(t)
					base, err := open(dir)
					if err != nil {
						t.Fatalf("open backend: %v", err)
					}
					f := storage.NewFault(base)
					if err := r.BindStorage(f, dir); err != nil {
						t.Fatalf("BindStorage: %v", err)
					}
					if err := r.Save(dir); err != nil {
						t.Fatalf("v1 save: %v", err)
					}
					mutateToV2(t, r)
					// Kill points are relative to the v2 save: offset by the
					// calls the v1 save already made.
					n := f.Calls(p.op) + p.n
					if p.after {
						f.KillAfter(p.op, n)
					} else {
						f.KillBefore(p.op, n)
					}
					if err := r.Save(dir); err == nil {
						t.Fatalf("kill point %s %s #%d never fired", mode, p.op, p.n)
					}
					r2, err := Load(dir)
					if err != nil {
						t.Fatalf("Load after injected crash: %v", err)
					}
					got := snapshotVersion(t, r2)
					r2.CloseStorage()
					want := 1
					if p.op == storage.OpCommit && p.after {
						// The manifest landed before the crash: v2 is committed.
						want = 2
					}
					if got != want {
						t.Fatalf("loaded v%d after crash %s %s #%d, want v%d", got, mode, p.op, p.n, want)
					}
					// The failed save dropped the binding; a fresh save must
					// recover the directory to complete v2.
					if err := r.Save(dir); err != nil {
						t.Fatalf("recovery save: %v", err)
					}
					r3, err := Load(dir)
					if err != nil {
						t.Fatalf("Load after recovery: %v", err)
					}
					if got := snapshotVersion(t, r3); got != 2 {
						t.Fatalf("recovery save left v%d, want v2", got)
					}
					r3.CloseStorage()
					r.CloseStorage()
				})
			}
		})
	}
}

// TestBackgroundFoldKillMatrix extends the kill matrix to crashes
// landing inside a background compaction fold: after a committed v2
// save, CompactShard runs over every shard with a kill injected at each
// checkpoint-write and manifest-commit boundary. A fold only rewrites
// committed data, so whatever the crash point, a reload must always be
// complete v2 — compaction can never lose or tear a snapshot — and a
// recovery save through a fresh binding must succeed, after which
// compaction completes cleanly.
func TestBackgroundFoldKillMatrix(t *testing.T) {
	type kp struct {
		op    string
		n     int // nth fold op during the compaction pass (1-based)
		after bool
	}
	var points []kp
	for n := 1; n <= 3; n++ {
		points = append(points,
			kp{storage.OpWriteCheckpoint, n, false}, kp{storage.OpWriteCheckpoint, n, true},
			kp{storage.OpCommit, n, false}, kp{storage.OpCommit, n, true})
	}
	backends := map[string]func(dir string) (storage.Backend, error){
		"flat": func(dir string) (storage.Backend, error) { return storage.OpenFlat(dir) },
		"kv":   func(dir string) (storage.Backend, error) { return storage.OpenKV(dir) },
	}
	for bname, open := range backends {
		t.Run(bname, func(t *testing.T) {
			for _, p := range points {
				mode := "before"
				if p.after {
					mode = "after"
				}
				t.Run(fmt.Sprintf("%s-%s-%d", mode, p.op, p.n), func(t *testing.T) {
					dir := t.TempDir()
					r := crashFixture(t)
					base, err := open(dir)
					if err != nil {
						t.Fatalf("open backend: %v", err)
					}
					f := storage.NewFault(base)
					if err := r.BindStorage(f, dir); err != nil {
						t.Fatalf("BindStorage: %v", err)
					}
					if err := r.Save(dir); err != nil {
						t.Fatalf("v1 save: %v", err)
					}
					mutateToV2(t, r)
					if err := r.Save(dir); err != nil {
						t.Fatalf("v2 save: %v", err)
					}
					// Kill points are relative to the compaction pass: offset
					// by the calls the two saves already made.
					n := f.Calls(p.op) + p.n
					if p.after {
						f.KillAfter(p.op, n)
					} else {
						f.KillBefore(p.op, n)
					}
					var foldErr error
					for i := 0; i < 3; i++ {
						if err := r.CompactShard(fmt.Sprintf("s%d", i)); err != nil {
							foldErr = err
							break
						}
					}
					if foldErr == nil {
						t.Fatalf("kill point %s %s #%d never fired", mode, p.op, p.n)
					}
					// A fold crash can never cost data: reload is complete v2
					// no matter where the kill landed.
					r2, err := Load(dir)
					if err != nil {
						t.Fatalf("Load after injected fold crash: %v", err)
					}
					if got := snapshotVersion(t, r2); got != 2 {
						t.Fatalf("loaded v%d after fold crash %s %s #%d, want v2", got, mode, p.op, p.n)
					}
					r2.CloseStorage()
					// The failed fold dropped the binding; the next save rebinds
					// and rewrites, and compaction then completes cleanly.
					if err := r.Save(dir); err != nil {
						t.Fatalf("recovery save: %v", err)
					}
					for i := 0; i < 3; i++ {
						if err := r.CompactShard(fmt.Sprintf("s%d", i)); err != nil {
							t.Fatalf("compaction after recovery: %v", err)
						}
					}
					r3, err := Load(dir)
					if err != nil {
						t.Fatalf("Load after recovery: %v", err)
					}
					if got := snapshotVersion(t, r3); got != 2 {
						t.Fatalf("recovery left v%d, want v2", got)
					}
					r3.CloseStorage()
					r.CloseStorage()
				})
			}
		})
	}
}

// TestLoadDuringSaveSingleGeneration interleaves concurrent Loads with
// a writer that keeps adding one execution to every shard and saving:
// each successful Load must observe the same execution count on every
// shard — one committed generation, never a cross-shard mix. The
// compaction threshold is lowered so checkpoint folds and pruning
// happen mid-churn; a reader that falls more than one commit behind may
// lose its files to pruning and is allowed to retry.
func TestLoadDuringSaveSingleGeneration(t *testing.T) {
	oldThreshold := compactThreshold
	compactThreshold = 5
	defer func() { compactThreshold = oldThreshold }()
	for _, backend := range []string{"flat", "kv"} {
		t.Run(backend, func(t *testing.T) {
			dir := t.TempDir()
			r := crashFixture(t)
			if backend == "kv" {
				b, err := storage.OpenKV(dir)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.BindStorage(b, dir); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Save(dir); err != nil {
				t.Fatalf("initial save: %v", err)
			}
			defer r.CloseStorage()
			const rounds = 8
			var wg sync.WaitGroup
			var loads atomic.Int64
			done := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(done)
				for v := 1; v <= rounds; v++ {
					for i := 0; i < 3; i++ {
						sid := fmt.Sprintf("s%d", i)
						s := r.Spec(sid)
						e, err := exec.NewRunner(s, nil).Run(
							fmt.Sprintf("%s-E%d", sid, v), workload.RandomInputs(s, int64(100*v+i)))
						if err != nil {
							t.Errorf("Run: %v", err)
							return
						}
						if err := r.AddExecution(e); err != nil {
							t.Errorf("AddExecution: %v", err)
							return
						}
					}
					if err := r.Save(dir); err != nil {
						t.Errorf("save round %d: %v", v, err)
						return
					}
				}
			}()
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						r2, err := Load(dir)
						if err != nil {
							continue // pruned under us: >1 commit behind, retry
						}
						want := -1
						for i := 0; i < 3; i++ {
							sh := r2.shard(fmt.Sprintf("s%d", i))
							if sh == nil {
								t.Error("loaded repo missing a shard")
								return
							}
							sh.mu.RLock()
							n := len(sh.execs)
							sh.mu.RUnlock()
							if want == -1 {
								want = n
							} else if n != want {
								t.Errorf("mixed generations: shard s%d has %d execs, s0 has %d", i, n, want)
								return
							}
						}
						r2.CloseStorage()
						loads.Add(1)
					}
				}()
			}
			wg.Wait()
			if loads.Load() == 0 {
				t.Fatal("no concurrent Load ever succeeded")
			}
		})
	}
}

// writeLegacyDir writes a pre-log-layout directory by hand: per-entity
// JSON files plus the parallel-list manifest, exactly what the old Save
// and cmd/provgen's legacy mode produced.
func writeLegacyDir(t *testing.T, dir string, man legacyManifest, files map[string]interface{}) {
	t.Helper()
	for name, v := range files {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %s: %v", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// legacyFixture builds two specs with policies and one execution each,
// returning the manifest and file map for writeLegacyDir.
func legacyFixture(t *testing.T) (legacyManifest, map[string]interface{}) {
	t.Helper()
	man := legacyManifest{
		Users: []privacy.User{{Name: "ana", Level: privacy.Analyst, Group: "g"}},
	}
	files := make(map[string]interface{})
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("s%d", i)
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: int64(i), ID: id, Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.2,
		})
		if err != nil {
			t.Fatalf("RandomSpec: %v", err)
		}
		pol := privacy.NewPolicy(id)
		for _, wid := range s.WorkflowIDs() {
			pol.ModuleLevels[s.Workflows[wid].Modules[0].ID] = privacy.Analyst
			break
		}
		e, err := exec.NewRunner(s, nil).Run(id+"-E0", workload.RandomInputs(s, int64(i)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		specFile := fmt.Sprintf("spec-%d.json", i)
		polFile := fmt.Sprintf("policy-%d.json", i)
		execFile := fmt.Sprintf("exec-%d-0.json", i)
		files[specFile], files[polFile], files[execFile] = s, pol, e
		man.Specs = append(man.Specs, specFile)
		man.Policies = append(man.Policies, polFile)
		man.Executions = append(man.Executions, execFile)
	}
	return man, files
}

// TestLegacyDirectoryLoadsAndMigrates: a pre-log directory still loads,
// and the first Save migrates it to the log engine — committing the new
// layout and pruning every legacy per-entity file.
func TestLegacyDirectoryLoadsAndMigrates(t *testing.T) {
	dir := t.TempDir()
	man, files := legacyFixture(t)
	writeLegacyDir(t, dir, man, files)

	r, err := Load(dir)
	if err != nil {
		t.Fatalf("Load legacy: %v", err)
	}
	before := r.Stats().Content()
	if before.Specs != 2 || before.Executions != 2 {
		t.Fatalf("legacy load content = %+v", before)
	}
	sh := r.shard("s0")
	sh.mu.RLock()
	mods := len(sh.policy.ModuleLevels)
	sh.mu.RUnlock()
	if mods == 0 {
		t.Fatal("legacy policy not honored")
	}

	// Migration: saving back rewrites the directory under the log engine.
	if err := r.Save(dir); err != nil {
		t.Fatalf("migrating save: %v", err)
	}
	defer r.CloseStorage()
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"format"`) {
		t.Fatalf("manifest not migrated to log format:\n%s", data)
	}
	for name := range files {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("legacy file %s survived migration (err=%v)", name, err)
		}
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after migration: %v", err)
	}
	if after := r2.Stats().Content(); after != before {
		t.Fatalf("migration changed content: %+v vs %+v", after, before)
	}
	r2.CloseStorage()
}

// TestLegacyManifestPolicyCountMismatch: a legacy manifest with fewer
// policies than specs used to silently assign all-public policies to
// the positional tail — it must be rejected instead.
func TestLegacyManifestPolicyCountMismatch(t *testing.T) {
	dir := t.TempDir()
	man, files := legacyFixture(t)
	man.Policies = man.Policies[:1]
	writeLegacyDir(t, dir, man, files)
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "pairs 2 specs with 1 policies") {
		t.Fatalf("short policy list accepted (err=%v)", err)
	}
}

// TestLegacyManifestPolicySpecMismatch: each legacy policy must name
// the spec it is positionally paired with; swapped policy files would
// otherwise silently mis-grant access.
func TestLegacyManifestPolicySpecMismatch(t *testing.T) {
	dir := t.TempDir()
	man, files := legacyFixture(t)
	man.Policies[0], man.Policies[1] = man.Policies[1], man.Policies[0]
	writeLegacyDir(t, dir, man, files)
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "policy for") {
		t.Fatalf("mispaired policy accepted (err=%v)", err)
	}
}

// TestSaveNeverFoldsInline is the op-counter proof that compaction left
// the save path: repeated saves past the threshold only ever append —
// the measured backend's checkpoint counter stays at the initial shard
// write — while NeedsCompaction nominates the outgrown shard for the
// background fold, and CompactShard then folds it into a fresh
// checkpoint with an empty log, preserving every execution.
func TestSaveNeverFoldsInline(t *testing.T) {
	oldThreshold := compactThreshold
	compactThreshold = 2
	defer func() { compactThreshold = oldThreshold }()
	dir := t.TempDir()
	r := New()
	_, add := makeSynthSpec(t, 1, "s")
	add(r)
	s := r.Spec("s")
	b, err := storage.OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := storage.NewMeasure(b)
	if err := r.BindStorage(m, dir); err != nil {
		t.Fatalf("BindStorage: %v", err)
	}
	const rounds = 6
	for i := 0; i < rounds; i++ {
		e, err := exec.NewRunner(s, nil).Run(fmt.Sprintf("s-E%d", i), workload.RandomInputs(s, int64(i)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("AddExecution: %v", err)
		}
		if err := r.Save(dir); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	defer r.CloseStorage()
	// Save 1 wrote the shard's initial checkpoint; every later save must
	// append its delta no matter how far the log outgrows the threshold.
	st := m.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("saves performed %d checkpoint writes, want 1 (inline folding is gone)", st.Checkpoints)
	}
	if st.Appends != rounds-1 {
		t.Errorf("saves performed %d appends, want %d", st.Appends, rounds-1)
	}
	if got := r.NeedsCompaction(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("NeedsCompaction = %v, want [s]", got)
	}
	if err := r.CompactShard("s"); err != nil {
		t.Fatalf("CompactShard: %v", err)
	}
	if st := m.Stats(); st.Checkpoints != 2 {
		t.Fatalf("fold wrote %d checkpoints total, want 2", st.Checkpoints)
	}
	if got := r.NeedsCompaction(); len(got) != 0 {
		t.Fatalf("NeedsCompaction after fold = %v, want empty", got)
	}
	// The committed manifest points at the folded checkpoint, empty log.
	meta, err := m.Meta()
	if err != nil {
		t.Fatal(err)
	}
	info, ok := meta.Shards["s"]
	if !ok {
		t.Fatalf("no shard in manifest: %+v", meta)
	}
	if info.LogLen != 0 || info.Checkpoint != meta.Generation {
		t.Fatalf("log not folded: checkpoint gen %d/%d, log len %d", info.Checkpoint, meta.Generation, info.LogLen)
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after fold: %v", err)
	}
	defer r2.CloseStorage()
	sh := r2.shard("s")
	sh.mu.RLock()
	n := len(sh.execs)
	sh.mu.RUnlock()
	if n != rounds {
		t.Fatalf("fold lost executions: %d, want %d", n, rounds)
	}
	// Folding is idempotent and cheap to re-check: a second CompactShard
	// is a no-op.
	if err := r.CompactShard("s"); err != nil {
		t.Fatalf("re-compact: %v", err)
	}
	if st := m.Stats(); st.Checkpoints != 2 {
		t.Fatalf("re-compact wrote a checkpoint: %d total", st.Checkpoints)
	}
}

// TestCompactShardConflictAndRetry pins the fold's optimistic race
// check: a mutation wedged between the snapshot and the commit makes
// the fold lose with ErrCompactConflict (the retryable outcome the task
// runtime backs off on), unsaved mutations also conflict, and after the
// next save the retried fold wins.
func TestCompactShardConflictAndRetry(t *testing.T) {
	oldThreshold := compactThreshold
	compactThreshold = 0
	defer func() { compactThreshold = oldThreshold }()
	dir := t.TempDir()
	r := New()
	_, add := makeSynthSpec(t, 1, "s")
	add(r)
	s := r.Spec("s")
	addExec := func(i int) {
		t.Helper()
		e, err := exec.NewRunner(s, nil).Run(fmt.Sprintf("s-E%d", i), workload.RandomInputs(s, int64(i)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("AddExecution: %v", err)
		}
	}
	addExec(0)
	if err := r.Save(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	defer r.CloseStorage()
	addExec(1)
	if err := r.Save(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Snapshot, then let a newer save land before the commit: the fold's
	// records no longer match the committed extent — it must lose, or the
	// commit would point the manifest at a checkpoint missing E2.
	snap := snapshotShardState(r.shard("s"))
	addExec(2)
	if err := r.Save(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := r.compactFrom("s", snap); !errors.Is(err, ErrCompactConflict) {
		t.Fatalf("fold racing a newer save = %v, want ErrCompactConflict", err)
	}
	// A fold over unsaved mutations also conflicts: the snapshot holds
	// state the store has never committed.
	addExec(3)
	if err := r.CompactShard("s"); !errors.Is(err, ErrCompactConflict) {
		t.Fatalf("fold over unsaved mutations = %v, want ErrCompactConflict", err)
	}
	// The retry after the next save wins.
	if err := r.Save(dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := r.CompactShard("s"); err != nil {
		t.Fatalf("retried fold: %v", err)
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer r2.CloseStorage()
	sh := r2.shard("s")
	sh.mu.RLock()
	n := len(sh.execs)
	sh.mu.RUnlock()
	if n != 4 {
		t.Fatalf("fold lost executions: %d, want 4", n)
	}
	// Unbound repository: compaction has nothing to write to.
	if err := New().CompactShard("s"); err != nil {
		t.Fatalf("CompactShard on empty repo = %v, want nil (no shard)", err)
	}
	r3 := New()
	_, add3 := makeSynthSpec(t, 2, "s")
	add3(r3)
	if err := r3.CompactShard("s"); !errors.Is(err, ErrNoStorage) {
		t.Fatalf("CompactShard without storage = %v, want ErrNoStorage", err)
	}
}

// TestKVBackendSaveLoadRoundTrip: a repository bound to the KV backend
// saves into the single store.kv file, Load sniffs the backend from the
// directory, and incremental saves keep working across the round trip.
func TestKVBackendSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := crashFixture(t)
	b, err := storage.OpenKV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.BindStorage(b, dir); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r.CloseStorage()
	if _, err := os.Stat(filepath.Join(dir, storage.KVFileName)); err != nil {
		t.Fatalf("no KV data file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); !os.IsNotExist(err) {
		t.Fatalf("KV backend wrote flat-layout files (err=%v)", err)
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got, want := r2.Stats().Content(), r.Stats().Content(); got != want {
		t.Fatalf("KV round trip: %+v vs %+v", got, want)
	}
	// The loaded repository is bound: an incremental save appends.
	s := r2.Spec("s0")
	e, err := exec.NewRunner(s, nil).Run("s0-E9", workload.RandomInputs(s, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.AddExecution(e); err != nil {
		t.Fatal(err)
	}
	if err := r2.Save(dir); err != nil {
		t.Fatalf("incremental KV save: %v", err)
	}
	r2.CloseStorage()
	r3, err := Load(dir)
	if err != nil {
		t.Fatalf("Load after incremental save: %v", err)
	}
	defer r3.CloseStorage()
	sh := r3.shard("s0")
	sh.mu.RLock()
	n := len(sh.execs)
	sh.mu.RUnlock()
	if n != 2 {
		t.Fatalf("incremental KV save lost the execution: %d execs", n)
	}
}

// TestGeneralizationPersists: installed ladders survive the save/load
// round trip — a loaded repository generalizes instead of redacting,
// exactly like the one that saved it. (Before the log engine, ladders
// were never persisted at all.)
func TestGeneralizationPersists(t *testing.T) {
	r := seededRepo(t)
	if err := r.SetGeneralization("disease-susceptibility", snpsLadder()); err != nil {
		t.Fatalf("SetGeneralization: %v", err)
	}
	dir := t.TempDir()
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer r2.CloseStorage()
	snpID := itemByAttr(t, r, "snps")
	progID := itemByAttr(t, r, "prognosis")
	want, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r2.Provenance("bob", "disease-susceptibility", "E1", progID)
	if err != nil {
		t.Fatal(err)
	}
	wi, gi := want.Items[snpID], got.Items[snpID]
	if wi == nil || gi == nil {
		t.Fatalf("snps item missing: %v vs %v", wi, gi)
	}
	if gi.Redacted || gi.Value != wi.Value || gi.Value == "rs1" {
		t.Fatalf("ladders lost in round trip: loaded %+v, want %+v", gi, wi)
	}
}
