package repo

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/storage"
	"provpriv/internal/workload"
)

// ckptFile/walFile name a shard's checkpoint and log files in the flat
// backend's layout (mirrored here so the tests can assert which files a
// save touched).
func ckptFile(sid string, gen uint64) string {
	return fmt.Sprintf("ckpt-%s-%016x.log", storage.FileBase(sid), gen)
}

func walFile(sid string, gen uint64) string {
	return fmt.Sprintf("wal-%s-%016x.log", storage.FileBase(sid), gen)
}

// makeSynthSpec builds the deterministic synthetic spec + policy used by
// the derived-state tests (same shape as multiSpecRepo's fixture).
func makeSynthSpec(t testing.TB, seed int64, id string) (*privacy.Policy, func(r *Repository)) {
	t.Helper()
	s, err := workload.RandomSpec(workload.SpecConfig{
		Seed: seed, ID: id, Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.2,
	})
	if err != nil {
		t.Fatalf("RandomSpec: %v", err)
	}
	pol := privacy.NewPolicy(s.ID)
	k := 0
	for _, wid := range s.WorkflowIDs() {
		for _, m := range s.Workflows[wid].Modules {
			if k%3 == 0 {
				pol.ModuleLevels[m.ID] = privacy.Analyst
			}
			k++
		}
	}
	return pol, func(r *Repository) {
		if err := r.AddSpec(s, pol); err != nil {
			t.Fatalf("AddSpec(%s): %v", id, err)
		}
	}
}

// TestCorpusDeltaMatchesRebuild is the tentpole acceptance test: after a
// warm repository absorbs spec additions and removals through
// incremental corpus deltas, its ranking output must be identical to a
// repository built from scratch with the same final spec set — and the
// mutations must not have triggered a corpus rebuild.
func TestCorpusDeltaMatchesRebuild(t *testing.T) {
	r := New()
	for i := 0; i < 6; i++ {
		_, add := makeSynthSpec(t, int64(i), fmt.Sprintf("s%d", i))
		add(r)
	}
	for _, u := range []privacy.User{
		{Name: "pub", Level: privacy.Public, Group: "g0"},
		{Name: "reg", Level: privacy.Registered, Group: "g1"},
		{Name: "ana", Level: privacy.Analyst, Group: "g2"},
	} {
		r.AddUser(u)
	}
	// Warm every per-level corpus so the mutations below exercise the
	// delta path rather than lazily rebuilding.
	for _, u := range []string{"pub", "reg", "ana"} {
		if _, err := r.Search(u, "query", SearchOptions{BypassCache: true}); err != nil {
			t.Fatalf("warm search: %v", err)
		}
	}
	rebuildsBefore := r.Stats().CorpusRebuilds

	// Mutate: add two specs, remove one, replace nothing.
	_, add6 := makeSynthSpec(t, 100, "s6")
	add6(r)
	_, add7 := makeSynthSpec(t, 101, "s7")
	add7(r)
	if err := r.RemoveSpec("s1"); err != nil {
		t.Fatalf("RemoveSpec: %v", err)
	}

	st := r.Stats()
	if st.CorpusRebuilds != rebuildsBefore {
		t.Fatalf("spec mutations triggered corpus rebuilds: %d -> %d",
			rebuildsBefore, st.CorpusRebuilds)
	}
	if st.CorpusDeltas == 0 {
		t.Fatal("no corpus deltas recorded")
	}

	// From-scratch reference with the same final content.
	r2 := New()
	for _, spec := range []struct {
		seed int64
		id   string
	}{{0, "s0"}, {2, "s2"}, {3, "s3"}, {4, "s4"}, {5, "s5"}, {100, "s6"}, {101, "s7"}} {
		_, add := makeSynthSpec(t, spec.seed, spec.id)
		add(r2)
	}
	for _, u := range []privacy.User{
		{Name: "pub", Level: privacy.Public, Group: "g0"},
		{Name: "reg", Level: privacy.Registered, Group: "g1"},
		{Name: "ana", Level: privacy.Analyst, Group: "g2"},
	} {
		r2.AddUser(u)
	}

	for _, user := range []string{"pub", "reg", "ana"} {
		for _, q := range []string{"query", "database", "filter, merge"} {
			h1, err1 := r.Search(user, q, SearchOptions{BypassCache: true})
			h2, err2 := r2.Search(user, q, SearchOptions{BypassCache: true})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s %q: error mismatch %v vs %v", user, q, err1, err2)
			}
			if len(h1) != len(h2) {
				t.Fatalf("%s %q: %d hits (delta) vs %d (rebuild)", user, q, len(h1), len(h2))
			}
			for i := range h1 {
				if h1[i].SpecID != h2[i].SpecID || h1[i].Score != h2[i].Score {
					t.Fatalf("%s %q hit %d: (%s,%v) delta vs (%s,%v) rebuild",
						user, q, i, h1[i].SpecID, h1[i].Score, h2[i].SpecID, h2[i].Score)
				}
			}
		}
	}
}

// TestUpdatePolicyReclassifies covers the full-rebuild fallback: a
// policy change that reclassifies module levels must change what a
// low-privilege search can see, and must go through corpus invalidation
// (not a delta).
func TestUpdatePolicyReclassifies(t *testing.T) {
	r := seededRepo(t) // module M6 ("omim") requires Owner
	if hits, err := r.Search("bob", "omim", SearchOptions{BypassCache: true}); err == nil && len(hits) > 0 {
		t.Fatalf("public user found owner-level term before update: %v", hits)
	}
	// Warm the public corpus, then reclassify everything public.
	if _, err := r.Search("bob", "database", SearchOptions{BypassCache: true}); err != nil {
		t.Fatalf("warm search: %v", err)
	}
	deltasBefore := r.Stats().CorpusDeltas
	if err := r.UpdatePolicy("disease-susceptibility", nil); err != nil {
		t.Fatalf("UpdatePolicy: %v", err)
	}
	hits, err := r.Search("bob", "omim", SearchOptions{BypassCache: true})
	if err != nil || len(hits) == 0 {
		t.Fatalf("public user still blind after all-public policy: %v, %v", hits, err)
	}
	st := r.Stats()
	if st.CorpusDeltas != deltasBefore {
		t.Fatalf("policy change went through the delta path: %d -> %d",
			deltasBefore, st.CorpusDeltas)
	}
	if st.CorpusRebuilds == 0 {
		t.Fatal("no corpus rebuild after policy change")
	}
	if err := r.UpdatePolicy("ghost", nil); err == nil {
		t.Fatal("UpdatePolicy on unknown spec accepted")
	}
}

// TestSearchMutateChurnNoStalePostings is the ISSUE's mutate-while-
// search stress test (run under -race): one goroutine churns specs
// in and out of the repository while readers hammer Search; after each
// RemoveSpec returns, an immediate search must not surface the removed
// spec — the swapped index snapshot guarantees it.
func TestSearchMutateChurnNoStalePostings(t *testing.T) {
	r := New()
	for i := 0; i < 4; i++ {
		_, add := makeSynthSpec(t, int64(i), fmt.Sprintf("s%d", i))
		add(r)
	}
	r.AddUser(privacy.User{Name: "ana", Level: privacy.Analyst, Group: "g"})
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 12; i++ {
			sid := fmt.Sprintf("churn%d", i)
			_, add := makeSynthSpec(t, int64(500+i), sid)
			add(r)
			if err := r.RemoveSpec(sid); err != nil {
				t.Errorf("RemoveSpec: %v", err)
				return
			}
			// The hard guarantee: the mutation thread has seen
			// RemoveSpec return, so its own search must never surface
			// the spec again.
			hits, err := r.Search("ana", "query", SearchOptions{BypassCache: true})
			if err != nil {
				continue // all-phrase miss is legal mid-churn
			}
			for _, h := range hits {
				if h.SpecID == sid {
					t.Errorf("stale hit for removed spec %s", sid)
					return
				}
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				hits, err := r.Search("ana", "query, filter", SearchOptions{BypassCache: g%2 == 0})
				if err != nil {
					continue
				}
				for _, h := range hits {
					if h.Result == nil {
						t.Error("hit without result")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSaveIncremental verifies dirty-shard tracking: a second Save to
// the same directory rewrites only shards mutated in between (and the
// manifest), and leaves no temp files behind.
func TestSaveIncremental(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%d", i)
		_, add := makeSynthSpec(t, int64(i), id)
		add(r)
		s := r.Spec(id)
		e, err := exec.NewRunner(s, nil).Run(id+"-E0", workload.RandomInputs(s, int64(i)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("AddExecution: %v", err)
		}
	}
	dir := t.TempDir()
	if err := r.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Rewind every file's mtime so rewrites are observable.
	epoch := time.Unix(0, 0)
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.Contains(f.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", f.Name())
		}
		if err := os.Chtimes(filepath.Join(dir, f.Name()), epoch, epoch); err != nil {
			t.Fatal(err)
		}
	}
	// Mutate only s1.
	s := r.Spec("s1")
	e, err := exec.NewRunner(s, nil).Run("s1-E1", workload.RandomInputs(s, 99))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.AddExecution(e); err != nil {
		t.Fatalf("AddExecution: %v", err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	rewritten := func(name string) bool {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("stat %s: %v", name, err)
		}
		return st.ModTime().After(epoch)
	}
	// The first Save checkpointed every shard at generation 1; the
	// incremental save must leave clean shards' checkpoints untouched
	// and only append the new execution to s1's log.
	for _, clean := range []string{"s0", "s2"} {
		if rewritten(ckptFile(clean, 1)) {
			t.Fatalf("clean shard %s rewritten", clean)
		}
	}
	if rewritten(ckptFile("s1", 1)) {
		t.Fatal("dirty shard s1's checkpoint rewritten instead of appended to")
	}
	if !rewritten(walFile("s1", 1)) {
		t.Fatal("new execution not appended to s1's log")
	}
	if !rewritten("manifest.json") {
		t.Fatal("manifest not rewritten")
	}
	// The incrementally saved directory loads back completely.
	r2, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got, want := r2.Stats().Content(), r.Stats().Content(); got != want {
		t.Fatalf("round trip after incremental save: %+v vs %+v", got, want)
	}
	// Saving to a different directory starts from scratch and is
	// complete too.
	dir2 := t.TempDir()
	if err := r.Save(dir2); err != nil {
		t.Fatalf("Save to new dir: %v", err)
	}
	if _, err := Load(dir2); err != nil {
		t.Fatalf("Load from new dir: %v", err)
	}
}

// TestSaveAfterRemoveAndReadd guards the incremental-save bookkeeping
// against seq collisions: removing a spec and re-adding a different one
// under the same id between two saves must persist the new content
// (shard seqs are globally unique, so the second Save cannot mistake
// the new shard for the old one).
func TestSaveAfterRemoveAndReadd(t *testing.T) {
	r := New()
	s1, err := workload.RandomSpec(workload.SpecConfig{
		Seed: 1, ID: "s", Depth: 3, Fanout: 2, Chain: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddSpec(s1, nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Replace with a structurally different spec under the same id.
	if err := r.RemoveSpec("s"); err != nil {
		t.Fatal(err)
	}
	s2, err := workload.RandomSpec(workload.SpecConfig{
		Seed: 2, ID: "s", Depth: 2, Fanout: 1, Chain: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Workflows) == len(s1.Workflows) {
		t.Fatal("fixture specs must differ structurally")
	}
	if err := r.AddSpec(s2, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := r2.Spec("s")
	if got == nil || len(got.Workflows) != len(s2.Workflows) {
		t.Fatalf("stale spec persisted: got %d workflows, want %d",
			len(got.Workflows), len(s2.Workflows))
	}
}

// TestUpdatePolicyConcurrentQueries races UpdatePolicy against every
// policy-reading query path (run under -race): each operation must see
// one coherent policy, old or new, and never fail with an internal
// error.
func TestUpdatePolicyConcurrentQueries(t *testing.T) {
	r := seededRepo(t)
	strict := func() *privacy.Policy {
		pol := privacy.NewPolicy("disease-susceptibility")
		pol.DataLevels["snps"] = privacy.Owner
		pol.ModuleLevels["M6"] = privacy.Owner
		pol.ViewGrants[privacy.Registered] = []string{"W2"}
		pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
		return pol
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 10; i++ {
			var pol *privacy.Policy // all-public
			if i%2 == 0 {
				pol = strict()
			}
			if err := r.UpdatePolicy("disease-susceptibility", pol); err != nil {
				t.Errorf("UpdatePolicy: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			users := []string{"alice", "bob", "carol"}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				u := users[i%3]
				if _, err := r.Search(u, "database", SearchOptions{BypassCache: true}); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				if _, err := r.Query(u, "disease-susceptibility", "E1", `MATCH a = "reformat"`); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if _, err := r.Reaches(u, "disease-susceptibility", "M12", "M11"); err != nil {
					t.Errorf("Reaches: %v", err)
					return
				}
				if _, err := r.QueryAll(u, "disease-susceptibility", `MATCH a = "reformat"`); err != nil {
					t.Errorf("QueryAll: %v", err)
					return
				}
				if r.Policy("disease-susceptibility") == nil {
					t.Error("nil policy mid-update")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSavePrunesRemovedSpecFiles: a Save after RemoveSpec deletes the
// removed spec's on-disk files instead of leaving orphans forever.
func TestSavePrunesRemovedSpecFiles(t *testing.T) {
	r := New()
	for i := 0; i < 2; i++ {
		_, add := makeSynthSpec(t, int64(i), fmt.Sprintf("s%d", i))
		add(r)
	}
	dir := t.TempDir()
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	goneSpec := filepath.Join(dir, ckptFile("s1", 1))
	if _, err := os.Stat(goneSpec); err != nil {
		t.Fatalf("expected %s to exist: %v", goneSpec, err)
	}
	if err := r.RemoveSpec("s1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(goneSpec); !os.IsNotExist(err) {
		t.Fatalf("removed spec's file still on disk: %v", err)
	}
	for _, keep := range []string{ckptFile("s0", 1), "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Fatalf("live file %s pruned: %v", keep, err)
		}
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("Load after prune: %v", err)
	}
}
