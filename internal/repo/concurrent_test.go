package repo

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workload"
)

// These tests exercise the sharded engine adversarially and are meant
// to run under `go test -race`: searches, ingest, materialization
// toggles and spec removal all race against each other, and the
// assertions check that every observed answer is internally consistent
// (no partial state, no privacy downgrade) rather than that a specific
// interleaving happened.

func multiSpecRepo(t testing.TB, n int) *Repository {
	t.Helper()
	r := New()
	for i := 0; i < n; i++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: int64(i), ID: fmt.Sprintf("s%d", i), Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.2,
		})
		if err != nil {
			t.Fatalf("RandomSpec: %v", err)
		}
		pol := privacy.NewPolicy(s.ID)
		k := 0
		for _, wid := range s.WorkflowIDs() {
			for _, m := range s.Workflows[wid].Modules {
				if k%3 == 0 {
					pol.ModuleLevels[m.ID] = privacy.Analyst
				}
				k++
			}
		}
		if err := r.AddSpec(s, pol); err != nil {
			t.Fatalf("AddSpec: %v", err)
		}
		e, err := exec.NewRunner(s, nil).Run(s.ID+"-E0", workload.RandomInputs(s, int64(i)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := r.AddExecution(e); err != nil {
			t.Fatalf("AddExecution: %v", err)
		}
	}
	r.AddUser(privacy.User{Name: "pub", Level: privacy.Public, Group: "g-pub"})
	r.AddUser(privacy.User{Name: "reg", Level: privacy.Registered, Group: "g-reg"})
	r.AddUser(privacy.User{Name: "ana", Level: privacy.Analyst, Group: "g-ana"})
	return r
}

// TestParallelSearchIngestMaterialize races the three mutating surfaces
// of the ISSUE against a steady read load: Search, AddExecution and
// EnableMaterialization from separate goroutine pools.
func TestParallelSearchIngestMaterialize(t *testing.T) {
	r := multiSpecRepo(t, 6)
	queries := workload.RandomQueries(rand.New(rand.NewSource(1)), nil, 16)
	var wg sync.WaitGroup
	var searchErrs atomic.Int64

	// Readers: keyword search at every level, cached and uncached.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			users := []string{"pub", "reg", "ana"}
			for i := 0; i < 40; i++ {
				q := queries[(g*40+i)%len(queries)]
				if _, err := r.Search(users[i%3], q, SearchOptions{BypassCache: i%2 == 0}); err != nil {
					searchErrs.Add(1)
				}
			}
		}(g)
	}
	// Writers: new executions on every spec.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				sid := fmt.Sprintf("s%d", (g*10+i)%6)
				s := r.Spec(sid)
				e, err := exec.NewRunner(s, nil).Run(fmt.Sprintf("%s-g%d-E%d", sid, g, i), workload.RandomInputs(s, int64(i)))
				if err != nil {
					t.Errorf("Run: %v", err)
					return
				}
				if err := r.AddExecution(e); err != nil {
					t.Errorf("AddExecution: %v", err)
					return
				}
			}
		}(g)
	}
	// Materialization toggles concurrent with everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := r.EnableMaterialization([]privacy.Level{privacy.Public, privacy.Registered}); err != nil {
				t.Errorf("EnableMaterialization: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if n := searchErrs.Load(); n != 0 {
		t.Fatalf("%d searches failed", n)
	}
	// All ingested executions are visible afterwards.
	st := r.Stats()
	if st.Specs != 6 || st.Executions != 6+20 {
		t.Fatalf("stats after race = %+v", st)
	}
}

// TestParallelQueryAndProvenance hammers the per-execution read paths
// (Query, QueryAll, Provenance, Reaches) from many goroutines while an
// ingest stream grows one shard, checking the singleflight view cache
// never serves a wrong-level view: a public user must never see an
// unredacted protected value.
func TestParallelQueryAndProvenance(t *testing.T) {
	r := seededRepo(t) // disease-susceptibility with snps protected at Owner
	e := r.execution("disease-susceptibility", "E1")
	var progID string
	for id, it := range e.Items {
		if it.Attr == "prognosis" {
			progID = id
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				prov, err := r.Provenance("bob", "disease-susceptibility", "E1", progID)
				if err != nil {
					t.Errorf("Provenance: %v", err)
					return
				}
				for _, it := range prov.Items {
					if it.Attr == "snps" && !it.Redacted {
						t.Error("public provenance leaked protected snps value")
						return
					}
				}
				if _, err := r.Query("alice", "disease-susceptibility", "E1", `MATCH a = "reformat"`); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				if _, err := r.QueryAll("carol", "disease-susceptibility", `MATCH a = "reformat"`); err != nil {
					t.Errorf("QueryAll: %v", err)
					return
				}
				if got, err := r.Reaches("alice", "disease-susceptibility", "M12", "M11"); err != nil || !got {
					t.Errorf("Reaches = %v, %v", got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelAddRemoveSpec races spec registration/removal against
// search: the index and shard directory must stay consistent (a hit
// must always resolve to a live spec).
func TestParallelAddRemoveSpec(t *testing.T) {
	r := multiSpecRepo(t, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			sid := fmt.Sprintf("churn%d", i)
			s, err := workload.RandomSpec(workload.SpecConfig{
				Seed: int64(100 + i), ID: sid, Depth: 2, Fanout: 1, Chain: 3,
			})
			if err != nil {
				t.Errorf("RandomSpec: %v", err)
				return
			}
			if err := r.AddSpec(s, nil); err != nil {
				t.Errorf("AddSpec: %v", err)
				return
			}
			if err := r.RemoveSpec(sid); err != nil {
				t.Errorf("RemoveSpec: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				hits, err := r.Search("ana", "query, filter", SearchOptions{BypassCache: true})
				if err != nil {
					continue // all-phrase miss is legal mid-churn
				}
				for _, h := range hits {
					if r.Spec(h.SpecID) == nil && h.SpecID[:1] != "c" {
						t.Errorf("hit on dead spec %s", h.SpecID)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCorpusSingleflight verifies concurrent cold searches at one level
// build the per-level corpus once, not once per caller.
func TestCorpusSingleflight(t *testing.T) {
	r := multiSpecRepo(t, 8)
	var builds atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _ := r.flights.Do("corpus|probe", func() (any, error) {
				builds.Add(1)
				// Hold the flight open long enough for the herd to pile
				// up behind it, as a slow real corpus build would.
				time.Sleep(20 * time.Millisecond)
				return r.buildCorpus(privacy.Registered), nil
			})
			if v == nil {
				t.Error("nil corpus from flight group")
			}
		}()
	}
	close(start)
	wg.Wait()
	if b := builds.Load(); b < 1 || b > 4 {
		// With 16 simultaneous callers the flight group should collapse
		// almost all of them; allow a little scheduling slack.
		t.Fatalf("corpus built %d times for 16 concurrent callers", b)
	}
	// And the real path: concurrent cold searches agree with each other.
	r.invalidateDerived()
	results := make([][]SearchHit, 8)
	var wg2 sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg2.Add(1)
		go func(g int) {
			defer wg2.Done()
			hits, err := r.Search("reg", "database", SearchOptions{BypassCache: true})
			if err != nil {
				t.Errorf("Search: %v", err)
				return
			}
			results[g] = hits
		}(g)
	}
	wg2.Wait()
	for g := 1; g < 8; g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("concurrent searches disagree: %d vs %d hits", len(results[g]), len(results[0]))
		}
		for i := range results[g] {
			if results[g][i].SpecID != results[0][i].SpecID || results[g][i].Score != results[0][i].Score {
				t.Fatalf("concurrent searches disagree at %d: %+v vs %+v", i, results[g][i], results[0][i])
			}
		}
	}
}

// TestFanOutDeterministicMerge checks the pooled Search merge is stable
// across worker counts: 1 worker (serial) and many workers must produce
// identical hit lists.
func TestFanOutDeterministicMerge(t *testing.T) {
	r := multiSpecRepo(t, 8)
	serial := func() []SearchHit {
		r.SetWorkers(1)
		hits, err := r.Search("ana", "query", SearchOptions{BypassCache: true})
		if err != nil {
			t.Fatalf("Search serial: %v", err)
		}
		return hits
	}()
	for _, workers := range []int{2, 8, 32} {
		r.SetWorkers(workers)
		hits, err := r.Search("ana", "query", SearchOptions{BypassCache: true})
		if err != nil {
			t.Fatalf("Search workers=%d: %v", workers, err)
		}
		if len(hits) != len(serial) {
			t.Fatalf("workers=%d: %d hits vs serial %d", workers, len(hits), len(serial))
		}
		for i := range hits {
			if hits[i].SpecID != serial[i].SpecID || hits[i].Score != serial[i].Score {
				t.Fatalf("workers=%d: hit %d = (%s,%g), serial (%s,%g)", workers, i,
					hits[i].SpecID, hits[i].Score, serial[i].SpecID, serial[i].Score)
			}
		}
	}
}
