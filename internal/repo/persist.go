package repo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

// Persistence: a Repository serializes to a directory of JSON files —
// one per spec, policy and execution, plus a manifest and the user
// registry. The layout matches cmd/provgen's, so generated corpora and
// saved repositories are interchangeable.

type manifest struct {
	Specs      []string       `json:"specs"`
	Policies   []string       `json:"policies,omitempty"`
	Executions []string       `json:"executions"`
	Users      []privacy.User `json:"users,omitempty"`
}

// Save writes the repository's contents to dir (created if missing).
// Indexes and caches are not persisted; Load rebuilds them. Each shard
// is locked only while its own files are written, so a long save does
// not freeze the whole repository.
func (r *Repository) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("repo: save: %w", err)
	}
	var man manifest
	for i, sid := range r.SpecIDs() {
		sh := r.shard(sid)
		if sh == nil {
			continue // removed while saving
		}
		sh.mu.RLock()
		spec, pol := sh.spec, sh.policy
		execIDs := make([]string, 0, len(sh.execs))
		for id := range sh.execs {
			execIDs = append(execIDs, id)
		}
		sortStrings(execIDs)
		execs := make([]*exec.Execution, len(execIDs))
		for j, id := range execIDs {
			execs[j] = sh.execs[id]
		}
		sh.mu.RUnlock()

		specPath := fmt.Sprintf("spec-%d.json", i)
		if err := writeJSON(filepath.Join(dir, specPath), spec); err != nil {
			return err
		}
		man.Specs = append(man.Specs, specPath)
		polPath := fmt.Sprintf("policy-%d.json", i)
		if err := writeJSON(filepath.Join(dir, polPath), pol); err != nil {
			return err
		}
		man.Policies = append(man.Policies, polPath)
		for j, e := range execs {
			execPath := fmt.Sprintf("exec-%d-%d.json", i, j)
			if err := writeJSON(filepath.Join(dir, execPath), e); err != nil {
				return err
			}
			man.Executions = append(man.Executions, execPath)
		}
	}
	man.Users = append(man.Users, r.Users()...)
	return writeJSON(filepath.Join(dir, "manifest.json"), man)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("repo: encode %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("repo: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// Load reads a repository directory (written by Save or cmd/provgen)
// into a fresh Repository, validating everything and rebuilding the
// indexes.
func Load(dir string) (*Repository, error) {
	manData, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("repo: load: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return nil, fmt.Errorf("repo: load manifest: %w", err)
	}
	r := New()
	for i, specPath := range man.Specs {
		data, err := os.ReadFile(filepath.Join(dir, specPath))
		if err != nil {
			return nil, fmt.Errorf("repo: load: %w", err)
		}
		spec, err := workflow.UnmarshalSpec(data)
		if err != nil {
			return nil, err
		}
		var pol *privacy.Policy
		if i < len(man.Policies) {
			pdata, err := os.ReadFile(filepath.Join(dir, man.Policies[i]))
			if err != nil {
				return nil, fmt.Errorf("repo: load: %w", err)
			}
			pol = &privacy.Policy{}
			if err := json.Unmarshal(pdata, pol); err != nil {
				return nil, fmt.Errorf("repo: load policy %s: %w", man.Policies[i], err)
			}
		}
		if err := r.AddSpec(spec, pol); err != nil {
			return nil, err
		}
	}
	for _, execPath := range man.Executions {
		data, err := os.ReadFile(filepath.Join(dir, execPath))
		if err != nil {
			return nil, fmt.Errorf("repo: load: %w", err)
		}
		e, err := exec.UnmarshalExecution(data)
		if err != nil {
			return nil, err
		}
		if err := r.AddExecution(e); err != nil {
			return nil, err
		}
	}
	for _, u := range man.Users {
		r.AddUser(u)
	}
	return r, nil
}
