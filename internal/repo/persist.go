package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"provpriv/internal/exec"
	"provpriv/internal/index"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

// Persistence: a Repository serializes to a directory of JSON files —
// one per spec, policy and execution, plus a manifest and the user
// registry. The layout matches cmd/provgen's, so generated corpora and
// saved repositories are interchangeable.
//
// Durability: every file is written compact (no indentation), to a
// temporary file in the target directory, fsynced, and atomically
// renamed into place — a crash mid-save can truncate no file, and the
// manifest (written last) only ever references complete files.
//
// Incrementality: shards carry a mutation sequence number; saving twice
// to the same directory rewrites only the shards mutated in between
// (file names derive from spec/execution ids, so they are stable across
// saves). The directory must not be modified externally between
// incremental saves; saving to a new directory always writes everything.

type manifest struct {
	Specs      []string       `json:"specs"`
	Policies   []string       `json:"policies,omitempty"`
	Executions []string       `json:"executions"`
	Users      []privacy.User `json:"users,omitempty"`
}

// Save writes the repository's contents to dir (created if missing).
// Indexes and caches are not persisted; Load rebuilds them. Each shard
// is locked only while its own files are written, so a long save does
// not freeze the whole repository; shards unchanged since the previous
// Save to the same dir are skipped entirely.
func (r *Repository) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("repo: save: %w", err)
	}
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	if r.lastSaveDir != dir || r.savedSeqs == nil {
		r.savedSeqs = make(map[string]uint64)
		r.lastSaveDir = dir
	}
	live := make(map[string]bool)
	var man manifest
	for _, sid := range r.SpecIDs() {
		sh := r.shard(sid)
		if sh == nil {
			continue // removed while saving
		}
		sh.mu.RLock()
		seq := sh.seq
		spec, pol := sh.spec, sh.policy
		execIDs := make([]string, 0, len(sh.execs))
		for id := range sh.execs {
			execIDs = append(execIDs, id)
		}
		sort.Strings(execIDs)
		execs := make([]*exec.Execution, len(execIDs))
		for j, id := range execIDs {
			execs[j] = sh.execs[id]
		}
		sh.mu.RUnlock()

		base := fileBase(sid)
		specPath := "spec-" + base + ".json"
		polPath := "policy-" + base + ".json"
		man.Specs = append(man.Specs, specPath)
		man.Policies = append(man.Policies, polPath)
		execPaths := make([]string, len(execIDs))
		for j, id := range execIDs {
			execPaths[j] = "exec-" + base + "-" + fileBase(id) + ".json"
		}
		man.Executions = append(man.Executions, execPaths...)
		live[sid] = true

		if r.savedSeqs[sid] == seq {
			continue // shard untouched since the last save to this dir
		}
		if err := writeJSON(filepath.Join(dir, specPath), spec); err != nil {
			return err
		}
		if err := writeJSON(filepath.Join(dir, polPath), pol); err != nil {
			return err
		}
		for j, e := range execs {
			if err := writeJSON(filepath.Join(dir, execPaths[j]), e); err != nil {
				return err
			}
		}
		r.savedSeqs[sid] = seq
	}
	for sid := range r.savedSeqs {
		if !live[sid] {
			delete(r.savedSeqs, sid) // spec removed: forget its seq
		}
	}
	man.Users = append(man.Users, r.Users()...)
	// Durability ordering: make the shard-file renames durable before
	// the manifest that references them is renamed into place, then make
	// the manifest durable before pruning. A crash at any point leaves a
	// manifest whose files all exist (old or new); lost prune unlinks
	// merely leave unreferenced orphans for the next Save.
	if err := syncDir(dir); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), man); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	pruneOrphans(dir, man)
	return nil
}

// syncDir fsyncs a directory so preceding renames in it survive a
// crash. Platforms that reject fsync on directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("repo: sync %s: %w", dir, err)
	}
	defer d.Close()
	// Best-effort on platforms that reject fsync on directories (or on
	// read-only directory handles, as on Windows): only unexpected
	// errors fail the save.
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) &&
		!errors.Is(err, syscall.ENOTSUP) && !errors.Is(err, os.ErrPermission) {
		return fmt.Errorf("repo: sync %s: %w", dir, err)
	}
	return nil
}

// pruneOrphans deletes repository-layout files (spec-/policy-/exec-
// *.json) the freshly written manifest no longer references — the
// on-disk remains of removed specs. Only files matching our naming
// scheme are touched; removal failures are ignored (orphans are
// harmless to Load, which reads via the manifest).
func pruneOrphans(dir string, man manifest) {
	referenced := make(map[string]bool,
		len(man.Specs)+len(man.Policies)+len(man.Executions)+1)
	for _, paths := range [][]string{man.Specs, man.Policies, man.Executions} {
		for _, p := range paths {
			referenced[p] = true
		}
	}
	referenced["manifest.json"] = true
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || referenced[name] || !strings.HasSuffix(name, ".json") {
			continue
		}
		if strings.HasPrefix(name, "spec-") || strings.HasPrefix(name, "policy-") ||
			strings.HasPrefix(name, "exec-") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// fileBase derives a stable, filesystem-safe file-name stem from an id:
// the sanitized id (truncated) plus a 64-bit FNV hash of the raw id, so
// distinct ids sharing a sanitized prefix are kept apart (collision odds
// ~2^-64 per pair; not adversarially safe, but Load validates content).
func fileBase(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 40 {
			break
		}
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return fmt.Sprintf("%s-%016x", b.String(), h.Sum64())
}

// writeJSON writes v as compact JSON via a temp file and atomic rename,
// so readers (and crash recovery) never observe a partially written
// file.
func writeJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("repo: encode %s: %w", filepath.Base(path), err)
	}
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("repo: write %s: %w", base, err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp.Name(), 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("repo: write %s: %w", base, werr)
	}
	return nil
}

// Load reads a repository directory (written by Save or cmd/provgen)
// into a fresh Repository, validating everything and rebuilding the
// indexes.
func Load(dir string) (*Repository, error) {
	manData, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("repo: load: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return nil, fmt.Errorf("repo: load manifest: %w", err)
	}
	r := New()
	// Bulk ingest: register every shard first, then build each shared
	// index exactly once — per-spec AddSpec would copy the index
	// snapshot on every call, turning a large load quadratic.
	specs := make([]*workflow.Spec, 0, len(man.Specs))
	pols := make(map[string]*privacy.Policy, len(man.Specs))
	for i, specPath := range man.Specs {
		data, err := os.ReadFile(filepath.Join(dir, specPath))
		if err != nil {
			return nil, fmt.Errorf("repo: load: %w", err)
		}
		spec, err := workflow.UnmarshalSpec(data)
		if err != nil {
			return nil, err
		}
		var pol *privacy.Policy
		if i < len(man.Policies) {
			pdata, err := os.ReadFile(filepath.Join(dir, man.Policies[i]))
			if err != nil {
				return nil, fmt.Errorf("repo: load: %w", err)
			}
			pol = &privacy.Policy{}
			if err := json.Unmarshal(pdata, pol); err != nil {
				return nil, fmt.Errorf("repo: load policy %s: %w", man.Policies[i], err)
			}
		}
		if err := r.loadSpec(spec, pol); err != nil {
			return nil, err
		}
		specs = append(specs, spec)
		if pol != nil {
			pols[spec.ID] = pol
		}
	}
	r.inverted = index.BuildInverted(specs, pols)
	reach, err := index.BuildReach(specs)
	if err != nil {
		return nil, err
	}
	r.reach = reach
	for _, execPath := range man.Executions {
		data, err := os.ReadFile(filepath.Join(dir, execPath))
		if err != nil {
			return nil, fmt.Errorf("repo: load: %w", err)
		}
		e, err := exec.UnmarshalExecution(data)
		if err != nil {
			return nil, err
		}
		if err := r.AddExecution(e); err != nil {
			return nil, err
		}
	}
	for _, u := range man.Users {
		r.AddUser(u)
	}
	return r, nil
}
