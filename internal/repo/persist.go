package repo

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/index"
	"provpriv/internal/obs"
	"provpriv/internal/privacy"
	"provpriv/internal/storage"
	"provpriv/internal/workflow"
)

// Persistence rides on internal/storage: each spec shard is one
// immutable, generation-numbered checkpoint plus an append-only log of
// typed records, and the manifest — committed atomically *last* — pins
// every shard to exactly one generation and one committed log extent.
// A crash (or a concurrent Load) mid-save can therefore only observe
// the previous fully consistent snapshot, never a mix of generations;
// this replaces the old layout, whose shard files were renamed over
// stable names before the manifest and so could tear.
//
// Incrementality: shards carry a mutation sequence number; saving twice
// through the same bound store skips clean shards entirely and appends
// only the delta (new executions, replaced policy/ladders) for dirty
// ones. Save never folds a log into a fresh checkpoint inline — saves
// stay O(delta) no matter how long a log grows. Folding is the job of
// CompactShard (compact.go), run off-path by the async task runtime;
// NeedsCompaction reports the shards whose logs have outgrown
// compactThreshold.
//
// Directories written by the pre-log Save (or cmd/provgen's legacy
// layout) still Load; the first Save migrates them to the log engine.

// compactThreshold is the log length (in records) past which
// NeedsCompaction nominates a shard for a background fold. Package
// variable so tests can force compaction cheaply.
var compactThreshold uint64 = 256

// boundStore is the repository's attachment to one storage backend:
// the committed generation and, per shard, what the last save wrote —
// the bookkeeping that makes saves incremental. Guarded by saveMu.
type boundStore struct {
	b      storage.Backend
	key    string
	gen    uint64
	shards map[string]*shardSaved
}

// shardSaved records what the bound store holds for one shard.
type shardSaved struct {
	seq    uint64 // shard mutation seq the saved state reflects
	polGen uint64 // policy generation it reflects
	// spec identifies the shard instance the saved state belongs to: a
	// spec removed and re-added under the same id is a new shard (with a
	// fresh spec object), and deltas against the old one would be bogus.
	spec        *workflow.Spec
	ckptGen     uint64 // generation of the shard's checkpoint
	ckptRecords uint64
	logLen      uint64 // committed log extent (backend units)
	logRecs     uint64 // committed log length in records
	execs       map[string]bool
}

// Save writes the repository's contents to dir (created if missing),
// binding to the directory's storage backend on first use: a directory
// holding a KV store keeps the KV backend, anything else gets flat
// files. Indexes and caches are not persisted; Load rebuilds them.
func (r *Repository) Save(dir string) error {
	return r.SaveCtx(context.Background(), dir)
}

// SaveCtx is Save threaded with a context for tracing: a sampled save
// request's trace shows the storage.save span with its per-backend-op
// children (storage.append / storage.checkpoint / storage.commit). The
// save itself is not cancelable — a half-written generation is exactly
// the torn state the storage engine exists to avoid.
func (r *Repository) SaveCtx(ctx context.Context, dir string) error {
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	ctx, span := obs.StartSpan(ctx, "storage.save")
	defer span.End()
	if r.bound == nil || r.bound.key != dir {
		b, err := openDirBackend(dir)
		if err != nil {
			return fmt.Errorf("repo: save: %w", err)
		}
		bound, err := newBoundStore(b, dir)
		if err != nil {
			b.Close()
			return fmt.Errorf("repo: save: %w", err)
		}
		if r.bound != nil {
			r.bound.b.Close()
		}
		r.bound = bound
	}
	if err := r.saveBound(ctx, r.bound); err != nil {
		// A half-applied save leaves the bookkeeping untrustworthy:
		// drop the binding so the next Save rebinds and rewrites in full.
		r.bound.b.Close()
		r.bound = nil
		return err
	}
	return nil
}

// BindStorage attaches the repository to an already opened backend so
// subsequent Save(key) calls route through it — the path servers use to
// start empty (or from a legacy directory) with a chosen backend. Any
// previous binding is closed. The repository takes ownership of b.
func (r *Repository) BindStorage(b storage.Backend, key string) error {
	bound, err := newBoundStore(b, key)
	if err != nil {
		return fmt.Errorf("repo: bind storage: %w", err)
	}
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	if r.bound != nil {
		r.bound.b.Close()
	}
	r.bound = bound
	return nil
}

// StorageBound reports whether the repository currently has a storage
// backend attached — the readiness signal /readyz checks.
func (r *Repository) StorageBound() bool {
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	return r.bound != nil
}

// CloseStorage releases the bound backend, if any.
func (r *Repository) CloseStorage() error {
	r.saveMu.Lock()
	defer r.saveMu.Unlock()
	if r.bound == nil {
		return nil
	}
	err := r.bound.b.Close()
	r.bound = nil
	return err
}

// openDirBackend picks the backend a directory was written with.
func openDirBackend(dir string) (storage.Backend, error) {
	if _, err := os.Stat(filepath.Join(dir, storage.KVFileName)); err == nil {
		return storage.OpenKV(dir)
	}
	return storage.OpenFlat(dir)
}

// newBoundStore binds a backend, reading its committed generation. A
// legacy (pre-log) directory binds with no saved shards: the first save
// rewrites everything under the log engine and prunes the old files.
func newBoundStore(b storage.Backend, key string) (*boundStore, error) {
	meta, err := b.Meta()
	if errors.Is(err, storage.ErrLegacyLayout) {
		meta, err = storage.Meta{}, nil
	}
	if err != nil {
		return nil, err
	}
	return &boundStore{b: b, key: key, gen: meta.Generation, shards: make(map[string]*shardSaved)}, nil
}

// shardSnap is one shard's state captured under its read lock.
type shardSnap struct {
	seq    uint64
	polGen uint64
	spec   *workflow.Spec
	pol    *privacy.Policy
	hs     map[string]*datapriv.Hierarchy
	execs  []*exec.Execution // sorted by id
}

func snapshotShardState(sh *shard) shardSnap {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ids := make([]string, 0, len(sh.execs))
	for id := range sh.execs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	execs := make([]*exec.Execution, len(ids))
	for i, id := range ids {
		execs[i] = sh.execs[id]
	}
	return shardSnap{
		seq: sh.seq, polGen: sh.polGen,
		spec: sh.spec, pol: sh.policy, hs: sh.hierarchies,
		execs: execs,
	}
}

// saveBound runs one save through the bound store. Each shard is locked
// only while its state is snapshotted, so a long save does not freeze
// the repository; the commit at the end is the single durability point.
func (r *Repository) saveBound(ctx context.Context, bs *boundStore) error {
	gen := bs.gen + 1
	meta := storage.Meta{Generation: gen, Shards: make(map[string]storage.ShardInfo)}
	next := make(map[string]*shardSaved)
	for _, sid := range r.SpecIDs() {
		sh := r.shard(sid)
		if sh == nil {
			continue // removed while saving
		}
		snap := snapshotShardState(sh)
		prev := bs.shards[sid]
		if prev != nil && prev.seq == snap.seq {
			// Clean shard: re-point the new manifest at its existing state.
			meta.Shards[sid] = prev.info()
			next[sid] = prev
			continue
		}
		ss, err := bs.writeShard(ctx, sid, gen, snap, prev)
		if err != nil {
			return err
		}
		meta.Shards[sid] = ss.info()
		next[sid] = ss
	}
	users, err := json.Marshal(r.Users())
	if err != nil {
		return fmt.Errorf("repo: save users: %w", err)
	}
	meta.Users = users
	_, commit := obs.StartSpan(ctx, "storage.commit")
	err = bs.b.Commit(meta)
	commit.End()
	if err != nil {
		return err
	}
	bs.gen = gen
	// Only now, with the commit durable, drop removed specs' data.
	for sid := range bs.shards {
		if next[sid] == nil {
			if err := bs.b.DropShard(sid); err != nil {
				bs.shards = next
				return err
			}
		}
	}
	bs.shards = next
	return nil
}

func (ss *shardSaved) info() storage.ShardInfo {
	return storage.ShardInfo{Checkpoint: ss.ckptGen, Records: ss.ckptRecords, LogLen: ss.logLen}
}

// writeShard persists one dirty shard: an append of the delta records
// to its existing log for a known shard, a full checkpoint only when
// the shard is new (or replaced under the same id). It never folds a
// long log — that is CompactShard's job, off the save path — so a save
// is always O(changed data).
func (bs *boundStore) writeShard(ctx context.Context, sid string, gen uint64, snap shardSnap, prev *shardSaved) (*shardSaved, error) {
	if prev != nil && prev.spec == snap.spec {
		recs, err := deltaRecords(sid, snap, prev)
		if err != nil {
			return nil, err
		}
		logLen := prev.logLen
		if len(recs) > 0 {
			_, span := obs.StartSpan(ctx, "storage.append")
			logLen, err = bs.b.Append(sid, prev.ckptGen, prev.logLen, recs)
			span.End()
			if err != nil {
				return nil, err
			}
		}
		return &shardSaved{
			seq: snap.seq, polGen: snap.polGen, spec: snap.spec,
			ckptGen: prev.ckptGen, ckptRecords: prev.ckptRecords,
			logLen: logLen, logRecs: prev.logRecs + uint64(len(recs)),
			execs: execSet(snap.execs),
		}, nil
	}
	recs, err := checkpointRecords(sid, snap)
	if err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "storage.checkpoint")
	err = bs.b.WriteCheckpoint(sid, gen, recs)
	span.End()
	if err != nil {
		return nil, err
	}
	return &shardSaved{
		seq: snap.seq, polGen: snap.polGen, spec: snap.spec,
		ckptGen: gen, ckptRecords: uint64(len(recs)),
		execs: execSet(snap.execs),
	}, nil
}

func execSet(execs []*exec.Execution) map[string]bool {
	s := make(map[string]bool, len(execs))
	for _, e := range execs {
		s[e.ID] = true
	}
	return s
}

// checkpointRecords folds a shard snapshot into its full record
// sequence: spec, policy, ladders (when present), then executions.
func checkpointRecords(sid string, snap shardSnap) ([]storage.Record, error) {
	recs := make([]storage.Record, 0, 3+len(snap.execs))
	data, err := json.Marshal(snap.spec)
	if err != nil {
		return nil, fmt.Errorf("repo: encode spec %s: %w", sid, err)
	}
	recs = append(recs, storage.Record{Type: storage.RecSpec, Key: sid, Data: data})
	pr, err := policyRecords(sid, snap.pol, snap.hs, len(snap.hs) > 0)
	if err != nil {
		return nil, err
	}
	recs = append(recs, pr...)
	for _, e := range snap.execs {
		rec, err := execRecord(e)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// deltaRecords renders what changed since the previous save: replaced
// policy/ladders (replayed last-wins) and executions the store has not
// seen. Specs are immutable once registered, so no spec record.
func deltaRecords(sid string, snap shardSnap, prev *shardSaved) ([]storage.Record, error) {
	var recs []storage.Record
	if prev.polGen != snap.polGen {
		// Always pair the ladder record with the policy record here: a
		// SetGeneralization back to nil must clear the stored ladders.
		pr, err := policyRecords(sid, snap.pol, snap.hs, true)
		if err != nil {
			return nil, err
		}
		recs = append(recs, pr...)
	}
	for _, e := range snap.execs {
		if prev.execs[e.ID] {
			continue
		}
		rec, err := execRecord(e)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func policyRecords(sid string, pol *privacy.Policy, hs map[string]*datapriv.Hierarchy, withHier bool) ([]storage.Record, error) {
	data, err := json.Marshal(pol)
	if err != nil {
		return nil, fmt.Errorf("repo: encode policy %s: %w", sid, err)
	}
	recs := []storage.Record{{Type: storage.RecPolicy, Key: sid, Data: data}}
	if withHier {
		hdata, err := json.Marshal(hs)
		if err != nil {
			return nil, fmt.Errorf("repo: encode hierarchies %s: %w", sid, err)
		}
		recs = append(recs, storage.Record{Type: storage.RecHier, Key: sid, Data: hdata})
	}
	return recs, nil
}

func execRecord(e *exec.Execution) (storage.Record, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return storage.Record{}, fmt.Errorf("repo: encode execution %s: %w", e.ID, err)
	}
	return storage.Record{Type: storage.RecExec, Key: e.ID, Data: data}, nil
}

// Load reads a repository directory into a fresh Repository, validating
// everything and rebuilding the indexes. It understands both log-engine
// layouts (flat files and the KV store, distinguished by the store.kv
// data file) and the legacy pre-log layout of older Saves and
// cmd/provgen — the latter read-only: the first Save migrates it.
func Load(dir string) (*Repository, error) {
	if _, err := os.Stat(filepath.Join(dir, storage.KVFileName)); err == nil {
		b, err := storage.OpenKV(dir)
		if err != nil {
			return nil, fmt.Errorf("repo: load: %w", err)
		}
		r, err := LoadStorage(b, dir)
		if err != nil {
			b.Close()
			return nil, err
		}
		return r, nil
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		return nil, fmt.Errorf("repo: load: %w", err)
	}
	b, err := storage.OpenFlat(dir)
	if err != nil {
		return nil, fmt.Errorf("repo: load: %w", err)
	}
	r, err := LoadStorage(b, dir)
	if errors.Is(err, storage.ErrLegacyLayout) {
		b.Close()
		return loadLegacy(dir)
	}
	if err != nil {
		b.Close()
		return nil, err
	}
	return r, nil
}

// loadedShard accumulates one shard's records during replay. Policy,
// ladder and duplicate execution records are last-wins, matching the
// append-log semantics.
type loadedShard struct {
	spec    *workflow.Spec
	pol     *privacy.Policy
	hs      map[string]*datapriv.Hierarchy
	execIDs []string
	execs   map[string]*exec.Execution
	logRecs uint64
}

func (l *loadedShard) apply(sid string, rec storage.Record) error {
	switch rec.Type {
	case storage.RecSpec:
		s, err := workflow.UnmarshalSpec(rec.Data)
		if err != nil {
			return err
		}
		if s.ID != sid {
			return fmt.Errorf("repo: load: shard %q holds spec %q: %w", sid, s.ID, storage.ErrCorrupt)
		}
		l.spec = s
	case storage.RecPolicy:
		pol := &privacy.Policy{}
		if err := json.Unmarshal(rec.Data, pol); err != nil {
			return fmt.Errorf("repo: load policy of %s: %w", sid, err)
		}
		if pol.SpecID != sid {
			return fmt.Errorf("repo: load: shard %q holds policy for %q: %w", sid, pol.SpecID, storage.ErrCorrupt)
		}
		l.pol = pol
	case storage.RecHier:
		var hs map[string]*datapriv.Hierarchy
		if err := json.Unmarshal(rec.Data, &hs); err != nil {
			return fmt.Errorf("repo: load hierarchies of %s: %w", sid, err)
		}
		l.hs = hs
	case storage.RecExec:
		e, err := exec.UnmarshalExecution(rec.Data)
		if err != nil {
			return err
		}
		if _, dup := l.execs[e.ID]; !dup {
			l.execIDs = append(l.execIDs, e.ID)
		}
		l.execs[e.ID] = e
	default:
		return fmt.Errorf("repo: load: record type %v in shard %s: %w", rec.Type, sid, storage.ErrCorrupt)
	}
	return nil
}

// LoadStorage builds a Repository from an opened backend and binds it,
// so subsequent Save(key) calls are incremental appends to the same
// store. The repository takes ownership of b on success.
func LoadStorage(b storage.Backend, key string) (*Repository, error) {
	meta, err := b.Meta()
	if err != nil {
		return nil, err
	}
	sids := make([]string, 0, len(meta.Shards))
	for sid := range meta.Shards {
		sids = append(sids, sid)
	}
	sort.Strings(sids)
	shards := make(map[string]*loadedShard, len(sids))
	for _, sid := range sids {
		info := meta.Shards[sid]
		l := &loadedShard{execs: make(map[string]*exec.Execution)}
		if err := b.ReadCheckpoint(sid, info.Checkpoint, info.Records, func(rec storage.Record) error {
			return l.apply(sid, rec)
		}); err != nil {
			return nil, fmt.Errorf("repo: load %s: %w", sid, err)
		}
		if err := b.ReplayLog(sid, info.Checkpoint, info.LogLen, func(rec storage.Record) error {
			l.logRecs++
			return l.apply(sid, rec)
		}); err != nil {
			return nil, fmt.Errorf("repo: load %s: %w", sid, err)
		}
		if l.spec == nil {
			return nil, fmt.Errorf("repo: load: shard %q has no spec record: %w", sid, storage.ErrCorrupt)
		}
		shards[sid] = l
	}
	// Bulk ingest: register every shard first, then build each shared
	// index exactly once — per-spec AddSpec would copy the index
	// snapshot on every call, turning a large load quadratic.
	r := New()
	specs := make([]*workflow.Spec, 0, len(sids))
	pols := make(map[string]*privacy.Policy, len(sids))
	for _, sid := range sids {
		l := shards[sid]
		if err := r.loadSpec(l.spec, l.pol); err != nil {
			return nil, err
		}
		if len(l.hs) > 0 {
			// Private repository (no locks needed yet): install the ladders
			// and rebuild the masking engine they parameterize.
			sh := r.shards[sid]
			sh.hierarchies = l.hs
			sh.engine = datapriv.NewMasker(sh.policy, l.hs).Engine()
		}
		specs = append(specs, l.spec)
		if l.pol != nil {
			pols[sid] = l.pol
		}
	}
	r.inverted = index.BuildInverted(specs, pols)
	reach, err := index.BuildReach(specs)
	if err != nil {
		return nil, err
	}
	r.reach = reach
	for _, sid := range sids {
		l := shards[sid]
		for _, id := range l.execIDs {
			if err := r.AddExecution(l.execs[id]); err != nil {
				return nil, err
			}
		}
	}
	if len(meta.Users) > 0 {
		var users []privacy.User
		if err := json.Unmarshal(meta.Users, &users); err != nil {
			return nil, fmt.Errorf("repo: load users: %w", err)
		}
		for _, u := range users {
			r.AddUser(u)
		}
	}
	// Prime the incremental-save bookkeeping from the state just loaded,
	// so the first Save back to this store skips every clean shard.
	bound := &boundStore{b: b, key: key, gen: meta.Generation, shards: make(map[string]*shardSaved)}
	for _, sid := range sids {
		l := shards[sid]
		info := meta.Shards[sid]
		sh := r.shard(sid)
		sh.mu.RLock()
		seq, polGen := sh.seq, sh.polGen
		sh.mu.RUnlock()
		es := make(map[string]bool, len(l.execIDs))
		for _, id := range l.execIDs {
			es[id] = true
		}
		bound.shards[sid] = &shardSaved{
			seq: seq, polGen: polGen, spec: l.spec,
			ckptGen: info.Checkpoint, ckptRecords: info.Records,
			logLen: info.LogLen, logRecs: l.logRecs,
			execs: es,
		}
	}
	r.bound = bound
	return r, nil
}

// legacyManifest is the pre-log manifest shape: parallel file-name
// lists plus the user registry.
type legacyManifest struct {
	Specs      []string       `json:"specs"`
	Policies   []string       `json:"policies,omitempty"`
	Executions []string       `json:"executions"`
	Users      []privacy.User `json:"users,omitempty"`
}

// loadLegacy reads the pre-log layout: per-entity JSON files listed by
// the manifest. Specs and policies are parallel lists; a manifest with
// some but not all policies is rejected rather than silently assigning
// all-public policies to the tail, and each policy must name the spec
// it is paired with — a partially populated manifest must not mis-grant
// access.
func loadLegacy(dir string) (*Repository, error) {
	manData, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("repo: load: %w", err)
	}
	var man legacyManifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return nil, fmt.Errorf("repo: load manifest: %w", err)
	}
	if len(man.Policies) != 0 && len(man.Policies) != len(man.Specs) {
		return nil, fmt.Errorf("repo: load: manifest pairs %d specs with %d policies", len(man.Specs), len(man.Policies))
	}
	r := New()
	specs := make([]*workflow.Spec, 0, len(man.Specs))
	pols := make(map[string]*privacy.Policy, len(man.Specs))
	for i, specPath := range man.Specs {
		data, err := os.ReadFile(filepath.Join(dir, specPath))
		if err != nil {
			return nil, fmt.Errorf("repo: load: %w", err)
		}
		spec, err := workflow.UnmarshalSpec(data)
		if err != nil {
			return nil, err
		}
		var pol *privacy.Policy
		if len(man.Policies) != 0 {
			pdata, err := os.ReadFile(filepath.Join(dir, man.Policies[i]))
			if err != nil {
				return nil, fmt.Errorf("repo: load: %w", err)
			}
			pol = &privacy.Policy{}
			if err := json.Unmarshal(pdata, pol); err != nil {
				return nil, fmt.Errorf("repo: load policy %s: %w", man.Policies[i], err)
			}
			if pol.SpecID != spec.ID {
				return nil, fmt.Errorf("repo: load: manifest pairs spec %q with policy for %q (%s)",
					spec.ID, pol.SpecID, man.Policies[i])
			}
		}
		if err := r.loadSpec(spec, pol); err != nil {
			return nil, err
		}
		specs = append(specs, spec)
		if pol != nil {
			pols[spec.ID] = pol
		}
	}
	r.inverted = index.BuildInverted(specs, pols)
	reach, err := index.BuildReach(specs)
	if err != nil {
		return nil, err
	}
	r.reach = reach
	for _, execPath := range man.Executions {
		data, err := os.ReadFile(filepath.Join(dir, execPath))
		if err != nil {
			return nil, fmt.Errorf("repo: load: %w", err)
		}
		e, err := exec.UnmarshalExecution(data)
		if err != nil {
			return nil, err
		}
		if err := r.AddExecution(e); err != nil {
			return nil, err
		}
	}
	for _, u := range man.Users {
		r.AddUser(u)
	}
	return r, nil
}
