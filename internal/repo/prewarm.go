package repo

import (
	"context"
	"sort"

	"provpriv/internal/privacy"
)

// PrewarmMasked rebuilds the masked-snapshot cache of one spec for the
// given access levels — the cheap background job that runs after
// UpdatePolicy/SetGeneralization purge the shard's caches, so the first
// reader at each level pays a warm hit instead of the full
// collapse+taint+mask build. Levels defaults to every level a
// registered user holds. The context is checked between executions;
// progress (optional) receives (built, total) heartbeats. Returns how
// many snapshots were built or refreshed. A spec removed mid-warm is
// not an error: the warm is simply moot.
func (r *Repository) PrewarmMasked(ctx context.Context, specID string, levels []privacy.Level, progress func(done, total int64)) (int, error) {
	if len(levels) == 0 {
		levels = r.userLevels()
	}
	sh := r.shard(specID)
	if sh == nil || len(levels) == 0 {
		return 0, nil
	}
	sh.mu.RLock()
	ids := make([]string, 0, len(sh.execs))
	for id := range sh.execs {
		ids = append(ids, id)
	}
	sh.mu.RUnlock()
	sort.Strings(ids)
	total := int64(len(ids)) * int64(len(levels))
	var done int64
	if progress != nil {
		progress(0, total)
	}
	built := 0
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return built, err
		}
		sh.mu.RLock()
		e := sh.execs[id]
		sh.mu.RUnlock()
		if e == nil {
			done += int64(len(levels))
			continue // removed mid-warm
		}
		for _, lvl := range levels {
			if _, err := r.maskedExecFor(ctx, sh, e, lvl); err != nil {
				return built, err
			}
			built++
			done++
			if progress != nil {
				progress(done, total)
			}
		}
	}
	return built, nil
}

// userLevels returns the distinct access levels of the registered
// users, ascending — the level set worth keeping warm.
func (r *Repository) userLevels() []privacy.Level {
	seen := make(map[privacy.Level]bool)
	var out []privacy.Level
	for _, u := range r.Users() {
		if !seen[u.Level] {
			seen[u.Level] = true
			out = append(out, u.Level)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
