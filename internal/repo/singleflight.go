package repo

import (
	"fmt"
	"sync"
)

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn and all receive its result. Used
// to deduplicate lazy builds of per-level ranking corpora and collapsed
// provenance views, so a thundering herd of identical requests performs
// the expensive construction exactly once.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do invokes fn once per key among concurrent callers: the first caller
// runs it, the rest block until it finishes and share the result. The
// key is forgotten afterwards, so later calls run fn again (the caches
// layered above decide freshness).
func (g *flightGroup) Do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	// Cleanup must run even when fn panics: otherwise the key stays in
	// g.calls and current + future callers for it block forever. A
	// panicking fn is converted into an error for the waiters and
	// re-raised in the original caller.
	defer func() {
		rec := recover()
		if rec != nil {
			c.val, c.err = nil, fmt.Errorf("repo: singleflight: panic: %v", rec)
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.wg.Done()
		if rec != nil {
			panic(rec)
		}
	}()
	c.val, c.err = fn()
	return c.val, c.err
}
