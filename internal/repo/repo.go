// Package repo implements the provenance-aware workflow repository the
// paper envisions (Section 1): a shared store of workflow specifications
// and provenance graphs that many users — with different access levels —
// search and query. Privacy is enforced inside the query engine rather
// than by maintaining one repository copy per privilege level ("the
// alternative would be to create multiple repositories corresponding to
// different levels of access, which would lead to inconsistencies,
// inefficiency, and a lack of flexibility").
//
// The repository wires together the other packages: privacy-classified
// inverted and reachability indexes (index), minimal-view keyword search
// (search), TF-IDF ranking with optional score bucketing (rank),
// structural queries with privacy-controlled semantics (query), and
// masked provenance retrieval (datapriv + exec views).
//
// Concurrency model: state is sharded per specification. Each shard
// owns its spec, policy, executions, generalization hierarchies and
// materialized views behind its own RWMutex, so traffic against
// different specs never contends. The repository level keeps only the
// shard directory, the user registry, the shared keyword/reachability
// indexes and the per-level ranking corpora. The shared indexes
// (index.Inverted, index.ReachIndex) publish their state as atomically
// swapped immutable snapshots, so index reads on the search and reach
// paths acquire no lock at all and spec mutations never stall readers.
// Derived per-level ranking corpora are maintained incrementally: a
// spec mutation applies an AddDoc/RemoveDoc delta to every already-built
// corpus (cost proportional to the mutated spec, not the repository)
// and only a policy change that reclassifies module levels falls back to
// invalidate-and-rebuild. Multi-spec operations (Search, QueryAll,
// EnableMaterialization) fan out across a bounded worker pool and merge
// deterministically; lazily built per-level artifacts (ranking corpora,
// collapsed provenance views) are deduplicated with a singleflight group
// so concurrent identical requests build each view exactly once.
//
// Lock ordering: polMu (policy-sensitive mutators) before mu (shard
// directory) before corpusMu before a shard's mu. Read paths never hold
// two locks at once — they resolve the shard pointer, release the
// directory lock, then lock the shard.
package repo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/index"
	"provpriv/internal/obs"
	"provpriv/internal/privacy"
	"provpriv/internal/query"
	"provpriv/internal/rank"
	"provpriv/internal/search"
	"provpriv/internal/taint"
	"provpriv/internal/workflow"
)

// Sentinel errors, exposed so transport layers (internal/server) can map
// failures to protocol status codes with errors.Is instead of string
// matching.
var (
	// ErrNotFound marks lookups of unknown specs, executions or items.
	ErrNotFound = errors.New("not found")
	// ErrDenied marks requests refused by privacy policy: the entity
	// exists but is not visible at the caller's access level.
	ErrDenied = errors.New("access denied")
	// ErrUnknownUser marks requests by unregistered principals.
	ErrUnknownUser = errors.New("unknown user")
	// ErrExists marks duplicate registrations (spec or execution ids
	// already taken); the HTTP layer maps it to 409 Conflict.
	ErrExists = errors.New("already exists")
)

// shard is the unit of isolation: everything the repository knows about
// one specification, behind one lock. Spec, hierarchy and policy are
// immutable once published; executions are append-only.
type shard struct {
	mu     sync.RWMutex
	spec   *workflow.Spec
	hier   *workflow.Hierarchy
	policy *privacy.Policy
	execs  map[string]*exec.Execution

	// viewStore, when non-nil, holds pre-collapsed, pre-masked views of
	// executions at the materialized levels (Section 4's materialized-
	// views direction); Provenance consults it before collapsing on the
	// fly.
	viewStore *index.ViewStore

	// hierarchies holds optional generalization ladders used by
	// data-privacy masking (values are coarsened instead of redacted).
	hierarchies map[string]*datapriv.Hierarchy

	// views holds lazily collapsed (pre-mask) execution views keyed by
	// (execID, level), deduplicated through the repository's flight
	// group. Eviction is LRU with a TTL, so overflow drops only the
	// coldest view instead of the whole cache. Masking still runs per
	// request (it is cheap and returns a copy); the expensive Collapse
	// runs once per view.
	views *index.LRU[viewCacheKey, *exec.Execution]

	// taints caches per-execution taint sets (seed + propagate over the
	// full execution, see internal/taint) keyed by (execID, polGen):
	// the set is level- and view-independent, so one analysis serves
	// every access level and every collapsed view of the execution.
	// polGen keys it exactly like the view cache, so sets computed under
	// a replaced policy are unreachable. Reads are lock-free apart from
	// the LRU's own mutex; fills go through the flight group.
	taints *index.LRU[taintCacheKey, *taint.Set]

	// masked caches fully privacy-enforced snapshots — collapsed,
	// taint-masked executions — keyed by (execID, level, polGen), so the
	// enforced read paths (evaluateQuery, Provenance) serve a shared
	// immutable execution with an atomic lookup instead of re-masking
	// per request. Snapshots are read-only by contract: exec.Execution
	// holds no hidden mutable state, EvaluatePrepared and
	// exec.Provenance only read or copy, and the -race immutability
	// tests pin that. The polGen fence plus an explicit Purge makes
	// pre-update masks unreachable after UpdatePolicy/SetGeneralization.
	masked *index.LRU[maskedCacheKey, maskedSnapshot]

	// engine is the taint/masking engine for the shard's current policy
	// and generalization hierarchies — policy-scoped, so it is built
	// once per policy change instead of once per request. Guarded by mu
	// (rebuilt by UpdatePolicy and SetGeneralization).
	engine *taint.Engine

	// polGen counts policy generations (bumped by UpdatePolicy);
	// guarded by mu. It keys the collapsed-view cache so views built
	// under a replaced policy are unreachable.
	polGen uint64

	// seq identifies the shard's last content mutation (executions,
	// hierarchies, policy) — guarded by mu — so Save can skip shards
	// unchanged since the last save to the same directory. Values come
	// from the repository-wide mutSeq counter, so a removed-and-re-added
	// spec id can never repeat a seq a previous Save recorded.
	seq uint64
}

type viewCacheKey struct {
	execID string
	level  privacy.Level
	// polGen is the shard's policy generation the view was collapsed
	// under: a fill raced by UpdatePolicy lands under the old
	// generation, where no post-update reader can hit it.
	polGen uint64
}

// taintCacheKey keys the per-shard taint-set cache. No level component:
// taint sets are level-independent (labels carry their required level
// and are filtered at apply time).
type taintCacheKey struct {
	execID string
	polGen uint64
}

// maskedCacheKey keys the per-shard masked-execution snapshot cache:
// unlike taint sets, a masked snapshot is level-specific.
type maskedCacheKey struct {
	execID string
	level  privacy.Level
	polGen uint64
}

// maskedSnapshot is one cached privacy-enforced execution plus the
// masking report recorded when it was built (replayed into the taint
// counters on every serve, like the view store's fast path) and whether
// the view is coarser than the full expansion. The execution rides
// inside a query.PreparedExec — its graph and transitive closure are
// derived once at fill time, so warm queries skip both rebuilds. pol is
// the policy the snapshot was built under: evaluation must use it, not
// a re-read of the shard's current policy, so an answer raced by
// UpdatePolicy is internally consistent with one generation (view,
// mask and module filtering all from the same policy). All of it is
// immutable and shared by every concurrent reader.
type maskedSnapshot struct {
	prep   *query.PreparedExec
	pol    *privacy.Policy
	rep    taint.Report
	zoomed bool
}

// viewCacheCap bounds the number of collapsed views retained per shard
// (the cap is generous: levels × executions); viewCacheTTL bounds their
// age so a long-idle view is rebuilt rather than pinned forever.
const (
	viewCacheCap = 1024
	viewCacheTTL = 10 * time.Minute
)

// Repository is a concurrency-safe, per-spec-sharded store of specs,
// executions, policies and users, with privacy-aware search and query
// entry points.
type Repository struct {
	mu        sync.RWMutex
	shards    map[string]*shard
	matLevels []privacy.Level // non-nil once materialization is enabled

	usersMu sync.RWMutex
	users   map[string]*privacy.User

	// inverted and reach are shared across shards (one physical index
	// serving every privilege level is the paper's point). Both publish
	// immutable snapshots internally: lookups are lock-free, mutations
	// serialize inside the index.
	inverted *index.Inverted
	reach    *index.ReachIndex

	cache atomic.Pointer[index.Cache]

	// corpora caches the per-level visible TF-IDF corpus; corpusGen
	// fences singleflight fills against concurrent mutation (a delta or
	// invalidation bumps it, so a raced fill is discarded).
	corpusMu  sync.RWMutex
	corpora   map[privacy.Level]*rank.Corpus
	corpusGen uint64

	// corpusDeltas counts incremental AddDoc/RemoveDoc applications;
	// corpusRebuilds counts from-scratch per-level corpus builds.
	corpusDeltas   atomic.Int64 //provlint:counter
	corpusRebuilds atomic.Int64 //provlint:counter

	// cacheHitsBase/cacheMissesBase accumulate the counters of retired
	// result caches (resetResultCache swaps the cache object), and
	// viewHitsBase/viewMissesBase those of removed shards' view caches,
	// keeping the *_total metrics monotonic. taintHitsBase/
	// taintMissesBase do the same for removed shards' taint-set caches,
	// maskedHitsBase/maskedMissesBase for their masked-snapshot caches.
	cacheHitsBase    atomic.Int64 //provlint:counter
	cacheMissesBase  atomic.Int64 //provlint:counter
	viewHitsBase     atomic.Int64 //provlint:counter
	viewMissesBase   atomic.Int64 //provlint:counter
	taintHitsBase    atomic.Int64 //provlint:counter
	taintMissesBase  atomic.Int64 //provlint:counter
	maskedHitsBase   atomic.Int64 //provlint:counter
	maskedMissesBase atomic.Int64 //provlint:counter

	// taintRewritten/taintRedacted count items the taint engine
	// rewrote / fully redacted across all read-path masking (provenance
	// and structural-query responses) — the new-subsystem health
	// counters exported as taint_items_*_total.
	taintRewritten atomic.Int64 //provlint:counter
	taintRedacted  atomic.Int64 //provlint:counter

	// saveMu guards bound, the repository's attachment to a storage
	// backend with its incremental-save bookkeeping (see persist.go).
	// mutSeq issues globally unique shard seq values.
	saveMu sync.Mutex
	bound  *boundStore
	mutSeq atomic.Uint64

	// polMu serializes the policy-sensitive mutators (AddSpec,
	// RemoveSpec, UpdatePolicy, EnableMaterialization) against each
	// other, so an
	// in-flight policy update can neither interleave with another, nor
	// re-register the segment of a spec a concurrent RemoveSpec just
	// dropped, nor be overwritten by a materialization pass built under
	// the policy it replaces. Lock order: polMu before mu.
	polMu sync.Mutex

	flights flightGroup

	// workers bounds the fan-out pool shared by all multi-spec
	// operations on this repository.
	workers int
	sem     chan struct{}
}

// resultCacheCap bounds the shared per-group search result cache.
const resultCacheCap = 256

// resetResultCache swaps in a fresh, empty result cache (cached search
// hits may mention mutated specs, so every corpus-visible mutation
// drops it).
func (r *Repository) resetResultCache() {
	cache, _ := index.NewCache(resultCacheCap)
	if old := r.cache.Swap(cache); old != nil {
		h, m := old.Stats()
		r.cacheHitsBase.Add(int64(h))
		r.cacheMissesBase.Add(int64(m))
	}
}

// New returns an empty repository with a fan-out pool sized to the
// machine.
func New() *Repository {
	r := &Repository{
		shards:   make(map[string]*shard),
		users:    make(map[string]*privacy.User),
		inverted: index.BuildInverted(nil, nil),
		corpora:  make(map[privacy.Level]*rank.Corpus),
	}
	reach, _ := index.BuildReach(nil)
	r.reach = reach
	r.resetResultCache()
	r.setWorkers(runtime.GOMAXPROCS(0))
	return r
}

// SetWorkers resizes the bounded fan-out pool (minimum 1; 1 disables
// engine-internal parallelism, the serial baseline of
// BenchmarkSearchParallel).
func (r *Repository) SetWorkers(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.setWorkers(n)
}

func (r *Repository) setWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.workers = n
	r.sem = make(chan struct{}, n)
}

// fanOut runs fn(0..n-1), spreading calls over the repository's bounded
// worker pool. When the pool is saturated the caller runs the task
// inline, so fanOut never deadlocks under nesting and never queues
// unboundedly. Results must be written to index-addressed slots by fn;
// completion order is unspecified, slot order is deterministic.
func (r *Repository) fanOut(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	r.mu.RLock()
	sem := r.sem
	workers := r.workers
	r.mu.RUnlock()
	if n == 1 || workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				fn(i)
			}(i)
		default:
			fn(i)
		}
	}
	wg.Wait()
}

// shard returns the shard for a spec id, or nil.
func (r *Repository) shard(specID string) *shard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards[specID]
}

// shardOrErr resolves a shard or reports ErrNotFound.
func (r *Repository) shardOrErr(specID string) (*shard, error) {
	sh := r.shard(specID)
	if sh == nil {
		return nil, fmt.Errorf("repo: unknown spec %q: %w", specID, ErrNotFound)
	}
	return sh, nil
}

// snapshotShards returns the shards in sorted spec-id order.
func (r *Repository) snapshotShards() []*shard {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.shards))
	for id := range r.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*shard, len(ids))
	for i, id := range ids {
		out[i] = r.shards[id]
	}
	return out
}

// AddSpec registers a validated spec with its policy (nil for an
// all-public policy). Indexes are updated incrementally; the shard is
// published only after its index entries exist, so readers never see a
// searchable spec they cannot resolve.
func (r *Repository) AddSpec(s *workflow.Spec, pol *privacy.Policy) error {
	sh, pol, err := r.newShard(s, pol)
	if err != nil {
		return err
	}
	// Serialize against the other mutators (RemoveSpec, UpdatePolicy,
	// EnableMaterialization): with polMu held, the duplicate check below
	// is authoritative, the index entries this call publishes cannot be
	// clobbered by a racing duplicate's rollback, and the corpus delta
	// cannot land after a newer policy's rebuild. Readers never take
	// polMu, so mutation work here stalls no read path.
	r.polMu.Lock()
	defer r.polMu.Unlock()
	if r.shard(s.ID) != nil {
		return fmt.Errorf("repo: spec %s already registered: %w", s.ID, ErrExists)
	}
	// Heavy incremental index maintenance runs outside the directory
	// lock: both indexes serialize writers internally and publish atomic
	// snapshots, so readers on other specs are never stalled. A hit on
	// the not-yet-published shard resolves to nil and is skipped, the
	// same transient Search already tolerates for removal.
	r.inverted.AddSpec(s, pol)
	if err := r.reach.AddSpec(s); err != nil {
		r.inverted.RemoveSpec(s.ID)
		return err
	}
	r.mu.Lock()
	if r.matLevels != nil {
		vs := index.NewViewStore()
		// A fresh shard has no generalization ladders yet;
		// SetGeneralization rebuilds the view store when they arrive.
		if err := vs.RegisterSpec(s, pol, nil, r.matLevels); err != nil {
			r.mu.Unlock()
			r.inverted.RemoveSpec(s.ID)
			r.reach.RemoveSpec(s.ID)
			return err
		}
		sh.viewStore = vs
	}
	r.shards[s.ID] = sh
	r.mu.Unlock()
	// Corpus deltas after the directory lock (still under polMu): the
	// corpusGen fence discards any rebuild raced by this mutation, and
	// AddDoc is an idempotent replace if such a rebuild already picked
	// the spec up.
	r.applyCorpusDelta(func(level privacy.Level, c *rank.Corpus) {
		c.AddDoc(s.ID, visibleSpecTerms(s, pol, level))
	})
	return nil
}

// newShard validates a spec + policy pair (nil policy = all-public) and
// constructs its shard, without registering anything.
func (r *Repository) newShard(s *workflow.Spec, pol *privacy.Policy) (*shard, *privacy.Policy, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	h, err := workflow.NewHierarchy(s)
	if err != nil {
		return nil, nil, err
	}
	if pol == nil {
		pol = privacy.NewPolicy(s.ID)
	}
	if err := pol.Validate(s); err != nil {
		return nil, nil, err
	}
	return &shard{
		spec:   s,
		hier:   h,
		policy: pol,
		execs:  make(map[string]*exec.Execution),
		views:  index.NewLRU[viewCacheKey, *exec.Execution](viewCacheCap, viewCacheTTL),
		taints: index.NewLRU[taintCacheKey, *taint.Set](viewCacheCap, viewCacheTTL),
		masked: index.NewLRU[maskedCacheKey, maskedSnapshot](viewCacheCap, viewCacheTTL),
		engine: datapriv.NewMasker(pol, nil).Engine(),
		seq:    r.mutSeq.Add(1),
	}, pol, nil
}

// loadSpec registers a validated spec shard without touching the shared
// indexes or corpora — the bulk-load path: Load registers every spec
// first and then builds each index once, avoiding the per-spec snapshot
// copy that would make a large load quadratic. Only valid on a private,
// not-yet-shared repository.
func (r *Repository) loadSpec(s *workflow.Spec, pol *privacy.Policy) error {
	sh, _, err := r.newShard(s, pol)
	if err != nil {
		return err
	}
	if _, dup := r.shards[s.ID]; dup {
		return fmt.Errorf("repo: spec %s already registered: %w", s.ID, ErrExists)
	}
	r.shards[s.ID] = sh
	return nil
}

// invalidateDerived resets the lazily built per-level corpora and the
// result cache. This is the full-rebuild fallback, reserved for
// mutations that can reclassify what a level sees (policy updates);
// plain spec add/remove goes through applyCorpusDelta instead.
func (r *Repository) invalidateDerived() {
	r.corpusMu.Lock()
	r.corpora = make(map[privacy.Level]*rank.Corpus)
	r.corpusGen++
	r.corpusMu.Unlock()
	r.resetResultCache()
}

// applyCorpusDelta incrementally maintains every already-built per-level
// corpus through fn (an AddDoc or RemoveDoc of one spec), bumping the
// generation counter so any in-flight from-scratch build is discarded
// rather than overwriting the delta'd corpus with a stale one. The
// result cache is still swapped out — cached search hits may mention the
// mutated spec — but corpora no longer rebuild from scratch, so the cost
// of a mutation scales with the mutated spec, not the repository.
func (r *Repository) applyCorpusDelta(fn func(privacy.Level, *rank.Corpus)) {
	r.corpusMu.Lock()
	r.corpusGen++
	for level, c := range r.corpora {
		fn(level, c)
		r.corpusDeltas.Add(1)
	}
	r.corpusMu.Unlock()
	r.resetResultCache()
}

// visibleSpecTerms extracts the normalized keyword terms of the spec's
// modules visible at level — the document the per-level corpus holds for
// this spec.
func visibleSpecTerms(s *workflow.Spec, pol *privacy.Policy, level privacy.Level) []string {
	var terms []string
	for _, wid := range s.WorkflowIDs() {
		for _, m := range s.Workflows[wid].Modules {
			if pol != nil && !pol.CanSeeModule(level, m.ID) {
				continue
			}
			for _, kw := range m.AllKeywords() {
				terms = append(terms, search.Normalize(kw))
			}
		}
	}
	return terms
}

// SpecIDs returns the registered spec ids, sorted.
func (r *Repository) SpecIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.shards))
	for id := range r.shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Spec returns a registered spec, or nil.
func (r *Repository) Spec(id string) *workflow.Spec {
	sh := r.shard(id)
	if sh == nil {
		return nil
	}
	return sh.spec
}

// Policy returns the policy of a spec, or nil.
func (r *Repository) Policy(specID string) *privacy.Policy {
	sh := r.shard(specID)
	if sh == nil {
		return nil
	}
	return sh.policySnapshot()
}

// execution returns one stored execution (nil when absent); used by
// white-box tests.
func (r *Repository) execution(specID, execID string) *exec.Execution {
	sh := r.shard(specID)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.execs[execID]
}

// AddExecution stores a validated execution of a registered spec. Only
// that spec's shard is locked: ingest on one spec never stalls queries
// on others.
func (r *Repository) AddExecution(e *exec.Execution) error {
	if err := e.Validate(); err != nil {
		return err
	}
	sh := r.shard(e.SpecID)
	if sh == nil {
		return fmt.Errorf("repo: execution %s references unknown spec %s: %w", e.ID, e.SpecID, ErrNotFound)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.execs[e.ID]; dup {
		return fmt.Errorf("repo: execution %s already registered: %w", e.ID, ErrExists)
	}
	sh.execs[e.ID] = e
	if sh.viewStore != nil {
		if err := sh.viewStore.Materialize(e); err != nil {
			delete(sh.execs, e.ID)
			return fmt.Errorf("repo: materialize views: %w", err)
		}
	}
	sh.seq = r.mutSeq.Add(1)
	return nil
}

// EnableMaterialization turns on materialized privacy views at the
// given access levels: every registered and future execution gets one
// pre-collapsed, pre-masked copy per level, and Provenance serves from
// them. Trades memory for per-query collapse cost (bench
// BenchmarkMaterializedViews). Shards are rebuilt in parallel on the
// fan-out pool, in two phases so a build failure installs nothing: all
// view stores are constructed first, and only when every shard
// succeeded are they published (catching up on executions ingested
// while building).
func (r *Repository) EnableMaterialization(levels []privacy.Level) error {
	// Serialize against UpdatePolicy/RemoveSpec: views built here must
	// reflect the policies in place when they are installed.
	r.polMu.Lock()
	defer r.polMu.Unlock()
	shards := r.snapshotShards()
	built := make([]*index.ViewStore, len(shards))
	covered := make([]map[string]bool, len(shards))
	errs := make([]error, len(shards))
	r.fanOut(len(shards), func(i int) {
		built[i], covered[i], errs[i] = shards[i].buildViews(levels)
	})
	if err := errors.Join(errs...); err != nil {
		return err
	}
	// Publish: future AddSpec materializes from here on; installViews
	// re-diffs each shard's executions under its write lock, so nothing
	// ingested during the build phase is missed.
	r.mu.Lock()
	r.matLevels = append([]privacy.Level(nil), levels...)
	r.mu.Unlock()
	for i, sh := range shards {
		errs[i] = sh.installViews(built[i], covered[i])
	}
	return errors.Join(errs...)
}

// buildViews constructs (without installing) a view store covering the
// shard's current executions, returning the execution ids it covers.
func (sh *shard) buildViews(levels []privacy.Level) (*index.ViewStore, map[string]bool, error) {
	sh.mu.RLock()
	execs := make([]*exec.Execution, 0, len(sh.execs))
	for _, e := range sh.execs {
		execs = append(execs, e)
	}
	spec, pol, hs := sh.spec, sh.policy, sh.hierarchies
	sh.mu.RUnlock()
	vs := index.NewViewStore()
	if err := vs.RegisterSpec(spec, pol, hs, levels); err != nil {
		return nil, nil, err
	}
	sort.Slice(execs, func(i, j int) bool { return execs[i].ID < execs[j].ID })
	covered := make(map[string]bool, len(execs))
	for _, e := range execs {
		if err := vs.Materialize(e); err != nil {
			return nil, nil, err
		}
		covered[e.ID] = true
	}
	return vs, covered, nil
}

// installViews publishes a built view store, first materializing any
// executions ingested since buildViews snapshotted the shard.
func (sh *shard) installViews(vs *index.ViewStore, covered map[string]bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for id, e := range sh.execs {
		if !covered[id] {
			if err := vs.Materialize(e); err != nil {
				return err
			}
		}
	}
	sh.viewStore = vs
	return nil
}

// RemoveSpec unregisters a spec, its policy, its executions and its
// index entries. Queries against it fail afterwards. Once RemoveSpec
// returns, the index snapshots without the spec's postings are
// published: no subsequent Lookup or Search can serve a stale posting
// for it.
func (r *Repository) RemoveSpec(specID string) error {
	r.polMu.Lock()
	defer r.polMu.Unlock()
	r.mu.Lock()
	sh := r.shards[specID]
	if sh == nil {
		r.mu.Unlock()
		return fmt.Errorf("repo: unknown spec %q: %w", specID, ErrNotFound)
	}
	if sh.views != nil {
		h, m := sh.views.Stats()
		r.viewHitsBase.Add(h)
		r.viewMissesBase.Add(m)
	}
	if sh.taints != nil {
		h, m := sh.taints.Stats()
		r.taintHitsBase.Add(h)
		r.taintMissesBase.Add(m)
	}
	if sh.masked != nil {
		h, m := sh.masked.Stats()
		r.maskedHitsBase.Add(h)
		r.maskedMissesBase.Add(m)
	}
	delete(r.shards, specID)
	r.mu.Unlock()
	// Index swaps and corpus deltas run outside the directory lock so
	// readers on other specs never stall; polMu still fences this
	// against UpdatePolicy re-registering the segment.
	r.inverted.RemoveSpec(specID)
	r.reach.RemoveSpec(specID)
	r.applyCorpusDelta(func(level privacy.Level, c *rank.Corpus) {
		c.RemoveDoc(specID)
	})
	return nil
}

// UpdatePolicy replaces a spec's privacy policy. Because a policy change
// can reclassify which levels see which modules, this is the one
// mutation that cannot be delta-maintained: the spec's index segment is
// rebuilt with the new levels and every derived per-level corpus is
// invalidated for a from-scratch rebuild (the fallback applyCorpusDelta
// avoids). Materialized views and collapsed-view caches of the shard are
// rebuilt/dropped for the same reason.
//
// All heavy work (re-materializing the shard's executions) happens
// before anything is installed, holding no repository-wide lock, so a
// failure leaves the old policy, views and indexes fully in place and
// traffic on other specs never stalls.
func (r *Repository) UpdatePolicy(specID string, pol *privacy.Policy) error {
	r.polMu.Lock()
	defer r.polMu.Unlock()
	r.mu.RLock()
	sh := r.shards[specID]
	matLevels := r.matLevels
	r.mu.RUnlock()
	if sh == nil {
		return fmt.Errorf("repo: unknown spec %q: %w", specID, ErrNotFound)
	}
	s := sh.spec // immutable once published
	if pol == nil {
		pol = privacy.NewPolicy(specID)
	}
	if err := pol.Validate(s); err != nil {
		return err
	}
	// Phase 1 — build: construct the replacement view store (when
	// materialization is on) over a snapshot of the shard's executions.
	var vs *index.ViewStore
	var covered map[string]bool
	if matLevels != nil {
		sh.mu.RLock()
		hs := sh.hierarchies
		execs := make([]*exec.Execution, 0, len(sh.execs))
		for _, e := range sh.execs {
			execs = append(execs, e)
		}
		sh.mu.RUnlock()
		vs = index.NewViewStore()
		if err := vs.RegisterSpec(s, pol, hs, matLevels); err != nil {
			return err
		}
		sort.Slice(execs, func(i, j int) bool { return execs[i].ID < execs[j].ID })
		covered = make(map[string]bool, len(execs))
		for _, e := range execs {
			if err := vs.Materialize(e); err != nil {
				return err
			}
			covered[e.ID] = true
		}
	}
	// Phase 2 — install: re-register the spec's index segment with the
	// new module levels (the index replaces postings atomically), then
	// publish policy and views under the shard lock, catching up on
	// executions ingested during the build. The window between the index
	// swap and the policy install is benign: both old and new state are
	// internally consistent, and invalidateDerived below rebuilds the
	// corpora against the final policy.
	oldPol := sh.policySnapshot()
	r.inverted.AddSpec(s, pol)
	sh.mu.Lock()
	if vs != nil {
		for id, e := range sh.execs {
			if !covered[id] {
				if err := vs.Materialize(e); err != nil {
					sh.mu.Unlock()
					r.inverted.AddSpec(s, oldPol) // roll the segment back
					// Searches raced into the new-segment window may have
					// cached results computed from it; drop them.
					r.invalidateDerived()
					return err
				}
			}
		}
		sh.viewStore = vs
	}
	sh.policy = pol
	sh.engine = datapriv.NewMasker(pol, sh.hierarchies).Engine()
	sh.polGen++       // old-generation cache entries become unreachable
	sh.views.Purge()  // and are dropped eagerly to free memory
	sh.taints.Purge() // taint sets seeded under the old policy likewise
	sh.masked.Purge() // no pre-update masked snapshot may survive
	sh.seq = r.mutSeq.Add(1)
	sh.mu.Unlock()
	r.invalidateDerived()
	return nil
}

// policySnapshot reads the shard's current policy under its lock (the
// policy pointer is mutable via UpdatePolicy; spec and hier are not).
func (sh *shard) policySnapshot() *privacy.Policy {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.policy
}

// SetGeneralization installs generalization hierarchies for a spec's
// protected attributes: masking then coarsens values (e.g. exact SNP →
// chromosome → genome) instead of redacting them outright, preserving
// utility for under-privileged users. When materialized views are
// enabled, the shard's view store is rebuilt under the new ladders —
// the views must generalize exactly like the snapshot path (the
// masking-parity contract) — so calling this before or after
// materialization is equally safe.
func (r *Repository) SetGeneralization(specID string, hs map[string]*datapriv.Hierarchy) error {
	// Serialize against the other policy-sensitive mutators: the view
	// store rebuilt below must reflect exactly one (policy, ladder)
	// pair, and EnableMaterialization must not install views built
	// under the ladders this call replaces.
	r.polMu.Lock()
	defer r.polMu.Unlock()
	sh, err := r.shardOrErr(specID)
	if err != nil {
		return err
	}
	r.mu.RLock()
	matLevels := r.matLevels
	r.mu.RUnlock()
	// Phase 1 — build: when materialization is on, re-materialize the
	// shard's views under the new ladders, outside the shard lock.
	var vs *index.ViewStore
	var covered map[string]bool
	if matLevels != nil {
		sh.mu.RLock()
		spec, pol := sh.spec, sh.policy
		execs := make([]*exec.Execution, 0, len(sh.execs))
		for _, e := range sh.execs {
			execs = append(execs, e)
		}
		sh.mu.RUnlock()
		vs = index.NewViewStore()
		if err := vs.RegisterSpec(spec, pol, hs, matLevels); err != nil {
			return err
		}
		sort.Slice(execs, func(i, j int) bool { return execs[i].ID < execs[j].ID })
		covered = make(map[string]bool, len(execs))
		for _, e := range execs {
			if err := vs.Materialize(e); err != nil {
				return err
			}
			covered[e.ID] = true
		}
	}
	// Phase 2 — install under the shard lock, catching up on executions
	// ingested during the build. A failure installs nothing: the old
	// ladders, engine and views stay fully in place.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if vs != nil {
		for id, e := range sh.execs {
			if !covered[id] {
				if err := vs.Materialize(e); err != nil {
					return err
				}
			}
		}
		sh.viewStore = vs
	}
	sh.hierarchies = hs
	sh.engine = datapriv.NewMasker(sh.policy, hs).Engine()
	// Hierarchies change what masking emits, so cached masked snapshots
	// are stale; bump the generation fence (making any in-flight fill
	// under the old engine unreachable) and drop all derived caches.
	// Collapsed views and taint sets do not depend on hierarchies, but
	// this mutation is rare and correctness beats the rebuild cost.
	sh.polGen++
	sh.views.Purge()
	sh.taints.Purge()
	sh.masked.Purge()
	sh.seq = r.mutSeq.Add(1)
	return nil
}

// ExecutionIDs lists executions of a spec, sorted.
func (r *Repository) ExecutionIDs(specID string) []string {
	sh := r.shard(specID)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ids := make([]string, 0, len(sh.execs))
	for id := range sh.execs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// AddUser registers (or replaces) a user.
func (r *Repository) AddUser(u privacy.User) {
	r.usersMu.Lock()
	defer r.usersMu.Unlock()
	cp := u
	r.users[u.Name] = &cp
}

// User looks up a registered user.
func (r *Repository) User(name string) (*privacy.User, error) {
	r.usersMu.RLock()
	defer r.usersMu.RUnlock()
	u := r.users[name]
	if u == nil {
		return nil, fmt.Errorf("repo: unknown user %q: %w", name, ErrUnknownUser)
	}
	cp := *u
	return &cp, nil
}

// Users returns the registered users, sorted by name.
func (r *Repository) Users() []privacy.User {
	r.usersMu.RLock()
	defer r.usersMu.RUnlock()
	names := make([]string, 0, len(r.users))
	for n := range r.users {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]privacy.User, len(names))
	for i, n := range names {
		out[i] = *r.users[n]
	}
	return out
}

// corpusFor lazily builds the TF-IDF corpus visible at a level: each
// spec is a document whose terms come only from modules the level may
// see (module privacy) — the leak-free "visible-only scoring" mode.
// Concurrent requests for the same level are deduplicated through the
// flight group, so one goroutine builds while the rest wait; a
// generation fence discards fills raced by an invalidation.
func (r *Repository) corpusFor(level privacy.Level) *rank.Corpus {
	r.corpusMu.RLock()
	c := r.corpora[level]
	r.corpusMu.RUnlock()
	if c != nil {
		return c
	}
	v, _ := r.flights.Do(fmt.Sprintf("corpus|%d", int(level)), func() (any, error) {
		r.corpusMu.RLock()
		if c := r.corpora[level]; c != nil {
			r.corpusMu.RUnlock()
			return c, nil
		}
		gen := r.corpusGen
		r.corpusMu.RUnlock()
		c := r.buildCorpus(level)
		r.corpusMu.Lock()
		if r.corpusGen == gen {
			r.corpora[level] = c
		}
		r.corpusMu.Unlock()
		return c, nil
	})
	return v.(*rank.Corpus)
}

func (r *Repository) buildCorpus(level privacy.Level) *rank.Corpus {
	r.corpusRebuilds.Add(1)
	c := rank.NewCorpus()
	for _, sh := range r.snapshotShards() {
		sh.mu.RLock()
		s, pol := sh.spec, sh.policy
		sh.mu.RUnlock()
		c.Add(s.ID, visibleSpecTerms(s, pol, level))
	}
	return c
}

// SearchHit is one ranked repository search result.
type SearchHit struct {
	SpecID string
	Score  float64
	Result *search.Result
}

// SearchOptions tunes repository search.
type SearchOptions struct {
	// Buckets > 0 publishes bucketized scores (privacy-aware ranking).
	Buckets int
	// BypassCache disables the per-group result cache.
	BypassCache bool
	// Limit/Offset window the ranked result list engine-side: only the
	// specs inside [Offset, Offset+Limit) get their minimal view built;
	// the rest are counted with the cheap search.Matches predicate.
	// Limit 0 means unlimited (full materialization).
	Limit, Offset int
}

// Search runs a keyword query as the given user: candidate specs come
// from the privacy-classified inverted index, each is answered with its
// minimal view clipped to the user's access view, and results are
// ranked by TF-IDF over the level's visible corpus. Candidate specs are
// evaluated concurrently on the fan-out pool; the merge is
// deterministic (score descending, spec id ascending). Limit/Offset in
// opts are ignored — Search always returns the full list; windowed
// callers use SearchPage.
func (r *Repository) Search(userName, queryText string, opts SearchOptions) ([]SearchHit, error) {
	opts.Limit, opts.Offset = 0, 0
	hits, _, err := r.SearchPage(userName, queryText, opts)
	return hits, err
}

// pagedHits is the result-cache value of SearchPage: one window plus
// the pre-pagination total.
type pagedHits struct {
	hits  []SearchHit
	total int
}

// SearchPage is Search with the pagination window pushed into the
// engine. The ranked order of the full result list is known before any
// view is built (corpus scores are per spec, ties break on spec id), so
// the engine sorts the candidates first, counts the matching ones with
// search.Matches — a per-module keyword scan, no hierarchy walk, no
// view expansion — and runs the expensive minimal-view search only for
// the candidates inside [Offset, Offset+Limit). A deep repository
// therefore pays per page, not per hit; total is still exact
// (TestMatchesAgreesWithSearch pins predicate/search equivalence, and
// TestSearchPageTilesFullSearch pins the tiling end-to-end).
func (r *Repository) SearchPage(userName, queryText string, opts SearchOptions) ([]SearchHit, int, error) {
	return r.SearchPageCtx(context.Background(), userName, queryText, opts)
}

// SearchPageCtx is SearchPage threaded with a context: the fan-out
// phases check ctx between shards and abandon the search early when the
// caller is gone (a disconnected HTTP client), instead of burning the
// worker pool on a result nobody reads. A canceled search returns ctx's
// error and caches nothing.
func (r *Repository) SearchPageCtx(ctx context.Context, userName, queryText string, opts SearchOptions) ([]SearchHit, int, error) {
	u, err := r.User(userName)
	if err != nil {
		return nil, 0, err
	}
	phrases := search.ParseQuery(queryText)
	if len(phrases) == 0 {
		return nil, 0, fmt.Errorf("repo: empty query")
	}
	if opts.Limit < 0 || opts.Offset < 0 {
		return nil, 0, fmt.Errorf("repo: negative pagination window")
	}

	// %q-quote the caller-controlled query so a '|' inside it cannot
	// collide with another (query, buckets, window) triple's key.
	cacheKey := fmt.Sprintf("search|%q|%d|%d|%d", queryText, opts.Buckets, opts.Limit, opts.Offset)
	cache := r.cache.Load()
	if !opts.BypassCache {
		if v, ok := cache.Get(u.Group, cacheKey); ok {
			p := v.(pagedHits)
			return p.hits, p.total, nil
		}
	}

	// Candidate specs: any spec with a visible posting for the first
	// term of some phrase. Lookup reads the index's published snapshot —
	// no lock — so concurrent spec mutations never stall the search path.
	candidateSet := make(map[string]bool)
	for _, phrase := range phrases {
		for _, p := range r.inverted.Lookup(phrase[0], u.Level) {
			candidateSet[p.SpecID] = true
		}
	}
	candidates := make([]string, 0, len(candidateSet))
	for sid := range candidateSet {
		candidates = append(candidates, sid)
	}

	corpus := r.corpusFor(u.Level)
	var flat []string
	for _, phrase := range phrases {
		flat = append(flat, phrase...)
	}
	ranked := corpus.Rank(flat)
	if opts.Buckets > 0 {
		ranked = rank.Bucketize(ranked, opts.Buckets)
	}
	scoreOf := make(map[string]float64, len(ranked))
	for _, rk := range ranked {
		scoreOf[rk.Doc] = rk.Score
	}

	// Rank the candidates up front, in exactly the final hit order
	// (score descending, spec id ascending): evaluation can then window
	// by position without materializing anything outside the window.
	sort.Slice(candidates, func(i, j int) bool {
		si, sj := scoreOf[candidates[i]], scoreOf[candidates[j]]
		if si != sj {
			return si > sj
		}
		return candidates[i] < candidates[j]
	})

	// Which ranked candidates actually match, via the cheap predicate.
	// A shard removed since the index lookup counts as a non-match, the
	// same transient the full path already tolerates.
	matched := make([]bool, len(candidates))
	_, matchSpan := obs.StartSpan(ctx, "search.fanout.match")
	r.fanOut(len(candidates), func(i int) {
		if ctx.Err() != nil {
			return // caller gone: stop scanning, the ctx check below reports
		}
		sh := r.shard(candidates[i])
		if sh == nil {
			return
		}
		sh.mu.RLock()
		s, pol := sh.spec, sh.policy
		sh.mu.RUnlock()
		matched[i] = search.Matches(s, phrases, pol, u.Level)
	})
	matchSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	window := make([]string, 0, len(candidates))
	total := 0
	for i, sid := range candidates {
		if !matched[i] {
			continue
		}
		total++
		if total-1 < opts.Offset {
			continue
		}
		if opts.Limit > 0 && len(window) >= opts.Limit {
			continue // beyond the window: counted, never materialized
		}
		window = append(window, sid)
	}

	// Materialize minimal views for the window only, on the fan-out
	// pool; slot i belongs to window[i], so order survives the merge.
	slots := make([]*SearchHit, len(window))
	_, viewSpan := obs.StartSpan(ctx, "search.fanout.views")
	r.fanOut(len(window), func(i int) {
		if ctx.Err() != nil {
			return
		}
		sid := window[i]
		sh := r.shard(sid)
		if sh == nil {
			return // removed since the predicate pass
		}
		sh.mu.RLock()
		s, pol, hier := sh.spec, sh.policy, sh.hier
		sh.mu.RUnlock()
		access := pol.AccessView(hier, u.Level)
		res, err := search.SearchWithAccess(s, phrases, access, pol, u.Level)
		if err != nil {
			return // predicate raced a mutation; drop the hit
		}
		slots[i] = &SearchHit{SpecID: sid, Score: scoreOf[sid], Result: res}
	})
	viewSpan.End()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	hits := make([]SearchHit, 0, len(window))
	for _, h := range slots {
		if h != nil {
			hits = append(hits, *h)
		}
	}
	if !opts.BypassCache {
		cache.Put(u.Group, cacheKey, pagedHits{hits: hits, total: total})
	}
	return hits, total, nil
}

// CacheStats exposes cumulative result-cache hit/miss counters
// (monotonic across the cache swaps every mutation performs).
func (r *Repository) CacheStats() (hits, misses int) {
	h, m := r.cache.Load().Stats()
	return h + int(r.cacheHitsBase.Load()), m + int(r.cacheMissesBase.Load())
}

// queryContext resolves the common (user, shard, execution) triple of
// the per-execution query paths.
func (r *Repository) queryContext(userName, specID, execID string) (*privacy.User, *shard, *exec.Execution, error) {
	u, err := r.User(userName)
	if err != nil {
		return nil, nil, nil, err
	}
	sh, err := r.shardOrErr(specID)
	if err != nil {
		return nil, nil, nil, err
	}
	sh.mu.RLock()
	e := sh.execs[execID]
	sh.mu.RUnlock()
	if e == nil {
		return nil, nil, nil, fmt.Errorf("repo: unknown execution %q of %s: %w", execID, specID, ErrNotFound)
	}
	return u, sh, e, nil
}

// maskedExecFor returns the fully privacy-enforced snapshot of an
// execution at a level — collapsed to the access view and taint-masked —
// serving from the shard's masked-snapshot cache. On miss the snapshot
// is built once under the flight group (collapsed view and taint set
// each come from their own caches) and published for every subsequent
// reader; the returned execution is shared and MUST be treated as
// read-only. The masking report is the one recorded at build time,
// replayed by callers into the serving counters.
func (r *Repository) maskedExecFor(ctx context.Context, sh *shard, e *exec.Execution, level privacy.Level) (maskedSnapshot, error) {
	sh.mu.RLock()
	pol := sh.policy
	en := sh.engine
	polGen := sh.polGen
	sh.mu.RUnlock()
	key := maskedCacheKey{execID: e.ID, level: level, polGen: polGen}
	if snap, ok := sh.masked.Get(key); ok {
		return snap, nil
	}
	// Spec and execution ids are wire-writable since the mutation API:
	// %q-quote them so an embedded '|' cannot make two different
	// (spec, exec) pairs share a singleflight key and leak one shard's
	// snapshot to another's reader.
	got, err := r.flights.Do(fmt.Sprintf("masked|%q|%q|%d|%d", sh.spec.ID, e.ID, int(level), polGen), func() (any, error) {
		if snap, ok := sh.masked.Peek(key); ok {
			return snap, nil
		}
		// The flight closure runs once for all concurrent callers; the
		// fill spans land on the trace of the caller that paid for it.
		fctx, fill := obs.StartSpan(ctx, "cache.masked_fill")
		defer fill.End()
		access := pol.AccessView(sh.hier, level)
		view, err := r.collapsedView(fctx, sh, e, level, access, polGen)
		if err != nil {
			return maskedSnapshot{}, err
		}
		set := r.taintSetFor(fctx, sh, e, en, polGen)
		_, apply := obs.StartSpan(fctx, "mask.apply")
		masked, rep := en.Apply(view, level, set)
		prep, err := query.PrepareExec(masked)
		apply.End()
		if err != nil {
			return maskedSnapshot{}, err
		}
		snap := maskedSnapshot{prep: prep, pol: pol, rep: rep, zoomed: len(access) < len(sh.hier.All())}
		sh.masked.Put(key, snap)
		return snap, nil
	})
	if err != nil {
		return maskedSnapshot{}, err
	}
	return got.(maskedSnapshot), nil
}

// evaluateQuery runs one parsed structural query against one execution
// under the user's privacy constraints, serving the execution from the
// masked-snapshot cache: a warm query allocates nothing for privacy
// enforcement (no masker, no deep copy, no rewrite pass) — only the
// evaluation itself.
func (r *Repository) evaluateQuery(ctx context.Context, sh *shard, e *exec.Execution, q *query.Query, level privacy.Level) (*query.Answer, error) {
	snap, err := r.maskedExecFor(ctx, sh, e, level)
	if err != nil {
		return nil, err
	}
	r.countTaint(snap.rep)
	ev := query.NewEvaluator(sh.spec)
	return ev.EvaluateOn(q, snap.prep, snap.pol, level, snap.zoomed)
}

// Query evaluates a structural query (see query.Parse) against one
// execution under the user's privacy constraints, with taint-aware
// masking of the answer's values and provenance subgraphs.
func (r *Repository) Query(userName, specID, execID, queryText string) (*query.Answer, error) {
	q, err := query.Parse(queryText)
	if err != nil {
		return nil, err
	}
	u, sh, e, err := r.queryContext(userName, specID, execID)
	if err != nil {
		return nil, err
	}
	return r.evaluateQuery(context.Background(), sh, e, q, u.Level)
}

// Reaches answers the paper's core structural-privacy question — "does
// module from contribute to the data produced by module to?" — as
// visible to the user:
//
//   - pairs listed in the policy's Structural requirements above the
//     user's level answer false (the connection is confidential);
//   - modules invisible at the user's access view are resolved to the
//     composite module that represents them, so the answer is at the
//     granularity the user is entitled to; if both endpoints collapse
//     into the same composite, the relationship is not externally
//     visible and the answer is false.
//
// Note this is answer-time enforcement for the exact pairs; publishers
// wanting protection against multi-query inference should additionally
// transform the published view with structpriv (cut or cluster).
func (r *Repository) Reaches(userName, specID, from, to string) (bool, error) {
	u, err := r.User(userName)
	if err != nil {
		return false, err
	}
	sh, err := r.shardOrErr(specID)
	if err != nil {
		return false, err
	}
	s, pol, h := sh.spec, sh.policySnapshot(), sh.hier
	for _, hp := range pol.HiddenPairsFor(u.Level) {
		if hp.From == from && hp.To == to {
			return false, nil
		}
	}
	access := pol.AccessView(h, u.Level)
	if len(access) == len(h.All()) {
		// Full access view: answer from the precomputed full-expansion
		// closure, O(1). Composite endpoints don't appear in the full
		// expansion; fall through to the view path for those.
		mf, _ := s.FindModule(from)
		mt, _ := s.FindModule(to)
		if mf == nil {
			return false, fmt.Errorf("repo: unknown module %q: %w", from, ErrNotFound)
		}
		if mt == nil {
			return false, fmt.Errorf("repo: unknown module %q: %w", to, ErrNotFound)
		}
		if mf.Kind != workflow.Composite && mt.Kind != workflow.Composite {
			return r.reach.Reaches(specID, from, to), nil
		}
	}
	v, err := workflow.Expand(s, access)
	if err != nil {
		return false, err
	}
	g := v.Graph()
	rf, err := visibleRepr(s, h, v, from, access)
	if err != nil {
		return false, err
	}
	rt, err := visibleRepr(s, h, v, to, access)
	if err != nil {
		return false, err
	}
	if rf == rt {
		return false, nil // inside one composite: not externally visible
	}
	return g.Reachable(g.Lookup(rf), g.Lookup(rt)), nil
}

// visibleRepr maps a module id to the module that represents it in the
// given view: itself when visible, else the via-module of its shallowest
// hidden ancestor workflow.
func visibleRepr(s *workflow.Spec, h *workflow.Hierarchy, v *workflow.View, moduleID string, access workflow.Prefix) (string, error) {
	if v.Module(moduleID) != nil {
		return moduleID, nil
	}
	m, w := s.FindModule(moduleID)
	if m == nil {
		return "", fmt.Errorf("repo: unknown module %q: %w", moduleID, ErrNotFound)
	}
	// Walk the workflow chain root..w; the first workflow outside the
	// access view is represented by its via-module.
	var chain []string
	for cur := w.ID; cur != ""; cur = h.Parent(cur) {
		chain = append([]string{cur}, chain...)
		if cur == h.Root {
			break
		}
	}
	for _, wid := range chain {
		if !access.Contains(wid) {
			return h.ViaModule(wid), nil
		}
	}
	return "", fmt.Errorf("repo: module %q not resolvable in view", moduleID)
}

// QueryZoomOut evaluates a structural query with the paper's gradual
// zoom-out strategy (Section 4): compute the full answer, then coarsen
// composite detail until no privacy leak remains. Steps in the result
// counts the re-evaluations — compare with the direct Query path.
func (r *Repository) QueryZoomOut(userName, specID, execID, queryText string) (*query.ZoomOutResult, error) {
	q, err := query.Parse(queryText)
	if err != nil {
		return nil, err
	}
	u, sh, e, err := r.queryContext(userName, specID, execID)
	if err != nil {
		return nil, err
	}
	ev := query.NewEvaluator(sh.spec)
	return ev.ZoomOut(q, e, sh.policySnapshot(), u.Level)
}

// QuerySpec evaluates a structural query against a specification (not
// an execution): variables bind to modules of the user's access view,
// with module privacy applied — "find workflows where Expand SNP Set
// feeds Query OMIM" without touching provenance.
func (r *Repository) QuerySpec(userName, specID, queryText string) (*query.SpecAnswer, error) {
	u, err := r.User(userName)
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(queryText)
	if err != nil {
		return nil, err
	}
	sh, err := r.shardOrErr(specID)
	if err != nil {
		return nil, err
	}
	pol := sh.policySnapshot()
	access := pol.AccessView(sh.hier, u.Level)
	v, err := workflow.Expand(sh.spec, access)
	if err != nil {
		return nil, err
	}
	return query.EvaluateSpec(q, v, pol, u.Level)
}

// QueryAll evaluates a structural query against every execution of a
// spec, returning non-empty answers in execution-id order. Executions
// are evaluated concurrently on the fan-out pool.
func (r *Repository) QueryAll(userName, specID, queryText string) ([]*query.Answer, error) {
	answers, _, err := r.QueryAllPage(userName, specID, queryText, 0, 0)
	return answers, err
}

// QueryAllPage is QueryAll with the pagination window pushed into the
// engine: the binding phase (query.MatchOn) still runs for every
// execution — the total requires knowing which executions answer — but
// the return clause (provenance / downstream sub-executions, the
// per-answer materialization cost) is built only for the answers inside
// [offset, offset+limit). limit 0 materializes everything. The returned
// total is the pre-pagination count of non-empty answers.
func (r *Repository) QueryAllPage(userName, specID, queryText string, limit, offset int) ([]*query.Answer, int, error) {
	return r.QueryAllPageCtx(context.Background(), userName, specID, queryText, limit, offset)
}

// QueryAllPageCtx is QueryAllPage threaded with a context, checked
// between executions in both fan-out phases: a disconnected client
// stops the evaluation instead of holding the pool through the
// remaining executions.
func (r *Repository) QueryAllPageCtx(ctx context.Context, userName, specID, queryText string, limit, offset int) ([]*query.Answer, int, error) {
	q, err := query.Parse(queryText)
	if err != nil {
		return nil, 0, err
	}
	if limit < 0 || offset < 0 {
		return nil, 0, fmt.Errorf("repo: negative pagination window")
	}
	u, err := r.User(userName)
	if err != nil {
		return nil, 0, err
	}
	sh, err := r.shardOrErr(specID)
	if err != nil {
		return nil, 0, err
	}
	sh.mu.RLock()
	ids := make([]string, 0, len(sh.execs))
	execs := make([]*exec.Execution, 0, len(sh.execs))
	for id := range sh.execs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		execs = append(execs, sh.execs[id])
	}
	sh.mu.RUnlock()

	// Phase 1 — bindings only, fanned out. Each evaluation snapshots the
	// policy per execution; every answer of one call may still interleave
	// with a racing UpdatePolicy, but each individual answer is
	// internally consistent (view, taint set and mask all come from one
	// policy generation).
	answers := make([]*query.Answer, len(execs))
	snaps := make([]maskedSnapshot, len(execs))
	errs := make([]error, len(execs))
	matchCtx, matchSpan := obs.StartSpan(ctx, "query.fanout.match")
	r.fanOut(len(execs), func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		snap, err := r.maskedExecFor(matchCtx, sh, execs[i], u.Level)
		if err != nil {
			errs[i] = err
			return
		}
		r.countTaint(snap.rep)
		ev := query.NewEvaluator(sh.spec)
		answers[i], errs[i] = ev.MatchOn(q, snap.prep, snap.pol, u.Level, snap.zoomed)
		snaps[i] = snap
	})
	matchSpan.End()
	if err := errors.Join(errs...); err != nil {
		return nil, 0, err
	}
	var out []*query.Answer
	var prep []*query.PreparedExec
	for i, ans := range answers {
		if ans != nil && len(ans.Bindings) > 0 {
			out = append(out, ans)
			prep = append(prep, snaps[i].prep)
		}
	}
	total := len(out)
	if offset >= total {
		return nil, total, nil
	}
	out, prep = out[offset:], prep[offset:]
	if limit > 0 && limit < len(out) {
		out, prep = out[:limit], prep[:limit]
	}

	// Phase 2 — materialize return clauses for the window only.
	merrs := make([]error, len(out))
	ev := query.NewEvaluator(sh.spec)
	_, matSpan := obs.StartSpan(ctx, "query.fanout.materialize")
	r.fanOut(len(out), func(i int) {
		if err := ctx.Err(); err != nil {
			merrs[i] = err
			return
		}
		merrs[i] = ev.MaterializeReturn(q, out[i], prep[i])
	})
	matSpan.End()
	if err := errors.Join(merrs...); err != nil {
		return nil, 0, err
	}
	return out, total, nil
}

// collapsedView returns the execution collapsed to the access view of
// the given level, serving from the shard's singleflight-deduplicated
// view cache: concurrent identical requests build the view once.
func (r *Repository) collapsedView(ctx context.Context, sh *shard, e *exec.Execution, level privacy.Level, access workflow.Prefix, polGen uint64) (*exec.Execution, error) {
	key := viewCacheKey{execID: e.ID, level: level, polGen: polGen}
	if v, ok := sh.views.Get(key); ok {
		return v, nil
	}
	got, err := r.flights.Do(fmt.Sprintf("view|%q|%q|%d|%d", sh.spec.ID, e.ID, int(level), polGen), func() (any, error) {
		if v, ok := sh.views.Peek(key); ok {
			return v, nil
		}
		_, fill := obs.StartSpan(ctx, "cache.view_fill")
		defer fill.End()
		view, err := exec.Collapse(e, sh.spec, access)
		if err != nil {
			return nil, err
		}
		sh.views.Put(key, view)
		return view, nil
	})
	if err != nil {
		return nil, err
	}
	return got.(*exec.Execution), nil
}

// taintSetFor returns the cached taint analysis of an execution under
// the given policy generation, computing and caching it on miss. Fills
// are deduplicated through the flight group; the polGen key makes sets
// seeded under a replaced policy unreachable (see taintCacheKey). The
// caller passes the shard's policy-scoped engine (analysis ignores its
// generalizers), so no masker is constructed on this path.
func (r *Repository) taintSetFor(ctx context.Context, sh *shard, e *exec.Execution, en *taint.Engine, polGen uint64) *taint.Set {
	key := taintCacheKey{execID: e.ID, polGen: polGen}
	if s, ok := sh.taints.Get(key); ok {
		return s
	}
	got, _ := r.flights.Do(fmt.Sprintf("taint|%q|%q|%d", sh.spec.ID, e.ID, polGen), func() (any, error) {
		if s, ok := sh.taints.Peek(key); ok {
			return s, nil
		}
		_, span := obs.StartSpan(ctx, "taint.analyze")
		defer span.End()
		s := en.Analyze(e)
		sh.taints.Put(key, s)
		return s, nil
	})
	return got.(*taint.Set)
}

// countTaint feeds a masking report into the repository's taint
// counters (taint_items_rewritten_total / taint_items_redacted_total).
func (r *Repository) countTaint(rep datapriv.Report) {
	if rep.Rewritten > 0 {
		r.taintRewritten.Add(int64(rep.Rewritten))
	}
	if rep.TaintRedacted > 0 {
		r.taintRedacted.Add(int64(rep.TaintRedacted))
	}
}

// ProvenanceOptions tunes provenance retrieval.
type ProvenanceOptions struct {
	// DisableTaint reverts to attribute-local masking (the pre-taint
	// behavior): protected items themselves are masked, but raw values
	// embedded in derived trace strings are served verbatim. This is a
	// debugging / benchmarking escape hatch, not a privacy mode — the
	// server only honors it via an explicit taint=off parameter.
	DisableTaint bool
}

// Provenance returns the provenance of a data item as the user may see
// it: the execution is collapsed to the user's access view, values are
// masked per the data policy with taint propagation (a protected
// ancestor's raw value embedded in a derived trace is rewritten or
// redacted), and the provenance subgraph is extracted from that view.
// An item hidden by the view is reported as not visible.
func (r *Repository) Provenance(userName, specID, execID, itemID string) (*exec.Execution, error) {
	return r.ProvenanceWith(userName, specID, execID, itemID, ProvenanceOptions{})
}

// ProvenanceWith is Provenance with options.
func (r *Repository) ProvenanceWith(userName, specID, execID, itemID string, opts ProvenanceOptions) (*exec.Execution, error) {
	return r.ProvenanceWithCtx(context.Background(), userName, specID, execID, itemID, opts)
}

// ProvenanceWithCtx is ProvenanceWith threaded with a context, checked
// before the expensive enforcement work (cold masked-snapshot builds):
// a disconnected client stops the rendering early.
func (r *Repository) ProvenanceWithCtx(ctx context.Context, userName, specID, execID, itemID string, opts ProvenanceOptions) (*exec.Execution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	u, sh, e, err := r.queryContext(userName, specID, execID)
	if err != nil {
		return nil, err
	}
	sh.mu.RLock()
	pol := sh.policy
	vs := sh.viewStore
	en := sh.engine
	polGen := sh.polGen
	sh.mu.RUnlock()
	// Fast path: a materialized view at exactly this level (already
	// taint-masked — and, since the view store routes the generalization
	// ladders, generalized — identically to the snapshot path; the
	// parity tests pin the two byte-equal). Skipped only when the caller
	// asked for the untainted debug view.
	if vs != nil && !opts.DisableTaint {
		if v, rep := vs.GetWithReport(specID, execID, u.Level); v != nil {
			if v.Items[itemID] == nil {
				return nil, fmt.Errorf("repo: item %s not visible at level %s: %w", itemID, u.Level, ErrDenied)
			}
			// The view was taint-masked at materialization time; replay
			// its report so the serving counters don't flatline on the
			// fast path.
			r.countTaint(rep)
			return exec.Provenance(v, itemID)
		}
	}
	if opts.DisableTaint {
		// Debug escape hatch: attribute-local masking only, uncached (a
		// nil taint set degrades the engine) — never worth a cache slot.
		access := pol.AccessView(sh.hier, u.Level)
		view, err := r.collapsedView(ctx, sh, e, u.Level, access, polGen)
		if err != nil {
			return nil, err
		}
		if view.Items[itemID] == nil {
			return nil, fmt.Errorf("repo: item %s not visible at level %s: %w", itemID, u.Level, ErrDenied)
		}
		masked, rep := en.Apply(view, u.Level, nil)
		r.countTaint(rep)
		return exec.Provenance(masked, itemID)
	}
	// Enforced path: serve from the shared masked snapshot. Masking
	// preserves the item set of the collapsed view, so visibility is
	// checked on the snapshot itself; exec.Provenance only reads the
	// snapshot and returns a fresh induced sub-execution.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap, err := r.maskedExecFor(ctx, sh, e, u.Level)
	if err != nil {
		return nil, err
	}
	if snap.prep.Exec.Items[itemID] == nil {
		return nil, fmt.Errorf("repo: item %s not visible at level %s: %w", itemID, u.Level, ErrDenied)
	}
	r.countTaint(snap.rep)
	return exec.ProvenanceIn(snap.prep.Exec, snap.prep.Graph(), itemID)
}

// Stats summarizes repository contents and the health of its derived
// state: result-cache and view-cache hit rates, index segment/snapshot
// churn, and how corpus maintenance is being paid for (deltas vs full
// rebuilds).
type Stats struct {
	Specs      int
	Executions int
	Users      int
	IndexTerms int
	Postings   int

	// IndexSegments is the number of per-spec index segments;
	// IndexSwaps counts snapshot publications (spec mutations).
	IndexSegments int
	IndexSwaps    int64

	// CacheHits/CacheMisses are the shared result cache's counters;
	// ViewCacheHits/ViewCacheMisses aggregate the per-shard collapsed-
	// view LRUs of the currently registered shards.
	CacheHits       int
	CacheMisses     int
	ViewCacheHits   int64
	ViewCacheMisses int64

	// CorpusLevels is how many per-level corpora are currently built;
	// CorpusDeltas counts incremental document deltas applied to them,
	// CorpusRebuilds counts from-scratch builds.
	CorpusLevels   int
	CorpusDeltas   int64
	CorpusRebuilds int64

	// TaintRewritten/TaintRedacted count items the taint engine
	// rewrote / redacted on read paths; TaintCacheHits/TaintCacheMisses
	// aggregate the per-shard taint-set LRUs (monotonic across shard
	// removal via the base counters). TaintCache breaks the cache
	// counters out per live shard.
	TaintRewritten   int64
	TaintRedacted    int64
	TaintCacheHits   int64
	TaintCacheMisses int64
	TaintCache       map[string]TaintCacheStat

	// MaskedCacheHits/MaskedCacheMisses aggregate the per-shard
	// masked-snapshot LRUs, monotonic across shard removal exactly like
	// the taint counters; MaskedCache breaks them out per live shard.
	MaskedCacheHits   int64
	MaskedCacheMisses int64
	MaskedCache       map[string]TaintCacheStat
}

// TaintCacheStat is one shard's cache hit/miss counter pair (used for
// both the taint-set and masked-snapshot caches).
type TaintCacheStat struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// ContentStats is the persisted-content subset of Stats — the part a
// save/load round trip must preserve exactly (counters and cache state
// are runtime artifacts and are not persisted).
type ContentStats struct {
	Specs      int
	Executions int
	Users      int
	IndexTerms int
	Postings   int
}

// Content projects the persistent-content fields out of Stats.
func (s Stats) Content() ContentStats {
	return ContentStats{
		Specs: s.Specs, Executions: s.Executions, Users: s.Users,
		IndexTerms: s.IndexTerms, Postings: s.Postings,
	}
}

// Stats returns repository statistics.
func (r *Repository) Stats() Stats {
	st := Stats{}
	for _, sh := range r.snapshotShards() {
		sh.mu.RLock()
		st.Specs++
		st.Executions += len(sh.execs)
		sh.mu.RUnlock()
	}
	// View-cache totals are summed under the directory lock so they
	// cannot interleave with RemoveSpec banking a dying shard's counters
	// into the base (which happens under the directory write lock) —
	// otherwise a shard could be counted both live and banked, making
	// the exported counters non-monotonic.
	r.mu.RLock()
	st.TaintCache = make(map[string]TaintCacheStat, len(r.shards))
	st.MaskedCache = make(map[string]TaintCacheStat, len(r.shards))
	for id, sh := range r.shards {
		if sh.views != nil {
			h, m := sh.views.Stats()
			st.ViewCacheHits += h
			st.ViewCacheMisses += m
		}
		if sh.taints != nil {
			h, m := sh.taints.Stats()
			st.TaintCacheHits += h
			st.TaintCacheMisses += m
			st.TaintCache[id] = TaintCacheStat{Hits: h, Misses: m}
		}
		if sh.masked != nil {
			h, m := sh.masked.Stats()
			st.MaskedCacheHits += h
			st.MaskedCacheMisses += m
			st.MaskedCache[id] = TaintCacheStat{Hits: h, Misses: m}
		}
	}
	st.ViewCacheHits += r.viewHitsBase.Load()
	st.ViewCacheMisses += r.viewMissesBase.Load()
	st.TaintCacheHits += r.taintHitsBase.Load()
	st.TaintCacheMisses += r.taintMissesBase.Load()
	st.MaskedCacheHits += r.maskedHitsBase.Load()
	st.MaskedCacheMisses += r.maskedMissesBase.Load()
	r.mu.RUnlock()
	r.usersMu.RLock()
	st.Users = len(r.users)
	r.usersMu.RUnlock()
	if r.inverted != nil {
		st.IndexTerms = r.inverted.TermCount()
		st.Postings = r.inverted.Postings()
		st.IndexSegments = r.inverted.Segments()
		st.IndexSwaps = r.inverted.Swaps()
	}
	st.CacheHits, st.CacheMisses = r.CacheStats()
	r.corpusMu.RLock()
	st.CorpusLevels = len(r.corpora)
	r.corpusMu.RUnlock()
	st.CorpusDeltas = r.corpusDeltas.Load()
	st.CorpusRebuilds = r.corpusRebuilds.Load()
	st.TaintRewritten = r.taintRewritten.Load()
	st.TaintRedacted = r.taintRedacted.Load()
	return st
}

// Describe renders a terse multi-line summary (for the CLI).
func (r *Repository) Describe() string {
	st := r.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "specs: %d, executions: %d, users: %d\n", st.Specs, st.Executions, st.Users)
	fmt.Fprintf(&b, "index: %d terms, %d postings\n", st.IndexTerms, st.Postings)
	return b.String()
}
