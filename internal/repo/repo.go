// Package repo implements the provenance-aware workflow repository the
// paper envisions (Section 1): a shared store of workflow specifications
// and provenance graphs that many users — with different access levels —
// search and query. Privacy is enforced inside the query engine rather
// than by maintaining one repository copy per privilege level ("the
// alternative would be to create multiple repositories corresponding to
// different levels of access, which would lead to inconsistencies,
// inefficiency, and a lack of flexibility").
//
// The repository wires together the other packages: privacy-classified
// inverted and reachability indexes (index), minimal-view keyword search
// (search), TF-IDF ranking with optional score bucketing (rank),
// structural queries with privacy-controlled semantics (query), and
// masked provenance retrieval (datapriv + exec views).
package repo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/index"
	"provpriv/internal/privacy"
	"provpriv/internal/query"
	"provpriv/internal/rank"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
)

// Repository is a concurrency-safe store of specs, executions, policies
// and users, with privacy-aware search and query entry points.
type Repository struct {
	mu       sync.RWMutex
	specs    map[string]*workflow.Spec
	hier     map[string]*workflow.Hierarchy
	execs    map[string]map[string]*exec.Execution
	policies map[string]*privacy.Policy
	users    map[string]*privacy.User

	inverted *index.Inverted
	reach    *index.ReachIndex
	cache    *index.Cache

	// viewStore, when non-nil, holds pre-collapsed, pre-masked views of
	// executions at the materialized levels (Section 4's materialized-
	// views direction); Provenance consults it before collapsing on the
	// fly.
	viewStore *index.ViewStore
	matLevels []privacy.Level

	// hierarchies holds optional per-spec generalization ladders used by
	// data-privacy masking (values are coarsened instead of redacted).
	hierarchies map[string]map[string]*datapriv.Hierarchy

	corpusMu sync.Mutex
	corpora  map[privacy.Level]*rank.Corpus
}

// New returns an empty repository.
func New() *Repository {
	cache, _ := index.NewCache(256)
	return &Repository{
		specs:    make(map[string]*workflow.Spec),
		hier:     make(map[string]*workflow.Hierarchy),
		execs:    make(map[string]map[string]*exec.Execution),
		policies: make(map[string]*privacy.Policy),
		users:    make(map[string]*privacy.User),
		cache:    cache,
		corpora:  make(map[privacy.Level]*rank.Corpus),
	}
}

// AddSpec registers a validated spec with its policy (nil for an
// all-public policy). Indexes are updated incrementally.
func (r *Repository) AddSpec(s *workflow.Spec, pol *privacy.Policy) error {
	if err := s.Validate(); err != nil {
		return err
	}
	h, err := workflow.NewHierarchy(s)
	if err != nil {
		return err
	}
	if pol == nil {
		pol = privacy.NewPolicy(s.ID)
	}
	if err := pol.Validate(s); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[s.ID]; dup {
		return fmt.Errorf("repo: spec %s already registered", s.ID)
	}
	r.specs[s.ID] = s
	r.hier[s.ID] = h
	r.policies[s.ID] = pol
	if r.viewStore != nil {
		if err := r.viewStore.RegisterSpec(s, pol, r.matLevels); err != nil {
			return err
		}
	}
	// Incremental index maintenance: add this spec's postings and
	// closure, invalidate corpora and the result cache.
	if r.inverted == nil {
		r.inverted = index.BuildInverted(nil, nil)
	}
	r.inverted.AddSpec(s, pol)
	if r.reach == nil {
		reach, err := index.BuildReach(nil)
		if err != nil {
			return err
		}
		r.reach = reach
	}
	if err := r.reach.AddSpec(s); err != nil {
		r.inverted.RemoveSpec(s.ID)
		return err
	}
	r.corpusMu.Lock()
	r.corpora = make(map[privacy.Level]*rank.Corpus)
	r.corpusMu.Unlock()
	r.cache, _ = index.NewCache(256)
	return nil
}

func (r *Repository) specIDsLocked() []string {
	ids := make([]string, 0, len(r.specs))
	for id := range r.specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SpecIDs returns the registered spec ids, sorted.
func (r *Repository) SpecIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.specIDsLocked()
}

// Spec returns a registered spec, or nil.
func (r *Repository) Spec(id string) *workflow.Spec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.specs[id]
}

// Policy returns the policy of a spec, or nil.
func (r *Repository) Policy(specID string) *privacy.Policy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.policies[specID]
}

// AddExecution stores a validated execution of a registered spec.
func (r *Repository) AddExecution(e *exec.Execution) error {
	if err := e.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.specs[e.SpecID] == nil {
		return fmt.Errorf("repo: execution %s references unknown spec %s", e.ID, e.SpecID)
	}
	if r.execs[e.SpecID] == nil {
		r.execs[e.SpecID] = make(map[string]*exec.Execution)
	}
	if _, dup := r.execs[e.SpecID][e.ID]; dup {
		return fmt.Errorf("repo: execution %s already registered", e.ID)
	}
	r.execs[e.SpecID][e.ID] = e
	if r.viewStore != nil {
		if err := r.viewStore.Materialize(e); err != nil {
			delete(r.execs[e.SpecID], e.ID)
			return fmt.Errorf("repo: materialize views: %w", err)
		}
	}
	return nil
}

// EnableMaterialization turns on materialized privacy views at the
// given access levels: every registered and future execution gets one
// pre-collapsed, pre-masked copy per level, and Provenance serves from
// them. Trades memory for per-query collapse cost (bench
// BenchmarkMaterializedViews).
func (r *Repository) EnableMaterialization(levels []privacy.Level) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := index.NewViewStore()
	for _, sid := range r.specIDsLocked() {
		if err := vs.RegisterSpec(r.specs[sid], r.policies[sid], levels); err != nil {
			return err
		}
	}
	for _, sid := range r.specIDsLocked() {
		for _, e := range r.execs[sid] {
			if err := vs.Materialize(e); err != nil {
				return err
			}
		}
	}
	r.viewStore = vs
	r.matLevels = append([]privacy.Level(nil), levels...)
	return nil
}

// RemoveSpec unregisters a spec, its policy, its executions and its
// index entries. Queries against it fail afterwards.
func (r *Repository) RemoveSpec(specID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.specs[specID] == nil {
		return fmt.Errorf("repo: unknown spec %q", specID)
	}
	delete(r.specs, specID)
	delete(r.hier, specID)
	delete(r.policies, specID)
	delete(r.execs, specID)
	if r.hierarchies != nil {
		delete(r.hierarchies, specID)
	}
	if r.inverted != nil {
		r.inverted.RemoveSpec(specID)
	}
	r.corpusMu.Lock()
	r.corpora = make(map[privacy.Level]*rank.Corpus)
	r.corpusMu.Unlock()
	r.cache, _ = index.NewCache(256)
	return nil
}

// SetGeneralization installs generalization hierarchies for a spec's
// protected attributes: masking then coarsens values (e.g. exact SNP →
// chromosome → genome) instead of redacting them outright, preserving
// utility for under-privileged users. Call before executions are
// materialized.
func (r *Repository) SetGeneralization(specID string, hs map[string]*datapriv.Hierarchy) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.specs[specID] == nil {
		return fmt.Errorf("repo: unknown spec %q", specID)
	}
	if r.hierarchies == nil {
		r.hierarchies = make(map[string]map[string]*datapriv.Hierarchy)
	}
	r.hierarchies[specID] = hs
	return nil
}

func (r *Repository) maskerFor(specID string) *datapriv.Masker {
	return datapriv.NewMasker(r.policies[specID], r.hierarchies[specID])
}

// ExecutionIDs lists executions of a spec, sorted.
func (r *Repository) ExecutionIDs(specID string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.execs[specID]))
	for id := range r.execs[specID] {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// AddUser registers (or replaces) a user.
func (r *Repository) AddUser(u privacy.User) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := u
	r.users[u.Name] = &cp
}

// User looks up a registered user.
func (r *Repository) User(name string) (*privacy.User, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u := r.users[name]
	if u == nil {
		return nil, fmt.Errorf("repo: unknown user %q", name)
	}
	cp := *u
	return &cp, nil
}

// corpusFor lazily builds the TF-IDF corpus visible at a level: each
// spec is a document whose terms come only from modules the level may
// see (module privacy) — the leak-free "visible-only scoring" mode.
// Callers must hold r.mu (read suffices); corpusMu serializes the lazy
// fill so concurrent readers do not race on the map.
func (r *Repository) corpusFor(level privacy.Level) *rank.Corpus {
	r.corpusMu.Lock()
	defer r.corpusMu.Unlock()
	if c := r.corpora[level]; c != nil {
		return c
	}
	c := rank.NewCorpus()
	for _, sid := range r.specIDsLocked() {
		s := r.specs[sid]
		pol := r.policies[sid]
		var terms []string
		for _, wid := range s.WorkflowIDs() {
			for _, m := range s.Workflows[wid].Modules {
				if pol != nil && !pol.CanSeeModule(level, m.ID) {
					continue
				}
				for _, kw := range m.AllKeywords() {
					terms = append(terms, search.Normalize(kw))
				}
			}
		}
		c.Add(sid, terms)
	}
	r.corpora[level] = c
	return c
}

// SearchHit is one ranked repository search result.
type SearchHit struct {
	SpecID string
	Score  float64
	Result *search.Result
}

// SearchOptions tunes repository search.
type SearchOptions struct {
	// Buckets > 0 publishes bucketized scores (privacy-aware ranking).
	Buckets int
	// BypassCache disables the per-group result cache.
	BypassCache bool
}

// Search runs a keyword query as the given user: candidate specs come
// from the privacy-classified inverted index, each is answered with its
// minimal view clipped to the user's access view, and results are
// ranked by TF-IDF over the level's visible corpus.
func (r *Repository) Search(userName, queryText string, opts SearchOptions) ([]SearchHit, error) {
	u, err := r.User(userName)
	if err != nil {
		return nil, err
	}
	phrases := search.ParseQuery(queryText)
	if len(phrases) == 0 {
		return nil, fmt.Errorf("repo: empty query")
	}

	cacheKey := fmt.Sprintf("search|%s|%d", queryText, opts.Buckets)
	if !opts.BypassCache {
		if v, ok := r.cacheGet(u.Group, cacheKey); ok {
			return v.([]SearchHit), nil
		}
	}

	r.mu.RLock()
	defer r.mu.RUnlock()

	// Candidate specs: any spec with a visible posting for the first
	// term of some phrase.
	candidates := make(map[string]bool)
	for _, phrase := range phrases {
		for _, p := range r.inverted.Lookup(phrase[0], u.Level) {
			candidates[p.SpecID] = true
		}
	}
	var hits []SearchHit
	corpus := r.corpusFor(u.Level)
	var flat []string
	for _, phrase := range phrases {
		flat = append(flat, phrase...)
	}
	ranked := corpus.Rank(flat)
	if opts.Buckets > 0 {
		ranked = rank.Bucketize(ranked, opts.Buckets)
	}
	scoreOf := make(map[string]float64, len(ranked))
	for _, rk := range ranked {
		scoreOf[rk.Doc] = rk.Score
	}

	for sid := range candidates {
		s := r.specs[sid]
		pol := r.policies[sid]
		access := pol.AccessView(r.hier[sid], u.Level)
		res, err := search.SearchWithAccess(s, phrases, access, pol, u.Level)
		if err != nil {
			continue // some phrase unmatched in this spec
		}
		hits = append(hits, SearchHit{SpecID: sid, Score: scoreOf[sid], Result: res})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].SpecID < hits[j].SpecID
	})
	if !opts.BypassCache {
		r.cachePut(u.Group, cacheKey, hits)
	}
	return hits, nil
}

func (r *Repository) cacheGet(group, key string) (any, bool) {
	r.mu.RLock()
	c := r.cache
	r.mu.RUnlock()
	return c.Get(group, key)
}

func (r *Repository) cachePut(group, key string, v any) {
	c := r.cache // callers hold r.mu
	c.Put(group, key, v)
}

// CacheStats exposes cache hit/miss counters.
func (r *Repository) CacheStats() (hits, misses int) {
	r.mu.RLock()
	c := r.cache
	r.mu.RUnlock()
	return c.Stats()
}

// Query evaluates a structural query (see query.Parse) against one
// execution under the user's privacy constraints.
func (r *Repository) Query(userName, specID, execID, queryText string) (*query.Answer, error) {
	u, err := r.User(userName)
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(queryText)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.specs[specID]
	if s == nil {
		return nil, fmt.Errorf("repo: unknown spec %q", specID)
	}
	e := r.execs[specID][execID]
	if e == nil {
		return nil, fmt.Errorf("repo: unknown execution %q of %s", execID, specID)
	}
	ev := query.NewEvaluator(s)
	return ev.EvaluateWithPrivacy(q, e, r.policies[specID], u.Level)
}

// Reaches answers the paper's core structural-privacy question — "does
// module from contribute to the data produced by module to?" — as
// visible to the user:
//
//   - pairs listed in the policy's Structural requirements above the
//     user's level answer false (the connection is confidential);
//   - modules invisible at the user's access view are resolved to the
//     composite module that represents them, so the answer is at the
//     granularity the user is entitled to; if both endpoints collapse
//     into the same composite, the relationship is not externally
//     visible and the answer is false.
//
// Note this is answer-time enforcement for the exact pairs; publishers
// wanting protection against multi-query inference should additionally
// transform the published view with structpriv (cut or cluster).
func (r *Repository) Reaches(userName, specID, from, to string) (bool, error) {
	u, err := r.User(userName)
	if err != nil {
		return false, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.specs[specID]
	if s == nil {
		return false, fmt.Errorf("repo: unknown spec %q", specID)
	}
	pol := r.policies[specID]
	for _, hp := range pol.HiddenPairsFor(u.Level) {
		if hp.From == from && hp.To == to {
			return false, nil
		}
	}
	h := r.hier[specID]
	access := pol.AccessView(h, u.Level)
	if len(access) == len(h.All()) {
		// Full access view: answer from the precomputed full-expansion
		// closure, O(1). Composite endpoints don't appear in the full
		// expansion; fall through to the view path for those.
		mf, _ := s.FindModule(from)
		mt, _ := s.FindModule(to)
		if mf == nil {
			return false, fmt.Errorf("repo: unknown module %q", from)
		}
		if mt == nil {
			return false, fmt.Errorf("repo: unknown module %q", to)
		}
		if mf.Kind != workflow.Composite && mt.Kind != workflow.Composite {
			return r.reach.Reaches(specID, from, to), nil
		}
	}
	v, err := workflow.Expand(s, access)
	if err != nil {
		return false, err
	}
	g := v.Graph()
	rf, err := r.visibleRepr(s, h, v, from, access)
	if err != nil {
		return false, err
	}
	rt, err := r.visibleRepr(s, h, v, to, access)
	if err != nil {
		return false, err
	}
	if rf == rt {
		return false, nil // inside one composite: not externally visible
	}
	return g.Reachable(g.Lookup(rf), g.Lookup(rt)), nil
}

// visibleRepr maps a module id to the module that represents it in the
// given view: itself when visible, else the via-module of its shallowest
// hidden ancestor workflow.
func (r *Repository) visibleRepr(s *workflow.Spec, h *workflow.Hierarchy, v *workflow.View, moduleID string, access workflow.Prefix) (string, error) {
	if v.Module(moduleID) != nil {
		return moduleID, nil
	}
	m, w := s.FindModule(moduleID)
	if m == nil {
		return "", fmt.Errorf("repo: unknown module %q", moduleID)
	}
	// Walk the workflow chain root..w; the first workflow outside the
	// access view is represented by its via-module.
	var chain []string
	for cur := w.ID; cur != ""; cur = h.Parent(cur) {
		chain = append([]string{cur}, chain...)
		if cur == h.Root {
			break
		}
	}
	for _, wid := range chain {
		if !access.Contains(wid) {
			return h.ViaModule(wid), nil
		}
	}
	return "", fmt.Errorf("repo: module %q not resolvable in view", moduleID)
}

// QueryZoomOut evaluates a structural query with the paper's gradual
// zoom-out strategy (Section 4): compute the full answer, then coarsen
// composite detail until no privacy leak remains. Steps in the result
// counts the re-evaluations — compare with the direct Query path.
func (r *Repository) QueryZoomOut(userName, specID, execID, queryText string) (*query.ZoomOutResult, error) {
	u, err := r.User(userName)
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(queryText)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.specs[specID]
	if s == nil {
		return nil, fmt.Errorf("repo: unknown spec %q", specID)
	}
	e := r.execs[specID][execID]
	if e == nil {
		return nil, fmt.Errorf("repo: unknown execution %q of %s", execID, specID)
	}
	ev := query.NewEvaluator(s)
	return ev.ZoomOut(q, e, r.policies[specID], u.Level)
}

// QuerySpec evaluates a structural query against a specification (not
// an execution): variables bind to modules of the user's access view,
// with module privacy applied — "find workflows where Expand SNP Set
// feeds Query OMIM" without touching provenance.
func (r *Repository) QuerySpec(userName, specID, queryText string) (*query.SpecAnswer, error) {
	u, err := r.User(userName)
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(queryText)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.specs[specID]
	if s == nil {
		return nil, fmt.Errorf("repo: unknown spec %q", specID)
	}
	pol := r.policies[specID]
	access := pol.AccessView(r.hier[specID], u.Level)
	v, err := workflow.Expand(s, access)
	if err != nil {
		return nil, err
	}
	return query.EvaluateSpec(q, v, pol, u.Level)
}

// QueryAll evaluates a structural query against every execution of a
// spec, returning non-empty answers.
func (r *Repository) QueryAll(userName, specID, queryText string) ([]*query.Answer, error) {
	var out []*query.Answer
	for _, eid := range r.ExecutionIDs(specID) {
		ans, err := r.Query(userName, specID, eid, queryText)
		if err != nil {
			return nil, err
		}
		if len(ans.Bindings) > 0 {
			out = append(out, ans)
		}
	}
	return out, nil
}

// Provenance returns the provenance of a data item as the user may see
// it: the execution is collapsed to the user's access view, values are
// masked per the data policy, and the provenance subgraph is extracted
// from that view. An item hidden by the view is reported as not
// visible.
func (r *Repository) Provenance(userName, specID, execID, itemID string) (*exec.Execution, error) {
	u, err := r.User(userName)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.specs[specID]
	if s == nil {
		return nil, fmt.Errorf("repo: unknown spec %q", specID)
	}
	e := r.execs[specID][execID]
	if e == nil {
		return nil, fmt.Errorf("repo: unknown execution %q of %s", execID, specID)
	}
	pol := r.policies[specID]
	// Fast path: a materialized view at exactly this level. Disabled
	// when the spec has generalization hierarchies, which the view store
	// does not apply (it redacts) — correctness over speed.
	if r.viewStore != nil && r.hierarchies[specID] == nil {
		if v := r.viewStore.Get(specID, execID, u.Level); v != nil {
			if v.Items[itemID] == nil {
				return nil, fmt.Errorf("repo: item %s not visible at level %s", itemID, u.Level)
			}
			return exec.Provenance(v, itemID)
		}
	}
	access := pol.AccessView(r.hier[specID], u.Level)
	view, err := exec.Collapse(e, s, access)
	if err != nil {
		return nil, err
	}
	if view.Items[itemID] == nil {
		return nil, fmt.Errorf("repo: item %s not visible at level %s", itemID, u.Level)
	}
	masked, _ := r.maskerFor(specID).Mask(view, u.Level)
	return exec.Provenance(masked, itemID)
}

// Stats summarizes repository contents.
type Stats struct {
	Specs      int
	Executions int
	Users      int
	IndexTerms int
	Postings   int
}

// Stats returns repository statistics.
func (r *Repository) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := Stats{Specs: len(r.specs), Users: len(r.users)}
	for _, m := range r.execs {
		st.Executions += len(m)
	}
	if r.inverted != nil {
		st.IndexTerms = len(r.inverted.Terms())
		st.Postings = r.inverted.Postings()
	}
	return st
}

// Describe renders a terse multi-line summary (for the CLI).
func (r *Repository) Describe() string {
	st := r.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "specs: %d, executions: %d, users: %d\n", st.Specs, st.Executions, st.Users)
	fmt.Fprintf(&b, "index: %d terms, %d postings\n", st.IndexTerms, st.Postings)
	return b.String()
}
