// Package rank implements result ranking for keyword search and the
// privacy analysis of Section 4 of the CIDR 2011 paper ("Impact of
// Ranking on Privacy Preservation"): a TF-IDF ranker, the
// frequency-inference attack the paper warns about — "a user might be
// able to infer the range of value occurrences in a result even though
// s/he is unable to see the values" — and two privacy-aware ranking
// schemes that blunt the attack:
//
//   - visible-only scoring: term statistics are computed over the
//     user-visible view of each workflow, so scores carry no information
//     about hidden modules at all;
//   - score bucketing: exact scores are quantized into a small number of
//     buckets before publication, bounding what any inversion can learn
//     while approximately preserving the ranking (bench B6 reports the
//     Kendall-τ rank quality against the leakage reduction).
package rank

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Corpus holds term statistics over a set of documents (workflow specs,
// with module keywords as terms).
//
// Concurrency contract: Corpus is internally synchronized with a
// read/write mutex so the repository can apply incremental AddDoc /
// RemoveDoc deltas on spec mutations while searches keep ranking against
// the same corpus. Readers (Rank, Score, TF, IDF, N) take the read lock
// once per call; mutators take the write lock for the duration of one
// document's delta, so mutation cost is proportional to that document's
// term count, never to corpus size.
type Corpus struct {
	mu   sync.RWMutex
	docs map[string]map[string]int // doc -> term -> count
	df   map[string]int            // term -> #docs containing it
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{docs: make(map[string]map[string]int), df: make(map[string]int)}
}

// Add indexes a document's terms (duplicates increase term frequency).
// Adding the same doc id again replaces it.
func (c *Corpus) Add(docID string, terms []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(docID)
	m := make(map[string]int)
	for _, t := range terms {
		m[t]++
	}
	c.docs[docID] = m
	for t := range m {
		c.df[t]++
	}
}

// AddDoc is the incremental-maintenance spelling of Add: it inserts (or
// replaces) one document, updating document-frequency counts in
// O(document terms).
func (c *Corpus) AddDoc(docID string, terms []string) { c.Add(docID, terms) }

// RemoveDoc deletes one document, decrementing the document frequency of
// each of its terms — the inverse delta of AddDoc, O(document terms).
// Removing an unknown doc is a no-op.
func (c *Corpus) RemoveDoc(docID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(docID)
}

// removeLocked drops docID's contribution to docs and df. Caller holds
// the write lock.
func (c *Corpus) removeLocked(docID string) {
	old, ok := c.docs[docID]
	if !ok {
		return
	}
	for t := range old {
		c.df[t]--
		if c.df[t] == 0 {
			delete(c.df, t)
		}
	}
	delete(c.docs, docID)
}

// N returns the number of documents.
func (c *Corpus) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// TF returns the raw term frequency of term in doc.
func (c *Corpus) TF(docID, term string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs[docID][term]
}

// IDF returns log(1 + N/df). Terms absent everywhere get 0.
func (c *Corpus) IDF(term string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idfLocked(term)
}

func (c *Corpus) idfLocked(term string) float64 {
	df := c.df[term]
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(len(c.docs))/float64(df))
}

// Score is the TF-IDF score of doc for the query: Σ_t tf(d,t)·idf(t).
// Raw tf keeps the score linear in occurrence counts, which is exactly
// what makes exact scores invertible — the leakage the paper describes.
func (c *Corpus) Score(docID string, query []string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.scoreLocked(docID, query)
}

func (c *Corpus) scoreLocked(docID string, query []string) float64 {
	var s float64
	for _, t := range query {
		s += float64(c.docs[docID][t]) * c.idfLocked(t)
	}
	return s
}

// Ranked is one entry of a ranking.
type Ranked struct {
	Doc   string
	Score float64
}

// Rank scores every document and returns them by descending score
// (ties broken by doc id), dropping zero-score documents. The whole pass
// runs under one read lock, so a concurrent delta is either entirely
// visible or entirely absent from the ranking.
func (c *Corpus) Rank(query []string) []Ranked {
	c.mu.RLock()
	var out []Ranked
	for d := range c.docs {
		if s := c.scoreLocked(d, query); s > 0 {
			out = append(out, Ranked{Doc: d, Score: s})
		}
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// Bucketize quantizes scores into nBuckets equal-width buckets over the
// observed range, replacing each score with its bucket's midpoint. The
// mapping is deterministic (no noise), so repeated queries return the
// same ranking — the reproducibility requirement that rules out naive
// differential privacy (Section 5).
func Bucketize(rs []Ranked, nBuckets int) []Ranked {
	if len(rs) == 0 || nBuckets < 1 {
		return rs
	}
	lo, hi := rs[len(rs)-1].Score, rs[0].Score
	width := (hi - lo) / float64(nBuckets)
	out := make([]Ranked, len(rs))
	for i, r := range rs {
		b := 0
		if width > 0 {
			b = int((r.Score - lo) / width)
			if b >= nBuckets {
				b = nBuckets - 1
			}
		}
		out[i] = Ranked{Doc: r.Doc, Score: lo + (float64(b)+0.5)*width}
	}
	// Re-sort: bucketing can merge scores; keep doc-id tie-break.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// Perturb adds Laplace(scale) noise to every score and re-sorts — the
// randomized alternative to Bucketize. It bounds inference like noise
// does in differential privacy, but at the price the paper calls out in
// Section 5: the same query returns a different ranking on every call,
// breaking reproducibility. Provided for the B6 ablation against
// deterministic bucketing.
func Perturb(rs []Ranked, scale float64, seed int64) []Ranked {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Ranked, len(rs))
	for i, r := range rs {
		u := rng.Float64() - 0.5
		var noise float64
		if u >= 0 {
			noise = -scale * math.Log(1-2*u)
		} else {
			noise = scale * math.Log(1+2*u)
		}
		out[i] = Ranked{Doc: r.Doc, Score: r.Score + noise}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// InvertTF is the frequency-inference attack: given a published score
// for a single-term query and the public IDF of the term, estimate the
// term count in the document. With exact scores the estimate is exact.
func InvertTF(score, idf float64) float64 {
	if idf == 0 {
		return 0
	}
	return score / idf
}

// AttackReport quantifies what the attack recovers.
type AttackReport struct {
	Docs       int     // documents attacked
	ExactHits  int     // counts recovered exactly
	MeanAbsErr float64 // mean |estimated − true|
}

// FrequencyAttack runs the inversion attack for a single term against
// published scores, comparing with the true counts in the (full,
// pre-privacy) corpus.
func FrequencyAttack(trueCorpus *Corpus, published []Ranked, term string) AttackReport {
	idf := trueCorpus.IDF(term)
	var rep AttackReport
	var sumErr float64
	for _, r := range published {
		est := InvertTF(r.Score, idf)
		truth := float64(trueCorpus.TF(r.Doc, term))
		err := math.Abs(est - truth)
		sumErr += err
		if err < 0.5 {
			rep.ExactHits++
		}
		rep.Docs++
	}
	if rep.Docs > 0 {
		rep.MeanAbsErr = sumErr / float64(rep.Docs)
	}
	return rep
}

// KendallTau measures rank agreement between two rankings of the same
// documents, in [−1, 1]. Pairs tied (equal score) in either ranking are
// excluded from both numerator and denominator (Goodman–Kruskal gamma),
// so a bucketed ranking is not penalized for the order of documents
// within one bucket. Documents missing from either ranking are ignored.
func KendallTau(a, b []Ranked) float64 {
	scoreA := make(map[string]float64, len(a))
	for _, r := range a {
		scoreA[r.Doc] = r.Score
	}
	scoreB := make(map[string]float64, len(b))
	for _, r := range b {
		scoreB[r.Doc] = r.Score
	}
	var common []string
	for _, r := range a {
		if _, ok := scoreB[r.Doc]; ok {
			common = append(common, r.Doc)
		}
	}
	n := len(common)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := scoreA[common[i]] - scoreA[common[j]]
			db := scoreB[common[i]] - scoreB[common[j]]
			switch {
			case da == 0 || db == 0:
				// tie in either ranking: excluded
			case (da > 0) == (db > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	if concordant+discordant == 0 {
		return 1
	}
	return float64(concordant-discordant) / float64(concordant+discordant)
}
