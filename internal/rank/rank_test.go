package rank

import (
	"math"
	"sync"
	"testing"
)

func testCorpus() *Corpus {
	c := NewCorpus()
	c.Add("doc1", []string{"database", "database", "database", "query"})
	c.Add("doc2", []string{"database", "query", "query"})
	c.Add("doc3", []string{"workflow", "provenance"})
	return c
}

func TestTFAndIDF(t *testing.T) {
	c := testCorpus()
	if c.TF("doc1", "database") != 3 {
		t.Fatalf("TF = %d", c.TF("doc1", "database"))
	}
	if c.TF("doc3", "database") != 0 {
		t.Fatal("TF for absent term != 0")
	}
	wantIDF := math.Log(1 + 3.0/2.0)
	if got := c.IDF("database"); math.Abs(got-wantIDF) > 1e-12 {
		t.Fatalf("IDF = %v, want %v", got, wantIDF)
	}
	if c.IDF("missing") != 0 {
		t.Fatal("IDF of missing term != 0")
	}
}

func TestAddReplacesDoc(t *testing.T) {
	c := testCorpus()
	c.Add("doc1", []string{"workflow"})
	if c.TF("doc1", "database") != 0 {
		t.Fatal("re-Add did not replace")
	}
	// df for database should have dropped to 1 (doc2 only).
	want := math.Log(1 + 3.0/1.0)
	if got := c.IDF("database"); math.Abs(got-want) > 1e-12 {
		t.Fatalf("IDF after replace = %v, want %v", got, want)
	}
}

func TestRankOrder(t *testing.T) {
	c := testCorpus()
	rs := c.Rank([]string{"database"})
	if len(rs) != 2 {
		t.Fatalf("ranked = %v", rs)
	}
	if rs[0].Doc != "doc1" || rs[1].Doc != "doc2" {
		t.Fatalf("order = %v", rs)
	}
	if rs[0].Score <= rs[1].Score {
		t.Fatal("scores not descending")
	}
}

func TestRankDropsZeroScores(t *testing.T) {
	c := testCorpus()
	rs := c.Rank([]string{"provenance"})
	if len(rs) != 1 || rs[0].Doc != "doc3" {
		t.Fatalf("ranked = %v", rs)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	c := NewCorpus()
	c.Add("b", []string{"x"})
	c.Add("a", []string{"x"})
	rs := c.Rank([]string{"x"})
	if rs[0].Doc != "a" || rs[1].Doc != "b" {
		t.Fatalf("tie-break = %v", rs)
	}
}

func TestExactScoresLeak(t *testing.T) {
	// The paper's warning: exact scores + public IDF invert to exact
	// term counts.
	c := testCorpus()
	published := c.Rank([]string{"database"})
	rep := FrequencyAttack(c, published, "database")
	if rep.ExactHits != rep.Docs || rep.Docs != 2 {
		t.Fatalf("attack on exact scores: %+v, want full recovery", rep)
	}
	if rep.MeanAbsErr > 1e-9 {
		t.Fatalf("MeanAbsErr = %v", rep.MeanAbsErr)
	}
}

func TestBucketizeBluntsAttack(t *testing.T) {
	c := NewCorpus()
	// Many docs with distinct counts so bucketing actually merges.
	terms := func(n int) []string {
		var ts []string
		for i := 0; i < n; i++ {
			ts = append(ts, "database")
		}
		return ts
	}
	for i := 1; i <= 10; i++ {
		c.Add(docName(i), terms(i))
	}
	exact := c.Rank([]string{"database"})
	bucketed := Bucketize(exact, 3)
	repExact := FrequencyAttack(c, exact, "database")
	repBucketed := FrequencyAttack(c, bucketed, "database")
	if repExact.ExactHits != 10 {
		t.Fatalf("exact attack should fully recover: %+v", repExact)
	}
	if repBucketed.ExactHits >= repExact.ExactHits {
		t.Fatalf("bucketing did not reduce recovery: %+v vs %+v", repBucketed, repExact)
	}
	if repBucketed.MeanAbsErr <= repExact.MeanAbsErr {
		t.Fatal("bucketing did not increase attack error")
	}
}

func docName(i int) string { return "doc" + string(rune('A'+i)) }

func TestBucketizePreservesApproxOrder(t *testing.T) {
	c := NewCorpus()
	for i := 1; i <= 10; i++ {
		var ts []string
		for j := 0; j < i*i; j++ { // spread scores
			ts = append(ts, "q")
		}
		c.Add(docName(i), ts)
	}
	exact := c.Rank([]string{"q"})
	bucketed := Bucketize(exact, 5)
	tau := KendallTau(exact, bucketed)
	if tau < 0.7 {
		t.Fatalf("Kendall τ = %v, want ≥ 0.7", tau)
	}
}

func TestBucketizeDeterministic(t *testing.T) {
	c := testCorpus()
	rs := c.Rank([]string{"database", "query"})
	b1 := Bucketize(rs, 4)
	b2 := Bucketize(rs, 4)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("bucketize nondeterministic")
		}
	}
	// Degenerate inputs.
	if got := Bucketize(nil, 4); got != nil {
		t.Fatalf("Bucketize(nil) = %v", got)
	}
	if got := Bucketize(rs, 0); len(got) != len(rs) {
		t.Fatal("nBuckets=0 mangled input")
	}
}

func TestKendallTau(t *testing.T) {
	a := []Ranked{{"x", 3}, {"y", 2}, {"z", 1}}
	same := []Ranked{{"x", 9}, {"y", 8}, {"z", 7}}
	if got := KendallTau(a, same); got != 1 {
		t.Fatalf("τ(same) = %v", got)
	}
	rev := []Ranked{{"z", 9}, {"y", 8}, {"x", 7}}
	if got := KendallTau(a, rev); got != -1 {
		t.Fatalf("τ(reversed) = %v", got)
	}
	if got := KendallTau(a, []Ranked{{"x", 1}}); got != 1 {
		t.Fatalf("τ(singleton) = %v", got)
	}
}

func TestInvertTFZeroIDF(t *testing.T) {
	if InvertTF(5, 0) != 0 {
		t.Fatal("InvertTF with zero idf should be 0")
	}
}

func TestVisibleOnlyCorpusLeaksNothing(t *testing.T) {
	// Privacy-aware mode (a): scores computed over the redacted corpus.
	full := NewCorpus()
	full.Add("doc1", []string{"secret", "secret", "secret", "public"})
	visible := NewCorpus()
	visible.Add("doc1", []string{"public"}) // secret module keywords gone
	published := visible.Rank([]string{"secret"})
	if len(published) != 0 {
		t.Fatalf("visible-only ranking leaked: %v", published)
	}
	// DESIGN.md §5: ranking restricted to visible terms equals ranking
	// computed on the redacted corpus — trivially, they are the same
	// object here; the attack has no scores to invert.
	rep := FrequencyAttack(full, published, "secret")
	if rep.Docs != 0 {
		t.Fatalf("attack had material: %+v", rep)
	}
}

func TestPerturbBreaksReproducibility(t *testing.T) {
	c := NewCorpus()
	for i := 1; i <= 10; i++ {
		var ts []string
		for j := 0; j < i; j++ {
			ts = append(ts, "q")
		}
		c.Add(docName(i), ts)
	}
	exact := c.Rank([]string{"q"})
	a := Perturb(exact, 1.0, 1)
	b := Perturb(exact, 1.0, 2)
	same := true
	for i := range a {
		if a[i].Doc != b[i].Doc {
			same = false
		}
	}
	if same {
		t.Fatal("two noisy rankings identical — no noise applied?")
	}
	// Deterministic under the same seed.
	a2 := Perturb(exact, 1.0, 1)
	for i := range a {
		if a[i] != a2[i] {
			t.Fatal("same seed, different perturbation")
		}
	}
}

func TestPerturbBluntsAttack(t *testing.T) {
	c := NewCorpus()
	for i := 1; i <= 10; i++ {
		var ts []string
		for j := 0; j < i; j++ {
			ts = append(ts, "database")
		}
		c.Add(docName(i), ts)
	}
	exact := c.Rank([]string{"database"})
	noisy := Perturb(exact, 2.0, 7)
	repExact := FrequencyAttack(c, exact, "database")
	repNoisy := FrequencyAttack(c, noisy, "database")
	if repNoisy.MeanAbsErr <= repExact.MeanAbsErr {
		t.Fatal("perturbation did not increase attack error")
	}
}

// rankingsEqual compares two rankings entry by entry with a float
// tolerance (deltas and rebuilds may differ in summation order).
func rankingsEqual(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
			return false
		}
	}
	return true
}

// TestDeltaMatchesRebuild is the incremental-maintenance contract: a
// corpus maintained by AddDoc/RemoveDoc deltas must rank identically to
// one rebuilt from scratch with the same final document set.
func TestDeltaMatchesRebuild(t *testing.T) {
	delta := NewCorpus()
	delta.AddDoc("d1", []string{"database", "query"})
	delta.AddDoc("d2", []string{"database", "workflow"})
	delta.AddDoc("d3", []string{"query", "query", "provenance"})
	delta.RemoveDoc("d2")
	delta.AddDoc("d4", []string{"database", "database"})
	delta.AddDoc("d1", []string{"database"}) // replace d1
	delta.RemoveDoc("ghost")                 // no-op

	rebuilt := NewCorpus()
	rebuilt.Add("d1", []string{"database"})
	rebuilt.Add("d3", []string{"query", "query", "provenance"})
	rebuilt.Add("d4", []string{"database", "database"})

	if delta.N() != rebuilt.N() {
		t.Fatalf("N: %d vs %d", delta.N(), rebuilt.N())
	}
	for _, term := range []string{"database", "query", "workflow", "provenance"} {
		if da, db := delta.IDF(term), rebuilt.IDF(term); math.Abs(da-db) > 1e-12 {
			t.Fatalf("IDF(%s): %v vs %v", term, da, db)
		}
	}
	for _, q := range [][]string{{"database"}, {"query"}, {"database", "provenance"}} {
		if !rankingsEqual(delta.Rank(q), rebuilt.Rank(q)) {
			t.Fatalf("Rank(%v): %v vs %v", q, delta.Rank(q), rebuilt.Rank(q))
		}
	}
}

// TestRemoveDocDropsDF checks document-frequency bookkeeping: removing
// the last document holding a term zeroes its IDF.
func TestRemoveDocDropsDF(t *testing.T) {
	c := NewCorpus()
	c.AddDoc("only", []string{"rare", "common"})
	c.AddDoc("other", []string{"common"})
	c.RemoveDoc("only")
	if c.IDF("rare") != 0 {
		t.Fatalf("IDF of orphaned term = %v", c.IDF("rare"))
	}
	if c.IDF("common") == 0 {
		t.Fatal("surviving term lost its df")
	}
}

// TestCorpusConcurrentDeltaAndRank races Rank/Score readers against
// AddDoc/RemoveDoc writers (run under -race): every observed ranking
// must be internally consistent — a doc either fully present or fully
// absent, never a torn score.
func TestCorpusConcurrentDeltaAndRank(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 8; i++ {
		c.AddDoc(docName(i), []string{"database", "query"})
	}
	var wg, writerWG sync.WaitGroup
	stop := make(chan struct{})
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := "churn"
			if i%2 == 0 {
				c.AddDoc(id, []string{"database", "database", "database"})
			} else {
				c.RemoveDoc(id)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rs := c.Rank([]string{"database"})
				if len(rs) < 8 {
					t.Errorf("ranking lost stable docs: %d", len(rs))
					return
				}
				for _, r := range rs {
					if r.Doc == "churn" && r.Score <= 0 {
						t.Error("zero-score doc ranked")
						return
					}
				}
			}
		}()
	}
	wg.Wait() // readers done; then stop the writer
	close(stop)
	writerWG.Wait()
}
