// Package datapriv implements data privacy (Section 3 of the CIDR 2011
// paper): intermediate data in an execution may contain sensitive
// information — a social security number, a medical record — that must
// not be revealed to users without the required access level. This is
// the paper's "fairly standard" masking requirement, implemented here
// with two mechanisms:
//
//   - full redaction: the item's value is removed, leaving the item's
//     existence and attribute visible;
//   - generalization: the value is coarsened along a per-attribute
//     generalization hierarchy, with the depth of coarsening growing
//     with the gap between the user's level and the required level.
//
// Masking is monotone in access level: a higher level always sees at
// least as much as a lower one (property-tested in DESIGN.md §5).
package datapriv

import (
	"fmt"
	"sort"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
)

// Hierarchy is a per-attribute generalization ladder. Level 0 is the
// identity; each subsequent level maps values to coarser categories
// (e.g. exact age → age bracket → "adult"). Values missing from a level
// map generalize to the level's Other value.
type Hierarchy struct {
	Attr   string
	Levels []map[exec.Value]exec.Value
	Other  exec.Value // fallback for unmapped values; default "*"
}

// Generalize coarsens v to the given depth. Depth 0 returns v; depths
// beyond the ladder clamp to the last level.
func (h *Hierarchy) Generalize(v exec.Value, depth int) exec.Value {
	if depth <= 0 || len(h.Levels) == 0 {
		return v
	}
	if depth > len(h.Levels) {
		depth = len(h.Levels)
	}
	cur := v
	for i := 0; i < depth; i++ {
		next, ok := h.Levels[i][cur]
		if !ok {
			if h.Other != "" {
				return h.Other
			}
			return "*"
		}
		cur = next
	}
	return cur
}

// MaxDepth returns the number of generalization levels.
func (h *Hierarchy) MaxDepth() int { return len(h.Levels) }

// Masker applies a policy's data-privacy requirements to executions.
type Masker struct {
	Policy      *privacy.Policy
	Hierarchies map[string]*Hierarchy // optional, per attribute
}

// NewMasker builds a Masker. hierarchies may be nil (full redaction for
// every protected attribute).
func NewMasker(p *privacy.Policy, hierarchies map[string]*Hierarchy) *Masker {
	return &Masker{Policy: p, Hierarchies: hierarchies}
}

// Report accounts for what a masking pass did — the utility side of the
// privacy/utility trade-off.
type Report struct {
	Visible     int // items shown unmodified
	Generalized int // items coarsened via a hierarchy
	Redacted    int // items fully masked
}

// Total returns the number of items processed.
func (r Report) Total() int { return r.Visible + r.Generalized + r.Redacted }

// UtilityScore is the fraction of items fully visible plus half credit
// for generalized ones.
func (r Report) UtilityScore() float64 {
	t := r.Total()
	if t == 0 {
		return 1
	}
	return (float64(r.Visible) + 0.5*float64(r.Generalized)) / float64(t)
}

// Mask returns a copy of the execution as seen by a user at the given
// level, plus a report. For each data item whose attribute requires a
// higher level: if a hierarchy exists for the attribute, the value is
// generalized by (required − level) steps (clamped); otherwise it is
// redacted outright.
func (m *Masker) Mask(e *exec.Execution, level privacy.Level) (*exec.Execution, Report) {
	var rep Report
	out := &exec.Execution{
		ID:     fmt.Sprintf("%s/masked@%s", e.ID, level),
		SpecID: e.SpecID,
		Items:  make(map[string]*exec.DataItem, len(e.Items)),
	}
	for _, n := range e.Nodes {
		cp := *n
		out.Nodes = append(out.Nodes, &cp)
	}
	out.Edges = append(out.Edges, e.Edges...)
	for id, it := range e.Items {
		cp := *it
		required := m.Policy.DataLevels[it.Attr]
		switch {
		case level >= required:
			rep.Visible++
		default:
			h := m.Hierarchies[it.Attr]
			if h != nil && h.MaxDepth() > 0 {
				depth := int(required - level)
				cp.Value = h.Generalize(it.Value, depth)
				rep.Generalized++
			} else {
				cp.Value = ""
				cp.Redacted = true
				rep.Redacted++
			}
		}
		out.Items[id] = &cp
	}
	return out, rep
}

// VisibleAttrs returns, for diagnostics, the attributes fully visible at
// the given level, sorted.
func (m *Masker) VisibleAttrs(attrs []string, level privacy.Level) []string {
	var out []string
	for _, a := range attrs {
		if m.Policy.CanSeeData(level, a) {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}
