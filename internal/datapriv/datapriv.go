// Package datapriv implements data privacy (Section 3 of the CIDR 2011
// paper): intermediate data in an execution may contain sensitive
// information — a social security number, a medical record — that must
// not be revealed to users without the required access level. This is
// the paper's "fairly standard" masking requirement, implemented here
// with two mechanisms:
//
//   - full redaction: the item's value is removed, leaving the item's
//     existence and attribute visible;
//   - generalization: the value is coarsened along a per-attribute
//     generalization hierarchy, with the depth of coarsening growing
//     with the gap between the user's level and the required level.
//
// Masking is taint-aware: because execution item values are symbolic
// computation traces, a protected *input* value survives verbatim
// inside derived items' value strings. The Masker therefore delegates
// to internal/taint, which propagates protection along provenance
// edges and rewrites (or redacts) tainted embedded values, so the
// paper's guarantee — a user below an attribute's required level never
// learns the protected value — holds end-to-end, not just per item.
//
// Masking is monotone in access level: a higher level always sees at
// least as much as a lower one (property-tested in DESIGN.md §5).
package datapriv

import (
	"sort"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/taint"
)

// Hierarchy is a per-attribute generalization ladder. Level 0 is the
// identity; each subsequent level maps values to coarser categories
// (e.g. exact age → age bracket → "adult"). Values missing from a level
// map generalize to the level's Other value.
// The JSON tags are both the wire shape of PUT /api/v1/generalization
// (internal/server) and the payload of the storage engine's RecHier
// records, which persist installed ladders across Save/Load.
type Hierarchy struct {
	Attr   string                      `json:"attr"`
	Levels []map[exec.Value]exec.Value `json:"levels"`
	Other  exec.Value                  `json:"other,omitempty"` // fallback for unmapped values; default "*"
}

// Generalize coarsens v to the given depth. Depth 0 returns v; depths
// beyond the ladder clamp to the last level.
func (h *Hierarchy) Generalize(v exec.Value, depth int) exec.Value {
	if depth <= 0 || len(h.Levels) == 0 {
		return v
	}
	if depth > len(h.Levels) {
		depth = len(h.Levels)
	}
	cur := v
	for i := 0; i < depth; i++ {
		next, ok := h.Levels[i][cur]
		if !ok {
			if h.Other != "" {
				return h.Other
			}
			return "*"
		}
		cur = next
	}
	return cur
}

// MaxDepth returns the number of generalization levels.
func (h *Hierarchy) MaxDepth() int { return len(h.Levels) }

// Masker applies a policy's data-privacy requirements to executions.
type Masker struct {
	Policy      *privacy.Policy
	Hierarchies map[string]*Hierarchy // optional, per attribute
}

// NewMasker builds a Masker. hierarchies may be nil (full redaction for
// every protected attribute).
func NewMasker(p *privacy.Policy, hierarchies map[string]*Hierarchy) *Masker {
	return &Masker{Policy: p, Hierarchies: hierarchies}
}

// Report accounts for what a masking pass did — the utility side of the
// privacy/utility trade-off. It is the taint engine's report: masking
// and taint sanitization are one pass.
type Report = taint.Report

// Engine returns the taint engine implementing this masker's policy:
// the same policy and generalization ladders, with nil hierarchies
// filtered out. Callers that cache taint sets (internal/repo) analyze
// and apply through it directly.
func (m *Masker) Engine() *taint.Engine {
	var gens map[string]taint.Generalizer
	if len(m.Hierarchies) > 0 {
		gens = make(map[string]taint.Generalizer, len(m.Hierarchies))
		for a, h := range m.Hierarchies {
			if h != nil {
				gens[a] = h
			}
		}
	}
	return taint.NewEngine(m.Policy, gens)
}

// Mask returns a deep copy of the execution as seen by a user at the
// given level, plus a report. For each data item whose attribute
// requires a higher level: if a hierarchy exists for the attribute, the
// value is generalized by (required − level) steps (clamped); otherwise
// it is redacted outright. Values derived from protected items are
// taint-sanitized: embedded occurrences of a protected ancestor's raw
// value are rewritten to their generalized form or redacted (see
// internal/taint).
//
// Mask analyzes e itself, which is correct when e is the full
// execution. To mask a collapsed view, use MaskView with the full
// execution the view came from — a protected item internal to a
// collapsed composite is absent from the view but still tainted its
// descendants.
func (m *Masker) Mask(e *exec.Execution, level privacy.Level) (*exec.Execution, Report) {
	return m.Engine().Sanitize(e, level)
}

// MaskView masks a derived view (e.g. an exec.Collapse result) of the
// full execution it was computed from: taint is analyzed on full —
// where every protected ancestor is still present — and applied to
// view. Item ids are stable under collapse, so the analysis transfers.
func (m *Masker) MaskView(full, view *exec.Execution, level privacy.Level) (*exec.Execution, Report) {
	en := m.Engine()
	return en.Apply(view, level, en.Analyze(full))
}

// VisibleAttrs returns, for diagnostics, the attributes fully visible at
// the given level, sorted.
func (m *Masker) VisibleAttrs(attrs []string, level privacy.Level) []string {
	var out []string
	for _, a := range attrs {
		if m.Policy.CanSeeData(level, a) {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}
