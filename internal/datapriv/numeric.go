package datapriv

import (
	"fmt"
	"strconv"

	"provpriv/internal/exec"
)

// NumericHierarchy builds a generalization Hierarchy for integer-valued
// attributes by recursive range halving: level 1 buckets values of
// [min,max] into width-w ranges rendered as "[lo-hi]", level 2 doubles
// the width, and so on, topping out at the full range. This is the
// standard k-anonymity-style ladder for numeric microdata (ages,
// counts, dosages) and pairs with Masker for data privacy over numeric
// attributes.
func NumericHierarchy(attr string, min, max, baseWidth, levels int) (*Hierarchy, error) {
	if max < min {
		return nil, fmt.Errorf("datapriv: numeric hierarchy: max %d < min %d", max, min)
	}
	if baseWidth < 1 || levels < 1 {
		return nil, fmt.Errorf("datapriv: numeric hierarchy: width %d / levels %d must be ≥ 1", baseWidth, levels)
	}
	h := &Hierarchy{Attr: attr, Other: "*"}
	width := baseWidth
	// Level 1 maps raw integers to ranges; deeper levels map range
	// strings to wider range strings.
	prev := make(map[exec.Value]exec.Value)
	for v := min; v <= max; v++ {
		lo := min + ((v-min)/width)*width
		hi := lo + width - 1
		if hi > max {
			hi = max
		}
		prev[exec.Value(strconv.Itoa(v))] = rangeLabel(lo, hi)
	}
	h.Levels = append(h.Levels, prev)
	for l := 1; l < levels; l++ {
		newWidth := width * 2
		m := make(map[exec.Value]exec.Value)
		for lo := min; lo <= max; lo += width {
			hi := lo + width - 1
			if hi > max {
				hi = max
			}
			nlo := min + ((lo-min)/newWidth)*newWidth
			nhi := nlo + newWidth - 1
			if nhi > max {
				nhi = max
			}
			m[rangeLabel(lo, hi)] = rangeLabel(nlo, nhi)
		}
		h.Levels = append(h.Levels, m)
		width = newWidth
	}
	return h, nil
}

func rangeLabel(lo, hi int) exec.Value {
	if lo == hi {
		return exec.Value(strconv.Itoa(lo))
	}
	return exec.Value("[" + strconv.Itoa(lo) + "-" + strconv.Itoa(hi) + "]")
}
