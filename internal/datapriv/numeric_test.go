package datapriv

import (
	"testing"

	"provpriv/internal/exec"
)

func TestNumericHierarchyLevels(t *testing.T) {
	h, err := NumericHierarchy("age", 0, 99, 10, 3)
	if err != nil {
		t.Fatalf("NumericHierarchy: %v", err)
	}
	if h.MaxDepth() != 3 {
		t.Fatalf("depth = %d", h.MaxDepth())
	}
	cases := []struct {
		v     exec.Value
		depth int
		want  exec.Value
	}{
		{"42", 0, "42"},
		{"42", 1, "[40-49]"},
		{"42", 2, "[40-59]"},
		{"42", 3, "[40-79]"},
		{"7", 1, "[0-9]"},
		{"99", 1, "[90-99]"},
		{"99", 2, "[80-99]"},
	}
	for _, c := range cases {
		if got := h.Generalize(c.v, c.depth); got != c.want {
			t.Errorf("Generalize(%s, %d) = %s, want %s", c.v, c.depth, got, c.want)
		}
	}
}

func TestNumericHierarchyUnknownValue(t *testing.T) {
	h, _ := NumericHierarchy("age", 0, 9, 2, 1)
	if got := h.Generalize("200", 1); got != "*" {
		t.Fatalf("out-of-range = %s, want *", got)
	}
}

func TestNumericHierarchyValidation(t *testing.T) {
	if _, err := NumericHierarchy("a", 10, 5, 2, 1); err == nil {
		t.Fatal("max<min accepted")
	}
	if _, err := NumericHierarchy("a", 0, 9, 0, 1); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := NumericHierarchy("a", 0, 9, 2, 0); err == nil {
		t.Fatal("levels 0 accepted")
	}
}

// Property: generalization is consistent — two values in the same
// level-1 bucket stay together at every deeper level.
func TestNumericHierarchyConsistency(t *testing.T) {
	h, _ := NumericHierarchy("x", 0, 63, 4, 4)
	for depth := 1; depth <= 4; depth++ {
		for v := 0; v < 60; v++ {
			a := h.Generalize(exec.Value(itoa(v)), depth)
			b := h.Generalize(exec.Value(itoa(v+1)), depth)
			// Same level-1 bucket implies same deeper bucket.
			if h.Generalize(exec.Value(itoa(v)), 1) == h.Generalize(exec.Value(itoa(v+1)), 1) && a != b {
				t.Fatalf("depth %d: %d and %d split after sharing a bucket", depth, v, v+1)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
