package datapriv

import (
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func ageHierarchy() *Hierarchy {
	return &Hierarchy{
		Attr: "snps",
		Levels: []map[exec.Value]exec.Value{
			{"rs1": "chr1", "rs2": "chr1", "rs3": "chr2"},
			{"chr1": "genome", "chr2": "genome"},
		},
	}
}

func TestGeneralizeDepths(t *testing.T) {
	h := ageHierarchy()
	if got := h.Generalize("rs1", 0); got != "rs1" {
		t.Fatalf("depth 0 = %s", got)
	}
	if got := h.Generalize("rs1", 1); got != "chr1" {
		t.Fatalf("depth 1 = %s", got)
	}
	if got := h.Generalize("rs1", 2); got != "genome" {
		t.Fatalf("depth 2 = %s", got)
	}
	// Clamp beyond ladder.
	if got := h.Generalize("rs1", 9); got != "genome" {
		t.Fatalf("depth 9 = %s", got)
	}
	// Unknown value falls back to Other/"*".
	if got := h.Generalize("rsX", 1); got != "*" {
		t.Fatalf("unknown = %s", got)
	}
	h.Other = "?"
	if got := h.Generalize("rsX", 1); got != "?" {
		t.Fatalf("unknown with Other = %s", got)
	}
}

func maskedDisease(t *testing.T, level privacy.Level, withHier bool) (*exec.Execution, *exec.Execution, Report) {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	r := exec.NewRunner(spec, nil)
	e, err := r.Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	p := privacy.NewPolicy(spec.ID)
	p.DataLevels["snps"] = privacy.Owner
	p.DataLevels["disorders"] = privacy.Analyst
	var hs map[string]*Hierarchy
	if withHier {
		hs = map[string]*Hierarchy{"snps": ageHierarchy()}
	}
	m := NewMasker(p, hs)
	masked, rep := m.Mask(e, level)
	return e, masked, rep
}

func TestMaskRedactsWithoutHierarchy(t *testing.T) {
	orig, masked, rep := maskedDisease(t, privacy.Public, false)
	if rep.Redacted != 2 { // snps + disorders
		t.Fatalf("report = %+v, want 2 redacted", rep)
	}
	if rep.Total() != len(orig.Items) {
		t.Fatalf("report total %d != items %d", rep.Total(), len(orig.Items))
	}
	for id, it := range masked.Items {
		switch it.Attr {
		case "snps", "disorders":
			if !it.Redacted || it.Value != "" {
				t.Fatalf("item %s not redacted: %+v", id, it)
			}
		default:
			if it.Redacted {
				t.Fatalf("item %s wrongly redacted", id)
			}
		}
	}
	// Original untouched.
	for _, it := range orig.Items {
		if it.Redacted {
			t.Fatal("Mask mutated original")
		}
	}
}

func TestMaskGeneralizesWithHierarchy(t *testing.T) {
	_, masked, rep := maskedDisease(t, privacy.Analyst, true)
	// Analyst (2) < Owner (3) by 1: snps generalized one step.
	if rep.Generalized != 1 || rep.Redacted != 0 {
		t.Fatalf("report = %+v", rep)
	}
	for _, it := range masked.Items {
		if it.Attr == "snps" {
			if it.Value != "chr1" || it.Redacted {
				t.Fatalf("snps = %+v, want chr1", it)
			}
		}
	}
}

func TestMaskDepthGrowsWithLevelGap(t *testing.T) {
	_, maskedPub, _ := maskedDisease(t, privacy.Public, true)
	for _, it := range maskedPub.Items {
		if it.Attr == "snps" && it.Value != "genome" {
			t.Fatalf("public snps = %v, want genome (depth 3 clamped to 2)", it.Value)
		}
	}
}

func TestMaskOwnerSeesAll(t *testing.T) {
	orig, masked, rep := maskedDisease(t, privacy.Owner, false)
	if rep.Redacted != 0 || rep.Generalized != 0 || rep.Visible != len(orig.Items) {
		t.Fatalf("report = %+v", rep)
	}
	for id, it := range masked.Items {
		if it.Value != orig.Items[id].Value {
			t.Fatalf("owner view altered item %s", id)
		}
	}
}

// Property (DESIGN.md §5): masking is monotone — if a level sees a value
// unmodified, every higher level does too, and redactions only shrink.
func TestMaskMonotone(t *testing.T) {
	levels := []privacy.Level{privacy.Public, privacy.Registered, privacy.Analyst, privacy.Owner}
	var prevVisible map[string]bool
	for _, l := range levels {
		orig, masked, _ := maskedDisease(t, l, true)
		visible := make(map[string]bool)
		for id, it := range masked.Items {
			if !it.Redacted && it.Value == orig.Items[id].Value {
				visible[id] = true
			}
		}
		if prevVisible != nil {
			for id := range prevVisible {
				if !visible[id] {
					t.Fatalf("item %s visible at lower level but hidden at %s", id, l)
				}
			}
		}
		prevVisible = visible
	}
}

func TestReportUtilityScore(t *testing.T) {
	r := Report{Visible: 2, Generalized: 2, Redacted: 4}
	if got := r.UtilityScore(); got != 0.375 {
		t.Fatalf("UtilityScore = %v, want 0.375", got)
	}
	if (Report{}).UtilityScore() != 1 {
		t.Fatal("empty report should score 1")
	}
}

func TestVisibleAttrs(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	p := privacy.NewPolicy(spec.ID)
	p.DataLevels["snps"] = privacy.Owner
	m := NewMasker(p, nil)
	got := m.VisibleAttrs([]string{"snps", "disorders"}, privacy.Public)
	if len(got) != 1 || got[0] != "disorders" {
		t.Fatalf("VisibleAttrs = %v", got)
	}
}

// The satellite aliasing fix: Mask used to share the Edges backing
// array and shallow-copy Nodes, so sanitizing a masked view could
// corrupt the shard's canonical execution. Mask must return a deep
// copy.
func TestMaskDeepCopyNoAliasing(t *testing.T) {
	orig, masked, _ := maskedDisease(t, privacy.Public, false)
	wantEdge := orig.Edges[0]
	wantItems := append([]string(nil), wantEdge.Items...)
	for i := range masked.Edges {
		masked.Edges[i].From = "vandal"
		for j := range masked.Edges[i].Items {
			masked.Edges[i].Items[j] = "vandal"
		}
	}
	for _, n := range masked.Nodes {
		n.ID = "vandal"
		for i := range n.Frames {
			n.Frames[i].Proc = "vandal"
		}
	}
	for _, it := range masked.Items {
		it.Value = "vandal"
	}
	if orig.Edges[0].From != wantEdge.From {
		t.Fatal("Edges backing array shared with the original")
	}
	for i, id := range orig.Edges[0].Items {
		if id != wantItems[i] {
			t.Fatal("edge item slice shared with the original")
		}
	}
	for _, n := range orig.Nodes {
		if n.ID == "vandal" {
			t.Fatal("node pointers shared with the original")
		}
		for _, f := range n.Frames {
			if f.Proc == "vandal" {
				t.Fatal("frame slice shared with the original")
			}
		}
	}
	for id, it := range orig.Items {
		if it.Value == "vandal" {
			t.Fatalf("item %s shared with the original", id)
		}
	}
}

// Mask is taint-aware: the raw value of a protected input must not
// survive inside derived trace strings (the internal/taint regression
// seen end-to-end on public provenance of prognosis).
func TestMaskRewritesEmbeddedProtectedValues(t *testing.T) {
	orig, masked, rep := maskedDisease(t, privacy.Public, false)
	for id, it := range masked.Items {
		if it.Attr == "snps" {
			continue // the item itself is redacted; checked elsewhere
		}
		if strings.Contains(string(it.Value), "rs1") {
			t.Errorf("item %s embeds raw snps value: %q", id, it.Value)
		}
	}
	if rep.Rewritten == 0 {
		t.Fatalf("expected rewritten derived traces, report = %+v", rep)
	}
	if rep.Total() != len(orig.Items) {
		t.Fatalf("report total %d != %d items", rep.Total(), len(orig.Items))
	}
}
