package index

import (
	"fmt"
	"sync"
	"testing"

	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func diseaseSetup(t *testing.T) ([]*workflow.Spec, map[string]*privacy.Policy) {
	t.Helper()
	s := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(s.ID)
	pol.ModuleLevels["M6"] = privacy.Owner // Query OMIM proprietary
	if err := pol.Validate(s); err != nil {
		t.Fatalf("policy: %v", err)
	}
	return []*workflow.Spec{s}, map[string]*privacy.Policy{s.ID: pol}
}

func TestInvertedLookupFiltersByLevel(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	// "omim" appears only on M6, which requires Owner.
	if got := ix.Lookup("omim", privacy.Public); len(got) != 0 {
		t.Fatalf("public lookup(omim) = %v", got)
	}
	got := ix.Lookup("omim", privacy.Owner)
	if len(got) != 1 || got[0].ModuleID != "M6" || got[0].Workflow != "W4" {
		t.Fatalf("owner lookup(omim) = %v", got)
	}
}

func TestInvertedLookupNormalizes(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	// "Risks" should hit modules with keyword "risk".
	if got := ix.Lookup("Risks", privacy.Public); len(got) == 0 {
		t.Fatal("normalized lookup failed")
	}
}

func TestInvertedMatchesNaive(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	for _, term := range []string{"database", "omim", "query", "private", "nonexistent"} {
		for _, lvl := range []privacy.Level{privacy.Public, privacy.Analyst, privacy.Owner} {
			fast := ix.Lookup(term, lvl)
			slow := NaiveLookup(specs, pols, term, lvl)
			if len(fast) != len(slow) {
				t.Fatalf("term %q level %v: index %d vs naive %d", term, lvl, len(fast), len(slow))
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("term %q level %v: posting %d differs: %v vs %v", term, lvl, i, fast[i], slow[i])
				}
			}
		}
	}
}

func TestInvertedTermsAndPostings(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	if len(ix.Terms()) == 0 || ix.Postings() == 0 {
		t.Fatal("empty index for non-empty spec")
	}
}

func TestReachIndex(t *testing.T) {
	specs, _ := diseaseSetup(t)
	r, err := BuildReach(specs)
	if err != nil {
		t.Fatalf("BuildReach: %v", err)
	}
	id := specs[0].ID
	cases := []struct {
		from, to string
		want     bool
	}{
		{"M3", "M5", true},    // paper's full-expansion edge
		{"M8", "M9", true},    // across composite boundary
		{"M3", "M15", true},   // long chain
		{"M10", "M14", false}, // the famous non-path
		{"M15", "M3", false},
		{"I", "O", true},
		{"M3", "NOPE", false},
	}
	for _, c := range cases {
		if got := r.Reaches(id, c.from, c.to); got != c.want {
			t.Errorf("Reaches(%s,%s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	if r.Reaches("unknown-spec", "a", "b") {
		t.Error("unknown spec reported reachable")
	}
}

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(2)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	if _, ok := c.Get("g", "q1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("g", "q1", 42)
	v, ok := c.Get("g", "q1")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	// Group isolation.
	if _, ok := c.Get("other", "q1"); ok {
		t.Fatal("cross-group hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d,%d", hits, misses)
	}
}

func TestCacheEviction(t *testing.T) {
	c, _ := NewCache(2)
	c.Put("g", "a", 1)
	c.Put("g", "b", 2)
	c.Put("g", "c", 3) // evicts a
	if _, ok := c.Get("g", "a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get("g", "c"); !ok {
		t.Fatal("new entry missing")
	}
	// Overwrite does not evict.
	c.Put("g", "c", 30)
	if v, _ := c.Get("g", "c"); v.(int) != 30 {
		t.Fatal("overwrite failed")
	}
}

func TestCacheRejectsBadCapacity(t *testing.T) {
	if _, err := NewCache(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c, _ := NewCache(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", j%32)
				c.Put("g", key, j)
				c.Get("g", key)
			}
		}(i)
	}
	wg.Wait()
}

func TestAddSpecIncrementalMatchesRebuild(t *testing.T) {
	specs, pols := diseaseSetup(t)
	s2, err := workflowRandom(7)
	if err != nil {
		t.Fatalf("random spec: %v", err)
	}
	// Build in two orders and compare with a full rebuild.
	inc := BuildInverted(specs, pols)
	inc.AddSpec(s2, nil)
	all := BuildInverted(append(append([]*workflow.Spec{}, specs...), s2), pols)
	if len(inc.Terms()) != len(all.Terms()) {
		t.Fatalf("terms: %d vs %d", len(inc.Terms()), len(all.Terms()))
	}
	for _, term := range all.Terms() {
		for _, lvl := range []privacy.Level{privacy.Public, privacy.Owner} {
			a := inc.Lookup(term, lvl)
			b := all.Lookup(term, lvl)
			if len(a) != len(b) {
				t.Fatalf("term %q level %v: %d vs %d", term, lvl, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("term %q level %v posting %d: %v vs %v", term, lvl, i, a[i], b[i])
				}
			}
		}
	}
}

func TestRemoveSpec(t *testing.T) {
	specs, pols := diseaseSetup(t)
	s2, _ := workflowRandom(9)
	ix := BuildInverted(append(append([]*workflow.Spec{}, specs...), s2), pols)
	ix.RemoveSpec(s2.ID)
	want := BuildInverted(specs, pols)
	if len(ix.Terms()) != len(want.Terms()) {
		t.Fatalf("terms after remove: %d vs %d", len(ix.Terms()), len(want.Terms()))
	}
	for _, term := range want.Terms() {
		a := ix.Lookup(term, privacy.Owner)
		b := want.Lookup(term, privacy.Owner)
		if len(a) != len(b) {
			t.Fatalf("term %q: %d vs %d", term, len(a), len(b))
		}
	}
	// Removing a non-registered spec is a no-op.
	ix.RemoveSpec("ghost")
}

// TestLookupDuringChurn races lock-free Lookups against AddSpec /
// RemoveSpec churn (run under -race). Every observed posting list must
// be internally consistent: sorted in canonical order and never
// containing a spec whose RemoveSpec already returned.
func TestLookupDuringChurn(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	var removed sync.Map // spec id -> true once RemoveSpec returned
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 50; i++ {
			s, err := workflowRandom(int64(200 + i))
			if err != nil {
				t.Errorf("random spec: %v", err)
				return
			}
			ix.AddSpec(s, nil)
			ix.RemoveSpec(s.ID)
			removed.Store(s.ID, true)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, term := range []string{"query", "database", "filter"} {
					ps := ix.Lookup(term, privacy.Owner)
					for i, p := range ps {
						if i > 0 && postingLess(p, ps[i-1]) {
							t.Errorf("postings out of order for %q", term)
							return
						}
						if _, gone := removed.Load(p.SpecID); gone {
							// Only a bug if the removal completed before
							// this Lookup started; at worst we raced the
							// store above, so re-check once after the
							// snapshot that must reflect the removal.
							if again := ix.Lookup(term, privacy.Owner); containsSpec(again, p.SpecID) {
								if _, still := removed.Load(p.SpecID); still {
									t.Errorf("stale posting for removed spec %s", p.SpecID)
									return
								}
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

func containsSpec(ps []Posting, specID string) bool {
	for _, p := range ps {
		if p.SpecID == specID {
			return true
		}
	}
	return false
}

// TestRemoveSpecImmediatelyInvisible is the sequential half of the
// stale-postings guarantee: once RemoveSpec returns, no term lookup at
// any level may serve the spec's postings.
func TestRemoveSpecImmediatelyInvisible(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	s2, err := workflowRandom(31)
	if err != nil {
		t.Fatalf("random spec: %v", err)
	}
	ix.AddSpec(s2, nil)
	terms := ix.Terms()
	ix.RemoveSpec(s2.ID)
	for _, term := range terms {
		if containsSpec(ix.Lookup(term, privacy.Owner), s2.ID) {
			t.Fatalf("term %q still serves removed spec", term)
		}
	}
}

// TestSegmentsAndSwaps covers the churn counters the metrics endpoint
// exports.
func TestSegmentsAndSwaps(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	if got := ix.Segments(); got != 1 {
		t.Fatalf("Segments = %d", got)
	}
	if got := ix.Swaps(); got != 0 {
		t.Fatalf("Swaps after build = %d", got)
	}
	s2, _ := workflowRandom(17)
	ix.AddSpec(s2, nil)
	if got := ix.Segments(); got != 2 {
		t.Fatalf("Segments after add = %d", got)
	}
	ix.RemoveSpec(s2.ID)
	if got, want := ix.Swaps(), int64(2); got != want {
		t.Fatalf("Swaps = %d, want %d", got, want)
	}
	if got := ix.Segments(); got != 1 {
		t.Fatalf("Segments after remove = %d", got)
	}
	// Removing an unknown spec swaps nothing.
	ix.RemoveSpec("ghost")
	if got := ix.Swaps(); got != 2 {
		t.Fatalf("no-op remove swapped: %d", got)
	}
}

// TestAddSpecReplacesSegment: re-adding a spec (e.g. after a policy
// change) replaces its postings instead of duplicating them.
func TestAddSpecReplacesSegment(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	before := ix.Postings()
	ix.AddSpec(specs[0], pols[specs[0].ID])
	if got := ix.Postings(); got != before {
		t.Fatalf("re-add changed postings: %d vs %d", got, before)
	}
	// Re-add with a different policy level reclassifies the postings.
	pol2 := privacy.NewPolicy(specs[0].ID)
	ix.AddSpec(specs[0], pol2) // everything public now
	if got := ix.Lookup("omim", privacy.Public); len(got) != 1 {
		t.Fatalf("reclassified posting not public: %v", got)
	}
}

// TestReachIndexConcurrentChurn races lock-free Reaches against spec
// add/remove (run under -race).
func TestReachIndexConcurrentChurn(t *testing.T) {
	specs, _ := diseaseSetup(t)
	r, err := BuildReach(specs)
	if err != nil {
		t.Fatalf("BuildReach: %v", err)
	}
	id := specs[0].ID
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 30; i++ {
			s, err := workflowRandom(int64(300 + i))
			if err != nil {
				t.Errorf("random spec: %v", err)
				return
			}
			if err := r.AddSpec(s); err != nil {
				t.Errorf("AddSpec: %v", err)
				return
			}
			r.RemoveSpec(s.ID)
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if !r.Reaches(id, "M3", "M5") {
					t.Error("stable spec lost reachability mid-churn")
					return
				}
			}
		}()
	}
	wg.Wait()
}
