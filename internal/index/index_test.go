package index

import (
	"fmt"
	"sync"
	"testing"

	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func diseaseSetup(t *testing.T) ([]*workflow.Spec, map[string]*privacy.Policy) {
	t.Helper()
	s := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(s.ID)
	pol.ModuleLevels["M6"] = privacy.Owner // Query OMIM proprietary
	if err := pol.Validate(s); err != nil {
		t.Fatalf("policy: %v", err)
	}
	return []*workflow.Spec{s}, map[string]*privacy.Policy{s.ID: pol}
}

func TestInvertedLookupFiltersByLevel(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	// "omim" appears only on M6, which requires Owner.
	if got := ix.Lookup("omim", privacy.Public); len(got) != 0 {
		t.Fatalf("public lookup(omim) = %v", got)
	}
	got := ix.Lookup("omim", privacy.Owner)
	if len(got) != 1 || got[0].ModuleID != "M6" || got[0].Workflow != "W4" {
		t.Fatalf("owner lookup(omim) = %v", got)
	}
}

func TestInvertedLookupNormalizes(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	// "Risks" should hit modules with keyword "risk".
	if got := ix.Lookup("Risks", privacy.Public); len(got) == 0 {
		t.Fatal("normalized lookup failed")
	}
}

func TestInvertedMatchesNaive(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	for _, term := range []string{"database", "omim", "query", "private", "nonexistent"} {
		for _, lvl := range []privacy.Level{privacy.Public, privacy.Analyst, privacy.Owner} {
			fast := ix.Lookup(term, lvl)
			slow := NaiveLookup(specs, pols, term, lvl)
			if len(fast) != len(slow) {
				t.Fatalf("term %q level %v: index %d vs naive %d", term, lvl, len(fast), len(slow))
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("term %q level %v: posting %d differs: %v vs %v", term, lvl, i, fast[i], slow[i])
				}
			}
		}
	}
}

func TestInvertedTermsAndPostings(t *testing.T) {
	specs, pols := diseaseSetup(t)
	ix := BuildInverted(specs, pols)
	if len(ix.Terms()) == 0 || ix.Postings() == 0 {
		t.Fatal("empty index for non-empty spec")
	}
}

func TestReachIndex(t *testing.T) {
	specs, _ := diseaseSetup(t)
	r, err := BuildReach(specs)
	if err != nil {
		t.Fatalf("BuildReach: %v", err)
	}
	id := specs[0].ID
	cases := []struct {
		from, to string
		want     bool
	}{
		{"M3", "M5", true},    // paper's full-expansion edge
		{"M8", "M9", true},    // across composite boundary
		{"M3", "M15", true},   // long chain
		{"M10", "M14", false}, // the famous non-path
		{"M15", "M3", false},
		{"I", "O", true},
		{"M3", "NOPE", false},
	}
	for _, c := range cases {
		if got := r.Reaches(id, c.from, c.to); got != c.want {
			t.Errorf("Reaches(%s,%s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
	if r.Reaches("unknown-spec", "a", "b") {
		t.Error("unknown spec reported reachable")
	}
}

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(2)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	if _, ok := c.Get("g", "q1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("g", "q1", 42)
	v, ok := c.Get("g", "q1")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	// Group isolation.
	if _, ok := c.Get("other", "q1"); ok {
		t.Fatal("cross-group hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d,%d", hits, misses)
	}
}

func TestCacheEviction(t *testing.T) {
	c, _ := NewCache(2)
	c.Put("g", "a", 1)
	c.Put("g", "b", 2)
	c.Put("g", "c", 3) // evicts a
	if _, ok := c.Get("g", "a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get("g", "c"); !ok {
		t.Fatal("new entry missing")
	}
	// Overwrite does not evict.
	c.Put("g", "c", 30)
	if v, _ := c.Get("g", "c"); v.(int) != 30 {
		t.Fatal("overwrite failed")
	}
}

func TestCacheRejectsBadCapacity(t *testing.T) {
	if _, err := NewCache(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c, _ := NewCache(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", j%32)
				c.Put("g", key, j)
				c.Get("g", key)
			}
		}(i)
	}
	wg.Wait()
}

func TestAddSpecIncrementalMatchesRebuild(t *testing.T) {
	specs, pols := diseaseSetup(t)
	s2, err := workflowRandom(7)
	if err != nil {
		t.Fatalf("random spec: %v", err)
	}
	// Build in two orders and compare with a full rebuild.
	inc := BuildInverted(specs, pols)
	inc.AddSpec(s2, nil)
	all := BuildInverted(append(append([]*workflow.Spec{}, specs...), s2), pols)
	if len(inc.Terms()) != len(all.Terms()) {
		t.Fatalf("terms: %d vs %d", len(inc.Terms()), len(all.Terms()))
	}
	for _, term := range all.Terms() {
		for _, lvl := range []privacy.Level{privacy.Public, privacy.Owner} {
			a := inc.Lookup(term, lvl)
			b := all.Lookup(term, lvl)
			if len(a) != len(b) {
				t.Fatalf("term %q level %v: %d vs %d", term, lvl, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("term %q level %v posting %d: %v vs %v", term, lvl, i, a[i], b[i])
				}
			}
		}
	}
}

func TestRemoveSpec(t *testing.T) {
	specs, pols := diseaseSetup(t)
	s2, _ := workflowRandom(9)
	ix := BuildInverted(append(append([]*workflow.Spec{}, specs...), s2), pols)
	ix.RemoveSpec(s2.ID)
	want := BuildInverted(specs, pols)
	if len(ix.Terms()) != len(want.Terms()) {
		t.Fatalf("terms after remove: %d vs %d", len(ix.Terms()), len(want.Terms()))
	}
	for _, term := range want.Terms() {
		a := ix.Lookup(term, privacy.Owner)
		b := want.Lookup(term, privacy.Owner)
		if len(a) != len(b) {
			t.Fatalf("term %q: %d vs %d", term, len(a), len(b))
		}
	}
	// Removing a non-registered spec is a no-op.
	ix.RemoveSpec("ghost")
}
