package index

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU[string, int](2, 0)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // refresh a: b is now the coldest
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %q evicted wrongly", k)
		}
	}
}

func TestLRUOverwriteDoesNotEvict(t *testing.T) {
	c := NewLRU[string, int](2, 0)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("b", 20)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v", v, ok)
	}
	if v, ok := c.Get("b"); !ok || v != 20 {
		t.Fatalf("Get(b) = %v,%v", v, ok)
	}
}

func TestLRUTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewLRU[string, int](4, time.Minute)
	c.now = func() time.Time { return now }
	c.Put("a", 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry served")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry not reaped lazily: len=%d", c.Len())
	}
	// Expired entries are reaped before a live one is evicted.
	c.Put("b", 2)
	c.Put("c", 3)
	now = now.Add(2 * time.Minute)
	c.Put("d", 4)
	c.Put("e", 5)
	c.Put("f", 6)
	c.Put("g", 7) // full: b and c are expired and must go first
	for _, k := range []string{"d", "e", "f", "g"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("live entry %q evicted while expired entries existed", k)
		}
	}
}

func TestLRUStatsAndPurge(t *testing.T) {
	c := NewLRU[string, int](4, 0)
	c.Get("nope")
	c.Put("a", 1)
	c.Get("a")
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d,%d", h, m)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries")
	}
	if h, _ := c.Stats(); h != 1 {
		t.Fatal("purge reset counters")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewLRU[string, int](64, time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}
