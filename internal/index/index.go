// Package index provides the access structures Section 4 of the CIDR
// 2011 paper calls for ("we must manage an index with different user
// views"): an inverted keyword index whose postings carry the minimum
// access level allowed to see them — so one physical index serves every
// privilege level, instead of one repository copy per level — plus a
// precomputed reachability index for structural queries and a per-user-
// group result cache ("another promising direction is to consider user
// groups when utilizing cached information").
package index

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"provpriv/internal/graph"
	"provpriv/internal/privacy"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
)

// Posting records one keyword occurrence: the module carrying the term
// and the minimum level allowed to learn the module's identity.
type Posting struct {
	SpecID   string
	ModuleID string
	Workflow string
	MinLevel privacy.Level
}

// Inverted is a privacy-classified inverted keyword index over a set of
// specifications. Postings are sorted by MinLevel so a level-filtered
// lookup is a prefix scan.
type Inverted struct {
	postings map[string][]Posting
}

// BuildInverted indexes every module keyword of every spec. policies
// (keyed by spec id, may be nil or sparse) supply module privacy levels;
// unlisted modules are public.
func BuildInverted(specs []*workflow.Spec, policies map[string]*privacy.Policy) *Inverted {
	ix := &Inverted{postings: make(map[string][]Posting)}
	for _, s := range specs {
		var pol *privacy.Policy
		if policies != nil {
			pol = policies[s.ID]
		}
		for _, wid := range s.WorkflowIDs() {
			for _, m := range s.Workflows[wid].Modules {
				minLevel := privacy.Public
				if pol != nil {
					minLevel = pol.ModuleLevels[m.ID]
				}
				seen := make(map[string]bool)
				for _, kw := range m.AllKeywords() {
					term := search.Normalize(kw)
					if seen[term] {
						continue // distinct raw keywords may normalize alike
					}
					seen[term] = true
					ix.postings[term] = append(ix.postings[term], Posting{
						SpecID: s.ID, ModuleID: m.ID, Workflow: wid, MinLevel: minLevel,
					})
				}
			}
		}
	}
	for term := range ix.postings {
		ps := ix.postings[term]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].MinLevel != ps[j].MinLevel {
				return ps[i].MinLevel < ps[j].MinLevel
			}
			if ps[i].SpecID != ps[j].SpecID {
				return ps[i].SpecID < ps[j].SpecID
			}
			return ps[i].ModuleID < ps[j].ModuleID
		})
	}
	return ix
}

// AddSpec incrementally indexes one more spec into an existing index,
// keeping per-term postings sorted. Equivalent to rebuilding with the
// spec included; O(spec terms × log postings) instead of O(corpus).
func (ix *Inverted) AddSpec(s *workflow.Spec, pol *privacy.Policy) {
	if ix.postings == nil {
		ix.postings = make(map[string][]Posting)
	}
	for _, wid := range s.WorkflowIDs() {
		for _, m := range s.Workflows[wid].Modules {
			minLevel := privacy.Public
			if pol != nil {
				minLevel = pol.ModuleLevels[m.ID]
			}
			seen := make(map[string]bool)
			for _, kw := range m.AllKeywords() {
				term := search.Normalize(kw)
				if seen[term] {
					continue
				}
				seen[term] = true
				p := Posting{SpecID: s.ID, ModuleID: m.ID, Workflow: wid, MinLevel: minLevel}
				ps := ix.postings[term]
				pos := sort.Search(len(ps), func(i int) bool {
					if ps[i].MinLevel != p.MinLevel {
						return ps[i].MinLevel > p.MinLevel
					}
					if ps[i].SpecID != p.SpecID {
						return ps[i].SpecID > p.SpecID
					}
					return ps[i].ModuleID >= p.ModuleID
				})
				ps = append(ps, Posting{})
				copy(ps[pos+1:], ps[pos:])
				ps[pos] = p
				ix.postings[term] = ps
			}
		}
	}
}

// RemoveSpec drops every posting of the given spec id.
func (ix *Inverted) RemoveSpec(specID string) {
	for term, ps := range ix.postings {
		kept := ps[:0]
		for _, p := range ps {
			if p.SpecID != specID {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			delete(ix.postings, term)
		} else {
			ix.postings[term] = kept
		}
	}
}

// Lookup returns the postings for term visible at the given level. The
// scan stops at the first posting above the level (postings are sorted
// by MinLevel), so low-privilege lookups touch only their own prefix.
func (ix *Inverted) Lookup(term string, level privacy.Level) []Posting {
	ps := ix.postings[search.Normalize(term)]
	var out []Posting
	for _, p := range ps {
		if p.MinLevel > level {
			break
		}
		out = append(out, p)
	}
	return out
}

// Terms returns all indexed terms, sorted.
func (ix *Inverted) Terms() []string {
	ts := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// Postings returns the total number of postings (for size accounting).
func (ix *Inverted) Postings() int {
	n := 0
	for _, ps := range ix.postings {
		n += len(ps)
	}
	return n
}

// NaiveLookup is the no-index baseline used by benchmark B4: scan every
// module of every spec on each query, re-checking the policy each time.
func NaiveLookup(specs []*workflow.Spec, policies map[string]*privacy.Policy, term string, level privacy.Level) []Posting {
	want := search.Normalize(term)
	var out []Posting
	for _, s := range specs {
		var pol *privacy.Policy
		if policies != nil {
			pol = policies[s.ID]
		}
		for _, wid := range s.WorkflowIDs() {
			for _, m := range s.Workflows[wid].Modules {
				if pol != nil && !pol.CanSeeModule(level, m.ID) {
					continue
				}
				for _, kw := range m.AllKeywords() {
					if search.Normalize(kw) == want {
						minLevel := privacy.Public
						if pol != nil {
							minLevel = pol.ModuleLevels[m.ID]
						}
						out = append(out, Posting{SpecID: s.ID, ModuleID: m.ID, Workflow: wid, MinLevel: minLevel})
						break
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MinLevel != out[j].MinLevel {
			return out[i].MinLevel < out[j].MinLevel
		}
		if out[i].SpecID != out[j].SpecID {
			return out[i].SpecID < out[j].SpecID
		}
		return out[i].ModuleID < out[j].ModuleID
	})
	return out
}

// ReachIndex precomputes, per spec, the transitive closure of the full
// expansion, answering "does module u contribute to module v" in O(1)
// for structural-query evaluation.
type ReachIndex struct {
	graphs   map[string]*graph.Graph
	closures map[string]*graph.Closure
}

// BuildReach builds the index for the given specs.
func BuildReach(specs []*workflow.Spec) (*ReachIndex, error) {
	r := &ReachIndex{
		graphs:   make(map[string]*graph.Graph, len(specs)),
		closures: make(map[string]*graph.Closure, len(specs)),
	}
	for _, s := range specs {
		h, err := workflow.NewHierarchy(s)
		if err != nil {
			return nil, err
		}
		v, err := workflow.Expand(s, workflow.FullPrefix(h))
		if err != nil {
			return nil, err
		}
		g := v.Graph()
		cl, err := graph.NewClosure(g)
		if err != nil {
			return nil, err
		}
		r.graphs[s.ID] = g
		r.closures[s.ID] = cl
	}
	return r, nil
}

// AddSpec incrementally indexes one spec's reachability.
func (r *ReachIndex) AddSpec(s *workflow.Spec) error {
	h, err := workflow.NewHierarchy(s)
	if err != nil {
		return err
	}
	v, err := workflow.Expand(s, workflow.FullPrefix(h))
	if err != nil {
		return err
	}
	g := v.Graph()
	cl, err := graph.NewClosure(g)
	if err != nil {
		return err
	}
	if r.graphs == nil {
		r.graphs = make(map[string]*graph.Graph)
		r.closures = make(map[string]*graph.Closure)
	}
	r.graphs[s.ID] = g
	r.closures[s.ID] = cl
	return nil
}

// RemoveSpec drops a spec's reachability graph and closure.
func (r *ReachIndex) RemoveSpec(specID string) {
	delete(r.graphs, specID)
	delete(r.closures, specID)
}

// Reaches reports whether fromModule contributes (transitively) to
// toModule in the spec's full expansion. Unknown ids report false.
func (r *ReachIndex) Reaches(specID, fromModule, toModule string) bool {
	g := r.graphs[specID]
	if g == nil {
		return false
	}
	u, v := g.Lookup(fromModule), g.Lookup(toModule)
	if u == graph.Invalid || v == graph.Invalid {
		return false
	}
	return r.closures[specID].Reach(u, v)
}

// Cache is a bounded, concurrency-safe result cache keyed by
// (user group, query key): users in the same group share privacy
// settings, so they can safely share materialized answers. Lookups take
// only a read lock and count hits/misses atomically, so a fleet of
// concurrent readers does not serialize on the cache.
type Cache struct {
	mu       sync.RWMutex
	capacity int
	entries  map[string]*cacheEntry
	order    []string // FIFO-ish eviction order (append on insert)
	hits     atomic.Int64
	misses   atomic.Int64
}

type cacheEntry struct {
	value any
}

// NewCache returns a cache bounded to capacity entries (≥1).
func NewCache(capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("index: cache capacity %d < 1", capacity)
	}
	return &Cache{capacity: capacity, entries: make(map[string]*cacheEntry)}, nil
}

func cacheKey(group, key string) string { return group + "\x00" + key }

// Get returns the cached value for (group, key).
func (c *Cache) Get(group, key string) (any, bool) {
	c.mu.RLock()
	e, ok := c.entries[cacheKey(group, key)]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return e.value, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores a value for (group, key), evicting the oldest entry when
// full.
func (c *Cache) Put(group, key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey(group, key)
	if _, ok := c.entries[k]; !ok {
		for len(c.entries) >= c.capacity && len(c.order) > 0 {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.order = append(c.order, k)
	}
	c.entries[k] = &cacheEntry{value: v}
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses int) {
	return int(c.hits.Load()), int(c.misses.Load())
}
