// Package index provides the access structures Section 4 of the CIDR
// 2011 paper calls for ("we must manage an index with different user
// views"): an inverted keyword index whose postings carry the minimum
// access level allowed to see them — so one physical index serves every
// privilege level, instead of one repository copy per level — plus a
// precomputed reachability index for structural queries and a per-user-
// group result cache ("another promising direction is to consider user
// groups when utilizing cached information").
package index

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"provpriv/internal/graph"
	"provpriv/internal/privacy"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
)

// Posting records one keyword occurrence: the module carrying the term
// and the minimum level allowed to learn the module's identity.
type Posting struct {
	SpecID   string
	ModuleID string
	Workflow string
	MinLevel privacy.Level
}

// postingLess is the canonical posting order: MinLevel first (so a
// level-filtered lookup is a prefix scan), then spec and module ids for
// determinism.
func postingLess(a, b Posting) bool {
	if a.MinLevel != b.MinLevel {
		return a.MinLevel < b.MinLevel
	}
	if a.SpecID != b.SpecID {
		return a.SpecID < b.SpecID
	}
	return a.ModuleID < b.ModuleID
}

// segment holds one spec's postings, keyed by term and sorted in
// canonical order. Segments are immutable once built; mutating a spec
// replaces its segment wholesale.
type segment struct {
	specID   string
	postings map[string][]Posting
}

// buildSegment extracts one spec's postings. policy may be nil (all
// modules public).
func buildSegment(s *workflow.Spec, pol *privacy.Policy) *segment {
	seg := &segment{specID: s.ID, postings: make(map[string][]Posting)}
	for _, wid := range s.WorkflowIDs() {
		for _, m := range s.Workflows[wid].Modules {
			minLevel := privacy.Public
			if pol != nil {
				minLevel = pol.ModuleLevels[m.ID]
			}
			seen := make(map[string]bool)
			for _, kw := range m.AllKeywords() {
				term := search.Normalize(kw)
				if seen[term] {
					continue // distinct raw keywords may normalize alike
				}
				seen[term] = true
				seg.postings[term] = append(seg.postings[term], Posting{
					SpecID: s.ID, ModuleID: m.ID, Workflow: wid, MinLevel: minLevel,
				})
			}
		}
	}
	for term := range seg.postings {
		ps := seg.postings[term]
		sort.Slice(ps, func(i, j int) bool { return postingLess(ps[i], ps[j]) })
	}
	return seg
}

// invSnapshot is an immutable merged view of every segment. Readers load
// it with one atomic pointer read; writers build a replacement (copying
// only the term lists they touch — untouched lists are shared) and swap
// it in.
type invSnapshot struct {
	postings map[string][]Posting
	count    int // total postings across all terms
}

var emptyInvSnapshot = &invSnapshot{postings: map[string][]Posting{}}

// Inverted is a privacy-classified inverted keyword index over a set of
// specifications, organized as one segment per spec behind an atomically
// published merged snapshot.
//
// Concurrency: Lookup, Terms, Postings and Segments read the current
// snapshot without acquiring any lock, so a fleet of concurrent readers
// never serializes and never observes a half-applied mutation. AddSpec
// and RemoveSpec serialize on an internal mutex, rebuild only the term
// lists the mutated spec touches (sharing the rest with the previous
// snapshot), and publish the result with one atomic swap: once a
// mutation returns, every subsequent Lookup sees it.
type Inverted struct {
	mu       sync.Mutex // serializes writers; readers never take it
	segments map[string]*segment
	snap     atomic.Pointer[invSnapshot]
	swaps    atomic.Int64
}

// BuildInverted indexes every module keyword of every spec. policies
// (keyed by spec id, may be nil or sparse) supply module privacy levels;
// unlisted modules are public.
func BuildInverted(specs []*workflow.Spec, policies map[string]*privacy.Policy) *Inverted {
	ix := &Inverted{segments: make(map[string]*segment, len(specs))}
	merged := make(map[string][]Posting)
	count := 0
	for _, s := range specs {
		var pol *privacy.Policy
		if policies != nil {
			pol = policies[s.ID]
		}
		seg := buildSegment(s, pol)
		ix.segments[s.ID] = seg
		for term, ps := range seg.postings {
			merged[term] = append(merged[term], ps...)
			count += len(ps)
		}
	}
	for term := range merged {
		ps := merged[term]
		sort.Slice(ps, func(i, j int) bool { return postingLess(ps[i], ps[j]) })
	}
	ix.snap.Store(&invSnapshot{postings: merged, count: count})
	return ix
}

// snapshot returns the current published snapshot (never nil).
func (ix *Inverted) snapshot() *invSnapshot {
	if s := ix.snap.Load(); s != nil {
		return s
	}
	return emptyInvSnapshot
}

// AddSpec indexes one more spec (replacing its postings if already
// indexed, so a policy change re-registers cleanly). Cost is
// O(index terms) for the snapshot map copy plus O(touched-term postings)
// for the term lists the spec appears in; postings of untouched terms
// are shared with the previous snapshot, not copied.
func (ix *Inverted) AddSpec(s *workflow.Spec, pol *privacy.Policy) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.segments == nil {
		ix.segments = make(map[string]*segment)
	}
	seg := buildSegment(s, pol)
	ix.publish(s.ID, seg)
}

// RemoveSpec drops every posting of the given spec id. Only the term
// lists the spec itself occupies are rewritten — O(spec's own terms),
// not a scan over every posting in the index.
func (ix *Inverted) RemoveSpec(specID string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.segments[specID] == nil {
		return
	}
	ix.publish(specID, nil)
}

// publish installs (seg != nil) or removes (seg == nil) the segment of
// one spec and swaps in a snapshot reflecting it. Caller holds ix.mu.
func (ix *Inverted) publish(specID string, seg *segment) {
	old := ix.snapshot()
	prev := ix.segments[specID]

	// Terms whose merged list changes: union of the old and new segment.
	touched := make(map[string]bool)
	if prev != nil {
		for term := range prev.postings {
			touched[term] = true
		}
	}
	if seg != nil {
		for term := range seg.postings {
			touched[term] = true
		}
	}

	next := make(map[string][]Posting, len(old.postings)+len(touched))
	count := old.count
	for term, ps := range old.postings {
		next[term] = ps // shared; touched terms are replaced below
	}
	for term := range touched {
		var add []Posting
		if seg != nil {
			add = seg.postings[term]
		}
		merged := mergeTerm(old.postings[term], specID, add)
		count += len(merged) - len(old.postings[term])
		if len(merged) == 0 {
			delete(next, term)
		} else {
			next[term] = merged
		}
	}

	if seg == nil {
		delete(ix.segments, specID)
	} else {
		ix.segments[specID] = seg
	}
	ix.snap.Store(&invSnapshot{postings: next, count: count})
	ix.swaps.Add(1)
}

// mergeTerm rebuilds one term's posting list: postings of specID are
// dropped from old, and add (sorted, all belonging to specID) is merged
// in canonical order. The result is always a fresh slice.
func mergeTerm(old []Posting, specID string, add []Posting) []Posting {
	merged := make([]Posting, 0, len(old)+len(add))
	j := 0
	for _, p := range old {
		if p.SpecID == specID {
			continue
		}
		for j < len(add) && postingLess(add[j], p) {
			merged = append(merged, add[j])
			j++
		}
		merged = append(merged, p)
	}
	merged = append(merged, add[j:]...)
	return merged
}

// Lookup returns the postings for term visible at the given level. It
// reads the current snapshot with a single atomic load — no mutex — so
// concurrent writers never stall it. The scan stops at the first posting
// above the level (postings are sorted by MinLevel), so low-privilege
// lookups touch only their own prefix.
func (ix *Inverted) Lookup(term string, level privacy.Level) []Posting {
	ps := ix.snapshot().postings[search.Normalize(term)]
	var out []Posting
	for _, p := range ps {
		if p.MinLevel > level {
			break
		}
		out = append(out, p)
	}
	return out
}

// Terms returns all indexed terms, sorted.
func (ix *Inverted) Terms() []string {
	snap := ix.snapshot()
	ts := make([]string, 0, len(snap.postings))
	for t := range snap.postings {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}

// Postings returns the total number of postings (for size accounting).
func (ix *Inverted) Postings() int {
	return ix.snapshot().count
}

// TermCount returns the number of distinct indexed terms in O(1) —
// unlike Terms, it neither copies nor sorts (for stats/metrics paths).
func (ix *Inverted) TermCount() int {
	return len(ix.snapshot().postings)
}

// Segments returns the number of per-spec segments currently indexed.
func (ix *Inverted) Segments() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.segments)
}

// Swaps returns how many snapshot publications (spec mutations) the
// index has performed — a churn counter for the metrics endpoint.
func (ix *Inverted) Swaps() int64 {
	return ix.swaps.Load()
}

// NaiveLookup is the no-index baseline used by benchmark B4: scan every
// module of every spec on each query, re-checking the policy each time.
func NaiveLookup(specs []*workflow.Spec, policies map[string]*privacy.Policy, term string, level privacy.Level) []Posting {
	want := search.Normalize(term)
	var out []Posting
	for _, s := range specs {
		var pol *privacy.Policy
		if policies != nil {
			pol = policies[s.ID]
		}
		for _, wid := range s.WorkflowIDs() {
			for _, m := range s.Workflows[wid].Modules {
				if pol != nil && !pol.CanSeeModule(level, m.ID) {
					continue
				}
				for _, kw := range m.AllKeywords() {
					if search.Normalize(kw) == want {
						minLevel := privacy.Public
						if pol != nil {
							minLevel = pol.ModuleLevels[m.ID]
						}
						out = append(out, Posting{SpecID: s.ID, ModuleID: m.ID, Workflow: wid, MinLevel: minLevel})
						break
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return postingLess(out[i], out[j]) })
	return out
}

// reachSnapshot is the immutable published state of a ReachIndex.
type reachSnapshot struct {
	graphs   map[string]*graph.Graph
	closures map[string]*graph.Closure
}

var emptyReachSnapshot = &reachSnapshot{
	graphs:   map[string]*graph.Graph{},
	closures: map[string]*graph.Closure{},
}

// ReachIndex precomputes, per spec, the transitive closure of the full
// expansion, answering "does module u contribute to module v" in O(1)
// for structural-query evaluation. Like Inverted, it publishes its state
// as an atomically swapped snapshot: Reaches is lock-free, AddSpec and
// RemoveSpec copy the per-spec directory (graphs and closures themselves
// are shared, immutable values) and swap.
type ReachIndex struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[reachSnapshot]
}

// BuildReach builds the index for the given specs.
func BuildReach(specs []*workflow.Spec) (*ReachIndex, error) {
	snap := &reachSnapshot{
		graphs:   make(map[string]*graph.Graph, len(specs)),
		closures: make(map[string]*graph.Closure, len(specs)),
	}
	for _, s := range specs {
		g, cl, err := buildReachEntry(s)
		if err != nil {
			return nil, err
		}
		snap.graphs[s.ID] = g
		snap.closures[s.ID] = cl
	}
	r := &ReachIndex{}
	r.snap.Store(snap)
	return r, nil
}

func buildReachEntry(s *workflow.Spec) (*graph.Graph, *graph.Closure, error) {
	h, err := workflow.NewHierarchy(s)
	if err != nil {
		return nil, nil, err
	}
	v, err := workflow.Expand(s, workflow.FullPrefix(h))
	if err != nil {
		return nil, nil, err
	}
	g := v.Graph()
	cl, err := graph.NewClosure(g)
	if err != nil {
		return nil, nil, err
	}
	return g, cl, nil
}

func (r *ReachIndex) snapshot() *reachSnapshot {
	if s := r.snap.Load(); s != nil {
		return s
	}
	return emptyReachSnapshot
}

// AddSpec incrementally indexes one spec's reachability.
func (r *ReachIndex) AddSpec(s *workflow.Spec) error {
	g, cl, err := buildReachEntry(s)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snapshot()
	next := &reachSnapshot{
		graphs:   make(map[string]*graph.Graph, len(old.graphs)+1),
		closures: make(map[string]*graph.Closure, len(old.closures)+1),
	}
	for id, og := range old.graphs {
		next.graphs[id] = og
		next.closures[id] = old.closures[id]
	}
	next.graphs[s.ID] = g
	next.closures[s.ID] = cl
	r.snap.Store(next)
	return nil
}

// RemoveSpec drops a spec's reachability graph and closure.
func (r *ReachIndex) RemoveSpec(specID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snapshot()
	if old.graphs[specID] == nil {
		return
	}
	next := &reachSnapshot{
		graphs:   make(map[string]*graph.Graph, len(old.graphs)),
		closures: make(map[string]*graph.Closure, len(old.closures)),
	}
	for id, og := range old.graphs {
		if id == specID {
			continue
		}
		next.graphs[id] = og
		next.closures[id] = old.closures[id]
	}
	r.snap.Store(next)
}

// Reaches reports whether fromModule contributes (transitively) to
// toModule in the spec's full expansion. Unknown ids report false.
// Lock-free: reads the current snapshot.
func (r *ReachIndex) Reaches(specID, fromModule, toModule string) bool {
	snap := r.snapshot()
	g := snap.graphs[specID]
	if g == nil {
		return false
	}
	u, v := g.Lookup(fromModule), g.Lookup(toModule)
	if u == graph.Invalid || v == graph.Invalid {
		return false
	}
	return snap.closures[specID].Reach(u, v)
}

// Cache is a bounded, concurrency-safe result cache keyed by
// (user group, query key): users in the same group share privacy
// settings, so they can safely share materialized answers. It is backed
// by the same LRU core as the per-shard view cache, so eviction is
// recency-based rather than drop-all, and hit/miss counters feed the
// metrics endpoint.
type Cache struct {
	lru *LRU[string, any]
}

// NewCache returns a cache bounded to capacity entries (≥1).
func NewCache(capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("index: cache capacity %d < 1", capacity)
	}
	return &Cache{lru: NewLRU[string, any](capacity, 0)}, nil
}

func cacheKey(group, key string) string { return group + "\x00" + key }

// Get returns the cached value for (group, key).
func (c *Cache) Get(group, key string) (any, bool) {
	return c.lru.Get(cacheKey(group, key))
}

// Put stores a value for (group, key), evicting the least recently used
// entry when full.
func (c *Cache) Put(group, key string, v any) {
	c.lru.Put(cacheKey(group, key), v)
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses int) {
	h, m := c.lru.Stats()
	return int(h), int(m)
}
