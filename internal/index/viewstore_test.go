package index

import (
	"testing"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func storeFixture(t *testing.T) (*ViewStore, *exec.Execution) {
	t.Helper()
	s := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(s.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.ViewGrants[privacy.Registered] = []string{"W2"}
	pol.ViewGrants[privacy.Analyst] = []string{"W3", "W4"}
	vs := NewViewStore()
	if err := vs.RegisterSpec(s, pol, nil, []privacy.Level{privacy.Public, privacy.Registered, privacy.Analyst}); err != nil {
		t.Fatalf("RegisterSpec: %v", err)
	}
	e, err := exec.NewRunner(s, nil).Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := vs.Materialize(e); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	return vs, e
}

func TestViewStoreMaterializesPerLevel(t *testing.T) {
	vs, e := storeFixture(t)
	pub := vs.Get(e.SpecID, e.ID, privacy.Public)
	if pub == nil {
		t.Fatal("public view missing")
	}
	// Public access view = {W1}: 4 nodes (Fig. 2 shape).
	if len(pub.Nodes) != 4 {
		t.Fatalf("public view nodes = %v", pub.NodeIDs())
	}
	reg := vs.Get(e.SpecID, e.ID, privacy.Registered)
	if reg == nil || len(reg.Nodes) <= len(pub.Nodes) {
		t.Fatalf("registered view not finer: %v", reg.NodeIDs())
	}
	an := vs.Get(e.SpecID, e.ID, privacy.Analyst)
	if an == nil || len(an.Nodes) <= len(reg.Nodes) {
		t.Fatalf("analyst view not finer: %v", an.NodeIDs())
	}
	// Data masking applied: snps redacted below Owner.
	for _, it := range an.Items {
		if it.Attr == "snps" && !it.Redacted {
			t.Fatal("snps not masked in analyst view")
		}
	}
}

func TestViewStoreGetMisses(t *testing.T) {
	vs, e := storeFixture(t)
	if vs.Get("nope", e.ID, privacy.Public) != nil {
		t.Fatal("unknown spec returned a view")
	}
	if vs.Get(e.SpecID, "nope", privacy.Public) != nil {
		t.Fatal("unknown exec returned a view")
	}
	if vs.Get(e.SpecID, e.ID, privacy.Owner) != nil {
		t.Fatal("unmaterialized level returned a view")
	}
}

func TestViewStoreGetAtOrBelow(t *testing.T) {
	vs, e := storeFixture(t)
	// Owner not materialized: fall back to Analyst.
	v, lvl := vs.GetAtOrBelow(e.SpecID, e.ID, privacy.Owner)
	if v == nil || lvl != privacy.Analyst {
		t.Fatalf("fallback = %v at %v", v, lvl)
	}
	// Exact hit.
	v, lvl = vs.GetAtOrBelow(e.SpecID, e.ID, privacy.Registered)
	if v == nil || lvl != privacy.Registered {
		t.Fatalf("exact = %v at %v", v, lvl)
	}
}

// TestViewStoreGeneralizes: with ladders registered, materialized views
// coarsen protected values instead of redacting them — the same output
// the masked-snapshot path produces (repo-level parity tests compare
// the two byte-for-byte).
func TestViewStoreGeneralizes(t *testing.T) {
	s := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(s.ID)
	pol.DataLevels["snps"] = privacy.Owner
	pol.ViewGrants[privacy.Analyst] = []string{"W2", "W3", "W4"}
	hs := map[string]*datapriv.Hierarchy{
		"snps": {Attr: "snps", Levels: []map[exec.Value]exec.Value{
			{"rs1": "chr1"},
			{"chr1": "genome"},
		}},
	}
	vs := NewViewStore()
	if err := vs.RegisterSpec(s, pol, hs, []privacy.Level{privacy.Public, privacy.Analyst}); err != nil {
		t.Fatalf("RegisterSpec: %v", err)
	}
	e, err := exec.NewRunner(s, nil).Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := vs.Materialize(e); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	// Analyst is one level below Owner: one generalization step.
	an := vs.Get(e.SpecID, e.ID, privacy.Analyst)
	found := false
	for _, it := range an.Items {
		if it.Attr == "snps" {
			found = true
			if it.Redacted || it.Value != "chr1" {
				t.Fatalf("analyst snps = %+v, want generalized chr1", it)
			}
		}
	}
	if !found {
		t.Fatal("snps item missing from analyst view")
	}
	// Public is two levels below: the ladder tops out at genome.
	pub := vs.Get(e.SpecID, e.ID, privacy.Public)
	for _, it := range pub.Items {
		if it.Attr == "snps" && (it.Redacted || it.Value != "genome") {
			t.Fatalf("public snps = %+v, want generalized genome", it)
		}
	}
}

func TestViewStoreUnknownSpec(t *testing.T) {
	vs := NewViewStore()
	e := &exec.Execution{ID: "E", SpecID: "nope", Items: map[string]*exec.DataItem{}}
	if err := vs.Materialize(e); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestViewStoreSize(t *testing.T) {
	vs, _ := storeFixture(t)
	views, nodes := vs.Size()
	if views != 3 || nodes == 0 {
		t.Fatalf("Size = %d views, %d nodes", views, nodes)
	}
}

// workflowRandom builds a small random spec for index tests (kept here
// to avoid an import cycle with workload — hand-rolled, deterministic).
func workflowRandom(seed int64) (*workflow.Spec, error) {
	return workflow.NewBuilder(
		"rnd", "Random", "R").
		Workflow("R", "Root").
		Source("I", "x").
		Atomic("A1", "Parse Genome Data", []string{"x"}, []string{"y"}).
		Atomic("A2", "Align Sequence Reads", []string{"y"}, []string{"z"}).
		Sink("O", "z").
		Edge("I", "A1", "x").
		Edge("A1", "A2", "y").
		Edge("A2", "O", "z").
		Build()
}
