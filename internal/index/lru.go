package index

import (
	"sync"
	"sync/atomic"
	"time"
)

// LRU is a bounded, concurrency-safe cache with least-recently-used
// eviction and optional TTL expiry. It replaces the drop-all-at-cap
// strategy the repository's view cache started with: overflow now evicts
// only the coldest entry, so a hot working set survives churn.
//
// The read path is designed for many concurrent readers: Get takes only
// a read lock and records recency with an atomic logical-clock stamp, so
// hits never serialize on a write lock. Put (misses only, by definition)
// takes the write lock and, when full, evicts the smallest-stamp entry
// with a scan — O(capacity), paid only on insert into a full cache,
// which keeps the hot path cheap without a shared intrusive list.
type LRU[K comparable, V any] struct {
	mu       sync.RWMutex
	capacity int
	ttl      time.Duration // 0 = entries never expire
	entries  map[K]*lruEntry[V]
	clock    atomic.Int64
	hits     atomic.Int64 //provlint:counter
	misses   atomic.Int64 //provlint:counter
	// now is stubbed by tests to drive TTL expiry deterministically.
	now func() time.Time
}

type lruEntry[V any] struct {
	value   V
	stamp   atomic.Int64 // logical last-access time
	expires time.Time    // zero when no TTL
}

// NewLRU returns an LRU bounded to capacity entries (values < 1 are
// clamped to 1) whose entries expire ttl after insertion (0 disables
// expiry).
func NewLRU[K comparable, V any](capacity int, ttl time.Duration) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[K]*lruEntry[V], capacity),
		now:      time.Now,
	}
}

// Get returns the live cached value for key. Expired entries count as
// misses and are deleted lazily.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	var zero V
	if e == nil {
		c.misses.Add(1)
		return zero, false
	}
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.mu.Lock()
		// Re-check under the write lock: the slot may have been replaced
		// by a fresh Put since we looked.
		if cur := c.entries[key]; cur == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		c.misses.Add(1)
		return zero, false
	}
	e.stamp.Store(c.clock.Add(1))
	c.hits.Add(1)
	return e.value, true
}

// Peek returns the live cached value for key without touching the
// hit/miss counters or the recency stamp — for double-check paths that
// already counted their initial Get.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	c.mu.RLock()
	e := c.entries[key]
	c.mu.RUnlock()
	var zero V
	if e == nil || (!e.expires.IsZero() && c.now().After(e.expires)) {
		return zero, false
	}
	return e.value, true
}

// Put stores a value for key, evicting the least recently used entry
// when the cache is full (expired entries are reaped first).
func (c *LRU[K, V]) Put(key K, v V) {
	e := &lruEntry[V]{value: v}
	e.stamp.Store(c.clock.Add(1))
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists && len(c.entries) >= c.capacity {
		c.evictLocked()
	}
	c.entries[key] = e
}

// evictLocked removes every expired entry, and if none was expired, the
// entry with the oldest access stamp. Caller holds c.mu.
func (c *LRU[K, V]) evictLocked() {
	reaped := false
	if c.ttl > 0 {
		now := c.now()
		for k, e := range c.entries {
			if now.After(e.expires) {
				delete(c.entries, k)
				reaped = true
			}
		}
	}
	if reaped || len(c.entries) == 0 {
		return
	}
	var coldest K
	oldest := int64(0)
	first := true
	for k, e := range c.entries {
		if s := e.stamp.Load(); first || s < oldest {
			coldest, oldest, first = k, s, false
		}
	}
	delete(c.entries, coldest)
}

// Len returns the number of entries currently held (including any not
// yet reaped expired entries).
func (c *LRU[K, V]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Purge drops every entry, keeping the hit/miss counters.
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[K]*lruEntry[V], c.capacity)
}

// Stats returns cumulative (hits, misses).
func (c *LRU[K, V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
