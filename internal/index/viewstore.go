package index

import (
	"fmt"
	"sort"
	"sync"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/taint"
	"provpriv/internal/workflow"
)

// ViewStore materializes privacy views of executions — the Section 4
// alternative to hiding information on-the-fly: "standard … workflow
// management systems use various indexing structures or materialized
// views to speed up query processing." Each entry is an execution
// already collapsed to a level's access view and masked per the data
// policy, so privacy-aware reads become map lookups. The trade-off
// (space per level vs per-query collapse cost) is measured by
// BenchmarkMaterializedViews.
type ViewStore struct {
	mu    sync.RWMutex
	views map[viewKey]storedView
	specs map[string]*workflow.Spec
	pols  map[string]*privacy.Policy
	hiers map[string]*workflow.Hierarchy
	// engines holds each spec's policy-scoped taint/masking engine,
	// built once at registration instead of once per materialization.
	engines map[string]*taint.Engine
	// levels materialized per spec, sorted.
	levels map[string][]privacy.Level
}

// storedView keeps the masking report next to each materialized view so
// reads served from the store still feed the taint counters — without
// it, the fast path would flatline taint_items_*_total while rewrites
// happen at materialization time.
type storedView struct {
	view *exec.Execution
	rep  datapriv.Report
}

type viewKey struct {
	specID string
	execID string
	level  privacy.Level
}

// NewViewStore creates an empty store.
func NewViewStore() *ViewStore {
	return &ViewStore{
		views:   make(map[viewKey]storedView),
		specs:   make(map[string]*workflow.Spec),
		pols:    make(map[string]*privacy.Policy),
		hiers:   make(map[string]*workflow.Hierarchy),
		engines: make(map[string]*taint.Engine),
		levels:  make(map[string][]privacy.Level),
	}
}

// RegisterSpec declares a spec, its policy, its generalization ladders
// (nil for redaction-only masking) and the access levels whose views
// should be materialized for its executions. The ladders feed the
// spec's masking engine, so materialized views generalize protected
// values exactly like the on-the-fly snapshot path — the two serving
// paths must never diverge on masking output (the repo parity tests pin
// view == snapshot per level).
func (vs *ViewStore) RegisterSpec(s *workflow.Spec, pol *privacy.Policy, hs map[string]*datapriv.Hierarchy, levels []privacy.Level) error {
	h, err := workflow.NewHierarchy(s)
	if err != nil {
		return err
	}
	if pol == nil {
		pol = privacy.NewPolicy(s.ID)
	}
	ls := append([]privacy.Level(nil), levels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	vs.mu.Lock()
	defer vs.mu.Unlock()
	vs.specs[s.ID] = s
	vs.pols[s.ID] = pol
	vs.hiers[s.ID] = h
	vs.engines[s.ID] = datapriv.NewMasker(pol, hs).Engine()
	vs.levels[s.ID] = ls
	return nil
}

// Materialize computes and stores the per-level views of an execution.
func (vs *ViewStore) Materialize(e *exec.Execution) error {
	vs.mu.RLock()
	s := vs.specs[e.SpecID]
	pol := vs.pols[e.SpecID]
	h := vs.hiers[e.SpecID]
	engine := vs.engines[e.SpecID]
	levels := vs.levels[e.SpecID]
	vs.mu.RUnlock()
	if s == nil {
		return fmt.Errorf("index: viewstore: unknown spec %q", e.SpecID)
	}
	// One taint analysis of the full execution serves every level's
	// view: protected items hidden by a collapse are absent from the
	// view but still taint descendants, so analyzing the collapsed view
	// would miss them. The engine itself is policy-scoped and was built
	// at registration.
	taints := engine.Analyze(e)
	for _, lvl := range levels {
		prefix := pol.AccessView(h, lvl)
		collapsed, err := exec.Collapse(e, s, prefix)
		if err != nil {
			return err
		}
		masked, rep := engine.Apply(collapsed, lvl, taints)
		vs.mu.Lock()
		vs.views[viewKey{specID: e.SpecID, execID: e.ID, level: lvl}] = storedView{view: masked, rep: rep}
		vs.mu.Unlock()
	}
	return nil
}

// Get returns the materialized view of an execution at the given level
// (exact match), or nil when not materialized.
func (vs *ViewStore) Get(specID, execID string, level privacy.Level) *exec.Execution {
	v, _ := vs.GetWithReport(specID, execID, level)
	return v
}

// GetWithReport is Get plus the masking report recorded when the view
// was materialized, so serving paths can keep the taint counters moving
// even when they skip live masking.
func (vs *ViewStore) GetWithReport(specID, execID string, level privacy.Level) (*exec.Execution, datapriv.Report) {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	sv := vs.views[viewKey{specID: specID, execID: execID, level: level}]
	return sv.view, sv.rep
}

// GetAtOrBelow returns the view at the highest materialized level not
// exceeding the user's level — a safe (possibly coarser) substitute
// when the exact level is not materialized.
func (vs *ViewStore) GetAtOrBelow(specID, execID string, level privacy.Level) (*exec.Execution, privacy.Level) {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	levels := vs.levels[specID]
	for i := len(levels) - 1; i >= 0; i-- {
		if levels[i] <= level {
			if sv := vs.views[viewKey{specID: specID, execID: execID, level: levels[i]}]; sv.view != nil {
				return sv.view, levels[i]
			}
		}
	}
	return nil, 0
}

// Size returns the number of materialized views and their total node
// count (the space overhead the paper worries about).
func (vs *ViewStore) Size() (views, nodes int) {
	vs.mu.RLock()
	defer vs.mu.RUnlock()
	for _, sv := range vs.views {
		views++
		nodes += len(sv.view.Nodes)
	}
	return
}
