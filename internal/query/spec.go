package query

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/graph"
	"provpriv/internal/privacy"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
)

// Specification-level structural queries: the paper's query language
// applies to both executions and specifications ("structural queries
// that allow users to select sub-workflows based on structural
// properties"). The same MATCH/WHERE/RETURN syntax binds variables to
// MODULES of a view instead of execution nodes; `x ~> y` means "x's
// output can contribute to y" in the view graph.

// SpecAnswer is the result of evaluating a query against a spec view.
type SpecAnswer struct {
	SpecID   string
	Bindings []Binding // var -> module id
	// Modules is the union of bound module ids when RETURN nodes.
	Modules []string
	// Sub, when RETURN provenance(x) / downstream(x), holds per binding
	// the sub-view module ids upstream (resp. downstream) of x — the
	// spec-level analogue of provenance.
	Sub [][]string
}

// EvaluateSpec runs the query against a specification view. Phrases
// match module keywords (or "id:M6" literals); constraints hold on the
// view graph. The optional policy hides module-private modules from
// matching, mirroring execution-level semantics.
func EvaluateSpec(q *Query, v *workflow.View, pol *privacy.Policy, level privacy.Level) (*SpecAnswer, error) {
	g := v.Graph()
	cl, err := graph.NewClosure(g)
	if err != nil {
		return nil, err
	}
	cands := make(map[string][]string, len(q.Vars))
	for name, phrase := range q.Vars {
		var ms []string
		for _, fm := range v.Modules {
			m := fm.Module
			if pol != nil && !pol.CanSeeModule(level, m.ID) {
				continue
			}
			if specPhraseMatches(m, phrase) {
				ms = append(ms, m.ID)
			}
		}
		if len(ms) == 0 {
			return &SpecAnswer{SpecID: v.Spec.ID}, nil
		}
		sort.Strings(ms)
		cands[name] = ms
	}

	check := func(b Binding, c Constraint) bool {
		x, okx := b[c.X]
		y, oky := b[c.Y]
		if !okx || !oky {
			return true
		}
		u, w := g.Lookup(x), g.Lookup(y)
		var holds bool
		if c.Direct {
			holds = g.HasEdge(u, w)
		} else {
			holds = u != w && cl.Reach(u, w)
		}
		if c.Negate {
			return !holds
		}
		return holds
	}

	ans := &SpecAnswer{SpecID: v.Spec.ID}
	var assign func(i int, b Binding)
	assign = func(i int, b Binding) {
		if i == len(q.VarOrder) {
			cp := make(Binding, len(b))
			for k, vv := range b {
				cp[k] = vv
			}
			ans.Bindings = append(ans.Bindings, cp)
			return
		}
		name := q.VarOrder[i]
		for _, mid := range cands[name] {
			b[name] = mid
			ok := true
			for _, c := range q.Constraints {
				if !check(b, c) {
					ok = false
					break
				}
			}
			if ok {
				assign(i+1, b)
			}
			delete(b, name)
		}
	}
	assign(0, make(Binding))

	switch q.Return {
	case ReturnNodes:
		set := make(map[string]bool)
		for _, b := range ans.Bindings {
			for _, mid := range b {
				set[mid] = true
			}
		}
		for mid := range set {
			ans.Modules = append(ans.Modules, mid)
		}
		sort.Strings(ans.Modules)
	case ReturnProvenance, ReturnDownstream:
		for _, b := range ans.Bindings {
			mid := b[q.ReturnVar]
			node := g.Lookup(mid)
			var ids []graph.NodeID
			if q.Return == ReturnProvenance {
				ids = g.ReachingTo(node)
			} else {
				ids = g.ReachableFrom(node)
			}
			names := make([]string, 0, len(ids))
			for _, n := range ids {
				names = append(names, g.Name(n))
			}
			sort.Strings(names)
			ans.Sub = append(ans.Sub, names)
		}
	}
	return ans, nil
}

// Render prints the spec answer tersely for CLI output.
func (a *SpecAnswer) Render() string {
	out := fmt.Sprintf("spec %s: %d binding(s)\n", a.SpecID, len(a.Bindings))
	for i, b := range a.Bindings {
		vars := make([]string, 0, len(b))
		for v := range b {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		parts := make([]string, len(vars))
		for j, v := range vars {
			parts[j] = v + "=" + b[v]
		}
		out += fmt.Sprintf("  [%d] %s\n", i, strings.Join(parts, " "))
	}
	if len(a.Modules) > 0 {
		out += "  modules: " + strings.Join(a.Modules, ", ") + "\n"
	}
	for i, sub := range a.Sub {
		out += fmt.Sprintf("  sub[%d]: %s\n", i, strings.Join(sub, ", "))
	}
	return out
}

func specPhraseMatches(m *workflow.Module, phrase []string) bool {
	if len(phrase) == 1 && len(phrase[0]) > 3 && phrase[0][:3] == "id:" {
		return equalFold(m.ID, phrase[0][3:])
	}
	terms := make(map[string]bool)
	for _, k := range m.AllKeywords() {
		terms[search.Normalize(k)] = true
	}
	for _, p := range phrase {
		if !terms[p] {
			return false
		}
	}
	return true
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
