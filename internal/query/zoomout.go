package query

import (
	"fmt"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

// ZoomOut implements the evaluation strategy Section 4 sketches as an
// alternative to evaluating directly on the access view: "One approach
// would be to first construct a full answer, oblivious to the privacy
// requirement. If the result reveals sensitive information, we may
// gradually 'zoom-out' the view by hiding details of composite modules
// and sensitive data, until privacy is achieved."
//
// Starting from the finest prefix, the answer is computed and checked
// for leaks (module executions below the user's module-privacy level,
// workflows outside the access view); on a leak the deepest offending
// workflow is removed from the prefix and evaluation repeats. The
// returned Answer is the first leak-free one; Steps reports how many
// zoom-outs were needed — the cost the paper warns about ("this can be
// expensive as each zoom-out may involve a disk access").
type ZoomOutResult struct {
	Answer *Answer
	Prefix workflow.Prefix
	Steps  int
}

// ZoomOut evaluates q against e with the gradual zoom-out strategy.
func (ev *Evaluator) ZoomOut(q *Query, e *exec.Execution, pol *privacy.Policy, level privacy.Level) (*ZoomOutResult, error) {
	h, err := workflow.NewHierarchy(ev.Spec)
	if err != nil {
		return nil, err
	}
	access := pol.AccessView(h, level)
	prefix := workflow.FullPrefix(h)
	// One taint analysis of the full execution serves every zoom step:
	// item ids are stable under Collapse, so the set applies to each
	// successively coarser view.
	engine := datapriv.NewMasker(pol, nil).Engine()
	taints := engine.Analyze(e)

	steps := 0
	for {
		view, err := exec.Collapse(e, ev.Spec, prefix)
		if err != nil {
			return nil, err
		}
		masked, _ := engine.Apply(view, level, taints)
		pe, err := PrepareExec(masked)
		if err != nil {
			return nil, err
		}
		ans, err := ev.evaluate(q, pe, pol, level, steps > 0)
		if err != nil {
			return nil, err
		}
		offender := ev.findLeak(ans, masked, access, pol, level, prefix, h)
		if offender == "" {
			return &ZoomOutResult{Answer: ans, Prefix: prefix, Steps: steps}, nil
		}
		delete(prefix, offender)
		// Removing a workflow orphans its descendants: drop them too so
		// the prefix stays valid.
		for _, wid := range h.All() {
			if prefix.Contains(wid) && wid != h.Root && !prefix.Contains(h.Parent(wid)) {
				delete(prefix, wid)
			}
		}
		steps++
		if steps > len(h.All()) {
			return nil, fmt.Errorf("query: zoom-out did not converge")
		}
	}
}

// findLeak returns the deepest workflow whose detail the current view
// exposes but the user may not see, or "" when the view is safe. Since
// the paper defines query answers as views of the flow, the whole
// evaluation view is considered published — not just the bound nodes —
// so a leak is: any node executing inside a workflow outside the access
// view, or any visible execution of a module below the user's
// module-privacy level.
func (ev *Evaluator) findLeak(ans *Answer, view *exec.Execution, access workflow.Prefix, pol *privacy.Policy, level privacy.Level, prefix workflow.Prefix, h *workflow.Hierarchy) string {
	_ = ans
	var worst string
	worstDepth := -1
	for _, n := range view.Nodes {
		// Module privacy: an exposed execution of a protected module
		// forces the enclosing workflow shut.
		if n.Module != "" && !pol.CanSeeModule(level, n.Module) {
			if wid := ev.workflowOf(n.Module); wid != "" && prefix.Contains(wid) && wid != h.Root {
				if d := h.Depth(wid); d > worstDepth {
					worst, worstDepth = wid, d
				}
			}
		}
		// Access view: nodes inside workflows beyond the user's view.
		for _, f := range n.Frames {
			if !access.Contains(f.Sub) && prefix.Contains(f.Sub) {
				if d := h.Depth(f.Sub); d > worstDepth {
					worst, worstDepth = f.Sub, d
				}
			}
		}
	}
	return worst
}

func (ev *Evaluator) workflowOf(moduleID string) string {
	_, w := ev.Spec.FindModule(moduleID)
	if w == nil {
		return ""
	}
	return w.ID
}
