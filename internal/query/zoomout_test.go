package query

import (
	"testing"

	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func TestZoomOutConvergesToAccessView(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	pol := privacy.NewPolicy(spec.ID)
	pol.ViewGrants[privacy.Registered] = []string{"W2"} // W3, W4 hidden
	q, _ := Parse(`MATCH a = "consult external"`)
	res, err := ev.ZoomOut(q, e, pol, privacy.Registered)
	if err != nil {
		t.Fatalf("ZoomOut: %v", err)
	}
	if res.Steps == 0 {
		t.Fatal("expected at least one zoom-out step")
	}
	// The final prefix must be within the access view.
	h, _ := workflow.NewHierarchy(spec)
	access := pol.AccessView(h, privacy.Registered)
	for wid := range res.Prefix {
		if !access.Contains(wid) {
			t.Fatalf("final prefix %v exceeds access view %v", res.Prefix.IDs(), access.IDs())
		}
	}
	// M4 is visible (W2 granted) and matches.
	if len(res.Answer.Bindings) != 1 || res.Answer.Bindings[0]["a"] != "S3:M4" {
		t.Fatalf("bindings = %v", res.Answer.Bindings)
	}
}

func TestZoomOutNoLeakNoSteps(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	pol := privacy.NewPolicy(spec.ID)
	h, _ := workflow.NewHierarchy(spec)
	for _, w := range h.All() {
		pol.ViewGrants[privacy.Public] = append(pol.ViewGrants[privacy.Public], w)
	}
	q, _ := Parse(`MATCH a = "expand snp"`)
	res, err := ev.ZoomOut(q, e, pol, privacy.Public)
	if err != nil {
		t.Fatalf("ZoomOut: %v", err)
	}
	if res.Steps != 0 {
		t.Fatalf("steps = %d, want 0 for all-access user", res.Steps)
	}
	if len(res.Answer.Bindings) != 1 {
		t.Fatalf("bindings = %v", res.Answer.Bindings)
	}
}

func TestZoomOutModulePrivacyForcesCoarsening(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	pol := privacy.NewPolicy(spec.ID)
	h, _ := workflow.NewHierarchy(spec)
	for _, w := range h.All() {
		pol.ViewGrants[privacy.Public] = append(pol.ViewGrants[privacy.Public], w)
	}
	pol.ModuleLevels["M6"] = privacy.Owner // Query OMIM protected
	// A broad query whose full answer would expose M6's execution.
	q, _ := Parse(`MATCH a = "query" RETURN nodes`)
	res, err := ev.ZoomOut(q, e, pol, privacy.Public)
	if err != nil {
		t.Fatalf("ZoomOut: %v", err)
	}
	if res.Steps == 0 {
		t.Fatal("expected zoom-out to hide the protected execution")
	}
	// W4 (containing M6) must be closed in the final prefix.
	if res.Prefix.Contains("W4") {
		t.Fatalf("final prefix %v still exposes W4", res.Prefix.IDs())
	}
	for _, n := range res.Answer.Nodes {
		if n == "S5:M6" {
			t.Fatal("protected execution still in answer")
		}
	}
}

// Agreement: the zoom-out strategy and the direct access-view strategy
// produce the same bindings whenever the only constraint is the access
// view (no module privacy), since both end at the access view.
func TestZoomOutAgreesWithDirectEvaluation(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	pol := privacy.NewPolicy(spec.ID)
	pol.ViewGrants[privacy.Registered] = []string{"W2", "W4"}
	queries := []string{
		`MATCH a = "expand snp"`,
		`MATCH a = "query omim"`,
		`MATCH a = "combine disorder"`,
		`MATCH a = "evaluate disorder"`,
	}
	for _, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("Parse(%s): %v", qs, err)
		}
		direct, err := ev.EvaluateWithPrivacy(q, e, pol, privacy.Registered)
		if err != nil {
			t.Fatalf("direct %s: %v", qs, err)
		}
		zoomed, err := ev.ZoomOut(q, e, pol, privacy.Registered)
		if err != nil {
			t.Fatalf("zoom %s: %v", qs, err)
		}
		if len(direct.Bindings) != len(zoomed.Answer.Bindings) {
			t.Fatalf("%s: direct %v vs zoom-out %v", qs, direct.Bindings, zoomed.Answer.Bindings)
		}
		for i := range direct.Bindings {
			for k, v := range direct.Bindings[i] {
				if zoomed.Answer.Bindings[i][k] != v {
					t.Fatalf("%s: binding mismatch %v vs %v", qs, direct.Bindings[i], zoomed.Answer.Bindings[i])
				}
			}
		}
	}
}
