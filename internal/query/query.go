// Package query implements structural queries over workflow executions
// (Section 4 of the CIDR 2011 paper; in the spirit of BP-QL, Beeri et
// al., cited as [1]): selecting module executions by keyword, relating
// them by direct dataflow or by precedence ("Expand SNP Set was executed
// before Query OMIM"), and returning provenance for a selected variable.
//
// Queries are written in a small textual language:
//
//	MATCH a = "expand snp", b = "query omim"
//	WHERE a ~> b
//	RETURN provenance(b)
//
// Constraints: `x -> y` requires a direct dataflow edge between the
// matched executions; `x ~> y` requires a path (x executed before y and
// contributed to it). RETURN clauses: provenance(x), downstream(x),
// nodes, bindings.
//
// Privacy-controlled semantics (Section 4): EvaluateWithPrivacy first
// collapses the execution to the user's access view (coarser composite
// executions replace hidden detail — the "zoom-out"), masks data values
// per the data-privacy policy, and refuses to match modules protected by
// module privacy.
package query

import (
	"fmt"
	"sort"
	"strings"

	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/graph"
	"provpriv/internal/privacy"
	"provpriv/internal/search"
	"provpriv/internal/workflow"
)

// ReturnKind selects what a query returns per match.
type ReturnKind int

const (
	// ReturnBindings returns just the variable bindings.
	ReturnBindings ReturnKind = iota
	// ReturnNodes returns the matched nodes of all bindings.
	ReturnNodes
	// ReturnProvenance returns the provenance sub-execution of the
	// item(s) produced by the designated variable's node.
	ReturnProvenance
	// ReturnDownstream returns the data items downstream of the
	// designated variable's node outputs.
	ReturnDownstream
)

// Constraint relates two variables.
type Constraint struct {
	X, Y   string
	Direct bool // true: edge; false: path (precedence)
	Negate bool // true: the relation must NOT hold
}

// Query is a parsed structural query.
type Query struct {
	Vars        map[string][]string // var -> phrase tokens
	VarOrder    []string
	Constraints []Constraint
	Return      ReturnKind
	ReturnVar   string
}

// Binding assigns each variable an execution node id.
type Binding map[string]string

// Answer is the result of evaluating a query against one execution.
type Answer struct {
	ExecutionID string
	Bindings    []Binding
	// Provenance, per binding, when Return == ReturnProvenance.
	Provenance []*exec.Execution
	// Downstream item ids, per binding, when Return == ReturnDownstream.
	Downstream [][]string
	// Nodes is the union of bound nodes when Return == ReturnNodes.
	Nodes []string
	// ZoomedOut reports that privacy collapsed the execution before
	// evaluation.
	ZoomedOut bool
}

// Evaluator evaluates structural queries against executions of a spec.
type Evaluator struct {
	Spec *workflow.Spec
}

// NewEvaluator returns an evaluator for the spec.
func NewEvaluator(s *workflow.Spec) *Evaluator { return &Evaluator{Spec: s} }

// matchingNodes returns execution nodes whose module matches the
// phrase. A phrase of the form ["id:M6"] matches by module id instead
// of by keywords. Only nodes that represent a module execution
// participate (atomic and begin nodes, plus collapsed composite nodes
// in views).
func (ev *Evaluator) matchingNodes(e *exec.Execution, phrase []string, pol *privacy.Policy, level privacy.Level) []string {
	var idLiteral string
	if len(phrase) == 1 && strings.HasPrefix(phrase[0], "id:") {
		idLiteral = phrase[0][len("id:"):]
	}
	var out []string
	for _, n := range e.Nodes {
		switch n.Kind {
		case exec.AtomicNode, exec.BeginNode:
		default:
			continue
		}
		if n.Module == "" {
			continue
		}
		m, _ := ev.Spec.FindModule(n.Module)
		if m == nil {
			continue
		}
		if pol != nil && !pol.CanSeeModule(level, m.ID) {
			continue
		}
		if idLiteral != "" {
			if strings.EqualFold(m.ID, idLiteral) {
				out = append(out, n.ID)
			}
			continue
		}
		if phraseMatchesModule(m, phrase) {
			out = append(out, n.ID)
		}
	}
	sort.Strings(out)
	return out
}

func phraseMatchesModule(m *workflow.Module, phrase []string) bool {
	terms := make(map[string]bool)
	for _, k := range m.AllKeywords() {
		terms[search.Normalize(k)] = true
	}
	for _, p := range phrase {
		if !terms[p] {
			return false
		}
	}
	return true
}

// PreparedExec bundles an execution with its derived graph, transitive
// closure and id-addressed indexes, all built once. The execution MUST
// be immutable for the lifetime of the PreparedExec: internal/repo
// builds one per cached masked snapshot and shares it between
// arbitrarily many concurrent evaluations, which is sound only because
// neither the evaluator nor any other read path mutates the execution,
// the graph, the closure or the index maps.
//
// The indexes exist because exec.Execution deliberately lost its lazily
// memoized node index in PR 4 (memoizing inside a shared immutable
// value races); Execution.Node is a linear scan by contract. Building
// the maps here — at snapshot-fill time, exactly once — restores O(1)
// id resolution on every warm read without reintroducing hidden mutable
// state into the shared execution.
type PreparedExec struct {
	Exec *exec.Execution
	g    *graph.Graph
	cl   *graph.Closure

	// nodeByID resolves node ids without Execution.Node's linear scan.
	nodeByID map[string]*exec.Node
	// producedBy maps a node id to the sorted ids of the items it
	// produced (the per-binding scan of ReturnProvenance/ReturnDownstream
	// made O(1)).
	producedBy map[string][]string
	// flowsFrom maps a node id to the sorted distinct item ids on its
	// outgoing edges (the relay-node fallback of the same return paths).
	flowsFrom map[string][]string
}

// PrepareExec derives the graph, closure and id indexes of an
// (immutable) execution so repeated evaluations skip every rebuild.
func PrepareExec(e *exec.Execution) (*PreparedExec, error) {
	g := e.Graph()
	cl, err := graph.NewClosure(g)
	if err != nil {
		return nil, fmt.Errorf("query: execution graph: %w", err)
	}
	pe := &PreparedExec{
		Exec:       e,
		g:          g,
		cl:         cl,
		nodeByID:   make(map[string]*exec.Node, len(e.Nodes)),
		producedBy: make(map[string][]string),
		flowsFrom:  make(map[string][]string),
	}
	for _, n := range e.Nodes {
		pe.nodeByID[n.ID] = n
	}
	for id, it := range e.Items {
		pe.producedBy[it.Producer] = append(pe.producedBy[it.Producer], id)
	}
	for _, ids := range pe.producedBy {
		sort.Strings(ids)
	}
	seen := make(map[string]map[string]bool)
	for _, ed := range e.Edges {
		set := seen[ed.From]
		if set == nil {
			set = make(map[string]bool)
			seen[ed.From] = set
		}
		for _, it := range ed.Items {
			if !set[it] {
				set[it] = true
				pe.flowsFrom[ed.From] = append(pe.flowsFrom[ed.From], it)
			}
		}
	}
	for _, ids := range pe.flowsFrom {
		sort.Strings(ids)
	}
	return pe, nil
}

// Graph exposes the pre-derived graph for read-only reuse (e.g.
// exec.ProvenanceIn on the warm serving path).
func (pe *PreparedExec) Graph() *graph.Graph { return pe.g }

// Node resolves a node id through the prebuilt index — the O(1)
// replacement for Execution.Node on warm request paths.
func (pe *PreparedExec) Node(id string) *exec.Node { return pe.nodeByID[id] }

// returnItems resolves the items a return clause materializes for a
// bound node: the items it produced, or — for relay (begin/collapsed)
// nodes that produce nothing — the items on its outgoing edges.
func (pe *PreparedExec) returnItems(nodeID string) []string {
	if items := pe.producedBy[nodeID]; len(items) > 0 {
		return items
	}
	return pe.flowsFrom[nodeID]
}

// Evaluate runs the query against an execution with no privacy
// constraints.
func (ev *Evaluator) Evaluate(q *Query, e *exec.Execution) (*Answer, error) {
	pe, err := PrepareExec(e)
	if err != nil {
		return nil, err
	}
	return ev.evaluate(q, pe, nil, 0, false)
}

// EvaluateWithPrivacy runs the query under the paper's privacy-
// controlled semantics for a user at the given level: the execution is
// collapsed to the user's access view, values are masked per the data
// policy, and module-private executions cannot be matched.
func (ev *Evaluator) EvaluateWithPrivacy(q *Query, e *exec.Execution, pol *privacy.Policy, level privacy.Level) (*Answer, error) {
	h, err := workflow.NewHierarchy(ev.Spec)
	if err != nil {
		return nil, err
	}
	prefix := pol.AccessView(h, level)
	collapsed, err := exec.Collapse(e, ev.Spec, prefix)
	if err != nil {
		return nil, err
	}
	// Taint is analyzed on the full execution (protected items inside
	// collapsed composites are gone from the view but still taint their
	// descendants' trace strings), then applied to the view.
	masker := datapriv.NewMasker(pol, nil)
	masked, _ := masker.MaskView(e, collapsed, level)
	zoomed := len(prefix) < len(h.All())
	pe, err := PrepareExec(masked)
	if err != nil {
		return nil, err
	}
	return ev.evaluate(q, pe, pol, level, zoomed)
}

// EvaluatePrepared runs the query against an execution view that the
// caller has already collapsed to the user's access view and
// taint-masked for the user's level (internal/repo does this through
// its per-shard caches, so the collapse and taint analysis are paid
// once per execution, not per query). The view is treated as strictly
// read-only. zoomedOut flags whether the view is coarser than the full
// expansion.
func (ev *Evaluator) EvaluatePrepared(q *Query, masked *exec.Execution, pol *privacy.Policy, level privacy.Level, zoomedOut bool) (*Answer, error) {
	pe, err := PrepareExec(masked)
	if err != nil {
		return nil, err
	}
	return ev.evaluate(q, pe, pol, level, zoomedOut)
}

// EvaluateOn is EvaluatePrepared against a pre-derived PreparedExec:
// the fully amortized warm path — no graph or closure rebuild, no
// masking, only the match itself.
func (ev *Evaluator) EvaluateOn(q *Query, pe *PreparedExec, pol *privacy.Policy, level privacy.Level, zoomedOut bool) (*Answer, error) {
	return ev.evaluate(q, pe, pol, level, zoomedOut)
}

func (ev *Evaluator) evaluate(q *Query, pe *PreparedExec, pol *privacy.Policy, level privacy.Level, zoomed bool) (*Answer, error) {
	ans, err := ev.MatchOn(q, pe, pol, level, zoomed)
	if err != nil {
		return nil, err
	}
	if err := ev.MaterializeReturn(q, ans, pe); err != nil {
		return nil, err
	}
	return ans, nil
}

// MatchOn runs only the binding phase of a query — candidate selection
// and constraint backtracking — leaving the return clause (provenance /
// downstream sub-executions) unmaterialized. Callers that need to know
// *whether and where* a query matches, but will discard most answers
// (QueryAllPage windows by execution), use this to avoid building
// sub-executions that are thrown away; MaterializeReturn completes the
// surviving answers.
func (ev *Evaluator) MatchOn(q *Query, pe *PreparedExec, pol *privacy.Policy, level privacy.Level, zoomed bool) (*Answer, error) {
	if len(q.Vars) == 0 {
		return nil, fmt.Errorf("query: no variables")
	}
	e, g, cl := pe.Exec, pe.g, pe.cl
	// Candidates per variable.
	cands := make(map[string][]string, len(q.Vars))
	for v, phrase := range q.Vars {
		ns := ev.matchingNodes(e, phrase, pol, level)
		if len(ns) == 0 {
			return &Answer{ExecutionID: e.ID, ZoomedOut: zoomed}, nil
		}
		cands[v] = ns
	}
	check := func(b Binding, c Constraint) bool {
		x, okx := b[c.X]
		y, oky := b[c.Y]
		if !okx || !oky {
			return true // defer until both bound
		}
		u, v := g.Lookup(x), g.Lookup(y)
		var holds bool
		if c.Direct {
			holds = g.HasEdge(u, v)
		} else {
			holds = u != v && cl.Reach(u, v)
		}
		if c.Negate {
			return !holds
		}
		return holds
	}

	ans := &Answer{ExecutionID: e.ID, ZoomedOut: zoomed}
	// Backtracking over variables in declaration order.
	var assign func(i int, b Binding)
	assign = func(i int, b Binding) {
		if i == len(q.VarOrder) {
			cp := make(Binding, len(b))
			for k, v := range b {
				cp[k] = v
			}
			ans.Bindings = append(ans.Bindings, cp)
			return
		}
		v := q.VarOrder[i]
		for _, node := range cands[v] {
			b[v] = node
			ok := true
			for _, c := range q.Constraints {
				if !check(b, c) {
					ok = false
					break
				}
			}
			if ok {
				assign(i+1, b)
			}
			delete(b, v)
		}
	}
	assign(0, make(Binding))
	return ans, nil
}

// MaterializeReturn completes an answer produced by MatchOn: it fills
// in the return clause (nodes, provenance sub-executions, downstream
// item sets) against the same prepared execution. Item resolution per
// binding goes through the PreparedExec indexes, so no step here is
// linear in execution size beyond the sub-graphs actually returned.
func (ev *Evaluator) MaterializeReturn(q *Query, ans *Answer, pe *PreparedExec) error {
	e, g := pe.Exec, pe.g
	switch q.Return {
	case ReturnNodes:
		set := make(map[string]bool)
		for _, b := range ans.Bindings {
			for _, n := range b {
				set[n] = true
			}
		}
		for n := range set {
			ans.Nodes = append(ans.Nodes, n)
		}
		sort.Strings(ans.Nodes)
	case ReturnProvenance:
		for _, b := range ans.Bindings {
			items := pe.returnItems(b[q.ReturnVar])
			if len(items) == 0 {
				continue
			}
			p, err := exec.ProvenanceIn(e, g, items[0])
			if err != nil {
				return err
			}
			ans.Provenance = append(ans.Provenance, p)
		}
	case ReturnDownstream:
		for _, b := range ans.Bindings {
			set := make(map[string]bool)
			for _, it := range pe.returnItems(b[q.ReturnVar]) {
				down, err := exec.DownstreamIn(e, g, it)
				if err != nil {
					return err
				}
				for _, d := range down {
					set[d] = true
				}
			}
			var ds []string
			for d := range set {
				ds = append(ds, d)
			}
			sort.Strings(ds)
			ans.Downstream = append(ans.Downstream, ds)
		}
	}
	return nil
}

// producedBy and flowingFrom are the linear-scan reference
// implementations of the PreparedExec return-item indexes; they are kept
// as the executable spec TestPreparedExecIndexParity checks against.
func producedBy(e *exec.Execution, nodeID string) []string {
	var out []string
	for id, it := range e.Items {
		if it.Producer == nodeID {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func flowingFrom(e *exec.Execution, nodeID string) []string {
	set := make(map[string]bool)
	for _, ed := range e.Edges {
		if ed.From == nodeID {
			for _, it := range ed.Items {
				set[it] = true
			}
		}
	}
	var out []string
	for it := range set {
		out = append(out, it)
	}
	sort.Strings(out)
	return out
}

// Render renders an answer tersely for CLI output.
func (a *Answer) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution %s: %d binding(s)", a.ExecutionID, len(a.Bindings))
	if a.ZoomedOut {
		b.WriteString(" (zoomed out)")
	}
	b.WriteByte('\n')
	for i, bind := range a.Bindings {
		vars := make([]string, 0, len(bind))
		for v := range bind {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		parts := make([]string, len(vars))
		for j, v := range vars {
			parts[j] = v + "=" + bind[v]
		}
		fmt.Fprintf(&b, "  [%d] %s\n", i, strings.Join(parts, " "))
	}
	return b.String()
}
