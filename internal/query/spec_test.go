package query

import (
	"strings"
	"testing"

	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func fullDiseaseView(t *testing.T) *workflow.View {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	h, _ := workflow.NewHierarchy(spec)
	v, err := workflow.Expand(spec, workflow.FullPrefix(h))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return v
}

func TestEvaluateSpecBasic(t *testing.T) {
	v := fullDiseaseView(t)
	q, _ := Parse(`MATCH a = "expand snp", b = "query omim" WHERE a ~> b`)
	ans, err := EvaluateSpec(q, v, nil, 0)
	if err != nil {
		t.Fatalf("EvaluateSpec: %v", err)
	}
	if len(ans.Bindings) != 1 {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
	if ans.Bindings[0]["a"] != "M3" || ans.Bindings[0]["b"] != "M6" {
		t.Fatalf("binding = %v", ans.Bindings[0])
	}
}

func TestEvaluateSpecNegation(t *testing.T) {
	// The famous non-path: M10 does not reach M14 in the spec.
	v := fullDiseaseView(t)
	q, _ := Parse(`MATCH a = "id:M10", b = "id:M14" WHERE a !~> b`)
	ans, err := EvaluateSpec(q, v, nil, 0)
	if err != nil {
		t.Fatalf("EvaluateSpec: %v", err)
	}
	if len(ans.Bindings) != 1 {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
}

func TestEvaluateSpecProvenanceAndDownstream(t *testing.T) {
	v := fullDiseaseView(t)
	q, _ := Parse(`MATCH a = "id:M8" RETURN provenance(a)`)
	ans, err := EvaluateSpec(q, v, nil, 0)
	if err != nil {
		t.Fatalf("EvaluateSpec: %v", err)
	}
	if len(ans.Sub) != 1 {
		t.Fatalf("sub views = %d", len(ans.Sub))
	}
	up := strings.Join(ans.Sub[0], ",")
	for _, want := range []string{"I", "M3", "M5", "M6", "M7", "M8"} {
		if !strings.Contains(up, want) {
			t.Fatalf("upstream of M8 = %v, missing %s", ans.Sub[0], want)
		}
	}
	if strings.Contains(up, "M9") {
		t.Fatalf("upstream of M8 contains downstream module: %v", ans.Sub[0])
	}
	q2, _ := Parse(`MATCH a = "id:M8" RETURN downstream(a)`)
	ans2, _ := EvaluateSpec(q2, v, nil, 0)
	down := strings.Join(ans2.Sub[0], ",")
	for _, want := range []string{"M8", "M9", "M15", "O"} {
		if !strings.Contains(down, want) {
			t.Fatalf("downstream of M8 = %v, missing %s", ans2.Sub[0], want)
		}
	}
}

func TestEvaluateSpecModulePrivacy(t *testing.T) {
	v := fullDiseaseView(t)
	pol := privacy.NewPolicy(v.Spec.ID)
	pol.ModuleLevels["M6"] = privacy.Owner
	q, _ := Parse(`MATCH b = "query omim"`)
	ans, err := EvaluateSpec(q, v, pol, privacy.Public)
	if err != nil {
		t.Fatalf("EvaluateSpec: %v", err)
	}
	if len(ans.Bindings) != 0 {
		t.Fatalf("private module matched: %v", ans.Bindings)
	}
	ansOwner, _ := EvaluateSpec(q, v, pol, privacy.Owner)
	if len(ansOwner.Bindings) != 1 {
		t.Fatalf("owner bindings = %v", ansOwner.Bindings)
	}
}

func TestEvaluateSpecReturnNodes(t *testing.T) {
	v := fullDiseaseView(t)
	q, _ := Parse(`MATCH a = "search" RETURN nodes`)
	ans, err := EvaluateSpec(q, v, nil, 0)
	if err != nil {
		t.Fatalf("EvaluateSpec: %v", err)
	}
	if strings.Join(ans.Modules, ",") != "M10,M12" {
		t.Fatalf("modules = %v", ans.Modules)
	}
}

// Spec-level and execution-level answers agree on the full expansion:
// a spec binding (module ids) corresponds 1:1 to an execution binding.
func TestSpecAndExecutionAgreement(t *testing.T) {
	spec := workflow.DiseaseSusceptibility()
	v := fullDiseaseView(t)
	_, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	queries := []string{
		`MATCH a = "generate database", b = "combine disorder" WHERE a ~> b`,
		`MATCH a = "search", b = "id:M15" WHERE a ~> b`,
		`MATCH a = "reformat", b = "summarize" WHERE a -> b`,
	}
	for _, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		sAns, err := EvaluateSpec(q, v, nil, 0)
		if err != nil {
			t.Fatalf("EvaluateSpec: %v", err)
		}
		eAns, err := ev.Evaluate(q, e)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		if len(sAns.Bindings) != len(eAns.Bindings) {
			t.Fatalf("%s: spec %d bindings vs exec %d", qs, len(sAns.Bindings), len(eAns.Bindings))
		}
	}
}

func TestSpecAnswerRender(t *testing.T) {
	v := fullDiseaseView(t)
	q, _ := Parse(`MATCH a = "search" RETURN nodes`)
	ans, _ := EvaluateSpec(q, v, nil, 0)
	out := ans.Render()
	if !strings.Contains(out, "modules: M10, M12") || !strings.Contains(out, "2 binding(s)") {
		t.Fatalf("Render:\n%s", out)
	}
}
