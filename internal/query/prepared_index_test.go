package query

import (
	"fmt"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/workflow"
	"provpriv/internal/workload"
)

// TestPreparedExecIndexParity pins the PreparedExec id indexes to the
// linear-scan reference implementations they replaced on the warm path:
// Execution.Node for node resolution, and the producedBy/flowingFrom
// free functions (kept in this package as the executable spec) for
// return-item resolution. Any divergence is a bug in the index build.
func TestPreparedExecIndexParity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s, err := workload.RandomSpec(workload.SpecConfig{
			Seed: seed, ID: fmt.Sprintf("s%d", seed), Depth: 3, Fanout: 2, Chain: 4, SkipProb: 0.2,
		})
		if err != nil {
			t.Fatalf("RandomSpec: %v", err)
		}
		e, err := exec.NewRunner(s, nil).Run("E", workload.RandomInputs(s, seed))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		pe, err := PrepareExec(e)
		if err != nil {
			t.Fatalf("PrepareExec: %v", err)
		}
		for _, n := range e.Nodes {
			if got := pe.Node(n.ID); got != n {
				t.Fatalf("seed %d: pe.Node(%s) = %p, want %p", seed, n.ID, got, n)
			}
			if got, want := fmt.Sprint(pe.producedBy[n.ID]), fmt.Sprint(producedBy(e, n.ID)); got != want {
				t.Fatalf("seed %d: producedBy(%s): %s != %s", seed, n.ID, got, want)
			}
			if got, want := fmt.Sprint(pe.flowsFrom[n.ID]), fmt.Sprint(flowingFrom(e, n.ID)); got != want {
				t.Fatalf("seed %d: flowsFrom(%s): %s != %s", seed, n.ID, got, want)
			}
			ref := producedBy(e, n.ID)
			if len(ref) == 0 {
				ref = flowingFrom(e, n.ID)
			}
			if got := fmt.Sprint(pe.returnItems(n.ID)); got != fmt.Sprint(ref) {
				t.Fatalf("seed %d: returnItems(%s): %s != %s", seed, n.ID, got, ref)
			}
		}
		if pe.Node("no-such-node") != nil {
			t.Fatal("unknown id resolved")
		}
	}
}

// TestPreparedExecIndexOnDiseaseExample covers the fixture spec, whose
// begin/end composite relay nodes exercise the flowsFrom fallback.
func TestPreparedExecIndexOnDiseaseExample(t *testing.T) {
	s := workflow.DiseaseSusceptibility()
	e, err := exec.NewRunner(s, nil).Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	pe, err := PrepareExec(e)
	if err != nil {
		t.Fatalf("PrepareExec: %v", err)
	}
	relays := 0
	for _, n := range e.Nodes {
		if n.Kind == exec.BeginNode && len(pe.producedBy[n.ID]) == 0 && len(pe.flowsFrom[n.ID]) > 0 {
			relays++
		}
	}
	if relays == 0 {
		t.Fatal("no relay node exercised the flowsFrom fallback")
	}
}
