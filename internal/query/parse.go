package query

import (
	"fmt"
	"strings"

	"provpriv/internal/search"
)

// Parse parses the textual query language:
//
//	MATCH <var> = "<phrase>" {, <var> = "<phrase>"}
//	[WHERE <var> (->|~>) <var> {, <var> (->|~>) <var>}]
//	[RETURN provenance(<var>) | downstream(<var>) | nodes | bindings]
//
// Keywords are case-insensitive. The default RETURN clause is bindings.
func Parse(s string) (*Query, error) {
	q := &Query{Vars: make(map[string][]string), Return: ReturnBindings}
	rest := strings.TrimSpace(s)
	upper := strings.ToUpper(rest)
	if !strings.HasPrefix(upper, "MATCH") {
		return nil, fmt.Errorf("query: expected MATCH, got %q", firstWord(rest))
	}
	rest = strings.TrimSpace(rest[len("MATCH"):])

	matchPart, wherePart, returnPart, err := splitClauses(rest)
	if err != nil {
		return nil, err
	}

	for _, decl := range splitTopLevel(matchPart) {
		decl = strings.TrimSpace(decl)
		if decl == "" {
			continue
		}
		eq := strings.Index(decl, "=")
		if eq < 0 {
			return nil, fmt.Errorf("query: bad declaration %q (want var = \"phrase\")", decl)
		}
		name := strings.TrimSpace(decl[:eq])
		if !isIdent(name) {
			return nil, fmt.Errorf("query: bad variable name %q", name)
		}
		phrase := strings.TrimSpace(decl[eq+1:])
		if len(phrase) < 2 || phrase[0] != '"' || phrase[len(phrase)-1] != '"' {
			return nil, fmt.Errorf("query: phrase for %s must be quoted", name)
		}
		toks := search.Tokenize(phrase[1 : len(phrase)-1])
		if len(toks) == 0 {
			return nil, fmt.Errorf("query: empty phrase for %s", name)
		}
		if _, dup := q.Vars[name]; dup {
			return nil, fmt.Errorf("query: duplicate variable %s", name)
		}
		q.Vars[name] = toks
		q.VarOrder = append(q.VarOrder, name)
	}
	if len(q.Vars) == 0 {
		return nil, fmt.Errorf("query: MATCH clause declares no variables")
	}

	if wherePart != "" {
		for _, cons := range strings.Split(wherePart, ",") {
			cons = strings.TrimSpace(cons)
			if cons == "" {
				continue
			}
			var direct, negate bool
			var sep string
			switch {
			case strings.Contains(cons, "!~>"):
				sep, direct, negate = "!~>", false, true
			case strings.Contains(cons, "!->"):
				sep, direct, negate = "!->", true, true
			case strings.Contains(cons, "~>"):
				sep, direct = "~>", false
			case strings.Contains(cons, "->"):
				sep, direct = "->", true
			default:
				return nil, fmt.Errorf("query: bad constraint %q (want x -> y, x ~> y, x !-> y or x !~> y)", cons)
			}
			parts := strings.SplitN(cons, sep, 2)
			x, y := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			if _, ok := q.Vars[x]; !ok {
				return nil, fmt.Errorf("query: constraint references undeclared variable %q", x)
			}
			if _, ok := q.Vars[y]; !ok {
				return nil, fmt.Errorf("query: constraint references undeclared variable %q", y)
			}
			q.Constraints = append(q.Constraints, Constraint{X: x, Y: y, Direct: direct, Negate: negate})
		}
	}

	if returnPart != "" {
		rp := strings.TrimSpace(returnPart)
		low := strings.ToLower(rp)
		switch {
		case low == "nodes":
			q.Return = ReturnNodes
		case low == "bindings":
			q.Return = ReturnBindings
		case strings.HasPrefix(low, "provenance(") && strings.HasSuffix(rp, ")"):
			q.Return = ReturnProvenance
			q.ReturnVar = strings.TrimSpace(rp[len("provenance(") : len(rp)-1])
		case strings.HasPrefix(low, "downstream(") && strings.HasSuffix(rp, ")"):
			q.Return = ReturnDownstream
			q.ReturnVar = strings.TrimSpace(rp[len("downstream(") : len(rp)-1])
		default:
			return nil, fmt.Errorf("query: bad RETURN clause %q", rp)
		}
		if q.Return == ReturnProvenance || q.Return == ReturnDownstream {
			if _, ok := q.Vars[q.ReturnVar]; !ok {
				return nil, fmt.Errorf("query: RETURN references undeclared variable %q", q.ReturnVar)
			}
		}
	}
	return q, nil
}

// splitClauses splits "…match… WHERE …where… RETURN …return…".
func splitClauses(s string) (matchPart, wherePart, returnPart string, err error) {
	upper := strings.ToUpper(s)
	wi := indexWord(upper, "WHERE")
	ri := indexWord(upper, "RETURN")
	switch {
	case wi >= 0 && ri >= 0 && wi < ri:
		return s[:wi], s[wi+5 : ri], s[ri+6:], nil
	case wi >= 0 && ri >= 0:
		return "", "", "", fmt.Errorf("query: WHERE must precede RETURN")
	case wi >= 0:
		return s[:wi], s[wi+5:], "", nil
	case ri >= 0:
		return s[:ri], "", s[ri+6:], nil
	default:
		return s, "", "", nil
	}
}

// indexWord finds a keyword at a word boundary.
func indexWord(s, word string) int {
	for from := 0; ; {
		i := strings.Index(s[from:], word)
		if i < 0 {
			return -1
		}
		i += from
		before := i == 0 || s[i-1] == ' ' || s[i-1] == '\t' || s[i-1] == '\n'
		afterIdx := i + len(word)
		after := afterIdx >= len(s) || s[afterIdx] == ' ' || s[afterIdx] == '\t' || s[afterIdx] == '\n'
		if before && after {
			return i
		}
		from = i + len(word)
	}
}

// splitTopLevel splits on commas outside quoted strings.
func splitTopLevel(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func firstWord(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}
