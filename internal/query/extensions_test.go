package query

import (
	"strings"
	"testing"
)

func TestParseNegatedConstraints(t *testing.T) {
	q, err := Parse(`MATCH a = "search", b = "summarize" WHERE a !~> b`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Constraints) != 1 || !q.Constraints[0].Negate || q.Constraints[0].Direct {
		t.Fatalf("constraints = %+v", q.Constraints)
	}
	q2, err := Parse(`MATCH a = "x", b = "y" WHERE a !-> b`)
	if err != nil {
		t.Fatalf("Parse !->: %v", err)
	}
	if !q2.Constraints[0].Negate || !q2.Constraints[0].Direct {
		t.Fatalf("constraints = %+v", q2.Constraints)
	}
}

// The paper's structural-privacy question, as a query: "does M10 reach
// M14?" — negation lets users assert non-paths.
func TestEvaluateNegatedPath(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	// M10 (Search Private Datasets) does NOT reach M14 (Summarize).
	q, err := Parse(`MATCH a = "id:M10", b = "id:M14" WHERE a !~> b`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ans.Bindings) != 1 {
		t.Fatalf("bindings = %v (M10 must not reach M14)", ans.Bindings)
	}
	// And the positive direction is empty.
	qPos, _ := Parse(`MATCH a = "id:M10", b = "id:M14" WHERE a ~> b`)
	ansPos, _ := ev.Evaluate(qPos, e)
	if len(ansPos.Bindings) != 0 {
		t.Fatalf("positive bindings = %v", ansPos.Bindings)
	}
}

func TestEvaluateIDLiteral(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	q, err := Parse(`MATCH m = "id:M13"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ans.Bindings) != 1 || ans.Bindings[0]["m"] != "S11:M13" {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
	// Unknown id: no bindings, no error.
	q2, _ := Parse(`MATCH m = "id:M99"`)
	ans2, _ := ev.Evaluate(q2, e)
	if len(ans2.Bindings) != 0 {
		t.Fatalf("unknown id bound: %v", ans2.Bindings)
	}
}

func TestEvaluateNegatedDirectEdge(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	// M3 reaches M6 but not directly.
	q, _ := Parse(`MATCH a = "id:M3", b = "id:M6" WHERE a ~> b, a !-> b`)
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ans.Bindings) != 1 {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
}

func TestMixedConstraintQuery(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	// All pairs (search module, combiner) where the search feeds the
	// combiner transitively: M10~>M15 and M12~>M15.
	q, _ := Parse(`MATCH s = "search", c = "id:M15" WHERE s ~> c RETURN nodes`)
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	joined := strings.Join(ans.Nodes, ",")
	for _, want := range []string{"S10:M12", "S13:M10", "S15:M15"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("nodes = %v, missing %s", ans.Nodes, want)
		}
	}
}
