package query

import (
	"strings"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/workflow"
)

func diseaseExec(t *testing.T) (*workflow.Spec, *exec.Execution) {
	t.Helper()
	spec := workflow.DiseaseSusceptibility()
	r := exec.NewRunner(spec, nil)
	e, err := r.Run("E1", map[string]exec.Value{
		"snps": "rs1", "ethnicity": "eth1", "lifestyle": "active",
		"family_history": "fh1", "symptoms": "none",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return spec, e
}

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`MATCH a = "expand snp", b = "query omim" WHERE a ~> b RETURN provenance(b)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Vars) != 2 || len(q.VarOrder) != 2 {
		t.Fatalf("vars = %v", q.Vars)
	}
	if strings.Join(q.Vars["a"], "+") != "expand+snp" {
		t.Fatalf("a = %v", q.Vars["a"])
	}
	if len(q.Constraints) != 1 || q.Constraints[0].Direct {
		t.Fatalf("constraints = %v", q.Constraints)
	}
	if q.Return != ReturnProvenance || q.ReturnVar != "b" {
		t.Fatalf("return = %v %q", q.Return, q.ReturnVar)
	}
}

func TestParseDefaults(t *testing.T) {
	q, err := Parse(`MATCH x = "reformat"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Return != ReturnBindings || len(q.Constraints) != 0 {
		t.Fatalf("defaults wrong: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`FIND x = "a"`,
		`MATCH`,
		`MATCH = "a"`,
		`MATCH 1x = "a"`,
		`MATCH x = a`,
		`MATCH x = ""`,
		`MATCH x = "a", x = "b"`,
		`MATCH x = "a" WHERE x >> x`,
		`MATCH x = "a" WHERE y ~> x`,
		`MATCH x = "a" RETURN everything`,
		`MATCH x = "a" RETURN provenance(y)`,
		`MATCH x = "a" RETURN provenance(x) WHERE x ~> x`,
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseCommaInsidePhrase(t *testing.T) {
	q, err := Parse(`MATCH a = "combine, disorder", b = "omim"`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Vars["a"]) != 2 {
		t.Fatalf("a tokens = %v", q.Vars["a"])
	}
	_ = q
}

// The paper's example query: "find executions where Expand SNP Set was
// executed before Query OMIM and return the provenance information for
// the latter".
func TestEvaluatePaperQuery(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	q, err := Parse(`MATCH a = "expand snp", b = "query omim" WHERE a ~> b RETURN provenance(b)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ans.Bindings) != 1 {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
	b := ans.Bindings[0]
	if b["a"] != "S2:M3" || b["b"] != "S5:M6" {
		t.Fatalf("binding = %v", b)
	}
	if len(ans.Provenance) != 1 {
		t.Fatalf("provenance count = %d", len(ans.Provenance))
	}
	prov := ans.Provenance[0]
	// Provenance of M6's output includes M5, M3 and I but not M7.
	for _, want := range []string{"I", "S2:M3", "S4:M5", "S5:M6"} {
		if prov.Node(want) == nil {
			t.Errorf("provenance missing %s", want)
		}
	}
	if prov.Node("S6:M7") != nil {
		t.Error("provenance includes unrelated M7")
	}
}

func TestEvaluateDirectEdgeConstraint(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	// M5 -> M6 is a direct execution edge; M3 -> M6 is not.
	q, _ := Parse(`MATCH a = "generate database", b = "query omim" WHERE a -> b`)
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ans.Bindings) != 1 {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
	q2, _ := Parse(`MATCH a = "expand snp", b = "query omim" WHERE a -> b`)
	ans2, _ := ev.Evaluate(q2, e)
	if len(ans2.Bindings) != 0 {
		t.Fatalf("indirect pair matched direct constraint: %v", ans2.Bindings)
	}
}

func TestEvaluateNoMatches(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	q, _ := Parse(`MATCH a = "nonexistent thing"`)
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ans.Bindings) != 0 {
		t.Fatalf("bindings = %v", ans.Bindings)
	}
}

func TestEvaluateReturnNodes(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	q, _ := Parse(`MATCH a = "search" RETURN nodes`)
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// "search" matches M10 (Search Private Datasets) and M12 (Search
	// PubMed Central).
	if strings.Join(ans.Nodes, ",") != "S10:M12,S13:M10" {
		t.Fatalf("nodes = %v", ans.Nodes)
	}
}

func TestEvaluateReturnDownstream(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	q, _ := Parse(`MATCH a = "reformat" RETURN downstream(a)`)
	ans, err := ev.Evaluate(q, e)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(ans.Downstream) != 1 {
		t.Fatalf("downstream sets = %d", len(ans.Downstream))
	}
	attrs := make(map[string]bool)
	for _, id := range ans.Downstream[0] {
		attrs[e.Items[id].Attr] = true
	}
	for _, want := range []string{"reformatted", "summary", "updated_notes", "prognosis"} {
		if !attrs[want] {
			t.Errorf("downstream missing %s (got %v)", want, attrs)
		}
	}
	if attrs["articles"] {
		t.Error("downstream includes upstream item")
	}
}

func TestEvaluateWithPrivacyZoomsOut(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	pol := privacy.NewPolicy(spec.ID)
	pol.ViewGrants[privacy.Registered] = []string{"W2"} // no W4 detail
	// Querying for "query omim" at Registered: M6 executes inside W4,
	// which is collapsed into S3:M4 — no match.
	q, _ := Parse(`MATCH b = "query omim"`)
	ans, err := ev.EvaluateWithPrivacy(q, e, pol, privacy.Registered)
	if err != nil {
		t.Fatalf("EvaluateWithPrivacy: %v", err)
	}
	if !ans.ZoomedOut {
		t.Fatal("not marked zoomed out")
	}
	if len(ans.Bindings) != 0 {
		t.Fatalf("hidden module matched: %v", ans.Bindings)
	}
	// But the collapsed composite M4 is matchable.
	q2, _ := Parse(`MATCH b = "consult external"`)
	ans2, err := ev.EvaluateWithPrivacy(q2, e, pol, privacy.Registered)
	if err != nil {
		t.Fatalf("EvaluateWithPrivacy: %v", err)
	}
	if len(ans2.Bindings) != 1 || ans2.Bindings[0]["b"] != "S3:M4" {
		t.Fatalf("composite binding = %v", ans2.Bindings)
	}
}

func TestEvaluateWithPrivacyMasksValues(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	pol := privacy.NewPolicy(spec.ID)
	pol.DataLevels["snps"] = privacy.Owner
	h, _ := workflow.NewHierarchy(spec)
	for _, w := range h.All() {
		pol.ViewGrants[privacy.Public] = append(pol.ViewGrants[privacy.Public], w)
	}
	q, _ := Parse(`MATCH a = "expand snp", b = "query omim" WHERE a ~> b RETURN provenance(b)`)
	ans, err := ev.EvaluateWithPrivacy(q, e, pol, privacy.Public)
	if err != nil {
		t.Fatalf("EvaluateWithPrivacy: %v", err)
	}
	if len(ans.Provenance) != 1 {
		t.Fatalf("provenance = %d", len(ans.Provenance))
	}
	for _, it := range ans.Provenance[0].Items {
		if it.Attr == "snps" && (!it.Redacted || it.Value != "") {
			t.Fatalf("snps not masked in provenance answer: %+v", it)
		}
	}
}

func TestEvaluateWithPrivacyModulePrivacy(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	pol := privacy.NewPolicy(spec.ID)
	pol.ModuleLevels["M6"] = privacy.Owner
	h, _ := workflow.NewHierarchy(spec)
	for _, w := range h.All() {
		pol.ViewGrants[privacy.Public] = append(pol.ViewGrants[privacy.Public], w)
	}
	q, _ := Parse(`MATCH b = "query omim"`)
	ans, err := ev.EvaluateWithPrivacy(q, e, pol, privacy.Public)
	if err != nil {
		t.Fatalf("EvaluateWithPrivacy: %v", err)
	}
	if len(ans.Bindings) != 0 {
		t.Fatalf("module-private execution matched: %v", ans.Bindings)
	}
}

func TestAnswerRender(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	q, _ := Parse(`MATCH a = "reformat"`)
	ans, _ := ev.Evaluate(q, e)
	out := ans.Render()
	if !strings.Contains(out, "1 binding") || !strings.Contains(out, "a=S11:M13") {
		t.Fatalf("Render:\n%s", out)
	}
}

// Property: bindings always satisfy their constraints.
func TestBindingsSatisfyConstraints(t *testing.T) {
	spec, e := diseaseExec(t)
	ev := NewEvaluator(spec)
	queries := []string{
		`MATCH a = "query", b = "combine" WHERE a ~> b`,
		`MATCH a = "search", b = "summarize" WHERE a ~> b`,
		`MATCH a = "generate", b = "query" WHERE a -> b`,
	}
	g := e.Graph()
	for _, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("Parse(%s): %v", qs, err)
		}
		ans, err := ev.Evaluate(q, e)
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", qs, err)
		}
		for _, b := range ans.Bindings {
			for _, c := range q.Constraints {
				u, v := g.Lookup(b[c.X]), g.Lookup(b[c.Y])
				if c.Direct && !g.HasEdge(u, v) {
					t.Fatalf("%s: binding %v violates direct constraint", qs, b)
				}
				if !c.Direct && !g.Reachable(u, v) {
					t.Fatalf("%s: binding %v violates path constraint", qs, b)
				}
			}
		}
	}
}
