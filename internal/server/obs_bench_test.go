package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"provpriv/internal/obs"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/workflow"
)

// benchFixture builds the disease-susceptibility repository without a
// testing.T (testing.Benchmark runs outside the test's lifecycle).
func benchFixture(tb testing.TB) *repo.Repository {
	tb.Helper()
	r := repo.New()
	s := workflow.DiseaseSusceptibility()
	pol := privacy.NewPolicy(s.ID)
	pol.DataLevels["snps"] = privacy.Owner
	if err := r.AddSpec(s, pol); err != nil {
		tb.Fatal(err)
	}
	r.AddUser(privacy.User{Name: "alice", Level: privacy.Owner, Group: "owners"})
	return r
}

// searchOnce performs one warm-path search against h and fails the
// benchmark if the route errors (a 500 would silently skew allocs).
func searchOnce(tb testing.TB, h http.Handler) {
	req, err := http.NewRequest(http.MethodGet, "/api/v1/search?q=omim", nil)
	if err != nil {
		tb.Fatal(err)
	}
	req.Header.Set("X-Prov-User", "alice")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		tb.Fatalf("search status = %d: %s", w.Code, w.Body.String())
	}
}

// benchHandlers returns the same server three ways: bare (no Observer),
// wrapped with tracing disabled (the production default path for
// unsampled requests), and wrapped with every request sampled.
func benchHandlers(tb testing.TB) (bare, unsampled, sampled http.Handler) {
	r := benchFixture(tb)
	srv := New(r)
	bare = srv

	srvU := New(r)
	srvU.Obs = obs.NewObserver(obs.NewMetrics(), nil, obs.NewTracer(64, 0, time.Hour))
	unsampled = srvU.Handler()

	srvS := New(r)
	srvS.Obs = obs.NewObserver(obs.NewMetrics(), nil, obs.NewTracer(64, 1, time.Hour))
	sampled = srvS.Handler()

	// Warm every path: result cache, route-histogram map entries, the
	// recorder pool — so the measured iterations are steady-state.
	for _, h := range []http.Handler{bare, unsampled, sampled} {
		searchOnce(tb, h)
	}
	return bare, unsampled, sampled
}

// BenchmarkMiddlewareChain compares the warm search path served bare
// against the same path behind the full observability middleware, with
// tracing off (default) and on (sampled). The delta is the per-request
// cost of request ids, histograms and panic recovery.
func BenchmarkMiddlewareChain(b *testing.B) {
	bare, unsampled, sampled := benchHandlers(b)
	for _, bc := range []struct {
		name string
		h    http.Handler
	}{{"bare", bare}, {"instrumented", unsampled}, {"instrumented-sampled", sampled}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				searchOnce(b, bc.h)
			}
		})
	}
}

// BenchmarkSpanStartFinish measures one StartSpan/End pair under a live
// sampled trace — the unit cost every instrumented engine layer pays.
func BenchmarkSpanStartFinish(b *testing.B) {
	tr := obs.NewTracer(4, 1, time.Hour)
	ctx, finish := tr.StartRoot(context.Background(), "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%100 == 99 {
			// Rotate the root so the per-trace span cap never saturates.
			b.StopTimer()
			finish()
			ctx, finish = tr.StartRoot(context.Background(), "bench")
			b.StartTimer()
		}
		_, span := obs.StartSpan(ctx, "op")
		span.End()
	}
	finish()
}

// allocsPerSearch measures steady-state allocations of one warm search
// through h.
func allocsPerSearch(tb testing.TB, h http.Handler) float64 {
	return testing.AllocsPerRun(200, func() { searchOnce(tb, h) })
}

// TestMiddlewareAllocBudget enforces the PR's allocation budget on the
// warm search path: the middleware chain (request id, histogram,
// recorder, panic guard) may add at most 2 heap allocations per request
// over the bare handler when tracing is not sampling.
func TestMiddlewareAllocBudget(t *testing.T) {
	bare, unsampled, _ := benchHandlers(t)
	base := allocsPerSearch(t, bare)
	instr := allocsPerSearch(t, unsampled)
	if added := instr - base; added > 2 {
		t.Fatalf("middleware adds %.1f allocs/request (bare %.1f, instrumented %.1f); budget is 2",
			added, base, instr)
	}
}

// TestBenchObsJSON renders the observability overhead benchmarks as a
// machine-readable JSON file for CI's perf trajectory, mirroring
// TestBenchTasksJSON. Gated on the BENCH_JSON env var naming the output
// path; a no-op otherwise.
func TestBenchObsJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set")
	}
	bare, unsampled, sampled := benchHandlers(t)
	bench := func(h http.Handler) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				searchOnce(b, h)
			}
		})
	}
	rBare, rInstr, rSampled := bench(bare), bench(unsampled), bench(sampled)
	span := testing.Benchmark(BenchmarkSpanStartFinish)
	addedAllocs := allocsPerSearch(t, unsampled) - allocsPerSearch(t, bare)
	report := map[string]float64{
		"search_bare_ns_per_op":                 float64(rBare.NsPerOp()),
		"search_instrumented_ns_per_op":         float64(rInstr.NsPerOp()),
		"search_instrumented_sampled_ns_per_op": float64(rSampled.NsPerOp()),
		"middleware_added_ns_per_op":            float64(rInstr.NsPerOp() - rBare.NsPerOp()),
		"middleware_added_allocs_per_op":        addedAllocs,
		"span_start_finish_ns_per_op":           float64(span.NsPerOp()),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
