package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"provpriv/internal/auth"
)

// TestTokenLifecycleOverTheWire drives the token management surface
// end-to-end: mint (with a server-generated secret that works
// immediately), list, duplicate conflict, revoke (the secret stops
// working on the next request), and unknown-name 404.
func TestTokenLifecycleOverTheWire(t *testing.T) {
	ts, _, _, _ := newAuthedServer(t)

	// Reader and writer roles may not touch the token surface.
	for _, secret := range []string{readerSecret, writerSecret} {
		if code := do(t, ts, "POST", "/api/v1/tokens", secret,
			[]byte(`{"name":"t-x","user":"carol","role":"reader"}`), nil); code != http.StatusForbidden {
			t.Fatalf("non-admin mint = %d, want 403", code)
		}
	}

	// Mint with no secret: the server generates one and returns it once.
	var minted struct {
		Name   string `json:"name"`
		User   string `json:"user"`
		Role   string `json:"role"`
		Secret string `json:"secret"`
	}
	body := []byte(`{"name":"t-ci","user":"carol","role":"writer"}`)
	if code := do(t, ts, "POST", "/api/v1/tokens", adminSecret, body, &minted); code != http.StatusCreated {
		t.Fatalf("mint = %d, want 201", code)
	}
	if minted.Secret == "" || len(minted.Secret) != 64 {
		t.Fatalf("minted secret = %q, want a 64-hex-char generated secret", minted.Secret)
	}
	if minted.Name != "t-ci" || minted.Role != "writer" {
		t.Fatalf("minted = %+v", minted)
	}

	// The fresh secret works immediately — no restart, no reload.
	spec := zebrafishSpec(t, "zfish-tok")
	specJSON, _ := json.Marshal(spec)
	reqBody, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	if code := do(t, ts, "POST", "/api/v1/specs", minted.Secret, reqBody, nil); code != http.StatusCreated {
		t.Fatalf("mutation with minted token = %d, want 201", code)
	}

	// Duplicate name conflicts.
	if code := do(t, ts, "POST", "/api/v1/tokens", adminSecret, body, nil); code != http.StatusConflict {
		t.Fatalf("duplicate mint = %d, want 409", code)
	}

	// A client-supplied secret is never echoed back.
	var echoed map[string]any
	if code := do(t, ts, "POST", "/api/v1/tokens", adminSecret,
		[]byte(`{"name":"t-byo","user":"carol","role":"reader","secret":"client-chosen"}`), &echoed); code != http.StatusCreated {
		t.Fatalf("mint with client secret = %d, want 201", code)
	}
	if _, leaked := echoed["secret"]; leaked {
		t.Fatal("client-supplied secret reflected in the response")
	}

	// List shows the minted tokens, no secret material.
	var listed struct {
		Tokens []auth.TokenStat `json:"tokens"`
	}
	if code := do(t, ts, "GET", "/api/v1/tokens", adminSecret, nil, &listed); code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	names := map[string]bool{}
	for _, tok := range listed.Tokens {
		names[tok.Name] = true
	}
	for _, want := range []string{"t-reader", "t-writer", "t-admin", "t-ci", "t-byo"} {
		if !names[want] {
			t.Fatalf("token list missing %q: %+v", want, listed.Tokens)
		}
	}

	// Revoke: the very next request with the revoked secret is a 401;
	// other tokens are untouched.
	if code := do(t, ts, "DELETE", "/api/v1/tokens/t-ci", adminSecret, nil, nil); code != http.StatusOK {
		t.Fatalf("revoke = %d", code)
	}
	if code := do(t, ts, "POST", "/api/v1/specs", minted.Secret, reqBody, nil); code != http.StatusUnauthorized {
		t.Fatalf("mutation with revoked token = %d, want 401", code)
	}
	if code := do(t, ts, "GET", "/api/v1/specs", readerSecret, nil, nil); code != http.StatusOK {
		t.Fatalf("unrelated token after revocation = %d, want 200", code)
	}
	if code := do(t, ts, "DELETE", "/api/v1/tokens/t-ci", adminSecret, nil, nil); code != http.StatusNotFound {
		t.Fatalf("revoke of unknown token = %d, want 404", code)
	}
}

// TestTokenRotationChurn (-race) rotates tokens through the management
// endpoints while authenticated traffic runs: requests using unchanged
// tokens must never spuriously fail, and each revoked token must fail
// from the moment its DELETE returns.
func TestTokenRotationChurn(t *testing.T) {
	ts, _, _, _ := newAuthedServer(t)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code := do(t, ts, "GET", "/api/v1/search?q=omim", readerSecret, nil, nil); code != http.StatusOK {
					t.Errorf("steady reader got %d during rotation churn", code)
					return
				}
				if code := do(t, ts, "GET", "/api/v1/specs", writerSecret, nil, nil); code != http.StatusOK {
					t.Errorf("steady writer got %d during rotation churn", code)
					return
				}
			}
		}()
	}

	// Rotator: mint a token, prove it works, revoke it, prove the very
	// next use fails — 25 generations, concurrently with the readers.
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("t-churn-%d", i)
		var minted struct {
			Secret string `json:"secret"`
		}
		body := []byte(fmt.Sprintf(`{"name":%q,"user":"carol","role":"reader"}`, name))
		if code := do(t, ts, "POST", "/api/v1/tokens", adminSecret, body, &minted); code != http.StatusCreated {
			t.Fatalf("mint %s = %d", name, code)
		}
		if code := do(t, ts, "GET", "/api/v1/specs", minted.Secret, nil, nil); code != http.StatusOK {
			t.Fatalf("fresh token %s = %d, want 200", name, code)
		}
		if code := do(t, ts, "DELETE", "/api/v1/tokens/"+name, adminSecret, nil, nil); code != http.StatusOK {
			t.Fatalf("revoke %s = %d", name, code)
		}
		if code := do(t, ts, "GET", "/api/v1/specs", minted.Secret, nil, nil); code != http.StatusUnauthorized {
			t.Fatalf("revoked token %s = %d, want 401", name, code)
		}
	}
	close(stop)
	readers.Wait()
}
