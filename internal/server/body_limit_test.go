package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestOversizedBodies413 drives every mutation endpoint that decodes a
// request body with a payload past its size cap and requires the same
// contract from all of them: 413 Request Entity Too Large with the
// uniform JSON error envelope — never a generic 400, so clients can
// tell "split your payload" from "fix your JSON". The caps are
// variables lowered for the test; restored afterwards.
func TestOversizedBodies413(t *testing.T) {
	ts, _, _ := newTaskServer(t, 1, 4)

	oldMax, oldBulk := maxBodyBytes, bulkMaxBodyBytes
	maxBodyBytes, bulkMaxBodyBytes = 64, 128
	t.Cleanup(func() { maxBodyBytes, bulkMaxBodyBytes = oldMax, oldBulk })

	// Oversized but syntactically plausible payloads, so the failure can
	// only come from the size cap.
	pad := strings.Repeat("x", 256)
	single := []byte(`{"spec":{"id":"` + pad + `"}}`)
	bulkItems := make([]string, 8)
	for i := range bulkItems {
		bulkItems[i] = `{"id":"` + pad + `"}`
	}
	bulk := []byte("[" + strings.Join(bulkItems, ",") + "]")

	cases := []struct {
		name   string
		method string
		path   string
		secret string
		body   []byte
	}{
		{"add spec", "POST", "/api/v1/specs", writerSecret, single},
		{"add execution", "POST", "/api/v1/executions", writerSecret, single},
		{"update policy", "PUT", "/api/v1/policy", writerSecret, single},
		{"set generalization", "PUT", "/api/v1/generalization", writerSecret, single},
		{"bulk executions", "POST", "/api/v1/executions:bulk", writerSecret, bulk},
		{"add token", "POST", "/api/v1/tokens", adminSecret, single},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Authorization", "Bearer "+tc.secret)
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("%s %s with oversized body = %d, want 413", tc.method, tc.path, resp.StatusCode)
			}
			var body errorBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("413 response is not the JSON envelope: %v", err)
			}
			if body.Error == "" {
				t.Fatal("413 envelope has an empty error")
			}
		})
	}

	// An in-cap body on the same endpoints still works: the caps above
	// were lowered, not the endpoints broken.
	small, _ := json.Marshal(map[string]json.RawMessage{"spec": json.RawMessage(`{"id":"s"}`)})
	if int64(len(small)) >= maxBodyBytes {
		t.Fatalf("test payload %d bytes does not fit the lowered cap", len(small))
	}
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/specs", bytes.NewReader(small))
	req.Header.Set("Authorization", "Bearer "+writerSecret)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The tiny spec is structurally invalid (no modules), so a 400 — the
	// point is it is not a 413.
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatal("in-cap body rejected as oversized")
	}
}
