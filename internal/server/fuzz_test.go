package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"provpriv/internal/auth"
	"provpriv/internal/exec"
	"provpriv/internal/privacy"
	"provpriv/internal/repo"
	"provpriv/internal/workflow"
)

// FuzzMutationBody throws arbitrary bytes at every mutation-endpoint
// JSON decoder through the full handler stack (auth → decode → engine).
// Invariants: the server never panics, never answers 5xx (a bad body is
// the client's fault), always answers JSON, and a rejected request
// leaves no partial state behind (a spec rejected with 4xx must not be
// registered). Run with `go test -fuzz=FuzzMutationBody ./internal/server`.
func FuzzMutationBody(f *testing.F) {
	// Seeds: valid shapes, near-valid shapes, and garbage.
	f.Add("/api/v1/specs", "POST", `{"spec":{"id":"s1"}}`)
	f.Add("/api/v1/specs", "POST", `{"spec":null,"policy":{"spec":"x"}}`)
	f.Add("/api/v1/specs", "POST", `{"spec":{}} trailing`)
	f.Add("/api/v1/executions", "POST", `{"id":"E","spec":"disease-susceptibility","nodes":[],"edges":[],"items":{}}`)
	f.Add("/api/v1/executions", "POST", `[]`)
	f.Add("/api/v1/policy", "PUT", `{"spec":"disease-susceptibility","policy":{"data_levels":{"snps":3}}}`)
	f.Add("/api/v1/policy", "PUT", "{\"spec\":\"\x00\",\"policy\":{\"view_grants\":{\"1\":[\"W2\"]}}}")
	f.Add("/api/v1/generalization", "PUT", `{"spec":"disease-susceptibility","hierarchies":{"snps":{"levels":[{"rs1":"chr1"}]}}}`)
	f.Add("/api/v1/generalization", "PUT", `{"spec":"d","hierarchies":{"a":{"attr":"b"}}}`)
	f.Add("/api/v1/save", "POST", ``)
	f.Add("/api/v1/specs", "POST", "\x00\xff\xfe")
	f.Add("/api/v1/executions", "POST", `{"id":"E","spec":"disease-susceptibility","nodes":[{"id":"n","kind":9999}]}`)

	newRepo := func() *repo.Repository {
		r := repo.New()
		s := workflow.DiseaseSusceptibility()
		if err := r.AddSpec(s, nil); err != nil {
			panic(err)
		}
		e, err := exec.NewRunner(s, nil).Run("E1", map[string]exec.Value{
			"snps": "rs1", "ethnicity": "e", "lifestyle": "l",
			"family_history": "f", "symptoms": "s",
		})
		if err != nil {
			panic(err)
		}
		if err := r.AddExecution(e); err != nil {
			panic(err)
		}
		r.AddUser(privacy.User{Name: "w", Level: privacy.Owner, Group: "g"})
		return r
	}
	a, err := auth.New([]*auth.Token{auth.NewToken("t", "w", auth.RoleAdmin, "fuzz-secret")})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, path, method, body string) {
		// Constrain the fuzzed routing to the mutation surface; the body
		// stays fully adversarial. SaveDir is left empty so the save
		// endpoint can never touch the filesystem.
		var ok bool
		for _, p := range []string{"/api/v1/specs", "/api/v1/executions", "/api/v1/policy", "/api/v1/generalization", "/api/v1/save"} {
			if path == p {
				ok = true
			}
		}
		if !ok || (method != "POST" && method != "PUT" && method != "DELETE") {
			t.Skip()
		}
		srv := New(newRepo())
		srv.Auth = auth.NewStore(a)
		req := httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
		req.Header.Set("Authorization", "Bearer fuzz-secret")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic
		res := rec.Result()
		defer res.Body.Close()
		if res.StatusCode >= 500 {
			t.Fatalf("%s %s with %q -> %d (server fault on client input)", method, path, body, res.StatusCode)
		}
		if res.StatusCode != http.StatusNotFound || rec.Body.Len() > 0 {
			// Every answered request (mux 404s for bad method/path pairs
			// have empty bodies) must be well-formed JSON.
			if ct := res.Header.Get("Content-Type"); ct != "" && strings.HasPrefix(ct, "application/json") {
				var v any
				if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
					t.Fatalf("%s %s: non-JSON response %q", method, path, rec.Body.Bytes())
				}
			}
		}
		// No partial state: a rejected add-spec registers nothing beyond
		// the fixture spec.
		if path == "/api/v1/specs" && method == "POST" && res.StatusCode >= 400 {
			if n := len(srv.repo.SpecIDs()); n != 1 {
				t.Fatalf("rejected spec mutated the repository: %d specs", n)
			}
		}
	})
}
