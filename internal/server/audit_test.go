package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"provpriv/internal/auditlog"
	"provpriv/internal/auth"
	"provpriv/internal/obs"
	"provpriv/internal/storage"
)

// newAuditedServer is newAuthedServer plus a durable audit log on its
// own backend directory and the obs middleware (so request ids thread
// into records), served through the full Handler() stack. Returns the
// audit dir so tests can reopen the log after a simulated restart.
func newAuditedServer(t *testing.T) (*httptest.Server, *Server, string) {
	t.Helper()
	_, r, _ := newTestServer(t)
	a, err := auth.New([]*auth.Token{
		auth.NewToken("t-reader", "bob", auth.RoleReader, readerSecret),
		auth.NewToken("t-writer", "carol", auth.RoleWriter, writerSecret),
		auth.NewToken("t-admin", "alice", auth.RoleAdmin, adminSecret),
	})
	if err != nil {
		t.Fatalf("auth.New: %v", err)
	}
	dir := t.TempDir()
	b, err := storage.OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	alog, err := auditlog.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(r)
	srv.Auth = auth.NewStore(a)
	srv.Audit = alog
	srv.Obs = obs.NewObserver(obs.NewMetrics(), nil, obs.NewTracer(64, 0, time.Hour))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, dir
}

// auditRecords fetches the audit window over the wire as admin.
func auditRecords(t *testing.T, ts *httptest.Server, query string) []auditlog.Record {
	t.Helper()
	var out struct {
		Enabled bool              `json:"enabled"`
		Records []auditlog.Record `json:"records"`
		Total   uint64            `json:"total"`
	}
	if code := do(t, ts, "GET", "/api/v1/audit"+query, adminSecret, nil, &out); code != http.StatusOK {
		t.Fatalf("GET /api/v1/audit = %d", code)
	}
	if !out.Enabled {
		t.Fatal("audit endpoint reports disabled on an audited server")
	}
	return out.Records
}

// TestAuditOneRecordPerMutation: each mutation request — success,
// role-denied, and malformed — emits exactly one record with the right
// identity, action, target and outcome; reads emit none.
func TestAuditOneRecordPerMutation(t *testing.T) {
	ts, srv, _ := newAuditedServer(t)

	spec := zebrafishSpec(t, "zfish-audit")
	specJSON, _ := json.Marshal(spec)
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, body, nil); code != http.StatusCreated {
		t.Fatalf("add spec = %d", code)
	}
	if code := do(t, ts, "POST", "/api/v1/specs", readerSecret, body, nil); code != http.StatusForbidden {
		t.Fatalf("reader add spec = %d, want 403", code)
	}
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, []byte(`{"spec":`), nil); code != http.StatusBadRequest {
		t.Fatalf("malformed add spec = %d, want 400", code)
	}
	if code := do(t, ts, "POST", "/api/v1/specs", "wrong-secret", body, nil); code != http.StatusUnauthorized {
		t.Fatalf("bad token add spec = %d, want 401", code)
	}
	// Reads are not audited.
	if code := do(t, ts, "GET", "/api/v1/search?q=omim", readerSecret, nil, nil); code != http.StatusOK {
		t.Fatalf("search = %d", code)
	}

	if got := srv.Audit.Total(); got != 4 {
		t.Fatalf("audit total = %d, want 4 (one per mutation request, none for reads)", got)
	}
	recs := auditRecords(t, ts, "")
	if len(recs) != 4 {
		t.Fatalf("window = %d records, want 4", len(recs))
	}
	// Newest first: 401, 400, 403, 201.
	type want struct {
		principal, token, role, target, outcome string
		status                                  int
	}
	wants := []want{
		{"", "", "", "", "denied", 401},
		{"carol", "t-writer", "writer", "", "rejected", 400},
		{"bob", "t-reader", "reader", "", "denied", 403},
		{"carol", "t-writer", "writer", "zfish-audit", "ok", 201},
	}
	for i, w := range wants {
		r := recs[i]
		if r.Action != "spec.add" {
			t.Errorf("record %d action = %q", i, r.Action)
		}
		if r.Principal != w.principal || r.Token != w.token || r.Role != w.role {
			t.Errorf("record %d identity = %q/%q/%q, want %q/%q/%q",
				i, r.Principal, r.Token, r.Role, w.principal, w.token, w.role)
		}
		if r.Status != w.status || r.Outcome != w.outcome {
			t.Errorf("record %d status = %d/%q, want %d/%q", i, r.Status, r.Outcome, w.status, w.outcome)
		}
		if r.Target != w.target {
			t.Errorf("record %d target = %q, want %q", i, r.Target, w.target)
		}
		if r.Time.IsZero() {
			t.Errorf("record %d has no timestamp", i)
		}
	}
}

// TestAuditRequestIDThreading: the obs-assigned request id on the
// response is the one in the audit record, so an audit row joins to
// logs and traces.
func TestAuditRequestIDThreading(t *testing.T) {
	ts, _, _ := newAuditedServer(t)

	spec := zebrafishSpec(t, "zfish-rid")
	specJSON, _ := json.Marshal(spec)
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/specs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+writerSecret)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-Id")
	if resp.StatusCode != http.StatusCreated || rid == "" {
		t.Fatalf("add spec = %d, X-Request-Id = %q", resp.StatusCode, rid)
	}

	recs := auditRecords(t, ts, "?action=spec.add")
	if len(recs) != 1 {
		t.Fatalf("spec.add records = %d, want 1", len(recs))
	}
	if recs[0].RequestID != rid {
		t.Fatalf("audit request id = %q, response header = %q", recs[0].RequestID, rid)
	}
}

// TestAuditSurvivesRestart: records appended before a shutdown are
// readable after reopening the log on the same directory, and sequence
// numbers continue rather than restart.
func TestAuditSurvivesRestart(t *testing.T) {
	ts, srv, dir := newAuditedServer(t)

	spec := zebrafishSpec(t, "zfish-dur")
	specJSON, _ := json.Marshal(spec)
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, body, nil); code != http.StatusCreated {
		t.Fatalf("add spec = %d", code)
	}
	if err := srv.Audit.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Audit = nil // the old server must not touch the closed log

	b, err := storage.OpenFlat(dir)
	if err != nil {
		t.Fatal(err)
	}
	alog, err := auditlog.Open(b)
	if err != nil {
		t.Fatal(err)
	}
	defer alog.Close()
	recs, total := alog.Recent(auditlog.Query{})
	if total != 1 || len(recs) != 1 {
		t.Fatalf("after restart: total=%d window=%d, want 1/1", total, len(recs))
	}
	r := recs[0]
	if r.Action != "spec.add" || r.Principal != "carol" || r.Target != "zfish-dur" || r.Outcome != "ok" {
		t.Fatalf("restored record = %+v", r)
	}
	if err := alog.Append(auditlog.Record{Action: "spec.remove", Principal: "carol", Status: 200}); err != nil {
		t.Fatal(err)
	}
	if recs, _ := alog.Recent(auditlog.Query{}); recs[0].Seq != 2 {
		t.Fatalf("post-restart seq = %d, want 2", recs[0].Seq)
	}
}

// TestAuditEndpointFiltersAndAuthz: the query surface filters by
// principal and action, rejects bad limits, and is admin-only.
func TestAuditEndpointFiltersAndAuthz(t *testing.T) {
	ts, _, _ := newAuditedServer(t)

	spec := zebrafishSpec(t, "zfish-q")
	specJSON, _ := json.Marshal(spec)
	body, _ := json.Marshal(map[string]json.RawMessage{"spec": specJSON})
	if code := do(t, ts, "POST", "/api/v1/specs", writerSecret, body, nil); code != http.StatusCreated {
		t.Fatalf("add spec = %d", code)
	}
	if code := do(t, ts, "DELETE", "/api/v1/specs/zfish-q", writerSecret, nil, nil); code != http.StatusOK {
		t.Fatalf("remove spec = %d", code)
	}
	if code := do(t, ts, "POST", "/api/v1/save", readerSecret, nil, nil); code != http.StatusForbidden {
		t.Fatalf("reader save = %d, want 403", code)
	}

	if recs := auditRecords(t, ts, "?action=spec.remove"); len(recs) != 1 || recs[0].Target != "zfish-q" {
		t.Fatalf("action filter: %+v", recs)
	}
	if recs := auditRecords(t, ts, "?principal=bob"); len(recs) != 1 || recs[0].Action != "repo.save" {
		t.Fatalf("principal filter: %+v", recs)
	}
	if recs := auditRecords(t, ts, "?limit=1"); len(recs) != 1 {
		t.Fatalf("limit filter returned %d records", len(recs))
	}
	if code := do(t, ts, "GET", "/api/v1/audit?limit=bogus", adminSecret, nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", code)
	}
	for _, secret := range []string{readerSecret, writerSecret} {
		if code := do(t, ts, "GET", "/api/v1/audit", secret, nil, nil); code != http.StatusForbidden {
			t.Fatalf("non-admin audit read = %d, want 403", code)
		}
	}
}

// TestAuditDisabled: with no audit log configured the admin endpoint
// reports enabled=false instead of erroring, and mutations work.
func TestAuditDisabled(t *testing.T) {
	ts, _, _, _ := newAuthedServer(t)
	var out struct {
		Enabled bool              `json:"enabled"`
		Records []auditlog.Record `json:"records"`
	}
	if code := do(t, ts, "GET", "/api/v1/audit", adminSecret, nil, &out); code != http.StatusOK {
		t.Fatalf("audit on unaudited server = %d", code)
	}
	if out.Enabled || len(out.Records) != 0 {
		t.Fatalf("unaudited server reports %+v", out)
	}
}
