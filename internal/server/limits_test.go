package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"provpriv/internal/auth"
	"provpriv/internal/limit"
	"provpriv/internal/obs"
	"provpriv/internal/repo"
)

// newLimitedServer is newAuthedServer behind the full Handler() stack
// (admission middleware included) with the given limiter and rates. Two
// reader tokens let tests pit a bursting principal against an in-limit
// one: bucket keys are token names, so they are budgeted separately.
func newLimitedServer(t *testing.T, l *limit.Limiter, rates RoleRates) (*httptest.Server, *Server, *repo.Repository) {
	t.Helper()
	_, r, _ := newTestServer(t)
	a, err := auth.New([]*auth.Token{
		auth.NewToken("t-burst", "bob", auth.RoleReader, "s-burst"),
		auth.NewToken("t-steady", "bob", auth.RoleReader, "s-steady"),
		auth.NewToken("t-admin", "alice", auth.RoleAdmin, adminSecret),
	})
	if err != nil {
		t.Fatalf("auth.New: %v", err)
	}
	srv := New(r)
	srv.Auth = auth.NewStore(a)
	srv.Limiter = l
	srv.Rates = rates
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, r
}

// TestRateLimitIsolation is the PR's acceptance scenario, run with
// -race: one principal bursts far past its budget and collects 429s
// with Retry-After while a concurrent principal staying inside the same
// role's budget sees zero rejections.
func TestRateLimitIsolation(t *testing.T) {
	ts, _, _ := newLimitedServer(t,
		limit.New(limit.Config{}),
		RoleRates{Reader: limit.Rate{PerSec: 25, Burst: 5}},
	)

	get := func(secret string) (int, string) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/search?q=omim", nil)
		if err != nil {
			t.Error(err)
			return 0, ""
		}
		req.Header.Set("Authorization", "Bearer "+secret)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Error(err)
			return 0, ""
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	var wg sync.WaitGroup
	var rejected, retryAfterMissing int
	wg.Add(1)
	go func() { // burster: 100 requests as fast as the loop turns
		defer wg.Done()
		for i := 0; i < 100; i++ {
			code, ra := get("s-burst")
			if code == http.StatusTooManyRequests {
				rejected++
				if ra == "" {
					retryAfterMissing++
				} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
					retryAfterMissing++
				}
			} else if code != http.StatusOK {
				t.Errorf("burster got %d, want 200 or 429", code)
			}
		}
	}()
	steadyRejected := 0
	wg.Add(1)
	go func() { // steady: ~10/s, well under the 25/s budget
		defer wg.Done()
		for i := 0; i < 15; i++ {
			code, _ := get("s-steady")
			if code != http.StatusOK {
				steadyRejected++
				t.Errorf("steady principal got %d on request %d", code, i)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}()
	wg.Wait()

	if rejected == 0 {
		t.Fatal("bursting principal was never rate limited")
	}
	if retryAfterMissing > 0 {
		t.Fatalf("%d of %d 429s lacked a positive integer Retry-After", retryAfterMissing, rejected)
	}
	if steadyRejected > 0 {
		t.Fatalf("in-limit principal saw %d rejections while the other principal burst", steadyRejected)
	}
}

// TestAdmissionDraining: through Handler(), a draining server sheds
// API requests with 503 (and no Retry-After — clients should fail
// over) while probes and metrics stay reachable.
func TestAdmissionDraining(t *testing.T) {
	ts, srv, _ := newLimitedServer(t, limit.New(limit.Config{}), RoleRates{})
	srv.SetDraining(true)

	resp, err := ts.Client().Get(ts.URL + "/api/v1/search?q=omim")
	if err != nil {
		t.Fatal(err)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining API request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("draining 503 carries Retry-After; it should not (fail over, don't wait)")
	}
	if !strings.Contains(body.Error, "draining") {
		t.Fatalf("draining error = %q", body.Error)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s while draining = %d, want 200 (probes are exempt from shedding)", path, resp.StatusCode)
		}
	}
	// /readyz reports not-ready itself, but is served, not shed.
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}

	// The shed counter is visible on /metrics.
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1<<20)
	n, _ := resp.Body.Read(data)
	resp.Body.Close()
	if !strings.Contains(string(data[:n]), "provpriv_shed_draining_total 1") {
		t.Fatal("shed_draining_total not incremented on /metrics")
	}
}

// TestAdmissionGlobalOverload: the global in-flight cap rejects with
// 503 while slots are held, and admits again after release.
func TestAdmissionGlobalOverload(t *testing.T) {
	_, r, _ := newTestServer(t)
	srv := New(r)
	srv.Limiter = limit.New(limit.Config{MaxInFlight: 1})

	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	h := srv.admission(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release // closed after the overload check; later requests pass through
		w.WriteHeader(http.StatusOK)
	}))

	done := make(chan struct{})
	go func() {
		defer close(done)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/api/v1/search", nil))
		if rr.Code != http.StatusOK {
			t.Errorf("held request finished %d", rr.Code)
		}
	}()
	<-entered

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/api/v1/search", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("request past global cap = %d, want 503", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "overloaded") {
		t.Fatalf("overload body = %q", rr.Body.String())
	}

	close(release)
	<-done
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/api/v1/search?q=omim&user=alice", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("request after release = %d, want 200", rr.Code)
	}
	if got := srv.Limiter.Stats().RejectedOverload; got != 1 {
		t.Fatalf("rejected_overload = %d, want 1", got)
	}
}

// TestLimiterExposition: the limit_* families appear on /metrics and
// the per-principal bucket rows (deliberately absent from /metrics —
// unbounded label cardinality) appear under /stats "limits".
func TestLimiterExposition(t *testing.T) {
	ts, _, _ := newLimitedServer(t,
		limit.New(limit.Config{MaxInFlight: 64}),
		RoleRates{Reader: limit.Rate{PerSec: 1, Burst: 2}},
	)
	get := func(secret, path string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if secret != "" {
			req.Header.Set("Authorization", "Bearer "+secret)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Two admitted, one rate-rejected for t-burst.
	for i := 0; i < 3; i++ {
		get("s-burst", "/api/v1/search?q=omim").Body.Close()
	}

	resp := get("", "/metrics")
	raw := make([]byte, 1<<20)
	n, _ := resp.Body.Read(raw)
	resp.Body.Close()
	metrics := string(raw[:n])
	for _, want := range []string{
		"provpriv_limit_allowed_total",
		"provpriv_limit_rejected_rate_total 1",
		"provpriv_limit_rejected_concurrency_total 0",
		"provpriv_limit_rejected_overload_total 0",
		"provpriv_limit_bucket_evictions_total 0",
		"provpriv_limit_in_flight",
		"provpriv_limit_principals",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(metrics, "\n") {
		// auth_token_uses_total legitimately labels token names; the
		// limit_ families must stay aggregate-only.
		if strings.Contains(line, "limit_") && strings.Contains(line, "t-burst") {
			t.Errorf("/metrics leaks a per-principal limiter row: %q (those belong in /stats only)", line)
		}
	}

	resp = get("s-steady", "/api/v1/stats")
	var stats statsBody
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Limits == nil {
		t.Fatal("/stats has no limits block")
	}
	if stats.Limits.RejectedRate != 1 {
		t.Fatalf("stats rejected_rate = %d, want 1", stats.Limits.RejectedRate)
	}
	found := false
	for _, ps := range stats.Limits.PerPrincipal {
		if ps.Principal == "t-burst" {
			found = true
			if ps.RejectedRate != 1 || ps.Allowed != 2 {
				t.Fatalf("t-burst bucket = %+v, want allowed 2, rejected 1", ps)
			}
		}
	}
	if !found {
		t.Fatal("/stats limits has no t-burst bucket row")
	}
}

// TestBulkQueueFullRetryAfter: a full task queue rejects bulk ingest
// with 429 *and* a Retry-After hint — backpressure the client can obey,
// matching the rate limiter's contract.
func TestBulkQueueFullRetryAfter(t *testing.T) {
	ts, srv, r := newTaskServer(t, 1, 1)
	if err := r.AddSpec(zebrafishSpec(t, "zfish"), nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}

	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	bulkItemHook = func(int) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
	}
	defer func() {
		// Open the gate, then drain the runtime before clearing the hook —
		// a worker still mid-batch must not race the reset.
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Tasks.Drain(ctx)
		bulkItemHook = nil
	}()

	post := func(body []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/executions:bulk", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+writerSecret)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// First batch: accepted, and the worker is parked on it (gate).
	resp := post(bulkBatch(t, r, "zfish", 0, 2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first bulk = %d, want 202", resp.StatusCode)
	}
	<-started
	// Second batch: fills the queue (capacity 1).
	resp = post(bulkBatch(t, r, "zfish", 10, 2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second bulk = %d, want 202", resp.StatusCode)
	}
	// Third batch: queue full — 429 with the backpressure hint.
	resp = post(bulkBatch(t, r, "zfish", 20, 2))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bulk on full queue = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("queue-full Retry-After = %q, want \"1\"", ra)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("queue-full envelope = %+v (%v)", body, err)
	}
}

// limitedBenchHandlers builds the warm search path twice behind the
// full production stack (obs + admission): once without a limiter, once
// with one configured high enough to always admit. The delta between
// them is the limiter's per-request cost.
func limitedBenchHandlers(tb testing.TB) (unlimited, limited http.Handler) {
	r := benchFixture(tb)

	srvU := New(r)
	srvU.Obs = obs.NewObserver(obs.NewMetrics(), nil, obs.NewTracer(64, 0, time.Hour))
	unlimited = srvU.Handler()

	srvL := New(r)
	srvL.Obs = obs.NewObserver(obs.NewMetrics(), nil, obs.NewTracer(64, 0, time.Hour))
	srvL.Limiter = limit.New(limit.Config{MaxInFlight: 1 << 20, MaxInFlightPerPrincipal: 1 << 20})
	srvL.Rates = RoleRates{Admin: limit.Rate{PerSec: 1e9, Burst: 1e9}}
	limited = srvL.Handler()

	for _, h := range []http.Handler{unlimited, limited} {
		searchOnce(tb, h)
	}
	return unlimited, limited
}

// TestLimiterAllocBudget enforces the PR's allocation budget: the
// admission path (global gate + per-principal bucket, admitted) may add
// at most 1 heap allocation per request on the warm search path.
func TestLimiterAllocBudget(t *testing.T) {
	unlimited, limited := limitedBenchHandlers(t)
	base := allocsPerSearch(t, unlimited)
	lim := allocsPerSearch(t, limited)
	if added := lim - base; added > 1 {
		t.Fatalf("limiter adds %.1f allocs/request (unlimited %.1f, limited %.1f); budget is 1",
			added, base, lim)
	}
}

// TestBenchLimitsJSON renders the admission-control overhead as a
// machine-readable JSON file for CI's perf trajectory, mirroring
// TestBenchObsJSON. Gated on the BENCH_JSON env var naming the output
// path; a no-op otherwise.
func TestBenchLimitsJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set")
	}
	unlimited, limited := limitedBenchHandlers(t)
	bench := func(h http.Handler) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				searchOnce(b, h)
			}
		})
	}
	rU, rL := bench(unlimited), bench(limited)
	// Unit cost of one admitted Allow/Release on a warm bucket.
	l := limit.New(limit.Config{MaxInFlightPerPrincipal: 1 << 20})
	rate := limit.Rate{PerSec: 1e9, Burst: 1e9}
	l.Allow("bench", rate).Release()
	rAllow := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Allow("bench", rate).Release()
		}
	})
	report := map[string]float64{
		"search_unlimited_ns_per_op":  float64(rU.NsPerOp()),
		"search_limited_ns_per_op":    float64(rL.NsPerOp()),
		"limiter_added_ns_per_op":     float64(rL.NsPerOp() - rU.NsPerOp()),
		"limiter_added_allocs_per_op": allocsPerSearch(t, limited) - allocsPerSearch(t, unlimited),
		"allow_release_ns_per_op":     float64(rAllow.NsPerOp()),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
