package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"provpriv/internal/exec"
	"provpriv/internal/repo"
	"provpriv/internal/tasks"
)

// benchBatch pre-runs and marshals n fresh zebrafish executions with a
// distinct id prefix.
func benchBatch(b *testing.B, r *repo.Repository, prefix string, n int) []json.RawMessage {
	b.Helper()
	spec := r.Spec("zfish")
	items := make([]json.RawMessage, n)
	for j := range items {
		e, err := exec.NewRunner(spec, nil).Run(fmt.Sprintf("%s-%d", prefix, j), map[string]exec.Value{
			"x": exec.Value(fmt.Sprintf("tank-%s-%d", prefix, j)),
		})
		if err != nil {
			b.Fatal(err)
		}
		raw, err := json.Marshal(e)
		if err != nil {
			b.Fatal(err)
		}
		items[j] = raw
	}
	return items
}

// bulkIngestBatchSize is the batch one BenchmarkBulkIngest iteration
// pushes through the task runtime.
const bulkIngestBatchSize = 64

// BenchmarkBulkIngest measures the bulk path end to end minus HTTP:
// one iteration submits a pre-marshaled 64-item batch to the task
// runtime and waits for the worker to strict-decode, validate, and
// ingest every item.
func BenchmarkBulkIngest(b *testing.B) {
	r := repo.New()
	if err := r.AddSpec(zebrafishSpec(b, "zfish"), nil); err != nil {
		b.Fatal(err)
	}
	s := New(r)
	rt := tasks.New(2, 8)
	s.Tasks = rt
	defer rt.Drain(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := benchBatch(b, r, fmt.Sprintf("B%d", i), bulkIngestBatchSize)
		done := make(chan error, 1)
		b.StartTimer()
		_, err := rt.Submit(bulkIngestClass, func(ctx context.Context, p *tasks.Progress) (any, error) {
			res := &bulkResult{}
			p.Set(0, int64(len(items)))
			for k, raw := range items {
				if err := s.bulkItem(raw, res, k); err != nil {
					done <- err
					return nil, err
				}
				p.Add(1)
			}
			done <- nil
			return res, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bulkIngestBatchSize*b.N)/b.Elapsed().Seconds(), "execs/sec")
}

// BenchmarkSaveNoInlineCompact measures the incremental save with
// compaction moved off-path: each iteration adds one execution and
// saves, and the cost must stay O(delta) — one appended record — no
// matter how long the unfolded shard log has grown.
func BenchmarkSaveNoInlineCompact(b *testing.B) {
	dir := b.TempDir()
	r := repo.New()
	if err := r.AddSpec(zebrafishSpec(b, "zfish"), nil); err != nil {
		b.Fatal(err)
	}
	spec := r.Spec("zfish")
	if err := r.Save(dir); err != nil {
		b.Fatal(err)
	}
	defer r.CloseStorage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := exec.NewRunner(spec, nil).Run(fmt.Sprintf("S%d", i), map[string]exec.Value{
			"x": exec.Value(fmt.Sprintf("tank-%d", i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.AddExecution(e); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := r.Save(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchTasksJSON renders the async-runtime benchmarks as a
// machine-readable JSON file for CI's perf trajectory, mirroring
// TestBenchStorageJSON. Gated on the BENCH_JSON env var naming the
// output path; a no-op otherwise.
func TestBenchTasksJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("BENCH_JSON not set")
	}
	bi := testing.Benchmark(BenchmarkBulkIngest)
	sv := testing.Benchmark(BenchmarkSaveNoInlineCompact)
	report := map[string]float64{
		"bulk_ingest_execs_per_sec": bulkIngestBatchSize * float64(bi.N) / bi.T.Seconds(),
		"save_delta_ms":             float64(sv.NsPerOp()) / 1e6,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
