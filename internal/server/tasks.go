package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"provpriv/internal/exec"
	"provpriv/internal/obs"
	"provpriv/internal/repo"
	"provpriv/internal/tasks"
)

// The async surface: heavy operations return 202 + a task id instead of
// holding the connection, and the task endpoints let callers watch and
// cancel them. The runtime itself (internal/tasks) is owned by the
// operator (cmd/provserve sizes the pool and drains it on shutdown);
// a server without one serves 503 on the task surface.

// bulkMaxBodyBytes bounds the bulk-ingest body. Bulk exists to load a
// corpus in one request, so it gets a far larger cap than the single-
// object mutation endpoints. A variable so tests can lower it to
// exercise the 413 path without quarter-gigabyte payloads.
var bulkMaxBodyBytes int64 = 256 << 20

// bulkErrorCap bounds the per-item errors echoed in a bulk result; the
// failed count is always exact, the error list is a sample.
const bulkErrorCap = 100

// Task classes: retry budgets per kind of background work.
var (
	// bulkIngestClass never retries: items already added would re-fail
	// as duplicates, so per-item error accounting is the retry story.
	bulkIngestClass = tasks.Class{Kind: "bulk-ingest", MaxAttempts: 1}
	// compactClass retries folds that lose races with concurrent saves.
	compactClass = tasks.Class{
		Kind: "compact", MaxAttempts: 6,
		BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second,
		Multiplier: 2, Jitter: 0.2,
	}
	// prewarmClass: cache warming is cheap and worth one retry.
	prewarmClass = tasks.Class{
		Kind: "prewarm", MaxAttempts: 2,
		BaseDelay: 100 * time.Millisecond, Jitter: 0.2,
	}
)

// bulkItemHook, when set, runs before each bulk-ingest item is applied.
// Test seam: the cancel-mid-ingest churn test uses it to pace the
// worker so cancellation lands between items.
var bulkItemHook func(i int)

// submitErr maps task-runtime submission failures: a full queue is
// backpressure (429), a draining or absent runtime is the server going
// away (503).
func (s *Server) submitErr(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusServiceUnavailable
	if errors.Is(err, tasks.ErrQueueFull) {
		status = http.StatusTooManyRequests
		// Backpressure, not rejection: tell bulk clients when to come
		// back instead of letting them hammer the full queue. Queue
		// drain time is workload-dependent; one second is the
		// shortest honest hint.
		w.Header().Set("Retry-After", "1")
	}
	if s.Logger != nil {
		obs.RequestLogger(s.Logger, w, r).Warn("task submission rejected", "status", status, "error", err)
	}
	s.writeJSON(w, status, errorBody{Error: err.Error(), RequestID: obs.RequestID(w)})
}

// requireTasks serves 503 when no task runtime is configured.
func (s *Server) requireTasks(w http.ResponseWriter, r *http.Request) bool {
	if s.Tasks == nil {
		s.submitErr(w, r, fmt.Errorf("server: no task runtime configured"))
		return false
	}
	return true
}

// accepted writes the 202 envelope for a submitted task, with the
// status URL in Location.
func (s *Server) accepted(w http.ResponseWriter, id string, extra map[string]any) {
	body := map[string]any{"task": id}
	for k, v := range extra {
		body[k] = v
	}
	w.Header().Set("Location", "/api/v1/tasks/"+id)
	s.writeJSON(w, http.StatusAccepted, body)
}

func (s *Server) handleListTasks(w http.ResponseWriter, r *http.Request, user string) {
	if !s.requireTasks(w, r) {
		return
	}
	limit, offset, err := parsePage(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	list, total := s.Tasks.List(limit, offset)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"tasks": list, "total": total, "offset": offset,
	})
}

func (s *Server) handleGetTask(w http.ResponseWriter, r *http.Request, user string) {
	if !s.requireTasks(w, r) {
		return
	}
	snap, err := s.Tasks.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, r, fmt.Errorf("server: %v: %w", err, repo.ErrNotFound))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleCancelTask(w http.ResponseWriter, r *http.Request, user string) {
	if !s.requireTasks(w, r) {
		return
	}
	setAuditTarget(w, r.PathValue("id"))
	snap, err := s.Tasks.Cancel(r.PathValue("id"))
	if err != nil {
		s.fail(w, r, fmt.Errorf("server: %v: %w", err, repo.ErrNotFound))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// bulkItemError is one failed item of a bulk ingest: which array index,
// which execution (when the item parsed far enough to name one), and
// why.
type bulkItemError struct {
	Index int    `json:"index"`
	Exec  string `json:"exec,omitempty"`
	Error string `json:"error"`
}

// bulkResult is a bulk-ingest task's terminal result. Failed is exact;
// Errors samples the first bulkErrorCap failures.
type bulkResult struct {
	Added           int             `json:"added"`
	Failed          int             `json:"failed"`
	Errors          []bulkItemError `json:"errors,omitempty"`
	ErrorsTruncated bool            `json:"errors_truncated,omitempty"`
}

// handleBulkExecutions accepts a JSON array of execution objects and
// ingests it on the worker pool: the request returns 202 + a task id
// as soon as the array has been read and split, and the task reports
// per-item progress. One bad execution fails that item — recorded in
// the result with its index — never the batch.
func (s *Server) handleBulkExecutions(w http.ResponseWriter, r *http.Request, user string) {
	if !s.requireTasks(w, r) {
		return
	}
	items, err := decodeBulkItems(w, r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	id, err := s.Tasks.Submit(bulkIngestClass, func(ctx context.Context, p *tasks.Progress) (any, error) {
		res := &bulkResult{}
		p.Set(0, int64(len(items)))
		for i, raw := range items {
			if err := ctx.Err(); err != nil {
				// Canceled mid-batch: everything ingested so far stays —
				// each item was applied atomically by the engine.
				return nil, err
			}
			if bulkItemHook != nil {
				bulkItemHook(i)
			}
			if err := s.bulkItem(raw, res, i); err != nil {
				res.Failed++
				if len(res.Errors) < bulkErrorCap {
					res.Errors = append(res.Errors, bulkItemError{
						Index: i, Exec: execIDOf(raw), Error: err.Error(),
					})
				} else {
					res.ErrorsTruncated = true
				}
				p.Note(err)
			} else {
				res.Added++
			}
			p.Add(1)
		}
		return res, nil
	})
	if err != nil {
		s.submitErr(w, r, err)
		return
	}
	s.mutations.Add(1)
	s.accepted(w, id, map[string]any{"items": len(items)})
}

// bulkItem validates and applies one bulk item with the same strictness
// as POST /api/v1/executions.
func (s *Server) bulkItem(raw json.RawMessage, res *bulkResult, i int) error {
	e := &exec.Execution{}
	if err := strictUnmarshal(raw, e); err != nil {
		return err
	}
	if e.ID == "" || e.SpecID == "" {
		return fmt.Errorf("server: execution needs non-empty id and spec")
	}
	return s.repo.AddExecution(e)
}

// execIDOf best-effort extracts the execution id of a raw bulk item for
// error reporting; a malformed item just reports by index.
func execIDOf(raw json.RawMessage) string {
	var probe struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(raw, &probe) != nil {
		return ""
	}
	return probe.ID
}

// decodeBulkItems streams the request's JSON array into raw items
// without decoding the executions yet (that is the task's job, with
// per-item error accounting). A malformed array envelope is the
// caller's 400; malformed elements inside it are per-item failures.
func decodeBulkItems(w http.ResponseWriter, r *http.Request) ([]json.RawMessage, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, bulkMaxBodyBytes))
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("server: bad bulk body: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("server: bulk body must be a JSON array of executions")
	}
	var items []json.RawMessage
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			// %w keeps an oversized body's *http.MaxBytesError reachable
			// for fail()'s 413 mapping.
			return nil, fmt.Errorf("server: bad bulk body at item %d: %w", len(items), err)
		}
		items = append(items, raw)
	}
	if _, err := dec.Token(); err != nil { // closing ']'
		return nil, fmt.Errorf("server: bad bulk body: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("server: trailing data after bulk body")
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("server: bulk body holds no executions")
	}
	return items, nil
}

// handleCompact submits a compaction pass over every shard whose log
// has outgrown the threshold. Deduplicated: while a pass is pending or
// running, the same task is returned instead of piling up another.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request, user string) {
	if !s.requireTasks(w, r) {
		return
	}
	id, err := s.enqueueCompaction()
	if err != nil {
		s.submitErr(w, r, err)
		return
	}
	s.accepted(w, id, map[string]any{"pending": len(s.repo.NeedsCompaction())})
}

// enqueueCompaction submits the compaction pass unless one is already
// live, in which case its task id is returned.
func (s *Server) enqueueCompaction() (string, error) {
	if prev, _ := s.compactTask.Load().(string); prev != "" {
		if snap, err := s.Tasks.Get(prev); err == nil && !snap.TerminalState() {
			return prev, nil
		}
	}
	id, err := s.Tasks.Submit(compactClass, func(ctx context.Context, p *tasks.Progress) (any, error) {
		// The work list is re-read on every attempt: a retry after a
		// conflict folds against the post-save state.
		sids := s.repo.NeedsCompaction()
		p.Set(0, int64(len(sids)))
		folded := 0
		var conflicts []string
		for _, sid := range sids {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			err := s.repo.CompactShard(sid)
			switch {
			case err == nil:
				folded++
			case errors.Is(err, repo.ErrCompactConflict):
				conflicts = append(conflicts, sid)
				p.Note(err)
			case errors.Is(err, repo.ErrNoStorage):
				return nil, tasks.Permanent(err)
			default:
				return nil, err
			}
			p.Add(1)
		}
		if len(conflicts) > 0 {
			return nil, fmt.Errorf("server: %d shards lost the fold race (%s): %w",
				len(conflicts), strings.Join(conflicts, ", "), repo.ErrCompactConflict)
		}
		return map[string]any{"folded": folded}, nil
	})
	if err != nil {
		return "", err
	}
	s.compactTask.Store(id)
	return id, nil
}

// EnqueueCompaction submits (or dedups onto) a background compaction
// pass when shards need folding — the hook for an operator-side ticker
// (provserve -compact-interval). Returns the task id or "".
func (s *Server) EnqueueCompaction() string { return s.maybeEnqueueCompaction() }

// maybeEnqueueCompaction fires the compaction pass after a save when
// shards have outgrown the threshold — the off-path fold that keeps
// Save O(delta). Returns the task id, or "" when there is nothing to
// do, no runtime, or the queue pushed back (the next save retries).
func (s *Server) maybeEnqueueCompaction() string {
	if s.Tasks == nil || len(s.repo.NeedsCompaction()) == 0 {
		return ""
	}
	id, err := s.enqueueCompaction()
	if err != nil {
		s.log().Warn("compaction enqueue failed", "error", err)
		return ""
	}
	return id
}

// enqueuePrewarm fires the snapshot-cache prewarm job after a policy or
// generalization change purged a spec's masked snapshots. Best-effort:
// on queue pushback the caches simply warm lazily, as they always did.
func (s *Server) enqueuePrewarm(specID string) string {
	if s.Tasks == nil {
		return ""
	}
	id, err := s.Tasks.Submit(prewarmClass, func(ctx context.Context, p *tasks.Progress) (any, error) {
		n, err := s.repo.PrewarmMasked(ctx, specID, nil, p.Set)
		if err != nil {
			return nil, err
		}
		return map[string]any{"spec": specID, "warmed": n}, nil
	})
	if err != nil {
		s.log().Warn("prewarm enqueue failed", "spec", specID, "error", err)
		return ""
	}
	return id
}
