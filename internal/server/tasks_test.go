package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"provpriv/internal/auth"
	"provpriv/internal/exec"
	"provpriv/internal/repo"
	"provpriv/internal/tasks"
)

// newTaskServer is newAuthedServer plus a live task runtime, installed
// before the listener starts so handlers never race the field write.
func newTaskServer(t *testing.T, workers, queue int) (*httptest.Server, *Server, *repo.Repository) {
	t.Helper()
	_, r, _ := newTestServer(t)
	a, err := auth.New([]*auth.Token{
		auth.NewToken("t-reader", "bob", auth.RoleReader, readerSecret),
		auth.NewToken("t-writer", "carol", auth.RoleWriter, writerSecret),
		auth.NewToken("t-admin", "alice", auth.RoleAdmin, adminSecret),
	})
	if err != nil {
		t.Fatalf("auth.New: %v", err)
	}
	srv := New(r)
	srv.Auth = auth.NewStore(a)
	rt := tasks.New(workers, queue)
	srv.Tasks = rt
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Drain(ctx)
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, r
}

// tryDo is the goroutine-safe bearer-auth request helper: failures come
// back as values, not testing.T calls.
func tryDo(ts *httptest.Server, method, path, secret string, out any) (int, error) {
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		return 0, err
	}
	if secret != "" {
		req.Header.Set("Authorization", "Bearer "+secret)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("bad JSON %q: %w", body, err)
		}
	}
	return resp.StatusCode, nil
}

// waitTask polls the task endpoint until the task is terminal and
// returns its final snapshot (decoded loosely).
func waitTask(t *testing.T, ts *httptest.Server, secret, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var snap map[string]any
		if code := do(t, ts, "GET", "/api/v1/tasks/"+id, secret, nil, &snap); code != http.StatusOK {
			t.Fatalf("get task %s: %d", id, code)
		}
		switch snap["state"] {
		case "succeeded", "failed", "canceled":
			return snap
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("task %s never reached a terminal state", id)
	return nil
}

// bulkBatch marshals n zebrafish executions (EZ<start>..) as a JSON
// array, returning the array and the raw items.
func bulkBatch(t *testing.T, r *repo.Repository, specID string, start, n int) []byte {
	t.Helper()
	spec := r.Spec(specID)
	if spec == nil {
		t.Fatalf("spec %s not registered", specID)
	}
	items := make([]json.RawMessage, 0, n)
	for i := start; i < start+n; i++ {
		e, err := exec.NewRunner(spec, nil).Run(fmt.Sprintf("EZ%d", i), map[string]exec.Value{
			"x": exec.Value(fmt.Sprintf("tank-%d", i)),
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		raw, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, raw)
	}
	body, err := json.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestBulkIngestEndToEnd: a writer posts a batch with one poisoned
// item, gets 202 + a task id, and the terminal task reports per-item
// accounting — the bad item failed with its index, every other item
// landed and is immediately searchable.
func TestBulkIngestEndToEnd(t *testing.T) {
	ts, _, r := newTaskServer(t, 2, 16)
	if err := r.AddSpec(zebrafishSpec(t, "zfish"), nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	var items []json.RawMessage
	if err := json.Unmarshal(bulkBatch(t, r, "zfish", 0, 3), &items); err != nil {
		t.Fatal(err)
	}
	// Poison index 2: an unknown field must fail that item, not the batch.
	items = append(items[:2], append([]json.RawMessage{json.RawMessage(`{"bogus":true}`)}, items[2:]...)...)
	body, _ := json.Marshal(items)

	var acc struct {
		Task  string `json:"task"`
		Items int    `json:"items"`
	}
	if code := do(t, ts, "POST", "/api/v1/executions:bulk", writerSecret, body, &acc); code != http.StatusAccepted {
		t.Fatalf("bulk ingest status = %d", code)
	}
	if acc.Task == "" || acc.Items != 4 {
		t.Fatalf("bulk accept = %+v", acc)
	}

	snap := waitTask(t, ts, writerSecret, acc.Task)
	if snap["state"] != "succeeded" {
		t.Fatalf("bulk task = %+v", snap)
	}
	res, _ := snap["result"].(map[string]any)
	if res == nil || res["added"] != float64(3) || res["failed"] != float64(1) {
		t.Fatalf("bulk result = %+v", res)
	}
	errs, _ := res["errors"].([]any)
	if len(errs) != 1 {
		t.Fatalf("bulk errors = %+v", errs)
	}
	if e0, _ := errs[0].(map[string]any); e0["index"] != float64(2) {
		t.Fatalf("poisoned item index = %+v", errs[0])
	}

	// The ingested executions are live: reader search finds the spec.
	var sr searchResp
	if code := do(t, ts, "GET", "/api/v1/search?q=zebrafish", adminSecret, nil, &sr); code != http.StatusOK {
		t.Fatalf("search after bulk: %d", code)
	}
	if len(sr.Hits) != 1 || sr.Hits[0].SpecID != "zfish" {
		t.Fatalf("bulk-ingested spec not searchable: %+v", sr.Hits)
	}
	if got := len(r.ExecutionIDs("zfish")); got != 3 {
		t.Fatalf("zfish executions = %d, want 3", got)
	}
}

// TestBulkIngestRejectsBadEnvelope: a malformed array envelope is the
// caller's 400 — nothing is enqueued.
func TestBulkIngestRejectsBadEnvelope(t *testing.T) {
	ts, srv, _ := newTaskServer(t, 1, 4)
	for _, body := range []string{`{}`, `[]`, `[{"id":"x"}]trailing`, `not json`} {
		if code := do(t, ts, "POST", "/api/v1/executions:bulk", writerSecret, []byte(body), nil); code != http.StatusBadRequest {
			t.Errorf("bulk %q status = %d, want 400", body, code)
		}
	}
	if st := srv.Tasks.Stats(); st.Submitted != 0 {
		t.Fatalf("bad envelopes enqueued %d tasks", st.Submitted)
	}
}

// TestTaskEndpointsAuthzAndPagination: task introspection needs the
// writer role; the list pages newest-first; unknown ids are 404.
func TestTaskEndpointsAuthzAndPagination(t *testing.T) {
	ts, _, r := newTaskServer(t, 2, 16)
	if err := r.AddSpec(zebrafishSpec(t, "zfish"), nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		var acc struct {
			Task string `json:"task"`
		}
		if code := do(t, ts, "POST", "/api/v1/executions:bulk", writerSecret, bulkBatch(t, r, "zfish", i*10, 2), &acc); code != http.StatusAccepted {
			t.Fatalf("bulk %d: %d", i, code)
		}
		ids = append(ids, acc.Task)
		waitTask(t, ts, writerSecret, acc.Task)
	}

	// Reader role: 403 on every task endpoint (and bulk ingest).
	for _, probe := range []struct{ method, path string }{
		{"GET", "/api/v1/tasks"},
		{"GET", "/api/v1/tasks/" + ids[0]},
		{"DELETE", "/api/v1/tasks/" + ids[0]},
		{"POST", "/api/v1/executions:bulk"},
	} {
		if code := do(t, ts, probe.method, probe.path, readerSecret, nil, nil); code != http.StatusForbidden {
			t.Errorf("%s %s as reader = %d, want 403", probe.method, probe.path, code)
		}
	}
	// Compaction is an operator action: even the writer is refused.
	if code := do(t, ts, "POST", "/api/v1/compact", writerSecret, nil, nil); code != http.StatusForbidden {
		t.Errorf("compact as writer = %d, want 403", code)
	}

	var list struct {
		Tasks []map[string]any `json:"tasks"`
		Total int              `json:"total"`
	}
	if code := do(t, ts, "GET", "/api/v1/tasks?limit=1&offset=1", writerSecret, nil, &list); code != http.StatusOK {
		t.Fatalf("list tasks: %d", code)
	}
	if list.Total != 3 || len(list.Tasks) != 1 {
		t.Fatalf("paged list = total %d, %d rows", list.Total, len(list.Tasks))
	}
	// Newest first: offset 1 is the second-newest submission.
	if got := list.Tasks[0]["id"]; got != ids[1] {
		t.Fatalf("page row = %v, want %s", got, ids[1])
	}
	if code := do(t, ts, "GET", "/api/v1/tasks/nope", writerSecret, nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown task = %d, want 404", code)
	}

	// Tasks counters surface in /stats and /metrics.
	var st statsBody
	if code := do(t, ts, "GET", "/api/v1/stats", adminSecret, nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Tasks == nil || st.Tasks.Succeeded != 3 {
		t.Fatalf("stats tasks = %+v", st.Tasks)
	}
	if v := scrapeMetric(t, ts, "provpriv_tasks_succeeded_total"); v != 3 {
		t.Fatalf("tasks_succeeded_total = %d, want 3", v)
	}
}

// TestTaskEndpointsWithoutRuntime: a server with no task runtime serves
// 503 on the whole async surface instead of panicking or hanging.
func TestTaskEndpointsWithoutRuntime(t *testing.T) {
	ts, _, _, _ := newAuthedServer(t)
	for _, probe := range []struct{ method, path, secret string }{
		{"GET", "/api/v1/tasks", writerSecret},
		{"GET", "/api/v1/tasks/t000001", writerSecret},
		{"DELETE", "/api/v1/tasks/t000001", writerSecret},
		{"POST", "/api/v1/executions:bulk", writerSecret},
		{"POST", "/api/v1/compact", adminSecret},
	} {
		if code := do(t, ts, probe.method, probe.path, probe.secret, nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s %s without runtime = %d, want 503", probe.method, probe.path, code)
		}
	}
}

// TestCancelMidBulkIngestKeepsRepoConsistent: cancel lands while a big
// batch is half-ingested, with readers hammering the repository the
// whole time. The prefix ingested before the cancel stays live and
// duplicate-protected; re-posting the full batch afterwards ingests
// exactly the missing suffix.
func TestCancelMidBulkIngestKeepsRepoConsistent(t *testing.T) {
	ts, _, r := newTaskServer(t, 1, 8)
	if err := r.AddSpec(zebrafishSpec(t, "zfish"), nil); err != nil {
		t.Fatalf("AddSpec: %v", err)
	}
	const batch = 150
	body := bulkBatch(t, r, "zfish", 0, batch)

	// Pace the single worker so the DELETE lands mid-batch.
	bulkItemHook = func(int) { time.Sleep(2 * time.Millisecond) }
	defer func() { bulkItemHook = nil }()

	var acc struct {
		Task string `json:"task"`
	}
	if code := do(t, ts, "POST", "/api/v1/executions:bulk", writerSecret, body, &acc); code != http.StatusAccepted {
		t.Fatalf("bulk ingest status = %d", code)
	}

	// Concurrent readers churn search/specs/stats while the ingest runs
	// and while it is being canceled.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/api/v1/search?q=zebrafish", "/api/v1/specs", "/api/v1/stats"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if code, err := tryDo(ts, "GET", paths[i%len(paths)], adminSecret, nil); err != nil || code != http.StatusOK {
					errc <- fmt.Errorf("reader %s: code %d err %v", paths[i%len(paths)], code, err)
					return
				}
			}
		}()
	}

	time.Sleep(40 * time.Millisecond)
	var canceled map[string]any
	if code := do(t, ts, "DELETE", "/api/v1/tasks/"+acc.Task, writerSecret, nil, &canceled); code != http.StatusOK {
		t.Fatalf("cancel status = %d", code)
	}
	snap := waitTask(t, ts, writerSecret, acc.Task)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("concurrent reader failed during canceled ingest: %v", err)
	default:
	}
	if snap["state"] != "canceled" {
		t.Fatalf("task after cancel = %v", snap["state"])
	}

	ingested := len(r.ExecutionIDs("zfish"))
	if ingested >= batch {
		t.Fatalf("cancel landed after the whole batch (%d) ingested; nothing was interrupted", ingested)
	}

	// Consistency proof: re-posting the identical batch ingests exactly
	// the suffix — the prefix is intact and duplicate-rejected.
	bulkItemHook = nil
	var acc2 struct {
		Task string `json:"task"`
	}
	if code := do(t, ts, "POST", "/api/v1/executions:bulk", writerSecret, body, &acc2); code != http.StatusAccepted {
		t.Fatalf("re-ingest status = %d", code)
	}
	snap2 := waitTask(t, ts, writerSecret, acc2.Task)
	if snap2["state"] != "succeeded" {
		t.Fatalf("re-ingest task = %+v", snap2)
	}
	res, _ := snap2["result"].(map[string]any)
	if res == nil || res["added"] != float64(batch-ingested) || res["failed"] != float64(ingested) {
		t.Fatalf("re-ingest result = %+v with %d pre-ingested", res, ingested)
	}
	if got := len(r.ExecutionIDs("zfish")); got != batch {
		t.Fatalf("final executions = %d, want %d", got, batch)
	}
}

// TestPolicyChangeEnqueuesPrewarm: PUT /policy returns the prewarm task
// id; the task rebuilds one masked snapshot per (execution, user
// level) so the next enforced read is a cache hit.
func TestPolicyChangeEnqueuesPrewarm(t *testing.T) {
	ts, _, r := newTaskServer(t, 2, 8)
	var out struct {
		Spec string `json:"spec"`
		Task string `json:"task"`
	}
	body := []byte(`{"spec":"disease-susceptibility"}`)
	if code := do(t, ts, "PUT", "/api/v1/policy", writerSecret, body, &out); code != http.StatusOK {
		t.Fatalf("update policy: %d", code)
	}
	if out.Task == "" {
		t.Fatal("policy change returned no prewarm task")
	}
	snap := waitTask(t, ts, writerSecret, out.Task)
	if snap["state"] != "succeeded" {
		t.Fatalf("prewarm task = %+v", snap)
	}
	res, _ := snap["result"].(map[string]any)
	// Three distinct user levels (owner, public, analyst) × one execution.
	if res == nil || res["warmed"] != float64(3) {
		t.Fatalf("prewarm result = %+v", res)
	}
	hits0 := r.Stats().MaskedCacheHits
	if code := do(t, ts, "GET", "/api/v1/provenance?spec=disease-susceptibility&exec=E1&item=d1", readerSecret, nil, nil); code != http.StatusOK {
		t.Fatalf("provenance after prewarm: %d", code)
	}
	if hits := r.Stats().MaskedCacheHits; hits <= hits0 {
		t.Fatalf("read after prewarm missed the cache: hits %d -> %d", hits0, hits)
	}
}

// TestCompactEndpointDedupes: POST /compact is admin-only, returns 202,
// and while a pass is still pending a second POST returns the same task
// instead of piling up another.
func TestCompactEndpointDedupes(t *testing.T) {
	ts, srv, _ := newTaskServer(t, 1, 8)
	// Wedge the single worker so the compaction task stays pending.
	block := make(chan struct{})
	if _, err := srv.Tasks.Submit(tasks.Class{Kind: "block", MaxAttempts: 1}, func(ctx context.Context, p *tasks.Progress) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return nil, nil
	}); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}

	var first, second struct {
		Task string `json:"task"`
	}
	if code := do(t, ts, "POST", "/api/v1/compact", adminSecret, nil, &first); code != http.StatusAccepted {
		t.Fatalf("compact status = %d", code)
	}
	if code := do(t, ts, "POST", "/api/v1/compact", adminSecret, nil, &second); code != http.StatusAccepted {
		t.Fatalf("second compact status = %d", code)
	}
	if first.Task == "" || first.Task != second.Task {
		t.Fatalf("compact not deduplicated: %q vs %q", first.Task, second.Task)
	}
	close(block)
	snap := waitTask(t, ts, adminSecret, first.Task)
	// No bound storage and no oversized shards: the pass folds nothing
	// and succeeds.
	if snap["state"] != "succeeded" {
		t.Fatalf("compact task = %+v", snap)
	}
	// With the first pass terminal, a new POST starts a fresh task.
	var third struct {
		Task string `json:"task"`
	}
	if code := do(t, ts, "POST", "/api/v1/compact", adminSecret, nil, &third); code != http.StatusAccepted {
		t.Fatalf("third compact status = %d", code)
	}
	if third.Task == first.Task {
		t.Fatal("terminal compact task was reused")
	}
	waitTask(t, ts, adminSecret, third.Task)
}
