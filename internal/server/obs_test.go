package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"provpriv/internal/obs"
	"provpriv/internal/tasks"
)

// newObsServer builds the fixture repository behind a server wrapped in
// the full observability middleware: every request sampled, slow
// threshold 1ns so every request is "slow" (exercising the slow-request
// path deterministically). Dev-mode header auth keeps alice an admin,
// so the debug endpoints are reachable without a token file.
func newObsServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	_, r, _ := newTestServer(t)
	srv := New(r)
	srv.SaveDir = t.TempDir()
	srv.Obs = obs.NewObserver(obs.NewMetrics(), nil, obs.NewTracer(64, 1, time.Nanosecond))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// findSpan walks a span tree depth-first for the first span with the
// given name.
func findSpan(spans []obs.SpanView, name string) *obs.SpanView {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
		if s := findSpan(spans[i].Children, name); s != nil {
			return s
		}
	}
	return nil
}

// findTrace returns the newest trace with the given name.
func findTrace(traces []obs.TraceView, name string) *obs.TraceView {
	for i := range traces {
		if traces[i].Name == name {
			return &traces[i]
		}
	}
	return nil
}

type tracesResp struct {
	SlowThreshold string          `json:"slow_threshold"`
	Traces        []obs.TraceView `json:"traces"`
}

// TestDebugTracesSpanTree is the PR's acceptance criterion: a slow
// masked query produces a trace in GET /api/v1/debug/traces whose span
// tree shows the handler, the shard fan-out and the masked-cache fill
// (with its view/taint/mask children), each with a duration; and — since
// read paths never touch the storage backend — the storage spans appear
// on a traced POST /api/v1/save, the one request class that writes
// through the backend.
func TestDebugTracesSpanTree(t *testing.T) {
	ts, _ := newObsServer(t)
	// A masked all-executions query: the first touch misses every cache,
	// so the trace records the fill work, not just a lookup.
	q := "/api/v1/query?spec=disease-susceptibility&q=MATCH+a+%3D+%22reformat%22"
	if code := get(t, ts, "carol", q, nil); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if code := do(t, ts, http.MethodPost, "/api/v1/save", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated save status = %d", code)
	}
	// Save as alice (dev-mode header auth grants admin).
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/save", nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("X-Prov-User", "alice")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST save: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save status = %d", resp.StatusCode)
	}

	var tr tracesResp
	if code := get(t, ts, "alice", "/api/v1/debug/traces", &tr); code != http.StatusOK {
		t.Fatalf("debug/traces status = %d", code)
	}
	if tr.SlowThreshold != time.Nanosecond.String() {
		t.Fatalf("slow_threshold = %q", tr.SlowThreshold)
	}

	qt := findTrace(tr.Traces, "GET /api/v1/query")
	if qt == nil {
		t.Fatalf("no query trace; got %d traces", len(tr.Traces))
	}
	if qt.ID == "" || qt.Status != http.StatusOK || qt.DurNs <= 0 {
		t.Fatalf("query trace = %+v", qt)
	}
	if !qt.Slow {
		t.Fatalf("query trace not marked slow at a 1ns threshold")
	}
	// The span tree: handler → shard fan-out → masked-cache fill →
	// view/taint/mask children, each with a recorded duration.
	handler := findSpan(qt.Spans, "handler")
	if handler == nil {
		t.Fatalf("no handler span: %+v", qt.Spans)
	}
	fanout := findSpan(handler.Children, "query.fanout.match")
	if fanout == nil {
		t.Fatalf("no query.fanout.match under handler: %+v", handler)
	}
	fill := findSpan(fanout.Children, "cache.masked_fill")
	if fill == nil {
		t.Fatalf("no cache.masked_fill under fan-out: %+v", fanout)
	}
	for _, name := range []string{"cache.view_fill", "taint.analyze", "mask.apply"} {
		child := findSpan(fill.Children, name)
		if child == nil {
			t.Fatalf("no %s under cache.masked_fill: %+v", name, fill)
		}
		if child.DurNs < 0 {
			t.Fatalf("%s has negative duration", name)
		}
	}
	for _, s := range []*obs.SpanView{handler, fanout, fill} {
		if s.DurNs <= 0 {
			t.Fatalf("span %s has no duration", s.Name)
		}
	}

	st := findTrace(tr.Traces, "POST /api/v1/save")
	if st == nil {
		t.Fatalf("no save trace")
	}
	save := findSpan(st.Spans, "storage.save")
	if save == nil {
		t.Fatalf("no storage.save span: %+v", st.Spans)
	}
	if findSpan(save.Children, "storage.checkpoint") == nil && findSpan(save.Children, "storage.append") == nil {
		t.Fatalf("no shard write span under storage.save: %+v", save)
	}
	if commit := findSpan(save.Children, "storage.commit"); commit == nil {
		t.Fatalf("no storage.commit span under storage.save: %+v", save)
	}
}

// TestMetricsExpositionAndMonotonicity scrapes /metrics through the
// middleware, validates the exposition format with the strict parser,
// mutates the repository, and asserts every *_total series is monotone
// across the two scrapes (satellite: counters must never step backward
// over a mutation).
func TestMetricsExpositionAndMonotonicity(t *testing.T) {
	ts, _ := newObsServer(t)
	scrape := func() map[string]float64 {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read metrics: %v", err)
		}
		if err := obs.ValidateExposition(data); err != nil {
			t.Fatalf("invalid exposition:\n%v\n---\n%s", err, data)
		}
		series, err := obs.ExpositionSeries(data)
		if err != nil {
			t.Fatalf("parse series: %v", err)
		}
		return series
	}

	// Warm some routes first so labeled request series exist.
	get(t, ts, "alice", "/api/v1/search?q=omim", nil)
	before := scrape()

	// Mutations: a search (cache + request counters), an auth failure,
	// a policy replacement (mutations_total, cache purge + refill).
	get(t, ts, "alice", "/api/v1/search?q=omim", nil)
	get(t, ts, "", "/api/v1/search?q=omim", nil) // 401 → auth_failures_total
	body := []byte(`{"spec":"disease-susceptibility"}`)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/api/v1/policy", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("X-Prov-User", "alice")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("PUT policy: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy status = %d", resp.StatusCode)
	}
	get(t, ts, "carol", "/api/v1/query?spec=disease-susceptibility&q=MATCH+a+%3D+%22reformat%22", nil)

	after := scrape()
	checked := 0
	for key, v := range before {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !strings.HasSuffix(name, "_total") {
			continue
		}
		now, ok := after[key]
		if !ok {
			t.Errorf("series %s disappeared between scrapes", key)
			continue
		}
		if now < v {
			t.Errorf("counter %s went backward: %v → %v", key, v, now)
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no *_total series found to check")
	}
	// The mutations we made must be visible.
	if after["provpriv_mutations_total"] <= before["provpriv_mutations_total"] {
		t.Fatalf("mutations_total did not advance: %v → %v",
			before["provpriv_mutations_total"], after["provpriv_mutations_total"])
	}
	if after["provpriv_auth_failures_total"] <= before["provpriv_auth_failures_total"] {
		t.Fatalf("auth_failures_total did not advance")
	}
}

// TestProbes covers the healthz/readyz matrix: always-alive liveness; a
// readiness that flips with drain state, task-runtime drain, and the
// storage-binding requirement.
func TestProbes(t *testing.T) {
	ts, srv := newObsServer(t)
	probe := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", path, err)
		}
		return resp.StatusCode, body
	}
	if code, body := probe("/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, body)
	}
	if code, body := probe("/readyz"); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz = %d %v", code, body)
	}

	// Draining → not ready; healthz unaffected (the process is still up).
	srv.SetDraining(true)
	if code, body := probe("/readyz"); code != http.StatusServiceUnavailable || body["status"] != "not ready" {
		t.Fatalf("draining readyz = %d %v", code, body)
	}
	if code, _ := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("draining healthz = %d", code)
	}
	srv.SetDraining(false)

	// A persisting server is not ready until a storage backend is bound.
	srv.RequireStorage = true
	code, body := probe("/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unbound readyz = %d %v", code, body)
	}
	if err := srv.repo.Save(srv.SaveDir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if code, _ := probe("/readyz"); code != http.StatusOK {
		t.Fatalf("bound readyz = %d", code)
	}

	// A draining task runtime blocks readiness too.
	rt := tasks.New(1, 4)
	srv.Tasks = rt
	if code, _ := probe("/readyz"); code != http.StatusOK {
		t.Fatalf("live task runtime readyz = %d", code)
	}
	if err := rt.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if code, body := probe("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("drained-tasks readyz = %d %v", code, body)
	}
}

// TestFailEchoesRequestID: error envelopes produced behind the
// middleware carry the request id, matching the X-Request-Id response
// header — so a user can quote the id that logs and traces are keyed by.
func TestFailEchoesRequestID(t *testing.T) {
	ts, _ := newObsServer(t)
	resp, err := ts.Client().Get(ts.URL + "/api/v1/search?q=omim") // no principal → 401
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-Id")
	if len(rid) != 32 {
		t.Fatalf("X-Request-Id = %q", rid)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.RequestID != rid {
		t.Fatalf("body request_id %q != header %q", body.RequestID, rid)
	}
	if body.Error == "" {
		t.Fatalf("empty error message")
	}
}

// TestPprofGating: the pprof surface requires BOTH the admin role and
// the operator opt-in. Disabled servers 404 even for admins
// (indistinguishable from absent); enabled servers still 403 readers.
func TestPprofGating(t *testing.T) {
	ts, srv, _, _ := newAuthedServer(t)
	fetch := func(secret string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/debug/pprof/", nil)
		if err != nil {
			t.Fatalf("NewRequest: %v", err)
		}
		if secret != "" {
			req.Header.Set("Authorization", "Bearer "+secret)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("GET pprof: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := fetch(""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated pprof = %d", code)
	}
	if code := fetch(adminSecret); code != http.StatusNotFound {
		t.Fatalf("disabled pprof as admin = %d", code)
	}
	srv.EnablePprof = true
	if code := fetch(readerSecret); code != http.StatusForbidden {
		t.Fatalf("enabled pprof as reader = %d", code)
	}
	if code := fetch(adminSecret); code != http.StatusOK {
		t.Fatalf("enabled pprof as admin = %d", code)
	}
	// Traces are admin-gated the same way (but need no opt-in).
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/debug/traces", nil)
	req.Header.Set("Authorization", "Bearer "+readerSecret)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET traces: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("traces as reader = %d", resp.StatusCode)
	}
}
