package server

import (
	"errors"
	"fmt"
	"net/http"

	"provpriv/internal/auth"
	"provpriv/internal/repo"
)

// Token lifecycle endpoints (admin only): list the live token set,
// mint a token at runtime, revoke one. Mutations go through
// auth.Store, which swaps the set atomically (in-flight requests are
// untouched) and rewrites the operator's token file when one is
// configured — so a token minted over the wire survives a restart, and
// a revocation is effective on the next request, no restart needed.

// tokenRequest is the POST /api/v1/tokens body. Secret is optional:
// when omitted the server generates a 256-bit random secret and
// returns it once in the response — the only time it ever crosses the
// wire southbound — which is the recommended flow (client-chosen
// secrets risk low entropy; see internal/auth).
type tokenRequest struct {
	Name   string `json:"name"`
	User   string `json:"user"`
	Role   string `json:"role"`
	Secret string `json:"secret,omitempty"`
}

// handleListTokens serves the live token set's stats (names, users,
// roles, use counters — never secret material).
func (s *Server) handleListTokens(w http.ResponseWriter, r *http.Request, user string) {
	if s.Auth == nil {
		s.fail(w, r, fmt.Errorf("server: token auth not configured"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"tokens": s.Auth.Stats()})
}

// handleAddToken mints a token: validates, registers it in the live
// set, persists the token file. 409 on a duplicate name.
func (s *Server) handleAddToken(w http.ResponseWriter, r *http.Request, user string) {
	if s.Auth == nil {
		s.fail(w, r, fmt.Errorf("server: token auth not configured"))
		return
	}
	var req tokenRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if req.Name == "" || req.User == "" {
		s.fail(w, r, fmt.Errorf("server: token needs a name and a user"))
		return
	}
	role, err := auth.ParseRole(req.Role)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	setAuditTarget(w, req.Name)
	secret := req.Secret
	generated := secret == ""
	if generated {
		if secret, err = auth.NewSecret(); err != nil {
			s.fail(w, r, err)
			return
		}
	}
	if err := s.Auth.Add(req.Name, req.User, role, secret); err != nil {
		if errors.Is(err, auth.ErrTokenExists) {
			err = fmt.Errorf("server: token %q: %w", req.Name, repo.ErrExists)
		}
		s.fail(w, r, err)
		return
	}
	body := map[string]any{"name": req.Name, "user": req.User, "role": role.String()}
	if generated {
		// Echo only secrets we minted; a client-supplied secret is
		// already known to the client and never reflected.
		body["secret"] = secret
	}
	s.mutated(w, http.StatusCreated, body)
}

// handleRemoveToken revokes a token by name. In-flight requests that
// already authenticated with it finish; the next request fails 401.
func (s *Server) handleRemoveToken(w http.ResponseWriter, r *http.Request, user string) {
	if s.Auth == nil {
		s.fail(w, r, fmt.Errorf("server: token auth not configured"))
		return
	}
	name := r.PathValue("name")
	setAuditTarget(w, name)
	if err := s.Auth.Remove(name); err != nil {
		if errors.Is(err, auth.ErrTokenNotFound) {
			err = fmt.Errorf("server: token %q: %w", name, repo.ErrNotFound)
		}
		s.fail(w, r, err)
		return
	}
	s.mutated(w, http.StatusOK, map[string]any{"removed": name})
}
