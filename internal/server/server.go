// Package server exposes the sharded provenance repository over HTTP —
// the multi-tenant serving surface the paper's vision implies: a shared
// repository "searched and queried by many users with different levels
// of access", and since the mutation endpoints landed, also written to
// over the wire. Every endpoint authenticates a repository principal
// and evaluates under that user's privacy level; privacy enforcement
// stays inside the engine, the transport only maps sentinel errors to
// status codes:
//
//	repo.ErrUnknownUser → 401
//	repo.ErrDenied      → 403
//	repo.ErrNotFound    → 404
//	repo.ErrExists      → 409
//	other request error → 400
//
// The transport itself adds the admission-control statuses (see
// Server.Handler and internal/limit): an oversized request body is cut
// off with 413; a principal past its rate or concurrency budget gets
// 429 with a Retry-After header (as does a full task queue) — back off
// and retry here; a draining or globally overloaded server sheds with
// 503 and no Retry-After — fail over to another node. Probes and
// /metrics bypass admission so an overloaded server stays observable.
//
// # Authentication
//
// Two schemes, chosen by server configuration:
//
//   - Bearer tokens (Server.Auth, from a token file — see internal/auth):
//     `Authorization: Bearer <secret>` resolves to a (repository user,
//     role) pair. Roles ladder reader < writer < admin; reads need
//     reader, mutations writer, save admin.
//   - Trusted headers (the PR 1 scheme): the X-Prov-User header or
//     ?user= parameter names the principal. Only honored when no token
//     file is configured (full trust, dev mode — the principal gets the
//     admin role) or when the operator set AllowHeaderAuth next to a
//     token file (migration compat — header principals are then
//     read-only). With a token file configured, header auth is rejected
//     by default.
//
// Endpoints (all JSON):
//
//	GET    /api/v1/specs                            registered specs + executions [reader]
//	GET    /api/v1/search?q=Q[&buckets=N][&limit=L&offset=O]  privacy-aware keyword search [reader]
//	GET    /api/v1/query?spec=S&q=Q[&exec=E][&zoom=1][&limit=L&offset=O]  structural query [reader]
//	GET    /api/v1/reach?spec=S&from=M1&to=M2       structural-privacy reachability [reader]
//	GET    /api/v1/provenance?spec=S&exec=E&item=D[&taint=off]  taint-masked provenance [reader]
//	                                                (taint=off: attribute-local masking only — a debug escape
//	                                                hatch requiring the operator opt-in Server.AllowDisableTaint)
//	GET    /api/v1/stats                            repository + cache statistics [reader]
//	POST   /api/v1/specs                            register a spec (+ optional policy) [writer]
//	POST   /api/v1/executions                       store an execution of a registered spec [writer]
//	DELETE /api/v1/specs/{id}                       unregister a spec and its executions [writer]
//	PUT    /api/v1/policy                           replace a spec's privacy policy [writer]
//	PUT    /api/v1/generalization                   install generalization ladders [writer]
//	POST   /api/v1/save                             persist the repository to the save dir [admin]
//	POST   /api/v1/executions:bulk                  async bulk ingest → 202 + task id [writer]
//	GET    /api/v1/tasks[?limit=L&offset=O]         list background tasks, newest first [writer]
//	GET    /api/v1/tasks/{id}                       one task's state/progress/result [writer]
//	DELETE /api/v1/tasks/{id}                       cancel a pending or running task [writer]
//	POST   /api/v1/compact                          async compaction pass over oversized shards [admin]
//	GET    /api/v1/tokens                           list tokens (name/user/role/uses — never secrets) [admin]
//	POST   /api/v1/tokens                           mint a token; generated secret echoed once [admin]
//	DELETE /api/v1/tokens/{name}                    revoke a token, effective immediately [admin]
//	GET    /api/v1/audit[?principal=P][&action=A][&limit=L]  recent mutation audit records [admin]
//	GET    /metrics                                 Prometheus-style counters (no auth)
//
// The task endpoints serve 503 unless the operator configured a task
// runtime (Server.Tasks; provserve always does). Heavy work — bulk
// ingest, compaction folds, cache prewarming after a policy change —
// runs on that pool and returns 202 Accepted plus a task id; callers
// poll GET /api/v1/tasks/{id} (the Location header points there) and
// may DELETE to cancel. Long synchronous reads (search, query,
// provenance) honor request-context cancellation: a caller that hangs
// up stops paying for fan-out it will never read.
//
// Search and query responses are paginated with limit/offset (limit 0 =
// unlimited); the pre-pagination result count is returned as "total" so
// clients can page without a second query. Pagination is pushed into
// the engine (repo.SearchPage / repo.QueryAllPage): out-of-window hits
// are counted, never materialized.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"

	"provpriv/internal/auditlog"
	"provpriv/internal/auth"
	"provpriv/internal/datapriv"
	"provpriv/internal/exec"
	"provpriv/internal/limit"
	"provpriv/internal/obs"
	"provpriv/internal/privacy"
	"provpriv/internal/query"
	"provpriv/internal/repo"
	"provpriv/internal/storage"
	"provpriv/internal/tasks"
	"provpriv/internal/workflow"
)

// maxBodyBytes bounds mutation request bodies (a workflow spec or an
// execution trace; generous, but not a DoS vector). A variable so tests
// can lower it to exercise the 413 path without megabyte payloads.
var maxBodyBytes int64 = 8 << 20

// Server serves a Repository over HTTP. It is stateless apart from the
// repository and two counters: handlers are safe for arbitrary
// concurrency because the engine is.
type Server struct {
	repo *repo.Repository
	mux  *http.ServeMux
	// Logger, when non-nil, receives one structured record per failed
	// request (and server-side write errors). Nil logs nothing.
	Logger *slog.Logger
	// Obs, when non-nil, is the observability layer Handler() wraps the
	// mux in: request ids, per-route latency histograms, sampled traces
	// and panic recovery. Its metrics and traces are served by /metrics
	// and /api/v1/debug/traces. Nil leaves the server bare (tests).
	Obs *obs.Observer
	// EnablePprof exposes /debug/pprof/ (admin role). Off by default:
	// profiles leak memory contents and symbol names, so an operator
	// must opt in (provserve -pprof).
	EnablePprof bool
	// RequireStorage makes /readyz require a bound storage backend —
	// set by servers that persist (provserve always does); in-memory
	// servers stay ready without one.
	RequireStorage bool
	// draining flips when the operator starts shutdown; /readyz reports
	// 503 so load balancers stop routing while in-flight work finishes.
	draining atomic.Bool
	// AllowDisableTaint honors the provenance taint=off debug parameter.
	// Off by default: taint=off reopens the embedded-trace-value leak
	// that internal/taint exists to close, so an operator must opt the
	// whole server into it (provserve -allow-taint-off) — it is never a
	// per-caller choice. Requests sending taint=off while disabled get
	// 403, not silent taint-on, so a debugging session can't
	// misattribute masked output to the unmasked path.
	AllowDisableTaint bool
	// Auth, when non-nil, enables bearer-token authentication and makes
	// it the only accepted scheme (unless AllowHeaderAuth is also set).
	// When nil, the server runs in the PR 1 trusted-header mode: any
	// registered principal named by X-Prov-User is fully trusted (role
	// admin) — acceptable on a private network, never on a shared one.
	// The Store is hot-swappable: rotating the token file (SIGHUP or
	// mtime poll in provserve) or the /api/v1/tokens endpoints take
	// effect on the next request, without a restart.
	Auth *auth.Store
	// Limiter, when non-nil, is the admission controller: per-principal
	// token buckets (rate per role, see Rates) checked after
	// authentication, plus the global in-flight cap applied by the
	// admission middleware in Handler(). Per-principal rejections are
	// 429 + Retry-After; global overload and draining are 503, so
	// clients can tell "you specifically, slow down" from "everyone,
	// come back later". Nil admits everything.
	Limiter *limit.Limiter
	// Rates maps each authenticated role to its token-bucket budget.
	// Zero rates are unlimited.
	Rates RoleRates
	// Audit, when non-nil, receives exactly one durable record per
	// mutation-endpoint request (including denied ones): who, what,
	// when, outcome, threaded with the obs request id. Queryable via
	// GET /api/v1/audit (admin). Nil disables auditing.
	Audit *auditlog.Log
	// AllowHeaderAuth re-admits the trusted-header scheme next to a
	// token file, as read-only (role reader): a migration bridge so
	// legacy read clients keep working while writers move to tokens.
	AllowHeaderAuth bool
	// SaveDir is the directory POST /api/v1/save persists to. Empty
	// disables the endpoint (400): the save target is operator
	// configuration, never caller input — a wire-supplied path would be
	// an arbitrary-file-write primitive.
	SaveDir string
	// Store, when non-nil, is the measured storage backend the repository
	// persists through; its counters are exported via /stats and /metrics
	// so operators can watch append/replay/compaction traffic and storage
	// errors per process.
	Store *storage.Measure
	// Tasks, when non-nil, is the background task runtime behind the
	// async surface (bulk ingest, compaction, cache prewarming, the
	// /api/v1/tasks endpoints). The operator owns its lifecycle: size
	// the pool, set it here before serving, drain it on shutdown. Nil
	// leaves the async endpoints serving 503 and policy changes warming
	// caches lazily — the pre-task behavior.
	Tasks *tasks.Runtime

	// mutations counts successful mutation-endpoint requests;
	// authFailures counts rejected authentications and authorization
	// denials (both exported via /metrics and /stats).
	mutations    atomic.Int64 //provlint:counter
	authFailures atomic.Int64 //provlint:counter
	// shedDraining counts requests refused with 503 because the server
	// was draining; auditErrors counts mutations whose audit append
	// failed (the mutation itself still completed — see audited).
	shedDraining atomic.Int64 //provlint:counter
	auditErrors  atomic.Int64 //provlint:counter
	// compactTask remembers the last submitted compaction task id so a
	// save burst enqueues one pass, not one per save.
	compactTask atomic.Value
}

// New wraps a repository in an HTTP API.
func New(r *repo.Repository) *Server {
	s := &Server{repo: r, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/v1/specs", s.withRole(auth.RoleReader, s.handleSpecs))
	s.mux.HandleFunc("GET /api/v1/search", s.withRole(auth.RoleReader, s.handleSearch))
	s.mux.HandleFunc("GET /api/v1/query", s.withRole(auth.RoleReader, s.handleQuery))
	s.mux.HandleFunc("GET /api/v1/reach", s.withRole(auth.RoleReader, s.handleReach))
	s.mux.HandleFunc("GET /api/v1/provenance", s.withRole(auth.RoleReader, s.handleProvenance))
	s.mux.HandleFunc("GET /api/v1/stats", s.withRole(auth.RoleReader, s.handleStats))
	// The mutation surface: every engine mutator, behind writer (or
	// admin, for save) role authz. Each mutation route is additionally
	// wrapped in audited(): exactly one durable audit record per
	// request, including denied ones (a probe of the write surface is
	// itself worth recording).
	s.mux.HandleFunc("POST /api/v1/specs", s.audited("spec.add", s.withRole(auth.RoleWriter, s.handleAddSpec)))
	s.mux.HandleFunc("POST /api/v1/executions", s.audited("exec.add", s.withRole(auth.RoleWriter, s.handleAddExecution)))
	s.mux.HandleFunc("DELETE /api/v1/specs/{id}", s.audited("spec.remove", s.withRole(auth.RoleWriter, s.handleRemoveSpec)))
	s.mux.HandleFunc("PUT /api/v1/policy", s.audited("policy.update", s.withRole(auth.RoleWriter, s.handleUpdatePolicy)))
	s.mux.HandleFunc("PUT /api/v1/generalization", s.audited("generalization.set", s.withRole(auth.RoleWriter, s.handleSetGeneralization)))
	s.mux.HandleFunc("POST /api/v1/save", s.audited("repo.save", s.withRole(auth.RoleAdmin, s.handleSave)))
	// The async surface: bulk ingest and task introspection need writer
	// (tasks expose mutation progress and accept cancellation),
	// compaction is an operator action.
	s.mux.HandleFunc("POST /api/v1/executions:bulk", s.audited("exec.bulk", s.withRole(auth.RoleWriter, s.handleBulkExecutions)))
	s.mux.HandleFunc("GET /api/v1/tasks", s.withRole(auth.RoleWriter, s.handleListTasks))
	s.mux.HandleFunc("GET /api/v1/tasks/{id}", s.withRole(auth.RoleWriter, s.handleGetTask))
	s.mux.HandleFunc("DELETE /api/v1/tasks/{id}", s.audited("task.cancel", s.withRole(auth.RoleWriter, s.handleCancelTask)))
	s.mux.HandleFunc("POST /api/v1/compact", s.audited("repo.compact", s.withRole(auth.RoleAdmin, s.handleCompact)))
	// Token lifecycle: list/mint/revoke bearer tokens at runtime, admin
	// only. Mutations are audited like any other; the audit log itself
	// is queryable (admin) so "who rotated what" has an answer.
	s.mux.HandleFunc("GET /api/v1/tokens", s.withRole(auth.RoleAdmin, s.handleListTokens))
	s.mux.HandleFunc("POST /api/v1/tokens", s.audited("token.add", s.withRole(auth.RoleAdmin, s.handleAddToken)))
	s.mux.HandleFunc("DELETE /api/v1/tokens/{name}", s.audited("token.remove", s.withRole(auth.RoleAdmin, s.handleRemoveToken)))
	s.mux.HandleFunc("GET /api/v1/audit", s.withRole(auth.RoleAdmin, s.handleAudit))
	// Metrics are operational, not user data: no principal required, so
	// scrapers don't need a repository account.
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Probes: liveness is unconditional; readiness reflects storage
	// binding and drain state. No auth — orchestrators don't hold tokens.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	// Introspection: recent traces and profiles expose request patterns
	// and process memory, so both are admin-only; pprof additionally
	// needs the operator opt-in (EnablePprof).
	s.mux.HandleFunc("GET /api/v1/debug/traces", s.withRole(auth.RoleAdmin, s.handleDebugTraces))
	s.mux.HandleFunc("/debug/pprof/", s.withRole(auth.RoleAdmin, s.handlePprof))
	return s
}

// ServeHTTP implements http.Handler, serving the bare mux. Production
// callers serve Handler() instead to get the observability middleware.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Handler returns the production middleware stack around the mux:
// observability outermost (so shed responses still get request ids and
// show up in route histograms), then admission (drain shedding + the
// global in-flight cap), then the routes. With no Observer the
// admission layer still applies; tests that serve the Server directly
// bypass both.
func (s *Server) Handler() http.Handler {
	h := s.admission(s)
	if s.Obs == nil {
		return h
	}
	return obs.Chain(h, s.Obs.Middleware)
}

// admission is the transport-level shed point, ahead of routing and
// authentication: a draining server refuses new work with 503 so load
// balancers fail over, and the limiter's global in-flight cap bounds
// total concurrency regardless of who is asking. Per-principal limits
// are enforced later, in withRole, where identity is known. Probes and
// metrics are exempt — orchestrators and scrapers must see a draining
// server, that is the point of draining.
func (s *Server) admission(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz", "/metrics":
			next.ServeHTTP(w, r)
			return
		}
		if s.draining.Load() {
			s.shedDraining.Add(1)
			// No Retry-After: this process is going away, not busy — a
			// client should fail over, not wait it out.
			s.writeJSON(w, http.StatusServiceUnavailable,
				errorBody{Error: "server: draining", RequestID: obs.RequestID(w)})
			return
		}
		if s.Limiter != nil {
			if !s.Limiter.AcquireGlobal() {
				s.writeJSON(w, http.StatusServiceUnavailable,
					errorBody{Error: "server: overloaded, too many requests in flight", RequestID: obs.RequestID(w)})
				return
			}
			defer s.Limiter.ReleaseGlobal()
		}
		next.ServeHTTP(w, r)
	})
}

// SetDraining flips the readiness signal: a draining server answers
// /readyz with 503 so load balancers stop routing new work while
// in-flight requests and background tasks finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// log returns the configured logger or a discard logger, so logging
// call sites never nil-check.
func (s *Server) log() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return obs.Discard
}

// errorBody is the uniform failure envelope. RequestID is filled when
// the request came through the observability middleware, so users can
// quote the id that server logs and traces are keyed by.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log().Error("encode response", "error", err)
	}
}

// fail maps an engine error to a protocol status via the repo sentinel
// errors and writes the envelope.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusBadRequest
	var maxBytes *http.MaxBytesError
	switch {
	case errors.Is(err, repo.ErrUnknownUser):
		status = http.StatusUnauthorized
	case errors.Is(err, repo.ErrDenied):
		status = http.StatusForbidden
	case errors.Is(err, repo.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, repo.ErrExists):
		status = http.StatusConflict
	case errors.As(err, &maxBytes):
		// An oversized body is the client's request being too large, not
		// malformed: 413, so clients distinguish "split your payload"
		// from "fix your JSON". Decoders wrap with %w to keep the
		// MaxBytesError reachable here.
		status = http.StatusRequestEntityTooLarge
	}
	if s.Logger != nil {
		obs.RequestLogger(s.Logger, w, r).Warn("request failed", "status", status, "error", err)
	}
	s.writeJSON(w, status, errorBody{Error: err.Error(), RequestID: obs.RequestID(w)})
}

// userHandler is a handler that has already resolved its principal.
type userHandler func(w http.ResponseWriter, r *http.Request, user string)

// RoleRates maps authenticated roles to their token-bucket budgets
// (zero = unlimited for that role).
type RoleRates struct {
	Reader limit.Rate
	Writer limit.Rate
	Admin  limit.Rate
}

// rateFor picks the budget for a role.
func (s *Server) rateFor(role auth.Role) limit.Rate {
	switch role {
	case auth.RoleAdmin:
		return s.Rates.Admin
	case auth.RoleWriter:
		return s.Rates.Writer
	default:
		return s.Rates.Reader
	}
}

// creds is principal()'s result: the resolved identity plus the
// rate-limit bucket key. Returned by value — no allocation.
type creds struct {
	user string
	role auth.Role
	// key buckets rate limiting: the token's name for bearer auth (two
	// tokens sharing a repository user are budgeted separately), the
	// principal's name for header auth. Raw, not prefixed — prefixing
	// would cost an allocation per request; the only consequence is
	// that in mixed bearer+header-bridge mode a token named like a
	// principal shares that principal's bucket, which is benign.
	key string
	// token is the bearer token's name, "" for header auth (audit).
	token     string
	fromQuery bool
}

// principal resolves the request's identity from the configured
// authentication scheme(s); c.fromQuery reports that the principal came
// from the bare ?user= URL parameter. See the package comment for the
// scheme matrix.
func (s *Server) principal(r *http.Request) (c creds, err error) {
	if authz := r.Header.Get("Authorization"); authz != "" {
		// RFC 7235 auth-scheme names are case-insensitive ("bearer" must
		// work); the secret itself is untouched.
		scheme, secret, ok := strings.Cut(authz, " ")
		if !ok || !strings.EqualFold(scheme, "Bearer") {
			return c, fmt.Errorf("server: unsupported Authorization scheme: %w", repo.ErrUnknownUser)
		}
		if s.Auth == nil {
			return c, fmt.Errorf("server: token auth not configured: %w", repo.ErrUnknownUser)
		}
		tok, ok := s.Auth.Authenticate(secret)
		if !ok {
			return c, fmt.Errorf("server: invalid token: %w", repo.ErrUnknownUser)
		}
		return creds{user: tok.User, role: tok.Role, key: tok.Name, token: tok.Name}, nil
	}
	// Header scheme. With a token file configured it is rejected unless
	// the operator explicitly bridged it — and then it is read-only.
	if s.Auth != nil && !s.AllowHeaderAuth {
		return c, fmt.Errorf("server: bearer token required: %w", repo.ErrUnknownUser)
	}
	name := r.Header.Get("X-Prov-User")
	fromQuery := false
	if name == "" {
		name = r.URL.Query().Get("user")
		fromQuery = name != ""
	}
	if name == "" {
		return c, fmt.Errorf("server: missing credentials (Authorization or X-Prov-User): %w", repo.ErrUnknownUser)
	}
	role := auth.RoleAdmin // no token file: trusted headers, dev mode
	if s.Auth != nil {
		role = auth.RoleReader // migration bridge: header auth reads only
	}
	return creds{user: name, role: role, key: name, fromQuery: fromQuery}, nil
}

// limited writes the per-principal 429 with the Retry-After hint —
// "you specifically, slow down", as opposed to the admission layer's
// 503 "everyone, come back later".
func (s *Server) limited(w http.ResponseWriter, r *http.Request, d limit.Decision) {
	secs := int(math.Ceil(d.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusTooManyRequests, errorBody{
		Error:     "server: rate limit exceeded (" + d.Reason.String() + ")",
		RequestID: obs.RequestID(w),
	})
}

// withRole authenticates the request principal and enforces the
// endpoint's minimum role, then the principal's admission budget. The
// user must be registered in the repository; endpoints pass the name
// down so the engine re-checks the privacy level on every operation
// (no privilege caching in the transport). Authentication rejections
// and role denials feed the auth_failures_total counter.
func (s *Server) withRole(min auth.Role, h userHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, err := s.principal(r)
		if err != nil {
			s.authFailures.Add(1)
			s.fail(w, r, err)
			return
		}
		if c.fromQuery && min > auth.RoleReader {
			// The bare ?user= parameter is a curl convenience for reads.
			// A browser can forge it in a cross-site "simple request"
			// (no preflight), so in dev mode it would make the write
			// surface CSRF-reachable; custom headers and Authorization
			// are not forgeable that way. Mutations therefore require
			// header-borne credentials.
			s.authFailures.Add(1)
			s.fail(w, r, fmt.Errorf("server: mutations require header credentials, not the user parameter: %w", repo.ErrUnknownUser))
			return
		}
		if !c.role.Allows(min) {
			s.authFailures.Add(1)
			s.setAuditIdentity(w, c)
			s.fail(w, r, fmt.Errorf("server: role %s may not use this endpoint (need %s): %w",
				c.role, min, repo.ErrDenied))
			return
		}
		if _, err := s.repo.User(c.user); err != nil {
			s.authFailures.Add(1)
			s.fail(w, r, err)
			return
		}
		// Per-principal admission, after authentication so the bucket
		// key is a verified identity (pre-auth flood damage is bounded
		// by the global cap). The Decision is a value and Release is a
		// method on it, so the admitted path allocates nothing.
		if s.Limiter != nil {
			d := s.Limiter.Allow(c.key, s.rateFor(c.role))
			if !d.OK {
				s.setAuditIdentity(w, c)
				s.limited(w, r, d)
				return
			}
			defer d.Release()
		}
		// Stamp the principal on the recorder for completion logs (and
		// the audit writer, when this is a mutation), and — only when
		// this request was sampled for tracing — open the handler span.
		// StartSpan without a trace is free, so the unsampled path pays
		// nothing here.
		obs.SetPrincipal(w, c.user)
		s.setAuditIdentity(w, c)
		if ctx, span := obs.StartSpan(r.Context(), "handler"); span.Active() {
			defer span.End()
			r = r.WithContext(ctx)
		}
		h(w, r, c.user)
	}
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: ready means the server is not
// draining, the task runtime (when configured) is accepting work, and —
// for persisting servers — a storage backend is bound.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "server draining")
	}
	if s.Tasks != nil && s.Tasks.Draining() {
		reasons = append(reasons, "task runtime draining")
	}
	if s.RequireStorage && !s.repo.StorageBound() {
		reasons = append(reasons, "storage not bound")
	}
	if len(reasons) > 0 {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "not ready", "reasons": reasons,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleDebugTraces serves the tracer's ring of recent traces as span
// trees, newest first. With no tracer configured the list is empty
// rather than an error, so dashboards can probe unconditionally.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request, user string) {
	traces := []obs.TraceView{}
	var slow any
	if s.Obs != nil && s.Obs.Tracer != nil {
		traces = s.Obs.Tracer.Recent()
		slow = s.Obs.Tracer.SlowThreshold().String()
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"slow_threshold": slow, "traces": traces,
	})
}

// handlePprof dispatches the /debug/pprof/ subtree to net/http/pprof —
// behind admin auth (withRole) and the operator's EnablePprof opt-in.
// Disabled servers 404 so the surface is indistinguishable from absent.
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request, user string) {
	if !s.EnablePprof {
		//provlint:ignore envelope must byte-match the mux's default 404 so a disabled pprof surface is indistinguishable from absent
		http.NotFound(w, r)
		return
	}
	switch strings.TrimPrefix(r.URL.Path, "/debug/pprof/") {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}

// specInfo is one row of the /specs listing.
type specInfo struct {
	ID         string   `json:"id"`
	Name       string   `json:"name,omitempty"`
	Executions []string `json:"executions"`
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request, user string) {
	ids := s.repo.SpecIDs()
	out := make([]specInfo, 0, len(ids))
	for _, id := range ids {
		sp := s.repo.Spec(id)
		if sp == nil {
			continue
		}
		execs := s.repo.ExecutionIDs(id)
		if execs == nil {
			execs = []string{}
		}
		out = append(out, specInfo{ID: id, Name: sp.Name, Executions: execs})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"specs": out})
}

// searchMatch mirrors search.Match for the wire.
type searchMatch struct {
	Phrase   string `json:"phrase"`
	ModuleID string `json:"module"`
	Workflow string `json:"workflow"`
	ZoomedTo string `json:"zoomed_to,omitempty"`
}

// searchHit is one wire-format search result: the minimal-view prefix
// and matches, without the full expanded view body.
type searchHit struct {
	SpecID    string        `json:"spec"`
	Score     float64       `json:"score"`
	Prefix    []string      `json:"prefix"`
	ZoomedOut bool          `json:"zoomed_out,omitempty"`
	Matches   []searchMatch `json:"matches"`
}

// parsePage extracts limit/offset pagination parameters (both optional,
// both non-negative; limit 0 means unlimited).
func parsePage(r *http.Request) (limit, offset int, err error) {
	for _, p := range []struct {
		name string
		dst  *int
	}{{"limit", &limit}, {"offset", &offset}} {
		v := r.URL.Query().Get(p.name)
		if v == "" {
			continue
		}
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 0 {
			return 0, 0, fmt.Errorf("server: bad %s %q", p.name, v)
		}
		*p.dst = n
	}
	return limit, offset, nil
}

// page windows a slice to [offset, offset+limit) (limit 0 = to the end),
// returning the window and the pre-pagination total.
func page[T any](items []T, limit, offset int) ([]T, int) {
	total := len(items)
	if offset >= total {
		return items[:0], total
	}
	items = items[offset:]
	if limit > 0 && limit < len(items) {
		items = items[:limit]
	}
	return items, total
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, user string) {
	q := r.URL.Query().Get("q")
	buckets := 0
	if b := r.URL.Query().Get("buckets"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 0 {
			s.fail(w, r, fmt.Errorf("server: bad buckets %q", b))
			return
		}
		buckets = n
	}
	limit, offset, err := parsePage(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// Pagination is pushed into the engine: SearchPage counts the full
	// result set with a cheap match predicate and materializes minimal
	// views only for this window. The request context rides along so a
	// hung-up client stops the shard fan-out.
	hits, total, err := s.repo.SearchPageCtx(r.Context(), user, q, repo.SearchOptions{
		Buckets: buckets, Limit: limit, Offset: offset,
	})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	out := make([]searchHit, 0, len(hits))
	for _, h := range hits {
		sh := searchHit{
			SpecID:    h.SpecID,
			Score:     h.Score,
			Prefix:    h.Result.Prefix.IDs(),
			ZoomedOut: h.Result.ZoomedOut,
			Matches:   make([]searchMatch, 0, len(h.Result.Matches)),
		}
		for _, m := range h.Result.Matches {
			sh.Matches = append(sh.Matches, searchMatch{
				Phrase: m.Phrase, ModuleID: m.ModuleID, Workflow: m.Workflow, ZoomedTo: m.ZoomedTo,
			})
		}
		out = append(out, sh)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"query": q, "hits": out, "total": total, "offset": offset,
	})
}

// queryAnswer is the wire form of one structural-query answer.
type queryAnswer struct {
	ExecutionID string          `json:"execution"`
	Bindings    []query.Binding `json:"bindings"`
	Nodes       []string        `json:"nodes,omitempty"`
	Downstream  [][]string      `json:"downstream,omitempty"`
	ZoomedOut   bool            `json:"zoomed_out,omitempty"`
	ZoomSteps   int             `json:"zoom_steps,omitempty"`
}

func toWireAnswer(a *query.Answer) queryAnswer {
	return queryAnswer{
		ExecutionID: a.ExecutionID,
		Bindings:    a.Bindings,
		Nodes:       a.Nodes,
		Downstream:  a.Downstream,
		ZoomedOut:   a.ZoomedOut,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, execID, q := p.Get("spec"), p.Get("exec"), p.Get("q")
	if specID == "" || q == "" {
		s.fail(w, r, fmt.Errorf("server: query needs spec and q parameters"))
		return
	}
	limit, offset, err := parsePage(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// writePaged applies the shared pagination + response envelope.
	writePaged := func(answers []queryAnswer) {
		answers, total := page(answers, limit, offset)
		s.writeJSON(w, http.StatusOK, map[string]any{
			"spec": specID, "answers": answers, "total": total, "offset": offset,
		})
	}
	switch {
	case execID == "":
		if p.Get("zoom") != "" {
			s.fail(w, r, fmt.Errorf("server: zoom requires an exec parameter"))
			return
		}
		// All executions of the spec (non-empty answers only), with the
		// window pushed into the engine: out-of-window answers are
		// match-counted but their return clauses never materialize.
		answers, total, err := s.repo.QueryAllPageCtx(r.Context(), user, specID, q, limit, offset)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		out := make([]queryAnswer, 0, len(answers))
		for _, a := range answers {
			out = append(out, toWireAnswer(a))
		}
		s.writeJSON(w, http.StatusOK, map[string]any{
			"spec": specID, "answers": out, "total": total, "offset": offset,
		})
	case p.Get("zoom") != "":
		res, err := s.repo.QueryZoomOut(user, specID, execID, q)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		a := toWireAnswer(res.Answer)
		a.ZoomSteps = res.Steps
		writePaged([]queryAnswer{a})
	default:
		a, err := s.repo.Query(user, specID, execID, q)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		writePaged([]queryAnswer{toWireAnswer(a)})
	}
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, from, to := p.Get("spec"), p.Get("from"), p.Get("to")
	if specID == "" || from == "" || to == "" {
		s.fail(w, r, fmt.Errorf("server: reach needs spec, from and to parameters"))
		return
	}
	ok, err := s.repo.Reaches(user, specID, from, to)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"spec": specID, "from": from, "to": to, "reaches": ok,
	})
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, execID, item := p.Get("spec"), p.Get("exec"), p.Get("item")
	if specID == "" || execID == "" || item == "" {
		s.fail(w, r, fmt.Errorf("server: provenance needs spec, exec and item parameters"))
		return
	}
	var opts repo.ProvenanceOptions
	switch t := p.Get("taint"); t {
	case "", "on":
		// taint-aware masking: the default and only privacy-preserving mode.
	case "off":
		// Debug/benchmark escape hatch: attribute-local masking only;
		// protected values embedded in derived traces are NOT rewritten.
		// Only honored when the operator opted the server in.
		if !s.AllowDisableTaint {
			s.fail(w, r, fmt.Errorf("server: taint=off disabled on this server: %w", repo.ErrDenied))
			return
		}
		opts.DisableTaint = true
	default:
		s.fail(w, r, fmt.Errorf("server: bad taint %q (want on or off)", t))
		return
	}
	prov, err := s.repo.ProvenanceWithCtx(r.Context(), user, specID, execID, item, opts)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// The provenance view is already collapsed and masked for this
	// user's level by the engine; it serializes with the persistence
	// JSON shape.
	s.writeJSON(w, http.StatusOK, map[string]any{
		"spec": specID, "exec": execID, "item": item, "provenance": prov,
	})
}

// readBody reads a mutation request body with the size cap applied.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		// %w: a *http.MaxBytesError inside must stay reachable for
		// fail()'s 413 mapping.
		return nil, fmt.Errorf("server: read request body: %w", err)
	}
	return data, nil
}

// decodeJSON strictly decodes a mutation request body into dst: size-
// capped, unknown fields rejected (a typo'd "plicy" key must be a 400,
// not a silent policy reset to all-public), and trailing garbage after
// the JSON value is rejected (a concatenated second value is a
// malformed request, not an extra).
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		// %w: a *http.MaxBytesError inside must stay reachable for
		// fail()'s 413 mapping.
		return fmt.Errorf("server: bad request body: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("server: trailing data after JSON body")
	}
	return nil
}

// strictUnmarshal is decodeJSON's strictness (unknown fields and
// trailing garbage rejected) for already-read byte slices — the nested
// spec object and the raw execution body, where a typo'd field name
// ("edgs") must be a 400, not a silently empty slice.
func strictUnmarshal(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("server: bad request body: %v", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("server: trailing data after JSON body")
	}
	return nil
}

// mutated records a successful mutation and writes the response.
func (s *Server) mutated(w http.ResponseWriter, status int, v any) {
	s.mutations.Add(1)
	s.writeJSON(w, status, v)
}

// specRequest is the POST /api/v1/specs body: the spec itself (the
// persistence JSON shape) plus an optional policy. A nil policy means
// all-public, exactly like repo.AddSpec.
type specRequest struct {
	Spec   json.RawMessage `json:"spec"`
	Policy *privacy.Policy `json:"policy,omitempty"`
}

func (s *Server) handleAddSpec(w http.ResponseWriter, r *http.Request, user string) {
	var req specRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if len(req.Spec) == 0 {
		s.fail(w, r, fmt.Errorf("server: spec request needs a spec object"))
		return
	}
	spec := &workflow.Spec{}
	if err := strictUnmarshal(req.Spec, spec); err != nil {
		s.fail(w, r, err)
		return
	}
	if spec.ID == "" {
		s.fail(w, r, fmt.Errorf("server: spec needs a non-empty id"))
		return
	}
	setAuditTarget(w, spec.ID)
	if req.Policy != nil && req.Policy.SpecID != "" && req.Policy.SpecID != spec.ID {
		s.fail(w, r, fmt.Errorf("server: policy is for spec %q, not %q", req.Policy.SpecID, spec.ID))
		return
	}
	if req.Policy != nil {
		req.Policy.SpecID = spec.ID
	}
	if err := s.repo.AddSpec(spec, req.Policy); err != nil {
		s.fail(w, r, err)
		return
	}
	s.mutated(w, http.StatusCreated, map[string]any{"spec": spec.ID})
}

// handleAddExecution accepts the execution object itself as the body
// (the same JSON shape repo.Save persists), validates it and stores it
// under its spec's shard. The execution is searchable and queryable the
// moment the 201 is written — the engine's indexes are maintained
// incrementally, there is no refresh step.
func (s *Server) handleAddExecution(w http.ResponseWriter, r *http.Request, user string) {
	data, err := readBody(w, r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	e := &exec.Execution{}
	if err := strictUnmarshal(data, e); err != nil {
		s.fail(w, r, err)
		return
	}
	if e.ID == "" || e.SpecID == "" {
		s.fail(w, r, fmt.Errorf("server: execution needs non-empty id and spec"))
		return
	}
	setAuditTarget(w, e.ID)
	if err := s.repo.AddExecution(e); err != nil {
		s.fail(w, r, err)
		return
	}
	s.mutated(w, http.StatusCreated, map[string]any{"spec": e.SpecID, "exec": e.ID})
}

func (s *Server) handleRemoveSpec(w http.ResponseWriter, r *http.Request, user string) {
	id := r.PathValue("id")
	setAuditTarget(w, id)
	if err := s.repo.RemoveSpec(id); err != nil {
		s.fail(w, r, err)
		return
	}
	s.mutated(w, http.StatusOK, map[string]any{"removed": id})
}

// policyRequest is the PUT /api/v1/policy body. A nil policy resets the
// spec to all-public (repo.UpdatePolicy semantics).
type policyRequest struct {
	Spec   string          `json:"spec"`
	Policy *privacy.Policy `json:"policy,omitempty"`
}

func (s *Server) handleUpdatePolicy(w http.ResponseWriter, r *http.Request, user string) {
	var req policyRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if req.Spec == "" {
		s.fail(w, r, fmt.Errorf("server: policy request needs a spec id"))
		return
	}
	setAuditTarget(w, req.Spec)
	if req.Policy != nil && req.Policy.SpecID != "" && req.Policy.SpecID != req.Spec {
		s.fail(w, r, fmt.Errorf("server: policy is for spec %q, not %q", req.Policy.SpecID, req.Spec))
		return
	}
	if req.Policy != nil {
		req.Policy.SpecID = req.Spec
	}
	if err := s.repo.UpdatePolicy(req.Spec, req.Policy); err != nil {
		s.fail(w, r, err)
		return
	}
	// The policy change just purged the spec's masked-snapshot caches;
	// rebuild them off-path so the first reader per level pays a warm
	// hit. Best-effort — with no runtime the caches warm lazily.
	body := map[string]any{"spec": req.Spec}
	if id := s.enqueuePrewarm(req.Spec); id != "" {
		body["task"] = id
	}
	s.mutated(w, http.StatusOK, body)
}

// generalizationRequest is the PUT /api/v1/generalization body: per-
// attribute generalization ladders (see datapriv.Hierarchy). A nil map
// removes all ladders (back to redaction-only masking).
type generalizationRequest struct {
	Spec        string                         `json:"spec"`
	Hierarchies map[string]*datapriv.Hierarchy `json:"hierarchies,omitempty"`
}

func (s *Server) handleSetGeneralization(w http.ResponseWriter, r *http.Request, user string) {
	var req generalizationRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if req.Spec == "" {
		s.fail(w, r, fmt.Errorf("server: generalization request needs a spec id"))
		return
	}
	setAuditTarget(w, req.Spec)
	for attr, h := range req.Hierarchies {
		if h == nil {
			s.fail(w, r, fmt.Errorf("server: nil hierarchy for attribute %q", attr))
			return
		}
		// The map key is authoritative; fill or check the embedded name.
		if h.Attr == "" {
			h.Attr = attr
		} else if h.Attr != attr {
			s.fail(w, r, fmt.Errorf("server: hierarchy under key %q names attribute %q", attr, h.Attr))
			return
		}
	}
	if err := s.repo.SetGeneralization(req.Spec, req.Hierarchies); err != nil {
		s.fail(w, r, err)
		return
	}
	body := map[string]any{"spec": req.Spec}
	if id := s.enqueuePrewarm(req.Spec); id != "" {
		body["task"] = id
	}
	s.mutated(w, http.StatusOK, body)
}

// handleSave persists the repository to the operator-configured save
// directory. The target is never caller input; with no SaveDir the
// endpoint is disabled.
func (s *Server) handleSave(w http.ResponseWriter, r *http.Request, user string) {
	if s.SaveDir == "" {
		s.fail(w, r, fmt.Errorf("server: no save directory configured"))
		return
	}
	setAuditTarget(w, s.SaveDir)
	if err := s.repo.SaveCtx(r.Context(), s.SaveDir); err != nil {
		s.fail(w, r, err)
		return
	}
	// Save is O(delta) now — it only appends. Shards whose logs have
	// outgrown the threshold get folded by a background pass.
	body := map[string]any{"dir": s.SaveDir}
	if id := s.maybeEnqueueCompaction(); id != "" {
		body["compaction_task"] = id
	}
	s.mutated(w, http.StatusOK, body)
}

// statsBody is the /stats response.
type statsBody struct {
	Specs           int   `json:"specs"`
	Executions      int   `json:"executions"`
	Users           int   `json:"users"`
	IndexTerms      int   `json:"index_terms"`
	Postings        int   `json:"postings"`
	IndexSegments   int   `json:"index_segments"`
	IndexSwaps      int64 `json:"index_swaps"`
	CacheHits       int   `json:"cache_hits"`
	CacheMisses     int   `json:"cache_misses"`
	ViewCacheHits   int64 `json:"view_cache_hits"`
	ViewCacheMisses int64 `json:"view_cache_misses"`
	CorpusLevels    int   `json:"corpus_levels"`
	CorpusDeltas    int64 `json:"corpus_deltas"`
	CorpusRebuilds  int64 `json:"corpus_rebuilds"`

	TaintRewritten   int64                          `json:"taint_rewritten"`
	TaintRedacted    int64                          `json:"taint_redacted"`
	TaintCacheHits   int64                          `json:"taint_cache_hits"`
	TaintCacheMisses int64                          `json:"taint_cache_misses"`
	TaintCache       map[string]repo.TaintCacheStat `json:"taint_cache,omitempty"`

	MaskedCacheHits   int64                          `json:"masked_exec_cache_hits"`
	MaskedCacheMisses int64                          `json:"masked_exec_cache_misses"`
	MaskedCache       map[string]repo.TaintCacheStat `json:"masked_exec_cache,omitempty"`

	// Mutation-surface health: successful mutation requests, rejected
	// authentications/authorizations, and per-token use counters (only
	// when token auth is configured).
	Mutations    int64            `json:"mutations_total"`
	AuthFailures int64            `json:"auth_failures_total"`
	Tokens       []auth.TokenStat `json:"tokens,omitempty"`

	// Limits reports the admission controller's counters and live
	// bucket state per principal (only when a limiter is configured).
	// Per-principal rows live here, not in /metrics: principal names
	// are unbounded-cardinality label values.
	Limits *limit.Stats `json:"limits,omitempty"`
	// ShedDraining counts requests refused because the server was
	// draining.
	ShedDraining int64 `json:"shed_draining_total"`
	// AuditRecords / AuditErrors report the mutation audit log (only
	// when auditing is configured).
	AuditRecords uint64 `json:"audit_records_total,omitempty"`
	AuditErrors  int64  `json:"audit_errors_total,omitempty"`

	// Storage reports the measured backend's operation counters (only
	// when the server was started with a bound storage backend).
	Storage *storage.MeasureStats `json:"storage,omitempty"`

	// Tasks reports the background runtime's counters (only when a task
	// runtime is configured).
	Tasks *tasks.Stats `json:"tasks,omitempty"`
}

func toStatsBody(st repo.Stats) statsBody {
	return statsBody{
		Specs:             st.Specs,
		Executions:        st.Executions,
		Users:             st.Users,
		IndexTerms:        st.IndexTerms,
		Postings:          st.Postings,
		IndexSegments:     st.IndexSegments,
		IndexSwaps:        st.IndexSwaps,
		CacheHits:         st.CacheHits,
		CacheMisses:       st.CacheMisses,
		ViewCacheHits:     st.ViewCacheHits,
		ViewCacheMisses:   st.ViewCacheMisses,
		CorpusLevels:      st.CorpusLevels,
		CorpusDeltas:      st.CorpusDeltas,
		CorpusRebuilds:    st.CorpusRebuilds,
		TaintRewritten:    st.TaintRewritten,
		TaintRedacted:     st.TaintRedacted,
		TaintCacheHits:    st.TaintCacheHits,
		TaintCacheMisses:  st.TaintCacheMisses,
		TaintCache:        st.TaintCache,
		MaskedCacheHits:   st.MaskedCacheHits,
		MaskedCacheMisses: st.MaskedCacheMisses,
		MaskedCache:       st.MaskedCache,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, user string) {
	body := toStatsBody(s.repo.Stats())
	// AuthFailures subsumes the authenticator's invalid-secret count:
	// every invalid token already fails principal() and is counted once
	// there (adding Auth.Failures() would double-count).
	body.Mutations = s.mutations.Load()
	body.AuthFailures = s.authFailures.Load()
	body.ShedDraining = s.shedDraining.Load()
	if s.Auth != nil {
		body.Tokens = s.Auth.Stats()
	}
	if s.Limiter != nil {
		ls := s.Limiter.Stats()
		body.Limits = &ls
	}
	if s.Audit != nil {
		body.AuditRecords = s.Audit.Total()
		body.AuditErrors = s.auditErrors.Load()
	}
	if s.Store != nil {
		st := s.Store.Stats()
		body.Storage = &st
	}
	if s.Tasks != nil {
		ts := s.Tasks.Stats()
		body.Tasks = &ts
	}
	s.writeJSON(w, http.StatusOK, body)
}

// handleMetrics renders the same counters in the Prometheus text
// exposition format, one gauge per stat, under the provpriv_ prefix.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.repo.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	metric := func(name, help string, v int64) {
		// *_total counters are monotonic (the engine accumulates them
		// across cache swaps and shard removals); the rest are gauges.
		typ := "gauge"
		if strings.HasSuffix(name, "_total") {
			typ = "counter"
		}
		fmt.Fprintf(&b, "# HELP provpriv_%s %s\n# TYPE provpriv_%s %s\nprovpriv_%s %d\n",
			name, help, name, typ, name, v)
	}
	metric("specs", "Registered workflow specifications.", int64(st.Specs))
	metric("executions", "Stored executions.", int64(st.Executions))
	metric("users", "Registered users.", int64(st.Users))
	metric("index_terms", "Distinct terms in the inverted index.", int64(st.IndexTerms))
	metric("index_postings", "Total postings in the inverted index.", int64(st.Postings))
	metric("index_segments", "Per-spec segments in the inverted index.", int64(st.IndexSegments))
	metric("index_snapshot_swaps_total", "Inverted-index snapshot publications (spec mutations).", st.IndexSwaps)
	metric("result_cache_hits_total", "Search result cache hits.", int64(st.CacheHits))
	metric("result_cache_misses_total", "Search result cache misses.", int64(st.CacheMisses))
	metric("view_cache_hits_total", "Collapsed-view LRU hits across shards.", st.ViewCacheHits)
	metric("view_cache_misses_total", "Collapsed-view LRU misses across shards.", st.ViewCacheMisses)
	metric("corpus_levels", "Per-level ranking corpora currently built.", int64(st.CorpusLevels))
	metric("corpus_deltas_total", "Incremental corpus document deltas applied.", st.CorpusDeltas)
	metric("corpus_rebuilds_total", "From-scratch per-level corpus builds.", st.CorpusRebuilds)
	metric("taint_items_rewritten_total", "Items whose embedded protected values were rewritten by taint masking.", st.TaintRewritten)
	metric("taint_items_redacted_total", "Items fully redacted because taint rewriting could not remove a leak.", st.TaintRedacted)
	metric("taint_cache_hits_total", "Per-shard taint-set cache hits.", st.TaintCacheHits)
	metric("taint_cache_misses_total", "Per-shard taint-set cache misses.", st.TaintCacheMisses)
	metric("masked_exec_cache_hits_total", "Per-shard masked-execution snapshot cache hits.", st.MaskedCacheHits)
	metric("masked_exec_cache_misses_total", "Per-shard masked-execution snapshot cache misses.", st.MaskedCacheMisses)
	metric("mutations_total", "Successful mutation-endpoint requests.", s.mutations.Load())
	metric("auth_failures_total", "Rejected authentications and authorization denials.", s.authFailures.Load())
	metric("shed_draining_total", "Requests refused with 503 because the server was draining.", s.shedDraining.Load())
	if s.Limiter != nil {
		// Admission aggregates only; per-principal bucket state is in
		// /stats (principal names are unbounded label cardinality).
		ls := s.Limiter.Stats()
		metric("limit_allowed_total", "Requests admitted by the rate limiter.", ls.Allowed)
		metric("limit_rejected_rate_total", "Requests rejected 429 by a per-principal token bucket.", ls.RejectedRate)
		metric("limit_rejected_concurrency_total", "Requests rejected 429 by a per-principal in-flight cap.", ls.RejectedConcurrency)
		metric("limit_rejected_overload_total", "Requests rejected 503 by the global in-flight cap.", ls.RejectedOverload)
		metric("limit_bucket_evictions_total", "Idle per-principal buckets evicted to bound the map.", ls.Evictions)
		metric("limit_in_flight", "Requests currently inside the admission gate.", ls.InFlight)
		metric("limit_principals", "Per-principal buckets currently tracked.", int64(ls.Principals))
	}
	if s.Audit != nil {
		metric("audit_records_total", "Mutation audit records durably appended.", int64(s.Audit.Total()))
		metric("audit_errors_total", "Mutations whose audit append failed.", s.auditErrors.Load())
	}
	if s.Store != nil {
		ss := s.Store.Stats()
		metric("storage_appends_total", "Log append batches written to the storage backend.", int64(ss.Appends))
		metric("storage_append_records_total", "Records appended to shard logs.", int64(ss.AppendRecords))
		metric("storage_append_nanos_total", "Nanoseconds spent in log appends.", int64(ss.AppendNanos))
		metric("storage_replays_total", "Shard log replays.", int64(ss.Replays))
		metric("storage_replay_records_total", "Records replayed from shard logs.", int64(ss.ReplayRecords))
		metric("storage_replay_nanos_total", "Nanoseconds spent replaying shard logs.", int64(ss.ReplayNanos))
		metric("storage_checkpoints_total", "Shard checkpoints written (full rewrites and compaction folds).", int64(ss.Checkpoints))
		metric("storage_checkpoint_records_total", "Records written into shard checkpoints.", int64(ss.CheckpointRecords))
		metric("storage_checkpoint_nanos_total", "Nanoseconds spent writing checkpoints.", int64(ss.CheckpointNanos))
		metric("storage_checkpoint_reads_total", "Shard checkpoint reads.", int64(ss.CheckpointReads))
		metric("storage_commits_total", "Manifest commits (snapshot publication points).", int64(ss.Commits))
		metric("storage_commit_nanos_total", "Nanoseconds spent committing manifests.", int64(ss.CommitNanos))
		metric("storage_shard_drops_total", "Shards dropped from the backend.", int64(ss.Drops))
		metric("storage_errors_total", "Storage backend operations that returned an error.", int64(ss.Errors))
	}
	if s.Tasks != nil {
		ts := s.Tasks.Stats()
		metric("tasks_submitted_total", "Background tasks accepted by the runtime.", ts.Submitted)
		metric("tasks_started_total", "Background task attempts started.", ts.Started)
		metric("tasks_retries_total", "Background task attempts retried after a failure.", ts.Retries)
		metric("tasks_succeeded_total", "Background tasks that reached the succeeded state.", ts.Succeeded)
		metric("tasks_failed_total", "Background tasks that exhausted their retry budget.", ts.Failed)
		metric("tasks_canceled_total", "Background tasks canceled before completion.", ts.Canceled)
		metric("tasks_running", "Background tasks currently executing.", ts.Running)
		metric("tasks_queued", "Background tasks waiting for a worker.", ts.Queued)
	}
	if s.Auth != nil {
		// Per-token use counters, as one labeled series (the label value
		// is the token's public name — never secret material).
		fmt.Fprintf(&b, "# HELP provpriv_auth_token_uses_total Requests authenticated per token.\n"+
			"# TYPE provpriv_auth_token_uses_total counter\n")
		for _, ts := range s.Auth.Stats() {
			fmt.Fprintf(&b, "provpriv_auth_token_uses_total{token=%q,role=%q} %d\n", ts.Name, ts.Role, ts.Uses)
		}
	}
	if s.Obs != nil {
		// The observability layer's families: per-route latency
		// histograms, in-flight/panic counters, task histograms and Go
		// runtime gauges.
		s.Obs.Metrics.WritePrometheus(&b)
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		s.log().Error("write metrics", "error", err)
	}
}
