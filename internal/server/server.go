// Package server exposes the sharded provenance repository over HTTP —
// the multi-tenant serving surface the paper's vision implies: a shared
// repository "searched and queried by many users with different levels
// of access". Every endpoint authenticates a repository principal (the
// X-Prov-User header or ?user= parameter) and evaluates under that
// user's privacy level; privacy enforcement stays inside the engine,
// the transport only maps sentinel errors to status codes:
//
//	repo.ErrUnknownUser → 401
//	repo.ErrDenied      → 403
//	repo.ErrNotFound    → 404
//	other request error → 400
//
// Endpoints (all JSON):
//
//	GET /api/v1/specs                               registered specs + executions
//	GET /api/v1/search?q=Q[&buckets=N][&limit=L&offset=O]  privacy-aware keyword search
//	GET /api/v1/query?spec=S&q=Q[&exec=E][&zoom=1][&limit=L&offset=O]  structural query
//	GET /api/v1/reach?spec=S&from=M1&to=M2          structural-privacy reachability
//	GET /api/v1/provenance?spec=S&exec=E&item=D[&taint=off]  taint-masked provenance of a data item
//	                                                (taint=off: attribute-local masking only — a debug escape
//	                                                hatch requiring the operator opt-in Server.AllowDisableTaint)
//	GET /api/v1/stats                               repository + cache statistics
//	GET /metrics                                    Prometheus-style counters (no auth)
//
// Search and query responses are paginated with limit/offset (limit 0 =
// unlimited); the pre-pagination result count is returned as "total" so
// clients can page without a second query.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"

	"provpriv/internal/query"
	"provpriv/internal/repo"
)

// Server serves a Repository over HTTP. It is stateless apart from the
// repository: handlers are safe for arbitrary concurrency because the
// engine is.
type Server struct {
	repo *repo.Repository
	mux  *http.ServeMux
	// Logger, when non-nil, receives one line per failed request.
	Logger *log.Logger
	// AllowDisableTaint honors the provenance taint=off debug parameter.
	// Off by default: taint=off reopens the embedded-trace-value leak
	// that internal/taint exists to close, so an operator must opt the
	// whole server into it (provserve -allow-taint-off) — it is never a
	// per-caller choice. Requests sending taint=off while disabled get
	// 403, not silent taint-on, so a debugging session can't
	// misattribute masked output to the unmasked path.
	AllowDisableTaint bool
}

// New wraps a repository in an HTTP API.
func New(r *repo.Repository) *Server {
	s := &Server{repo: r, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/v1/specs", s.withUser(s.handleSpecs))
	s.mux.HandleFunc("GET /api/v1/search", s.withUser(s.handleSearch))
	s.mux.HandleFunc("GET /api/v1/query", s.withUser(s.handleQuery))
	s.mux.HandleFunc("GET /api/v1/reach", s.withUser(s.handleReach))
	s.mux.HandleFunc("GET /api/v1/provenance", s.withUser(s.handleProvenance))
	s.mux.HandleFunc("GET /api/v1/stats", s.withUser(s.handleStats))
	// Metrics are operational, not user data: no principal required, so
	// scrapers don't need a repository account.
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the uniform failure envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && s.Logger != nil {
		s.Logger.Printf("encode response: %v", err)
	}
}

// fail maps an engine error to a protocol status via the repo sentinel
// errors and writes the envelope.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, repo.ErrUnknownUser):
		status = http.StatusUnauthorized
	case errors.Is(err, repo.ErrDenied):
		status = http.StatusForbidden
	case errors.Is(err, repo.ErrNotFound):
		status = http.StatusNotFound
	}
	if s.Logger != nil {
		s.Logger.Printf("%s %s -> %d: %v", r.Method, r.URL.Path, status, err)
	}
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

// userHandler is a handler that has already resolved its principal.
type userHandler func(w http.ResponseWriter, r *http.Request, user string)

// withUser authenticates the request principal: the X-Prov-User header,
// or the user query parameter. The user must be registered in the
// repository; endpoints pass the name down so the engine re-checks the
// level on every operation (no privilege caching in the transport).
func (s *Server) withUser(h userHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.Header.Get("X-Prov-User")
		if name == "" {
			name = r.URL.Query().Get("user")
		}
		if name == "" {
			s.fail(w, r, fmt.Errorf("server: missing X-Prov-User header: %w", repo.ErrUnknownUser))
			return
		}
		if _, err := s.repo.User(name); err != nil {
			s.fail(w, r, err)
			return
		}
		h(w, r, name)
	}
}

// specInfo is one row of the /specs listing.
type specInfo struct {
	ID         string   `json:"id"`
	Name       string   `json:"name,omitempty"`
	Executions []string `json:"executions"`
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request, user string) {
	ids := s.repo.SpecIDs()
	out := make([]specInfo, 0, len(ids))
	for _, id := range ids {
		sp := s.repo.Spec(id)
		if sp == nil {
			continue
		}
		execs := s.repo.ExecutionIDs(id)
		if execs == nil {
			execs = []string{}
		}
		out = append(out, specInfo{ID: id, Name: sp.Name, Executions: execs})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"specs": out})
}

// searchMatch mirrors search.Match for the wire.
type searchMatch struct {
	Phrase   string `json:"phrase"`
	ModuleID string `json:"module"`
	Workflow string `json:"workflow"`
	ZoomedTo string `json:"zoomed_to,omitempty"`
}

// searchHit is one wire-format search result: the minimal-view prefix
// and matches, without the full expanded view body.
type searchHit struct {
	SpecID    string        `json:"spec"`
	Score     float64       `json:"score"`
	Prefix    []string      `json:"prefix"`
	ZoomedOut bool          `json:"zoomed_out,omitempty"`
	Matches   []searchMatch `json:"matches"`
}

// parsePage extracts limit/offset pagination parameters (both optional,
// both non-negative; limit 0 means unlimited).
func parsePage(r *http.Request) (limit, offset int, err error) {
	for _, p := range []struct {
		name string
		dst  *int
	}{{"limit", &limit}, {"offset", &offset}} {
		v := r.URL.Query().Get(p.name)
		if v == "" {
			continue
		}
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 0 {
			return 0, 0, fmt.Errorf("server: bad %s %q", p.name, v)
		}
		*p.dst = n
	}
	return limit, offset, nil
}

// page windows a slice to [offset, offset+limit) (limit 0 = to the end),
// returning the window and the pre-pagination total.
func page[T any](items []T, limit, offset int) ([]T, int) {
	total := len(items)
	if offset >= total {
		return items[:0], total
	}
	items = items[offset:]
	if limit > 0 && limit < len(items) {
		items = items[:limit]
	}
	return items, total
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, user string) {
	q := r.URL.Query().Get("q")
	buckets := 0
	if b := r.URL.Query().Get("buckets"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 0 {
			s.fail(w, r, fmt.Errorf("server: bad buckets %q", b))
			return
		}
		buckets = n
	}
	limit, offset, err := parsePage(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	hits, err := s.repo.Search(user, q, repo.SearchOptions{Buckets: buckets})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	hits, total := page(hits, limit, offset)
	out := make([]searchHit, 0, len(hits))
	for _, h := range hits {
		sh := searchHit{
			SpecID:    h.SpecID,
			Score:     h.Score,
			Prefix:    h.Result.Prefix.IDs(),
			ZoomedOut: h.Result.ZoomedOut,
			Matches:   make([]searchMatch, 0, len(h.Result.Matches)),
		}
		for _, m := range h.Result.Matches {
			sh.Matches = append(sh.Matches, searchMatch{
				Phrase: m.Phrase, ModuleID: m.ModuleID, Workflow: m.Workflow, ZoomedTo: m.ZoomedTo,
			})
		}
		out = append(out, sh)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"query": q, "hits": out, "total": total, "offset": offset,
	})
}

// queryAnswer is the wire form of one structural-query answer.
type queryAnswer struct {
	ExecutionID string          `json:"execution"`
	Bindings    []query.Binding `json:"bindings"`
	Nodes       []string        `json:"nodes,omitempty"`
	Downstream  [][]string      `json:"downstream,omitempty"`
	ZoomedOut   bool            `json:"zoomed_out,omitempty"`
	ZoomSteps   int             `json:"zoom_steps,omitempty"`
}

func toWireAnswer(a *query.Answer) queryAnswer {
	return queryAnswer{
		ExecutionID: a.ExecutionID,
		Bindings:    a.Bindings,
		Nodes:       a.Nodes,
		Downstream:  a.Downstream,
		ZoomedOut:   a.ZoomedOut,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, execID, q := p.Get("spec"), p.Get("exec"), p.Get("q")
	if specID == "" || q == "" {
		s.fail(w, r, fmt.Errorf("server: query needs spec and q parameters"))
		return
	}
	limit, offset, err := parsePage(r)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// writePaged applies the shared pagination + response envelope.
	writePaged := func(answers []queryAnswer) {
		answers, total := page(answers, limit, offset)
		s.writeJSON(w, http.StatusOK, map[string]any{
			"spec": specID, "answers": answers, "total": total, "offset": offset,
		})
	}
	switch {
	case execID == "":
		if p.Get("zoom") != "" {
			s.fail(w, r, fmt.Errorf("server: zoom requires an exec parameter"))
			return
		}
		// All executions of the spec (non-empty answers only).
		answers, err := s.repo.QueryAll(user, specID, q)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		out := make([]queryAnswer, 0, len(answers))
		for _, a := range answers {
			out = append(out, toWireAnswer(a))
		}
		writePaged(out)
	case p.Get("zoom") != "":
		res, err := s.repo.QueryZoomOut(user, specID, execID, q)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		a := toWireAnswer(res.Answer)
		a.ZoomSteps = res.Steps
		writePaged([]queryAnswer{a})
	default:
		a, err := s.repo.Query(user, specID, execID, q)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		writePaged([]queryAnswer{toWireAnswer(a)})
	}
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, from, to := p.Get("spec"), p.Get("from"), p.Get("to")
	if specID == "" || from == "" || to == "" {
		s.fail(w, r, fmt.Errorf("server: reach needs spec, from and to parameters"))
		return
	}
	ok, err := s.repo.Reaches(user, specID, from, to)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"spec": specID, "from": from, "to": to, "reaches": ok,
	})
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, execID, item := p.Get("spec"), p.Get("exec"), p.Get("item")
	if specID == "" || execID == "" || item == "" {
		s.fail(w, r, fmt.Errorf("server: provenance needs spec, exec and item parameters"))
		return
	}
	var opts repo.ProvenanceOptions
	switch t := p.Get("taint"); t {
	case "", "on":
		// taint-aware masking: the default and only privacy-preserving mode.
	case "off":
		// Debug/benchmark escape hatch: attribute-local masking only;
		// protected values embedded in derived traces are NOT rewritten.
		// Only honored when the operator opted the server in.
		if !s.AllowDisableTaint {
			s.fail(w, r, fmt.Errorf("server: taint=off disabled on this server: %w", repo.ErrDenied))
			return
		}
		opts.DisableTaint = true
	default:
		s.fail(w, r, fmt.Errorf("server: bad taint %q (want on or off)", t))
		return
	}
	prov, err := s.repo.ProvenanceWith(user, specID, execID, item, opts)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// The provenance view is already collapsed and masked for this
	// user's level by the engine; it serializes with the persistence
	// JSON shape.
	s.writeJSON(w, http.StatusOK, map[string]any{
		"spec": specID, "exec": execID, "item": item, "provenance": prov,
	})
}

// statsBody is the /stats response.
type statsBody struct {
	Specs           int   `json:"specs"`
	Executions      int   `json:"executions"`
	Users           int   `json:"users"`
	IndexTerms      int   `json:"index_terms"`
	Postings        int   `json:"postings"`
	IndexSegments   int   `json:"index_segments"`
	IndexSwaps      int64 `json:"index_swaps"`
	CacheHits       int   `json:"cache_hits"`
	CacheMisses     int   `json:"cache_misses"`
	ViewCacheHits   int64 `json:"view_cache_hits"`
	ViewCacheMisses int64 `json:"view_cache_misses"`
	CorpusLevels    int   `json:"corpus_levels"`
	CorpusDeltas    int64 `json:"corpus_deltas"`
	CorpusRebuilds  int64 `json:"corpus_rebuilds"`

	TaintRewritten   int64                          `json:"taint_rewritten"`
	TaintRedacted    int64                          `json:"taint_redacted"`
	TaintCacheHits   int64                          `json:"taint_cache_hits"`
	TaintCacheMisses int64                          `json:"taint_cache_misses"`
	TaintCache       map[string]repo.TaintCacheStat `json:"taint_cache,omitempty"`

	MaskedCacheHits   int64                          `json:"masked_exec_cache_hits"`
	MaskedCacheMisses int64                          `json:"masked_exec_cache_misses"`
	MaskedCache       map[string]repo.TaintCacheStat `json:"masked_exec_cache,omitempty"`
}

func toStatsBody(st repo.Stats) statsBody {
	return statsBody{
		Specs:             st.Specs,
		Executions:        st.Executions,
		Users:             st.Users,
		IndexTerms:        st.IndexTerms,
		Postings:          st.Postings,
		IndexSegments:     st.IndexSegments,
		IndexSwaps:        st.IndexSwaps,
		CacheHits:         st.CacheHits,
		CacheMisses:       st.CacheMisses,
		ViewCacheHits:     st.ViewCacheHits,
		ViewCacheMisses:   st.ViewCacheMisses,
		CorpusLevels:      st.CorpusLevels,
		CorpusDeltas:      st.CorpusDeltas,
		CorpusRebuilds:    st.CorpusRebuilds,
		TaintRewritten:    st.TaintRewritten,
		TaintRedacted:     st.TaintRedacted,
		TaintCacheHits:    st.TaintCacheHits,
		TaintCacheMisses:  st.TaintCacheMisses,
		TaintCache:        st.TaintCache,
		MaskedCacheHits:   st.MaskedCacheHits,
		MaskedCacheMisses: st.MaskedCacheMisses,
		MaskedCache:       st.MaskedCache,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, user string) {
	s.writeJSON(w, http.StatusOK, toStatsBody(s.repo.Stats()))
}

// handleMetrics renders the same counters in the Prometheus text
// exposition format, one gauge per stat, under the provpriv_ prefix.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.repo.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	metric := func(name, help string, v int64) {
		// *_total counters are monotonic (the engine accumulates them
		// across cache swaps and shard removals); the rest are gauges.
		typ := "gauge"
		if strings.HasSuffix(name, "_total") {
			typ = "counter"
		}
		fmt.Fprintf(&b, "# HELP provpriv_%s %s\n# TYPE provpriv_%s %s\nprovpriv_%s %d\n",
			name, help, name, typ, name, v)
	}
	metric("specs", "Registered workflow specifications.", int64(st.Specs))
	metric("executions", "Stored executions.", int64(st.Executions))
	metric("users", "Registered users.", int64(st.Users))
	metric("index_terms", "Distinct terms in the inverted index.", int64(st.IndexTerms))
	metric("index_postings", "Total postings in the inverted index.", int64(st.Postings))
	metric("index_segments", "Per-spec segments in the inverted index.", int64(st.IndexSegments))
	metric("index_snapshot_swaps_total", "Inverted-index snapshot publications (spec mutations).", st.IndexSwaps)
	metric("result_cache_hits_total", "Search result cache hits.", int64(st.CacheHits))
	metric("result_cache_misses_total", "Search result cache misses.", int64(st.CacheMisses))
	metric("view_cache_hits_total", "Collapsed-view LRU hits across shards.", st.ViewCacheHits)
	metric("view_cache_misses_total", "Collapsed-view LRU misses across shards.", st.ViewCacheMisses)
	metric("corpus_levels", "Per-level ranking corpora currently built.", int64(st.CorpusLevels))
	metric("corpus_deltas_total", "Incremental corpus document deltas applied.", st.CorpusDeltas)
	metric("corpus_rebuilds_total", "From-scratch per-level corpus builds.", st.CorpusRebuilds)
	metric("taint_items_rewritten_total", "Items whose embedded protected values were rewritten by taint masking.", st.TaintRewritten)
	metric("taint_items_redacted_total", "Items fully redacted because taint rewriting could not remove a leak.", st.TaintRedacted)
	metric("taint_cache_hits_total", "Per-shard taint-set cache hits.", st.TaintCacheHits)
	metric("taint_cache_misses_total", "Per-shard taint-set cache misses.", st.TaintCacheMisses)
	metric("masked_exec_cache_hits_total", "Per-shard masked-execution snapshot cache hits.", st.MaskedCacheHits)
	metric("masked_exec_cache_misses_total", "Per-shard masked-execution snapshot cache misses.", st.MaskedCacheMisses)
	if _, err := io.WriteString(w, b.String()); err != nil && s.Logger != nil {
		s.Logger.Printf("write metrics: %v", err)
	}
}
