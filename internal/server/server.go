// Package server exposes the sharded provenance repository over HTTP —
// the multi-tenant serving surface the paper's vision implies: a shared
// repository "searched and queried by many users with different levels
// of access". Every endpoint authenticates a repository principal (the
// X-Prov-User header or ?user= parameter) and evaluates under that
// user's privacy level; privacy enforcement stays inside the engine,
// the transport only maps sentinel errors to status codes:
//
//	repo.ErrUnknownUser → 401
//	repo.ErrDenied      → 403
//	repo.ErrNotFound    → 404
//	other request error → 400
//
// Endpoints (all JSON):
//
//	GET /api/v1/specs                               registered specs + executions
//	GET /api/v1/search?q=Q[&buckets=N]              privacy-aware keyword search
//	GET /api/v1/query?spec=S&q=Q[&exec=E][&zoom=1]  structural query (one or all executions)
//	GET /api/v1/reach?spec=S&from=M1&to=M2          structural-privacy reachability
//	GET /api/v1/provenance?spec=S&exec=E&item=D     masked provenance of a data item
//	GET /api/v1/stats                               repository + cache statistics
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"provpriv/internal/query"
	"provpriv/internal/repo"
)

// Server serves a Repository over HTTP. It is stateless apart from the
// repository: handlers are safe for arbitrary concurrency because the
// engine is.
type Server struct {
	repo *repo.Repository
	mux  *http.ServeMux
	// Logger, when non-nil, receives one line per failed request.
	Logger *log.Logger
}

// New wraps a repository in an HTTP API.
func New(r *repo.Repository) *Server {
	s := &Server{repo: r, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/v1/specs", s.withUser(s.handleSpecs))
	s.mux.HandleFunc("GET /api/v1/search", s.withUser(s.handleSearch))
	s.mux.HandleFunc("GET /api/v1/query", s.withUser(s.handleQuery))
	s.mux.HandleFunc("GET /api/v1/reach", s.withUser(s.handleReach))
	s.mux.HandleFunc("GET /api/v1/provenance", s.withUser(s.handleProvenance))
	s.mux.HandleFunc("GET /api/v1/stats", s.withUser(s.handleStats))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the uniform failure envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil && s.Logger != nil {
		s.Logger.Printf("encode response: %v", err)
	}
}

// fail maps an engine error to a protocol status via the repo sentinel
// errors and writes the envelope.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, repo.ErrUnknownUser):
		status = http.StatusUnauthorized
	case errors.Is(err, repo.ErrDenied):
		status = http.StatusForbidden
	case errors.Is(err, repo.ErrNotFound):
		status = http.StatusNotFound
	}
	if s.Logger != nil {
		s.Logger.Printf("%s %s -> %d: %v", r.Method, r.URL.Path, status, err)
	}
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

// userHandler is a handler that has already resolved its principal.
type userHandler func(w http.ResponseWriter, r *http.Request, user string)

// withUser authenticates the request principal: the X-Prov-User header,
// or the user query parameter. The user must be registered in the
// repository; endpoints pass the name down so the engine re-checks the
// level on every operation (no privilege caching in the transport).
func (s *Server) withUser(h userHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.Header.Get("X-Prov-User")
		if name == "" {
			name = r.URL.Query().Get("user")
		}
		if name == "" {
			s.fail(w, r, fmt.Errorf("server: missing X-Prov-User header: %w", repo.ErrUnknownUser))
			return
		}
		if _, err := s.repo.User(name); err != nil {
			s.fail(w, r, err)
			return
		}
		h(w, r, name)
	}
}

// specInfo is one row of the /specs listing.
type specInfo struct {
	ID         string   `json:"id"`
	Name       string   `json:"name,omitempty"`
	Executions []string `json:"executions"`
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request, user string) {
	ids := s.repo.SpecIDs()
	out := make([]specInfo, 0, len(ids))
	for _, id := range ids {
		sp := s.repo.Spec(id)
		if sp == nil {
			continue
		}
		execs := s.repo.ExecutionIDs(id)
		if execs == nil {
			execs = []string{}
		}
		out = append(out, specInfo{ID: id, Name: sp.Name, Executions: execs})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"specs": out})
}

// searchMatch mirrors search.Match for the wire.
type searchMatch struct {
	Phrase   string `json:"phrase"`
	ModuleID string `json:"module"`
	Workflow string `json:"workflow"`
	ZoomedTo string `json:"zoomed_to,omitempty"`
}

// searchHit is one wire-format search result: the minimal-view prefix
// and matches, without the full expanded view body.
type searchHit struct {
	SpecID    string        `json:"spec"`
	Score     float64       `json:"score"`
	Prefix    []string      `json:"prefix"`
	ZoomedOut bool          `json:"zoomed_out,omitempty"`
	Matches   []searchMatch `json:"matches"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request, user string) {
	q := r.URL.Query().Get("q")
	buckets := 0
	if b := r.URL.Query().Get("buckets"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 0 {
			s.fail(w, r, fmt.Errorf("server: bad buckets %q", b))
			return
		}
		buckets = n
	}
	hits, err := s.repo.Search(user, q, repo.SearchOptions{Buckets: buckets})
	if err != nil {
		s.fail(w, r, err)
		return
	}
	out := make([]searchHit, 0, len(hits))
	for _, h := range hits {
		sh := searchHit{
			SpecID:    h.SpecID,
			Score:     h.Score,
			Prefix:    h.Result.Prefix.IDs(),
			ZoomedOut: h.Result.ZoomedOut,
			Matches:   make([]searchMatch, 0, len(h.Result.Matches)),
		}
		for _, m := range h.Result.Matches {
			sh.Matches = append(sh.Matches, searchMatch{
				Phrase: m.Phrase, ModuleID: m.ModuleID, Workflow: m.Workflow, ZoomedTo: m.ZoomedTo,
			})
		}
		out = append(out, sh)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"query": q, "hits": out})
}

// queryAnswer is the wire form of one structural-query answer.
type queryAnswer struct {
	ExecutionID string          `json:"execution"`
	Bindings    []query.Binding `json:"bindings"`
	Nodes       []string        `json:"nodes,omitempty"`
	Downstream  [][]string      `json:"downstream,omitempty"`
	ZoomedOut   bool            `json:"zoomed_out,omitempty"`
	ZoomSteps   int             `json:"zoom_steps,omitempty"`
}

func toWireAnswer(a *query.Answer) queryAnswer {
	return queryAnswer{
		ExecutionID: a.ExecutionID,
		Bindings:    a.Bindings,
		Nodes:       a.Nodes,
		Downstream:  a.Downstream,
		ZoomedOut:   a.ZoomedOut,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, execID, q := p.Get("spec"), p.Get("exec"), p.Get("q")
	if specID == "" || q == "" {
		s.fail(w, r, fmt.Errorf("server: query needs spec and q parameters"))
		return
	}
	switch {
	case execID == "":
		if p.Get("zoom") != "" {
			s.fail(w, r, fmt.Errorf("server: zoom requires an exec parameter"))
			return
		}
		// All executions of the spec (non-empty answers only).
		answers, err := s.repo.QueryAll(user, specID, q)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		out := make([]queryAnswer, 0, len(answers))
		for _, a := range answers {
			out = append(out, toWireAnswer(a))
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"spec": specID, "answers": out})
	case p.Get("zoom") != "":
		res, err := s.repo.QueryZoomOut(user, specID, execID, q)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		a := toWireAnswer(res.Answer)
		a.ZoomSteps = res.Steps
		s.writeJSON(w, http.StatusOK, map[string]any{"spec": specID, "answers": []queryAnswer{a}})
	default:
		a, err := s.repo.Query(user, specID, execID, q)
		if err != nil {
			s.fail(w, r, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"spec": specID, "answers": []queryAnswer{toWireAnswer(a)}})
	}
}

func (s *Server) handleReach(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, from, to := p.Get("spec"), p.Get("from"), p.Get("to")
	if specID == "" || from == "" || to == "" {
		s.fail(w, r, fmt.Errorf("server: reach needs spec, from and to parameters"))
		return
	}
	ok, err := s.repo.Reaches(user, specID, from, to)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"spec": specID, "from": from, "to": to, "reaches": ok,
	})
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request, user string) {
	p := r.URL.Query()
	specID, execID, item := p.Get("spec"), p.Get("exec"), p.Get("item")
	if specID == "" || execID == "" || item == "" {
		s.fail(w, r, fmt.Errorf("server: provenance needs spec, exec and item parameters"))
		return
	}
	prov, err := s.repo.Provenance(user, specID, execID, item)
	if err != nil {
		s.fail(w, r, err)
		return
	}
	// The provenance view is already collapsed and masked for this
	// user's level by the engine; it serializes with the persistence
	// JSON shape.
	s.writeJSON(w, http.StatusOK, map[string]any{
		"spec": specID, "exec": execID, "item": item, "provenance": prov,
	})
}

// statsBody is the /stats response.
type statsBody struct {
	Specs       int `json:"specs"`
	Executions  int `json:"executions"`
	Users       int `json:"users"`
	IndexTerms  int `json:"index_terms"`
	Postings    int `json:"postings"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, user string) {
	st := s.repo.Stats()
	hits, misses := s.repo.CacheStats()
	s.writeJSON(w, http.StatusOK, statsBody{
		Specs:      st.Specs,
		Executions: st.Executions,
		Users:      st.Users,
		IndexTerms: st.IndexTerms,
		Postings:   st.Postings,
		CacheHits:  hits, CacheMisses: misses,
	})
}
